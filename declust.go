// Package declust is a library-level reproduction of "Parity Declustering
// for Continuous Operation in Redundant Disk Arrays" (Holland & Gibson,
// CMU-CS-92-130 / ASPLOS 1992).
//
// Parity declustering spreads parity stripes of G units over C > G disks
// using balanced incomplete (or complete) block designs, so that
// reconstructing a failed disk reads only a fraction α = (G−1)/(C−1) of
// each survivor. The package exposes:
//
//   - layout construction and inspection (NewMapping): block-design
//     selection, the declustered layout, left-symmetric RAID 5, and the
//     paper's §4.1 layout-goodness criteria;
//   - block design machinery (PaperDesign, SelectDesign): the six appendix
//     designs, plus generators for complete designs, cyclic difference
//     families, derived/residual/complement designs, Steiner triple
//     systems and projective/affine planes;
//   - disk-accurate simulation (RunFaultFree, RunDegraded,
//     RunReconstruction): an event-driven array simulator in the spirit of
//     raidSim, with IBM 0661 drives, CVSCAN scheduling, a Sprite-style
//     striping driver, and the four reconstruction algorithms of §8;
//   - the Muntz & Lui analytic reconstruction model (AnalyticModel) and an
//     MTTDL reliability model (Reliability).
//
// Quickstart:
//
//	m, err := declust.NewMapping(21, 5, 0) // 21 disks, G=5 (α=0.2)
//	fmt.Println(m.Describe())
//	res, err := declust.RunReconstruction(declust.SimConfig{
//		C: 21, G: 5, RatePerSec: 210, ReadFraction: 0.5, ReconProcs: 8,
//	})
//	fmt.Printf("reconstruction took %.1f minutes\n", res.ReconTimeMS/60000)
//
// The runnable programs under cmd/ and examples/ exercise this API, and
// internal/experiments regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md).
package declust

import (
	"declust/internal/analytic"
	"declust/internal/array"
	"declust/internal/blockdesign"
	"declust/internal/core"
	"declust/internal/disk"
	"declust/internal/layout"
	"declust/internal/metrics"
	"declust/internal/sim"
	"declust/internal/store"
	"declust/internal/telemetry"
	"declust/internal/trace"
	"io"
)

// Mapping bundles a chosen parity layout with its provenance; see
// NewMapping.
type Mapping = core.Mapping

// SimConfig describes one simulation run; zero values select the paper's
// configuration (full-size IBM 0661 disks, 4 KB units, CVSCAN).
type SimConfig = core.SimConfig

// Metrics reports one simulation run's results.
type Metrics = core.Metrics

// ReconAlgorithm selects the §8 reconstruction algorithm.
type ReconAlgorithm = array.ReconAlgorithm

// The four reconstruction algorithms evaluated by the paper.
const (
	Baseline          = array.Baseline
	UserWrites        = array.UserWrites
	Redirect          = array.Redirect
	RedirectPiggyback = array.RedirectPiggyback
)

// Criteria reports a layout's standing against the paper's §4.1 goodness
// criteria.
type Criteria = layout.Criteria

// Layout is a periodic mapping of parity stripes to disks.
type Layout = layout.Layout

// Loc addresses one stripe unit (disk, unit offset).
type Loc = layout.Loc

// Design is a balanced (complete or incomplete) block design.
type Design = blockdesign.Design

// DesignParams are the five classic BIBD parameters.
type DesignParams = blockdesign.Params

// Geometry describes a disk drive model.
type Geometry = disk.Geometry

// SchedPolicy selects a disk's queue scheduling discipline (see
// SimConfig.SchedPolicy); the zero value is the paper's CVSCAN.
type SchedPolicy = disk.Policy

// The disk queue scheduling policies.
const (
	SchedCVSCAN = disk.CVSCAN
	SchedFIFO   = disk.FIFO
	SchedSSTF   = disk.SSTF
	SchedCSCAN  = disk.CSCAN
)

// ParseSchedPolicy parses a policy name ("cvscan", "fifo", "sstf",
// "cscan"; empty selects CVSCAN).
func ParseSchedPolicy(s string) (SchedPolicy, error) { return disk.ParsePolicy(s) }

// Trace is a recorded user-level I/O trace (see SimConfig.CaptureTrace).
type Trace = trace.Log

// TraceRecord is one completed access in a Trace.
type TraceRecord = trace.Record

// TraceReplayer replays a Trace's arrival process as a workload source.
type TraceReplayer = trace.Replayer

// AnalyticModel is the Muntz & Lui reconstruction-time model (§8.3).
type AnalyticModel = analytic.Model

// Reliability is the MTTDL model derived from reconstruction time.
type Reliability = analytic.Reliability

// NewMapping selects a parity layout for an array of c disks with parity
// stripes of g units: left-symmetric RAID 5 when g = c, otherwise a
// declustered layout over the best available block design. maxTuples
// bounds the block design table (0 = default); when no feasible design
// exists at g, the closest feasible declustering ratio is substituted and
// Mapping.Exact reports false.
func NewMapping(c, g, maxTuples int) (*Mapping, error) {
	return core.NewMapping(c, g, maxTuples)
}

// RunFaultFree measures steady-state user response time with no failure
// (paper §6).
func RunFaultFree(cfg SimConfig) (Metrics, error) { return core.RunFaultFree(cfg) }

// RunDegraded measures user response time with one failed, unreplaced disk
// (paper §7).
func RunDegraded(cfg SimConfig) (Metrics, error) { return core.RunDegraded(cfg) }

// RunReconstruction fails a disk, reconstructs it onto a replacement under
// user load, and reports reconstruction time and user response time during
// recovery (paper §8).
func RunReconstruction(cfg SimConfig) (Metrics, error) { return core.RunReconstruction(cfg) }

// LifecycleConfig drives a long-horizon continuous-operation simulation:
// random disk failures, replacement, online reconstruction, repeat.
type LifecycleConfig = core.LifecycleConfig

// LifecycleReport summarizes availability and per-state response times.
type LifecycleReport = core.LifecycleReport

// RunLifecycle simulates continuous operation through repeated disk
// failures and repairs (the paper's title scenario).
func RunLifecycle(cfg LifecycleConfig) (LifecycleReport, error) { return core.RunLifecycle(cfg) }

// NewSparedMapping selects a distributed-sparing layout (per-stripe spare
// units over a G+1 design); use with SimConfig.DistributedSparing.
func NewSparedMapping(c, g, maxTuples int) (*Mapping, error) {
	return core.NewSparedMapping(c, g, maxTuples)
}

// NewPQMapping selects a layout as NewMapping does, then adds a second,
// Reed–Solomon (Q) parity unit to every stripe: the RAID-6-style P+Q code
// that survives any two concurrent disk failures. Use with
// SimConfig.Parities = 2, or pass the Mapping's Layout to a Store for a
// double-fault-tolerant engine.
func NewPQMapping(c, g, maxTuples int) (*Mapping, error) {
	return core.NewPQMapping(c, g, maxTuples)
}

// MetricsRegistry collects named counters, gauges, log-bucketed latency
// histograms and per-disk time series from a simulation run; assign one
// to SimConfig.Metrics and export with WritePrometheus / WriteCSV. Same
// seed and config produce byte-identical exports.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Tracer receives structured simulation events (user accesses, disk
// requests, reconstruction milestones); assign one to SimConfig.Tracer.
type Tracer = metrics.Tracer

// NewJSONLTracer returns a Tracer writing one JSON event per line to w.
// Call Flush when the run completes.
func NewJSONLTracer(w io.Writer) *metrics.JSONL { return metrics.NewJSONL(w) }

// Progress is a reconstruction progress report delivered to
// SimConfig.OnProgress (done units, total, ETA in simulated ms).
type Progress = core.Progress

// SpanTracer records request-lifecycle spans: one root span per user
// access with phase children (lock wait, pre-reads, commits, on-the-fly
// reconstruction) and per-disk service segments. Assign one to
// SimConfig.Spans; export with WriteJSONL (compact, for tracestat) or
// WriteChromeTrace (load in Perfetto / chrome://tracing), or feed the
// spans to AttributeSpans for a latency decomposition.
type SpanTracer = telemetry.Tracer

// NewSpanTracer returns an enabled span tracer.
func NewSpanTracer() *SpanTracer { return telemetry.New() }

// Span is one traced interval.
type Span = telemetry.Span

// SpanMeta labels a span export with its run's configuration.
type SpanMeta = telemetry.Meta

// SpanAttribution decomposes measured user response time by cause.
type SpanAttribution = telemetry.Attribution

// AttributeSpans computes the causal latency decomposition of a run's
// spans (see SpanAttribution).
func AttributeSpans(spans []Span) SpanAttribution { return telemetry.Attribute(spans) }

// LiveStatus is the periodic run snapshot delivered to SimConfig.OnLive.
type LiveStatus = core.LiveStatus

// LiveServer is the opt-in HTTP telemetry endpoint (/metrics, /progress,
// /debug/pprof) fed by snapshots from the simulation thread.
type LiveServer = telemetry.LiveServer

// NewLiveServer returns a live telemetry server; Start brings it up.
func NewLiveServer() *LiveServer { return telemetry.NewLiveServer() }

// LiveProgress is the JSON document a LiveServer serves at /progress.
type LiveProgress = telemetry.Progress

// DataLoc resolves a logical data unit to its disk and unit offset under
// the paper's "by parity stripe index" data mapping.
func DataLoc(l Layout, n int64) Loc { return layout.DataLoc(l, n) }

// ParityLoc returns the location of a parity stripe's parity unit.
func ParityLoc(l Layout, stripe int64) Loc { return layout.ParityLoc(l, stripe) }

// SurvivingUnits returns the other units of the parity stripe owning loc —
// exactly the reads needed to reconstruct loc's contents.
func SurvivingUnits(l Layout, loc Loc) []Loc { return layout.SurvivingUnits(l, loc) }

// IBM0661 returns the paper's disk model (Table 5-1).
func IBM0661() Geometry { return disk.IBM0661() }

// PaperDesign returns one of the six block designs of the paper's appendix
// (21 disks; g ∈ {3, 4, 5, 6, 10, 18}).
func PaperDesign(g int) (*Design, error) { return blockdesign.PaperDesign(g) }

// ReadTrace parses a trace written by Trace.WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// NewTraceReplayer builds a workload source replaying a recorded trace;
// assign it to SimConfig.Source.
func NewTraceReplayer(t *Trace) (*TraceReplayer, error) { return trace.NewReplayer(t) }

// SelectDesign finds the best available block design for C disks and
// parity stripe size G, per the paper's §4.3 procedure.
func SelectDesign(c, g, maxTuples int) (*Design, bool, error) {
	sel, err := blockdesign.Select(c, g, maxTuples)
	if err != nil {
		return nil, false, err
	}
	return sel.Design, sel.Exact, nil
}

// Array is the simulated redundant disk array itself; most users drive it
// through the Run* functions, but fault experiments (SecondFail,
// FailReplacement, StartScrub) operate on it directly.
type Array = array.Array

// DataLossEvent records one stripe losing more units than single-failure
// redundancy can rebuild.
type DataLossEvent = array.DataLossEvent

// DoubleFailure summarizes a second whole-disk failure while degraded:
// declustering loses only the fraction α of the at-risk stripes, RAID 5
// loses them all.
type DoubleFailure = array.DoubleFailure

// FaultStats counts the array driver's fault handling (retries, media
// errors, repairs, lost units).
type FaultStats = array.FaultStats

// ScrubStats counts background scrubber activity.
type ScrubStats = array.ScrubStats

// LifecycleReport fault fields and SimConfig fault fields (FaultSeed,
// LSERatePerGBHour, TransientRate, ScrubIntervalMS) drive the injector in
// internal/fault; see also cmd/raidsim's -lse-rate family of flags.

// Store is a real (non-simulated-time) declustered storage engine: the
// same parity layouts serving actual bytes to concurrent goroutines, with
// XOR parity maintained on the read-modify-write path, on-the-fly
// reconstruction for degraded reads, and a live Rebuild that restores a
// replacement disk stripe by stripe under client load. See OpenStore.
type Store = store.Store

// StoreConfig configures a Store's capacity, unit size, backends, and
// rebuild throttle; OpenStore fills its Layout from (c, g).
type StoreConfig = store.Config

// StoreDisk is one pluggable disk backend of a Store (in-memory via
// NewMemDisk, one file per disk via OpenFileDisk, or any user
// implementation).
type StoreDisk = store.Disk

// StoreStats counts store engine activity (reads, writes, degraded
// reads, folded/redirected writes, rebuilt units).
type StoreStats = store.Stats

// StoreMode is a Store's failure state.
type StoreMode = store.Mode

// The store failure states.
const (
	StoreHealthy    = store.Healthy
	StoreDegraded   = store.Degraded
	StoreRebuilding = store.Rebuilding
)

// OpenStore builds a storage engine over an array of c disks with parity
// stripes of g units, selecting the layout exactly as NewMapping does.
// With cfg.Disks nil the store is in-memory; supply OpenFileDisks
// backends for a file-backed array.
func OpenStore(c, g int, cfg StoreConfig) (*Store, error) {
	if cfg.Layout == nil {
		m, err := core.NewMapping(c, g, 0)
		if err != nil {
			return nil, err
		}
		cfg.Layout = m.Layout
	}
	return store.New(cfg)
}

// OpenPQStore builds a storage engine like OpenStore but over the P+Q
// dual-parity code (see NewPQMapping): every stripe carries an XOR parity
// and a GF(2^8) Reed–Solomon parity, the engine's RMW path maintains
// both, and any two concurrent disk failures — Fail called twice — stay
// fully readable and rebuildable.
func OpenPQStore(c, g int, cfg StoreConfig) (*Store, error) {
	if cfg.Layout == nil {
		m, err := core.NewPQMapping(c, g, 0)
		if err != nil {
			return nil, err
		}
		cfg.Layout = m.Layout
	}
	return store.New(cfg)
}

// NewMemDisk returns an in-memory store backend of the given size.
func NewMemDisk(units int64, unitSize int) StoreDisk { return store.NewMemDisk(units, unitSize) }

// OpenFileDisk opens (creating if necessary) a file-backed store backend.
func OpenFileDisk(path string, units int64, unitSize int) (StoreDisk, error) {
	return store.OpenFileDisk(path, units, unitSize)
}

// OpenFileDisks opens c file-backed store backends under dir.
func OpenFileDisks(dir string, c int, units int64, unitSize int) ([]StoreDisk, error) {
	return store.OpenFileDisks(dir, c, units, unitSize)
}

// StoreFaultConfig parameterizes a fault-injecting store backend: seeded
// per-operation probabilities for transient errors, torn and lost writes,
// latent sector errors, read corruption, and injected latency.
type StoreFaultConfig = store.FaultConfig

// StoreFaultStats counts the faults a fault-injecting backend delivered.
type StoreFaultStats = store.FaultStats

// StoreFaultDisk wraps any store backend with seed-driven fault
// injection; the engine's checksums, retries, self-healing reads, and
// scrubber are expected to absorb everything it throws.
type StoreFaultDisk = store.FaultDisk

// NewFaultDisk wraps backend d with fault injection per cfg.
func NewFaultDisk(d StoreDisk, cfg StoreFaultConfig) *StoreFaultDisk {
	return store.NewFaultDisk(d, cfg)
}

// StoreIntentLog persists the store's dirty-region write-intent bitmap,
// making parity crash-consistent; see OpenFileIntent.
type StoreIntentLog = store.IntentLog

// OpenFileIntent returns a crash-safe file-backed intent log for
// StoreConfig.Intent. A store reopened over a log with dirty regions
// resynchronizes their stripes before serving.
func OpenFileIntent(path string) StoreIntentLog { return store.OpenFileIntent(path) }

// ScrubResult summarizes one Store.Scrub sweep: stripes verified and
// skipped, damaged units repaired, stale parity rewritten, and stripes
// beyond repair.
type ScrubResult = store.ScrubResult

// PhysUnitSize returns the on-backend size of a store unit: the data
// plus its checksum trailer. Custom StoreDisk implementations size their
// blocks with this.
func PhysUnitSize(unitSize int) int { return store.PhysUnitSize(unitSize) }

// Store backend error classes: transient errors are retried by the
// engine, media errors trigger reconstruct-and-rewrite healing, and
// ErrUnrecoverable reports damage beyond single parity.
var (
	ErrStoreTransient     = store.ErrTransient
	ErrStoreMedia         = store.ErrMedia
	ErrStoreUnrecoverable = store.ErrUnrecoverable
)

// NewIdleArray builds an array for enumeration-style analyses — no
// workload runs and no simulated time passes. scale divides the IBM 0661
// capacity (1 = full size).
func NewIdleArray(m *Mapping, scale int) (*Array, error) {
	geom := disk.IBM0661()
	if scale > 1 {
		geom = geom.Scaled(1, scale)
	}
	return array.New(sim.New(), array.Config{
		Layout:      m.Layout,
		Geom:        geom,
		UnitSectors: 8,
		CvscanBias:  0.2,
	})
}
