package declust_test

import (
	"strings"
	"testing"

	"declust"
)

func TestFacadeMapping(t *testing.T) {
	m, err := declust.NewMapping(21, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Alpha() != 0.2 {
		t.Fatalf("α = %v, want 0.2", m.Alpha())
	}
	if !strings.Contains(m.Describe(), "declustered") {
		t.Fatalf("describe: %s", m.Describe())
	}
	crit, err := m.Criteria()
	if err != nil {
		t.Fatal(err)
	}
	if !crit.SingleFailureCorrecting {
		t.Fatal("criteria not evaluated")
	}
}

func TestFacadePaperDesign(t *testing.T) {
	d, err := declust.PaperDesign(5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.B != 21 || p.Lambda != 1 {
		t.Fatalf("params %+v", p)
	}
}

func TestFacadeSelectDesign(t *testing.T) {
	d, exact, err := declust.SelectDesign(21, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !exact || d.K != 6 {
		t.Fatalf("exact=%v k=%d", exact, d.K)
	}
}

func TestFacadeSimulation(t *testing.T) {
	res, err := declust.RunReconstruction(declust.SimConfig{
		C: 21, G: 5,
		ScaleNum: 1, ScaleDen: 50,
		RatePerSec: 105, ReadFraction: 0.5,
		ReconProcs: 8,
		Algorithm:  declust.Redirect,
		WarmupMS:   2000, MeasureMS: 10000,
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReconTimeMS <= 0 {
		t.Fatal("no reconstruction time")
	}
}

func TestFacadeGeometry(t *testing.T) {
	g := declust.IBM0661()
	if g.Cylinders != 949 {
		t.Fatalf("cylinders = %d", g.Cylinders)
	}
}

func TestFacadeAnalytic(t *testing.T) {
	m := declust.AnalyticModel{
		C: 21, G: 5, UserRate: 105, ReadFraction: 0.5,
		DiskRate: 46, UnitsPerDisk: 79710,
	}
	if _, err := m.ReconstructionTime(); err != nil {
		t.Fatal(err)
	}
	r := declust.Reliability{C: 21, MTTFHours: 150000, MTTRHours: 1}
	if _, err := r.MTTDLHours(); err != nil {
		t.Fatal(err)
	}
}
