GO ?= go

.PHONY: all build test race bench-smoke bench vet fmt-check verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — exercises each paper figure/table
# driver and the instrumentation overhead pair without the full timing run.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The full pre-merge gate: formatting, static checks, build, the race-able
# test suite, and a benchmark smoke pass.
verify: fmt-check vet build race bench-smoke
	@echo "verify: OK"

clean:
	$(GO) clean ./...
