GO ?= go

.PHONY: all build test race bench-smoke bench vet fmt-check fault-smoke verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — exercises each paper figure/table
# driver and the instrumentation overhead pair without the full timing run.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Focused race pass over the fault-injection stack (injector, array error
# paths, scrubbing, checkpoint/restart), then a short end-to-end lifecycle
# run with media faults enabled: random disk failures, latent sector
# errors, transient timeouts, scrubbing, and true double failures.
fault-smoke:
	$(GO) test -race ./internal/fault/... ./internal/array/...
	$(GO) run ./examples/continuous

# The full pre-merge gate: formatting, static checks, build, the race-able
# test suite, the fault-injection smoke, and a benchmark smoke pass.
verify: fmt-check vet build race fault-smoke bench-smoke
	@echo "verify: OK"

clean:
	$(GO) clean ./...
