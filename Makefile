GO ?= go

# The perf-gate benchmarks: the end-to-end fault-free pair (allocations and
# events/req are part of the contract), the event-engine microbenches, and
# the real-data store's fault-free/degraded/rebuilding throughput trio.
BENCH_PATTERN ?= FaultFree|Schedule|Store
BENCH_PKGS ?= . ./internal/sim ./internal/store

# Static-analysis tool versions, pinned so lint results are reproducible;
# `go run pkg@version` fetches them on demand — no global install needed.
STATICCHECK_VERSION ?= v0.6.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test race bench-smoke bench bench-save bench-diff sweep-race telemetry-race store-race store-par-race store-chaos store-chaos-2f nightly vet fmt-check fault-smoke lint cover verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — exercises each paper figure/table
# driver and the instrumentation overhead pair without the full timing run.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# Record the perf-gate benchmarks as the next bench/BENCH_<n>.json baseline.
bench-save:
	$(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem $(BENCH_PKGS) | $(GO) run ./cmd/benchdiff -save

# Compare a fresh run against the latest baseline; fails on any metric more
# than 10% worse. Override the gate with BENCHDIFF_THRESHOLD (fraction, e.g.
# 0.5 on noisy shared runners) — benchdiff reads it as its default.
bench-diff:
	$(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem $(BENCH_PKGS) | $(GO) run ./cmd/benchdiff -diff

# Race pass over the parallel sweep driver and the commands that expose -j.
sweep-race:
	$(GO) test -race ./internal/experiments/... ./cmd/...

# Race pass over the observability stack: the live telemetry server's
# concurrent scrape bridge, the span tracer and exporters, and the
# tracestat / raidsim -listen command paths.
telemetry-race:
	$(GO) test -race ./internal/telemetry/... ./cmd/tracestat/... ./cmd/raidsim/...

# Race pass over the real-data storage engine: concurrent clients driven
# through live failure, degraded service, and rebuild (internal/store), plus
# the cmd/store lifecycle driver.
store-race:
	$(GO) test -race ./internal/store/... ./cmd/store/...

# Focused race pass over the parallel I/O fast path: serial-vs-parallel
# byte equivalence through a full fail/rebuild lifecycle, intent-log group
# commit (coalescing, failure delivery), fan-out ordering/first-error-wins,
# and concurrent range writers against a sharded rebuild with IOWorkers>1.
store-par-race:
	$(GO) test -race -run 'TestParallel|TestIntent|TestFanOut|TestWorkerConfig|TestConcurrentRange' -count=1 ./internal/store/

# The chaos invariant under the race detector: 12 workers against
# fault-injecting backends (transients, latent sector errors, torn writes,
# read corruption) with a mid-run disk failure and rebuild; every
# acknowledged write must read back byte-for-byte and parity must end
# clean. The seed is always printed and, when STORE_CHAOS_DIR is set,
# written there so CI can upload it as a failure artifact; rerun a failure
# with CHAOS_SEED=<seed>.
store-chaos:
	$(GO) test -race -run 'TestChaosAcknowledged|TestCrash' -count=1 -v ./internal/store/

# The two-failure chaos invariant: the same 12-worker fault mix against the
# P+Q dual-parity store, losing TWO disks mid-run — a singly-degraded
# window, a doubly-degraded window with the code saturated, then both
# rebuilds under load. Seed handling matches store-chaos (printed, written
# to STORE_CHAOS_DIR, rerun with CHAOS_SEED=<seed>).
store-chaos-2f:
	$(GO) test -race -run 'TestChaos2F' -count=1 -v ./internal/store/

# The nightly long-haul: property suites too slow to run on every push.
# Every two-disk failure pair must recover on the P+Q store, a rebuild
# must succeed from any mid-sweep failure point, the SIGKILL
# crash-recovery test runs twenty kills at fresh timing offsets, and both
# chaos invariants run repeatedly under fresh seeds (each run prints its
# seed; failures replay with CHAOS_SEED=<seed>).
nightly:
	$(GO) test -race -run 'TestPQEveryTwoDisksRecover' -count=5 -v ./internal/store/
	$(GO) test -race -run 'TestRebuildAnyFailurePoint' -count=5 -v ./internal/store/
	$(GO) test -race -run 'TestCrashDuringWriteRecovers' -count=20 -v ./internal/store/
	$(GO) test -race -run 'TestChaosAcknowledged|TestChaos2F' -count=10 -v ./internal/store/

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Focused race pass over the fault-injection stack (injector, array error
# paths, scrubbing, checkpoint/restart), then a short end-to-end lifecycle
# run with media faults enabled: random disk failures, latent sector
# errors, transient timeouts, scrubbing, and true double failures.
fault-smoke:
	$(GO) test -race ./internal/fault/... ./internal/array/...
	$(GO) run ./examples/continuous

# Pinned static analysis: staticcheck (bug-prone constructs, dead code,
# style drift) and govulncheck (known CVEs reachable from this module).
# Needs network access to fetch the pinned tools on first run.
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# Coverage gate: total statement coverage must stay at or above the floor
# checked into .coverage-floor. Raise the floor when coverage improves;
# never lower it to make a failing build pass.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	floor=$$(cat .coverage-floor); \
	echo "coverage: total $$total% (floor $$floor%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit (t + 0 < f + 0) ? 1 : 0 }' || \
		{ echo "coverage $$total% fell below the $$floor% floor"; exit 1; }

# The full pre-merge gate: formatting, static checks, build, the race-able
# test suite, the fault-injection, parallel-sweep, telemetry and storage-
# engine race smokes, the storage chaos invariants (single- and
# double-failure), and a benchmark smoke pass.
verify: fmt-check vet build race fault-smoke sweep-race telemetry-race store-race store-par-race store-chaos store-chaos-2f bench-smoke
	@echo "verify: OK"

clean:
	$(GO) clean ./...
