// Command benchdiff turns `go test -bench` output into checked-in JSON
// baselines and gates regressions against them.
//
// Usage:
//
//	go test -run='^$' -bench=... -benchmem ./... | benchdiff -save
//	go test -run='^$' -bench=... -benchmem ./... | benchdiff -diff
//	... | benchdiff -diff -threshold 0.25     # loosen the gate
//
// -save parses stdin and writes bench/BENCH_<n>.json, one past the highest
// existing baseline number. -diff parses stdin, compares it against the
// highest-numbered baseline, prints one line per (benchmark, metric), and
// exits nonzero if any metric regressed beyond the threshold (default 10%;
// override with -threshold, or BENCHDIFF_THRESHOLD in CI).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"declust/internal/benchio"
)

func main() {
	save := flag.Bool("save", false, "parse stdin and write the next bench/BENCH_<n>.json baseline")
	diff := flag.Bool("diff", false, "parse stdin and compare against the latest baseline")
	dir := flag.String("dir", "bench", "baseline directory")
	threshold := flag.Float64("threshold", defaultThreshold(),
		"fractional slowdown tolerated before failing (BENCHDIFF_THRESHOLD overrides the default)")
	flag.Parse()
	if *save == *diff {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -save or -diff required")
		os.Exit(2)
	}

	suite, err := benchio.Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}

	if *save {
		path := filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", latestN(*dir)+1))
		data, err := json.MarshalIndent(suite, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %d benchmark(s) to %s\n", len(suite.Results), path)
		return
	}

	n := latestN(*dir)
	if n == 0 {
		fatal(fmt.Errorf("no BENCH_<n>.json baselines in %s (run benchdiff -save first)", *dir))
	}
	path := filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", n))
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var base benchio.Suite
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}

	deltas := benchio.Compare(base, suite, *threshold)
	if len(deltas) == 0 {
		fatal(fmt.Errorf("no benchmarks in common with %s", path))
	}
	fmt.Printf("baseline %s, threshold %.0f%%\n", path, *threshold*100)
	fmt.Printf("%-40s %-12s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "ratio")
	bad := 0
	for _, d := range deltas {
		fmt.Println(d.Format())
		if d.Regression {
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed beyond %.0f%%\n", bad, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}

// defaultThreshold reads BENCHDIFF_THRESHOLD so CI can loosen the gate on
// noisy shared runners without editing the Makefile.
func defaultThreshold() float64 {
	if s := os.Getenv("BENCHDIFF_THRESHOLD"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.10
}

// latestN returns the highest n among dir's BENCH_<n>.json files, 0 if none.
func latestN(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var ns []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		if n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json")); err == nil {
			ns = append(ns, n)
		}
	}
	if len(ns) == 0 {
		return 0
	}
	sort.Ints(ns)
	return ns[len(ns)-1]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
