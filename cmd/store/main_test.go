package main

import (
	"strings"
	"testing"
	"time"
)

// TestRunMemScenario drives the full lifecycle (fill, fault-free load,
// failure, degraded load, rebuild under load, heal, verify) on a small
// in-memory array with short phases.
func TestRunMemScenario(t *testing.T) {
	var out strings.Builder
	cfg := config{
		c: 7, g: 3, units: 64, unitSize: 512,
		backend: "mem", clients: 4, phaseSecs: 0.05,
		readFrac: 0.5, throttle: 50 * time.Microsecond, failDisk: 2,
		ioWorkers: 8, rebuildWork: 4,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"fault-free", "degraded", "rebuilding", "healed", "verify: OK",
		"8 io-workers, 4 rebuild-workers", "lifecycle summary", "wall-clock",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunFileScenario exercises the file-backed backend end to end in a
// temp directory.
func TestRunFileScenario(t *testing.T) {
	var out strings.Builder
	cfg := config{
		c: 5, g: 5, units: 40, unitSize: 512,
		backend: "file", dir: t.TempDir(), clients: 2, phaseSecs: 0.03,
		readFrac: 0.5, failDisk: 0,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verify: OK") {
		t.Fatalf("output missing verification verdict:\n%s", out.String())
	}
}

// TestRunFaultScenario turns on the fault injectors (with a fixed seed)
// and expects the lifecycle to survive: scrubs run, damage heals, and the
// final byte-for-byte verification still passes.
func TestRunFaultScenario(t *testing.T) {
	var out strings.Builder
	cfg := config{
		c: 7, g: 3, units: 64, unitSize: 512,
		backend: "mem", clients: 4, phaseSecs: 0.05,
		readFrac: 0.5, failDisk: 2,
		faults: true, chaosSeed: 12345, retries: 6,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"fault injection on", "pre-failure scrub", "final scrub", "robustness:", "verify: OK"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunFileFaultScenario combines the file backend (intent log, Sync)
// with fault injection.
func TestRunFileFaultScenario(t *testing.T) {
	var out strings.Builder
	cfg := config{
		c: 5, g: 5, units: 40, unitSize: 512,
		backend: "file", dir: t.TempDir(), clients: 2, phaseSecs: 0.03,
		readFrac: 0.5, failDisk: 0,
		transient: 0.02, torn: 0.01, chaosSeed: 99, retries: 6, scrub: true,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verify: OK") {
		t.Fatalf("output missing verification verdict:\n%s", out.String())
	}
}

// TestRunPQTwoFailureScenario drives the dual-parity lifecycle: fill,
// fault-free load, two live disk failures with singly- and
// doubly-degraded load windows between them, both rebuilds racing load,
// and the byte-for-byte verification — with the fault injectors on.
func TestRunPQTwoFailureScenario(t *testing.T) {
	var out strings.Builder
	cfg := config{
		c: 7, g: 4, units: 64, unitSize: 512,
		backend: "mem", clients: 4, phaseSecs: 0.05,
		readFrac: 0.5, throttle: 50 * time.Microsecond,
		parities: 2, failDisk: 2, fail2: 5,
		faults: true, chaosSeed: 4242, retries: 6,
		ioWorkers: 8, rebuildWork: 4,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"code P+Q", "degraded-2", "rebuilding-1", "rebuilding-2",
		"rebuild d2", "rebuild d5",
		"rebuild of disk 2 complete", "rebuild of disk 5 complete",
		"lifecycle summary (code P+Q", "verify: OK",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunPQFileScenario exercises P+Q on the file backend (intent log,
// two replacement files) without fault injection.
func TestRunPQFileScenario(t *testing.T) {
	var out strings.Builder
	cfg := config{
		c: 7, g: 4, units: 40, unitSize: 512,
		backend: "file", dir: t.TempDir(), clients: 2, phaseSecs: 0.03,
		readFrac: 0.5, parities: 2, failDisk: 1, fail2: 4,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verify: OK") {
		t.Fatalf("output missing verification verdict:\n%s", out.String())
	}
}

// TestRunRejectsBadParities checks dual-parity argument validation.
func TestRunRejectsBadParities(t *testing.T) {
	base := config{
		c: 7, g: 4, units: 64, unitSize: 512,
		backend: "mem", clients: 1, phaseSecs: 0.01, failDisk: 2,
	}
	bad := base
	bad.parities = 3
	var out strings.Builder
	if err := run(bad, &out); err == nil {
		t.Fatal("expected error for -parities 3")
	}
	dup := base
	dup.parities = 2
	dup.fail2 = 2 // same as failDisk
	if err := run(dup, &out); err == nil {
		t.Fatal("expected error for -fail2 == -fail")
	}
	oor := base
	oor.parities = 2
	oor.fail2 = 7
	if err := run(oor, &out); err == nil {
		t.Fatal("expected error for out-of-range -fail2")
	}
}

// TestRunRejectsBadFailDisk checks argument validation.
func TestRunRejectsBadFailDisk(t *testing.T) {
	var out strings.Builder
	cfg := config{
		c: 7, g: 3, units: 64, unitSize: 512,
		backend: "mem", clients: 1, phaseSecs: 0.01, failDisk: 7,
	}
	if err := run(cfg, &out); err == nil {
		t.Fatal("expected error for out-of-range -fail")
	}
}
