package main

import (
	"strings"
	"testing"
	"time"
)

// TestRunMemScenario drives the full lifecycle (fill, fault-free load,
// failure, degraded load, rebuild under load, heal, verify) on a small
// in-memory array with short phases.
func TestRunMemScenario(t *testing.T) {
	var out strings.Builder
	cfg := config{
		c: 7, g: 3, units: 64, unitSize: 512,
		backend: "mem", clients: 4, phaseSecs: 0.05,
		readFrac: 0.5, throttle: 50 * time.Microsecond, failDisk: 2,
		ioWorkers: 8, rebuildWork: 4,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"fault-free", "degraded", "rebuilding", "healed", "verify: OK",
		"8 io-workers, 4 rebuild-workers", "lifecycle summary", "wall-clock",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunFileScenario exercises the file-backed backend end to end in a
// temp directory.
func TestRunFileScenario(t *testing.T) {
	var out strings.Builder
	cfg := config{
		c: 5, g: 5, units: 40, unitSize: 512,
		backend: "file", dir: t.TempDir(), clients: 2, phaseSecs: 0.03,
		readFrac: 0.5, failDisk: 0,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verify: OK") {
		t.Fatalf("output missing verification verdict:\n%s", out.String())
	}
}

// TestRunFaultScenario turns on the fault injectors (with a fixed seed)
// and expects the lifecycle to survive: scrubs run, damage heals, and the
// final byte-for-byte verification still passes.
func TestRunFaultScenario(t *testing.T) {
	var out strings.Builder
	cfg := config{
		c: 7, g: 3, units: 64, unitSize: 512,
		backend: "mem", clients: 4, phaseSecs: 0.05,
		readFrac: 0.5, failDisk: 2,
		faults: true, chaosSeed: 12345, retries: 6,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"fault injection on", "pre-failure scrub", "final scrub", "robustness:", "verify: OK"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunFileFaultScenario combines the file backend (intent log, Sync)
// with fault injection.
func TestRunFileFaultScenario(t *testing.T) {
	var out strings.Builder
	cfg := config{
		c: 5, g: 5, units: 40, unitSize: 512,
		backend: "file", dir: t.TempDir(), clients: 2, phaseSecs: 0.03,
		readFrac: 0.5, failDisk: 0,
		transient: 0.02, torn: 0.01, chaosSeed: 99, retries: 6, scrub: true,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verify: OK") {
		t.Fatalf("output missing verification verdict:\n%s", out.String())
	}
}

// TestRunRejectsBadFailDisk checks argument validation.
func TestRunRejectsBadFailDisk(t *testing.T) {
	var out strings.Builder
	cfg := config{
		c: 7, g: 3, units: 64, unitSize: 512,
		backend: "mem", clients: 1, phaseSecs: 0.01, failDisk: 7,
	}
	if err := run(cfg, &out); err == nil {
		t.Fatal("expected error for out-of-range -fail")
	}
}
