// Command store smoke-drives the real-data declustered storage engine
// through its whole lifecycle: fill, concurrent fault-free load, a live
// disk failure, degraded load, a rebuild racing that load, and a full
// verification that every byte read back equals the last byte written.
//
//	go run ./cmd/store -c 21 -g 5 -clients 16 -secs 2
//	go run ./cmd/store -backend file -dir /tmp/declust -units 512
//	go run ./cmd/store -faults -scrub -chaos-seed 7
//	go run ./cmd/store -parities 2 -fail 2 -fail2 5
//
// With -parities 2 the engine runs the P+Q dual-parity code and the
// lifecycle loses a SECOND disk (-fail2) after the degraded phase: a
// doubly-degraded load window with the code saturated, then both
// rebuilds in failure order, each racing its own load phase and timed
// separately in the lifecycle summary.
//
// With -faults the backends inject transient errors, torn writes, read
// corruption, and latent sector errors (on the doomed disk), and the run
// additionally scrubs the array before failing the disk and before the
// final check — the engine's retries, checksums, and self-healing reads
// must absorb everything. File-backed runs keep a crash-consistency
// intent log next to the disks and Sync at durability points.
//
// Each phase prints its throughput; the final line is the verification
// verdict. Exit status is nonzero on any corruption or engine error.
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"declust"
)

type config struct {
	c, g          int
	units         int64
	unitSize      int
	backend       string
	dir           string
	clients       int
	phaseSecs     float64
	readFrac      float64
	throttle      time.Duration
	parities      int
	failDisk      int
	fail2         int
	faults        bool
	transient     float64
	torn          float64
	lse           float64
	corrupt       float64
	chaosSeed     int64
	scrub         bool
	scrubThrottle time.Duration
	retries       int
	failThreshold int
	ioWorkers     int
	rebuildWork   int
}

func main() {
	var cfg config
	flag.IntVar(&cfg.c, "c", 21, "disks in the array")
	flag.IntVar(&cfg.g, "g", 5, "units per parity stripe")
	flag.Int64Var(&cfg.units, "units", 210, "raw units per disk")
	flag.IntVar(&cfg.unitSize, "unitsize", 4096, "unit size in bytes (multiple of 8)")
	flag.StringVar(&cfg.backend, "backend", "mem", "disk backend: mem or file")
	flag.StringVar(&cfg.dir, "dir", "", "directory for file-backed disks (default: a temp dir)")
	flag.IntVar(&cfg.clients, "clients", 8, "concurrent client goroutines")
	flag.Float64Var(&cfg.phaseSecs, "secs", 1, "seconds of load per phase")
	flag.Float64Var(&cfg.readFrac, "read", 0.5, "read fraction of the client mix")
	flag.DurationVar(&cfg.throttle, "throttle", 0, "rebuild throttle per unit (e.g. 200us)")
	flag.IntVar(&cfg.parities, "parities", 1, "parity units per stripe: 1 (code P) or 2 (code P+Q)")
	flag.IntVar(&cfg.failDisk, "fail", 2, "disk to fail")
	flag.IntVar(&cfg.fail2, "fail2", 0, "second disk to fail (-parities 2 only; must differ from -fail)")
	flag.BoolVar(&cfg.faults, "faults", false, "inject faults with default rates (override via -transient etc.)")
	flag.Float64Var(&cfg.transient, "transient", 0, "per-op transient error rate on every disk")
	flag.Float64Var(&cfg.torn, "torn", 0, "per-write torn-write rate on every disk")
	flag.Float64Var(&cfg.lse, "lse", 0, "per-read latent-sector-error rate on the -fail disk")
	flag.Float64Var(&cfg.corrupt, "corrupt", 0, "per-read transient corruption rate on every disk")
	flag.Int64Var(&cfg.chaosSeed, "chaos-seed", 0, "fault injection seed (0 = from the clock)")
	flag.BoolVar(&cfg.scrub, "scrub", false, "run a verifying scrub sweep before the final check")
	flag.DurationVar(&cfg.scrubThrottle, "scrub-throttle", 0, "scrub throttle per stripe (e.g. 100us)")
	flag.IntVar(&cfg.retries, "retries", 0, "transient-error retries per op (0 = engine default)")
	flag.IntVar(&cfg.failThreshold, "fail-threshold", 0, "auto-fail a disk after this many persistent errors (0 = off)")
	flag.IntVar(&cfg.ioWorkers, "io-workers", 0, "intra-request I/O fan-out width (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.rebuildWork, "rebuild-workers", 0, "concurrent rebuild/scrub shards (0 = io-workers)")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "store:", err)
		os.Exit(1)
	}
}

// fill writes the deterministic pattern for (unit, version) into buf; the
// verifier recomputes it to check read-backs byte for byte.
func fill(buf []byte, unit int64, version uint64) {
	x := uint64(unit)*0x9e3779b97f4a7c15 + version*0xbf58476d1ce4e5b9 + 1
	for i := 0; i+8 <= len(buf); i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		binary.LittleEndian.PutUint64(buf[i:], x)
	}
}

func run(cfg config, out io.Writer) error {
	scfg := declust.StoreConfig{
		UnitsPerDisk:    cfg.units,
		UnitSize:        cfg.unitSize,
		RebuildThrottle: cfg.throttle,
		ScrubThrottle:   cfg.scrubThrottle,
		Retries:         cfg.retries,
		FailThreshold:   cfg.failThreshold,
		IOWorkers:       cfg.ioWorkers,
		RebuildWorkers:  cfg.rebuildWork,
	}
	if cfg.failDisk < 0 || cfg.failDisk >= cfg.c {
		return fmt.Errorf("-fail %d out of range [0,%d)", cfg.failDisk, cfg.c)
	}
	if cfg.parities == 0 {
		cfg.parities = 1
	}
	if cfg.parities != 1 && cfg.parities != 2 {
		return fmt.Errorf("-parities %d: must be 1 (P) or 2 (P+Q)", cfg.parities)
	}
	codeName := "P"
	victims := []int{cfg.failDisk}
	if cfg.parities == 2 {
		codeName = "P+Q"
		if cfg.fail2 < 0 || cfg.fail2 >= cfg.c {
			return fmt.Errorf("-fail2 %d out of range [0,%d)", cfg.fail2, cfg.c)
		}
		if cfg.fail2 == cfg.failDisk {
			return fmt.Errorf("-fail2 %d: the second victim must differ from -fail", cfg.fail2)
		}
		victims = append(victims, cfg.fail2)
	}
	faultsOn := cfg.faults || cfg.transient > 0 || cfg.torn > 0 || cfg.lse > 0 || cfg.corrupt > 0
	if cfg.faults && cfg.transient == 0 && cfg.torn == 0 && cfg.lse == 0 && cfg.corrupt == 0 {
		cfg.transient, cfg.torn, cfg.lse, cfg.corrupt = 0.02, 0.01, 0.002, 0.005
	}
	seed := cfg.chaosSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}

	var replPath string
	if cfg.backend == "file" {
		dir := cfg.dir
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "declust-store-"); err != nil {
				return err
			}
			defer os.RemoveAll(dir)
		}
		disks, err := declust.OpenFileDisks(dir, cfg.c, cfg.units, cfg.unitSize)
		if err != nil {
			return err
		}
		scfg.Disks = disks
		scfg.Intent = declust.OpenFileIntent(filepath.Join(dir, "intent.log"))
		replPath = filepath.Join(dir, "replacement.dat")
		fmt.Fprintf(out, "file-backed array under %s\n", dir)
	}

	// Fault injection wraps every backend; latent sector errors arrive
	// only on the disk that will be failed, so no latent damage can sit
	// on a survivor when the rebuild reads them (scrub-before-rebuild).
	var fds []*declust.StoreFaultDisk
	if faultsOn {
		fmt.Fprintf(out, "fault injection on: transient=%g torn=%g lse=%g corrupt=%g seed=%d\n",
			cfg.transient, cfg.torn, cfg.lse, cfg.corrupt, seed)
		base := scfg.Disks
		if base == nil {
			base = make([]declust.StoreDisk, cfg.c)
			for i := range base {
				base[i] = declust.NewMemDisk(cfg.units, cfg.unitSize)
			}
		}
		fds = make([]*declust.StoreFaultDisk, cfg.c)
		wrapped := make([]declust.StoreDisk, cfg.c)
		for i, d := range base {
			fc := declust.StoreFaultConfig{
				Seed:          seed + int64(i),
				TransientRate: cfg.transient,
				TornWriteRate: cfg.torn,
				CorruptRate:   cfg.corrupt,
			}
			if i == cfg.failDisk {
				fc.LSERate = cfg.lse
			}
			fds[i] = declust.NewFaultDisk(d, fc)
			wrapped[i] = fds[i]
		}
		scfg.Disks = wrapped
	}

	open := declust.OpenStore
	if cfg.parities == 2 {
		open = declust.OpenPQStore
	}
	s, err := open(cfg.c, cfg.g, scfg)
	if err != nil {
		return err
	}
	defer s.Close()
	if st := s.Stats(); st.ResyncedStripes > 0 {
		fmt.Fprintf(out, "crash recovery: resynced %d stripes (%d repaired)\n", st.ResyncedStripes, st.ResyncRepairs)
	}

	ioWorkers := cfg.ioWorkers
	if ioWorkers < 1 {
		ioWorkers = runtime.GOMAXPROCS(0)
	}
	rebuildWorkers := cfg.rebuildWork
	if rebuildWorkers < 1 {
		rebuildWorkers = ioWorkers
	}
	total := s.DataUnits()
	fmt.Fprintf(out, "store: C=%d G=%d code %s, %d data units x %d B (%.1f MB usable), %d clients, %d io-workers, %d rebuild-workers\n",
		cfg.c, cfg.g, codeName, total, cfg.unitSize, float64(total*int64(cfg.unitSize))/1e6, cfg.clients, ioWorkers, rebuildWorkers)

	// version[n] is unit n's last written version; clients own disjoint
	// unit ranges so each slot has a single writer.
	version := make([]uint64, total)
	buf := make([]byte, cfg.unitSize)
	for n := int64(0); n < total; n++ {
		version[n] = 1
		fill(buf, n, 1)
		if err := s.WriteUnit(n, buf); err != nil {
			return err
		}
	}
	if err := s.Sync(); err != nil {
		return err
	}
	fmt.Fprintf(out, "filled %d units\n", total)

	// phases accumulates one row per load phase (plus the rebuild) for
	// the lifecycle summary printed before the verdict.
	type phaseStat struct {
		name    string
		ops     int64
		secs    float64
		mbps    float64
		rebuild bool
	}
	var phases []phaseStat

	// loadPhase runs the client mix for the phase duration; clients
	// verify every read against their own last write as they go.
	loadPhase := func(name string) error {
		var stop atomic.Bool
		var ops atomic.Int64
		errc := make(chan error, cfg.clients)
		var wg sync.WaitGroup
		per := total / int64(cfg.clients)
		start := time.Now()
		for w := 0; w < cfg.clients; w++ {
			lo := int64(w) * per
			hi := lo + per
			if w == cfg.clients-1 {
				hi = total
			}
			wg.Add(1)
			go func(w int, lo, hi int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
				rbuf := make([]byte, cfg.unitSize)
				want := make([]byte, cfg.unitSize)
				for !stop.Load() {
					n := lo + rng.Int63n(hi-lo)
					if rng.Float64() < cfg.readFrac {
						if err := s.ReadUnit(n, rbuf); err != nil {
							errc <- err
							return
						}
						fill(want, n, version[n])
						if !bytes.Equal(rbuf, want) {
							errc <- fmt.Errorf("%s: unit %d corrupted (want version %d)", name, n, version[n])
							return
						}
					} else {
						version[n]++
						fill(rbuf, n, version[n])
						if err := s.WriteUnit(n, rbuf); err != nil {
							errc <- err
							return
						}
					}
					ops.Add(1)
				}
			}(w, lo, hi)
		}
		time.Sleep(time.Duration(cfg.phaseSecs * float64(time.Second)))
		stop.Store(true)
		wg.Wait()
		close(errc)
		for err := range errc {
			return err
		}
		el := time.Since(start).Seconds()
		n := ops.Load()
		mbps := float64(n) * float64(cfg.unitSize) / 1e6 / el
		phases = append(phases, phaseStat{name: name, ops: n, secs: el, mbps: mbps})
		fmt.Fprintf(out, "%-12s %9d ops in %.2fs  (%.0f ops/s, %.1f MB/s), mode %s\n",
			name, n, el, float64(n)/el, mbps, s.Mode())
		return nil
	}

	if err := loadPhase("fault-free"); err != nil {
		return err
	}

	if faultsOn && cfg.lse > 0 {
		// Stop new latent errors on the doomed disk and scrub the array
		// clean before failing it: a latent error discovered on a survivor
		// during rebuild would be unrecoverable.
		fds[cfg.failDisk].SetConfig(declust.StoreFaultConfig{
			TransientRate: cfg.transient,
			TornWriteRate: cfg.torn,
			CorruptRate:   cfg.corrupt,
		})
		res, err := s.Scrub()
		if err != nil {
			return fmt.Errorf("pre-failure scrub: %w", err)
		}
		fmt.Fprintf(out, "pre-failure scrub: %d stripes verified, %d units repaired, %d parity rewrites\n",
			res.Stripes, res.UnitRepairs, res.ParityRewrites)
	}
	fmt.Fprintf(out, "failing disk %d\n", cfg.failDisk)
	if err := s.Fail(cfg.failDisk); err != nil {
		return err
	}
	if err := loadPhase("degraded"); err != nil {
		return err
	}
	if cfg.parities == 2 {
		// The second whole-disk failure saturates the P+Q code: every
		// doubly-dead stripe must now decode through the Reed–Solomon
		// equations. The second victim never carried latent sector errors
		// (injection puts them only on -fail), so no stripe can reach
		// three erasures.
		fmt.Fprintf(out, "failing disk %d (second failure, code %s)\n", cfg.fail2, codeName)
		if err := s.Fail(cfg.fail2); err != nil {
			return err
		}
		if err := loadPhase("degraded-2"); err != nil {
			return err
		}
	}

	// Rebuild the victims in failure order (Rebuild always targets the
	// oldest outstanding failure); each rebuild races its own load phase
	// and lands as its own row so the summary reports per-failure
	// rebuild wall-clock.
	for i, victim := range victims {
		var repl declust.StoreDisk = declust.NewMemDisk(cfg.units, cfg.unitSize)
		if replPath != "" {
			path := replPath
			if i > 0 {
				path = filepath.Join(filepath.Dir(replPath), fmt.Sprintf("replacement%d.dat", i+1))
			}
			if repl, err = declust.OpenFileDisk(path, cfg.units, cfg.unitSize); err != nil {
				return err
			}
		}
		if faultsOn {
			// The replacement is no more reliable than the rest of the array.
			rfd := declust.NewFaultDisk(repl, declust.StoreFaultConfig{
				Seed:          seed + int64(cfg.c+i),
				TransientRate: cfg.transient,
				TornWriteRate: cfg.torn,
			})
			fds[victim] = rfd
			repl = rfd
		}
		phaseName, rowName := "rebuilding", "rebuild"
		if len(victims) > 1 {
			phaseName = fmt.Sprintf("rebuilding-%d", i+1)
			rowName = fmt.Sprintf("rebuild d%d", victim)
		}
		rebuildDone := make(chan error, 1)
		rebuildStart := time.Now()
		go func() { rebuildDone <- s.Rebuild(repl) }()
		if err := loadPhase(phaseName); err != nil {
			return err
		}
		if err := <-rebuildDone; err != nil {
			return err
		}
		done, rTotal := s.RebuildProgress()
		rebuildSecs := time.Since(rebuildStart).Seconds()
		phases = append(phases, phaseStat{
			name: rowName, ops: done, secs: rebuildSecs,
			mbps:    float64(done) * float64(cfg.unitSize) / 1e6 / rebuildSecs,
			rebuild: true,
		})
		if len(victims) > 1 {
			fmt.Fprintf(out, "rebuild of disk %d complete: %d/%d units in %.2fs\n", victim, done, rTotal, rebuildSecs)
		} else {
			fmt.Fprintf(out, "rebuild complete: %d/%d units in %.2fs\n", done, rTotal, rebuildSecs)
		}
	}

	if err := loadPhase("healed"); err != nil {
		return err
	}

	if cfg.scrub || faultsOn {
		// Quiesce injection, then let the scrubber verify and repair the
		// whole array before the byte-for-byte check.
		for _, fd := range fds {
			fd.Quiesce()
		}
		res, err := s.Scrub()
		if err != nil {
			return fmt.Errorf("final scrub: %w", err)
		}
		fmt.Fprintf(out, "final scrub: %d stripes verified, %d units repaired, %d parity rewrites\n",
			res.Stripes, res.UnitRepairs, res.ParityRewrites)
	}

	// Final verification: every unit equals its last write, every
	// stripe's parity equation balances.
	want := make([]byte, cfg.unitSize)
	for n := int64(0); n < total; n++ {
		if err := s.ReadUnit(n, buf); err != nil {
			return err
		}
		fill(want, n, version[n])
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("verify: unit %d corrupted (want version %d)", n, version[n])
		}
	}
	if err := s.CheckParity(); err != nil {
		return err
	}
	if err := s.Sync(); err != nil {
		return err
	}
	// Lifecycle summary: one row per phase so the effect of -io-workers
	// and -rebuild-workers is visible at a glance across the run.
	fmt.Fprintf(out, "lifecycle summary (code %s, %d io-workers, %d rebuild-workers):\n", codeName, ioWorkers, rebuildWorkers)
	for _, p := range phases {
		if p.rebuild {
			fmt.Fprintf(out, "  %-12s %8.1f MB/s  (%d units reconstructed in %.2fs wall-clock)\n",
				p.name, p.mbps, p.ops, p.secs)
			continue
		}
		fmt.Fprintf(out, "  %-12s %8.1f MB/s  (%d ops in %.2fs)\n", p.name, p.mbps, p.ops, p.secs)
	}
	st := s.Stats()
	fmt.Fprintf(out, "stats: %d reads (%d reconstructed on the fly), %d writes (%d folded, %d redirected), %d units rebuilt\n",
		st.Reads, st.DegradedReads, st.Writes, st.FoldedWrites, st.RedirectedWrites, st.RebuiltUnits)
	if faultsOn || st.Retries > 0 || st.HealedUnits > 0 {
		fmt.Fprintf(out, "robustness: %d retries, %d units healed (%d media, %d checksum), %d scrub repairs, %d stale parity rewrites\n",
			st.Retries, st.HealedUnits, st.MediaErrors, st.ChecksumErrors, st.ScrubUnitRepairs, st.ScrubParityFixes)
	}
	fmt.Fprintf(out, "verify: OK — all %d units match their last write, parity consistent\n", total)
	return nil
}
