package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"declust/internal/core"
	"declust/internal/telemetry"
)

// writeRun simulates one small reconstruction at parity stripe size g and
// writes its span log, returning the file path.
func writeRun(t *testing.T, dir string, g int, mode string) string {
	t.Helper()
	cfg := core.SimConfig{
		C: 21, G: g,
		ScaleNum: 1, ScaleDen: 50,
		RatePerSec:   105,
		ReadFraction: 0.5,
		Seed:         42,
		WarmupMS:     2_000,
		MeasureMS:    10_000,
	}
	tr := telemetry.New()
	cfg.Spans = tr
	var err error
	switch mode {
	case "faultfree":
		_, err = core.RunFaultFree(cfg)
	case "degraded":
		_, err = core.RunDegraded(cfg)
	default:
		_, err = core.RunReconstruction(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, fmt.Sprintf("g%d_%s.spans.jsonl", g, mode))
	f, err := os.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	meta := &telemetry.Meta{C: 21, G: g, Alpha: float64(g-1) / 20, Mode: mode, Seed: 42}
	if err := tr.WriteJSONL(f, meta); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return name
}

// TestAttributionAcrossAlphas is the end-to-end acceptance path: three
// rebuild runs at different declustering ratios, summarized into one
// deterministic table ordered by α, each row decomposing the rebuild-mode
// response time into queue wait, service, and rebuild interference.
func TestAttributionAcrossAlphas(t *testing.T) {
	dir := t.TempDir()
	var files []string
	for _, g := range []int{4, 10, 21} {
		files = append(files, writeRun(t, dir, g, "rebuild"))
	}

	invoke := func(args ...string) string {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("tracestat exited %d\nstderr: %s", code, errb.String())
		}
		return out.String()
	}

	first := invoke(files...)
	// Argument order must not matter; repeated invocation must be
	// byte-identical.
	reversed := invoke(files[2], files[1], files[0])
	if first != reversed {
		t.Errorf("output depends on argument order:\n%s\nvs\n%s", first, reversed)
	}

	lines := strings.Split(strings.TrimSpace(first), "\n")
	if len(lines) != 5 { // header, rule, three rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), first)
	}
	for _, col := range []string{"alpha", "mode", "response", "queue", "interfere", "service", "lockwait"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("header missing %q: %s", col, lines[0])
		}
	}
	wantAlpha := []string{"0.15", "0.45", "1.00"}
	for i, row := range lines[2:] {
		fields := strings.Fields(row)
		if fields[0] != wantAlpha[i] {
			t.Errorf("row %d α = %s, want %s (rows not α-sorted)", i, fields[0], wantAlpha[i])
		}
		if fields[1] != "rebuild" {
			t.Errorf("row %d mode = %s", i, fields[1])
		}
	}
}

func TestModeOrderingAndPhases(t *testing.T) {
	dir := t.TempDir()
	// Same α, two modes: fault-free must sort before rebuild regardless of
	// argument order.
	ff := writeRun(t, dir, 5, "faultfree")
	rb := writeRun(t, dir, 5, "rebuild")

	var out, errb bytes.Buffer
	if code := run([]string{"-phases", rb, ff}, &out, &errb); code != 0 {
		t.Fatalf("tracestat exited %d\nstderr: %s", code, errb.String())
	}
	body := out.String()
	if ffRow, rbRow := strings.Index(body, "faultfree"), strings.Index(body, "rebuild"); ffRow > rbRow {
		t.Errorf("faultfree row printed after rebuild:\n%s", body)
	}
	// -phases appends per-file phase listings; the rebuild file must show
	// its reconstruction phases, the fault-free file must not.
	if !strings.Contains(body, telemetry.PhaseReconRead) || !strings.Contains(body, telemetry.PhaseReconWrit) {
		t.Errorf("-phases listing missing reconstruction phases:\n%s", body)
	}
	if !strings.Contains(body, telemetry.SegQueue) {
		t.Errorf("-phases listing missing disk segments:\n%s", body)
	}
}

func TestBadInvocations(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no arguments exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "no input files") {
		t.Errorf("usage hint missing: %s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"does-not-exist.jsonl"}, &out, &errb); code != 1 {
		t.Errorf("missing file exited %d, want 1", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"meta\":{}}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{bad}, &out, &errb); code != 1 {
		t.Errorf("corrupt file exited %d, want 1", code)
	}
}
