// Command tracestat summarizes span logs written by raidsim -spans or
// experiments -run ext-phases -spans-dir: for each input file it prints a
// per-phase latency-attribution row decomposing mean user response time
// into drive queue wait, reconstruction interference, mechanical service
// (seek/rotate/transfer), stripe lock wait and on-the-fly reconstruction.
//
// Usage:
//
//	tracestat runA.spans.jsonl [runB.spans.jsonl ...]
//	tracestat -phases run.spans.jsonl   # add per-span-name totals
//
// Rows are sorted by (α, mode, file name), so the same inputs always print
// the same table.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"declust/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fileStat is one input file's summary.
type fileStat struct {
	name string
	meta *telemetry.Meta
	attr telemetry.Attribution
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracestat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	phases := fs.Bool("phases", false, "also print per-span-name totals for each file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "tracestat: no input files (expected span JSONL, see raidsim -spans)")
		return 2
	}
	var stats []fileStat
	for _, name := range fs.Args() {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(stderr, "tracestat:", err)
			return 1
		}
		meta, spans, err := telemetry.ReadJSONL(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "tracestat: %s: %v\n", name, err)
			return 1
		}
		stats = append(stats, fileStat{name: name, meta: meta, attr: telemetry.Attribute(spans)})
	}
	// Deterministic order whatever the argument order: by α, then mode
	// (fault-free before degraded before rebuild), then file name.
	modeRank := map[string]int{"faultfree": 0, "degraded": 1, "rebuild": 2}
	sort.SliceStable(stats, func(i, j int) bool {
		a, b := stats[i], stats[j]
		if aa, ba := alphaOf(a), alphaOf(b); aa != ba {
			return aa < ba
		}
		if am, bm := modeRankOf(a, modeRank), modeRankOf(b, modeRank); am != bm {
			return am < bm
		}
		return a.name < b.name
	})

	printTable(stdout, stats)
	if *phases {
		for _, st := range stats {
			fmt.Fprintf(stdout, "\n%s: per-phase totals\n", st.name)
			printPhases(stdout, st.attr.PhaseTotals)
		}
	}
	return 0
}

func alphaOf(st fileStat) float64 {
	if st.meta == nil {
		return -1 // metaless files lead
	}
	return st.meta.Alpha
}

func modeRankOf(st fileStat, rank map[string]int) int {
	if st.meta == nil {
		return -1
	}
	if r, ok := rank[st.meta.Mode]; ok {
		return r
	}
	return len(rank)
}

func printTable(w io.Writer, stats []fileStat) {
	header := []string{"alpha", "mode", "requests", "response", "queue",
		"interfere", "service", "seek", "rotate", "xfer", "lockwait", "otf"}
	rows := [][]string{}
	for _, st := range stats {
		alpha, mode := "—", "—"
		if st.meta != nil {
			alpha = fmt.Sprintf("%.2f", st.meta.Alpha)
			mode = st.meta.Mode
		}
		a := st.attr
		f := func(v float64) string { return fmt.Sprintf("%.1f", v) }
		rows = append(rows, []string{
			alpha, mode, fmt.Sprint(a.Requests),
			f(a.MeanResponseMS), f(a.QueueMS), f(a.InterferenceMS),
			f(a.ServiceMS), f(a.SeekMS), f(a.RotateMS), f(a.TransferMS),
			f(a.LockWaitMS), f(a.OTFMS),
		})
	}
	writeAligned(w, header, rows)
}

func printPhases(w io.Writer, totals []telemetry.PhaseTotal) {
	header := []string{"kind", "phase", "count", "total (ms)"}
	rows := [][]string{}
	for _, pt := range totals {
		rows = append(rows, []string{
			pt.Kind, pt.Name, fmt.Sprint(pt.Count), fmt.Sprintf("%.1f", pt.TotalMS),
		})
	}
	writeAligned(w, header, rows)
}

// writeAligned prints a column-aligned table with a dashed rule, matching
// the experiments package's format.
func writeAligned(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	line(header)
	for i, width := range widths {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprint(w, strings.Repeat("-", width))
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		line(row)
	}
}
