// Command designs explores the block design catalog: print and verify a
// design for a given (C, G), or list every known design as in the paper's
// Figure 4-3.
//
// Usage:
//
//	designs -c 21 -g 5            # print the design Select would use
//	designs -scatter -maxv 41     # Figure 4-3: known designs coverage
//	designs -paper                # the six appendix designs, verified
package main

import (
	"flag"
	"fmt"
	"os"

	"declust"
	"declust/internal/blockdesign"
	"declust/internal/experiments"
)

func main() {
	c := flag.Int("c", 21, "number of objects/disks (v = C)")
	g := flag.Int("g", 5, "tuple size (k = G)")
	scatter := flag.Bool("scatter", false, "list known designs (Figure 4-3)")
	maxv := flag.Int("maxv", 41, "largest v for -scatter")
	paper := flag.Bool("paper", false, "print the paper's six appendix designs")
	tuples := flag.Bool("tuples", false, "print the design's tuples")
	flag.Parse()

	switch {
	case *scatter:
		fmt.Print(experiments.Fig43(*maxv))
	case *paper:
		for _, gg := range blockdesign.PaperG {
			d, err := declust.PaperDesign(gg)
			if err != nil {
				fail(err)
			}
			p, err := d.Params()
			if err != nil {
				fail(err)
			}
			fmt.Printf("G=%-3d %-34s %s\n", gg, d.Source, p)
		}
	default:
		d, exact, err := declust.SelectDesign(*c, *g, 0)
		if err != nil {
			fail(err)
		}
		p, err := d.Params()
		if err != nil {
			fail(err)
		}
		fmt.Printf("selected: %s\n", d.Source)
		fmt.Printf("params:   %s\n", p)
		if !exact {
			fmt.Printf("note:     no feasible design at G=%d; closest feasible α substituted\n", *g)
		}
		if *tuples {
			for i, tup := range d.Tuples {
				fmt.Printf("tuple %3d: %v\n", i, tup)
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "designs:", err)
	os.Exit(1)
}
