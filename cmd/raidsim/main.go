// Command raidsim runs one disk array simulation: fault-free, degraded, or
// full reconstruction, printing the metrics the paper reports.
//
// Usage:
//
//	raidsim -mode recon -c 21 -g 5 -rate 210 -reads 0.5 -procs 8
//	raidsim -mode faultfree -g 21 -rate 378 -reads 1
//	raidsim -mode degraded -g 10 -rate 105 -reads 0 -scale 10
//
// Sweeps (cross-product of comma-separated lists, one row per point;
// -j N fans points over N workers with byte-identical output):
//
//	raidsim -mode recon -sweep-g 3,5,11,21 -j 4
//	raidsim -mode faultfree -sweep-g 5,21 -sweep-rate 105,210,315 -j 0
//
// Fault injection:
//
//	raidsim -mode recon -lse-rate 1000 -transient-rate 0.01 -scrub-interval 50 -fault-seed 7
//	raidsim -second-failure -g 5        # enumerate double-failure damage, no simulation
//
// Dual parity (RAID-6-style P+Q; survives any two failures):
//
//	raidsim -mode recon -parities 2 -g 5
//	raidsim -second-failure -parities 2 -g 5    # the same enumeration, zero loss
//
// Observability:
//
//	raidsim -mode recon -metrics out.txt -series out.csv -events ev.jsonl -progress
//	raidsim -mode recon -spans run.spans.jsonl -chrome-trace run.trace.json
//	raidsim -mode recon -listen :6060     # live /metrics, /progress, /debug/pprof
//	raidsim -mode recon -cpuprofile cpu.pprof -memprofile mem.pprof
//
// -spans output feeds cmd/tracestat; -chrome-trace output loads in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"declust/internal/experiments"
	"declust/internal/trace"

	"declust"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "raidsim:", err)
		os.Exit(1)
	}
}

// run executes one raidsim invocation, printing results to stdout and
// progress/usage to stderr. Factored from main so tests can drive the
// whole command and compare outputs byte for byte.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("raidsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "recon", "faultfree | degraded | recon")
	c := fs.Int("c", 21, "number of disks")
	g := fs.Int("g", 5, "parity stripe size (g = c selects RAID 5)")
	parities := fs.Int("parities", 1, "parity units per stripe: 1 (code P) or 2 (P+Q dual parity)")
	rate := fs.Float64("rate", 210, "user accesses per second")
	reads := fs.Float64("reads", 0.5, "fraction of user accesses that are reads")
	alg := fs.String("alg", "baseline", "baseline | user-writes | redirect | piggyback")
	procs := fs.Int("procs", 1, "parallel reconstruction processes")
	scale := fs.Int("scale", 1, "disk capacity divisor (1 = full IBM 0661)")
	seed := fs.Int64("seed", 1, "workload seed")
	warm := fs.Float64("warmup", 10, "warmup seconds before measurement")
	measure := fs.Float64("measure", 120, "measurement seconds (faultfree/degraded)")
	throttle := fs.Float64("throttle", 0, "max reconstruction cycles/s per process (0 = off)")
	lowprio := fs.Bool("lowprio", false, "schedule reconstruction below user accesses")
	sched := fs.String("sched", "cvscan", "disk queue scheduler: cvscan | fifo | sstf | cscan")
	readahead := fs.Int("readahead", 0, "disk track read-ahead buffer in tracks (0 = off)")
	prio := fs.String("prio", "equal", "reconstruction scheduling class: equal | demote (same as -lowprio)")
	prioAge := fs.Float64("prio-age", 0, "promote starved low-class disk requests after this many simulated ms (0 = strict classes)")
	seqFrac := fs.Float64("seq", 0, "fraction of user accesses that are sequential continuations (0 = pure random)")
	size := fs.Int("size", 1, "access size in 4 KB stripe units")
	sparing := fs.Bool("sparing", false, "distributed sparing: reconstruct into per-stripe spare units")
	datamap := fs.String("datamap", "stripe-index", "data mapping: stripe-index | parallel")
	faultSeed := fs.Int64("fault-seed", 1, "fault injector seed (independent of -seed)")
	lseRate := fs.Float64("lse-rate", 0, "latent sector errors per GB per simulated hour (0 = off)")
	transientRate := fs.Float64("transient-rate", 0, "per-request timeout probability in [0, 0.9] (0 = off)")
	timeoutMS := fs.Float64("timeout-ms", 0, "stall per transient timeout in simulated ms (0 = 50)")
	scrubInterval := fs.Float64("scrub-interval", 0, "simulated ms between scrubbed stripes (0 = no scrubbing)")
	secondFailure := fs.Bool("second-failure", false, "enumerate double-failure damage for this layout and exit (no simulation)")
	sweepG := fs.String("sweep-g", "", "comma-separated parity stripe sizes: run one point per (g, rate) pair")
	sweepRate := fs.String("sweep-rate", "", "comma-separated access rates for the sweep cross-product")
	workers := fs.Int("j", 1, "parallel sweep workers (0 = GOMAXPROCS); output is identical for any value")
	traceOut := fs.String("trace", "", "write the measured user accesses to this trace file")
	replayIn := fs.String("replay", "", "replay a trace file instead of the synthetic workload")
	metricsOut := fs.String("metrics", "", "write Prometheus-style metrics to this file")
	seriesOut := fs.String("series", "", "write per-disk time-series CSV to this file")
	eventsOut := fs.String("events", "", "write a JSONL event trace (accesses, disk requests, recon cycles, faults) to this file")
	sampleMS := fs.Float64("sample", 1000, "time-series cadence in simulated ms (with -series)")
	spansOut := fs.String("spans", "", "write request-lifecycle spans (JSONL, for tracestat) to this file")
	chromeOut := fs.String("chrome-trace", "", "write a Chrome trace-event JSON (Perfetto-viewable) to this file")
	listen := fs.String("listen", "", "serve live /metrics, /progress and /debug/pprof on this address (e.g. :6060)")
	progress := fs.Bool("progress", false, "print reconstruction progress lines to stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *parities != 1 && *parities != 2 {
		return fmt.Errorf("-parities %d: must be 1 (P) or 2 (P+Q)", *parities)
	}

	if *secondFailure {
		return reportSecondFailure(stdout, *c, *g, *scale, *parities)
	}

	algorithm := map[string]declust.ReconAlgorithm{
		"baseline":    declust.Baseline,
		"user-writes": declust.UserWrites,
		"redirect":    declust.Redirect,
		"piggyback":   declust.RedirectPiggyback,
	}[*alg]

	policy, err := declust.ParseSchedPolicy(*sched)
	if err != nil {
		return err
	}
	switch *prio {
	case "equal":
	case "demote":
		*lowprio = true
	default:
		return fmt.Errorf("-prio %q: want equal or demote", *prio)
	}

	cfg := declust.SimConfig{
		C: *c, G: *g,
		ScaleNum: 1, ScaleDen: *scale,
		RatePerSec:   *rate,
		ReadFraction: *reads,
		AccessUnits:  *size,
		Seed:         *seed,
		Algorithm:    algorithm,
		ReconProcs:   *procs,
		WarmupMS:     *warm * 1000,
		MeasureMS:    *measure * 1000,

		ParallelDataMap:           *datamap == "parallel",
		DistributedSparing:        *sparing,
		ReconThrottleCyclesPerSec: *throttle,
		ReconLowPriority:          *lowprio,

		SchedPolicy:        policy,
		ReadAheadTracks:    *readahead,
		PrioAgeMS:          *prioAge,
		SequentialFraction: *seqFrac,

		FaultSeed:        *faultSeed,
		LSERatePerGBHour: *lseRate,
		TransientRate:    *transientRate,
		FaultTimeoutMS:   *timeoutMS,
		ScrubIntervalMS:  *scrubInterval,
	}
	if *parities == 2 {
		// Left at the zero value for -parities 1 so default invocations
		// stay byte-identical to earlier builds (0 and 1 both mean P).
		cfg.Parities = 2
	}
	faultsOn := *lseRate > 0 || *transientRate > 0 || *scrubInterval > 0
	// Printed only when some scheduling knob left its default, so default
	// invocations produce byte-identical output to earlier builds.
	schedOn := policy != declust.SchedCVSCAN || *readahead > 0 || *prioAge > 0 || *seqFrac > 0

	// -listen works in every mode; the server outlives the run so a final
	// scrape still sees the completed state.
	var live *declust.LiveServer
	if *listen != "" {
		live = declust.NewLiveServer()
		addr, err := live.Start(*listen)
		if err != nil {
			return err
		}
		defer live.Close()
		fmt.Fprintf(stderr, "telemetry: serving /metrics, /progress, /debug/pprof on http://%s\n", addr)
	}

	if *sweepG != "" || *sweepRate != "" {
		if *traceOut != "" || *replayIn != "" || *metricsOut != "" || *seriesOut != "" ||
			*eventsOut != "" || *spansOut != "" || *chromeOut != "" ||
			*cpuprofile != "" || *memprofile != "" || *progress {
			return fmt.Errorf("sweep mode does not combine with per-run outputs (-trace, -replay, -metrics, -series, -events, -spans, -chrome-trace, -progress, profiles)")
		}
		gs, err := parseIntList(*sweepG, *g)
		if err != nil {
			return fmt.Errorf("-sweep-g: %w", err)
		}
		rates, err := parseFloatList(*sweepRate, *rate)
		if err != nil {
			return fmt.Errorf("-sweep-rate: %w", err)
		}
		w := *workers
		if w == 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if schedOn {
			fmt.Fprintf(stdout, "sched:  %s, read-ahead %d track(s), prio-age %.0f ms, sequential %.0f%%\n",
				policy, *readahead, *prioAge, *seqFrac*100)
		}
		return runSweep(stdout, cfg, *mode, gs, rates, w, live)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	var reg *declust.MetricsRegistry
	if *metricsOut != "" || *seriesOut != "" || live != nil {
		reg = declust.NewMetricsRegistry()
		cfg.Metrics = reg
		if *seriesOut != "" {
			cfg.SampleEveryMS = *sampleMS
		}
	}
	var spans *declust.SpanTracer
	if *spansOut != "" || *chromeOut != "" {
		spans = declust.NewSpanTracer()
		cfg.Spans = spans
	}
	if live != nil {
		// The simulation thread publishes snapshots; HTTP handlers only ever
		// read copies, so the run stays single-threaded and deterministic.
		liveMode := *mode
		cfg.OnLive = func(st declust.LiveStatus) {
			live.PublishMetrics(reg)
			live.PublishProgress(declust.LiveProgress{
				SimMS:          st.SimMS,
				Mode:           liveMode,
				Requests:       st.Requests,
				MeanResponseMS: st.MeanResponseMS,
				DiskUtil:       st.DiskUtil,
				DiskQueue:      st.DiskQueue,
				ReconDone:      st.ReconDone,
				ReconTotal:     st.ReconTotal,
				ReconETAMS:     st.ReconETAMS,
			})
		}
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		jl := declust.NewJSONLTracer(f)
		cfg.Tracer = jl
		defer func() {
			jl.Flush()
			f.Close()
		}()
	}
	if *progress {
		wallStart := time.Now()
		lastPrint := time.Time{}
		cfg.OnProgress = func(p declust.Progress) {
			final := p.TotalUnits > 0 && p.DoneUnits == p.TotalUnits
			if !final && time.Since(lastPrint) < 200*time.Millisecond {
				return
			}
			lastPrint = time.Now()
			pct := 0.0
			if p.TotalUnits > 0 {
				pct = 100 * float64(p.DoneUnits) / float64(p.TotalUnits)
			}
			rate := float64(p.EventsFired) / time.Since(wallStart).Seconds()
			fmt.Fprintf(stderr, "recon %5.1f%% (%d/%d units)  sim %.1fs  ETA %.1fs  [%.2fM events/s]\n",
				pct, p.DoneUnits, p.TotalUnits, p.SimMS/1000, p.ETAMS/1000, rate/1e6)
		}
	}

	var captured trace.Log
	if *traceOut != "" {
		cfg.CaptureTrace = &captured
	}
	if *replayIn != "" {
		f, err := os.Open(*replayIn)
		if err != nil {
			return err
		}
		log, err := trace.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		rep, err := trace.NewReplayer(log)
		if err != nil {
			return err
		}
		cfg.Source = rep
		fmt.Fprintf(stdout, "replaying %d recorded accesses from %s\n", log.Len(), *replayIn)
	}

	newMap := declust.NewMapping
	if *parities == 2 {
		newMap = declust.NewPQMapping
	}
	m, err := newMap(*c, *g, 0)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "array:    ", m.Describe())
	fmt.Fprintf(stdout, "workload:  %.0f accesses/s, %.0f%% reads, seed %d\n", *rate, *reads*100, *seed)
	if schedOn {
		fmt.Fprintf(stdout, "sched:     %s, read-ahead %d track(s), prio-age %.0f ms, sequential %.0f%%\n",
			policy, *readahead, *prioAge, *seqFrac*100)
	}
	if faultsOn {
		fmt.Fprintf(stdout, "faults:    lse %.3g/GB/h, transient %.3g, scrub every %.0f ms, seed %d\n",
			*lseRate, *transientRate, *scrubInterval, *faultSeed)
	}

	wallStart := time.Now()
	var res declust.Metrics
	switch *mode {
	case "faultfree":
		res, err = declust.RunFaultFree(cfg)
	case "degraded":
		res, err = declust.RunDegraded(cfg)
	case "recon":
		fmt.Fprintf(stdout, "recovery:  %s algorithm, %d process(es)\n", algorithm, *procs)
		res, err = declust.RunReconstruction(cfg)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		return err
	}
	wall := time.Since(wallStart)

	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "user response:  mean %.1f ms, σ %.1f ms, P90 %.1f ms (%d requests)\n",
		res.MeanResponseMS, res.StdResponseMS, res.P90ResponseMS, res.Requests)
	if *mode == "recon" {
		fmt.Fprintf(stdout, "reconstruction: %.1f minutes (%.0f ms), %d sweep cycles\n",
			res.ReconTimeMS/60_000, res.ReconTimeMS, res.ReconCycles)
		fmt.Fprintf(stdout, "recon cycle:    read %.1f ms (σ %.1f) + write %.1f ms (σ %.1f)\n",
			res.ReadPhaseMeanMS, res.ReadPhaseStdMS, res.WritePhaseMeanMS, res.WritePhaseStdMS)
	}
	if *readahead > 0 {
		fmt.Fprintf(stdout, "disk cache:     %d read-ahead hits (%d sectors served without mechanical work)\n",
			res.CacheHits, res.CacheHitSectors)
	}
	if faultsOn {
		fmt.Fprintf(stdout, "faults:         %d LSEs injected, %d media errors, %d retries\n",
			res.LSEArrivals, res.MediaErrors, res.TransientRetries)
		fmt.Fprintf(stdout, "repairs:        %d from parity, %d units lost (%d loss events), scrub found %d in %d passes\n",
			res.LatentRepairs, res.LostUnits, res.DataLossEvents, res.ScrubErrorsFound, res.ScrubPasses)
	}
	fmt.Fprintf(stdout, "engine:         %d events, sim %.1fs in wall %.2fs (%.2fM events/s)\n",
		res.EngineEvents, res.SimEndMS/1000, wall.Seconds(),
		float64(res.EngineEvents)/wall.Seconds()/1e6)

	if *metricsOut != "" {
		if err := writeFile(*metricsOut, reg.WritePrometheus); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "metrics:        written to %s\n", *metricsOut)
	}
	if *seriesOut != "" {
		if err := writeFile(*seriesOut, reg.WriteCSV); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "series:         written to %s\n", *seriesOut)
	}
	if *eventsOut != "" {
		fmt.Fprintf(stdout, "events:         written to %s\n", *eventsOut)
	}
	if *spansOut != "" {
		meta := &declust.SpanMeta{C: *c, G: *g, Alpha: m.Alpha(), Mode: *mode, Seed: *seed}
		if err := writeFile(*spansOut, func(w io.Writer) error {
			return spans.WriteJSONL(w, meta)
		}); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "spans:          %d spans written to %s\n", spans.Len(), *spansOut)
	}
	if *chromeOut != "" {
		if err := writeFile(*chromeOut, spans.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "chrome trace:   written to %s (load in Perfetto or chrome://tracing)\n", *chromeOut)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if _, err := captured.WriteTo(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace:          %d accesses written to %s\n", captured.Len(), *traceOut)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// runSweep simulates the cross-product of parity stripe sizes and access
// rates, one independent simulation per point, and prints one row per point
// in sweep order. Each point builds its own engine, array and RNG streams
// from the shared base config, so fanning the points over workers changes
// wall-clock time only: every row is formatted by the point that produced it
// and printed in index order, making the output byte-identical for any -j.
// A non-nil live server tracks sweep completion at /progress.
func runSweep(stdout io.Writer, base declust.SimConfig, mode string, gs []int, rates []float64, workers int, live *declust.LiveServer) error {
	type point struct {
		g    int
		rate float64
	}
	var pts []point
	for _, g := range gs {
		for _, r := range rates {
			pts = append(pts, point{g, r})
		}
	}
	if live != nil {
		live.SweepStart(len(pts))
	}
	fmt.Fprintf(stdout, "sweep:  %d point(s), mode %s, seed %d\n", len(pts), mode, base.Seed)
	if mode == "recon" {
		fmt.Fprintln(stdout, "    g     rate   mean ms    P90 ms   recon min      events")
	} else {
		fmt.Fprintln(stdout, "    g     rate   mean ms    P90 ms      events")
	}
	rows, err := experiments.RunPoints(workers, len(pts), func(i int) (string, error) {
		cfg := base
		cfg.G = pts[i].g
		cfg.RatePerSec = pts[i].rate
		var res declust.Metrics
		var err error
		switch mode {
		case "faultfree":
			res, err = declust.RunFaultFree(cfg)
		case "degraded":
			res, err = declust.RunDegraded(cfg)
		case "recon":
			res, err = declust.RunReconstruction(cfg)
		default:
			err = fmt.Errorf("unknown mode %q", mode)
		}
		if err != nil {
			return "", fmt.Errorf("sweep g=%d rate=%g: %w", pts[i].g, pts[i].rate, err)
		}
		if live != nil {
			live.SweepPointDone()
		}
		if mode == "recon" {
			return fmt.Sprintf("%5d %8.0f %9.1f %9.1f %11.1f %11d",
				pts[i].g, pts[i].rate, res.MeanResponseMS, res.P90ResponseMS,
				res.ReconTimeMS/60_000, res.EngineEvents), nil
		}
		return fmt.Sprintf("%5d %8.0f %9.1f %9.1f %11d",
			pts[i].g, pts[i].rate, res.MeanResponseMS, res.P90ResponseMS, res.EngineEvents), nil
	})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintln(stdout, r)
	}
	return nil
}

// parseIntList splits a comma-separated int list, or returns [def] when the
// flag was left empty (so a single-axis sweep only names the axis it varies).
func parseIntList(s string, def int) ([]int, error) {
	if s == "" {
		return []int{def}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloatList is parseIntList for float64 axes.
func parseFloatList(s string, def float64) ([]float64, error) {
	if s == "" {
		return []float64{def}, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// reportSecondFailure prints the damage enumeration for a second
// whole-disk failure at the worst moment (first failure fully unrecovered):
// the paper's partial-loss advantage, computed without simulating a single
// I/O. Under P+Q (parities = 2) every doubly-dead stripe still decodes,
// so the same enumeration reports zero loss.
func reportSecondFailure(stdout io.Writer, c, g, scale, parities int) error {
	newMap := declust.NewMapping
	if parities == 2 {
		newMap = declust.NewPQMapping
	}
	m, err := newMap(c, g, 0)
	if err != nil {
		return err
	}
	arr, err := declust.NewIdleArray(m, scale)
	if err != nil {
		return err
	}
	if err := arr.Fail(0); err != nil {
		return err
	}
	df, err := arr.SecondFail(1)
	if err != nil {
		return err
	}
	frac := 0.0
	if df.StripesAtRisk > 0 {
		frac = float64(df.StripesLost) / float64(df.StripesAtRisk)
	}
	fmt.Fprintln(stdout, "array:    ", m.Describe())
	fmt.Fprintf(stdout, "second failure (disk 1 dies with disk 0 unrecovered):\n")
	fmt.Fprintf(stdout, "  stripes at risk: %d\n", df.StripesAtRisk)
	fmt.Fprintf(stdout, "  stripes lost:    %d (fraction %.3f, α = %.3f)\n", df.StripesLost, frac, m.Alpha())
	fmt.Fprintf(stdout, "  units lost:      %d\n", df.UnitsLost)
	switch {
	case parities == 2:
		fmt.Fprintf(stdout, "  P+Q: all %d doubly-dead stripes decode through Q — nothing is lost.\n",
			df.StripesSurvived)
	case g == c:
		fmt.Fprintln(stdout, "  RAID 5: every at-risk stripe has units on both disks — total loss.")
	default:
		fmt.Fprintln(stdout, "  declustering loses only the stripes with units on both failed disks.")
	}
	return nil
}

// writeFile writes one export to path via the given emitter.
func writeFile(path string, emit func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		return err
	}
	return f.Close()
}
