// Command raidsim runs one disk array simulation: fault-free, degraded, or
// full reconstruction, printing the metrics the paper reports.
//
// Usage:
//
//	raidsim -mode recon -c 21 -g 5 -rate 210 -reads 0.5 -procs 8
//	raidsim -mode faultfree -g 21 -rate 378 -reads 1
//	raidsim -mode degraded -g 10 -rate 105 -reads 0 -scale 10
//
// Observability:
//
//	raidsim -mode recon -metrics out.txt -series out.csv -events ev.jsonl -progress
//	raidsim -mode recon -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"declust/internal/trace"

	"declust"
)

func main() {
	mode := flag.String("mode", "recon", "faultfree | degraded | recon")
	c := flag.Int("c", 21, "number of disks")
	g := flag.Int("g", 5, "parity stripe size (g = c selects RAID 5)")
	rate := flag.Float64("rate", 210, "user accesses per second")
	reads := flag.Float64("reads", 0.5, "fraction of user accesses that are reads")
	alg := flag.String("alg", "baseline", "baseline | user-writes | redirect | piggyback")
	procs := flag.Int("procs", 1, "parallel reconstruction processes")
	scale := flag.Int("scale", 1, "disk capacity divisor (1 = full IBM 0661)")
	seed := flag.Int64("seed", 1, "workload seed")
	warm := flag.Float64("warmup", 10, "warmup seconds before measurement")
	measure := flag.Float64("measure", 120, "measurement seconds (faultfree/degraded)")
	throttle := flag.Float64("throttle", 0, "max reconstruction cycles/s per process (0 = off)")
	lowprio := flag.Bool("lowprio", false, "schedule reconstruction below user accesses")
	size := flag.Int("size", 1, "access size in 4 KB stripe units")
	sparing := flag.Bool("sparing", false, "distributed sparing: reconstruct into per-stripe spare units")
	datamap := flag.String("datamap", "stripe-index", "data mapping: stripe-index | parallel")
	traceOut := flag.String("trace", "", "write the measured user accesses to this trace file")
	replayIn := flag.String("replay", "", "replay a trace file instead of the synthetic workload")
	metricsOut := flag.String("metrics", "", "write Prometheus-style metrics to this file")
	seriesOut := flag.String("series", "", "write per-disk time-series CSV to this file")
	eventsOut := flag.String("events", "", "write a JSONL event trace (accesses, disk requests, recon cycles) to this file")
	sampleMS := flag.Float64("sample", 1000, "time-series cadence in simulated ms (with -series)")
	progress := flag.Bool("progress", false, "print reconstruction progress lines to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	algorithm := map[string]declust.ReconAlgorithm{
		"baseline":    declust.Baseline,
		"user-writes": declust.UserWrites,
		"redirect":    declust.Redirect,
		"piggyback":   declust.RedirectPiggyback,
	}[*alg]

	cfg := declust.SimConfig{
		C: *c, G: *g,
		ScaleNum: 1, ScaleDen: *scale,
		RatePerSec:   *rate,
		ReadFraction: *reads,
		AccessUnits:  *size,
		Seed:         *seed,
		Algorithm:    algorithm,
		ReconProcs:   *procs,
		WarmupMS:     *warm * 1000,
		MeasureMS:    *measure * 1000,

		ParallelDataMap:           *datamap == "parallel",
		DistributedSparing:        *sparing,
		ReconThrottleCyclesPerSec: *throttle,
		ReconLowPriority:          *lowprio,
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	var reg *declust.MetricsRegistry
	if *metricsOut != "" || *seriesOut != "" {
		reg = declust.NewMetricsRegistry()
		cfg.Metrics = reg
		if *seriesOut != "" {
			cfg.SampleEveryMS = *sampleMS
		}
	}
	var events *os.File
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fail(err)
		}
		events = f
		jl := declust.NewJSONLTracer(f)
		cfg.Tracer = jl
		defer func() {
			if err := jl.Flush(); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
	}
	if *progress {
		wallStart := time.Now()
		lastPrint := time.Time{}
		cfg.OnProgress = func(p declust.Progress) {
			final := p.TotalUnits > 0 && p.DoneUnits == p.TotalUnits
			if !final && time.Since(lastPrint) < 200*time.Millisecond {
				return
			}
			lastPrint = time.Now()
			pct := 0.0
			if p.TotalUnits > 0 {
				pct = 100 * float64(p.DoneUnits) / float64(p.TotalUnits)
			}
			rate := float64(p.EventsFired) / time.Since(wallStart).Seconds()
			fmt.Fprintf(os.Stderr, "recon %5.1f%% (%d/%d units)  sim %.1fs  ETA %.1fs  [%.2fM events/s]\n",
				pct, p.DoneUnits, p.TotalUnits, p.SimMS/1000, p.ETAMS/1000, rate/1e6)
		}
	}

	var captured trace.Log
	if *traceOut != "" {
		cfg.CaptureTrace = &captured
	}
	if *replayIn != "" {
		f, err := os.Open(*replayIn)
		if err != nil {
			fail(err)
		}
		log, err := trace.Read(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		rep, err := trace.NewReplayer(log)
		if err != nil {
			fail(err)
		}
		cfg.Source = rep
		fmt.Printf("replaying %d recorded accesses from %s\n", log.Len(), *replayIn)
	}

	m, err := declust.NewMapping(*c, *g, 0)
	if err != nil {
		fail(err)
	}
	fmt.Println("array:    ", m.Describe())
	fmt.Printf("workload:  %.0f accesses/s, %.0f%% reads, seed %d\n", *rate, *reads*100, *seed)

	wallStart := time.Now()
	var res declust.Metrics
	switch *mode {
	case "faultfree":
		res, err = declust.RunFaultFree(cfg)
	case "degraded":
		res, err = declust.RunDegraded(cfg)
	case "recon":
		fmt.Printf("recovery:  %s algorithm, %d process(es)\n", algorithm, *procs)
		res, err = declust.RunReconstruction(cfg)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fail(err)
	}
	wall := time.Since(wallStart)

	fmt.Println()
	fmt.Printf("user response:  mean %.1f ms, σ %.1f ms, P90 %.1f ms (%d requests)\n",
		res.MeanResponseMS, res.StdResponseMS, res.P90ResponseMS, res.Requests)
	if *mode == "recon" {
		fmt.Printf("reconstruction: %.1f minutes (%.0f ms), %d sweep cycles\n",
			res.ReconTimeMS/60_000, res.ReconTimeMS, res.ReconCycles)
		fmt.Printf("recon cycle:    read %.1f ms (σ %.1f) + write %.1f ms (σ %.1f)\n",
			res.ReadPhaseMeanMS, res.ReadPhaseStdMS, res.WritePhaseMeanMS, res.WritePhaseStdMS)
	}
	fmt.Printf("engine:         %d events, sim %.1fs in wall %.2fs (%.2fM events/s)\n",
		res.EngineEvents, res.SimEndMS/1000, wall.Seconds(),
		float64(res.EngineEvents)/wall.Seconds()/1e6)

	if *metricsOut != "" {
		writeFile(*metricsOut, reg.WritePrometheus)
		fmt.Printf("metrics:        written to %s\n", *metricsOut)
	}
	if *seriesOut != "" {
		writeFile(*seriesOut, reg.WriteCSV)
		fmt.Printf("series:         written to %s\n", *seriesOut)
	}
	if events != nil {
		fmt.Printf("events:         written to %s\n", *eventsOut)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if _, err := captured.WriteTo(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace:          %d accesses written to %s\n", captured.Len(), *traceOut)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
}

// writeFile writes one export to path via the given emitter.
func writeFile(path string, emit func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := emit(f); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "raidsim:", err)
	os.Exit(1)
}
