package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stripWallClock drops the one output line whose content depends on
// wall-clock time (events/s throughput).
func stripWallClock(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "wall") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// goldenDir returns the directory golden outputs are written into: the
// RAIDSIM_GOLDEN_DIR environment variable when set (CI points it at a
// workspace path and uploads it as an artifact when a determinism test
// fails), else a per-test temp dir.
func goldenDir(t *testing.T) string {
	if dir := os.Getenv("RAIDSIM_GOLDEN_DIR"); dir != "" {
		sub := filepath.Join(dir, t.Name())
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		return sub
	}
	return t.TempDir()
}

// TestGoldenDeterminism runs the full command twice with every fault
// process enabled and requires byte-identical results: same stdout (modulo
// the wall-clock line), same Prometheus export, same JSONL event trace.
func TestGoldenDeterminism(t *testing.T) {
	dir := goldenDir(t)
	invoke := func(tag string) (string, []byte, []byte) {
		metrics := filepath.Join(dir, tag+".prom")
		events := filepath.Join(dir, tag+".jsonl")
		args := []string{
			"-mode", "recon", "-c", "21", "-g", "5", "-scale", "50",
			"-rate", "105", "-reads", "0.5", "-procs", "4",
			"-warmup", "2", "-measure", "10",
			"-fault-seed", "7", "-lse-rate", "100000",
			"-transient-rate", "0.02", "-scrub-interval", "20",
			"-metrics", metrics, "-events", events,
		}
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err != nil {
			t.Fatalf("run %s: %v\nstderr: %s", tag, err, errb.String())
		}
		prom, err := os.ReadFile(metrics)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := os.ReadFile(events)
		if err != nil {
			t.Fatal(err)
		}
		// The export lines name their output files; normalize the paths.
		stdout := strings.ReplaceAll(out.String(), tag+".prom", "OUT.prom")
		stdout = strings.ReplaceAll(stdout, tag+".jsonl", "OUT.jsonl")
		return stripWallClock(stdout), prom, ev
	}
	out1, prom1, ev1 := invoke("a")
	out2, prom2, ev2 := invoke("b")
	if out1 != out2 {
		t.Errorf("stdout differs between identical runs:\n--- a ---\n%s\n--- b ---\n%s", out1, out2)
	}
	if !bytes.Equal(prom1, prom2) {
		t.Error("Prometheus exports differ between identical runs")
	}
	if !bytes.Equal(ev1, ev2) {
		t.Error("JSONL event traces differ between identical runs")
	}
	if len(ev1) == 0 {
		t.Error("event trace empty despite tracer enabled")
	}
	for _, want := range []string{"faults:", "repairs:", "LSEs injected"} {
		if !strings.Contains(out1, want) {
			t.Errorf("fault summary missing %q in output:\n%s", want, out1)
		}
	}
}

// TestGoldenDeterminismPerScheduler repeats the golden check for every
// scheduling policy with read-ahead, demotion and age promotion all
// active: same seed and flags must reproduce stdout and the JSONL event
// trace byte for byte under each policy.
func TestGoldenDeterminismPerScheduler(t *testing.T) {
	for _, sched := range []string{"cvscan", "fifo", "sstf", "cscan"} {
		t.Run(sched, func(t *testing.T) {
			dir := goldenDir(t)
			invoke := func(tag string) (string, []byte) {
				events := filepath.Join(dir, tag+".jsonl")
				args := []string{
					"-mode", "recon", "-c", "21", "-g", "5", "-scale", "50",
					"-rate", "105", "-reads", "0.5", "-procs", "4",
					"-warmup", "2", "-measure", "10",
					"-sched", sched, "-readahead", "2",
					"-prio", "demote", "-prio-age", "40", "-seq", "0.3",
					"-events", events,
				}
				var out, errb bytes.Buffer
				if err := run(args, &out, &errb); err != nil {
					t.Fatalf("run %s: %v\nstderr: %s", tag, err, errb.String())
				}
				ev, err := os.ReadFile(events)
				if err != nil {
					t.Fatal(err)
				}
				stdout := strings.ReplaceAll(out.String(), tag+".jsonl", "OUT.jsonl")
				return stripWallClock(stdout), ev
			}
			out1, ev1 := invoke("a")
			out2, ev2 := invoke("b")
			if out1 != out2 {
				t.Errorf("stdout differs between identical -sched %s runs:\n--- a ---\n%s\n--- b ---\n%s",
					sched, out1, out2)
			}
			if !bytes.Equal(ev1, ev2) {
				t.Errorf("-sched %s JSONL event traces differ between identical runs", sched)
			}
			if !strings.Contains(out1, "sched:     "+sched) {
				t.Errorf("missing sched description line in output:\n%s", out1)
			}
			if !strings.Contains(out1, "disk cache:") {
				t.Errorf("missing disk cache line with -readahead 2:\n%s", out1)
			}
		})
	}
}

// TestExplicitSchedulingDefaultsMatchImplicit pins the compatibility
// contract: spelling out every scheduling default produces byte-identical
// output to not passing the flags at all (the pre-scheduler behaviour).
func TestExplicitSchedulingDefaultsMatchImplicit(t *testing.T) {
	invoke := func(extra ...string) string {
		args := append([]string{
			"-mode", "recon", "-c", "21", "-g", "5", "-scale", "50",
			"-rate", "105", "-reads", "0.5", "-procs", "4",
			"-warmup", "2", "-measure", "10",
		}, extra...)
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err != nil {
			t.Fatalf("run %v: %v\nstderr: %s", extra, err, errb.String())
		}
		return stripWallClock(out.String())
	}
	implicit := invoke()
	explicit := invoke("-sched", "cvscan", "-readahead", "0", "-prio", "equal", "-prio-age", "0", "-seq", "0")
	if implicit != explicit {
		t.Errorf("explicit scheduling defaults diverge from implicit ones:\n--- implicit ---\n%s\n--- explicit ---\n%s",
			implicit, explicit)
	}
	if strings.Contains(implicit, "sched:") {
		t.Errorf("sched description line printed for a default run:\n%s", implicit)
	}
}

// TestSchedulerChangesServiceOrder requires the policies to actually take
// effect end to end: FIFO and SSTF runs of the same loaded configuration
// must report different response times.
func TestSchedulerChangesServiceOrder(t *testing.T) {
	invoke := func(sched string) string {
		args := []string{
			"-mode", "degraded", "-c", "21", "-g", "5", "-scale", "50",
			"-rate", "315", "-reads", "0.5",
			"-warmup", "2", "-measure", "10", "-sched", sched,
		}
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err != nil {
			t.Fatalf("run -sched %s: %v\nstderr: %s", sched, err, errb.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.Contains(line, "user response:") {
				return line
			}
		}
		t.Fatalf("no response line in output:\n%s", out.String())
		return ""
	}
	if fifo, sstf := invoke("fifo"), invoke("sstf"); fifo == sstf {
		t.Errorf("FIFO and SSTF produced identical response lines under load:\n%s", fifo)
	}
}

// TestSweepDeterministicAcrossWorkers runs the same sweep serially and
// fanned over 8 workers and requires byte-identical stdout: parallelism may
// only change wall-clock time, never a result.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	invoke := func(j string) string {
		args := []string{
			"-mode", "recon", "-c", "21", "-scale", "50",
			"-sweep-g", "3,5,11,21", "-sweep-rate", "105,210",
			"-rate", "105", "-reads", "0.5", "-procs", "4",
			"-warmup", "2", "-measure", "10", "-j", j,
		}
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err != nil {
			t.Fatalf("run -j %s: %v\nstderr: %s", j, err, errb.String())
		}
		return out.String()
	}
	serial := invoke("1")
	parallel := invoke("8")
	if serial != parallel {
		t.Errorf("sweep output differs between -j 1 and -j 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	if n := strings.Count(serial, "\n"); n < 10 {
		t.Errorf("sweep printed %d lines, want 8 point rows plus headers:\n%s", n, serial)
	}
}

// TestSweepRejectsPerRunOutputs keeps the single-run exporters out of sweep
// mode, where several simulations would race on one output file.
func TestSweepRejectsPerRunOutputs(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-sweep-g", "3,5", "-events", "x.jsonl"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "sweep mode") {
		t.Fatalf("got %v, want sweep-mode rejection", err)
	}
}

// TestSecondFailureReport checks the enumeration mode: declustered layouts
// report a lost fraction near α, RAID 5 reports total loss, and the output
// is deterministic (pure enumeration, no simulation).
func TestSecondFailureReport(t *testing.T) {
	var declustered bytes.Buffer
	if err := run([]string{"-second-failure", "-g", "5", "-scale", "50"}, &declustered, &declustered); err != nil {
		t.Fatal(err)
	}
	out := declustered.String()
	if !strings.Contains(out, "α = 0.200") {
		t.Errorf("missing α in declustered report:\n%s", out)
	}
	if !strings.Contains(out, "fraction 0.200") {
		t.Errorf("declustered lost fraction not 0.200:\n%s", out)
	}

	var raid5 bytes.Buffer
	if err := run([]string{"-second-failure", "-g", "21", "-scale", "50"}, &raid5, &raid5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(raid5.String(), "fraction 1.000") {
		t.Errorf("RAID 5 did not lose everything:\n%s", raid5.String())
	}

	var again bytes.Buffer
	if err := run([]string{"-second-failure", "-g", "5", "-scale", "50"}, &again, &again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Error("second-failure report not deterministic")
	}
}

// TestSecondFailurePQReportsZeroLoss pins the enumeration under -parities 2:
// the same worst-case double failure that costs single parity α of its
// at-risk stripes decodes completely under P+Q.
func TestSecondFailurePQReportsZeroLoss(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-second-failure", "-parities", "2", "-g", "5", "-scale", "50"}, &out, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"P+Q", "stripes lost:    0", "units lost:      0", "nothing is lost"} {
		if !strings.Contains(got, want) {
			t.Errorf("P+Q second-failure report missing %q:\n%s", want, got)
		}
	}
}

// TestDualParityRun drives a full simulated run under -parities 2 and
// checks the array description advertises the code.
func TestDualParityRun(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-mode", "faultfree", "-parities", "2", "-scale", "50", "-warmup", "1", "-measure", "5"}
	if err := run(args, &out, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "P+Q") {
		t.Errorf("array description does not name the P+Q code:\n%s", out.String())
	}
}

// TestExplicitSingleParityMatchesImplicit pins the compatibility contract
// for the new flag: -parities 1 spelled out produces byte-identical output
// to leaving it off entirely.
func TestExplicitSingleParityMatchesImplicit(t *testing.T) {
	invoke := func(extra ...string) string {
		args := append([]string{"-mode", "faultfree", "-scale", "50", "-warmup", "1", "-measure", "5"}, extra...)
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err != nil {
			t.Fatalf("run %v: %v\nstderr: %s", extra, err, errb.String())
		}
		return stripWallClock(out.String())
	}
	if implicit, explicit := invoke(), invoke("-parities", "1"); implicit != explicit {
		t.Errorf("-parities 1 diverges from the default:\n--- implicit ---\n%s\n--- explicit ---\n%s",
			implicit, explicit)
	}
}

// TestRejectsBadParities checks -parities validation.
func TestRejectsBadParities(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-parities", "3"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-parities") {
		t.Fatalf("got %v, want -parities rejection", err)
	}
}

// TestDormantFaultFlagsPrintNoFaultSummary keeps the default output free
// of fault lines so existing tooling parsing raidsim output is unaffected.
func TestDormantFaultFlagsPrintNoFaultSummary(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-mode", "faultfree", "-scale", "50", "-warmup", "1", "-measure", "5"}
	if err := run(args, &out, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "faults:") {
		t.Errorf("fault summary printed without fault flags:\n%s", out.String())
	}
}
