package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"declust/internal/telemetry"
)

// TestSpanExportDeterminism runs -spans and -chrome-trace twice: files are
// byte-identical, the JSONL parses with the right meta, and the Chrome
// trace is a well-formed JSON array.
func TestSpanExportDeterminism(t *testing.T) {
	base := t.TempDir()
	invoke := func(tag string) ([]byte, []byte, string) {
		// Per-run directory with identical file names, so stdout (which
		// echoes the paths) is comparable across runs modulo the directory.
		dir := filepath.Join(base, tag)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		spans := filepath.Join(dir, "run.spans.jsonl")
		chrome := filepath.Join(dir, "run.trace.json")
		args := []string{
			"-mode", "recon", "-c", "21", "-g", "5", "-scale", "50",
			"-rate", "105", "-reads", "0.5", "-procs", "4",
			"-warmup", "2", "-measure", "10",
			"-spans", spans, "-chrome-trace", chrome,
		}
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err != nil {
			t.Fatalf("run %s: %v\nstderr: %s", tag, err, errb.String())
		}
		sb, err := os.ReadFile(spans)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := os.ReadFile(chrome)
		if err != nil {
			t.Fatal(err)
		}
		return sb, cb, strings.ReplaceAll(out.String(), dir, "DIR")
	}

	spansA, chromeA, outA := invoke("a")
	spansB, chromeB, outB := invoke("b")
	if !bytes.Equal(spansA, spansB) {
		t.Error("span exports differ between identical runs")
	}
	if !bytes.Equal(chromeA, chromeB) {
		t.Error("chrome traces differ between identical runs")
	}
	if stripWallClock(outA) != stripWallClock(outB) {
		t.Error("stdout differs between identical runs")
	}
	if !strings.Contains(outA, "spans:") || !strings.Contains(outA, "chrome trace:") {
		t.Errorf("stdout missing export confirmations:\n%s", outA)
	}

	meta, spans, err := telemetry.ReadJSONL(bytes.NewReader(spansA))
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil || meta.C != 21 || meta.G != 5 || meta.Mode != "recon" || meta.Seed != 1 {
		t.Errorf("span meta = %+v", meta)
	}
	if len(spans) == 0 {
		t.Fatal("span export empty")
	}
	a := telemetry.Attribute(spans)
	if a.Requests == 0 || a.MeanResponseMS <= 0 {
		t.Errorf("exported spans yield degenerate attribution: %+v", a)
	}

	var events []map[string]any
	if err := json.Unmarshal(chromeA, &events); err != nil {
		t.Fatalf("chrome trace not a JSON array: %v", err)
	}
	if len(events) < len(spans) {
		t.Errorf("%d chrome events for %d spans", len(events), len(spans))
	}
}

func TestSweepRejectsSpanOutputs(t *testing.T) {
	for _, flag := range []string{"-spans", "-chrome-trace"} {
		var out, errb bytes.Buffer
		err := run([]string{"-sweep-g", "3,5", flag, "x.out"}, &out, &errb)
		if err == nil || !strings.Contains(err.Error(), "sweep mode") {
			t.Errorf("%s in sweep mode: got %v, want sweep-mode rejection", flag, err)
		}
	}
}

// lockedWriter is a threadsafe io.Writer: the live-server tests read
// stderr while run() is still writing it from another goroutine.
type lockedWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *lockedWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// serveAddr polls the stderr capture until the live server announces its
// bound address.
func serveAddr(t *testing.T, errb *lockedWriter, done <-chan error) string {
	t.Helper()
	for {
		s := errb.String()
		if i := strings.Index(s, "on http://"); i >= 0 {
			rest := s[i+len("on http://"):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				return rest[:j]
			}
		}
		select {
		case err := <-done:
			t.Fatalf("run finished before announcing the server: %v\nstderr: %s", err, errb.String())
		default:
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestListenServesLiveRun starts a run with -listen on an ephemeral port
// and scrapes /metrics and /progress while it executes.
func TestListenServesLiveRun(t *testing.T) {
	var out bytes.Buffer
	errb := &lockedWriter{}
	done := make(chan error, 1)
	go func() {
		// Scale 4 keeps the wall-clock run long enough (hundreds of ms) for
		// the scraper to land several requests while the sim executes.
		done <- run([]string{
			"-mode", "recon", "-c", "21", "-g", "5", "-scale", "4",
			"-rate", "105", "-reads", "0.5", "-procs", "1",
			"-warmup", "2",
			"-listen", "127.0.0.1:0",
		}, &out, errb)
	}()
	addr := serveAddr(t, errb, done)

	var gotMetrics, gotProgress bool
	running := true
	for running && !(gotMetrics && gotProgress) {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run: %v\nstderr: %s", err, errb.String())
			}
			running = false
		default:
		}
		for _, path := range []string{"/metrics", "/progress"} {
			resp, err := http.Get("http://" + addr + path)
			if err != nil {
				continue // server may have shut down between checks
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				continue
			}
			switch path {
			case "/metrics":
				// Valid Prometheus text with simulator content, once the
				// first sim-time tick has published.
				if strings.Contains(string(body), "# TYPE") &&
					strings.Contains(string(body), "user_response_ms") {
					gotMetrics = true
				}
			case "/progress":
				var p telemetry.Progress
				if json.Unmarshal(body, &p) == nil && p.SimMS > 0 && p.Mode == "recon" {
					gotProgress = true
				}
			}
		}
	}
	if !gotMetrics {
		t.Error("never scraped a populated /metrics snapshot")
	}
	if !gotProgress {
		t.Error("never scraped a populated /progress snapshot")
	}
	if running {
		if err := <-done; err != nil {
			t.Fatalf("run: %v", err)
		}
	}
}

// TestListenTracksSweepProgress: -listen is the one observability flag
// sweep mode keeps, publishing point-completion counts.
func TestListenTracksSweepProgress(t *testing.T) {
	var out bytes.Buffer
	errb := &lockedWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-mode", "recon", "-c", "21", "-scale", "10",
			"-sweep-g", "3,5,11,21", "-rate", "105", "-procs", "1",
			"-warmup", "2", "-j", "2",
			"-listen", "127.0.0.1:0",
		}, &out, errb)
	}()
	addr := serveAddr(t, errb, done)

	sawTotal := false
	running := true
	for running && !sawTotal {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run: %v\nstderr: %s", err, errb.String())
			}
			running = false
		default:
		}
		resp, err := http.Get("http://" + addr + "/progress")
		if err != nil {
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		var p telemetry.Progress
		if json.Unmarshal(body, &p) == nil && p.SweepTotal == 4 && p.SweepDone <= 4 {
			sawTotal = true
		}
	}
	if !sawTotal {
		t.Error("never scraped sweep progress with total 4")
	}
	if running {
		if err := <-done; err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	if n := strings.Count(out.String(), "\n"); n < 6 {
		t.Errorf("sweep output truncated:\n%s", out.String())
	}
}
