// Command layout prints parity and data layouts in the style of the
// paper's Figures 2-1, 2-3 and 4-2, and evaluates the §4.1 layout-goodness
// criteria.
//
// Usage:
//
//	layout -c 5 -g 4              # declustered, like Figure 2-3 / 4-2
//	layout -c 5 -g 5              # RAID 5 left-symmetric, like Figure 2-1
//	layout -c 21 -g 5 -rows 10    # first 10 offsets of the paper's array
package main

import (
	"flag"
	"fmt"
	"os"

	"declust"
	"declust/internal/layout"
)

func main() {
	c := flag.Int("c", 5, "number of disks (C)")
	g := flag.Int("g", 4, "stripe units per parity stripe (G); g = c selects RAID 5")
	rows := flag.Int("rows", 0, "unit offsets to print (0 = one full parity rotation)")
	check := flag.Bool("check", true, "evaluate the layout criteria")
	flag.Parse()

	m, err := declust.NewMapping(*c, *g, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "layout:", err)
		os.Exit(1)
	}
	fmt.Println(m.Describe())
	fmt.Println()

	fmt.Print(layout.Format(m.Layout, int64(*rows)))

	if *check {
		crit, err := m.Criteria()
		if err != nil {
			fmt.Fprintln(os.Stderr, "layout:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Printf("criteria over %d stripes (one full block design table):\n", crit.TableStripes)
		fmt.Printf("  1. single failure correcting:   %v\n", crit.SingleFailureCorrecting)
		fmt.Printf("  2. distributed reconstruction:  %v (every disk pair shares %d stripes)\n",
			crit.DistributedReconstruction, crit.PairCount)
		fmt.Printf("  3. distributed parity:          %v (%d parity units per disk)\n",
			crit.DistributedParity, crit.ParityPerDisk)
		fmt.Printf("  5. large-write optimization:    %v\n", crit.LargeWriteOptimization)
		fmt.Printf("  6. maximal parallelism:         %v\n", crit.MaximalParallelism)
	}
}
