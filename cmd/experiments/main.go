// Command experiments regenerates the paper's evaluation: every table and
// figure of §6–§8 plus the extension studies, printing formatted tables
// suitable for EXPERIMENTS.md.
//
// Usage:
//
//	experiments                 # everything, full-scale disks (minutes)
//	experiments -scale 10       # 1/10-scale disks (fast preview)
//	experiments -run fig8-1     # one experiment
//	experiments -j 8            # fan sweep points over 8 workers
//
// Experiments: fig4-3, fig6-1, fig6-2, fig8 (8-1..8-4), table8-1, fig8-6,
// ext-throttle, ext-priority, ext-mttdl, ext-datamap, ext-mirror,
// ext-sparing, ext-unitsize, ext-skew, ext-sched, ext-readahead,
// ext-phases, ext-pq, double-failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"declust/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 1, "disk capacity divisor (1 = full IBM 0661)")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	seed := flag.Int64("seed", 1, "workload seed")
	spansDir := flag.String("spans-dir", "",
		"with ext-phases, write each point's raw spans (JSONL) into this directory")
	workers := flag.Int("j", 1,
		"parallel sweep workers (0 = GOMAXPROCS); output is identical for any value")
	flag.Parse()

	o := experiments.Options{Seed: *seed, Workers: *workers}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if *scale > 1 {
		o.ScaleNum, o.ScaleDen = 1, *scale
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	selected := func(id string) bool { return all || want[id] }

	start := time.Now()
	emit := func(tables ...experiments.Table) {
		for _, t := range tables {
			fmt.Println(t)
			fmt.Printf("[%s done at %v]\n\n", t.ID, time.Since(start).Round(time.Second))
		}
	}

	if selected("fig4-3") {
		emit(experiments.Fig43(41))
	}
	if selected("fig6-1") {
		_, t, err := experiments.Fig6(o, 1.0)
		check(err)
		emit(t)
	}
	if selected("fig6-2") {
		_, t, err := experiments.Fig6(o, 0.0)
		check(err)
		emit(t)
	}
	if selected("fig8") || selected("fig8-1") || selected("fig8-2") {
		_, tt, tr, err := experiments.Fig8(o, 1)
		check(err)
		emit(tt, tr)
	}
	if selected("fig8") || selected("fig8-3") || selected("fig8-4") {
		_, tt, tr, err := experiments.Fig8(o, 8)
		check(err)
		emit(tt, tr)
	}
	if selected("table8-1") {
		_, t, err := experiments.Table81(o)
		check(err)
		emit(t)
	}
	if selected("fig8-6") {
		_, t, err := experiments.Fig86(o)
		check(err)
		emit(t)
	}
	if selected("ext-throttle") {
		_, t, err := experiments.ExtThrottle(o, 5, nil)
		check(err)
		emit(t)
	}
	if selected("ext-priority") {
		_, t, err := experiments.ExtPriority(o, 5)
		check(err)
		emit(t)
	}
	if selected("ext-mttdl") {
		_, t, err := experiments.ExtReliability(o, 8)
		check(err)
		emit(t)
	}
	if selected("ext-datamap") {
		_, t, err := experiments.ExtDataMap(o, 5, nil)
		check(err)
		emit(t)
	}
	if selected("ext-mirror") {
		_, t, err := experiments.ExtMirror(o)
		check(err)
		emit(t)
	}
	if selected("ext-sparing") {
		_, t, err := experiments.ExtSparing(o, 5)
		check(err)
		emit(t)
	}
	if selected("ext-unitsize") {
		_, t, err := experiments.ExtUnitSize(o, 5, nil)
		check(err)
		emit(t)
	}
	if selected("ext-skew") {
		_, t, err := experiments.ExtSkew(o, 5)
		check(err)
		emit(t)
	}
	if selected("ext-sched") {
		_, t, err := experiments.ExtSched(o, nil)
		check(err)
		emit(t)
	}
	if selected("ext-readahead") {
		_, t, err := experiments.ExtReadahead(o, 5)
		check(err)
		emit(t)
	}
	if selected("ext-phases") {
		_, t, err := experiments.ExtPhases(o, nil, *spansDir)
		check(err)
		emit(t)
	}
	if selected("ext-pq") {
		_, t, err := experiments.ExtPQ(o, nil)
		check(err)
		emit(t)
	}
	if selected("double-failure") {
		_, t, err := experiments.DoubleFailureLoss(o)
		check(err)
		emit(t)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
