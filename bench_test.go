// Benchmarks regenerating each table and figure of the paper's evaluation,
// at 1/20-scale disks so `go test -bench=.` completes in minutes. The
// full-scale reproduction (cmd/experiments) feeds EXPERIMENTS.md; these
// benches exercise identical code paths and report the headline metric of
// each figure via b.ReportMetric.
//
// Shapes to expect (mirroring the paper): reconstruction time and
// during-recovery response time fall as α falls (fig 8-1..8-4);
// fault-free response is independent of α (fig 6-1/6-2); the analytic
// model overestimates reconstruction time (fig 8-6).
package declust_test

import (
	"testing"

	"declust"
	"declust/internal/blockdesign"
	"declust/internal/experiments"
	"declust/internal/layout"
)

func benchOpts(seed int64) experiments.Options {
	return experiments.Options{
		ScaleNum: 1, ScaleDen: 20,
		Seed:      seed,
		WarmupMS:  5_000,
		MeasureMS: 30_000,
	}
}

// BenchmarkFig4_3DesignCatalog regenerates the known-designs scatter.
func BenchmarkFig4_3DesignCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig43(41)
		if len(tab.Rows) == 0 {
			b.Fatal("empty catalog")
		}
	}
}

// BenchmarkFig6_1ReadResponse regenerates Figure 6-1 (fault-free and
// degraded response, 100% reads) at rate 210 for α ∈ {0.2, 1.0}.
func BenchmarkFig6_1ReadResponse(b *testing.B) {
	o := benchOpts(1)
	o.Gs = []int{5, 21}
	o.Rates = []float64{210}
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.Fig6(o, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].FaultFree.MeanResponseMS, "ff-ms")
		b.ReportMetric(pts[0].Degraded.MeanResponseMS, "deg-ms")
	}
}

// BenchmarkFig6_2WriteResponse regenerates Figure 6-2 (100% writes) at
// rate 105 for α ∈ {0.2, 1.0}.
func BenchmarkFig6_2WriteResponse(b *testing.B) {
	o := benchOpts(2)
	o.Gs = []int{5, 21}
	o.Rates = []float64{105}
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.Fig6(o, 0.0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].FaultFree.MeanResponseMS, "ff-ms")
		b.ReportMetric(pts[0].Degraded.MeanResponseMS, "deg-ms")
	}
}

// benchFig8 runs Figures 8-1/8-2 (procs=1) or 8-3/8-4 (procs=8) for
// α ∈ {0.2, 1.0} at rate 105 and reports declustered vs RAID 5
// reconstruction minutes and response.
func benchFig8(b *testing.B, procs int) {
	o := benchOpts(3)
	o.Gs = []int{5, 21}
	o.Rates = []float64{105}
	for i := 0; i < b.N; i++ {
		pts, _, _, err := experiments.Fig8(o, procs)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Algorithm != declust.Baseline {
				continue
			}
			if p.G == 5 {
				b.ReportMetric(p.Metrics.ReconTimeMS/60_000, "declust-min")
				b.ReportMetric(p.Metrics.MeanResponseMS, "declust-resp-ms")
			} else {
				b.ReportMetric(p.Metrics.ReconTimeMS/60_000, "raid5-min")
				b.ReportMetric(p.Metrics.MeanResponseMS, "raid5-resp-ms")
			}
		}
	}
}

// BenchmarkFig8_1And8_2SingleThreadRecon regenerates Figures 8-1 and 8-2.
func BenchmarkFig8_1And8_2SingleThreadRecon(b *testing.B) { benchFig8(b, 1) }

// BenchmarkFig8_3And8_4ParallelRecon regenerates Figures 8-3 and 8-4.
func BenchmarkFig8_3And8_4ParallelRecon(b *testing.B) { benchFig8(b, 8) }

// BenchmarkTable8_1ReconCycles regenerates Table 8-1's cycle phase times
// for α ∈ {0.15, 1.0}.
func BenchmarkTable8_1ReconCycles(b *testing.B) {
	o := benchOpts(4)
	o.Gs = []int{4, 21}
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table81(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ReadMean, "read-phase-ms")
		b.ReportMetric(rows[0].WriteMean, "write-phase-ms")
	}
}

// BenchmarkFig8_6ModelVsSim regenerates Figure 8-6's model/simulation
// comparison at α = 0.2.
func BenchmarkFig8_6ModelVsSim(b *testing.B) {
	o := benchOpts(5)
	o.Gs = []int{5}
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.Fig86(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].ModelMin/pts[0].SimulatedMin, "model/sim")
	}
}

// BenchmarkExtThrottleAblation measures the §9 throttling extension.
func BenchmarkExtThrottleAblation(b *testing.B) {
	o := benchOpts(6)
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.ExtThrottle(o, 5, []float64{0, 10})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].ReconMin, "free-recon-min")
		b.ReportMetric(pts[1].ReconMin, "throttled-recon-min")
	}
}

// BenchmarkExtPriorityAblation measures the §9 prioritization extension.
func BenchmarkExtPriorityAblation(b *testing.B) {
	o := benchOpts(7)
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.ExtPriority(o, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtSparing measures distributed sparing vs replacement-disk
// reconstruction.
func BenchmarkExtSparing(b *testing.B) {
	o := benchOpts(9)
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.ExtSparing(o, 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ReconMin/rows[1].ReconMin, "repl/spared")
	}
}

// BenchmarkExtMirror measures the mirroring-vs-parity comparison.
func BenchmarkExtMirror(b *testing.B) {
	o := benchOpts(10)
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.ExtMirror(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtReliability measures the MTTDL extension table.
func BenchmarkExtReliability(b *testing.B) {
	o := benchOpts(8)
	o.Gs = []int{5, 21}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.ExtReliability(o, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Microbenchmarks of the core data structures ---

// BenchmarkLayoutMapping measures the declustered forward map (paper
// criterion 4: efficient mapping).
func BenchmarkLayoutMapping(b *testing.B) {
	d, err := blockdesign.PaperDesign(5)
	if err != nil {
		b.Fatal(err)
	}
	l, err := layout.NewDeclustered(d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc := layout.DataLoc(l, int64(i)%100_000)
		if loc.Disk < 0 {
			b.Fatal("bad loc")
		}
	}
}

// BenchmarkLayoutInverse measures the declustered inverse map.
func BenchmarkLayoutInverse(b *testing.B) {
	d, _ := blockdesign.PaperDesign(5)
	l, _ := layout.NewDeclustered(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := l.Locate(layout.Loc{Disk: i % 21, Offset: int64(i) % 10_000})
		if s < 0 {
			b.Fatal("bad stripe")
		}
	}
}

// BenchmarkDesignGeneration measures construction+verification of the
// paper's most intricate design (the derived (21,10,9)).
func BenchmarkDesignGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := blockdesign.PaperDesign(10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Instrumentation overhead ---

// benchFaultFree runs one 1/20-scale fault-free window, optionally with the
// full metrics stack (registry, latency histograms, time-series sampling)
// attached. The Off/On pair bounds the overhead of instrumentation; with it
// disabled the hot path pays only nil checks.
func benchFaultFree(b *testing.B, instrumented bool) {
	cfg := declust.SimConfig{
		C: 21, G: 5,
		ScaleNum: 1, ScaleDen: 20,
		RatePerSec:   210,
		ReadFraction: 0.5,
		Seed:         11,
		WarmupMS:     2_000,
		MeasureMS:    20_000,
	}
	for i := 0; i < b.N; i++ {
		run := cfg
		if instrumented {
			run.Metrics = declust.NewMetricsRegistry()
			run.SampleEveryMS = 1000
		}
		m, err := declust.RunFaultFree(run)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.EngineEvents)/float64(m.Requests), "events/req")
	}
}

// BenchmarkFaultFreeMetricsOff is the uninstrumented baseline.
func BenchmarkFaultFreeMetricsOff(b *testing.B) { benchFaultFree(b, false) }

// BenchmarkFaultFreeMetricsOn runs the same window with the registry,
// histograms and per-disk sampling enabled; compare ns/op against
// BenchmarkFaultFreeMetricsOff to measure instrumentation overhead.
func BenchmarkFaultFreeMetricsOn(b *testing.B) { benchFaultFree(b, true) }
