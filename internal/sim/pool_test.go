package sim

import (
	"math/rand"
	"testing"
)

// TestRunUntilCanceledHead covers the lazy-cancellation fast path: a
// canceled event sitting at the queue head must be skipped (and not fired)
// by RunUntil, both below and above the horizon.
func TestRunUntilCanceledHead(t *testing.T) {
	e := New()
	canceledFired := false
	tm := e.Schedule(1, func() { canceledFired = true })
	var fired []float64
	e.Schedule(2, func() { fired = append(fired, e.Now()) })
	e.Schedule(5, func() { fired = append(fired, e.Now()) })
	e.Cancel(tm)
	if p := e.Pending(); p != 2 {
		t.Fatalf("Pending = %d after cancel, want 2 (canceled events not counted)", p)
	}
	e.RunUntil(3)
	if canceledFired {
		t.Fatal("canceled head event fired")
	}
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("fired = %v, want [2]", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
	// A canceled head beyond the horizon stays queued and still never fires.
	tm2 := e.Schedule(0.5, func() { canceledFired = true })
	e.Cancel(tm2)
	e.RunUntil(3.2)
	e.Run()
	if canceledFired {
		t.Fatal("canceled event fired during drain")
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events total, want 2", len(fired))
	}
}

// TestCancelAfterFire asserts that canceling an event that already fired
// is a no-op, even though its node has returned to the pool.
func TestCancelAfterFire(t *testing.T) {
	e := New()
	n := 0
	tm := e.Schedule(1, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("fired %d, want 1", n)
	}
	e.Cancel(tm) // stale: node recycled, generation bumped
	// The node is reused for the next event; the stale handle must not
	// touch it.
	e.Schedule(1, func() { n++ })
	e.Cancel(tm)
	e.Run()
	if n != 2 {
		t.Fatalf("stale Cancel suppressed a reused event: fired %d, want 2", n)
	}
}

// TestCancelAfterPoolReuse is the generation-counter contract: a Timer
// held across its event's firing and the node's reuse cancels neither the
// old nor the new incarnation.
func TestCancelAfterPoolReuse(t *testing.T) {
	e := New()
	var stale []Timer
	fired := 0
	for round := 0; round < 5; round++ {
		// Each round schedules two events; their nodes come from the pool
		// populated by the previous round.
		stale = append(stale, e.Schedule(1, func() { fired++ }))
		stale = append(stale, e.Schedule(2, func() { fired++ }))
		e.Run()
		for _, tm := range stale {
			e.Cancel(tm)
		}
	}
	if fired != 10 {
		t.Fatalf("fired %d, want 10: stale Timers must never cancel reused nodes", fired)
	}
	// And a live Timer still cancels its own incarnation.
	live := e.Schedule(1, func() { fired++ })
	e.Cancel(live)
	e.Run()
	if fired != 10 {
		t.Fatalf("live Cancel failed: fired %d, want 10", fired)
	}
}

// TestCanceledThenReusedNodeKeepsLaterEvent pins the subtle case: cancel
// a pending event, let its node recycle through a fire, and make sure the
// original Timer (two generations stale) is inert.
func TestCanceledThenReusedNodeKeepsLaterEvent(t *testing.T) {
	e := New()
	fired := 0
	tm := e.Schedule(1, func() { t.Fatal("canceled event fired") })
	e.Cancel(tm)
	e.Run() // pops the canceled node, recycles it
	e.Schedule(1, func() { fired++ })
	e.Cancel(tm) // two generations stale
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
}

// TestZeroAllocSteadyState is the pool guarantee: once the heap slice and
// node pool are warm, a schedule/fire cycle performs zero allocations.
func TestZeroAllocSteadyState(t *testing.T) {
	e := New()
	fn := func() {}
	// Warm the pool and the heap's backing array.
	for i := 0; i < 64; i++ {
		e.Schedule(float64(i), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(1, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule/fire cycle allocates %.1f objects, want 0", allocs)
	}
	// Schedule+cancel+drain is also allocation-free.
	allocs = testing.AllocsPerRun(1000, func() {
		tm := e.Schedule(1, fn)
		e.Cancel(tm)
		e.Schedule(2, fn)
		e.Step()
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule/cancel/drain cycle allocates %.1f objects, want 0", allocs)
	}
}

// TestPropertyOrderingWithCancels drives random schedules interleaved with
// random lazy cancels and checks ordering, FIFO ties and that no canceled
// event fires.
func TestPropertyOrderingWithCancels(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		live := map[int]bool{}
		var timers []Timer
		id := 0
		last := -1.0
		for i := 0; i < 300; i++ {
			switch {
			case len(timers) > 0 && rng.Intn(4) == 0:
				j := rng.Intn(len(timers))
				e.Cancel(timers[j])
				delete(live, j)
			default:
				me := id
				id++
				live[me] = true
				timers = append(timers, e.Schedule(rng.Float64()*50, func() {
					if !live[me] {
						t.Fatalf("seed %d: canceled event %d fired", seed, me)
					}
					if e.Now() < last {
						t.Fatalf("seed %d: time went backwards", seed)
					}
					last = e.Now()
					delete(live, me)
				}))
			}
		}
		e.Run()
		if len(live) != 0 {
			t.Fatalf("seed %d: %d live events never fired", seed, len(live))
		}
		if e.Pending() != 0 {
			t.Fatalf("seed %d: Pending = %d after drain", seed, e.Pending())
		}
	}
}
