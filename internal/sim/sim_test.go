package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroEngineUsable(t *testing.T) {
	var e Engine
	fired := false
	e.Schedule(1, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("event did not fire")
	}
	if e.Now() != 1 {
		t.Fatalf("Now = %v, want 1", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.Schedule(d, func() { order = append(order, d) })
	}
	e.Run()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO at %d: got %d", i, v)
		}
	}
}

func TestNowAdvancesDuringCallback(t *testing.T) {
	e := New()
	e.Schedule(2.5, func() {
		if e.Now() != 2.5 {
			t.Errorf("Now inside callback = %v, want 2.5", e.Now())
		}
	})
	e.Run()
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var times []float64
	e.Schedule(1, func() {
		e.Schedule(1, func() {
			times = append(times, e.Now())
			e.Schedule(1, func() { times = append(times, e.Now()) })
		})
	})
	e.Run()
	want := []float64{2, 3}
	if len(times) != 2 || times[0] != want[0] || times[1] != want[1] {
		t.Fatalf("nested times = %v, want %v", times, want)
	}
}

func TestScheduleZeroDelayFiresAtNow(t *testing.T) {
	e := New()
	var at float64 = -1
	e.Schedule(10, func() {
		e.Schedule(0, func() { at = e.Now() })
	})
	e.Run()
	if at != 10 {
		t.Fatalf("zero-delay event fired at %v, want 10", at)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delay")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestAtBeforeNowPanics(t *testing.T) {
	e := New()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling in the past")
		}
	}()
	e.At(1, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on nil func")
		}
	}()
	New().Schedule(1, nil)
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after cancel+run", e.Pending())
	}
}

func TestCancelIdempotent(t *testing.T) {
	e := New()
	ev := e.Schedule(1, func() {})
	e.Cancel(ev)
	e.Cancel(ev)      // must not panic
	e.Cancel(Timer{}) // zero Timer cancels nothing
	e.Run()
}

func TestCancelOneOfMany(t *testing.T) {
	e := New()
	var fired []int
	var evs []Timer
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, e.Schedule(float64(i), func() { fired = append(fired, i) }))
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.Run()
	if len(fired) != 8 {
		t.Fatalf("fired %d, want 8", len(fired))
	}
	for _, v := range fired {
		if v == 3 || v == 7 {
			t.Fatalf("canceled event %d fired", v)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []float64
	for _, d := range []float64{1, 2, 3, 4, 5} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by t=3, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.RunUntil(10)
	if len(fired) != 5 || e.Now() != 10 {
		t.Fatalf("after RunUntil(10): fired=%d now=%v", len(fired), e.Now())
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	e := New()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("Now = %v, want 42", e.Now())
	}
}

func TestRunWhile(t *testing.T) {
	e := New()
	count := 0
	for i := 0; i < 100; i++ {
		e.Schedule(float64(i), func() { count++ })
	}
	e.RunWhile(func() bool { return count < 10 })
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// TestPropertyOrdering drives the engine with random schedules (including
// nested ones) and asserts the observed firing times are non-decreasing.
func TestPropertyOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		last := -1.0
		ok := true
		var observe func()
		depth := 0
		observe = func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if depth < 200 && rng.Intn(2) == 0 {
				depth++
				e.Schedule(rng.Float64()*10, observe)
			}
		}
		for i := 0; i < 50; i++ {
			e.Schedule(rng.Float64()*100, observe)
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestManyEventsStress(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(1))
	const n = 50000
	fired := 0
	for i := 0; i < n; i++ {
		e.Schedule(rng.Float64()*1000, func() { fired++ })
	}
	e.Run()
	if fired != n {
		t.Fatalf("fired %d, want %d", fired, n)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}
