// Package sim provides a deterministic event-driven simulation engine.
//
// Time is a float64 number of milliseconds since the start of the
// simulation. Events scheduled for the same instant fire in the order they
// were scheduled (FIFO tie-breaking), which makes simulations reproducible
// independent of map iteration or goroutine scheduling: the engine is
// entirely single-threaded.
//
// The engine is the simulator's innermost loop — every disk transfer,
// retry, scrub tick and workload arrival is one scheduled event — so the
// queue is built for throughput: an inlined 4-ary min-heap specialized to
// event nodes (no interface boxing, no container/heap indirection), a
// free-list node pool so steady-state schedule/fire cycles allocate
// nothing, and lazy cancellation (canceled events are skipped when popped
// instead of being removed from the middle of the heap).
package sim

import (
	"fmt"
	"math"
)

// event is a pooled queue node. Nodes are recycled after they fire or
// after a canceled node is popped; gen distinguishes incarnations so a
// stale Timer can never touch a reused node.
type event struct {
	time     float64
	seq      uint64 // FIFO tie-break for equal times
	fn       func()
	next     *event // free-list link
	gen      uint32 // bumped every time the node is recycled
	canceled bool
}

// Timer is a cancelable handle to a scheduled event, returned by Schedule
// and At. It is a small value; copy it freely. The zero Timer is valid and
// cancels nothing. A Timer that has already fired, or whose node has been
// recycled for a later event, is stale: canceling it is a safe no-op (the
// handle carries the node's generation and the engine checks it).
type Timer struct {
	ev  *event
	gen uint32
}

// Engine is an event-driven simulator. The zero value is ready to use.
type Engine struct {
	now   float64
	seq   uint64
	fired uint64
	heap  []*event // 4-ary min-heap on (time, seq)
	free  *event   // recycled nodes
	dead  int      // canceled events still sitting in the heap
}

// New returns a new engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time in milliseconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after delay milliseconds of simulated time. A negative
// delay panics: the simulated past is immutable.
func (e *Engine) Schedule(delay float64, fn func()) Timer {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: schedule with invalid delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute simulated time t, which must not precede Now.
func (e *Engine) At(t float64, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: schedule of nil func")
	}
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
	} else {
		ev = &event{}
	}
	ev.time = t
	ev.seq = e.seq
	ev.fn = fn
	ev.canceled = false
	e.seq++
	e.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// Cancel unschedules a pending event. Canceling the zero Timer, an
// already-canceled event, or a stale handle (the event fired, or its node
// was recycled for a newer event) is a no-op. The node stays in the heap
// and is discarded when it reaches the top — O(1) instead of a heap fix-up.
func (e *Engine) Cancel(tm Timer) {
	ev := tm.ev
	if ev == nil || ev.gen != tm.gen || ev.canceled {
		return
	}
	ev.canceled = true
	ev.fn = nil
	e.dead++
}

// recycle bumps the node's generation (invalidating outstanding Timers)
// and returns it to the free list.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.next = e.free
	e.free = ev
}

// Pending reports the number of events waiting to fire (canceled events
// still in the queue are not counted).
func (e *Engine) Pending() int { return len(e.heap) - e.dead }

// Scheduled returns the total number of events ever scheduled, canceled
// or not.
func (e *Engine) Scheduled() uint64 { return e.seq }

// Fired returns the total number of events fired. The ratio of Fired to
// wall-clock time is the engine's throughput, the headline number for
// simulator performance work.
func (e *Engine) Fired() uint64 { return e.fired }

// Step fires the single next event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := e.pop()
		if ev.canceled {
			e.dead--
			e.recycle(ev)
			continue
		}
		fn := ev.fn
		e.now = ev.time
		e.fired++
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time <= t, then advances the clock to exactly t.
// Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t float64) {
	for len(e.heap) > 0 {
		top := e.heap[0]
		if top.canceled {
			e.pop()
			e.dead--
			e.recycle(top)
			continue
		}
		if top.time > t {
			break
		}
		e.pop()
		fn := top.fn
		e.now = top.time
		e.fired++
		e.recycle(top)
		fn()
	}
	if t > e.now {
		e.now = t
	}
}

// RunWhile fires events as long as cond returns true and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// less orders events by (time, seq): earliest first, FIFO on ties.
func less(a, b *event) bool {
	return a.time < b.time || (a.time == b.time && a.seq < b.seq)
}

// push inserts ev into the 4-ary heap, sifting up with a hole (each level
// does one compare and one move, not a swap).
func (e *Engine) push(ev *event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !less(ev, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	e.heap = h
}

// pop removes and returns the minimum event.
func (e *Engine) pop() *event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return top
}

// siftDown places ev starting from the root, moving the smallest of up to
// four children into the hole until ev fits.
func (e *Engine) siftDown(ev *event) {
	h := e.heap
	n := len(h)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(h[j], h[m]) {
				m = j
			}
		}
		if !less(h[m], ev) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ev
}
