// Package sim provides a deterministic event-driven simulation engine.
//
// Time is a float64 number of milliseconds since the start of the
// simulation. Events scheduled for the same instant fire in the order they
// were scheduled (FIFO tie-breaking), which makes simulations reproducible
// independent of map iteration or goroutine scheduling: the engine is
// entirely single-threaded.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. The zero Event is invalid.
type Event struct {
	time     float64
	seq      uint64 // FIFO tie-break for equal times
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// Time returns the simulated time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Engine is an event-driven simulator. The zero value is ready to use.
type Engine struct {
	now    float64
	seq    uint64
	fired  uint64
	queue  eventHeap
	nowset bool
}

// New returns a new engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time in milliseconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after delay milliseconds of simulated time. A negative
// delay panics: the simulated past is immutable.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: schedule with invalid delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute simulated time t, which must not precede Now.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: schedule of nil func")
	}
	ev := &Event{time: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		return
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
}

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.queue) }

// Scheduled returns the total number of events ever scheduled, canceled
// or not.
func (e *Engine) Scheduled() uint64 { return e.seq }

// Fired returns the total number of events fired. The ratio of Fired to
// wall-clock time is the engine's throughput, the headline number for
// simulator performance work.
func (e *Engine) Fired() uint64 { return e.fired }

// Step fires the single next event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.time
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time <= t, then advances the clock to exactly t.
// Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t float64) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.time > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunWhile fires events as long as cond returns true and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// eventHeap is a min-heap on (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
