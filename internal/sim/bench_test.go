package sim

import (
	"math/rand"
	"testing"
)

// BenchmarkScheduleFire measures one schedule/fire cycle against a warm
// pool — the engine's absolute hot path. Expect 0 allocs/op.
func BenchmarkScheduleFire(b *testing.B) {
	e := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(float64(i), fn)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, fn)
		e.Step()
	}
}

// BenchmarkScheduleFireDepth64 keeps 64 events resident so every push and
// pop walks a realistically deep heap.
func BenchmarkScheduleFireDepth64(b *testing.B) {
	e := New()
	fn := func() {}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		e.Schedule(rng.Float64()*100, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.heap[0].time-e.now+rng.Float64()*100, fn)
		e.Step()
	}
}

// BenchmarkScheduleCancel measures the lazy-cancellation path: schedule,
// cancel, and drain the dead node.
func BenchmarkScheduleCancel(b *testing.B) {
	e := New()
	fn := func() {}
	e.Schedule(1, fn)
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.Schedule(1, fn)
		e.Cancel(tm)
		e.Schedule(2, fn)
		e.Step()
		e.Step()
	}
}
