package experiments

import (
	"fmt"

	"declust/internal/array"
	"declust/internal/core"
	"declust/internal/disk"
	"declust/internal/sim"
)

// DoubleFailurePoint is one layout's damage report for a true double
// failure: disk 0 dies, and disk 1 dies before any of disk 0's units are
// recovered.
type DoubleFailurePoint struct {
	G     int
	Alpha float64
	// StripesAtRisk counts stripes exposed by the first failure;
	// StripesLost and UnitsLost count the damage the second one did.
	StripesAtRisk int64
	StripesLost   int64
	UnitsLost     int64
	// LostFraction is StripesLost/StripesAtRisk: declustering's balance
	// property pins it at α = (G−1)/(C−1), while RAID 5 (G = C) loses
	// every at-risk stripe.
	LostFraction float64
}

// DoubleFailureLoss enumerates, per parity stripe size, the damage of a
// second whole-disk failure at the worst moment (nothing yet rebuilt).
// This is the paper's partial-loss advantage made concrete: a declustered
// array loses only the stripes with units on both dead disks — the
// fraction α of the stripes at risk — where RAID 5 loses them all.
func DoubleFailureLoss(o Options) ([]DoubleFailurePoint, Table, error) {
	o = o.withDefaults()
	t := Table{ID: "double-failure",
		Title:  "Second whole-disk failure during rebuild: fraction of at-risk stripes lost (C=21)",
		Header: []string{"G", "α", "stripes at risk", "stripes lost", "units lost", "lost fraction"}}
	geom := disk.IBM0661()
	if o.ScaleNum > 0 && o.ScaleDen > 0 {
		geom = geom.Scaled(o.ScaleNum, o.ScaleDen)
	}
	gs := o.gs(true)
	pts, err := RunPoints(o.Workers, len(gs), func(i int) (DoubleFailurePoint, error) {
		g := gs[i]
		m, err := core.NewMapping(21, g, 0)
		if err != nil {
			return DoubleFailurePoint{}, fmt.Errorf("double-failure G=%d: %w", g, err)
		}
		arr, err := newIdleArray(m, geom)
		if err != nil {
			return DoubleFailurePoint{}, fmt.Errorf("double-failure G=%d array: %w", g, err)
		}
		if err := arr.Fail(0); err != nil {
			return DoubleFailurePoint{}, err
		}
		df, err := arr.SecondFail(1)
		if err != nil {
			return DoubleFailurePoint{}, err
		}
		p := DoubleFailurePoint{
			G: g, Alpha: m.Alpha(),
			StripesAtRisk: df.StripesAtRisk,
			StripesLost:   df.StripesLost,
			UnitsLost:     df.UnitsLost,
		}
		if df.StripesAtRisk > 0 {
			p.LostFraction = float64(df.StripesLost) / float64(df.StripesAtRisk)
		}
		return p, nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.G), f2(p.Alpha),
			fmt.Sprint(p.StripesAtRisk), fmt.Sprint(p.StripesLost),
			fmt.Sprint(p.UnitsLost), f2(p.LostFraction),
		})
	}
	return pts, t, nil
}

// newIdleArray builds an array for enumeration-only experiments (no
// workload, no simulated time passes).
func newIdleArray(m *core.Mapping, geom disk.Geometry) (*array.Array, error) {
	return array.New(sim.New(), array.Config{
		Layout:      m.Layout,
		Geom:        geom,
		UnitSectors: 8,
		CvscanBias:  0.2,
	})
}
