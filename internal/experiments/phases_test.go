package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"declust/internal/telemetry"
)

func TestExtPhasesAttribution(t *testing.T) {
	o := fastOpts()
	dir := t.TempDir()
	pts, tab, err := ExtPhases(o, []int{5, 21}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 || len(tab.Rows) != 6 {
		t.Fatalf("%d points / %d rows, want 6 (2 G × 3 modes)", len(pts), len(tab.Rows))
	}
	byMode := map[string]map[int]telemetry.Attribution{}
	for _, p := range pts {
		if byMode[p.Mode] == nil {
			byMode[p.Mode] = map[int]telemetry.Attribution{}
		}
		byMode[p.Mode][p.G] = p.Attr
		if p.Attr.Requests == 0 || p.Attr.MeanResponseMS <= 0 {
			t.Fatalf("degenerate attribution at G=%d %s: %+v", p.G, p.Mode, p.Attr)
		}
	}
	for g := range byMode["faultfree"] {
		ff, dg, rb := byMode["faultfree"][g], byMode["degraded"][g], byMode["rebuild"][g]
		// Only the rebuild run has rebuild I/O to interfere with users; the
		// phase decomposition must reflect the paper's story: degraded and
		// rebuild modes respond slower than fault-free.
		if ff.InterferenceMS != 0 || dg.InterferenceMS != 0 {
			t.Errorf("G=%d: interference outside rebuild: ff %.3f, degraded %.3f",
				g, ff.InterferenceMS, dg.InterferenceMS)
		}
		if rb.InterferenceMS <= 0 {
			t.Errorf("G=%d: rebuild run shows no interference", g)
		}
		if rb.MeanResponseMS <= ff.MeanResponseMS {
			t.Errorf("G=%d: rebuild response %.1f !> fault-free %.1f",
				g, rb.MeanResponseMS, ff.MeanResponseMS)
		}
		// Fault-free has no degraded machinery: no on-the-fly rebuilds.
		if ff.OTFMS != 0 {
			t.Errorf("G=%d: fault-free run reports OTF reconstruction %.3f ms", g, ff.OTFMS)
		}
		if dg.OTFMS <= 0 {
			t.Errorf("G=%d: degraded run reports no OTF reconstruction", g)
		}
	}

	// The span files land next to tracestat's expectations: parseable, with
	// meta matching the point.
	for _, p := range pts {
		name := filepath.Join(dir, fmt.Sprintf("phases_g%d_%s.spans.jsonl", p.G, p.Mode))
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		meta, spans, err := telemetry.ReadJSONL(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if meta == nil || meta.G != p.G || meta.Mode != p.Mode || meta.Alpha != p.Alpha {
			t.Errorf("%s meta = %+v", name, meta)
		}
		if got := telemetry.Attribute(spans); got.Requests != p.Attr.Requests {
			t.Errorf("%s re-attribution %d requests, point had %d",
				name, got.Requests, p.Attr.Requests)
		}
	}
}

func TestExtPhasesDeterministicAcrossWorkers(t *testing.T) {
	do := func(workers int) string {
		o := fastOpts()
		o.Workers = workers
		_, tab, err := ExtPhases(o, []int{5}, "")
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	serial, parallel := do(1), do(4)
	if serial != parallel {
		t.Errorf("ext-phases output differs across -j:\n%s\nvs\n%s", serial, parallel)
	}
}
