package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"declust/internal/core"
	"declust/internal/telemetry"
)

// Phase-attribution experiment: rerun the paper's three operating modes
// (fault-free, degraded, reconstructing) with span tracing on and decompose
// the measured user response time by cause — drive queue wait, mechanical
// service, stripe lock wait, on-the-fly reconstruction, and the portion of
// queue wait spent behind rebuild I/O ("interference"). The paper reports
// that declustering buys its rebuild speed with user interference; this
// table shows exactly where those milliseconds sit, per α.

// PhaseModes is the sweep order of the operating modes.
var PhaseModes = []string{"faultfree", "degraded", "rebuild"}

// PhasePoint is one (α, mode) sample of the attribution study.
type PhasePoint struct {
	G     int
	Alpha float64
	Mode  string
	Attr  telemetry.Attribution
}

// ExtPhases runs the attribution sweep at the paper's heavy rate (210
// accesses/s, 50% reads) over gs × PhaseModes. When spansDir is non-empty,
// each point's raw spans are written there as
// phases_g<G>_<mode>.spans.jsonl for cmd/tracestat.
func ExtPhases(o Options, gs []int, spansDir string) ([]PhasePoint, Table, error) {
	o = o.withDefaults()
	if gs == nil {
		gs = []int{4, 10, 21} // α = 0.15, 0.45, 1.0
	}
	t := Table{ID: "ext-phases",
		Title: "Per-phase latency attribution (rate 210, 50% reads): mean ms per user request",
		Header: []string{"alpha", "G", "mode", "response", "queue", "interfere",
			"service", "seek", "rotate", "xfer", "lockwait", "otf"}}
	type job struct {
		g    int
		mode string
	}
	var jobs []job
	for _, g := range gs {
		for _, mode := range PhaseModes {
			jobs = append(jobs, job{g, mode})
		}
	}
	pts, err := RunPoints(o.Workers, len(jobs), func(i int) (PhasePoint, error) {
		j := jobs[i]
		cfg := o.simConfig(j.g, 210, 0.5)
		tr := telemetry.New()
		cfg.Spans = tr
		var err error
		switch j.mode {
		case "faultfree":
			_, err = core.RunFaultFree(cfg)
		case "degraded":
			_, err = core.RunDegraded(cfg)
		default:
			_, err = core.RunReconstruction(cfg)
		}
		if err != nil {
			return PhasePoint{}, fmt.Errorf("ext-phases G=%d %s: %w", j.g, j.mode, err)
		}
		if spansDir != "" {
			name := filepath.Join(spansDir, fmt.Sprintf("phases_g%d_%s.spans.jsonl", j.g, j.mode))
			f, err := os.Create(name)
			if err != nil {
				return PhasePoint{}, fmt.Errorf("ext-phases G=%d %s: %w", j.g, j.mode, err)
			}
			meta := &telemetry.Meta{C: 21, G: j.g, Alpha: alphaOf(j.g), Mode: j.mode, Seed: o.Seed}
			if err := tr.WriteJSONL(f, meta); err != nil {
				f.Close()
				return PhasePoint{}, fmt.Errorf("ext-phases G=%d %s: %w", j.g, j.mode, err)
			}
			if err := f.Close(); err != nil {
				return PhasePoint{}, fmt.Errorf("ext-phases G=%d %s: %w", j.g, j.mode, err)
			}
		}
		return PhasePoint{G: j.g, Alpha: alphaOf(j.g), Mode: j.mode,
			Attr: telemetry.Attribute(tr.Spans())}, nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, p := range pts {
		a := p.Attr
		t.Rows = append(t.Rows, []string{
			f2(p.Alpha), fmt.Sprint(p.G), p.Mode,
			f1(a.MeanResponseMS), f1(a.QueueMS), f1(a.InterferenceMS),
			f1(a.ServiceMS), f1(a.SeekMS), f1(a.RotateMS), f1(a.TransferMS),
			f1(a.LockWaitMS), f1(a.OTFMS),
		})
	}
	return pts, t, nil
}
