package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"declust/internal/core"
	"declust/internal/metrics"
)

func TestRunPointsPreservesOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		out, err := RunPoints(workers, 17, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 17 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunPointsReportsLowestIndexError(t *testing.T) {
	boom := func(i int) (int, error) {
		if i == 3 || i == 7 {
			return 0, fmt.Errorf("point %d failed", i)
		}
		return i, nil
	}
	for _, workers := range []int{1, 4} {
		_, err := RunPoints(workers, 10, boom)
		if err == nil || err.Error() != "point 3 failed" {
			t.Fatalf("workers=%d: got error %v, want the lowest-index failure", workers, err)
		}
	}
}

func TestRunPointsZeroPoints(t *testing.T) {
	out, err := RunPoints(8, 0, func(i int) (int, error) {
		return 0, errors.New("must not be called")
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("got (%v, %v), want empty success", out, err)
	}
}

// TestParallelSweepByteIdentical is the determinism contract of the worker
// pool: every experiment's formatted table must be byte-identical whatever
// the worker count, because each point owns its engine and RNG streams and
// rows are assembled in point order after the parallel phase.
func TestParallelSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	base := fastOpts()
	base.Gs = []int{5, 21}
	base.Rates = []float64{105, 210}

	sweeps := []struct {
		name string
		run  func(o Options) (Table, error)
	}{
		{"fig6", func(o Options) (Table, error) { _, tab, err := Fig6(o, 1.0); return tab, err }},
		{"fig8", func(o Options) (Table, error) { _, tab, _, err := Fig8(o, 4); return tab, err }},
		{"ext-sparing", func(o Options) (Table, error) { _, tab, err := ExtSparing(o, 5); return tab, err }},
		{"double-failure", func(o Options) (Table, error) { _, tab, err := DoubleFailureLoss(o); return tab, err }},
	}
	for _, sw := range sweeps {
		t.Run(sw.name, func(t *testing.T) {
			serial := base
			serial.Workers = 1
			want, err := sw.run(serial)
			if err != nil {
				t.Fatal(err)
			}
			fanned := base
			fanned.Workers = 8
			got, err := sw.run(fanned)
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != want.String() {
				t.Errorf("table differs between -j 1 and -j 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
					want, got)
			}
		})
	}
}

// TestParallelJSONLTracesByteIdentical gives each point its own JSONL
// tracer and checks the per-point event streams are byte-identical whether
// the points run serially or concurrently: nothing about a neighbouring
// simulation may leak into a point's event order or timestamps.
func TestParallelJSONLTracesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	o := fastOpts()
	gs := []int{3, 5, 11, 21}
	trace := func(workers int) [][]byte {
		bufs := make([]bytes.Buffer, len(gs))
		_, err := RunPoints(workers, len(gs), func(i int) (struct{}, error) {
			cfg := o.simConfig(gs[i], 105, 0.5)
			cfg.ReconProcs = 4
			cfg.Tracer = metrics.NewJSONL(&bufs[i])
			if _, err := core.RunReconstruction(cfg); err != nil {
				return struct{}{}, err
			}
			return struct{}{}, cfg.Tracer.(*metrics.JSONL).Flush()
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, len(gs))
		for i := range bufs {
			out[i] = bufs[i].Bytes()
		}
		return out
	}
	serial := trace(1)
	parallel := trace(len(gs))
	for i := range gs {
		if len(serial[i]) == 0 {
			t.Errorf("G=%d: empty serial trace", gs[i])
		}
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Errorf("G=%d: JSONL trace differs between serial and parallel sweeps", gs[i])
		}
	}
}
