package experiments

import (
	"fmt"

	"declust/internal/core"
	"declust/internal/disk"
)

// Scheduling and caching extension experiments: the disk-level knobs the
// paper holds fixed (CVSCAN everywhere, no drive cache) swept across the
// same figures its evaluation uses, re-measuring the Figure 8-1/8-2
// trade-off under each queue discipline.

// SchedPolicies is the sweep order of the scheduler study; FIFO leads so
// every other policy's delta is computed against it.
var SchedPolicies = []disk.Policy{disk.FIFO, disk.CVSCAN, disk.SSTF, disk.CSCAN}

// SchedPoint is one (policy, α) sample of the scheduler study.
type SchedPoint struct {
	Policy disk.Policy
	G      int
	Alpha  float64
	// DegradedMS is the mean degraded-mode response time (the §7
	// workload: one failed disk, no replacement).
	DegradedMS float64
	// DeltaPct is DegradedMS relative to FIFO at the same G, in percent
	// (negative = faster than FIFO).
	DeltaPct float64
	// ReconMin and ReconRespMS re-measure Figures 8-1/8-2: single-thread
	// baseline reconstruction time and user response during it.
	ReconMin    float64
	ReconRespMS float64
}

// ExtSched sweeps the disk queue scheduler against the declustering ratio
// at the paper's heavy rate (210 accesses/s, 50% reads): degraded-mode
// response with each policy's delta against FIFO, plus the Figure 8-1/8-2
// quantities — reconstruction time and during-reconstruction response —
// under the baseline single-thread algorithm.
func ExtSched(o Options, gs []int) ([]SchedPoint, Table, error) {
	o = o.withDefaults()
	if gs == nil {
		gs = []int{4, 10, 21} // α = 0.15, 0.45, 1.0
	}
	t := Table{ID: "ext-sched",
		Title:  "Disk queue scheduler sweep (rate 210, 50% reads): degraded response and fig8-1/8-2 re-measured",
		Header: []string{"alpha", "G", "scheduler", "degraded (ms)", "vs fifo", "recon (min)", "recovering (ms)"}}
	type job struct {
		g      int
		policy disk.Policy
	}
	var jobs []job
	for _, g := range gs {
		for _, p := range SchedPolicies {
			jobs = append(jobs, job{g, p})
		}
	}
	pts, err := RunPoints(o.Workers, len(jobs), func(i int) (SchedPoint, error) {
		j := jobs[i]
		cfg := o.simConfig(j.g, 210, 0.5)
		cfg.SchedPolicy = j.policy
		dg, err := core.RunDegraded(cfg)
		if err != nil {
			return SchedPoint{}, fmt.Errorf("ext-sched %v G=%d degraded: %w", j.policy, j.g, err)
		}
		rc, err := core.RunReconstruction(cfg)
		if err != nil {
			return SchedPoint{}, fmt.Errorf("ext-sched %v G=%d recon: %w", j.policy, j.g, err)
		}
		return SchedPoint{Policy: j.policy, G: j.g, Alpha: alphaOf(j.g),
			DegradedMS: dg.MeanResponseMS,
			ReconMin:   rc.ReconTimeMS / 60_000, ReconRespMS: rc.MeanResponseMS}, nil
	})
	if err != nil {
		return nil, t, err
	}
	// Each G's FIFO point leads its group; fill the deltas against it.
	for i := range pts {
		base := pts[i-i%len(SchedPolicies)].DegradedMS
		if base > 0 {
			pts[i].DeltaPct = 100 * (pts[i].DegradedMS - base) / base
		}
	}
	for _, p := range pts {
		delta := fmt.Sprintf("%+.1f%%", p.DeltaPct)
		if p.Policy == disk.FIFO {
			delta = "—"
		}
		t.Rows = append(t.Rows, []string{
			f2(p.Alpha), fmt.Sprint(p.G), p.Policy.String(),
			f1(p.DegradedMS), delta, f1(p.ReconMin), f1(p.ReconRespMS),
		})
	}
	return pts, t, nil
}

// ReadaheadPoint is one sample of the track read-ahead study.
type ReadaheadPoint struct {
	SeqFraction float64
	Tracks      int // 0 = buffer off
	ResponseMS  float64
	CacheHits   int64
	// HitsPerSec normalizes hit counts across runs of different length.
	HitsPerSec float64
}

// ExtReadahead measures fault-free response time as the workload's
// sequential fraction and the drives' read-ahead depth vary (G, rate 210,
// 50% reads). Random workloads (the paper's) gain nothing — the buffer
// never hits — while sequential streams convert rotations into zero-cost
// completions.
func ExtReadahead(o Options, g int) ([]ReadaheadPoint, Table, error) {
	o = o.withDefaults()
	t := Table{ID: "ext-readahead",
		Title:  fmt.Sprintf("Track read-ahead sweep (G=%d, fault-free, rate 210, 50%% reads)", g),
		Header: []string{"sequential", "tracks", "response (ms)", "cache hits", "hits/s"}}
	type job struct {
		seq    float64
		tracks int
	}
	var jobs []job
	for _, seq := range []float64{0, 0.5, 0.9} {
		for _, tracks := range []int{0, 1, 4} {
			jobs = append(jobs, job{seq, tracks})
		}
	}
	pts, err := RunPoints(o.Workers, len(jobs), func(i int) (ReadaheadPoint, error) {
		j := jobs[i]
		cfg := o.simConfig(g, 210, 0.5)
		cfg.SequentialFraction = j.seq
		cfg.ReadAheadTracks = j.tracks
		m, err := core.RunFaultFree(cfg)
		if err != nil {
			return ReadaheadPoint{}, fmt.Errorf("ext-readahead seq=%v tracks=%d: %w", j.seq, j.tracks, err)
		}
		hps := 0.0
		if m.SimEndMS > 0 {
			hps = float64(m.CacheHits) / (m.SimEndMS / 1000)
		}
		return ReadaheadPoint{SeqFraction: j.seq, Tracks: j.tracks,
			ResponseMS: m.MeanResponseMS, CacheHits: m.CacheHits, HitsPerSec: hps}, nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", 100*p.SeqFraction), fmt.Sprint(p.Tracks),
			f1(p.ResponseMS), fmt.Sprint(p.CacheHits), f1(p.HitsPerSec),
		})
	}
	return pts, t, nil
}
