package experiments

import (
	"fmt"

	"declust/internal/analytic"
	"declust/internal/core"
	"declust/internal/disk"
)

// Extension experiments: the paper's §9 future-work items, implemented and
// measured. These have no paper figure to match; they extend the study.

// ThrottlePoint is one sample of the reconstruction-throttling ablation.
type ThrottlePoint struct {
	CyclesPerSec float64 // 0 = unthrottled
	ReconMin     float64
	ResponseMS   float64
}

// ExtThrottle measures the reconstruction-time / user-response trade-off
// as reconstruction is throttled (paper §9: "throttling of reconstruction
// ... that reduces user response time degradation without starving
// reconstruction"). Uses G, rate 210, 50/50, 8-way parallel.
func ExtThrottle(o Options, g int, rates []float64) ([]ThrottlePoint, Table, error) {
	o = o.withDefaults()
	if rates == nil {
		rates = []float64{0, 40, 20, 10} // cycles/s per process; 0 = free-running
	}
	t := Table{ID: "ext-throttle",
		Title:  fmt.Sprintf("Reconstruction throttling ablation (G=%d, 8-way, rate 210, 50%% reads)", g),
		Header: []string{"cycles/s/proc", "recon (min)", "response (ms)"}}
	pts, err := RunPoints(o.Workers, len(rates), func(i int) (ThrottlePoint, error) {
		cps := rates[i]
		cfg := o.simConfig(g, 210, 0.5)
		cfg.ReconProcs = 8
		cfg.ReconThrottleCyclesPerSec = cps
		m, err := core.RunReconstruction(cfg)
		if err != nil {
			return ThrottlePoint{}, fmt.Errorf("ext-throttle cps=%v: %w", cps, err)
		}
		return ThrottlePoint{CyclesPerSec: cps, ReconMin: m.ReconTimeMS / 60_000, ResponseMS: m.MeanResponseMS}, nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, p := range pts {
		label := fmt.Sprint(p.CyclesPerSec)
		if p.CyclesPerSec == 0 {
			label = "unthrottled"
		}
		t.Rows = append(t.Rows, []string{label, f1(p.ReconMin), f1(p.ResponseMS)})
	}
	return pts, t, nil
}

// PriorityPoint is one sample of the reconstruction-priority ablation.
type PriorityPoint struct {
	LowPriority bool
	ReconMin    float64
	ResponseMS  float64
}

// ExtPriority measures the effect of scheduling reconstruction accesses in
// a lower disk-queue class than user accesses (paper §9: "a flexible
// prioritization scheme").
func ExtPriority(o Options, g int) ([]PriorityPoint, Table, error) {
	o = o.withDefaults()
	t := Table{ID: "ext-priority",
		Title:  fmt.Sprintf("Reconstruction access priority ablation (G=%d, 8-way, rate 210, 50%% reads)", g),
		Header: []string{"recon priority", "recon (min)", "response (ms)"}}
	lows := []bool{false, true}
	pts, err := RunPoints(o.Workers, len(lows), func(i int) (PriorityPoint, error) {
		low := lows[i]
		cfg := o.simConfig(g, 210, 0.5)
		cfg.ReconProcs = 8
		cfg.ReconLowPriority = low
		m, err := core.RunReconstruction(cfg)
		if err != nil {
			return PriorityPoint{}, fmt.Errorf("ext-priority low=%v: %w", low, err)
		}
		return PriorityPoint{LowPriority: low, ReconMin: m.ReconTimeMS / 60_000, ResponseMS: m.MeanResponseMS}, nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, p := range pts {
		label := "equal"
		if p.LowPriority {
			label = "below user"
		}
		t.Rows = append(t.Rows, []string{label, f1(p.ReconMin), f1(p.ResponseMS)})
	}
	return pts, t, nil
}

// DataMapPoint is one sample of the data-mapping ablation.
type DataMapPoint struct {
	AccessUnits int
	Parallel    bool
	ReadFrac    float64
	ResponseMS  float64
}

// ExtDataMap measures the §4.2 data-mapping trade-off the paper leaves as
// future work: fault-free response time versus access size under the
// stripe-index mapping (large-write optimized) and the round-robin
// parallel mapping (maximal parallelism), for all-read and all-write
// workloads.
//
// Measured outcome: aligned full-stripe writes strongly favor the
// stripe-index mapping (no pre-reads). For reads of random 4 KB units the
// parallel mapping's wider spread does not lower latency — response is the
// maximum over the disks touched, and a max over more positioning delays
// grows — so its benefit is confined to transfer-dominated streaming, as
// the paper's cautious phrasing ("depends on the access size
// distribution") anticipates.
func ExtDataMap(o Options, g int, sizes []int) ([]DataMapPoint, Table, error) {
	o = o.withDefaults()
	if sizes == nil {
		sizes = []int{1, g - 1, 2 * (g - 1), 20}
	}
	t := Table{ID: "ext-datamap",
		Title:  fmt.Sprintf("Data mapping ablation (G=%d, fault-free, rate 160/size per s): mean response (ms)", g),
		Header: []string{"access (units)", "workload", "stripe-index", "parallel"}}
	type job struct {
		size     int
		readFrac float64
		parallel bool
	}
	var jobs []job
	for _, size := range sizes {
		for _, readFrac := range []float64{1, 0} {
			for _, parallel := range []bool{false, true} {
				jobs = append(jobs, job{size, readFrac, parallel})
			}
		}
	}
	pts, err := RunPoints(o.Workers, len(jobs), func(i int) (DataMapPoint, error) {
		j := jobs[i]
		// Hold the unit throughput constant across access sizes so no
		// configuration saturates (the parallel mapping pays up to 4
		// accesses per touched unit on unaligned writes).
		rate := 160.0 / float64(j.size)
		if rate > 50 {
			rate = 50
		}
		cfg := o.simConfig(g, rate, j.readFrac)
		cfg.AccessUnits = j.size
		cfg.ParallelDataMap = j.parallel
		m, err := core.RunFaultFree(cfg)
		if err != nil {
			return DataMapPoint{}, fmt.Errorf("ext-datamap size=%d parallel=%v: %w", j.size, j.parallel, err)
		}
		return DataMapPoint{AccessUnits: j.size, Parallel: j.parallel,
			ReadFrac: j.readFrac, ResponseMS: m.MeanResponseMS}, nil
	})
	if err != nil {
		return nil, t, err
	}
	// Two points (stripe-index, parallel) fold into each table row.
	for i := 0; i+1 < len(pts); i += 2 {
		p := pts[i]
		workload := "reads"
		if p.ReadFrac != 1 {
			workload = "writes"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.AccessUnits), workload,
			f1(p.ResponseMS), f1(pts[i+1].ResponseMS),
		})
	}
	return pts, t, nil
}

// MirrorRow is one line of the mirroring-vs-parity comparison.
type MirrorRow struct {
	Label      string
	G          int
	Overhead   float64
	ReconMin   float64
	ResponseMS float64
	FaultFree  float64
}

// ExtMirror compares declustered mirroring (G=2 over a complete design —
// Copeland & Keller's interleaved declustering, the paper's §3 ancestor)
// against declustered parity (G=5) and RAID 5, reproducing the paper's §1
// framing: mirroring buys recovery performance with capacity.
func ExtMirror(o Options) ([]MirrorRow, Table, error) {
	o = o.withDefaults()
	t := Table{ID: "ext-mirror",
		Title:  "Mirroring vs parity declustering vs RAID 5 (8-way recon, rate 210, 50% reads)",
		Header: []string{"organization", "G", "overhead", "fault-free (ms)", "recovering (ms)", "recon (min)"}}
	cases := []struct {
		label string
		g     int
	}{
		{"interleaved-declustered mirror", 2},
		{"declustered parity α=0.2", 5},
		{"RAID 5", 21},
	}
	rows, err := RunPoints(o.Workers, len(cases), func(i int) (MirrorRow, error) {
		c := cases[i]
		cfg := o.simConfig(c.g, 210, 0.5)
		cfg.ReconProcs = 8
		ff, err := core.RunFaultFree(cfg)
		if err != nil {
			return MirrorRow{}, fmt.Errorf("ext-mirror %s fault-free: %w", c.label, err)
		}
		rc, err := core.RunReconstruction(cfg)
		if err != nil {
			return MirrorRow{}, fmt.Errorf("ext-mirror %s recon: %w", c.label, err)
		}
		return MirrorRow{Label: c.label, G: c.g, Overhead: 1 / float64(c.g),
			ReconMin: rc.ReconTimeMS / 60_000, ResponseMS: rc.MeanResponseMS, FaultFree: ff.MeanResponseMS}, nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{
			row.Label, fmt.Sprint(row.G), fmt.Sprintf("%.0f%%", 100*row.Overhead),
			f1(row.FaultFree), f1(row.ResponseMS), f1(row.ReconMin),
		})
	}
	return rows, t, nil
}

// UnitSizePoint is one sample of the stripe-unit-size sweep.
type UnitSizePoint struct {
	UnitKB     int
	FaultFree  float64
	Recovering float64
	ReconMin   float64
}

// ExtUnitSize sweeps the stripe unit size (paper §9: "we intend to explore
// disk arrays with different stripe unit sizes"). Access size stays one
// unit, so larger units mean larger transfers per access; reconstruction
// moves the same bytes in fewer, bigger cycles.
func ExtUnitSize(o Options, g int, sectors []int) ([]UnitSizePoint, Table, error) {
	o = o.withDefaults()
	if sectors == nil {
		sectors = []int{2, 8, 16, 32}
	}
	t := Table{ID: "ext-unitsize",
		Title:  fmt.Sprintf("Stripe unit size sweep (G=%d, 8-way recon, rate 105, 50%% reads)", g),
		Header: []string{"unit (KB)", "fault-free (ms)", "recovering (ms)", "recon (min)"}}
	pts, err := RunPoints(o.Workers, len(sectors), func(i int) (UnitSizePoint, error) {
		sec := sectors[i]
		cfg := o.simConfig(g, 105, 0.5)
		cfg.UnitSectors = sec
		cfg.ReconProcs = 8
		ff, err := core.RunFaultFree(cfg)
		if err != nil {
			return UnitSizePoint{}, fmt.Errorf("ext-unitsize %d sectors fault-free: %w", sec, err)
		}
		rc, err := core.RunReconstruction(cfg)
		if err != nil {
			return UnitSizePoint{}, fmt.Errorf("ext-unitsize %d sectors recon: %w", sec, err)
		}
		return UnitSizePoint{UnitKB: sec / 2, FaultFree: ff.MeanResponseMS,
			Recovering: rc.MeanResponseMS, ReconMin: rc.ReconTimeMS / 60_000}, nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.UnitKB), f1(p.FaultFree), f1(p.Recovering), f1(p.ReconMin),
		})
	}
	return pts, t, nil
}

// SkewPoint is one sample of the workload-skew study.
type SkewPoint struct {
	Label      string
	FaultFree  float64
	Recovering float64
	ReconMin   float64
}

// ExtSkew compares the paper's uniform workload against hot-spot-skewed
// address distributions (paper §9: "different user workload
// characteristics"). Declustered layouts spread every disk's units over
// the whole logical space, so moderate skew perturbs the balance less
// than one might fear.
func ExtSkew(o Options, g int) ([]SkewPoint, Table, error) {
	o = o.withDefaults()
	t := Table{ID: "ext-skew",
		Title:  fmt.Sprintf("Workload skew (G=%d, 8-way recon, rate 210, 50%% reads)", g),
		Header: []string{"distribution", "fault-free (ms)", "recovering (ms)", "recon (min)"}}
	cases := []struct {
		label    string
		hot, acc float64
	}{
		{"uniform (paper)", 0, 0},
		{"80/20 hot spot", 0.2, 0.8},
		{"95/5 hot spot", 0.05, 0.95},
	}
	pts, err := RunPoints(o.Workers, len(cases), func(i int) (SkewPoint, error) {
		c := cases[i]
		cfg := o.simConfig(g, 210, 0.5)
		cfg.ReconProcs = 8
		cfg.HotDataFraction = c.hot
		cfg.HotAccessFraction = c.acc
		ff, err := core.RunFaultFree(cfg)
		if err != nil {
			return SkewPoint{}, fmt.Errorf("ext-skew %s fault-free: %w", c.label, err)
		}
		rc, err := core.RunReconstruction(cfg)
		if err != nil {
			return SkewPoint{}, fmt.Errorf("ext-skew %s recon: %w", c.label, err)
		}
		return SkewPoint{Label: c.label, FaultFree: ff.MeanResponseMS,
			Recovering: rc.MeanResponseMS, ReconMin: rc.ReconTimeMS / 60_000}, nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{p.Label, f1(p.FaultFree), f1(p.Recovering), f1(p.ReconMin)})
	}
	return pts, t, nil
}

// SparingRow is one line of the distributed-sparing comparison.
type SparingRow struct {
	Label      string
	ReconMin   float64
	ResponseMS float64
}

// ExtSparing compares replacement-disk reconstruction against distributed
// sparing (spare units spread over the survivors, the RAIDframe/dRAID
// lineage): same logical G, 8-way parallel reconstruction, rate 210.
// Sparing removes the replacement disk's write bottleneck, which dominates
// exactly when the array is busy.
func ExtSparing(o Options, g int) ([]SparingRow, Table, error) {
	o = o.withDefaults()
	t := Table{ID: "ext-sparing",
		Title:  fmt.Sprintf("Replacement vs distributed sparing (G=%d, 8-way, rate 210, 50%% reads)", g),
		Header: []string{"organization", "recon (min)", "response (ms)"}}
	modes := []bool{false, true}
	rows, err := RunPoints(o.Workers, len(modes), func(i int) (SparingRow, error) {
		sparing := modes[i]
		cfg := o.simConfig(g, 210, 0.5)
		cfg.ReconProcs = 8
		cfg.DistributedSparing = sparing
		m, err := core.RunReconstruction(cfg)
		if err != nil {
			return SparingRow{}, fmt.Errorf("ext-sparing sparing=%v: %w", sparing, err)
		}
		label := "replacement disk"
		if sparing {
			label = "distributed sparing"
		}
		return SparingRow{Label: label, ReconMin: m.ReconTimeMS / 60_000, ResponseMS: m.MeanResponseMS}, nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{row.Label, f1(row.ReconMin), f1(row.ResponseMS)})
	}
	return rows, t, nil
}

// PQRow is one line of the single- vs dual-parity code comparison.
type PQRow struct {
	Code       string // "P" or "P+Q"
	G          int
	Overhead   float64
	FaultFree  float64
	Recovering float64
	ReconMin   float64
	LostFrac   float64 // worst-case second-failure lost fraction of at-risk stripes
}

// ExtPQ measures the α × rebuild-traffic × code tradeoff of the
// RAID-6-style P+Q extension: for each stripe size the same workload runs
// under single parity and under P+Q (six-access small writes,
// two-survivor reconstruction), and an idle-array enumeration reports the
// worst-case second-failure loss — α of the at-risk stripes under P,
// zero under P+Q, which buys the second fault tolerance with one more
// parity unit of overhead per stripe and two extra accesses per small
// write.
func ExtPQ(o Options, gs []int) ([]PQRow, Table, error) {
	o = o.withDefaults()
	if gs == nil {
		gs = []int{5, 10}
	}
	t := Table{ID: "ext-pq",
		Title:  "Single parity vs P+Q dual parity (C=21, 8-way recon, rate 210, 50% reads)",
		Header: []string{"code", "G", "overhead", "fault-free (ms)", "recovering (ms)", "recon (min)", "2nd-failure loss"}}
	geom := disk.IBM0661()
	if o.ScaleNum > 0 && o.ScaleDen > 0 {
		geom = geom.Scaled(o.ScaleNum, o.ScaleDen)
	}
	type job struct {
		g, parities int
	}
	var jobs []job
	for _, g := range gs {
		for _, parities := range []int{1, 2} {
			jobs = append(jobs, job{g, parities})
		}
	}
	rows, err := RunPoints(o.Workers, len(jobs), func(i int) (PQRow, error) {
		j := jobs[i]
		cfg := o.simConfig(j.g, 210, 0.5)
		cfg.ReconProcs = 8
		newMap := core.NewMapping
		code := "P"
		if j.parities == 2 {
			cfg.Parities = 2
			newMap = core.NewPQMapping
			code = "P+Q"
		}
		ff, err := core.RunFaultFree(cfg)
		if err != nil {
			return PQRow{}, fmt.Errorf("ext-pq %s G=%d fault-free: %w", code, j.g, err)
		}
		rc, err := core.RunReconstruction(cfg)
		if err != nil {
			return PQRow{}, fmt.Errorf("ext-pq %s G=%d recon: %w", code, j.g, err)
		}
		// The loss side of the tradeoff costs no simulation: enumerate the
		// worst-case second failure (first failure fully unrecovered).
		m, err := newMap(21, j.g, 0)
		if err != nil {
			return PQRow{}, fmt.Errorf("ext-pq %s G=%d mapping: %w", code, j.g, err)
		}
		arr, err := newIdleArray(m, geom)
		if err != nil {
			return PQRow{}, fmt.Errorf("ext-pq %s G=%d array: %w", code, j.g, err)
		}
		if err := arr.Fail(0); err != nil {
			return PQRow{}, err
		}
		df, err := arr.SecondFail(1)
		if err != nil {
			return PQRow{}, err
		}
		lost := 0.0
		if df.StripesAtRisk > 0 {
			lost = float64(df.StripesLost) / float64(df.StripesAtRisk)
		}
		return PQRow{Code: code, G: j.g, Overhead: float64(j.parities) / float64(j.g),
			FaultFree: ff.MeanResponseMS, Recovering: rc.MeanResponseMS,
			ReconMin: rc.ReconTimeMS / 60_000, LostFrac: lost}, nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{
			row.Code, fmt.Sprint(row.G), fmt.Sprintf("%.0f%%", 100*row.Overhead),
			f1(row.FaultFree), f1(row.Recovering), f1(row.ReconMin), f2(row.LostFrac),
		})
	}
	return rows, t, nil
}

// ReliabilityRow is one line of the MTTDL table.
type ReliabilityRow struct {
	G          int
	Alpha      float64
	ReconMin   float64
	MTTDLYears float64
}

// ExtReliability turns measured reconstruction times into mean time to
// data loss: the §2 trade-off between parity overhead (1/G) and
// reliability, using 150,000-hour disks.
func ExtReliability(o Options, procs int) ([]ReliabilityRow, Table, error) {
	o = o.withDefaults()
	t := Table{ID: "ext-mttdl",
		Title:  fmt.Sprintf("Reliability vs declustering (%d-way recon, rate 210, 50%% reads, MTTF 150k h)", procs),
		Header: []string{"alpha", "G", "overhead", "recon (min)", "MTTDL (years)"}}
	gs := o.gs(true)
	rows, err := RunPoints(o.Workers, len(gs), func(i int) (ReliabilityRow, error) {
		g := gs[i]
		cfg := o.simConfig(g, 210, 0.5)
		cfg.ReconProcs = procs
		cfg.Algorithm = 0
		m, err := core.RunReconstruction(cfg)
		if err != nil {
			return ReliabilityRow{}, fmt.Errorf("ext-mttdl G=%d: %w", g, err)
		}
		rel := analytic.Reliability{C: 21, MTTFHours: 150_000, MTTRHours: m.ReconTimeMS / 3_600_000}
		mttdl, err := rel.MTTDLHours()
		if err != nil {
			return ReliabilityRow{}, err
		}
		return ReliabilityRow{G: g, Alpha: alphaOf(g), ReconMin: m.ReconTimeMS / 60_000,
			MTTDLYears: mttdl / (24 * 365.25)}, nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{
			f2(row.Alpha), fmt.Sprint(row.G), fmt.Sprintf("%.0f%%", 100/float64(row.G)),
			f1(row.ReconMin), fmt.Sprintf("%.0f", row.MTTDLYears),
		})
	}
	return rows, t, nil
}
