package experiments

import (
	"strings"
	"testing"

	"declust/internal/array"
)

// fastOpts: 1/50-scale disks and short windows keep the whole file under a
// minute while preserving per-access behaviour.
func fastOpts() Options {
	return Options{
		ScaleNum: 1, ScaleDen: 50,
		Seed:      7,
		WarmupMS:  2_000,
		MeasureMS: 20_000,
	}
}

func TestTableFormatting(t *testing.T) {
	tab := Table{ID: "x", Title: "T", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	s := tab.String()
	for _, want := range []string{"x: T", "a", "bb", "1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, s)
		}
	}
}

func TestFig43CoversPaperDesigns(t *testing.T) {
	tab := Fig43(21)
	if len(tab.Rows) < 10 {
		t.Fatalf("only %d known designs", len(tab.Rows))
	}
	found := 0
	for _, r := range tab.Rows {
		if r[0] == "21" && r[3] == "paper appendix" {
			found++
		}
	}
	if found != 6 {
		t.Fatalf("found %d paper appendix designs at v=21, want 6", found)
	}
}

func TestFig6ReadsShape(t *testing.T) {
	o := fastOpts()
	o.Gs = []int{5, 21}
	o.Rates = []float64{105}
	pts, tab, err := Fig6(o, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || len(tab.Rows) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	byG := map[int]ResponsePoint{}
	for _, p := range pts {
		byG[p.G] = p
		// Degraded reads are always slower than fault-free.
		if p.Degraded.MeanResponseMS <= p.FaultFree.MeanResponseMS {
			t.Errorf("G=%d: degraded %.1f <= fault-free %.1f",
				p.G, p.Degraded.MeanResponseMS, p.FaultFree.MeanResponseMS)
		}
	}
	// Fault-free response is essentially independent of α (paper §6):
	// within 15% between α=0.2 and α=1.
	a, b := byG[5].FaultFree.MeanResponseMS, byG[21].FaultFree.MeanResponseMS
	if diff := (a - b) / b; diff > 0.15 || diff < -0.15 {
		t.Errorf("fault-free response varies with α: %.1f vs %.1f", a, b)
	}
	// Degraded-mode degradation grows with α (paper §7).
	if byG[5].Degraded.MeanResponseMS >= byG[21].Degraded.MeanResponseMS {
		t.Errorf("degraded response at α=0.2 (%.1f) not below α=1.0 (%.1f)",
			byG[5].Degraded.MeanResponseMS, byG[21].Degraded.MeanResponseMS)
	}
}

func TestFig6WritesRun(t *testing.T) {
	o := fastOpts()
	o.Gs = []int{5}
	o.Rates = []float64{105}
	pts, _, err := Fig6(o, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	// Writes are much slower than reads fault-free (4 accesses vs 1).
	if pts[0].FaultFree.MeanResponseMS < 20 {
		t.Errorf("write response %.1f ms implausibly fast", pts[0].FaultFree.MeanResponseMS)
	}
}

func TestFig8Shape(t *testing.T) {
	o := fastOpts()
	o.Gs = []int{5, 21}
	o.Rates = []float64{105}
	pts, tt, tr, err := Fig8(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*len(ReconAlgorithms) {
		t.Fatalf("want %d points, got %d", 2*len(ReconAlgorithms), len(pts))
	}
	if len(tt.Rows) != len(pts) || len(tr.Rows) != len(pts) {
		t.Fatal("table row counts wrong")
	}
	// Declustering beats RAID 5 on both reconstruction time and user
	// response, for every algorithm (the paper's headline).
	get := func(g int, alg array.ReconAlgorithm) ReconPoint {
		for _, p := range pts {
			if p.G == g && p.Algorithm == alg {
				return p
			}
		}
		t.Fatalf("missing point G=%d %v", g, alg)
		return ReconPoint{}
	}
	for _, alg := range ReconAlgorithms {
		d, r := get(5, alg), get(21, alg)
		if d.Metrics.ReconTimeMS >= r.Metrics.ReconTimeMS {
			t.Errorf("%v: declustered recon %.0f ms !< RAID 5 %.0f ms",
				alg, d.Metrics.ReconTimeMS, r.Metrics.ReconTimeMS)
		}
		if d.Metrics.MeanResponseMS >= r.Metrics.MeanResponseMS {
			t.Errorf("%v: declustered response %.1f ms !< RAID 5 %.1f ms",
				alg, d.Metrics.MeanResponseMS, r.Metrics.MeanResponseMS)
		}
	}
}

func TestFig8ParallelFasterThanSingle(t *testing.T) {
	o := fastOpts()
	o.Gs = []int{5}
	o.Rates = []float64{105}
	single, _, _, err := Fig8(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, _, err := Fig8(o, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range single {
		s, p := single[i], parallel[i]
		if p.Metrics.ReconTimeMS >= s.Metrics.ReconTimeMS {
			t.Errorf("%v: 8-way recon %.0f ms !< single %.0f ms",
				s.Algorithm, p.Metrics.ReconTimeMS, s.Metrics.ReconTimeMS)
		}
		if p.Metrics.MeanResponseMS <= s.Metrics.MeanResponseMS {
			t.Errorf("%v: 8-way response %.1f ms !> single %.1f ms (no contention?)",
				s.Algorithm, p.Metrics.MeanResponseMS, s.Metrics.MeanResponseMS)
		}
	}
}

func TestTable81Shape(t *testing.T) {
	o := fastOpts()
	o.Gs = []int{4, 21}
	rows, tab, err := Table81(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(ReconAlgorithms)*2 {
		t.Fatalf("want %d rows, got %d", 2*len(ReconAlgorithms)*2, len(rows))
	}
	if len(tab.Rows) != len(rows) {
		t.Fatal("table rows mismatch")
	}
	// Read phase grows with α: more surviving disks must answer.
	for _, procs := range []int{1, 8} {
		for _, alg := range ReconAlgorithms {
			var lo, hi float64
			for _, r := range rows {
				if r.Procs == procs && r.Algorithm == alg {
					if r.G == 4 {
						lo = r.ReadMean
					} else {
						hi = r.ReadMean
					}
				}
			}
			if lo >= hi {
				t.Errorf("procs=%d %v: read phase at α=0.15 (%.1f) !< α=1.0 (%.1f)", procs, alg, lo, hi)
			}
		}
	}
}

func TestFig86ModelPessimistic(t *testing.T) {
	o := fastOpts()
	o.Gs = []int{5}
	pts, tab, err := Fig86(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || len(tab.Rows) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	for _, p := range pts {
		// The paper's finding: the single-service-rate model is
		// significantly pessimistic versus the disk-accurate simulation.
		if p.ModelMin <= p.SimulatedMin {
			t.Errorf("%v: model %.1f min not above simulation %.1f min",
				p.Algorithm, p.ModelMin, p.SimulatedMin)
		}
	}
}

func TestExtPQTradeoff(t *testing.T) {
	o := fastOpts()
	rows, _, err := ExtPQ(o, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want P and P+Q", len(rows))
	}
	p, pq := rows[0], rows[1]
	if p.Code != "P" || pq.Code != "P+Q" {
		t.Fatalf("row order: %q, %q", p.Code, pq.Code)
	}
	// The tradeoff's two sides: P+Q doubles the parity overhead and slows
	// the write-heavy half of the mix (six-access RMW), but a worst-case
	// second failure loses α of the at-risk stripes under P and nothing
	// under P+Q.
	if pq.Overhead != 2*p.Overhead {
		t.Errorf("P+Q overhead %.2f, want twice P's %.2f", pq.Overhead, p.Overhead)
	}
	if pq.FaultFree <= p.FaultFree {
		t.Errorf("P+Q fault-free response %.1f ms not above P's %.1f ms", pq.FaultFree, p.FaultFree)
	}
	if p.LostFrac <= 0 {
		t.Errorf("single parity lost fraction %.3f, want > 0", p.LostFrac)
	}
	if pq.LostFrac != 0 {
		t.Errorf("P+Q lost fraction %.3f, want 0", pq.LostFrac)
	}
}

func TestExtThrottleTradeoff(t *testing.T) {
	o := fastOpts()
	pts, _, err := ExtThrottle(o, 5, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	free, slow := pts[0], pts[1]
	if slow.ReconMin <= free.ReconMin {
		t.Errorf("throttled recon %.1f min !> unthrottled %.1f min", slow.ReconMin, free.ReconMin)
	}
	if slow.ResponseMS >= free.ResponseMS {
		t.Errorf("throttled response %.1f ms !< unthrottled %.1f ms", slow.ResponseMS, free.ResponseMS)
	}
}

func TestExtPriorityImprovesResponse(t *testing.T) {
	o := fastOpts()
	pts, _, err := ExtPriority(o, 5)
	if err != nil {
		t.Fatal(err)
	}
	equal, low := pts[0], pts[1]
	if low.ResponseMS >= equal.ResponseMS {
		t.Errorf("low-priority recon response %.1f ms !< equal-priority %.1f ms",
			low.ResponseMS, equal.ResponseMS)
	}
}

func TestExtDataMapTradeoff(t *testing.T) {
	o := fastOpts()
	pts, _, err := ExtDataMap(o, 5, []int{4, 20})
	if err != nil {
		t.Fatal(err)
	}
	find := func(size int, parallel bool, readFrac float64) float64 {
		for _, p := range pts {
			if p.AccessUnits == size && p.Parallel == parallel && p.ReadFrac == readFrac {
				return p.ResponseMS
			}
		}
		t.Fatalf("missing point size=%d parallel=%v", size, parallel)
		return 0
	}
	// Aligned full-stripe writes: the stripe-index mapping gets the
	// large-write optimization (G accesses, no pre-read), the parallel
	// mapping cannot.
	if si, pm := find(4, false, 0), find(4, true, 0); si >= pm {
		t.Errorf("full-stripe writes: stripe-index %.1f ms !< parallel %.1f ms", si, pm)
	}
	// Large reads: the parallel mapping touches more disks. For random
	// positioning-dominated unit reads the response is a max over the
	// disks touched, so more spread does not guarantee lower latency —
	// only assert both mappings produce sane measurements; the table
	// records the trade-off.
	for _, parallel := range []bool{false, true} {
		if v := find(20, parallel, 1); v <= 0 || v > 2000 {
			t.Errorf("20-unit read response %.1f ms implausible (parallel=%v)", v, parallel)
		}
	}
}

func TestExtMirrorShape(t *testing.T) {
	o := fastOpts()
	rows, _, err := ExtMirror(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	mirror, parity, raid5 := rows[0], rows[1], rows[2]
	// Mirroring: fastest writes fault-free (2 accesses vs 4) and best
	// behaviour through recovery, at 50% capacity overhead.
	if mirror.FaultFree >= parity.FaultFree {
		t.Errorf("mirror fault-free %.1f !< parity %.1f", mirror.FaultFree, parity.FaultFree)
	}
	if mirror.ResponseMS >= raid5.ResponseMS {
		t.Errorf("mirror recovering %.1f !< RAID 5 %.1f", mirror.ResponseMS, raid5.ResponseMS)
	}
	if mirror.ReconMin >= raid5.ReconMin {
		t.Errorf("mirror recon %.1f !< RAID 5 %.1f", mirror.ReconMin, raid5.ReconMin)
	}
	if mirror.Overhead != 0.5 || raid5.Overhead >= 0.05 {
		t.Errorf("overheads wrong: %+v", rows)
	}
}

func TestExtUnitSizeRuns(t *testing.T) {
	o := fastOpts()
	pts, _, err := ExtUnitSize(o, 5, []int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	// Bigger units transfer more per access: responses grow.
	if pts[1].FaultFree <= pts[0].FaultFree {
		t.Errorf("16 KB units response %.1f !> 4 KB %.1f", pts[1].FaultFree, pts[0].FaultFree)
	}
	// Reconstruction of the same bytes in bigger chunks is faster
	// (fewer positioning delays per byte).
	if pts[1].ReconMin >= pts[0].ReconMin {
		t.Errorf("16 KB units recon %.2f min !< 4 KB %.2f min", pts[1].ReconMin, pts[0].ReconMin)
	}
}

func TestExtSkewRuns(t *testing.T) {
	o := fastOpts()
	pts, _, err := ExtSkew(o, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("want 3 points, got %d", len(pts))
	}
	for _, p := range pts {
		if p.FaultFree <= 0 || p.ReconMin <= 0 {
			t.Errorf("%s: missing metrics %+v", p.Label, p)
		}
	}
}

func TestExtSparingFasterReconUnderLoad(t *testing.T) {
	o := fastOpts()
	rows, _, err := ExtSparing(o, 5)
	if err != nil {
		t.Fatal(err)
	}
	repl, spared := rows[0], rows[1]
	if spared.ReconMin >= repl.ReconMin {
		t.Errorf("distributed sparing recon %.2f min !< replacement %.2f min",
			spared.ReconMin, repl.ReconMin)
	}
}

func TestExtReliabilityMonotone(t *testing.T) {
	o := fastOpts()
	o.Gs = []int{5, 21}
	rows, _, err := ExtReliability(o, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Faster reconstruction at lower α means higher MTTDL.
	if rows[0].MTTDLYears <= rows[1].MTTDLYears {
		t.Errorf("MTTDL at α=0.2 (%.0f y) !> α=1.0 (%.0f y)", rows[0].MTTDLYears, rows[1].MTTDLYears)
	}
}

func TestDoubleFailureLossMatchesAlpha(t *testing.T) {
	// The acceptance claim: a declustered layout loses a fraction of the
	// at-risk stripes within 20% of α = (G−1)/(C−1), while RAID 5 (G=C)
	// loses every stripe at risk — and every stripe is at risk.
	o := fastOpts()
	pts, tab, err := DoubleFailureLoss(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(pts) || len(pts) == 0 {
		t.Fatalf("table/points mismatch: %d rows, %d points", len(tab.Rows), len(pts))
	}
	for _, p := range pts {
		if p.StripesAtRisk == 0 {
			t.Fatalf("G=%d: no stripes at risk after a disk failure", p.G)
		}
		if p.G == 21 {
			if p.LostFraction != 1 {
				t.Errorf("RAID 5 lost fraction %.3f, want 1", p.LostFraction)
			}
			continue
		}
		if rel := p.LostFraction/p.Alpha - 1; rel < -0.2 || rel > 0.2 {
			t.Errorf("G=%d: lost fraction %.3f vs α=%.3f (%.0f%% off)",
				p.G, p.LostFraction, p.Alpha, 100*rel)
		}
		if p.UnitsLost < 2*p.StripesLost {
			t.Errorf("G=%d: %d units over %d lost stripes; want ≥2 per stripe",
				p.G, p.UnitsLost, p.StripesLost)
		}
	}
}

func TestExtSchedSeekOptimizersBeatFIFO(t *testing.T) {
	o := fastOpts()
	pts, tab, err := ExtSched(o, []int{21})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(SchedPolicies) || len(tab.Rows) != len(pts) {
		t.Fatalf("want %d points, got %d (rows %d)", len(SchedPolicies), len(pts), len(tab.Rows))
	}
	byPolicy := map[string]SchedPoint{}
	for _, p := range pts {
		byPolicy[p.Policy.String()] = p
		if p.DegradedMS <= 0 || p.ReconMin <= 0 || p.ReconRespMS <= 0 {
			t.Errorf("%v: missing metrics %+v", p.Policy, p)
		}
	}
	fifo := byPolicy["fifo"]
	if fifo.DeltaPct != 0 {
		t.Errorf("FIFO delta %.1f%%, want 0 (it is the baseline)", fifo.DeltaPct)
	}
	// The motivating effect at the paper's heavy rate: seek-optimizing
	// schedulers measurably cut degraded-mode response versus FIFO on the
	// deeply queued RAID 5 configuration.
	for _, name := range []string{"sstf", "cscan", "cvscan"} {
		p := byPolicy[name]
		if p.DegradedMS >= fifo.DegradedMS {
			t.Errorf("%s degraded %.1f ms !< fifo %.1f ms", name, p.DegradedMS, fifo.DegradedMS)
		}
		if p.DeltaPct >= 0 {
			t.Errorf("%s delta %+.1f%%, want negative", name, p.DeltaPct)
		}
	}
}

func TestExtReadaheadSequentialStreamsHit(t *testing.T) {
	o := fastOpts()
	pts, tab, err := ExtReadahead(o, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 || len(tab.Rows) != 9 {
		t.Fatalf("want 9 points, got %d", len(pts))
	}
	find := func(seq float64, tracks int) ReadaheadPoint {
		for _, p := range pts {
			if p.SeqFraction == seq && p.Tracks == tracks {
				return p
			}
		}
		t.Fatalf("missing point seq=%v tracks=%d", seq, tracks)
		return ReadaheadPoint{}
	}
	for _, seq := range []float64{0, 0.5, 0.9} {
		if p := find(seq, 0); p.CacheHits != 0 {
			t.Errorf("seq=%v tracks=0: %d cache hits with the buffer off", seq, p.CacheHits)
		}
	}
	off, on := find(0.9, 0), find(0.9, 4)
	if on.CacheHits == 0 {
		t.Error("sequential stream with 4-track read-ahead produced no hits")
	}
	if on.ResponseMS >= off.ResponseMS {
		t.Errorf("read-ahead response %.1f ms !< no-buffer %.1f ms on a 90%% sequential stream",
			on.ResponseMS, off.ResponseMS)
	}
}
