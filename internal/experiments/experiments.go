// Package experiments regenerates every table and figure of the paper's
// evaluation (§6–§8) from the simulator, plus the extension studies listed
// in DESIGN.md. Each experiment returns both structured series (for tests
// and benchmarks) and a formatted Table (for the CLI and EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"strings"

	"declust/internal/analytic"
	"declust/internal/array"
	"declust/internal/blockdesign"
	"declust/internal/core"
	"declust/internal/disk"
)

// Options configures a reproduction run. Zero values select the paper's
// full-scale setup.
type Options struct {
	// ScaleNum/ScaleDen shrink the disks (1/10 runs ~10x faster;
	// reconstruction times scale linearly with capacity). 0/0 = full.
	ScaleNum, ScaleDen int
	// Gs are the parity stripe sizes to sweep; nil = the paper's
	// {3,4,5,6,10,18,21} for §6 and {4,5,6,10,18,21} for §8 (the paper
	// drops α = 0.1 after §6).
	Gs []int
	// Rates are user access rates; nil = the figure's own rates.
	Rates []float64
	// Seed for workload determinism.
	Seed int64
	// WarmupMS and MeasureMS for response-time windows; 0 = defaults
	// (10 s warmup, 100 s measurement).
	WarmupMS, MeasureMS float64
	// Workers fans independent simulation points out over this many
	// goroutines (<= 1 = serial). Each point owns its engine and RNG
	// streams and results are assembled in point order, so tables and
	// exports are byte-identical whatever the worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.WarmupMS == 0 {
		o.WarmupMS = 10_000
	}
	if o.MeasureMS == 0 {
		o.MeasureMS = 100_000
	}
	return o
}

func (o Options) gs(section8 bool) []int {
	if o.Gs != nil {
		return o.Gs
	}
	if section8 {
		return []int{4, 5, 6, 10, 18, 21}
	}
	return []int{3, 4, 5, 6, 10, 18, 21}
}

func (o Options) simConfig(g int, rate, readFrac float64) core.SimConfig {
	return core.SimConfig{
		C: 21, G: g,
		ScaleNum: o.ScaleNum, ScaleDen: o.ScaleDen,
		RatePerSec:   rate,
		ReadFraction: readFrac,
		Seed:         o.Seed,
		WarmupMS:     o.WarmupMS,
		MeasureMS:    o.MeasureMS,
	}
}

// Table is a formatted experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// alphaOf returns the declustering ratio of a G on 21 disks.
func alphaOf(g int) float64 { return float64(g-1) / 20 }

// Fig43 reproduces Figure 4-3: the scatter of known block designs the
// implementation can draw on.
func Fig43(maxV int) Table {
	if maxV <= 0 {
		maxV = 41
	}
	pts := blockdesign.KnownDesigns(maxV, blockdesign.DefaultMaxTuples)
	t := Table{
		ID:     "fig4-3",
		Title:  fmt.Sprintf("Known block designs (v ≤ %d, table ≤ %d tuples)", maxV, blockdesign.DefaultMaxTuples),
		Header: []string{"v", "k", "b", "source"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.V), fmt.Sprint(p.K), fmt.Sprint(p.B), p.Source,
		})
	}
	return t
}

// ResponsePoint is one (α, rate) sample of Figures 6-1/6-2.
type ResponsePoint struct {
	G         int
	Alpha     float64
	Rate      float64
	FaultFree core.Metrics
	Degraded  core.Metrics
}

// Fig6 reproduces Figure 6-1 (readFrac = 1) or 6-2 (readFrac = 0):
// fault-free and degraded average response time versus α at several user
// rates. The paper's rates are {105, 210, 378} for reads and {105, 210}
// for writes.
func Fig6(o Options, readFrac float64) ([]ResponsePoint, Table, error) {
	o = o.withDefaults()
	rates := o.Rates
	if rates == nil {
		if readFrac == 1 {
			rates = []float64{105, 210, 378}
		} else {
			rates = []float64{105, 210}
		}
	}
	id, title := "fig6-1", "Avg response time, 100% reads (ms)"
	if readFrac < 1 {
		id, title = "fig6-2", "Avg response time, 100% writes (ms)"
	}
	t := Table{ID: id, Title: title,
		Header: []string{"alpha", "G", "rate/s", "fault-free", "degraded"}}
	type job struct {
		g    int
		rate float64
	}
	var jobs []job
	for _, g := range o.gs(false) {
		for _, rate := range rates {
			jobs = append(jobs, job{g, rate})
		}
	}
	pts, err := RunPoints(o.Workers, len(jobs), func(i int) (ResponsePoint, error) {
		j := jobs[i]
		cfg := o.simConfig(j.g, j.rate, readFrac)
		ff, err := core.RunFaultFree(cfg)
		if err != nil {
			return ResponsePoint{}, fmt.Errorf("fig6 fault-free G=%d rate=%v: %w", j.g, j.rate, err)
		}
		dg, err := core.RunDegraded(cfg)
		if err != nil {
			return ResponsePoint{}, fmt.Errorf("fig6 degraded G=%d rate=%v: %w", j.g, j.rate, err)
		}
		return ResponsePoint{G: j.g, Alpha: alphaOf(j.g), Rate: j.rate, FaultFree: ff, Degraded: dg}, nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			f2(p.Alpha), fmt.Sprint(p.G), fmt.Sprint(p.Rate),
			f1(p.FaultFree.MeanResponseMS), f1(p.Degraded.MeanResponseMS),
		})
	}
	return pts, t, nil
}

// ReconPoint is one (α, algorithm, rate) sample of Figures 8-1..8-4.
type ReconPoint struct {
	G         int
	Alpha     float64
	Rate      float64
	Algorithm array.ReconAlgorithm
	Metrics   core.Metrics
}

// ReconAlgorithms is the paper's §8 set.
var ReconAlgorithms = []array.ReconAlgorithm{
	array.Baseline, array.UserWrites, array.Redirect, array.RedirectPiggyback,
}

// Fig8 reproduces Figures 8-1/8-2 (procs = 1) or 8-3/8-4 (procs = 8): for
// each α, reconstruction algorithm and rate, the reconstruction time and
// the average user response time during reconstruction, under the 50/50
// read/write workload. One simulation yields both figures' data.
func Fig8(o Options, procs int) ([]ReconPoint, Table, Table, error) {
	o = o.withDefaults()
	rates := o.Rates
	if rates == nil {
		rates = []float64{105, 210}
	}
	suffix := "single-thread"
	idT, idR := "fig8-1", "fig8-2"
	if procs != 1 {
		suffix = fmt.Sprintf("%d-way parallel", procs)
		idT, idR = "fig8-3", "fig8-4"
	}
	tt := Table{ID: idT, Title: fmt.Sprintf("Reconstruction time, %s, 50%% reads (minutes)", suffix),
		Header: []string{"alpha", "G", "rate/s", "algorithm", "recon (min)"}}
	tr := Table{ID: idR, Title: fmt.Sprintf("Avg user response time during reconstruction, %s (ms)", suffix),
		Header: []string{"alpha", "G", "rate/s", "algorithm", "response (ms)"}}
	type job struct {
		g    int
		rate float64
		alg  array.ReconAlgorithm
	}
	var jobs []job
	for _, g := range o.gs(true) {
		for _, rate := range rates {
			for _, alg := range ReconAlgorithms {
				jobs = append(jobs, job{g, rate, alg})
			}
		}
	}
	pts, err := RunPoints(o.Workers, len(jobs), func(i int) (ReconPoint, error) {
		j := jobs[i]
		cfg := o.simConfig(j.g, j.rate, 0.5)
		cfg.Algorithm = j.alg
		cfg.ReconProcs = procs
		m, err := core.RunReconstruction(cfg)
		if err != nil {
			return ReconPoint{}, fmt.Errorf("fig8 G=%d rate=%v alg=%v: %w", j.g, j.rate, j.alg, err)
		}
		return ReconPoint{G: j.g, Alpha: alphaOf(j.g), Rate: j.rate, Algorithm: j.alg, Metrics: m}, nil
	})
	if err != nil {
		return nil, tt, tr, err
	}
	for _, p := range pts {
		tt.Rows = append(tt.Rows, []string{
			f2(p.Alpha), fmt.Sprint(p.G), fmt.Sprint(p.Rate), p.Algorithm.String(),
			f1(p.Metrics.ReconTimeMS / 60_000),
		})
		tr.Rows = append(tr.Rows, []string{
			f2(p.Alpha), fmt.Sprint(p.G), fmt.Sprint(p.Rate), p.Algorithm.String(),
			f1(p.Metrics.MeanResponseMS),
		})
	}
	return pts, tt, tr, nil
}

// CycleRow is one entry of Table 8-1.
type CycleRow struct {
	G          int
	Alpha      float64
	Procs      int
	Algorithm  array.ReconAlgorithm
	ReadMean   float64
	ReadStd    float64
	WriteMean  float64
	WriteStd   float64
	CycleTotal float64
}

// Table81 reproduces Table 8-1: reconstruction cycle read/write phase
// times averaged over the last 300 reconstructed units, at rate 210, for
// α in {0.15, 0.45, 1.0}, all four algorithms, 1 and 8 processes.
func Table81(o Options) ([]CycleRow, Table, error) {
	o = o.withDefaults()
	gs := o.Gs
	if gs == nil {
		gs = []int{4, 10, 21} // α = 0.15, 0.45, 1.0
	}
	t := Table{ID: "table8-1",
		Title:  "Reconstruction cycle times (ms) at rate = 210: read(σ) + write(σ) = cycle",
		Header: []string{"procs", "algorithm", "alpha", "read", "(σ)", "write", "(σ)", "cycle"}}
	type job struct {
		procs int
		alg   array.ReconAlgorithm
		g     int
	}
	var jobs []job
	for _, procs := range []int{1, 8} {
		for _, alg := range ReconAlgorithms {
			for _, g := range gs {
				jobs = append(jobs, job{procs, alg, g})
			}
		}
	}
	rows, err := RunPoints(o.Workers, len(jobs), func(i int) (CycleRow, error) {
		j := jobs[i]
		cfg := o.simConfig(j.g, 210, 0.5)
		cfg.Algorithm = j.alg
		cfg.ReconProcs = j.procs
		rm, rs, wm, ws, err := core.ReconCyclePhases(cfg, 300)
		if err != nil {
			return CycleRow{}, fmt.Errorf("table8-1 G=%d alg=%v procs=%d: %w", j.g, j.alg, j.procs, err)
		}
		return CycleRow{G: j.g, Alpha: alphaOf(j.g), Procs: j.procs, Algorithm: j.alg,
			ReadMean: rm, ReadStd: rs, WriteMean: wm, WriteStd: ws, CycleTotal: rm + wm}, nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.Procs), row.Algorithm.String(), f2(row.Alpha),
			f1(row.ReadMean), f1(row.ReadStd), f1(row.WriteMean), f1(row.WriteStd), f1(row.CycleTotal),
		})
	}
	return rows, t, nil
}

// ModelPoint is one sample of Figure 8-6.
type ModelPoint struct {
	G            int
	Alpha        float64
	Algorithm    array.ReconAlgorithm
	ModelMin     float64 // Muntz & Lui prediction, minutes
	SimulatedMin float64 // our simulation, minutes
}

// Fig86 reproduces Figure 8-6: the Muntz & Lui analytic prediction against
// simulation, reconstruction time versus α at rate 210, 50% reads. The
// model assumes the bottleneck resource runs at 100% utilization, so the
// fair simulation counterpart is the well-utilized 8-way parallel sweep;
// the model still overestimates because it prices every access — including
// the replacement's near-sequential writes — at the random-access service
// rate (~46/s).
func Fig86(o Options) ([]ModelPoint, Table, error) {
	o = o.withDefaults()
	geom := disk.IBM0661()
	if o.ScaleNum > 0 && o.ScaleDen > 0 {
		geom = geom.Scaled(o.ScaleNum, o.ScaleDen)
	}
	t := Table{ID: "fig8-6",
		Title:  "Muntz & Lui model vs 8-way simulation: reconstruction time (min), rate 210, 50% reads",
		Header: []string{"alpha", "G", "algorithm", "model (min)", "simulated (min)", "model/sim"}}
	// Model disk rate: 1 / average random 4 KB access time.
	avgMS := geom.AvgSeekMS + geom.RevolutionMS/2 + 8.0/float64(geom.SectorsPerTrack)*geom.RevolutionMS
	diskRate := 1000 / avgMS
	type job struct {
		g   int
		alg array.ReconAlgorithm
	}
	var jobs []job
	for _, g := range o.gs(true) {
		for _, alg := range []array.ReconAlgorithm{array.UserWrites, array.Redirect} {
			jobs = append(jobs, job{g, alg})
		}
	}
	pts, err := RunPoints(o.Workers, len(jobs), func(i int) (ModelPoint, error) {
		j := jobs[i]
		cfg := o.simConfig(j.g, 210, 0.5)
		cfg.Algorithm = j.alg
		cfg.ReconProcs = 8
		m, err := core.RunReconstruction(cfg)
		if err != nil {
			return ModelPoint{}, fmt.Errorf("fig8-6 G=%d: %w", j.g, err)
		}
		// The model sweeps the same usable capacity the simulator
		// maps: raw units rounded down to whole allocation periods.
		raw := geom.TotalSectors() / 8
		r := unitsPerPeriod(j.g)
		model := analytic.Model{
			C: 21, G: j.g,
			UserRate:     210,
			ReadFraction: 0.5,
			DiskRate:     diskRate,
			UnitsPerDisk: float64(raw / r * r),
			Algorithm:    analytic.Algorithm(j.alg),
		}
		pred, err := model.ReconstructionTime()
		if err != nil {
			return ModelPoint{}, fmt.Errorf("fig8-6 model G=%d: %w", j.g, err)
		}
		return ModelPoint{G: j.g, Alpha: alphaOf(j.g), Algorithm: j.alg,
			ModelMin: pred / 60, SimulatedMin: m.ReconTimeMS / 60_000}, nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, mp := range pts {
		t.Rows = append(t.Rows, []string{
			f2(mp.Alpha), fmt.Sprint(mp.G), mp.Algorithm.String(),
			f1(mp.ModelMin), f1(mp.SimulatedMin), f2(mp.ModelMin / mp.SimulatedMin),
		})
	}
	return pts, t, nil
}

// unitsPerPeriod returns r (units per disk per allocation period) for the
// 21-disk designs, used to compute usable capacity like the array does.
func unitsPerPeriod(g int) int64 {
	if g == 21 {
		return 21
	}
	d, err := blockdesign.PaperDesign(g)
	if err != nil {
		return 1
	}
	p, err := d.Params()
	if err != nil {
		return 1
	}
	return int64(p.R)
}
