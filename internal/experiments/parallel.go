package experiments

import (
	"sync"
	"sync/atomic"
)

// RunPoints evaluates fn(0..n-1) and returns the results in index order.
// With workers <= 1 it runs serially in the calling goroutine; otherwise it
// fans the points out over min(workers, n) goroutines pulling indices from
// a shared counter.
//
// Every simulation point owns its engine, array, RNG streams and metrics
// registry, so points share no mutable state (the block-design catalog
// memoization is mutex-guarded) and the result slice — and any table built
// from it in order — is byte-identical whatever the worker count. On error
// the lowest-index failure is reported, matching what a serial sweep would
// have returned; later points may still have run.
func RunPoints[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
