package analytic

import (
	"fmt"
	"math"
)

// Reliability models mean time to data loss for a single-failure-correcting
// array, the quantity behind the paper's §2 observation that C drives data
// reliability while G drives overhead: data is lost when a second disk of
// the array fails while the first is being repaired.
type Reliability struct {
	C         int     // disks in the array
	MTTFHours float64 // mean time to failure of one disk
	MTTRHours float64 // mean time to repair (≈ reconstruction time)
}

// MTTDLHours returns the mean time to data loss in hours, using the
// standard independent-exponential-failures approximation
// MTTF² / (C·(C−1)·MTTR) [Patterson88].
func (r Reliability) MTTDLHours() (float64, error) {
	if r.C < 2 || r.MTTFHours <= 0 || r.MTTRHours <= 0 {
		return 0, fmt.Errorf("analytic: invalid reliability parameters %+v", r)
	}
	return r.MTTFHours * r.MTTFHours / (float64(r.C) * float64(r.C-1) * r.MTTRHours), nil
}

// TenYearDataLossProbability approximates the probability of losing data
// within ten years, 1 − exp(−t/MTTDL).
func (r Reliability) TenYearDataLossProbability() (float64, error) {
	mttdl, err := r.MTTDLHours()
	if err != nil {
		return 0, err
	}
	const tenYears = 10 * 365.25 * 24
	return 1 - math.Exp(-tenYears/mttdl), nil
}
