package analytic

import (
	"math"
	"testing"
)

func baseModel() Model {
	return Model{
		C: 21, G: 5,
		UserRate:     210,
		ReadFraction: 0.5,
		DiskRate:     46,
		UnitsPerDisk: 79716, // full IBM 0661, 4 KB units
		Algorithm:    UserWrites,
	}
}

func TestWorkloadConversions(t *testing.T) {
	m := baseModel()
	// (4−3R)·λ with R=0.5: 2.5·210 = 525 accesses/s over 21 disks = 25/s.
	if got := m.FaultFreeDiskLoad(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("fault-free disk load %v, want 25", got)
	}
	// (2−R)/(4−3R) = 1.5/2.5 = 0.6.
	if got := m.DiskAccessReadFraction(); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("disk read fraction %v, want 0.6", got)
	}
}

func TestValidation(t *testing.T) {
	bad := []Model{
		{C: 2, G: 2, UserRate: 1, DiskRate: 1, UnitsPerDisk: 1},
		{C: 21, G: 22, UserRate: 1, DiskRate: 1, UnitsPerDisk: 1},
		{C: 21, G: 5, UserRate: -1, DiskRate: 1, UnitsPerDisk: 1},
		{C: 21, G: 5, UserRate: 1, ReadFraction: 2, DiskRate: 1, UnitsPerDisk: 1},
		{C: 21, G: 5, UserRate: 1, DiskRate: 0, UnitsPerDisk: 1},
		{C: 21, G: 5, UserRate: 1, DiskRate: 1, UnitsPerDisk: 0},
	}
	for i, m := range bad {
		if _, err := m.ReconstructionTime(); err == nil {
			t.Errorf("model %d accepted", i)
		}
	}
}

func TestZeroLoadReconstructionTime(t *testing.T) {
	// With no user load and α small, the replacement disk is the
	// bottleneck: S/μ seconds.
	m := baseModel()
	m.UserRate = 0
	got, err := m.ReconstructionTime()
	if err != nil {
		t.Fatal(err)
	}
	want := m.UnitsPerDisk / m.DiskRate // 79716/46 ≈ 1733 s
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("zero-load reconstruction %v s, want ~%v s", got, want)
	}
	// This is the paper's §8.3 number: over 1700 seconds even idle —
	// more than 3x the fastest simulated reconstruction.
	if got < 1700 {
		t.Fatalf("idle model time %v s, paper says over 1700 s", got)
	}
}

func TestZeroLoadRaid5SurvivorBound(t *testing.T) {
	// At α = 1 (G = C), survivors must read (G−1)/(C−1) = 1 disk's worth
	// each: same bound as the replacement, so still S/μ.
	m := baseModel()
	m.G = 21
	m.UserRate = 0
	got, err := m.ReconstructionTime()
	if err != nil {
		t.Fatal(err)
	}
	want := m.UnitsPerDisk / m.DiskRate
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("RAID 5 idle reconstruction %v, want %v", got, want)
	}
}

func TestReconstructionTimeIncreasesWithLoad(t *testing.T) {
	m := baseModel()
	prev := 0.0
	for i, rate := range []float64{0, 105, 210, 300} {
		m.UserRate = rate
		got, err := m.ReconstructionTime()
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if got <= prev {
			t.Fatalf("reconstruction time not increasing with load at step %d: %v <= %v", i, got, prev)
		}
		prev = got
	}
}

func TestReconstructionTimeIncreasesWithAlpha(t *testing.T) {
	// More survivor work per unit at higher α, same replacement work:
	// model time must be non-decreasing in G under load.
	m := baseModel()
	m.UserRate = 210
	prev := 0.0
	for _, g := range []int{3, 5, 10, 18, 21} {
		m.G = g
		got, err := m.ReconstructionTime()
		if err != nil {
			t.Fatalf("G=%d: %v", g, err)
		}
		if got < prev {
			t.Fatalf("model time decreased at G=%d: %v < %v", g, got, prev)
		}
		prev = got
	}
}

func TestSaturationDetected(t *testing.T) {
	m := baseModel()
	m.UserRate = 1000 // 1000 accesses/s over 21 disks with writes: saturated
	if _, err := m.ReconstructionTime(); err == nil {
		t.Fatal("saturated model returned a finite time")
	}
}

func TestOptimizedAlgorithmsPredictedFasterWhenSurvivorBound(t *testing.T) {
	// Where the surviving set is the bottleneck (α = 1, heavy load), the
	// M&L model — with no positioning penalty for work sent to the
	// replacement — predicts the redirect algorithms at least as fast as
	// user-writes: the prediction the paper's simulations refute.
	m := baseModel()
	m.G = 21
	m.UserRate = 210
	times := map[Algorithm]float64{}
	for _, alg := range []Algorithm{Baseline, UserWrites, Redirect, RedirectPiggyback} {
		m.Algorithm = alg
		got, err := m.ReconstructionTime()
		if err != nil {
			t.Fatal(err)
		}
		times[alg] = got
	}
	if times[Redirect] > times[UserWrites]*1.001 {
		t.Fatalf("model predicts redirect (%v) slower than user-writes (%v)", times[Redirect], times[UserWrites])
	}
	if times[RedirectPiggyback] > times[Redirect]*1.001 {
		t.Fatalf("model predicts piggyback (%v) slower than redirect (%v)", times[RedirectPiggyback], times[Redirect])
	}
	// Free reconstruction makes user-writes faster than baseline at any α.
	for _, g := range []int{5, 21} {
		m.G = g
		m.Algorithm = Baseline
		tb, err := m.ReconstructionTime()
		if err != nil {
			t.Fatal(err)
		}
		m.Algorithm = UserWrites
		tu, err := m.ReconstructionTime()
		if err != nil {
			t.Fatal(err)
		}
		if tu > tb*1.001 {
			t.Fatalf("G=%d: model predicts user-writes (%v) slower than baseline (%v)", g, tu, tb)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if Baseline.String() != "baseline" || Algorithm(99).String() == "" {
		t.Fatal("bad Algorithm strings")
	}
}

func TestMTTDL(t *testing.T) {
	r := Reliability{C: 21, MTTFHours: 150000, MTTRHours: 1}
	got, err := r.MTTDLHours()
	if err != nil {
		t.Fatal(err)
	}
	want := 150000.0 * 150000 / (21 * 20 * 1)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("MTTDL %v, want %v", got, want)
	}
	// Longer repair -> lower MTTDL (the reason reconstruction time
	// matters for reliability).
	r2 := r
	r2.MTTRHours = 4
	got2, _ := r2.MTTDLHours()
	if got2*3.9 > got {
		t.Fatalf("MTTDL did not scale inversely with MTTR: %v vs %v", got, got2)
	}
	p, err := r.TenYearDataLossProbability()
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p >= 1 {
		t.Fatalf("ten-year loss probability %v out of (0,1)", p)
	}
	if _, err := (Reliability{C: 1, MTTFHours: 1, MTTRHours: 1}).MTTDLHours(); err == nil {
		t.Fatal("invalid reliability accepted")
	}
}
