// Package analytic re-implements the Muntz & Lui reconstruction-time model
// [Muntz90] as the paper describes it in §8.3, for the Figure 8-6
// comparison against simulation.
//
// The model's defining simplification — the one the paper criticizes — is a
// single service rate: every disk executes at most DiskRate accesses per
// second regardless of position, so a sequential reconstruction write costs
// the same as a random user access. Reconstruction proceeds at whatever
// rate the bottleneck resource (the surviving set or the replacement disk)
// has left after user traffic, with either driven to 100% utilization.
//
// Workload conversion (paper §8.3): with R the fraction of user accesses
// that are reads, each user write induces two disk reads and two disk
// writes, so the disk access arrival rate is (4−3R) times the user rate
// and the disk read fraction is (2−R)/(4−3R). The model works in disk
// accesses throughout.
package analytic

import (
	"fmt"
	"math"
)

// Algorithm mirrors the four reconstruction algorithms of §8. It is a
// separate type from the array package's so the analytic model has no
// dependency on the simulator.
type Algorithm int

const (
	Baseline Algorithm = iota
	UserWrites
	Redirect
	RedirectPiggyback
)

func (a Algorithm) String() string {
	switch a {
	case Baseline:
		return "baseline"
	case UserWrites:
		return "user-writes"
	case Redirect:
		return "redirect"
	case RedirectPiggyback:
		return "redirect+piggyback"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Model parameterizes the analytic reconstruction-time computation.
type Model struct {
	C int // disks in the array
	G int // units per parity stripe

	UserRate     float64 // user accesses per second (whole array)
	ReadFraction float64 // fraction of user accesses that are reads
	DiskRate     float64 // maximum accesses per second per disk (μ)
	UnitsPerDisk float64 // stripe units to reconstruct (S)

	Algorithm Algorithm
}

// Alpha returns the declustering ratio.
func (m Model) Alpha() float64 { return float64(m.G-1) / float64(m.C-1) }

// validate checks the model's parameters.
func (m Model) validate() error {
	switch {
	case m.C < 3 || m.G < 2 || m.G > m.C:
		return fmt.Errorf("analytic: need 2 <= G <= C and C >= 3, have C=%d G=%d", m.C, m.G)
	case m.UserRate < 0 || m.ReadFraction < 0 || m.ReadFraction > 1:
		return fmt.Errorf("analytic: bad workload (rate %v, read fraction %v)", m.UserRate, m.ReadFraction)
	case m.DiskRate <= 0:
		return fmt.Errorf("analytic: disk rate must be positive, have %v", m.DiskRate)
	case m.UnitsPerDisk <= 0:
		return fmt.Errorf("analytic: units per disk must be positive, have %v", m.UnitsPerDisk)
	}
	return nil
}

// loads returns the user-induced disk access rates per surviving disk and
// on the replacement disk, when fraction f of the failed disk has been
// reconstructed. Derivation, per user access (addresses uniform over the
// array, so each unit involved lands on the failed disk with probability
// 1/C):
//
//	read of a healthy unit: 1 survivor access
//	read of a lost unit: G−1 survivor reads (on-the-fly), or — once
//	    reconstructed, under Redirect — 1 replacement access
//	write with both units healthy: 2+2 accesses on two disks
//	write to a lost, unreconstructed data unit: G−2 survivor reads +
//	    1 survivor parity write (+ 1 replacement write unless Baseline)
//	write to a lost, reconstructed data unit: 2 replacement accesses +
//	    2 survivor accesses
//	write with lost, unreconstructed parity: 1 survivor data write
//	write with lost, reconstructed parity: 2 replacement + 2 survivor
func (m Model) loads(f float64) (survivor, replacement float64) {
	c := float64(m.C)
	g := float64(m.G)
	r := m.ReadFraction
	w := 1 - r
	lam := m.UserRate

	var surv, repl float64

	// Reads.
	surv += lam * r * (c - 1) / c // healthy target
	redirect := m.Algorithm == Redirect || m.Algorithm == RedirectPiggyback
	if redirect {
		surv += lam * r / c * (1 - f) * (g - 1)
		repl += lam * r / c * f
	} else {
		surv += lam * r / c * (g - 1)
	}
	// Piggybacked write-back of on-the-fly reads.
	if m.Algorithm == RedirectPiggyback {
		repl += lam * r / c * (1 - f)
	}

	// Writes: the target data unit and its parity unit each lie on the
	// failed disk with probability 1/C (disjointly).
	healthy := (c - 2) / c
	surv += lam * w * healthy * 4

	// Data unit lost.
	if m.Algorithm == Baseline {
		surv += lam * w / c * (1 - f) * (g - 1) // fold: G−2 reads + parity write
	} else {
		surv += lam * w / c * (1 - f) * (g - 1)
		repl += lam * w / c * (1 - f) // the direct replacement write
	}
	surv += lam * w / c * f * 2 // reconstructed: RMW, parity half on survivors
	repl += lam * w / c * f * 2 // ... data half on the replacement

	// Parity unit lost.
	surv += lam * w / c * (1 - f) * 1 // write data only
	surv += lam * w / c * f * 2       // reconstructed parity: RMW split
	repl += lam * w / c * f * 2

	return surv / (c - 1), repl
}

// freeReconRate returns the rate (units/s) at which user activity itself
// reconstructs units, at reconstructed fraction f.
func (m Model) freeReconRate(f float64) float64 {
	c := float64(m.C)
	var rate float64
	if m.Algorithm != Baseline {
		rate += m.UserRate * (1 - m.ReadFraction) / c * (1 - f) // user-writes
	}
	if m.Algorithm == RedirectPiggyback {
		rate += m.UserRate * m.ReadFraction / c * (1 - f) // piggyback
	}
	return rate
}

// ReconstructionTime integrates the model forward and returns the
// predicted reconstruction time in seconds. It returns an error when the
// user load alone saturates a resource (the model then predicts the sweep
// never finishes).
func (m Model) ReconstructionTime() (float64, error) {
	if err := m.validate(); err != nil {
		return 0, err
	}
	g := float64(m.G)
	c := float64(m.C)
	s := m.UnitsPerDisk

	remaining := s
	t := 0.0
	const steps = 10000
	du := s / steps
	for remaining > 0 {
		f := 1 - remaining/s
		surv, repl := m.loads(f)
		// Reconstructing one unit costs G−1 survivor reads spread
		// over C−1 disks, plus one replacement write.
		survRate := (m.DiskRate - surv) * (c - 1) / (g - 1)
		replRate := m.DiskRate - repl
		rate := math.Min(survRate, replRate)
		if rate <= 0 {
			return 0, fmt.Errorf("analytic: user load saturates the array (surv %.1f/s, repl %.1f/s of %.1f/s)",
				surv, repl, m.DiskRate)
		}
		rate += m.freeReconRate(f)
		step := du
		if step > remaining {
			step = remaining
		}
		t += step / rate
		remaining -= step
	}
	return t, nil
}

// FaultFreeDiskLoad returns the per-disk disk-access rate implied by the
// user workload in the fault-free state; the array is stable while this is
// below DiskRate.
func (m Model) FaultFreeDiskLoad() float64 {
	return m.UserRate * (4 - 3*m.ReadFraction) / float64(m.C)
}

// DiskAccessReadFraction returns the read fraction of the disk access
// stream implied by the user read fraction (paper §8.3).
func (m Model) DiskAccessReadFraction() float64 {
	return (2 - m.ReadFraction) / (4 - 3*m.ReadFraction)
}
