package layout

import (
	"testing"
)

func dualLayouts(t *testing.T) map[string]*DualParity {
	t.Helper()
	out := map[string]*DualParity{}
	for name, l := range allLayouts(t) {
		d, err := NewDualParity(l)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = d
	}
	return out
}

func fullCycle(l Layout) int64 {
	if fc, ok := l.(FullCycler); ok {
		return fc.FullCycleStripes()
	}
	return l.StripesPerPeriod() * int64(l.G())
}

func TestNewDualParityValidation(t *testing.T) {
	if _, err := NewDualParity(nil); err == nil {
		t.Error("nil inner: no error")
	}
	// G = 2 (mirroring) leaves no data position beside P and Q.
	r2, err := NewRaid5(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDualParity(r2); err == nil {
		t.Error("G=2: no error")
	}
	// Dual-parity layouts cannot be wrapped again.
	r5, err := NewRaid5(5)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewDualParity(r5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDualParity(dp); err == nil {
		t.Error("double wrap: no error")
	}
}

// TestDualParityPositions: P and Q are distinct positions, P matches the
// inner layout, Q sits one position before P mod G, and IsParityPos agrees.
func TestDualParityPositions(t *testing.T) {
	for name, l := range dualLayouts(t) {
		g := l.G()
		if l.Parities() != 2 || NumParities(l) != 2 {
			t.Fatalf("%s: Parities() != 2", name)
		}
		for s := int64(0); s < fullCycle(l); s++ {
			p := l.ParityPosK(s, 0)
			q := l.ParityPosK(s, 1)
			if p != l.Inner().ParityPos(s) || p != l.ParityPos(s) {
				t.Fatalf("%s stripe %d: P position %d != inner %d", name, s, p, l.Inner().ParityPos(s))
			}
			if q == p {
				t.Fatalf("%s stripe %d: Q collides with P at %d", name, s, p)
			}
			if want := (p + g - 1) % g; q != want {
				t.Fatalf("%s stripe %d: Q at %d, want %d", name, s, q, want)
			}
			for j := 0; j < g; j++ {
				if got, want := IsParityPos(l, s, j), j == p || j == q; got != want {
					t.Fatalf("%s stripe %d pos %d: IsParityPos = %v, want %v", name, s, j, got, want)
				}
			}
		}
	}
}

// TestDualParityBalance: over a full parity-rotation cycle every disk
// carries the same number of P units and the same number of Q units —
// criterion 3 holds for each parity unit separately, not just their sum.
func TestDualParityBalance(t *testing.T) {
	for name, l := range dualLayouts(t) {
		pCount := make([]int, l.Disks())
		qCount := make([]int, l.Disks())
		for s := int64(0); s < fullCycle(l); s++ {
			pCount[ParityLocOf(l, s, 0).Disk]++
			qCount[ParityLocOf(l, s, 1).Disk]++
		}
		for d := 1; d < l.Disks(); d++ {
			if pCount[d] != pCount[0] || qCount[d] != qCount[0] {
				t.Fatalf("%s: disk %d has %d P / %d Q per cycle, disk 0 has %d / %d",
					name, d, pCount[d], qCount[d], pCount[0], qCount[0])
			}
		}
	}
}

// TestDataPosOrdinalRoundTrip: DataPos and DataOrdinal invert each other
// and enumerate exactly the non-parity positions in ascending order.
func TestDataPosOrdinalRoundTrip(t *testing.T) {
	for name, l := range dualLayouts(t) {
		dp := DataPerStripe(l)
		if dp != l.G()-2 {
			t.Fatalf("%s: DataPerStripe = %d, want G-2 = %d", name, dp, l.G()-2)
		}
		for s := int64(0); s < fullCycle(l); s++ {
			prev := -1
			for d := 0; d < dp; d++ {
				j := DataPos(l, s, d)
				if IsParityPos(l, s, j) {
					t.Fatalf("%s stripe %d: DataPos(%d) = %d is parity", name, s, d, j)
				}
				if j <= prev {
					t.Fatalf("%s stripe %d: DataPos not ascending at d=%d", name, s, d)
				}
				prev = j
				if back := DataOrdinal(l, s, j); back != d {
					t.Fatalf("%s stripe %d: DataOrdinal(DataPos(%d)) = %d", name, s, d, back)
				}
			}
		}
	}
}

// TestDataOrdinalPanicsOnParity: DataOrdinal rejects both parity positions.
func TestDataOrdinalPanicsOnParity(t *testing.T) {
	r5, err := NewRaid5(5)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewDualParity(r5)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{l.ParityPosK(0, 0), l.ParityPosK(0, 1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DataOrdinal(position %d): no panic", j)
				}
			}()
			DataOrdinal(l, 0, j)
		}()
	}
}

// TestDualDataLocIndexRoundTrip: DataLoc/DataIndex stay inverses under
// dual parity and never land on a parity unit.
func TestDualDataLocIndexRoundTrip(t *testing.T) {
	for name, l := range dualLayouts(t) {
		dp := int64(DataPerStripe(l))
		limit := fullCycle(l) * dp
		for n := int64(0); n < limit; n++ {
			loc := DataLoc(l, n)
			s, j := l.Locate(loc)
			if IsParityPos(l, s, j) {
				t.Fatalf("%s: data unit %d landed on parity at %v", name, n, loc)
			}
			if back := DataIndex(l, s, j); back != n {
				t.Fatalf("%s: DataIndex(DataLoc(%d)) = %d", name, n, back)
			}
		}
	}
}

// TestSingleParityHelpersUnchanged: for single-parity layouts the
// generalized helpers reduce to the original formulas byte-for-byte.
func TestSingleParityHelpersUnchanged(t *testing.T) {
	for name, l := range allLayouts(t) {
		if NumParities(l) != 1 || DataPerStripe(l) != l.G()-1 {
			t.Fatalf("%s: single-parity layout misreported", name)
		}
		g := int64(l.G())
		limit := fullCycle(l) * (g - 1)
		for n := int64(0); n < limit; n++ {
			// The pre-generalization formula, verbatim.
			stripe := n / (g - 1)
			d := int(n % (g - 1))
			j := d
			if j >= l.ParityPos(stripe) {
				j++
			}
			want := l.Unit(stripe, j)
			if got := DataLoc(l, n); got != want {
				t.Fatalf("%s: DataLoc(%d) = %v, want %v", name, n, got, want)
			}
			if got := DataIndex(l, stripe, j); got != n {
				t.Fatalf("%s: DataIndex(%d,%d) = %d, want %d", name, stripe, j, got, n)
			}
		}
		if ParityPosOf(l, 3, 0) != l.ParityPos(3) {
			t.Fatalf("%s: ParityPosOf k=0 differs from ParityPos", name)
		}
	}
}

// TestDualParityCriteria: wrapping preserves the three core criteria, and
// the checker accounts for both parity units.
func TestDualParityCriteria(t *testing.T) {
	for name, l := range dualLayouts(t) {
		if err := MustMeetCore(l); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c, err := Check(l)
		if err != nil {
			t.Fatal(err)
		}
		if !c.LargeWriteOptimization {
			t.Errorf("%s: large-write optimization lost under dual parity", name)
		}
		// P+Q per disk per cycle = 2x the single-parity count.
		inner, err := Check(l.Inner())
		if err != nil {
			t.Fatal(err)
		}
		if c.ParityPerDisk != 2*inner.ParityPerDisk {
			t.Errorf("%s: ParityPerDisk = %d, want %d", name, c.ParityPerDisk, 2*inner.ParityPerDisk)
		}
	}
}

// TestParallelMapperDualParity: the round-robin mapper skips both parity
// positions and stays a bijection.
func TestParallelMapperDualParity(t *testing.T) {
	for name, l := range dualLayouts(t) {
		m := NewParallelMapper(l)
		limit := fullCycle(l) * int64(DataPerStripe(l))
		seen := map[Loc]int64{}
		for n := int64(0); n < limit; n++ {
			loc := m.Loc(n)
			s, j := l.Locate(loc)
			if IsParityPos(l, s, j) {
				t.Fatalf("%s: mapper put data unit %d on parity at %v", name, n, loc)
			}
			if prev, dup := seen[loc]; dup {
				t.Fatalf("%s: units %d and %d share %v", name, prev, n, loc)
			}
			seen[loc] = n
			if back := m.Index(s, j); back != n {
				t.Fatalf("%s: Index(Loc(%d)) = %d", name, n, back)
			}
		}
	}
}

// TestDualParityForwarding: the wrapper's geometry accessors delegate to
// the inner layout, and FullCycleStripes covers both the FullCycler and
// the default (StripesPerPeriod x G) branch.
func TestDualParityForwarding(t *testing.T) {
	sawCycler, sawDefault := false, false
	duals := dualLayouts(t)
	// A spared inner layout exercises the FullCycler forwarding branch.
	sp, err := NewDualParity(sparedLayout(t))
	if err != nil {
		t.Fatal(err)
	}
	duals["spared"] = sp
	for name, l := range duals {
		in := l.Inner()
		if l.Alpha() != in.Alpha() {
			t.Fatalf("%s: Alpha() = %v, inner %v", name, l.Alpha(), in.Alpha())
		}
		if l.Disks() != in.Disks() || l.G() != in.G() {
			t.Fatalf("%s: geometry does not match inner", name)
		}
		if l.StripesPerPeriod() != in.StripesPerPeriod() ||
			l.UnitsPerDiskPerPeriod() != in.UnitsPerDiskPerPeriod() {
			t.Fatalf("%s: period does not match inner", name)
		}
		if got, want := l.FullCycleStripes(), fullCycle(in); got != want {
			t.Fatalf("%s: FullCycleStripes() = %d, want %d", name, got, want)
		}
		if _, ok := in.(FullCycler); ok {
			sawCycler = true
		} else {
			sawDefault = true
		}
		// Round trip a few units through the forwarded Unit/Locate pair.
		for stripe := int64(0); stripe < 3; stripe++ {
			for j := 0; j < l.G(); j++ {
				s2, j2 := l.Locate(l.Unit(stripe, j))
				if s2 != stripe || j2 != j {
					t.Fatalf("%s: Locate(Unit(%d,%d)) = (%d,%d)", name, stripe, j, s2, j2)
				}
			}
		}
	}
	if !sawCycler || !sawDefault {
		t.Fatalf("layout set exercised FullCycler=%v default=%v; want both", sawCycler, sawDefault)
	}
}

// TestDualParityParityPosKPanics: parity unit indices beyond Q are a
// programming error, not a recoverable condition.
func TestDualParityParityPosKPanics(t *testing.T) {
	r5, err := NewRaid5(5)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewDualParity(r5)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ParityPosK(stripe, 2) did not panic")
		}
	}()
	dp.ParityPosK(0, 2)
}
