package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"declust/internal/blockdesign"
)

func paperLayout(t *testing.T, g int) *Declustered {
	t.Helper()
	d, err := blockdesign.PaperDesign(g)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewDeclustered(d)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func allLayouts(t *testing.T) map[string]Layout {
	t.Helper()
	ls := map[string]Layout{}
	for _, g := range []int{3, 4, 5, 6, 10} {
		ls[string(rune('0'+g))+"-declustered"] = paperLayout(t, g)
	}
	r5, err := NewRaid5(21)
	if err != nil {
		t.Fatal(err)
	}
	ls["raid5"] = r5
	return ls
}

func TestRaid5MatchesFigure2_1(t *testing.T) {
	// Figure 2-1 of the paper, C = 5: rows are offsets, columns disks.
	r, err := NewRaid5(5)
	if err != nil {
		t.Fatal(err)
	}
	// Parity locations: P0..P4 on disks 4,3,2,1,0 at offsets 0..4.
	for s := int64(0); s < 5; s++ {
		want := Loc{Disk: int(4 - s), Offset: s}
		if got := ParityLoc(r, s); got != want {
			t.Errorf("P%d at %v, want %v", s, got, want)
		}
	}
	// Spot-check data units from the figure: D1.1 on disk 0 offset 1,
	// D2.0 on disk 3 offset 2, D4.0 on disk 1 offset 4.
	cases := []struct {
		stripe int64
		j      int
		want   Loc
	}{
		{1, 1, Loc{0, 1}},
		{2, 0, Loc{3, 2}},
		{4, 0, Loc{1, 4}},
		{0, 2, Loc{2, 0}},
	}
	for _, c := range cases {
		if got := r.Unit(c.stripe, c.j); got != c.want {
			t.Errorf("D%d.%d at %v, want %v", c.stripe, c.j, got, c.want)
		}
	}
}

func TestRaid5MeetsAllCriteria(t *testing.T) {
	r, _ := NewRaid5(5)
	c, err := Check(r)
	if err != nil {
		t.Fatal(err)
	}
	if !c.SingleFailureCorrecting || !c.DistributedReconstruction || !c.DistributedParity {
		t.Fatalf("left-symmetric RAID 5 fails core criteria: %+v", c)
	}
	if !c.LargeWriteOptimization || !c.MaximalParallelism {
		t.Fatalf("left-symmetric RAID 5 fails data-mapping criteria: %+v", c)
	}
}

func TestRaid5Alpha(t *testing.T) {
	r, _ := NewRaid5(21)
	if r.Alpha() != 1 {
		t.Fatalf("RAID 5 α = %v, want 1", r.Alpha())
	}
}

func TestNewRaid5Rejects(t *testing.T) {
	if _, err := NewRaid5(1); err == nil {
		t.Fatal("1-disk RAID 5 accepted")
	}
}

func TestDeclusteredCoreCriteriaAllPaperDesigns(t *testing.T) {
	for _, g := range blockdesign.PaperG {
		if g == 18 && testing.Short() {
			continue
		}
		l := paperLayout(t, g)
		if err := MustMeetCore(l); err != nil {
			t.Errorf("G=%d: %v", g, err)
		}
	}
}

func TestDeclusteredCriteriaDetail(t *testing.T) {
	l := paperLayout(t, 5)
	c, err := Check(l)
	if err != nil {
		t.Fatal(err)
	}
	p := l.Params()
	// Over one full table, pair count is λ·G and parity per disk is r.
	if c.PairCount != p.Lambda*p.K {
		t.Errorf("pair count %d, want λG=%d", c.PairCount, p.Lambda*p.K)
	}
	if c.ParityPerDisk != p.R {
		t.Errorf("parity per disk %d, want r=%d", c.ParityPerDisk, p.R)
	}
	// Large-write optimization holds for the stripe-index data mapping;
	// maximal parallelism does not (paper §4.2 end).
	if !c.LargeWriteOptimization {
		t.Error("large-write optimization violated")
	}
	if c.MaximalParallelism {
		t.Error("declustered layout unexpectedly satisfies maximal parallelism (paper says it does not)")
	}
}

func TestDeclusteredMatchesFigure2_3(t *testing.T) {
	// Figure 2-3 (and the top of Figure 4-2) lays out the complete
	// design of Figure 4-1 on C=5, G=4: stripes 0..4 use tuples
	// (0,1,2,3), (0,1,2,4), (0,1,3,4), (0,2,3,4), (1,2,3,4) with parity
	// in the last position.
	d, err := blockdesign.Complete(5, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewDeclustered(d)
	if err != nil {
		t.Fatal(err)
	}
	// Check against the figure's first table: offsets column by column.
	// Figure 2-3: disk0 rows: D0.0 D1.0 D2.0 D3.0; disk3 rows: P0 D2.2
	// D3.2 D4.2; disk4 rows: P1 P2 P3 P4.
	cases := []struct {
		stripe int64
		j      int
		want   Loc
	}{
		{0, 0, Loc{0, 0}}, {0, 1, Loc{1, 0}}, {0, 2, Loc{2, 0}}, {0, 3, Loc{3, 0}}, // tuple 0,1,2,3
		{1, 0, Loc{0, 1}}, {1, 1, Loc{1, 1}}, {1, 2, Loc{2, 1}}, {1, 3, Loc{4, 0}},
		{2, 0, Loc{0, 2}}, {2, 1, Loc{1, 2}}, {2, 2, Loc{3, 1}}, {2, 3, Loc{4, 1}},
		{3, 0, Loc{0, 3}}, {3, 1, Loc{2, 2}}, {3, 2, Loc{3, 2}}, {3, 3, Loc{4, 2}},
		{4, 0, Loc{1, 3}}, {4, 1, Loc{2, 3}}, {4, 2, Loc{3, 3}}, {4, 3, Loc{4, 3}},
	}
	for _, c := range cases {
		if got := l.Unit(c.stripe, c.j); got != c.want {
			t.Errorf("unit(%d,%d) = %v, want %v", c.stripe, c.j, got, c.want)
		}
	}
	// First table places parity at position G−1 (disk column of the
	// tuple's last element), as in the figure.
	for s := int64(0); s < 5; s++ {
		if l.ParityPos(s) != 3 {
			t.Errorf("stripe %d parity position %d, want 3", s, l.ParityPos(s))
		}
	}
	// Second table copy (stripes 5..9) rotates parity to position 2.
	if l.ParityPos(5) != 2 {
		t.Errorf("stripe 5 parity position %d, want 2", l.ParityPos(5))
	}
}

func TestLocateRoundTrip(t *testing.T) {
	for name, l := range allLayouts(t) {
		l := l
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			stripe := rng.Int63n(10 * l.StripesPerPeriod() * int64(l.G()))
			j := rng.Intn(l.G())
			loc := l.Unit(stripe, j)
			s2, j2 := l.Locate(loc)
			return s2 == stripe && j2 == j
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestOffsetsDenseAndDisjoint(t *testing.T) {
	// Over one full table every disk offset in range is owned by exactly
	// one (stripe, position): the layout wastes no units and never
	// double-books.
	for name, l := range allLayouts(t) {
		full := l.StripesPerPeriod() * int64(l.G())
		perDisk := l.UnitsPerDiskPerPeriod() * int64(l.G())
		seen := make(map[Loc]bool)
		for s := int64(0); s < full; s++ {
			for j := 0; j < l.G(); j++ {
				loc := l.Unit(s, j)
				if loc.Offset < 0 || loc.Offset >= perDisk {
					t.Fatalf("%s: stripe %d pos %d at offset %d outside [0,%d)", name, s, j, loc.Offset, perDisk)
				}
				if seen[loc] {
					t.Fatalf("%s: location %v assigned twice", name, loc)
				}
				seen[loc] = true
			}
		}
		if int64(len(seen)) != int64(l.Disks())*perDisk {
			t.Fatalf("%s: %d units mapped, want %d", name, len(seen), int64(l.Disks())*perDisk)
		}
	}
}

func TestDataLocRoundTrip(t *testing.T) {
	for name, l := range allLayouts(t) {
		l := l
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := rng.Int63n(DataUnits(l, 5*l.UnitsPerDiskPerPeriod()*int64(l.G())))
			loc := DataLoc(l, n)
			s, j := l.Locate(loc)
			if j == l.ParityPos(s) {
				return false // data mapped onto parity
			}
			return DataIndex(l, s, j) == n
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDataIndexPanicsOnParity(t *testing.T) {
	l := paperLayout(t, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for DataIndex of parity position")
		}
	}()
	DataIndex(l, 0, l.ParityPos(0))
}

func TestSurvivingUnits(t *testing.T) {
	l := paperLayout(t, 5)
	loc := l.Unit(7, 2)
	sv := SurvivingUnits(l, loc)
	if len(sv) != 4 {
		t.Fatalf("%d surviving units, want G-1=4", len(sv))
	}
	disks := map[int]bool{loc.Disk: true}
	for _, u := range sv {
		if u == loc {
			t.Fatal("surviving units include the lost unit")
		}
		if disks[u.Disk] {
			t.Fatalf("duplicate disk %d in stripe", u.Disk)
		}
		disks[u.Disk] = true
	}
}

func TestReconstructionWorkloadBalance(t *testing.T) {
	// The declustering promise: when disk f fails, each surviving disk
	// contributes exactly λ units per table toward reconstruction, i.e.
	// reads α fraction of itself, not all of itself.
	l := paperLayout(t, 5)
	p := l.Params()
	perTable := l.UnitsPerDiskPerPeriod() * int64(l.G())
	for f := 0; f < 3; f++ { // a few failed-disk choices
		load := make(map[int]int)
		for off := int64(0); off < perTable; off++ {
			for _, u := range SurvivingUnits(l, Loc{Disk: f, Offset: off}) {
				load[u.Disk]++
			}
		}
		if len(load) != 20 {
			t.Fatalf("failed disk %d: %d disks loaded, want 20", f, len(load))
		}
		for d, n := range load {
			if n != p.Lambda*p.K {
				t.Errorf("failed disk %d: disk %d reads %d units/table, want λG=%d", f, d, n, p.Lambda*p.K)
			}
		}
	}
}

func TestRaid5ReconstructionTouchesAllDisksEqually(t *testing.T) {
	r, _ := NewRaid5(21)
	load := make(map[int]int)
	for off := int64(0); off < 21; off++ {
		for _, u := range SurvivingUnits(r, Loc{Disk: 4, Offset: off}) {
			load[u.Disk]++
		}
	}
	if len(load) != 20 {
		t.Fatalf("%d disks loaded, want 20", len(load))
	}
	for d, n := range load {
		if n != 21 {
			t.Errorf("disk %d reads %d, want every unit (21)", d, n)
		}
	}
}

func TestUsableStripesTruncation(t *testing.T) {
	l := paperLayout(t, 5) // b=21, r=5
	// 23 units per disk -> 4 whole periods of r=5 -> 20 units, 84 stripes.
	if got := UsableStripes(l, 23); got != 4*21 {
		t.Fatalf("UsableStripes = %d, want 84", got)
	}
	if got := UsableUnitsPerDisk(l, 23); got != 20 {
		t.Fatalf("UsableUnitsPerDisk = %d, want 20", got)
	}
	if got := DataUnits(l, 23); got != 84*4 {
		t.Fatalf("DataUnits = %d, want %d", got, 84*4)
	}
}

func TestParityRotationCoversAllPositions(t *testing.T) {
	l := paperLayout(t, 4)
	seen := map[int]bool{}
	b := l.StripesPerPeriod()
	for m := int64(0); m < int64(l.G()); m++ {
		seen[l.ParityPos(m*b)] = true
	}
	if len(seen) != l.G() {
		t.Fatalf("parity rotation covers %d positions, want %d", len(seen), l.G())
	}
}

func TestDeclusteredRejectsInvalidDesign(t *testing.T) {
	bad := &blockdesign.Design{V: 4, K: 2, Tuples: [][]int{{0, 1}, {0, 2}, {0, 3}}}
	if _, err := NewDeclustered(bad); err == nil {
		t.Fatal("unbalanced design accepted")
	}
}

func TestUnitPanicsOutOfRange(t *testing.T) {
	l := paperLayout(t, 5)
	for _, f := range []func(){
		func() { l.Unit(0, -1) },
		func() { l.Unit(0, 5) },
		func() { l.Unit(-1, 0) },
		func() { l.Locate(Loc{Disk: 99, Offset: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on invalid argument")
				}
			}()
			f()
		}()
	}
}
