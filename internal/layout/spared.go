package layout

import (
	"fmt"

	"declust/internal/blockdesign"
)

// Spared is a declustered parity layout with distributed sparing: every
// parity stripe carries, besides its G−1 data units and parity unit, one
// spare unit on yet another disk. When a disk fails, each lost unit is
// reconstructed into its own stripe's spare unit — on a surviving disk —
// so reconstruction *writes*, not just reads, spread over the whole array
// and no replacement disk is needed. This is the distributed-sparing
// extension of the paper's design (cf. §8's spare pools; the idea carried
// into RAIDframe and ZFS dRAID).
//
// Construction: a block design with tuple size k = G+1 places the k units
// of each stripe; the spare and parity roles rotate through the tuple
// positions over k copies of the table, so every disk carries equal data,
// parity and spare space per full cycle.
type Spared struct {
	inner *Declustered // placement over the k = G+1 design
}

// SpareLayout is implemented by layouts that reserve distributed spare
// space.
type SpareLayout interface {
	Layout
	// SpareUnit returns the stripe's reserved spare unit.
	SpareUnit(stripe int64) Loc
	// IsSpare reports whether loc is a spare slot, and for which stripe.
	IsSpare(loc Loc) (stripe int64, ok bool)
}

// FullCycler is implemented by layouts whose role rotation spans a
// different number of allocation periods than G (criteria checkers use it
// to size their windows).
type FullCycler interface {
	FullCycleStripes() int64
}

// NewSpared builds a distributed-sparing layout for logical parity stripe
// size g over a design with tuple size g+1.
func NewSpared(d *blockdesign.Design) (*Spared, error) {
	inner, err := NewDeclustered(d)
	if err != nil {
		return nil, err
	}
	if d.K < 3 {
		return nil, fmt.Errorf("layout: distributed sparing needs tuples of at least 3 (data+parity+spare), have k=%d", d.K)
	}
	return &Spared{inner: inner}, nil
}

// Design returns the underlying k = G+1 block design.
func (s *Spared) Design() *blockdesign.Design { return s.inner.Design() }

func (s *Spared) Disks() int { return s.inner.Disks() }

// G returns the logical parity stripe size (data + parity, excluding the
// spare).
func (s *Spared) G() int { return s.inner.G() - 1 }

func (s *Spared) Alpha() float64 {
	return float64(s.G()-1) / float64(s.Disks()-1)
}

func (s *Spared) StripesPerPeriod() int64      { return s.inner.StripesPerPeriod() }
func (s *Spared) UnitsPerDiskPerPeriod() int64 { return s.inner.UnitsPerDiskPerPeriod() }

// FullCycleStripes returns the stripes in one complete role rotation:
// k = G+1 copies of the block design table.
func (s *Spared) FullCycleStripes() int64 {
	return s.StripesPerPeriod() * int64(s.inner.G())
}

// roles returns the tuple slots holding the spare and parity for a stripe.
// The spare sweeps one slot per table copy (as parity does in the plain
// layout) and parity occupies the slot before it, so over k copies every
// slot serves each role exactly once.
func (s *Spared) roles(stripe int64) (spareSlot, paritySlot int) {
	k := s.inner.G()
	r := int((stripe / s.StripesPerPeriod()) % int64(k))
	spareSlot = (k - 1 - r + k) % k
	paritySlot = (spareSlot - 1 + k) % k
	return spareSlot, paritySlot
}

// slotOf maps a logical position (0..G-1) to the tuple slot, skipping the
// spare slot.
func (s *Spared) slotOf(stripe int64, j int) int {
	spare, _ := s.roles(stripe)
	if j >= spare {
		return j + 1
	}
	return j
}

func (s *Spared) Unit(stripe int64, j int) Loc {
	if j < 0 || j >= s.G() {
		panic(fmt.Sprintf("layout: position %d out of range [0,%d)", j, s.G()))
	}
	return s.inner.Unit(stripe, s.slotOf(stripe, j))
}

func (s *Spared) ParityPos(stripe int64) int {
	spare, parity := s.roles(stripe)
	if parity > spare {
		return parity - 1
	}
	return parity
}

// Locate inverts Unit for non-spare units; it panics on spare slots (test
// with IsSpare first).
func (s *Spared) Locate(loc Loc) (int64, int) {
	stripe, slot := s.inner.Locate(loc)
	spare, _ := s.roles(stripe)
	if slot == spare {
		panic(fmt.Sprintf("layout: %v is stripe %d's spare slot", loc, stripe))
	}
	if slot > spare {
		return stripe, slot - 1
	}
	return stripe, slot
}

func (s *Spared) SpareUnit(stripe int64) Loc {
	spare, _ := s.roles(stripe)
	return s.inner.Unit(stripe, spare)
}

func (s *Spared) IsSpare(loc Loc) (int64, bool) {
	stripe, slot := s.inner.Locate(loc)
	spare, _ := s.roles(stripe)
	return stripe, slot == spare
}
