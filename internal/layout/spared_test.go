package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"declust/internal/blockdesign"
)

// sparedLayout builds the G=5 spared layout from the paper's G=6 design
// (tuples of 6: 4 data + parity + spare).
func sparedLayout(t *testing.T) *Spared {
	t.Helper()
	d, err := blockdesign.PaperDesign(6)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSpared(d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSparedBasics(t *testing.T) {
	s := sparedLayout(t)
	if s.G() != 5 || s.Disks() != 21 {
		t.Fatalf("G=%d C=%d, want 5/21", s.G(), s.Disks())
	}
	if s.Alpha() != 0.2 {
		t.Fatalf("α=%v, want 0.2 (logical G=5)", s.Alpha())
	}
	if s.FullCycleStripes() != s.StripesPerPeriod()*6 {
		t.Fatalf("full cycle %d, want %d", s.FullCycleStripes(), s.StripesPerPeriod()*6)
	}
}

func TestSparedRejectsTinyTuples(t *testing.T) {
	d, _ := blockdesign.Complete(5, 2, 0)
	if _, err := NewSpared(d); err == nil {
		t.Fatal("k=2 accepted for sparing")
	}
}

func TestSparedStripeDisjointFromSpare(t *testing.T) {
	s := sparedLayout(t)
	for stripe := int64(0); stripe < s.FullCycleStripes(); stripe++ {
		spare := s.SpareUnit(stripe)
		seen := map[int]bool{spare.Disk: true}
		for j := 0; j < s.G(); j++ {
			u := s.Unit(stripe, j)
			if u == spare {
				t.Fatalf("stripe %d position %d collides with spare %v", stripe, j, spare)
			}
			if seen[u.Disk] {
				t.Fatalf("stripe %d: disk %d used twice (incl. spare)", stripe, u.Disk)
			}
			seen[u.Disk] = true
		}
	}
}

func TestSparedLocateRoundTrip(t *testing.T) {
	s := sparedLayout(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stripe := rng.Int63n(3 * s.FullCycleStripes())
		j := rng.Intn(s.G())
		loc := s.Unit(stripe, j)
		s2, j2 := s.Locate(loc)
		return s2 == stripe && j2 == j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSparedSlotsPartitionOffsets(t *testing.T) {
	// Mapped units plus spare units cover every offset of every disk in
	// one full cycle exactly once.
	s := sparedLayout(t)
	perDisk := s.UnitsPerDiskPerPeriod() * int64(s.inner.G())
	seen := make(map[Loc]string)
	mark := func(loc Loc, what string) {
		if prev, dup := seen[loc]; dup {
			t.Fatalf("%v assigned twice (%s and %s)", loc, prev, what)
		}
		seen[loc] = what
	}
	for stripe := int64(0); stripe < s.FullCycleStripes(); stripe++ {
		for j := 0; j < s.G(); j++ {
			mark(s.Unit(stripe, j), "unit")
		}
		mark(s.SpareUnit(stripe), "spare")
	}
	if int64(len(seen)) != int64(s.Disks())*perDisk {
		t.Fatalf("covered %d slots, want %d", len(seen), int64(s.Disks())*perDisk)
	}
}

func TestSparedIsSpare(t *testing.T) {
	s := sparedLayout(t)
	for stripe := int64(0); stripe < 50; stripe++ {
		spare := s.SpareUnit(stripe)
		st, ok := s.IsSpare(spare)
		if !ok || st != stripe {
			t.Fatalf("IsSpare(%v) = (%d,%v), want (%d,true)", spare, st, ok, stripe)
		}
		u := s.Unit(stripe, 0)
		if _, ok := s.IsSpare(u); ok {
			t.Fatalf("data unit %v flagged as spare", u)
		}
	}
}

func TestSparedLocatePanicsOnSpare(t *testing.T) {
	s := sparedLayout(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Locate of a spare slot did not panic")
		}
	}()
	s.Locate(s.SpareUnit(0))
}

func TestSparedBalancedRoles(t *testing.T) {
	// Per full cycle every disk carries the same parity and spare load.
	s := sparedLayout(t)
	parity := make(map[int]int)
	spare := make(map[int]int)
	for stripe := int64(0); stripe < s.FullCycleStripes(); stripe++ {
		parity[ParityLoc(s, stripe).Disk]++
		spare[s.SpareUnit(stripe).Disk]++
	}
	for d := 0; d < s.Disks(); d++ {
		if parity[d] != parity[0] {
			t.Fatalf("disk %d parity %d, disk 0 %d", d, parity[d], parity[0])
		}
		if spare[d] != spare[0] {
			t.Fatalf("disk %d spare %d, disk 0 %d", d, spare[d], spare[0])
		}
	}
}

func TestSparedMeetsCoreCriteria(t *testing.T) {
	s := sparedLayout(t)
	c, err := Check(s)
	if err != nil {
		t.Fatal(err)
	}
	if !c.SingleFailureCorrecting || !c.DistributedReconstruction || !c.DistributedParity {
		t.Fatalf("spared layout fails core criteria: %+v", c)
	}
}

func TestSparedSpareSpreadsReconstructionWrites(t *testing.T) {
	// The point of distributed sparing: for a failed disk, spare targets
	// land on many distinct surviving disks, not one replacement.
	s := sparedLayout(t)
	writes := make(map[int]int)
	perDisk := s.UnitsPerDiskPerPeriod() * int64(s.inner.G())
	for off := int64(0); off < perDisk; off++ {
		loc := Loc{Disk: 3, Offset: off}
		if _, ok := s.IsSpare(loc); ok {
			continue // nothing to reconstruct for this slot
		}
		stripe, _ := s.Locate(loc)
		sp := s.SpareUnit(stripe)
		if sp.Disk == 3 {
			t.Fatalf("stripe %d spare on its own failed disk", stripe)
		}
		writes[sp.Disk]++
	}
	if len(writes) < s.Disks()-1 {
		t.Fatalf("spare writes hit only %d disks", len(writes))
	}
}
