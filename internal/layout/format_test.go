package layout

import (
	"strings"
	"testing"

	"declust/internal/blockdesign"
)

// TestFormatRaid5MatchesFigure2_1 checks the rendered table cell-for-cell
// against the paper's Figure 2-1.
func TestFormatRaid5MatchesFigure2_1(t *testing.T) {
	r, err := NewRaid5(5)
	if err != nil {
		t.Fatal(err)
	}
	got := Format(r, 5)
	want := [][]string{
		{"D0.0", "D0.1", "D0.2", "D0.3", "P0"},
		{"D1.1", "D1.2", "D1.3", "P1", "D1.0"},
		{"D2.2", "D2.3", "P2", "D2.0", "D2.1"},
		{"D3.3", "P3", "D3.0", "D3.1", "D3.2"},
		{"P4", "D4.0", "D4.1", "D4.2", "D4.3"},
	}
	checkCells(t, got, want)
}

// TestFormatDeclusteredMatchesFigure2_3 checks the declustered C=5, G=4
// layout against the paper's Figure 2-3.
func TestFormatDeclusteredMatchesFigure2_3(t *testing.T) {
	d, err := blockdesign.Complete(5, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewDeclustered(d)
	if err != nil {
		t.Fatal(err)
	}
	got := Format(l, 4)
	want := [][]string{
		{"D0.0", "D0.1", "D0.2", "P0", "P1"},
		{"D1.0", "D1.1", "D1.2", "D2.2", "P2"},
		{"D2.0", "D2.1", "D3.1", "D3.2", "P3"},
		{"D3.0", "D4.0", "D4.1", "D4.2", "P4"},
	}
	checkCells(t, got, want)
}

func checkCells(t *testing.T, got string, want [][]string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != len(want)+1 {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want)+1, got)
	}
	for i, row := range want {
		fields := strings.Fields(lines[i+1])
		if len(fields) != len(row)+1 {
			t.Fatalf("row %d: %q", i, lines[i+1])
		}
		for j, cell := range row {
			if fields[j+1] != cell {
				t.Errorf("offset %d disk %d: got %s, want %s", i, j, fields[j+1], cell)
			}
		}
	}
}

func TestFormatDefaultsToFullCycle(t *testing.T) {
	l := paperLayout(t, 5)
	got := Format(l, 0)
	lines := strings.Count(got, "\n")
	wantRows := int(l.UnitsPerDiskPerPeriod()) * l.G()
	if lines != wantRows+1 {
		t.Fatalf("%d lines, want %d rows + header", lines, wantRows)
	}
}
