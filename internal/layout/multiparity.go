package layout

import "fmt"

// MultiParity is implemented by layouts whose stripes carry more than one
// parity unit — the multi-failure generalization of the paper's layouts
// (Dau et al. extend declustering to t failures via t-designs; this
// package provides the t = 2 RAID-6-style P+Q code). Parity unit 0 is P
// (plain XOR) and unit 1 is Q (the GF(2^8) Reed–Solomon sum); see
// internal/gf256 for the code itself.
//
// Layouts that do not implement MultiParity carry exactly one parity unit
// per stripe (the paper's original model); every helper in this package
// treats them so.
type MultiParity interface {
	Layout
	// Parities returns the number of parity units per stripe (>= 1).
	Parities() int
	// ParityPosK returns the position of parity unit k of stripe s.
	// ParityPosK(s, 0) equals ParityPos(s).
	ParityPosK(stripe int64, k int) int
}

// NumParities returns how many parity units each stripe of l carries:
// Parities() for MultiParity layouts, 1 otherwise.
func NumParities(l Layout) int {
	if mp, ok := l.(MultiParity); ok {
		return mp.Parities()
	}
	return 1
}

// DataPerStripe returns how many data units each stripe of l carries:
// G minus the stripe's parity units.
func DataPerStripe(l Layout) int { return l.G() - NumParities(l) }

// ParityPosOf returns the position of parity unit k of stripe s (k = 0 is
// P; k = 1 is Q for dual-parity layouts).
func ParityPosOf(l Layout, stripe int64, k int) int {
	if mp, ok := l.(MultiParity); ok {
		return mp.ParityPosK(stripe, k)
	}
	if k != 0 {
		panic(fmt.Sprintf("layout: parity unit %d of a single-parity layout", k))
	}
	return l.ParityPos(stripe)
}

// ParityLocOf returns the location of parity unit k of stripe s.
func ParityLocOf(l Layout, stripe int64, k int) Loc {
	return l.Unit(stripe, ParityPosOf(l, stripe, k))
}

// IsParityPos reports whether position j of stripe s holds a parity unit.
func IsParityPos(l Layout, stripe int64, j int) bool {
	pp := l.ParityPos(stripe)
	if j == pp {
		return true
	}
	if mp, ok := l.(MultiParity); ok {
		for k := 1; k < mp.Parities(); k++ {
			if j == mp.ParityPosK(stripe, k) {
				return true
			}
		}
	}
	return false
}

// DataPos returns the position within stripe s of the stripe's d-th data
// unit (d in [0, DataPerStripe)): positions in ascending order, skipping
// the parity positions. The ordinal d is also the unit's Reed–Solomon
// coefficient index — Q = Σ g^d · data_d.
func DataPos(l Layout, stripe int64, d int) int {
	mp, ok := l.(MultiParity)
	if !ok || mp.Parities() == 1 {
		j := d
		if j >= l.ParityPos(stripe) {
			j++
		}
		return j
	}
	if mp.Parities() != 2 {
		panic(fmt.Sprintf("layout: %d parities unsupported", mp.Parities()))
	}
	lo, hi := mp.ParityPosK(stripe, 0), mp.ParityPosK(stripe, 1)
	if lo > hi {
		lo, hi = hi, lo
	}
	j := d
	if j >= lo {
		j++
	}
	if j >= hi {
		j++
	}
	return j
}

// DataOrdinal inverts DataPos: the data ordinal of position j within
// stripe s. It panics if j holds parity.
func DataOrdinal(l Layout, stripe int64, j int) int {
	mp, ok := l.(MultiParity)
	if !ok || mp.Parities() == 1 {
		pp := l.ParityPos(stripe)
		if j == pp {
			panic(fmt.Sprintf("layout: position %d of stripe %d is parity, not data", j, stripe))
		}
		d := j
		if j > pp {
			d--
		}
		return d
	}
	lo, hi := mp.ParityPosK(stripe, 0), mp.ParityPosK(stripe, 1)
	if lo > hi {
		lo, hi = hi, lo
	}
	if j == lo || j == hi {
		panic(fmt.Sprintf("layout: position %d of stripe %d is parity, not data", j, stripe))
	}
	d := j
	if j > hi {
		d--
	}
	if j > lo {
		d--
	}
	return d
}

// DualParity wraps a single-parity layout into a P+Q dual-parity one: unit
// placement is untouched (so the wrapped layout's balance properties
// carry over verbatim), but each stripe designates two of its G positions
// as parity — P at the inner layout's parity position and Q at the
// position one slot before it (mod G). Q therefore rotates exactly as P
// does: over a full parity-rotation cycle every disk carries equal P and
// equal Q load, preserving the paper's distributed-parity criterion for
// both units, and the pair-count balance (criterion 2) bounds every
// surviving disk's two-erasure decode load the same way it bounds
// single-failure reconstruction.
type DualParity struct {
	inner Layout
}

// NewDualParity builds a P+Q layout over inner, which must be
// single-parity with G >= 3 (a stripe needs at least one data unit beside
// P and Q).
func NewDualParity(inner Layout) (*DualParity, error) {
	if inner == nil {
		return nil, fmt.Errorf("layout: nil inner layout")
	}
	if NumParities(inner) != 1 {
		return nil, fmt.Errorf("layout: dual parity wraps single-parity layouts only")
	}
	if inner.G() < 3 {
		return nil, fmt.Errorf("layout: dual parity needs G >= 3, have G=%d", inner.G())
	}
	return &DualParity{inner: inner}, nil
}

// Inner returns the wrapped single-parity layout.
func (l *DualParity) Inner() Layout { return l.inner }

func (l *DualParity) Disks() int                   { return l.inner.Disks() }
func (l *DualParity) G() int                       { return l.inner.G() }
func (l *DualParity) Alpha() float64               { return l.inner.Alpha() }
func (l *DualParity) Unit(stripe int64, j int) Loc { return l.inner.Unit(stripe, j) }
func (l *DualParity) Locate(loc Loc) (int64, int)  { return l.inner.Locate(loc) }
func (l *DualParity) StripesPerPeriod() int64      { return l.inner.StripesPerPeriod() }
func (l *DualParity) UnitsPerDiskPerPeriod() int64 { return l.inner.UnitsPerDiskPerPeriod() }

// ParityPos returns the P position (parity unit 0).
func (l *DualParity) ParityPos(stripe int64) int { return l.inner.ParityPos(stripe) }

// FullCycleStripes forwards the inner layout's full parity-rotation cycle
// (the span criteria checks cover), defaulting to G allocation periods.
func (l *DualParity) FullCycleStripes() int64 {
	if fc, ok := l.inner.(FullCycler); ok {
		return fc.FullCycleStripes()
	}
	return l.inner.StripesPerPeriod() * int64(l.inner.G())
}

// Parities returns 2.
func (l *DualParity) Parities() int { return 2 }

// ParityPosK places P at the inner parity position and Q one position
// before it, wrapping around the stripe.
func (l *DualParity) ParityPosK(stripe int64, k int) int {
	pp := l.inner.ParityPos(stripe)
	switch k {
	case 0:
		return pp
	case 1:
		g := l.inner.G()
		return (pp + g - 1) % g
	}
	panic(fmt.Sprintf("layout: parity unit %d of a dual-parity layout", k))
}
