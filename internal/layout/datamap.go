package layout

import "fmt"

// DataMapper assigns logical user data units to the data stripe units of a
// layout. The paper uses one mapping (data fills successive parity
// stripes) and notes as future work a mapping that would instead satisfy
// the maximal-parallelism criterion (§4.2 end); both are provided here.
//
// A parity mapping does not imply a data mapping (§2), so the mapper is a
// separate object layered on a Layout.
type DataMapper interface {
	// Loc returns the stripe unit holding logical data unit n.
	Loc(n int64) Loc
	// Index inverts Loc for a unit known to hold data: given its stripe
	// and position, the logical data unit number.
	Index(stripe int64, j int) int64
	// Layout returns the parity layout underneath.
	Layout() Layout
}

// StripeIndexMapper is the paper's data mapping: logical data fills parity
// stripes in stripe order (D0.0, D0.1, ..., D1.0, ...). It satisfies the
// large-write optimization criterion — a (G−1)-unit aligned write covers
// exactly one parity stripe — but not maximal parallelism.
type StripeIndexMapper struct {
	L Layout
}

func (m StripeIndexMapper) Layout() Layout { return m.L }

func (m StripeIndexMapper) Loc(n int64) Loc { return DataLoc(m.L, n) }

func (m StripeIndexMapper) Index(stripe int64, j int) int64 { return DataIndex(m.L, stripe, j) }

// ParallelMapper stripes logical data across the disks round-robin: unit n
// lives on disk n mod C, in that disk's (n div C)-th data slot. Any C
// consecutive units land on C distinct disks (maximal parallelism), at the
// cost of the large-write optimization: the data units of one parity
// stripe are no longer logically contiguous.
type ParallelMapper struct {
	l Layout
	// dataSlots[d] lists, in offset order, the offsets on disk d that
	// hold data (not parity) within one full parity-rotation cycle
	// (G allocation periods).
	dataSlots [][]int64
	// slotIndex[d][offset] is the inverse: the data-slot ordinal of an
	// offset on disk d, or -1 for parity offsets.
	slotIndex [][]int64
}

// NewParallelMapper precomputes the per-disk data slot tables.
func NewParallelMapper(l Layout) *ParallelMapper {
	c := l.Disks()
	fullStripes := l.StripesPerPeriod() * int64(l.G())
	perDisk := l.UnitsPerDiskPerPeriod() * int64(l.G())
	m := &ParallelMapper{
		l:         l,
		dataSlots: make([][]int64, c),
		slotIndex: make([][]int64, c),
	}
	for d := 0; d < c; d++ {
		m.slotIndex[d] = make([]int64, perDisk)
		for i := range m.slotIndex[d] {
			m.slotIndex[d][i] = -1
		}
	}
	for s := int64(0); s < fullStripes; s++ {
		for j := 0; j < l.G(); j++ {
			if IsParityPos(l, s, j) {
				continue
			}
			u := l.Unit(s, j)
			m.slotIndex[u.Disk][u.Offset] = int64(len(m.dataSlots[u.Disk]))
			m.dataSlots[u.Disk] = append(m.dataSlots[u.Disk], u.Offset)
		}
	}
	// Every disk carries the same number of data slots per full cycle
	// (r·(G−parities)), by the distributed-parity property.
	want := len(m.dataSlots[0])
	for d, slots := range m.dataSlots {
		if len(slots) != want {
			panic(fmt.Sprintf("layout: disk %d has %d data slots per cycle, disk 0 has %d",
				d, len(slots), want))
		}
	}
	return m
}

func (m *ParallelMapper) Layout() Layout { return m.l }

// slotsPerCycle returns data slots per disk per full parity cycle.
func (m *ParallelMapper) slotsPerCycle() int64 { return int64(len(m.dataSlots[0])) }

func (m *ParallelMapper) Loc(n int64) Loc {
	if n < 0 {
		panic(fmt.Sprintf("layout: negative data unit %d", n))
	}
	c := int64(m.l.Disks())
	disk := int(n % c)
	slot := n / c
	spc := m.slotsPerCycle()
	cycle := slot / spc
	perDiskPerCycle := m.l.UnitsPerDiskPerPeriod() * int64(m.l.G())
	return Loc{
		Disk:   disk,
		Offset: cycle*perDiskPerCycle + m.dataSlots[disk][slot%spc],
	}
}

func (m *ParallelMapper) Index(stripe int64, j int) int64 {
	if IsParityPos(m.l, stripe, j) {
		panic(fmt.Sprintf("layout: position %d of stripe %d is parity, not data", j, stripe))
	}
	u := m.l.Unit(stripe, j)
	perDiskPerCycle := m.l.UnitsPerDiskPerPeriod() * int64(m.l.G())
	cycle := u.Offset / perDiskPerCycle
	within := u.Offset % perDiskPerCycle
	si := m.slotIndex[u.Disk][within]
	if si < 0 {
		panic(fmt.Sprintf("layout: unit %v is parity in the slot table", u))
	}
	slot := cycle*m.slotsPerCycle() + si
	return slot*int64(m.l.Disks()) + int64(u.Disk)
}
