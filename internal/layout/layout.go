// Package layout maps parity stripes and user data onto the disks of a
// redundant array. It provides the left-symmetric RAID 5 layout and the
// paper's block-design-based declustered parity layout (Holland & Gibson
// 1992, §4), plus checkers for the six layout-goodness criteria of §4.1.
//
// Terminology follows the paper: a (data or parity) stripe unit is the
// allocation granule; a parity stripe is the set of G stripe units (G−1
// data + 1 parity) bound to one parity equation; disks are numbered
// 0..C−1; each disk is an array of stripe units addressed by offset.
package layout

import "fmt"

// Loc addresses one stripe unit: a disk and a unit offset on that disk.
type Loc struct {
	Disk   int
	Offset int64
}

func (l Loc) String() string { return fmt.Sprintf("d%d:%d", l.Disk, l.Offset) }

// Layout is a periodic mapping of parity stripes to stripe units.
//
// Parity stripes are numbered from zero; position j within stripe s ranges
// over 0..G−1, one of which is the parity unit (ParityPos). The layout is
// periodic: stripe s+StripesPerPeriod() maps exactly as stripe s with all
// offsets shifted by UnitsPerDiskPerPeriod().
type Layout interface {
	// Disks returns C, the number of disks in the array.
	Disks() int
	// G returns the number of stripe units per parity stripe.
	G() int
	// Unit returns the location of position j of parity stripe s.
	Unit(stripe int64, j int) Loc
	// ParityPos returns which position of stripe s holds parity. Parity
	// placement may rotate with a super-period of G allocation periods
	// (the paper's "full block design table").
	ParityPos(stripe int64) int
	// Locate inverts Unit: which stripe and position owns a unit.
	Locate(loc Loc) (stripe int64, j int)
	// StripesPerPeriod returns the allocation period in parity stripes
	// (one "block design table": b tuples for declustered layouts).
	StripesPerPeriod() int64
	// UnitsPerDiskPerPeriod returns how many units each disk
	// contributes to one allocation period (r for declustered layouts).
	// Every disk contributes equally.
	UnitsPerDiskPerPeriod() int64
	// Alpha returns the declustering ratio (G−1)/(C−1).
	Alpha() float64
}

// DataUnits returns the number of user data units (excluding parity) that
// fit on an array whose disks hold unitsPerDisk units each; per-disk usable
// capacity is rounded down to a whole number of allocation periods.
func DataUnits(l Layout, unitsPerDisk int64) int64 {
	return UsableStripes(l, unitsPerDisk) * int64(DataPerStripe(l))
}

// UsableStripes returns how many whole parity stripes fit when each disk
// holds unitsPerDisk units, rounding down to whole periods.
func UsableStripes(l Layout, unitsPerDisk int64) int64 {
	periods := unitsPerDisk / l.UnitsPerDiskPerPeriod()
	return periods * l.StripesPerPeriod()
}

// UsableUnitsPerDisk returns the per-disk unit count actually mapped when
// each disk has unitsPerDisk raw units.
func UsableUnitsPerDisk(l Layout, unitsPerDisk int64) int64 {
	periods := unitsPerDisk / l.UnitsPerDiskPerPeriod()
	return periods * l.UnitsPerDiskPerPeriod()
}

// DataLoc resolves logical data unit n under the paper's "by parity stripe
// index" data mapping: data units fill successive parity stripes, skipping
// each stripe's parity position(s).
func DataLoc(l Layout, n int64) Loc {
	dp := int64(DataPerStripe(l))
	stripe := n / dp
	d := int(n % dp)
	return l.Unit(stripe, DataPos(l, stripe, d))
}

// DataIndex inverts DataLoc for a unit known to be a data unit: given its
// stripe and position, return the logical data unit number. It panics if
// position j holds parity.
func DataIndex(l Layout, stripe int64, j int) int64 {
	return stripe*int64(DataPerStripe(l)) + int64(DataOrdinal(l, stripe, j))
}

// ParityLoc returns the location of stripe s's parity unit.
func ParityLoc(l Layout, stripe int64) Loc {
	return l.Unit(stripe, l.ParityPos(stripe))
}

// StripeUnits returns the locations of every unit of stripe s, indexed by
// position.
func StripeUnits(l Layout, stripe int64) []Loc {
	g := l.G()
	out := make([]Loc, g)
	for j := 0; j < g; j++ {
		out[j] = l.Unit(stripe, j)
	}
	return out
}

// SurvivingUnits returns the units of the stripe owning loc, excluding loc
// itself: exactly the reads needed to reconstruct loc's contents.
func SurvivingUnits(l Layout, loc Loc) []Loc {
	stripe, j := l.Locate(loc)
	g := l.G()
	out := make([]Loc, 0, g-1)
	for p := 0; p < g; p++ {
		if p != j {
			out = append(out, l.Unit(stripe, p))
		}
	}
	return out
}
