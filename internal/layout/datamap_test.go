package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"declust/internal/blockdesign"
)

func parallelMapper(t *testing.T, g int) *ParallelMapper {
	t.Helper()
	return NewParallelMapper(paperLayout(t, g))
}

func TestParallelMapperRoundTrip(t *testing.T) {
	for _, g := range []int{3, 4, 5, 6, 10} {
		m := parallelMapper(t, g)
		l := m.Layout()
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := rng.Int63n(DataUnits(l, 5*l.UnitsPerDiskPerPeriod()*int64(l.G())))
			loc := m.Loc(n)
			s, j := l.Locate(loc)
			if j == l.ParityPos(s) {
				return false
			}
			return m.Index(s, j) == n
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("G=%d: %v", g, err)
		}
	}
}

func TestParallelMapperRoundRobin(t *testing.T) {
	m := parallelMapper(t, 5)
	for n := int64(0); n < 210; n++ {
		if got := m.Loc(n).Disk; got != int(n%21) {
			t.Fatalf("unit %d on disk %d, want %d", n, got, n%21)
		}
	}
}

func TestParallelMapperNeverHitsParity(t *testing.T) {
	m := parallelMapper(t, 4)
	l := m.Layout()
	span := DataUnits(l, 2*l.UnitsPerDiskPerPeriod()*int64(l.G()))
	for n := int64(0); n < span; n++ {
		loc := m.Loc(n)
		s, j := l.Locate(loc)
		if j == l.ParityPos(s) {
			t.Fatalf("unit %d mapped onto parity at %v", n, loc)
		}
	}
}

func TestParallelMapperDense(t *testing.T) {
	// Over one full cycle, the mapper must cover every data slot exactly
	// once: no waste, no double-booking.
	m := parallelMapper(t, 5)
	l := m.Layout()
	span := l.StripesPerPeriod() * int64(l.G()) * int64(l.G()-1)
	seen := make(map[Loc]bool, span)
	for n := int64(0); n < span; n++ {
		loc := m.Loc(n)
		if seen[loc] {
			t.Fatalf("unit %d reuses location %v", n, loc)
		}
		seen[loc] = true
	}
	if int64(len(seen)) != span {
		t.Fatalf("covered %d locations, want %d", len(seen), span)
	}
}

func TestMapperCriteriaTradeoff(t *testing.T) {
	// The paper's §4.2 trade-off, made checkable: the stripe-index
	// mapping satisfies large-write but not maximal parallelism; the
	// parallel mapping the reverse.
	l := paperLayout(t, 5)
	si, err := CheckWithMapper(StripeIndexMapper{L: l})
	if err != nil {
		t.Fatal(err)
	}
	if !si.LargeWriteOptimization || si.MaximalParallelism {
		t.Fatalf("stripe-index mapper: %+v", si)
	}
	pm, err := CheckWithMapper(NewParallelMapper(l))
	if err != nil {
		t.Fatal(err)
	}
	if pm.LargeWriteOptimization || !pm.MaximalParallelism {
		t.Fatalf("parallel mapper: %+v", pm)
	}
	// Parity-mapping criteria are mapper-independent.
	if !pm.SingleFailureCorrecting || !pm.DistributedReconstruction || !pm.DistributedParity {
		t.Fatalf("core criteria regressed under parallel mapper: %+v", pm)
	}
}

func TestRaid5BothCriteriaWithStripeIndex(t *testing.T) {
	// Left-symmetric RAID 5 with the stripe-index mapping satisfies
	// both data-mapping criteria simultaneously (paper Figure 2-1).
	r, _ := NewRaid5(5)
	c, err := CheckWithMapper(StripeIndexMapper{L: r})
	if err != nil {
		t.Fatal(err)
	}
	if !c.LargeWriteOptimization || !c.MaximalParallelism {
		t.Fatalf("RAID 5 stripe-index: %+v", c)
	}
}

func TestParallelMapperWorksOnRaid5(t *testing.T) {
	r, _ := NewRaid5(7)
	m := NewParallelMapper(r)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Int63n(1000)
		loc := m.Loc(n)
		s, j := r.Locate(loc)
		return m.Index(s, j) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMapperPanicsOnParityIndex(t *testing.T) {
	m := parallelMapper(t, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Index of parity position")
		}
	}()
	m.Index(0, m.Layout().ParityPos(0))
}

func TestStripeIndexMapperDelegates(t *testing.T) {
	l := paperLayout(t, 5)
	m := StripeIndexMapper{L: l}
	if m.Loc(7) != DataLoc(l, 7) {
		t.Fatal("Loc does not match DataLoc")
	}
	s, j := l.Locate(DataLoc(l, 7))
	if m.Index(s, j) != 7 {
		t.Fatal("Index does not invert Loc")
	}
	if m.Layout() != Layout(l) {
		t.Fatal("Layout accessor wrong")
	}
}

func TestParallelMapperComplete54(t *testing.T) {
	// Small complete-design case for exhaustive slot accounting.
	d, err := blockdesign.Complete(5, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewDeclustered(d)
	if err != nil {
		t.Fatal(err)
	}
	m := NewParallelMapper(l)
	// 5 disks × (r·(G−1) = 4·3 = 12) data slots per cycle = 60 units.
	if m.slotsPerCycle() != 12 {
		t.Fatalf("slots per cycle %d, want 12", m.slotsPerCycle())
	}
}
