package layout

import (
	"fmt"
	"strings"
)

// Format renders a layout as the paper's figures do: one row per unit
// offset, one column per disk, cells like D12.2 (stripe 12's data unit 2)
// or P12 (stripe 12's parity unit). rows <= 0 renders one full
// parity-rotation cycle.
func Format(l Layout, rows int64) string {
	if rows <= 0 {
		rows = l.UnitsPerDiskPerPeriod() * int64(l.G())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s", "Offset")
	for d := 0; d < l.Disks(); d++ {
		fmt.Fprintf(&b, "%-9s", fmt.Sprintf("DISK%d", d))
	}
	b.WriteByte('\n')
	for off := int64(0); off < rows; off++ {
		fmt.Fprintf(&b, "%-7d", off)
		for d := 0; d < l.Disks(); d++ {
			s, j := l.Locate(Loc{Disk: d, Offset: off})
			if j == l.ParityPos(s) {
				fmt.Fprintf(&b, "%-9s", fmt.Sprintf("P%d", s))
			} else {
				idx := DataIndex(l, s, j) % int64(l.G()-1)
				fmt.Fprintf(&b, "%-9s", fmt.Sprintf("D%d.%d", s, idx))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
