package layout

import "fmt"

// Criteria reports how a layout fares against the paper's six goodness
// criteria (§4.1). The first four are decided by the parity mapping alone;
// the last two also involve the data mapping, which here is the paper's
// "by parity stripe index" mapping (see DataLoc).
type Criteria struct {
	SingleFailureCorrecting   bool
	DistributedReconstruction bool
	DistributedParity         bool
	// TableStripes is the span checked: one full parity-rotation cycle.
	TableStripes int64
	// PairCount is λ per table (reconstruction load each surviving disk
	// takes per table when any one disk fails), when constant.
	PairCount int
	// ParityPerDisk is parity units per disk per full table, when constant.
	ParityPerDisk          int
	LargeWriteOptimization bool
	MaximalParallelism     bool
}

// Check evaluates a layout under the paper's stripe-index data mapping;
// see CheckWithMapper.
func Check(l Layout) (Criteria, error) {
	return CheckWithMapper(StripeIndexMapper{L: l})
}

// CheckWithMapper evaluates the first four criteria over one full
// parity-rotation cycle (G allocation periods) and the data-mapping
// criteria (5 and 6) under the given data mapping.
func CheckWithMapper(m DataMapper) (Criteria, error) {
	l := m.Layout()
	c := Criteria{}
	full := l.StripesPerPeriod() * int64(l.G())
	if fc, ok := l.(FullCycler); ok {
		full = fc.FullCycleStripes()
	}
	c.TableStripes = full
	disks := l.Disks()
	g := l.G()

	// Criterion 1: no two units of one parity stripe on the same disk.
	c.SingleFailureCorrecting = true
	for s := int64(0); s < full; s++ {
		seen := make(map[int]bool, g)
		for j := 0; j < g; j++ {
			d := l.Unit(s, j).Disk
			if seen[d] {
				c.SingleFailureCorrecting = false
			}
			seen[d] = true
		}
	}

	// Criterion 2: constant pair count λ over the full table.
	pair := make([][]int, disks)
	for i := range pair {
		pair[i] = make([]int, disks)
	}
	for s := int64(0); s < full; s++ {
		for a := 0; a < g; a++ {
			da := l.Unit(s, a).Disk
			for b := a + 1; b < g; b++ {
				db := l.Unit(s, b).Disk
				pair[da][db]++
				pair[db][da]++
			}
		}
	}
	c.DistributedReconstruction = true
	c.PairCount = pair[0][1]
	for i := 0; i < disks; i++ {
		for j := 0; j < disks; j++ {
			if i != j && pair[i][j] != c.PairCount {
				c.DistributedReconstruction = false
			}
		}
	}

	// Criterion 3: constant parity units per disk over the full table
	// (counting every parity unit of the stripe — P and Q both, for
	// dual-parity layouts).
	parity := make([]int, disks)
	nPar := NumParities(l)
	for s := int64(0); s < full; s++ {
		for k := 0; k < nPar; k++ {
			parity[ParityLocOf(l, s, k).Disk]++
		}
	}
	c.DistributedParity = true
	c.ParityPerDisk = parity[0]
	for _, p := range parity {
		if p != c.ParityPerDisk {
			c.DistributedParity = false
		}
	}

	// Criterion 4, efficient mapping, is structural: these layouts use
	// O(b·k) tables and O(1) arithmetic, so it is a matter of table size
	// policy enforced at design selection time (blockdesign.Select).

	// Criterion 5: the data units of each parity stripe occupy one
	// contiguous, aligned run of logical addresses (length G minus the
	// stripe's parity units), so a write of that run needs no pre-reads
	// and touches exactly one stripe.
	dp := DataPerStripe(l)
	c.LargeWriteOptimization = true
	for s := int64(0); s < full; s++ {
		lo, hi := int64(-1), int64(-1)
		for j := 0; j < g; j++ {
			if IsParityPos(l, s, j) {
				continue
			}
			n := m.Index(s, j)
			if lo < 0 || n < lo {
				lo = n
			}
			if n > hi {
				hi = n
			}
		}
		if hi-lo != int64(dp-1) || lo%int64(dp) != 0 {
			c.LargeWriteOptimization = false
			break
		}
	}

	// Criterion 6: any C consecutive data units (aligned anywhere) land
	// on C distinct disks.
	c.MaximalParallelism = true
	limit := full * int64(dp)
	for start := int64(0); start+int64(disks) <= limit && start < full; start++ {
		seen := make(map[int]bool, disks)
		ok := true
		for i := int64(0); i < int64(disks); i++ {
			d := m.Loc(start + i).Disk
			if seen[d] {
				ok = false
				break
			}
			seen[d] = true
		}
		if !ok {
			c.MaximalParallelism = false
			break
		}
	}
	return c, nil
}

// MustMeetCore returns an error unless the layout meets the paper's first
// three criteria (the ones the block-design construction guarantees).
func MustMeetCore(l Layout) error {
	c, err := Check(l)
	if err != nil {
		return err
	}
	switch {
	case !c.SingleFailureCorrecting:
		return fmt.Errorf("layout: two units of one parity stripe share a disk")
	case !c.DistributedReconstruction:
		return fmt.Errorf("layout: reconstruction load not balanced (pair counts differ)")
	case !c.DistributedParity:
		return fmt.Errorf("layout: parity not evenly distributed")
	}
	return nil
}
