package layout

import (
	"fmt"

	"declust/internal/blockdesign"
)

// Declustered is the paper's block-design-based parity declustering layout
// (§4.2). Objects of the design are disks; tuples are parity stripes.
// Stripe i draws its G units from the disks of tuple (i mod b), each placed
// at the lowest free offset of its disk. The layout of b stripes (one
// "block design table") is repeated with the parity assignment rotating
// through the tuple positions, so that after G repetitions (one "full block
// design table") every disk has held parity exactly r times.
type Declustered struct {
	design *blockdesign.Design
	params blockdesign.Params

	// offInTable[t][j] is the offset, within one table's worth of a
	// disk's units (r units), of position j of tuple t.
	offInTable [][]int32
	// unitAt[d][i] identifies the owner (tuple, position) of disk d's
	// i-th unit within a table.
	unitAt [][]tupPos
}

type tupPos struct {
	tuple int32
	pos   int16
}

// NewDeclustered builds the layout for a verified block design.
func NewDeclustered(d *blockdesign.Design) (*Declustered, error) {
	p, err := d.Params()
	if err != nil {
		return nil, fmt.Errorf("layout: %w", err)
	}
	l := &Declustered{design: d, params: p}
	l.offInTable = make([][]int32, p.B)
	l.unitAt = make([][]tupPos, p.V)
	for disk := range l.unitAt {
		l.unitAt[disk] = make([]tupPos, 0, p.R)
	}
	for t, tup := range d.Tuples {
		l.offInTable[t] = make([]int32, p.K)
		for j, disk := range tup {
			l.offInTable[t][j] = int32(len(l.unitAt[disk]))
			l.unitAt[disk] = append(l.unitAt[disk], tupPos{tuple: int32(t), pos: int16(j)})
		}
	}
	return l, nil
}

// Design returns the underlying block design.
func (l *Declustered) Design() *blockdesign.Design { return l.design }

// Params returns the design's BIBD parameters.
func (l *Declustered) Params() blockdesign.Params { return l.params }

func (l *Declustered) Disks() int { return l.params.V }
func (l *Declustered) G() int     { return l.params.K }

func (l *Declustered) Alpha() float64 { return l.params.Alpha() }

func (l *Declustered) StripesPerPeriod() int64      { return int64(l.params.B) }
func (l *Declustered) UnitsPerDiskPerPeriod() int64 { return int64(l.params.R) }

// copyOf returns which parity-rotation copy (0..G-1) stripe s falls in.
func (l *Declustered) copyOf(stripe int64) int64 {
	return (stripe / int64(l.params.B)) % int64(l.params.K)
}

// ParityPos rotates parity through the tuple positions across the copies of
// the table: copy m places parity at position G−1−m, so the first table
// matches the paper's Figure 4-2 (parity in the tuple's last slot).
func (l *Declustered) ParityPos(stripe int64) int {
	if stripe < 0 {
		panic(fmt.Sprintf("layout: negative stripe %d", stripe))
	}
	return l.params.K - 1 - int(l.copyOf(stripe))
}

func (l *Declustered) Unit(stripe int64, j int) Loc {
	if stripe < 0 {
		panic(fmt.Sprintf("layout: negative stripe %d", stripe))
	}
	if j < 0 || j >= l.params.K {
		panic(fmt.Sprintf("layout: position %d out of range [0,%d)", j, l.params.K))
	}
	b := int64(l.params.B)
	r := int64(l.params.R)
	tuple := stripe % b
	copySeq := stripe / b // global copy number; parity rotation is copySeq mod G
	disk := l.design.Tuples[tuple][j]
	return Loc{
		Disk:   disk,
		Offset: copySeq*r + int64(l.offInTable[tuple][j]),
	}
}

func (l *Declustered) Locate(loc Loc) (int64, int) {
	if loc.Disk < 0 || loc.Disk >= l.params.V || loc.Offset < 0 {
		panic(fmt.Sprintf("layout: invalid location %v", loc))
	}
	r := int64(l.params.R)
	copySeq := loc.Offset / r
	i := loc.Offset % r
	tp := l.unitAt[loc.Disk][i]
	stripe := copySeq*int64(l.params.B) + int64(tp.tuple)
	return stripe, int(tp.pos)
}
