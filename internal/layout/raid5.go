package layout

import "fmt"

// Raid5 is the left-symmetric RAID 5 layout of the paper's Figure 2-1
// [Lee91]: parity stripes span all C disks (G = C), data unit j of stripe s
// lives on disk (j−s) mod C at offset s, and parity rotates one disk left
// per stripe, landing on disk (C−1−s) mod C. Sequential user data strides
// across all disks (maximal parallelism) and whole-stripe writes need no
// pre-reads (large-write optimization).
type Raid5 struct {
	c int
}

// NewRaid5 builds a left-symmetric RAID 5 layout over c disks.
func NewRaid5(c int) (*Raid5, error) {
	if c < 2 {
		return nil, fmt.Errorf("layout: RAID 5 needs at least 2 disks, have %d", c)
	}
	return &Raid5{c: c}, nil
}

func (r *Raid5) Disks() int { return r.c }
func (r *Raid5) G() int     { return r.c }

func (r *Raid5) Alpha() float64 { return 1 }

func (r *Raid5) Unit(stripe int64, j int) Loc {
	if j < 0 || j >= r.c {
		panic(fmt.Sprintf("layout: position %d out of range [0,%d)", j, r.c))
	}
	c := int64(r.c)
	disk := (int64(j) - stripe) % c
	if disk < 0 {
		disk += c
	}
	return Loc{Disk: int(disk), Offset: stripe}
}

func (r *Raid5) ParityPos(stripe int64) int { return r.c - 1 }

func (r *Raid5) Locate(loc Loc) (int64, int) {
	if loc.Disk < 0 || loc.Disk >= r.c || loc.Offset < 0 {
		panic(fmt.Sprintf("layout: invalid location %v", loc))
	}
	stripe := loc.Offset
	j := (int64(loc.Disk) + stripe) % int64(r.c)
	return stripe, int(j)
}

func (r *Raid5) StripesPerPeriod() int64      { return int64(r.c) }
func (r *Raid5) UnitsPerDiskPerPeriod() int64 { return int64(r.c) }
