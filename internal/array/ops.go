package array

import (
	"fmt"

	"declust/internal/disk"
	"declust/internal/gf256"
	"declust/internal/layout"
	"declust/internal/telemetry"
)

// SetOpSpan hands the array the parent span for the next synchronous
// Read/Write/ReadRange/WriteRange call, which consumes it. The array opens
// lifecycle-phase children under it (lock wait, pre-reads, commits,
// on-the-fly reconstruction) and tags every disk transfer so the drives
// attach queue/seek/rotate/transfer segments. All of it is nil-safe: with
// no tracer the handoff is a nil store and the hot paths pay nil checks.
func (a *Array) SetOpSpan(sp *telemetry.Span) { a.opSpan = sp }

func (a *Array) takeOpSpan() *telemetry.Span {
	sp := a.opSpan
	a.opSpan = nil
	return sp
}

// xfer is one unit-sized disk transfer.
type xfer struct {
	loc   layout.Loc
	write bool
}

const (
	userPriority  = 0
	reconPriority = -1
	scrubPriority = -2
)

// Transient-timeout retries back off exponentially from retryBaseMS,
// doubling up to retryBaseMS << retryMaxShift per attempt. Retries are
// unbounded: each attempt draws an independent outcome (the injector caps
// the timeout rate at 0.9), so service terminates with probability one.
const (
	retryBaseMS   = 1.0
	retryMaxShift = 5
)

// ioPhase tracks one parallel transfer phase: the countdown of outstanding
// transfers and the media-error failures collected so far. Phases are
// pooled on the Array; the fails slice is not reused (callers may retain
// it past the phase), but fault-free phases never allocate it.
type ioPhase struct {
	a     *Array
	n     int
	fails []xfer
	done  func(fails []xfer)
}

func (a *Array) getPhase() *ioPhase {
	if n := len(a.phaseFree); n > 0 {
		ph := a.phaseFree[n-1]
		a.phaseFree = a.phaseFree[:n-1]
		return ph
	}
	return &ioPhase{a: a}
}

// finishOne retires one transfer; the last one recycles the phase before
// invoking done, so done may immediately start a new phase on the same node.
func (ph *ioPhase) finishOne() {
	ph.n--
	if ph.n > 0 {
		return
	}
	a, done, fails := ph.a, ph.done, ph.fails
	ph.done = nil
	ph.fails = nil
	a.phaseFree = append(a.phaseFree, ph)
	done(fails)
}

// ioReq wraps one in-flight disk transfer. The embedded disk.Request and
// the two bound callbacks are allocated once per pooled node, so
// steady-state transfers — including transient-timeout retries — allocate
// nothing.
type ioReq struct {
	req     disk.Request
	a       *Array
	ph      *ioPhase
	x       xfer
	target  layout.Loc
	attempt int
	retryFn func()
}

func (a *Array) getReq() *ioReq {
	if n := len(a.reqFree); n > 0 {
		r := a.reqFree[n-1]
		a.reqFree = a.reqFree[:n-1]
		return r
	}
	r := &ioReq{a: a}
	r.req.OnDone = r.complete
	r.retryFn = r.resubmit
	return r
}

// complete is every transfer's disk.Request OnDone. Timeouts retry with
// capped exponential backoff on the same node; OK and MediaError outcomes
// recycle the node and retire the transfer in its phase.
func (r *ioReq) complete(_, _ float64, st disk.Status) {
	a := r.a
	if st == disk.Timeout {
		a.fstats.Retries++
		a.mRetries.Inc()
		shift := r.attempt
		if shift > retryMaxShift {
			shift = retryMaxShift
		}
		r.attempt++
		a.eng.Schedule(retryBaseMS*float64(int64(1)<<shift), r.retryFn)
		return
	}
	ph, x := r.ph, r.x
	r.ph = nil
	a.reqFree = append(a.reqFree, r)
	if st == disk.MediaError {
		a.fstats.MediaErrors++
		ph.fails = append(ph.fails, x)
	}
	ph.finishOne()
}

func (r *ioReq) resubmit() {
	r.a.disks[r.target.Disk].Submit(&r.req)
}

// io issues a set of transfers in parallel and calls done when the last
// completes, passing the transfers that failed with a media error (always
// reads under the stock injector; empty on a clean phase). Transient
// timeouts are retried internally and never surface.
//
// Writes addressed to a failed slot with no replacement are dropped: a
// disk can fail between an operation's phases (its path was chosen while
// the disk was healthy), and a fail-stop disk simply loses the write — the
// stripe stays recoverable through the surviving write of the pair, which
// is why parity and data commit in the same phase. Reads of such a slot,
// or of a not-yet-reconstructed replacement unit, can never be correct and
// panic as driver bugs.
func (a *Array) io(xs []xfer, prio int, done func(fails []xfer)) {
	if len(xs) == 0 {
		panic("array: empty io phase")
	}
	// Consume the span set for this phase (nil when tracing is off or the
	// phase is internal): every transfer of the phase carries it, so the
	// drives know where to attach their service segments.
	sp := a.phaseSpan
	a.phaseSpan = nil
	ph := a.getPhase()
	ph.n = len(xs)
	ph.done = done
	for _, x := range xs {
		if x.loc.Disk == a.failed {
			if !x.write {
				if !a.replacement && a.spareLay == nil {
					panic(fmt.Sprintf("array: read of failed disk %d with no replacement", x.loc.Disk))
				}
				if !a.reconDone[x.loc.Offset] {
					panic(fmt.Sprintf("array: read of unreconstructed unit %v", x.loc))
				}
			} else if !a.replacement && a.spareLay == nil {
				// Dropped write to a dead disk.
				ph.finishOne()
				continue
			}
		}
		// Under distributed sparing, units of the failed disk live (or
		// will live) in their stripes' spare slots on survivors.
		a.submitIO(x, a.phys(x.loc), prio, ph, sp)
	}
}

// submitIO issues one transfer to its resolved target. The target is
// resolved once: a retry lands on the same drive slot the operation chose,
// even if the array's failure state moved underneath it (the enclosing
// phase's drop/panic rules already ran).
func (a *Array) submitIO(x xfer, target layout.Loc, prio int, ph *ioPhase, sp *telemetry.Span) {
	r := a.getReq()
	r.ph = ph
	r.x = x
	r.target = target
	r.attempt = 0
	r.req.Start = a.unitSector(target.Offset)
	r.req.Count = a.cfg.UnitSectors
	r.req.Write = x.write
	r.req.Priority = prio
	r.req.Span = sp // always stored: pooled nodes must not leak stale spans
	a.disks[target.Disk].Submit(&r.req)
}

// reads builds read transfers for a set of locations.
func reads(locs []layout.Loc) []xfer {
	xs := make([]xfer, len(locs))
	for i, l := range locs {
		xs[i] = xfer{loc: l}
	}
	return xs
}

// writesOf builds write transfers for a set of locations.
func writesOf(locs []layout.Loc) []xfer {
	xs := make([]xfer, len(locs))
	for i, l := range locs {
		xs[i] = xfer{loc: l, write: true}
	}
	return xs
}

// newValue mints a fresh distinct content word for a user write.
func (a *Array) newValue() uint64 {
	a.writeSeq++
	return splitmix64(a.writeSeq | 1<<63)
}

// xorUnits XORs the current contents of a set of units.
func (a *Array) xorUnits(locs []layout.Loc) uint64 {
	var v uint64
	for _, l := range locs {
		v ^= a.unitVal(l)
	}
	return v
}

// qSum computes the Reed–Solomon sum Σ g^d·value_d of a set of data units,
// d being each unit's data ordinal within its stripe.
func (a *Array) qSum(stripe int64, locs []layout.Loc) uint64 {
	var q uint64
	for _, u := range locs {
		_, j := a.lay.Locate(u)
		d := layout.DataOrdinal(a.lay, stripe, j)
		q ^= gf256.MulWord(gf256.Exp(d), a.unitVal(u))
	}
	return q
}

// qTerm is one data unit's contribution to its stripe's Q word.
func (a *Array) qTerm(stripe int64, loc layout.Loc, v uint64) uint64 {
	_, j := a.lay.Locate(loc)
	return gf256.MulWord(gf256.Exp(layout.DataOrdinal(a.lay, stripe, j)), v)
}

// reconSources returns the units to read to reconstruct loc's contents.
// Single parity reads every other unit of the stripe; dual parity decodes
// a single erasure through one equation, so it skips the unneeded parity —
// Q for a lost data or P unit, P for a lost Q unit — reading G−2 units.
func (a *Array) reconSources(loc layout.Loc) []layout.Loc {
	if a.parities == 1 {
		return layout.SurvivingUnits(a.lay, loc)
	}
	stripe, jLost := a.lay.Locate(loc)
	skip := layout.ParityPosOf(a.lay, stripe, 1)
	if jLost == skip {
		skip = layout.ParityPosOf(a.lay, stripe, 0)
	}
	g := a.lay.G()
	out := make([]layout.Loc, 0, g-2)
	for j := 0; j < g; j++ {
		if j == jLost || j == skip {
			continue
		}
		out = append(out, a.lay.Unit(stripe, j))
	}
	return out
}

// reconValue computes loc's contents from its reconSources: the XOR of
// the sources (which for a data or P unit includes whatever balances the
// P equation), or — for a lost Q unit — the Reed–Solomon sum of the
// stripe's data units.
func (a *Array) reconValue(loc layout.Loc, srcs []layout.Loc) uint64 {
	if a.parities == 2 {
		stripe, j := a.lay.Locate(loc)
		if j == layout.ParityPosOf(a.lay, stripe, 1) {
			return a.qSum(stripe, srcs)
		}
	}
	return a.xorUnits(srcs)
}

// dataUnitsOf returns the stripe's data unit locations excluding `except`
// (pass an invalid Loc to keep all).
func (a *Array) dataUnitsOf(stripe int64, except layout.Loc) []layout.Loc {
	g := a.lay.G()
	out := make([]layout.Loc, 0, g-1)
	for j := 0; j < g; j++ {
		if layout.IsParityPos(a.lay, stripe, j) {
			continue
		}
		u := a.lay.Unit(stripe, j)
		if u != except {
			out = append(out, u)
		}
	}
	return out
}

// userOp tracks one user Read or Write through its phases. Nodes are
// pooled on the Array with every stage continuation pre-bound, so the
// fault-free request paths allocate nothing in steady state. Degraded-mode
// and repair paths still build ad-hoc closures — they are rare and
// latency-bound, not allocation-bound.
type userOp struct {
	a         *Array
	unit      int64
	loc       layout.Loc
	stripe    int64
	ploc      layout.Loc
	qloc      layout.Loc // Q parity unit (dual parity only)
	other     layout.Loc // small-write companion data unit
	value     uint64
	otherData uint64 // small-write companion's data
	oldData   uint64 // read-modify-write pre-read
	oldParity uint64
	newParity uint64
	oldQ      uint64 // dual-parity read-modify-write pre-read
	newQ      uint64
	dOrd      int // the written unit's data ordinal (Q coefficient index)
	readDone  func(value uint64)
	writeDone func()
	span      *telemetry.Span // root span handed over by the caller; nil when off
	phase     *telemetry.Span // open lifecycle-phase child, ended by the stage that retires it
	xs        [3]xfer         // phase transfer buffer; consumed synchronously by io

	// Stage continuations, bound once per node.
	readPlainFn   func([]xfer)
	writeLockedFn func()
	mirrorDoneFn  func([]xfer)
	swPreFn       func([]xfer)
	swRepairedFn  func()
	swCommitFn    func([]xfer)
	rmwPreFn      func([]xfer)
	rmwRepairedFn func()
	rmwCommitFn   func([]xfer)
	pqPreFn       func([]xfer)
	pqRepairedFn  func()
	pqCommitFn    func([]xfer)
	lostParityFn  func([]xfer)
	finishFn      func()
}

func (a *Array) getOp() *userOp {
	if n := len(a.opFree); n > 0 {
		op := a.opFree[n-1]
		a.opFree = a.opFree[:n-1]
		return op
	}
	op := &userOp{a: a}
	op.readPlainFn = op.readPlain
	op.writeLockedFn = op.writeLocked
	op.mirrorDoneFn = op.mirrorDone
	op.swPreFn = op.swPre
	op.swRepairedFn = op.swRepaired
	op.swCommitFn = op.swCommit
	op.rmwPreFn = op.rmwPre
	op.rmwRepairedFn = op.rmwRepaired
	op.rmwCommitFn = op.rmwCommit
	op.pqPreFn = op.pqPre
	op.pqRepairedFn = op.pqRepaired
	op.pqCommitFn = op.pqCommit
	op.lostParityFn = op.lostParity
	op.finishFn = op.finish
	return op
}

func (a *Array) putOp(op *userOp) {
	op.readDone = nil
	op.writeDone = nil
	op.span = nil
	op.phase = nil
	a.opFree = append(a.opFree, op)
}

// Read performs a user read of one data unit, invoking done with the value
// read. In degraded mode, reads of lost units reconstruct on the fly;
// under the Redirect algorithms, reads of already-reconstructed units go
// to the replacement disk.
func (a *Array) Read(unit int64, done func(value uint64)) {
	if unit < 0 || unit >= a.dataUnits {
		panic(fmt.Sprintf("array: data unit %d out of range [0,%d)", unit, a.dataUnits))
	}
	a.mUserReads.Inc()
	sp := a.takeOpSpan()
	loc := a.mapper.Loc(unit)
	if loc.Disk != a.failed || a.redirectableRead(loc) {
		op := a.getOp()
		op.loc = loc
		op.readDone = done
		op.span = sp
		op.xs[0] = xfer{loc: loc}
		a.phaseSpan = sp // segments attach to the root: one phase only
		a.io(op.xs[:1], userPriority, op.readPlainFn)
		return
	}
	// On-the-fly reconstruction under the stripe lock: a consistent
	// multi-unit read that must not interleave with parity updates.
	stripe, _ := a.lay.Locate(loc)
	lockSp := sp.Child(telemetry.PhaseLockWait, a.eng.Now())
	a.locks.acquire(stripe, func() {
		lockSp.End(a.eng.Now())
		// Re-evaluate: reconstruction or healing may have happened
		// while waiting for the lock.
		if loc.Disk != a.failed || a.redirectableRead(loc) {
			a.phaseSpan = sp
			a.io([]xfer{{loc: loc}}, userPriority, func(fails []xfer) {
				a.repairThen(stripe, fails, userPriority, func() {
					a.locks.release(stripe)
					done(a.unitVal(loc))
				})
			})
			return
		}
		surv := a.reconSources(loc)
		a.mOTFRecons.Inc()
		otf := sp.Child(telemetry.PhaseOTF, a.eng.Now())
		a.phaseSpan = otf
		a.io(reads(surv), userPriority, func(fails []xfer) {
			// An unreadable survivor means the lost unit is really gone
			// (two dead units in the stripe): repairThen records the
			// loss and restores out of band; the value read below is
			// the model's, standing in for the backup's.
			a.repairThen(stripe, fails, userPriority, func() {
				value := a.reconValue(loc, surv)
				otf.End(a.eng.Now())
				if a.cfg.Algorithm == RedirectPiggyback && (a.replacement || a.spareLay != nil) && !a.reconDone[loc.Offset] {
					// The user's data is ready now; the piggybacked
					// write to the replacement continues under the
					// stripe lock. Its span is a fresh root: the user's
					// response does not include it.
					done(value)
					pg := a.spans.Root(telemetry.PhasePiggyback, telemetry.KindRecon, unit, a.eng.Now())
					a.phaseSpan = pg
					a.io([]xfer{{loc: loc, write: true}}, userPriority, func(_ []xfer) {
						a.setUnitVal(loc, value)
						a.markReconstructed(loc.Offset)
						pg.End(a.eng.Now())
						a.locks.release(stripe)
					})
					return
				}
				a.locks.release(stripe)
				done(value)
			})
		})
	})
}

// readPlain completes the direct-read path. The clean case recycles the
// node before answering; the media-error case falls back to closures for
// the repair (rare, and its latency is dominated by disk accesses anyway).
func (op *userOp) readPlain(fails []xfer) {
	a, loc, done := op.a, op.loc, op.readDone
	a.putOp(op)
	if len(fails) == 0 {
		done(a.unitVal(loc))
		return
	}
	// Latent sector error: recover under the stripe lock (the repair
	// updates the platter, racing parity writers), then answer — the
	// user's latency includes the recovery.
	stripe, _ := a.lay.Locate(loc)
	a.locks.acquire(stripe, func() {
		a.repairLocked(stripe, fails, userPriority, func() {
			a.locks.release(stripe)
			done(a.unitVal(loc))
		})
	})
}

// redirectableRead reports whether a read of a lost unit may be serviced
// directly from its reconstructed copy (replacement disk or spare unit).
// During recovery only the Redirect algorithms do so; once a distributed-
// sparing reconstruction has completed, every algorithm serves spared
// units directly — recovery is over.
func (a *Array) redirectableRead(loc layout.Loc) bool {
	if !a.reconDone[loc.Offset] {
		return false
	}
	if a.spared {
		return true
	}
	return (a.replacement || a.spareLay != nil) &&
		(a.cfg.Algorithm == Redirect || a.cfg.Algorithm == RedirectPiggyback)
}

// Write performs a user write of one data unit, invoking done when the
// array has committed data and parity. All writes serialize on their
// stripe's lock because they read-modify-write the shared parity unit.
func (a *Array) Write(unit int64, done func()) {
	if unit < 0 || unit >= a.dataUnits {
		panic(fmt.Sprintf("array: data unit %d out of range [0,%d)", unit, a.dataUnits))
	}
	a.mUserWrites.Inc()
	op := a.getOp()
	op.unit = unit
	op.loc = a.mapper.Loc(unit)
	op.stripe, _ = a.lay.Locate(op.loc)
	op.value = a.newValue()
	op.writeDone = done
	op.span = a.takeOpSpan()
	op.phase = op.span.Child(telemetry.PhaseLockWait, a.eng.Now())
	a.locks.acquire(op.stripe, op.writeLockedFn)
}

// finish releases the stripe lock, recycles the node and delivers the
// write completion, closing whatever lifecycle phase was still open.
func (op *userOp) finish() {
	a, done := op.a, op.writeDone
	op.phase.End(a.eng.Now())
	a.locks.release(op.stripe)
	a.putOp(op)
	done()
}

// writeLocked chooses the write path with the stripe lock held, so the
// failure state it sees cannot change under it.
func (op *userOp) writeLocked() {
	a := op.a
	op.phase.End(a.eng.Now()) // lock wait is over
	op.phase = nil
	op.ploc = layout.ParityLoc(a.lay, op.stripe)
	if a.parities == 2 {
		op.writeLockedPQ()
		return
	}
	switch {
	case a.available(op.loc) && a.available(op.ploc):
		op.writeNormal()
	case !a.available(op.loc):
		op.phase = op.span.Child(telemetry.PhaseFold, a.eng.Now())
		a.writeLostData(op.unit, op.loc, op.stripe, op.ploc, op.value, op.phase, op.finishFn)
	default:
		// Parity is lost and not reconstructed: there is no value in
		// updating it, so the write is a single data access (§7); the
		// parity unit will be recomputed from data when its turn in
		// the sweep comes.
		op.phase = op.span.Child(telemetry.PhaseDataWrite, a.eng.Now())
		op.xs[0] = xfer{loc: op.loc, write: true}
		a.phaseSpan = op.phase
		a.io(op.xs[:1], userPriority, op.lostParityFn)
	}
}

func (op *userOp) lostParity(_ []xfer) {
	op.a.setUnitVal(op.loc, op.value)
	op.a.expected[op.unit] = op.value
	op.finish()
}

// writeLockedPQ chooses the dual-parity write path. Under the one-failed-
// disk model at most one unit of the stripe is unavailable (layout
// criterion 1), so the cases are: everything available (the six-access
// read-modify-write), the data unit lost (fold into both parities), or
// one parity lost (write data, delta-update the surviving parity).
func (op *userOp) writeLockedPQ() {
	a := op.a
	op.qloc = layout.ParityLocOf(a.lay, op.stripe, 1)
	_, j := a.lay.Locate(op.loc)
	op.dOrd = layout.DataOrdinal(a.lay, op.stripe, j)
	switch {
	case !a.available(op.loc):
		op.phase = op.span.Child(telemetry.PhaseFold, a.eng.Now())
		a.writeLostData(op.unit, op.loc, op.stripe, op.ploc, op.value, op.phase, op.finishFn)
	case a.available(op.ploc) && a.available(op.qloc):
		// Six-access read-modify-write: pre-read old data, P and Q, then
		// overwrite all three — the dual-parity small-write cost the
		// sweeps measure against α.
		op.phase = op.span.Child(telemetry.PhasePreread, a.eng.Now())
		op.oldData = a.unitVal(op.loc)
		op.oldParity = a.unitVal(op.ploc)
		op.oldQ = a.unitVal(op.qloc)
		op.xs[0] = xfer{loc: op.loc}
		op.xs[1] = xfer{loc: op.ploc}
		op.xs[2] = xfer{loc: op.qloc}
		a.phaseSpan = op.phase
		a.io(op.xs[:3], userPriority, op.pqPreFn)
	default:
		// One parity lost: delta-update the survivor alongside the data
		// write; the lost parity is recomputed when the sweep reaches it.
		op.writeLostOneParityPQ()
	}
}

func (op *userOp) pqPre(fails []xfer) {
	op.a.repairThen(op.stripe, fails, userPriority, op.pqRepairedFn)
}

func (op *userOp) pqRepaired() {
	a := op.a
	op.phase.End(a.eng.Now())
	op.phase = op.span.Child(telemetry.PhaseCommit, a.eng.Now())
	delta := op.oldData ^ op.value
	op.newParity = op.oldParity ^ delta
	op.newQ = op.oldQ ^ gf256.MulWord(gf256.Exp(op.dOrd), delta)
	op.xs[0] = xfer{loc: op.loc, write: true}
	op.xs[1] = xfer{loc: op.ploc, write: true}
	op.xs[2] = xfer{loc: op.qloc, write: true}
	a.phaseSpan = op.phase
	a.io(op.xs[:3], userPriority, op.pqCommitFn)
}

func (op *userOp) pqCommit(_ []xfer) {
	a := op.a
	a.setUnitVal(op.loc, op.value)
	a.setUnitVal(op.ploc, op.newParity)
	a.setUnitVal(op.qloc, op.newQ)
	a.expected[op.unit] = op.value
	op.finish()
}

// writeLostOneParityPQ writes a data unit whose stripe has exactly one
// parity unit lost: a four-access read-modify-write against the surviving
// parity (rare path; ad-hoc closures are fine here).
func (op *userOp) writeLostOneParityPQ() {
	a := op.a
	surv := op.qloc
	pSurvives := a.available(op.ploc)
	if pSurvives {
		surv = op.ploc
	}
	op.phase = op.span.Child(telemetry.PhasePreread, a.eng.Now())
	oldData := a.unitVal(op.loc)
	oldSurv := a.unitVal(surv)
	a.phaseSpan = op.phase
	a.io([]xfer{{loc: op.loc}, {loc: surv}}, userPriority, func(fails []xfer) {
		a.repairThen(op.stripe, fails, userPriority, func() {
			op.phase.End(a.eng.Now())
			op.phase = op.span.Child(telemetry.PhaseCommit, a.eng.Now())
			delta := oldData ^ op.value
			newSurv := oldSurv ^ delta
			if !pSurvives {
				newSurv = oldSurv ^ gf256.MulWord(gf256.Exp(op.dOrd), delta)
			}
			a.phaseSpan = op.phase
			a.io([]xfer{{loc: op.loc, write: true}, {loc: surv, write: true}}, userPriority, func(_ []xfer) {
				a.setUnitVal(op.loc, op.value)
				a.setUnitVal(surv, newSurv)
				a.expected[op.unit] = op.value
				op.finish()
			})
		})
	})
}

// writeNormal is the fault-free path, also used when the touched units are
// already reconstructed on the replacement: the four-access
// read-modify-write, or the three-access small-write when the stripe has
// exactly three units and the third is readable.
func (op *userOp) writeNormal() {
	a := op.a
	if a.lay.G() == 2 {
		// Mirroring degenerate: the parity unit is a copy of the data
		// unit, so the write is two plain writes with no pre-reads —
		// the G=2 declustered layout behaves as declustered mirroring
		// (Copeland & Keller's interleaved declustering, §3).
		op.phase = op.span.Child(telemetry.PhaseMirror, a.eng.Now())
		op.xs[0] = xfer{loc: op.loc, write: true}
		op.xs[1] = xfer{loc: op.ploc, write: true}
		a.phaseSpan = op.phase
		a.io(op.xs[:2], userPriority, op.mirrorDoneFn)
		return
	}
	// Contents feeding parity computations are sampled when the reads
	// are submitted, not when they complete: the stripe lock guarantees
	// no writer changes them in flight, while a concurrent Replace()
	// swaps the failed slot's content array and would otherwise make a
	// completion-time sample read fresh zeros instead of what the
	// platter returned.
	if a.cfg.SmallWriteOpt && a.lay.G() == 3 {
		others := a.dataUnitsOf(op.stripe, op.loc)
		if len(others) == 1 && a.available(others[0]) {
			op.other = others[0]
			op.otherData = a.unitVal(op.other)
			// Overlap the companion read with the data write, then
			// write parity computed from the two new values.
			op.phase = op.span.Child(telemetry.PhaseSWPreread, a.eng.Now())
			op.xs[0] = xfer{loc: op.other}
			op.xs[1] = xfer{loc: op.loc, write: true}
			a.phaseSpan = op.phase
			a.io(op.xs[:2], userPriority, op.swPreFn)
			return
		}
	}
	// Pre-read old data and parity, then overwrite both.
	op.phase = op.span.Child(telemetry.PhasePreread, a.eng.Now())
	op.oldData = a.unitVal(op.loc)
	op.oldParity = a.unitVal(op.ploc)
	op.xs[0] = xfer{loc: op.loc}
	op.xs[1] = xfer{loc: op.ploc}
	a.phaseSpan = op.phase
	a.io(op.xs[:2], userPriority, op.rmwPreFn)
}

func (op *userOp) mirrorDone(_ []xfer) {
	a := op.a
	a.setUnitVal(op.loc, op.value)
	a.setUnitVal(op.ploc, op.value)
	a.expected[op.unit] = op.value
	op.finish()
}

func (op *userOp) swPre(fails []xfer) {
	op.a.repairThen(op.stripe, fails, userPriority, op.swRepairedFn)
}

func (op *userOp) swRepaired() {
	a := op.a
	op.phase.End(a.eng.Now())
	op.phase = op.span.Child(telemetry.PhaseSWCommit, a.eng.Now())
	a.setUnitVal(op.loc, op.value)
	a.expected[op.unit] = op.value
	op.newParity = op.value ^ op.otherData
	op.xs[0] = xfer{loc: op.ploc, write: true}
	a.phaseSpan = op.phase
	a.io(op.xs[:1], userPriority, op.swCommitFn)
}

func (op *userOp) swCommit(_ []xfer) {
	op.a.setUnitVal(op.ploc, op.newParity)
	op.finish()
}

func (op *userOp) rmwPre(fails []xfer) {
	op.a.repairThen(op.stripe, fails, userPriority, op.rmwRepairedFn)
}

func (op *userOp) rmwRepaired() {
	op.phase.End(op.a.eng.Now())
	op.phase = op.span.Child(telemetry.PhaseCommit, op.a.eng.Now())
	op.newParity = op.oldParity ^ op.oldData ^ op.value
	op.xs[0] = xfer{loc: op.loc, write: true}
	op.xs[1] = xfer{loc: op.ploc, write: true}
	op.a.phaseSpan = op.phase
	op.a.io(op.xs[:2], userPriority, op.rmwCommitFn)
}

func (op *userOp) rmwCommit(_ []xfer) {
	a := op.a
	a.setUnitVal(op.loc, op.value)
	a.setUnitVal(op.ploc, op.newParity)
	a.expected[op.unit] = op.value
	op.finish()
}

// writeLostData handles a write whose data unit is on the failed slot and
// not yet reconstructed. Under Baseline (or with no replacement installed)
// the write folds into the parity unit: parity absorbs the new data so a
// later sweep reconstructs the new value. Under the other algorithms the
// new data also goes directly to the replacement, which counts as
// reconstruction.
func (a *Array) writeLostData(unit int64, loc layout.Loc, stripe int64, ploc layout.Loc, value uint64, sp *telemetry.Span, finish func()) {
	others := a.dataUnitsOf(stripe, loc) // surviving data units
	toReplacement := (a.replacement || a.spareLay != nil) && a.cfg.Algorithm != Baseline
	var qloc layout.Loc
	if a.parities == 2 {
		qloc = layout.ParityLocOf(a.lay, stripe, 1)
	}
	commitParity := func(newParity, newQ uint64) {
		a.phaseSpan = sp
		xs := make([]xfer, 0, 3)
		xs = append(xs, xfer{loc: ploc, write: true})
		if a.parities == 2 {
			xs = append(xs, xfer{loc: qloc, write: true})
		}
		if toReplacement {
			xs = append(xs, xfer{loc: loc, write: true})
		}
		a.io(xs, userPriority, func(_ []xfer) {
			a.setUnitVal(ploc, newParity)
			if a.parities == 2 {
				a.setUnitVal(qloc, newQ)
			}
			if toReplacement {
				a.setUnitVal(loc, value)
			}
			a.expected[unit] = value
			if toReplacement {
				a.markReconstructed(loc.Offset)
			}
			finish()
		})
	}
	if len(others) == 0 {
		// No surviving data beside the lost unit: G = 2 (mirroring
		// degenerate, parity is the lost unit's twin) or G = 3 dual parity
		// (P and Q encode the single data unit directly).
		commitParity(value, a.qTerm(stripe, loc, value))
		return
	}
	a.phaseSpan = sp
	a.io(reads(others), userPriority, func(fails []xfer) {
		// A failed survivor read: the stripe has two dead units, so the
		// value being folded into parity rests on a loss; repairThen
		// records it and restores before the fold continues.
		a.repairThen(stripe, fails, userPriority, func() {
			newP := a.xorUnits(others) ^ value
			var newQ uint64
			if a.parities == 2 {
				newQ = a.qSum(stripe, others) ^ a.qTerm(stripe, loc, value)
			}
			commitParity(newP, newQ)
		})
	})
}
