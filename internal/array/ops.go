package array

import (
	"fmt"

	"declust/internal/disk"
	"declust/internal/layout"
)

// xfer is one unit-sized disk transfer.
type xfer struct {
	loc   layout.Loc
	write bool
}

const (
	userPriority  = 0
	reconPriority = -1
	scrubPriority = -2
)

// Transient-timeout retries back off exponentially from retryBaseMS,
// doubling up to retryBaseMS << retryMaxShift per attempt. Retries are
// unbounded: each attempt draws an independent outcome (the injector caps
// the timeout rate at 0.9), so service terminates with probability one.
const (
	retryBaseMS   = 1.0
	retryMaxShift = 5
)

// io issues a set of transfers in parallel and calls done when the last
// completes, passing the transfers that failed with a media error (always
// reads under the stock injector; empty on a clean phase). Transient
// timeouts are retried internally and never surface.
//
// Writes addressed to a failed slot with no replacement are dropped: a
// disk can fail between an operation's phases (its path was chosen while
// the disk was healthy), and a fail-stop disk simply loses the write — the
// stripe stays recoverable through the surviving write of the pair, which
// is why parity and data commit in the same phase. Reads of such a slot,
// or of a not-yet-reconstructed replacement unit, can never be correct and
// panic as driver bugs.
func (a *Array) io(xs []xfer, prio int, done func(fails []xfer)) {
	if len(xs) == 0 {
		panic("array: empty io phase")
	}
	n := len(xs)
	var fails []xfer
	finishOne := func() {
		n--
		if n == 0 {
			done(fails)
		}
	}
	for _, x := range xs {
		if x.loc.Disk == a.failed {
			if !x.write {
				if !a.replacement && a.spareLay == nil {
					panic(fmt.Sprintf("array: read of failed disk %d with no replacement", x.loc.Disk))
				}
				if !a.reconDone[x.loc.Offset] {
					panic(fmt.Sprintf("array: read of unreconstructed unit %v", x.loc))
				}
			} else if !a.replacement && a.spareLay == nil {
				// Dropped write to a dead disk.
				finishOne()
				continue
			}
		}
		// Under distributed sparing, units of the failed disk live (or
		// will live) in their stripes' spare slots on survivors.
		target := a.phys(x.loc)
		a.submitIO(x, target, prio, 0, func(st disk.Status) {
			if st == disk.MediaError {
				a.fstats.MediaErrors++
				fails = append(fails, x)
			}
			finishOne()
		})
	}
}

// submitIO issues one transfer to its resolved target, retrying transient
// timeouts with capped exponential backoff; OK and MediaError outcomes
// surface to onDone. The target is resolved once: a retry lands on the
// same drive slot the operation chose, even if the array's failure state
// moved underneath it (the enclosing phase's drop/panic rules already ran).
func (a *Array) submitIO(x xfer, target layout.Loc, prio, attempt int, onDone func(disk.Status)) {
	a.disks[target.Disk].Submit(&disk.Request{
		Start:    a.unitSector(target.Offset),
		Count:    a.cfg.UnitSectors,
		Write:    x.write,
		Priority: prio,
		OnDone: func(_, _ float64, st disk.Status) {
			if st != disk.Timeout {
				onDone(st)
				return
			}
			a.fstats.Retries++
			a.mRetries.Inc()
			shift := attempt
			if shift > retryMaxShift {
				shift = retryMaxShift
			}
			a.eng.Schedule(retryBaseMS*float64(int64(1)<<shift), func() {
				a.submitIO(x, target, prio, attempt+1, onDone)
			})
		},
	})
}

// reads builds read transfers for a set of locations.
func reads(locs []layout.Loc) []xfer {
	xs := make([]xfer, len(locs))
	for i, l := range locs {
		xs[i] = xfer{loc: l}
	}
	return xs
}

// writesOf builds write transfers for a set of locations.
func writesOf(locs []layout.Loc) []xfer {
	xs := make([]xfer, len(locs))
	for i, l := range locs {
		xs[i] = xfer{loc: l, write: true}
	}
	return xs
}

// newValue mints a fresh distinct content word for a user write.
func (a *Array) newValue() uint64 {
	a.writeSeq++
	return splitmix64(a.writeSeq | 1<<63)
}

// xorUnits XORs the current contents of a set of units.
func (a *Array) xorUnits(locs []layout.Loc) uint64 {
	var v uint64
	for _, l := range locs {
		v ^= a.unitVal(l)
	}
	return v
}

// dataUnitsOf returns the stripe's data unit locations excluding `except`
// (pass an invalid Loc to keep all).
func (a *Array) dataUnitsOf(stripe int64, except layout.Loc) []layout.Loc {
	g := a.lay.G()
	pp := a.lay.ParityPos(stripe)
	out := make([]layout.Loc, 0, g-1)
	for j := 0; j < g; j++ {
		if j == pp {
			continue
		}
		u := a.lay.Unit(stripe, j)
		if u != except {
			out = append(out, u)
		}
	}
	return out
}

// Read performs a user read of one data unit, invoking done with the value
// read. In degraded mode, reads of lost units reconstruct on the fly;
// under the Redirect algorithms, reads of already-reconstructed units go
// to the replacement disk.
func (a *Array) Read(unit int64, done func(value uint64)) {
	if unit < 0 || unit >= a.dataUnits {
		panic(fmt.Sprintf("array: data unit %d out of range [0,%d)", unit, a.dataUnits))
	}
	a.mUserReads.Inc()
	loc := a.mapper.Loc(unit)
	plain := func() {
		a.io([]xfer{{loc: loc}}, userPriority, func(fails []xfer) {
			if len(fails) == 0 {
				done(a.unitVal(loc))
				return
			}
			// Latent sector error: recover under the stripe lock (the
			// repair updates the platter, racing parity writers), then
			// answer — the user's latency includes the recovery.
			stripe, _ := a.lay.Locate(loc)
			a.locks.acquire(stripe, func() {
				a.repairLocked(stripe, fails, userPriority, func() {
					a.locks.release(stripe)
					done(a.unitVal(loc))
				})
			})
		})
	}
	if loc.Disk != a.failed || a.redirectableRead(loc) {
		plain()
		return
	}
	// On-the-fly reconstruction under the stripe lock: a consistent
	// multi-unit read that must not interleave with parity updates.
	stripe, _ := a.lay.Locate(loc)
	a.locks.acquire(stripe, func() {
		// Re-evaluate: reconstruction or healing may have happened
		// while waiting for the lock.
		if loc.Disk != a.failed || a.redirectableRead(loc) {
			a.io([]xfer{{loc: loc}}, userPriority, func(fails []xfer) {
				a.repairThen(stripe, fails, userPriority, func() {
					a.locks.release(stripe)
					done(a.unitVal(loc))
				})
			})
			return
		}
		surv := layout.SurvivingUnits(a.lay, loc)
		a.mOTFRecons.Inc()
		a.io(reads(surv), userPriority, func(fails []xfer) {
			// An unreadable survivor means the lost unit is really gone
			// (two dead units in the stripe): repairThen records the
			// loss and restores out of band; the value read below is
			// the model's, standing in for the backup's.
			a.repairThen(stripe, fails, userPriority, func() {
				value := a.xorUnits(surv)
				if a.cfg.Algorithm == RedirectPiggyback && (a.replacement || a.spareLay != nil) && !a.reconDone[loc.Offset] {
					// The user's data is ready now; the piggybacked
					// write to the replacement continues under the
					// stripe lock.
					done(value)
					a.io([]xfer{{loc: loc, write: true}}, userPriority, func(_ []xfer) {
						a.setUnitVal(loc, value)
						a.markReconstructed(loc.Offset)
						a.locks.release(stripe)
					})
					return
				}
				a.locks.release(stripe)
				done(value)
			})
		})
	})
}

// redirectableRead reports whether a read of a lost unit may be serviced
// directly from its reconstructed copy (replacement disk or spare unit).
// During recovery only the Redirect algorithms do so; once a distributed-
// sparing reconstruction has completed, every algorithm serves spared
// units directly — recovery is over.
func (a *Array) redirectableRead(loc layout.Loc) bool {
	if !a.reconDone[loc.Offset] {
		return false
	}
	if a.spared {
		return true
	}
	return (a.replacement || a.spareLay != nil) &&
		(a.cfg.Algorithm == Redirect || a.cfg.Algorithm == RedirectPiggyback)
}

// Write performs a user write of one data unit, invoking done when the
// array has committed data and parity. All writes serialize on their
// stripe's lock because they read-modify-write the shared parity unit.
func (a *Array) Write(unit int64, done func()) {
	if unit < 0 || unit >= a.dataUnits {
		panic(fmt.Sprintf("array: data unit %d out of range [0,%d)", unit, a.dataUnits))
	}
	a.mUserWrites.Inc()
	loc := a.mapper.Loc(unit)
	stripe, _ := a.lay.Locate(loc)
	value := a.newValue()
	a.locks.acquire(stripe, func() {
		a.writeLocked(unit, loc, stripe, value, done)
	})
}

// writeLocked chooses the write path with the stripe lock held, so the
// failure state it sees cannot change under it.
func (a *Array) writeLocked(unit int64, loc layout.Loc, stripe int64, value uint64, done func()) {
	ploc := layout.ParityLoc(a.lay, stripe)
	finish := func() {
		a.locks.release(stripe)
		done()
	}
	switch {
	case a.available(loc) && a.available(ploc):
		a.writeNormal(unit, loc, stripe, ploc, value, finish)
	case !a.available(loc):
		a.writeLostData(unit, loc, stripe, ploc, value, finish)
	default:
		// Parity is lost and not reconstructed: there is no value in
		// updating it, so the write is a single data access (§7); the
		// parity unit will be recomputed from data when its turn in
		// the sweep comes.
		a.io([]xfer{{loc: loc, write: true}}, userPriority, func(_ []xfer) {
			a.setUnitVal(loc, value)
			a.expected[unit] = value
			finish()
		})
	}
}

// writeNormal is the fault-free path, also used when the touched units are
// already reconstructed on the replacement: the four-access
// read-modify-write, or the three-access small-write when the stripe has
// exactly three units and the third is readable.
func (a *Array) writeNormal(unit int64, loc layout.Loc, stripe int64, ploc layout.Loc, value uint64, finish func()) {
	if a.lay.G() == 2 {
		// Mirroring degenerate: the parity unit is a copy of the data
		// unit, so the write is two plain writes with no pre-reads —
		// the G=2 declustered layout behaves as declustered mirroring
		// (Copeland & Keller's interleaved declustering, §3).
		a.io([]xfer{{loc: loc, write: true}, {loc: ploc, write: true}}, userPriority, func(_ []xfer) {
			a.setUnitVal(loc, value)
			a.setUnitVal(ploc, value)
			a.expected[unit] = value
			finish()
		})
		return
	}
	// Contents feeding parity computations are sampled when the reads
	// are submitted, not when they complete: the stripe lock guarantees
	// no writer changes them in flight, while a concurrent Replace()
	// swaps the failed slot's content array and would otherwise make a
	// completion-time sample read fresh zeros instead of what the
	// platter returned.
	if a.cfg.SmallWriteOpt && a.lay.G() == 3 {
		others := a.dataUnitsOf(stripe, loc)
		if len(others) == 1 && a.available(others[0]) {
			other := others[0]
			otherData := a.unitVal(other)
			// Overlap the companion read with the data write, then
			// write parity computed from the two new values.
			a.io([]xfer{{loc: other}, {loc: loc, write: true}}, userPriority, func(fails []xfer) {
				a.repairThen(stripe, fails, userPriority, func() {
					a.setUnitVal(loc, value)
					a.expected[unit] = value
					parity := value ^ otherData
					a.io([]xfer{{loc: ploc, write: true}}, userPriority, func(_ []xfer) {
						a.setUnitVal(ploc, parity)
						finish()
					})
				})
			})
			return
		}
	}
	// Pre-read old data and parity, then overwrite both.
	oldData := a.unitVal(loc)
	oldParity := a.unitVal(ploc)
	a.io([]xfer{{loc: loc}, {loc: ploc}}, userPriority, func(fails []xfer) {
		a.repairThen(stripe, fails, userPriority, func() {
			newParity := oldParity ^ oldData ^ value
			a.io([]xfer{{loc: loc, write: true}, {loc: ploc, write: true}}, userPriority, func(_ []xfer) {
				a.setUnitVal(loc, value)
				a.setUnitVal(ploc, newParity)
				a.expected[unit] = value
				finish()
			})
		})
	})
}

// writeLostData handles a write whose data unit is on the failed slot and
// not yet reconstructed. Under Baseline (or with no replacement installed)
// the write folds into the parity unit: parity absorbs the new data so a
// later sweep reconstructs the new value. Under the other algorithms the
// new data also goes directly to the replacement, which counts as
// reconstruction.
func (a *Array) writeLostData(unit int64, loc layout.Loc, stripe int64, ploc layout.Loc, value uint64, finish func()) {
	others := a.dataUnitsOf(stripe, loc) // G-2 surviving data units
	toReplacement := (a.replacement || a.spareLay != nil) && a.cfg.Algorithm != Baseline
	commitParity := func(newParity uint64) {
		if toReplacement {
			a.io([]xfer{{loc: ploc, write: true}, {loc: loc, write: true}}, userPriority, func(_ []xfer) {
				a.setUnitVal(ploc, newParity)
				a.setUnitVal(loc, value)
				a.expected[unit] = value
				a.markReconstructed(loc.Offset)
				finish()
			})
			return
		}
		a.io([]xfer{{loc: ploc, write: true}}, userPriority, func(_ []xfer) {
			a.setUnitVal(ploc, newParity)
			a.expected[unit] = value
			finish()
		})
	}
	if len(others) == 0 {
		// G = 2 (mirroring degenerate): parity is the lost unit's twin.
		commitParity(value)
		return
	}
	a.io(reads(others), userPriority, func(fails []xfer) {
		// A failed survivor read: the stripe has two dead units, so the
		// value being folded into parity rests on a loss; repairThen
		// records it and restores before the fold continues.
		a.repairThen(stripe, fails, userPriority, func() {
			commitParity(a.xorUnits(others) ^ value)
		})
	})
}
