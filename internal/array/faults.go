package array

import (
	"fmt"

	"declust/internal/layout"
	"declust/internal/metrics"
)

// FaultStats counts the array driver's fault handling.
type FaultStats struct {
	// Retries counts transient timeouts absorbed by backoff-and-retry.
	Retries int64
	// MediaErrors counts transfers that surfaced a latent sector error.
	MediaErrors int64
	// LatentRepairs counts units rebuilt from parity after a media error.
	LatentRepairs int64
	// LostUnits counts units the redundancy could not rebuild — real data
	// loss, restored out of band so the simulation can continue.
	LostUnits int64
}

// FaultStats returns a copy of the fault counters.
func (a *Array) FaultStats() FaultStats { return a.fstats }

// DataLossEvent records one stripe losing more units than single-failure
// redundancy can rebuild: a media error on a survivor of a degraded
// stripe, two media errors in one stripe, or (via SecondFail) a second
// whole-disk failure.
type DataLossEvent struct {
	TMS    float64
	Stripe int64
	// Units are the unreadable stripe units at the time of loss.
	Units []layout.Loc
}

// DataLosses returns a copy of the recorded per-stripe loss events.
// Whole-disk double failures are summarized in DoubleFailures instead of
// being expanded to one event per stripe.
func (a *Array) DataLosses() []DataLossEvent {
	out := make([]DataLossEvent, len(a.lossEvents))
	copy(out, a.lossEvents)
	return out
}

// recordLoss books units beyond redundancy's reach. The model's contents
// are not erased — the continuation rewrites the units "from backup" — so
// consistency checks stay meaningful while the loss is fully accounted.
func (a *Array) recordLoss(stripe int64, units []layout.Loc) {
	a.lossEvents = append(a.lossEvents, DataLossEvent{
		TMS: a.eng.Now(), Stripe: stripe,
		Units: append([]layout.Loc(nil), units...),
	})
	a.fstats.LostUnits += int64(len(units))
	a.mLostUnits.Add(int64(len(units)))
	if a.tracer != nil {
		a.tracer.Fault(metrics.FaultEvent{
			Ev: metrics.EvDataLoss, TMS: a.eng.Now(),
			Stripe: stripe, LostUnits: len(units),
		})
	}
}

// repairThen continues an operation whose read phase may have surfaced
// media errors: with none it continues immediately, otherwise it repairs
// under the already-held stripe lock first.
func (a *Array) repairThen(stripe int64, fails []xfer, prio int, cont func()) {
	if len(fails) == 0 {
		cont()
		return
	}
	a.repairLocked(stripe, fails, prio, cont)
}

// repairLocked handles media-errored reads of one stripe, its lock held.
// Each unreadable unit is classified: recoverable when the stripe's total
// dead units (media-errored or unavailable) fit within the code's
// correction power — one for single parity, two for P+Q — lost otherwise.
// Recoverable units charge survivor reads plus a rewrite; lost units are
// recorded as a DataLossEvent and restored out of band — a rewrite, as if
// from backup — so the simulation, like the array operator, carries on.
// The rewrite remaps the latent sectors either way. Media errors struck
// during the repair's own survivor reads stay latent for the scrubber or
// a later read to find.
func (a *Array) repairLocked(stripe int64, fails []xfer, prio int, cont func()) {
	bad := make(map[layout.Loc]bool, len(fails))
	for _, x := range fails {
		bad[x.loc] = true
	}
	g := a.lay.G()
	dead := 0
	for j := 0; j < g; j++ {
		u := a.lay.Unit(stripe, j)
		if bad[u] || !a.available(u) {
			dead++
		}
	}
	var recov, lost []layout.Loc
	for _, x := range fails {
		if dead <= a.parities {
			recov = append(recov, x.loc)
		} else {
			lost = append(lost, x.loc)
		}
	}
	if len(recov) > 0 {
		a.fstats.LatentRepairs += int64(len(recov))
		a.mRepairs.Add(int64(len(recov)))
		if a.tracer != nil {
			for _, b := range recov {
				a.tracer.Fault(metrics.FaultEvent{
					Ev: metrics.EvRepair, TMS: a.eng.Now(),
					Disk: b.Disk, Stripe: stripe,
				})
			}
		}
	}
	if len(lost) > 0 {
		a.recordLoss(stripe, lost)
	}
	rewrite := func() {
		a.io(writesOf(append(recov, lost...)), prio, func(_ []xfer) { cont() })
	}
	if len(recov) == 0 {
		rewrite()
		return
	}
	// One survivor pass feeds every recoverable rebuild.
	var srcs []layout.Loc
	for j := 0; j < g; j++ {
		u := a.lay.Unit(stripe, j)
		if !bad[u] && a.available(u) {
			srcs = append(srcs, u)
		}
	}
	if len(srcs) == 0 {
		rewrite()
		return
	}
	a.io(reads(srcs), prio, func(_ []xfer) { rewrite() })
}

// DoubleFailure summarizes a true second whole-disk failure while the
// array is degraded: the event declustering's partial-loss advantage is
// about. Under single parity, declustering loses only the stripes with
// units on both failed disks — the balance property makes that fraction of
// the at-risk stripes exactly α = (G−1)/(C−1) — while RAID5 (G = C) loses
// every one. Under P+Q the two-erasure decode covers every such stripe:
// StripesLost collapses to zero and the double-dead stripes are counted
// in StripesSurvived instead.
type DoubleFailure struct {
	FirstDisk  int
	SecondDisk int
	TMS        float64
	// StripesAtRisk counts stripes that still had an unrecovered unit of
	// the first failure when the second disk died.
	StripesAtRisk int64
	// StripesLost and UnitsLost count stripes with more dead units than
	// the code corrects (two for single parity, three for P+Q), and those
	// dead units — data the redundancy cannot rebuild.
	StripesLost int64
	UnitsLost   int64
	// StripesSurvived counts stripes with two dead units that the P+Q
	// code still decodes — the stripes a single-parity layout would have
	// lost. Always zero under single parity.
	StripesSurvived int64
}

// DoubleFailures returns a copy of the recorded second-failure events.
func (a *Array) DoubleFailures() []DoubleFailure {
	out := make([]DoubleFailure, len(a.doubleFailures))
	copy(out, a.doubleFailures)
	return out
}

// SecondFail models disk d dying while the array is already degraded. It
// enumerates exactly which stripes lost two or more units — counting a
// unit dead when it is unrecovered from the first failure or physically
// lives on d (including reconstructed copies and spare units) — then
// models an immediate out-of-band restore of d (its modeled contents were
// never erased; its latent sectors are cleared), so the array returns to
// single-failure mode and recovery continues. The damage report is
// returned and retained (DoubleFailures, FaultStats.LostUnits).
func (a *Array) SecondFail(d int) (DoubleFailure, error) {
	if a.failed < 0 {
		return DoubleFailure{}, fmt.Errorf("array: not degraded; use Fail for the first failure")
	}
	if d == a.failed {
		return DoubleFailure{}, fmt.Errorf("array: disk %d is the already-failed disk", d)
	}
	if d < 0 || d >= len(a.disks) {
		return DoubleFailure{}, fmt.Errorf("array: no disk %d", d)
	}
	df := DoubleFailure{FirstDisk: a.failed, SecondDisk: d, TMS: a.eng.Now()}
	g := a.lay.G()
	for s := int64(0); s < a.numStripes; s++ {
		atRisk := false
		dead := 0
		for j := 0; j < g; j++ {
			u := a.lay.Unit(s, j)
			if !a.available(u) {
				atRisk = true
				dead++
				continue
			}
			if a.phys(u).Disk == d {
				dead++
			}
		}
		if atRisk {
			df.StripesAtRisk++
		}
		switch {
		case dead > a.parities:
			df.StripesLost++
			df.UnitsLost += int64(dead)
		case dead >= 2:
			df.StripesSurvived++
		}
	}
	a.doubleFailures = append(a.doubleFailures, df)
	a.fstats.LostUnits += df.UnitsLost
	a.mLostUnits.Add(df.UnitsLost)
	if a.tracer != nil {
		a.tracer.Fault(metrics.FaultEvent{
			Ev: metrics.EvDataLoss, TMS: df.TMS, Disk: d,
			Stripe: -1, LostUnits: int(df.UnitsLost),
		})
	}
	if a.cfg.Faults != nil {
		a.cfg.Faults.ResetDisk(d)
	}
	return df, nil
}

// FailReplacement models the replacement disk itself dying mid-rebuild:
// any running reconstruction aborts, the progress bitmap resets (the next
// drive arrives blank), and the slot reverts to failed-without-
// replacement. Install another drive with Replace and call Reconstruct to
// start over. Contrast InterruptRecon, which stops the sweep but keeps
// the replacement and the checkpoint.
func (a *Array) FailReplacement() error {
	if a.failed < 0 || !a.replacement {
		return fmt.Errorf("array: no replacement disk installed")
	}
	if a.reconActive {
		a.abortRecon()
	}
	a.replacement = false
	for i := range a.reconDone {
		a.reconDone[i] = false
	}
	return nil
}
