// Package array implements the RAID striping driver of the paper: a
// single-failure-correcting disk array layered on the layout and disk
// packages, with fault-free, degraded and reconstruction operating modes
// and the four reconstruction algorithms of §8 (baseline, user-writes,
// redirection of reads, redirection plus piggybacking of writes).
//
// The driver mirrors the Sprite striping driver's behaviour that the paper
// simulates: it has no cache and no control of disk timing, so a user
// write is four independent disk accesses (pre-read data and parity, write
// data and parity), with the three-access variant when a parity stripe has
// only three units, and degraded-mode accesses reconstruct on the fly.
//
// Unlike a timing-only simulator, the array carries real unit contents
// (one 64-bit word per 4 KB unit, parity = XOR over the stripe), so every
// algorithm's correctness — not just its timing — is checked by tests.
package array

import (
	"fmt"

	"declust/internal/disk"
	"declust/internal/fault"
	"declust/internal/gf256"
	"declust/internal/layout"
	"declust/internal/metrics"
	"declust/internal/sim"
	"declust/internal/stats"
	"declust/internal/telemetry"
)

// ReconAlgorithm selects how much non-reconstruction work is sent to the
// replacement disk during recovery (§8's four algorithms).
type ReconAlgorithm int

const (
	// Baseline sends no user work to the replacement: user writes to
	// unreconstructed units fold into the parity unit, and reads of
	// already-reconstructed units still reconstruct on the fly.
	Baseline ReconAlgorithm = iota
	// UserWrites sends only user writes targeted at unreconstructed
	// units of the failed disk directly to the replacement.
	UserWrites
	// Redirect adds redirection of reads: user reads of
	// already-reconstructed units are serviced by the replacement.
	Redirect
	// RedirectPiggyback adds piggybacking of writes: user reads that
	// reconstruct on the fly also write the result to the replacement.
	RedirectPiggyback
)

func (a ReconAlgorithm) String() string {
	switch a {
	case Baseline:
		return "baseline"
	case UserWrites:
		return "user-writes"
	case Redirect:
		return "redirect"
	case RedirectPiggyback:
		return "redirect+piggyback"
	default:
		return fmt.Sprintf("ReconAlgorithm(%d)", int(a))
	}
}

// Config assembles an array.
type Config struct {
	Layout layout.Layout
	Geom   disk.Geometry
	// UnitSectors is the stripe unit size in sectors (8 = 4 KB).
	UnitSectors int
	// CvscanBias is the V(R) scheduling bias for every disk.
	CvscanBias float64
	// SchedPolicy selects each disk's queue scheduler; the zero value is
	// CVSCAN, the original behaviour.
	SchedPolicy disk.Policy
	// ReadAheadTracks enables per-disk track read-ahead buffers of that
	// many tracks; 0 disables them.
	ReadAheadTracks int
	// PrioAgeMS bounds scheduling-class starvation: a queued request older
	// than this competes in the top class regardless of its priority.
	// 0 keeps strict class domination.
	PrioAgeMS float64
	// Algorithm selects the reconstruction algorithm.
	Algorithm ReconAlgorithm
	// ReconProcs is the number of parallel reconstruction processes
	// started by Reconstruct (the paper uses 1 and 8).
	ReconProcs int
	// SmallWriteOpt enables the three-access write used when a parity
	// stripe has exactly three units (the paper's α = 0.1 exception).
	SmallWriteOpt bool
	// ReconLowPriority runs reconstruction accesses in a lower disk
	// scheduling class than user accesses (paper §9 future work).
	ReconLowPriority bool
	// ReconThrottleCyclesPerSec caps each reconstruction process's
	// cycle rate; 0 means unthrottled (paper §9 future work).
	ReconThrottleCyclesPerSec float64
	// DataMapper assigns logical data units to stripe units; nil selects
	// the paper's stripe-index mapping (layout.StripeIndexMapper).
	DataMapper layout.DataMapper
	// DistributedSparing reconstructs lost units into per-stripe spare
	// units spread over the surviving disks instead of onto a
	// replacement disk. Requires a Layout implementing
	// layout.SpareLayout (see layout.NewSpared).
	DistributedSparing bool
	// Faults, when non-nil, injects latent sector errors and transient
	// timeouts into every drive (including replacements installed later).
	// Nil leaves the drives perfect: no hook is installed, no random
	// draw ever happens, and the simulation is byte-identical to one
	// built without fault support.
	Faults *fault.Injector
	// Metrics, when non-nil, receives operation counters (user
	// reads/writes, on-the-fly reconstructions, reconstruction cycles).
	// Nil disables them at zero cost on the I/O paths.
	Metrics *metrics.Registry
	// Tracer, when non-nil, receives reconstruction lifecycle events.
	Tracer metrics.Tracer
	// Spans, when non-nil, records request-lifecycle spans: array phases
	// (lock wait, pre-reads, commits, on-the-fly reconstruction) and
	// reconstruction cycles, with per-disk segments beneath them. Nil —
	// the default — costs the I/O paths only nil checks.
	Spans *telemetry.Tracer
}

// Array is a simulated redundant disk array under a striping driver.
type Array struct {
	eng    *sim.Engine
	cfg    Config
	lay    layout.Layout
	mapper layout.DataMapper
	// parities is the layout's parity units per stripe: 1 (P, the paper's
	// model) or 2 (P+Q, the RAID-6-style double-failure code). With 2,
	// writes maintain both parity words (the six-access read-modify-write)
	// and degraded reads decode through whichever equations survive.
	parities int

	disks        []*disk.Disk
	unitsPerDisk int64 // usable units per disk (whole allocation periods)
	numStripes   int64
	dataUnits    int64

	// Failure state. failed == -1 means fault-free.
	failed      int
	replacement bool   // a fresh disk occupies the failed slot
	reconDone   []bool // per-offset: unit at (failed, offset) is valid on the replacement/spare
	spareLay    layout.SpareLayout
	spared      bool // distributed sparing finished; array serves from spares

	locks lockTable

	// Contents: one word per unit per disk; parity units hold the XOR of
	// their stripe's data words. expected mirrors the latest value
	// logically written to each data unit.
	contents [][]uint64
	expected []uint64
	writeSeq uint64

	// Reconstruction bookkeeping. reconEpoch distinguishes reconstruction
	// runs: every deferred continuation captures the epoch at issue and
	// quietly dies if an abort (or completion) bumped it meanwhile.
	reconActive    bool
	reconRemaining int64
	reconTotal     int64
	reconCursor    int64
	reconStartMS   float64
	reconEndMS     float64
	reconProcsLive int
	reconEpoch     int
	reconOnDone    func()
	reconCycles    int64
	reconReads     []int64 // per-disk survivor units read by the sweep
	readPhase      stats.Sample
	writePhase     stats.Sample

	// Fault handling (see faults.go, scrub.go).
	fstats         FaultStats
	lossEvents     []DataLossEvent
	doubleFailures []DoubleFailure
	scrubOn        bool
	scrubEv        sim.Timer
	scrubCursor    int64
	scrubSpacing   float64
	scrubStats     ScrubStats

	// Free lists for the I/O hot path (see ops.go). Both grow to the
	// array's peak concurrency and are reused for the run's lifetime, so
	// steady-state phases and transfers allocate nothing.
	reqFree   []*ioReq
	phaseFree []*ioPhase
	opFree    []*userOp

	// Instrumentation. The counters are nil (no-op) without a registry;
	// tracer calls are guarded by nil checks.
	tracer  metrics.Tracer
	diskObs []func(slot int, e disk.Event)

	// Span tracing (nil-safe no-ops when Config.Spans is nil). opSpan is
	// the parent span handed over by the caller for the next synchronous
	// Read/Write/ReadRange/WriteRange; phaseSpan is the phase the next io
	// call's transfers belong to. Both are consumed (cleared) by the
	// callee, so stale spans cannot leak across operations.
	spans     *telemetry.Tracer
	opSpan    *telemetry.Span
	phaseSpan *telemetry.Span

	mUserReads  *metrics.Counter
	mUserWrites *metrics.Counter
	mOTFRecons  *metrics.Counter
	mReconCyc   *metrics.Counter
	mRetries    *metrics.Counter
	mRepairs    *metrics.Counter
	mLostUnits  *metrics.Counter
}

// New builds a fault-free array and initializes contents and parity.
func New(eng *sim.Engine, cfg Config) (*Array, error) {
	if cfg.Layout == nil {
		return nil, fmt.Errorf("array: nil layout")
	}
	if err := cfg.Geom.Validate(); err != nil {
		return nil, err
	}
	if cfg.UnitSectors <= 0 {
		return nil, fmt.Errorf("array: unit size %d sectors", cfg.UnitSectors)
	}
	if cfg.ReconProcs <= 0 {
		cfg.ReconProcs = 1
	}
	rawUnits := cfg.Geom.TotalSectors() / int64(cfg.UnitSectors)
	usable := layout.UsableUnitsPerDisk(cfg.Layout, rawUnits)
	if usable == 0 {
		return nil, fmt.Errorf("array: disk of %d units cannot hold one allocation period (%d units)",
			rawUnits, cfg.Layout.UnitsPerDiskPerPeriod())
	}
	mapper := cfg.DataMapper
	if mapper == nil {
		mapper = layout.StripeIndexMapper{L: cfg.Layout}
	}
	parities := layout.NumParities(cfg.Layout)
	if parities < 1 || parities > 2 {
		return nil, fmt.Errorf("array: layout has %d parity units per stripe; 1 (P) or 2 (P+Q) supported", parities)
	}
	var spareLay layout.SpareLayout
	if cfg.DistributedSparing {
		sl, ok := cfg.Layout.(layout.SpareLayout)
		if !ok {
			return nil, fmt.Errorf("array: distributed sparing needs a spare-bearing layout (layout.NewSpared)")
		}
		if parities != 1 {
			return nil, fmt.Errorf("array: distributed sparing supports single parity only")
		}
		spareLay = sl
	}
	a := &Array{
		eng:          eng,
		cfg:          cfg,
		lay:          cfg.Layout,
		mapper:       mapper,
		parities:     parities,
		unitsPerDisk: usable,
		numStripes:   layout.UsableStripes(cfg.Layout, rawUnits),
		dataUnits:    layout.DataUnits(cfg.Layout, rawUnits),
		failed:       -1,
		spareLay:     spareLay,
		tracer:       cfg.Tracer,
		spans:        cfg.Spans,
	}
	if reg := cfg.Metrics; reg != nil {
		a.mUserReads = reg.Counter("array_user_reads")
		a.mUserWrites = reg.Counter("array_user_writes")
		a.mOTFRecons = reg.Counter("array_onthefly_reconstructions")
		a.mReconCyc = reg.Counter("array_recon_cycles")
		if cfg.Faults != nil {
			// Registered only with an injector so fault-free exports stay
			// byte-identical to builds without fault support.
			a.mRetries = reg.Counter("array_transient_retries")
			a.mRepairs = reg.Counter("array_latent_repairs")
			a.mLostUnits = reg.Counter("array_lost_units")
		}
	}
	c := a.lay.Disks()
	a.reconReads = make([]int64, c)
	a.disks = make([]*disk.Disk, c)
	a.contents = make([][]uint64, c)
	for i := range a.disks {
		a.disks[i] = disk.NewWithConfig(eng, cfg.Geom, a.diskConfig())
		a.disks[i].SetSlot(i)
		if cfg.Faults != nil {
			a.disks[i].SetFaultHook(cfg.Faults.Hook(i), cfg.Faults.TimeoutMS())
		}
		a.contents[i] = make([]uint64, usable)
	}
	a.expected = make([]uint64, a.dataUnits)
	a.initContents()
	return a, nil
}

// diskConfig builds the per-drive configuration shared by the initial
// drives and any replacement installed later, so a replacement schedules
// and caches exactly like the drive it replaces.
func (a *Array) diskConfig() disk.Config {
	return disk.Config{
		Policy:          a.cfg.SchedPolicy,
		CvscanBias:      a.cfg.CvscanBias,
		ReadAheadTracks: a.cfg.ReadAheadTracks,
		AgePromoteMS:    a.cfg.PrioAgeMS,
	}
}

// splitmix64 is a tiny strong mixer for generating distinct unit values.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (a *Array) initContents() {
	if _, ok := a.mapper.(layout.StripeIndexMapper); ok {
		// Fast path for the paper's stripe-index mapping: one stripe-major
		// pass fills data and parity together. Data unit numbers increase
		// with position within a stripe (skipping parity), so this visits
		// n = 0..dataUnits-1 in order without any inverse-mapping calls.
		g := a.lay.G()
		n := int64(0)
		for s := int64(0); s < a.numStripes; s++ {
			var x, q uint64
			d := 0
			for j := 0; j < g; j++ {
				if layout.IsParityPos(a.lay, s, j) {
					continue
				}
				u := a.lay.Unit(s, j)
				v := splitmix64(uint64(n) + 1)
				a.expected[n] = v
				a.contents[u.Disk][u.Offset] = v
				x ^= v
				if a.parities == 2 {
					q ^= gf256.MulWord(gf256.Exp(d), v)
				}
				d++
				n++
			}
			a.setParityVals(s, x, q)
		}
		return
	}
	for n := int64(0); n < a.dataUnits; n++ {
		v := splitmix64(uint64(n) + 1)
		loc := a.mapper.Loc(n)
		a.contents[loc.Disk][loc.Offset] = v
		a.expected[n] = v
	}
	for s := int64(0); s < a.numStripes; s++ {
		var x, q uint64
		d := 0
		for j := 0; j < a.lay.G(); j++ {
			if layout.IsParityPos(a.lay, s, j) {
				continue
			}
			u := a.lay.Unit(s, j)
			v := a.contents[u.Disk][u.Offset]
			x ^= v
			if a.parities == 2 {
				q ^= gf256.MulWord(gf256.Exp(d), v)
			}
			d++
		}
		a.setParityVals(s, x, q)
	}
}

// setParityVals stores a stripe's parity words: P always, Q under dual
// parity.
func (a *Array) setParityVals(s int64, p, q uint64) {
	pl := layout.ParityLocOf(a.lay, s, 0)
	a.contents[pl.Disk][pl.Offset] = p
	if a.parities == 2 {
		ql := layout.ParityLocOf(a.lay, s, 1)
		a.contents[ql.Disk][ql.Offset] = q
	}
}

// DataUnits returns the size of the user data space in stripe units.
func (a *Array) DataUnits() int64 { return a.dataUnits }

// UnitsPerDisk returns the usable units per disk.
func (a *Array) UnitsPerDisk() int64 { return a.unitsPerDisk }

// Stripes returns the number of mapped parity stripes.
func (a *Array) Stripes() int64 { return a.numStripes }

// Layout returns the array's layout.
func (a *Array) Layout() layout.Layout { return a.lay }

// Parities returns the parity units per stripe: 1 (P) or 2 (P+Q).
func (a *Array) Parities() int { return a.parities }

// Disk returns the drive currently in slot i (the replacement, if slot i
// was failed and replaced).
func (a *Array) Disk(i int) *disk.Disk { return a.disks[i] }

// ObserveDisks replaces the observer chain of every drive with fn, tagged
// with its slot index. The registration survives disk replacement: a
// drive installed by Replace inherits it. Pass nil to stop observing.
func (a *Array) ObserveDisks(fn func(slot int, e disk.Event)) {
	a.diskObs = a.diskObs[:0]
	if fn != nil {
		a.diskObs = append(a.diskObs, fn)
	}
	for i := range a.disks {
		a.applyDiskObservers(i)
	}
}

// AddDiskObserver appends fn to every drive's observer chain, keeping
// existing observers: the span tracer and a metrics collector can watch
// the drives side by side. Observers fire in registration order; the
// registration survives disk replacement. A nil fn is ignored.
func (a *Array) AddDiskObserver(fn func(slot int, e disk.Event)) {
	if fn == nil {
		return
	}
	a.diskObs = append(a.diskObs, fn)
	for i := range a.disks {
		a.applyDiskObservers(i)
	}
}

// applyDiskObservers rebuilds one drive's observer chain from the array's
// registration list, preserving order.
func (a *Array) applyDiskObservers(slot int) {
	d := a.disks[slot]
	d.SetObserver(nil)
	for _, fn := range a.diskObs {
		fn := fn
		d.AddObserver(func(e disk.Event) { fn(slot, e) })
	}
}

// FailedDisk returns the failed slot index, or -1 when fault-free.
func (a *Array) FailedDisk() int { return a.failed }

// Degraded reports whether a disk is failed (with or without replacement).
func (a *Array) Degraded() bool { return a.failed >= 0 }

// Reconstructing reports whether reconstruction processes are running.
func (a *Array) Reconstructing() bool { return a.reconActive }

// Fail marks disk d failed. Its contents become unreadable; subsequent user
// accesses run in degraded mode. Only a single failure is supported (after
// distributed sparing completes, the slot stays failed until a copyback,
// which this driver does not implement).
func (a *Array) Fail(d int) error {
	if a.failed >= 0 {
		return fmt.Errorf("array: disk %d already failed; single-failure model", a.failed)
	}
	if d < 0 || d >= len(a.disks) {
		return fmt.Errorf("array: no disk %d", d)
	}
	a.failed = d
	a.replacement = false
	a.spared = false
	a.reconDone = make([]bool, a.unitsPerDisk)
	if a.spareLay != nil {
		// Spare slots on the failed disk hold nothing; they need no
		// reconstruction (their stripes lost no unit).
		for off := int64(0); off < a.unitsPerDisk; off++ {
			if _, ok := a.spareLay.IsSpare(layout.Loc{Disk: d, Offset: off}); ok {
				a.reconDone[off] = true
			}
		}
	}
	return nil
}

// Replace installs a fresh drive in the failed slot. Contents remain
// invalid until reconstructed; accesses keep running in degraded mode,
// consulting the reconstructed map. Distributed-sparing arrays do not
// replace: they reconstruct into spare units instead.
func (a *Array) Replace() error {
	if a.failed < 0 {
		return fmt.Errorf("array: no failed disk to replace")
	}
	if a.replacement {
		return fmt.Errorf("array: replacement already installed")
	}
	if a.spareLay != nil {
		return fmt.Errorf("array: distributed-sparing array reconstructs into spares; no replacement")
	}
	a.installDisk(a.failed)
	a.replacement = true
	return nil
}

// installDisk puts a factory-fresh drive in a slot, re-applying the
// observer and fault hook and clearing the modeled contents and any latent
// sector errors the old platters carried.
func (a *Array) installDisk(slot int) {
	a.disks[slot] = disk.NewWithConfig(a.eng, a.cfg.Geom, a.diskConfig())
	a.disks[slot].SetSlot(slot)
	a.applyDiskObservers(slot)
	if a.cfg.Faults != nil {
		a.disks[slot].SetFaultHook(a.cfg.Faults.Hook(slot), a.cfg.Faults.TimeoutMS())
		a.cfg.Faults.ResetDisk(slot)
	}
	a.contents[slot] = make([]uint64, a.unitsPerDisk)
}

// Spared reports whether a distributed-sparing reconstruction has
// completed: every lost unit is live in its stripe's spare slot.
func (a *Array) Spared() bool { return a.spared }

// unitSector converts a unit offset to its first sector LBA.
func (a *Array) unitSector(off int64) int64 { return off * int64(a.cfg.UnitSectors) }

// available reports whether the unit at loc can be directly read/written:
// its disk is healthy, or it lives on the failed slot but has been
// reconstructed onto an installed replacement or into its spare unit.
func (a *Array) available(loc layout.Loc) bool {
	if loc.Disk != a.failed {
		return true
	}
	return (a.replacement || a.spareLay != nil) && a.reconDone[loc.Offset]
}

// phys resolves a logical unit location to its current physical placement:
// identity, except that under distributed sparing a unit of the failed
// disk lives in its stripe's spare slot.
func (a *Array) phys(loc layout.Loc) layout.Loc {
	if a.spareLay == nil || loc.Disk != a.failed {
		return loc
	}
	if _, ok := a.spareLay.IsSpare(loc); ok {
		return loc // a spare slot itself never relocates
	}
	stripe, _ := a.spareLay.Locate(loc)
	return a.spareLay.SpareUnit(stripe)
}

// unitVal reads the current content of a logical unit.
func (a *Array) unitVal(loc layout.Loc) uint64 {
	p := a.phys(loc)
	return a.contents[p.Disk][p.Offset]
}

// setUnitVal writes the modeled content of a logical unit.
func (a *Array) setUnitVal(loc layout.Loc, v uint64) {
	p := a.phys(loc)
	a.contents[p.Disk][p.Offset] = v
}
