package array

import (
	"fmt"

	"declust/internal/layout"
	"declust/internal/metrics"
	"declust/internal/stats"
	"declust/internal/telemetry"
)

// Reconstruct starts cfg.ReconProcs parallel reconstruction processes that
// sweep the failed disk's units in offset order, reconstructing each from
// its parity stripe's survivors and writing it to the replacement — or,
// under distributed sparing, into its stripe's spare unit on a surviving
// disk. done fires when every lost unit is live again; with a replacement
// the array then heals to the fault-free state, with distributed sparing
// it enters the spared state (Spared reports true).
func (a *Array) Reconstruct(done func()) error {
	if a.failed < 0 {
		return fmt.Errorf("array: nothing to reconstruct; no disk failed")
	}
	if !a.replacement && a.spareLay == nil {
		return fmt.Errorf("array: no replacement installed")
	}
	if a.reconActive {
		return fmt.Errorf("array: reconstruction already running")
	}
	a.reconActive = true
	a.reconStartMS = a.eng.Now()
	a.reconCursor = 0
	a.reconOnDone = done
	a.reconRemaining = 0
	for _, d := range a.reconDone {
		if !d {
			a.reconRemaining++
		}
	}
	a.reconTotal = a.reconRemaining
	for i := range a.reconReads {
		a.reconReads[i] = 0
	}
	if a.tracer != nil {
		a.tracer.Recon(metrics.ReconEvent{
			Ev: metrics.EvReconStart, TMS: a.eng.Now(), TotalUnits: a.reconTotal,
		})
	}
	if a.reconRemaining == 0 {
		a.finishRecon()
		return nil
	}
	procs := a.cfg.ReconProcs
	if int64(procs) > a.reconRemaining {
		procs = int(a.reconRemaining)
	}
	a.reconProcsLive = procs
	for i := 0; i < procs; i++ {
		a.reconStep()
	}
	return nil
}

// reconPrio returns the disk scheduling class for reconstruction accesses.
func (a *Array) reconPrio() int {
	if a.cfg.ReconLowPriority {
		return reconPriority
	}
	return userPriority
}

// nextReconOffset advances the shared sweep cursor to the next offset not
// yet reconstructed.
func (a *Array) nextReconOffset() (int64, bool) {
	for a.reconCursor < a.unitsPerDisk {
		o := a.reconCursor
		a.reconCursor++
		if !a.reconDone[o] {
			return o, true
		}
	}
	return 0, false
}

// deferRecon schedules a reconstruction step after delay, tagged with the
// current epoch: if an abort or completion bumps the epoch meanwhile, the
// callback quietly dies instead of touching a newer run's state.
func (a *Array) deferRecon(delay float64) {
	e := a.reconEpoch
	a.eng.Schedule(delay, func() {
		if e != a.reconEpoch {
			return
		}
		a.reconStep()
	})
}

// reconStep runs one reconstruction cycle of one process: claim the next
// unit, lock its stripe, read the G−1 survivors, XOR, write the result to
// the replacement, then schedule the next cycle.
func (a *Array) reconStep() {
	if !a.reconActive {
		a.reconProcsLive--
		return
	}
	off, ok := a.nextReconOffset()
	if !ok {
		// Sweep exhausted; remaining units (if any) are being finished
		// by other processes or user activity.
		a.reconProcsLive--
		return
	}
	e := a.reconEpoch
	cycleStart := a.eng.Now()
	loc := layout.Loc{Disk: a.failed, Offset: off}
	stripe, _ := a.lay.Locate(loc)
	// Each sweep cycle is its own trace: the lock wait, survivor reads and
	// write-back become phases whose disk segments let the analyzer measure
	// how much rebuild traffic overlaps user requests. Abandoned cycles
	// (epoch bump, free reconstruction) never End and are never recorded.
	cycleSp := a.spans.Root(telemetry.SpanReconCycle, telemetry.KindRecon, off, cycleStart)
	lockSp := cycleSp.Child(telemetry.PhaseLockWait, cycleStart)
	a.locks.acquire(stripe, func() {
		lockSp.End(a.eng.Now())
		if e != a.reconEpoch {
			a.locks.release(stripe)
			return
		}
		if a.reconDone[off] {
			// A user write or piggyback reconstructed it first
			// ("free reconstruction"); skip. Trampoline through the
			// engine to bound recursion over long reconstructed runs.
			a.locks.release(stripe)
			a.deferRecon(0)
			return
		}
		surv := a.reconSources(loc)
		for _, u := range surv {
			a.reconReads[u.Disk]++
		}
		readStart := a.eng.Now()
		readSp := cycleSp.Child(telemetry.PhaseReconRead, readStart)
		a.phaseSpan = readSp
		a.io(reads(surv), a.reconPrio(), func(fails []xfer) {
			if e != a.reconEpoch {
				a.locks.release(stripe)
				return
			}
			value := a.reconValue(loc, surv)
			a.readPhase.Add(a.eng.Now() - readStart)
			readSp.End(a.eng.Now())
			writeStart := a.eng.Now()
			writeSp := cycleSp.Child(telemetry.PhaseReconWrit, writeStart)
			ws := []xfer{{loc: loc, write: true}}
			if len(fails) > 0 {
				// Unreadable survivors: the lost unit cannot really be
				// rebuilt, and each bad survivor is itself beyond parity
				// (its stripe already lost the unit under
				// reconstruction). Record all of them as lost, restore
				// them out of band in this cycle's write phase (the
				// rewrites remap the latent sectors), and keep sweeping.
				lostLocs := make([]layout.Loc, 0, len(fails)+1)
				for _, f := range fails {
					lostLocs = append(lostLocs, f.loc)
					ws = append(ws, xfer{loc: f.loc, write: true})
				}
				lostLocs = append(lostLocs, loc)
				a.recordLoss(stripe, lostLocs)
			}
			a.phaseSpan = writeSp
			a.io(ws, a.reconPrio(), func(_ []xfer) {
				if e != a.reconEpoch {
					a.locks.release(stripe)
					return
				}
				a.setUnitVal(loc, value)
				a.writePhase.Add(a.eng.Now() - writeStart)
				writeSp.End(a.eng.Now())
				cycleSp.End(a.eng.Now())
				a.reconCycles++
				a.mReconCyc.Inc()
				a.markReconstructed(off)
				if a.tracer != nil {
					a.tracer.Recon(metrics.ReconEvent{
						Ev: metrics.EvReconCycle, TMS: a.eng.Now(), Offset: off,
						DoneUnits: a.reconTotal - a.reconRemaining, TotalUnits: a.reconTotal,
						ReadMS: writeStart - readStart, WriteMS: a.eng.Now() - writeStart,
					})
				}
				a.locks.release(stripe)
				a.scheduleNextCycle(cycleStart)
			})
		})
	})
}

// scheduleNextCycle continues a process, honoring the optional throttle.
func (a *Array) scheduleNextCycle(cycleStart float64) {
	if !a.reconActive {
		a.reconProcsLive--
		return
	}
	if rate := a.cfg.ReconThrottleCyclesPerSec; rate > 0 {
		minSpacing := 1000 / rate
		if wait := cycleStart + minSpacing - a.eng.Now(); wait > 0 {
			a.deferRecon(wait)
			return
		}
	}
	a.reconStep()
}

// InterruptRecon aborts the running reconstruction processes but keeps the
// replacement disk and the progress bitmap — the checkpoint. A later
// Reconstruct resumes from it: already-reconstructed units are skipped,
// so only the remainder is swept again. A cycle in flight at the
// interrupt is discarded (its unit stays unreconstructed).
func (a *Array) InterruptRecon() error {
	if !a.reconActive {
		return fmt.Errorf("array: no reconstruction running")
	}
	a.abortRecon()
	return nil
}

// abortRecon tears down the running sweep: every pending continuation
// dies on the epoch bump, so no stale callback can touch the state of a
// restarted run.
func (a *Array) abortRecon() {
	a.reconActive = false
	a.reconEpoch++
	a.reconProcsLive = 0
	a.reconOnDone = nil
}

// markReconstructed records that the failed slot's unit at off is now valid
// on the replacement, whichever path produced it (sweep, user write, or
// piggyback), and completes reconstruction when it was the last one. It is
// a no-op when there is nowhere valid to reconstruct to — the replacement
// died (FailReplacement) with a write still in flight.
func (a *Array) markReconstructed(off int64) {
	if !a.replacement && a.spareLay == nil {
		return
	}
	if a.reconDone[off] {
		return
	}
	a.reconDone[off] = true
	if a.reconActive {
		a.reconRemaining--
		if a.reconRemaining == 0 {
			a.finishRecon()
		}
	}
}

// finishRecon completes recovery. With a replacement disk the array heals
// (the slot is no longer failed); with distributed sparing the slot stays
// dead but every lost unit is live in its spare, so the array enters the
// spared state — copying back onto a new disk is left to operators.
func (a *Array) finishRecon() {
	a.reconEndMS = a.eng.Now()
	a.reconActive = false
	// Bump the epoch so throttled/deferred sweep callbacks from this run
	// die instead of outliving it into a future reconstruction.
	a.reconEpoch++
	if a.tracer != nil {
		a.tracer.Recon(metrics.ReconEvent{
			Ev: metrics.EvReconDone, TMS: a.eng.Now(),
			DoneUnits: a.reconTotal, TotalUnits: a.reconTotal,
		})
	}
	if a.spareLay != nil && a.failed >= 0 {
		a.spared = true
	} else {
		a.failed = -1
		a.replacement = false
	}
	if a.reconOnDone != nil {
		done := a.reconOnDone
		a.reconOnDone = nil
		done()
	}
}

// ReconTimeMS returns the duration of the last completed reconstruction.
func (a *Array) ReconTimeMS() float64 { return a.reconEndMS - a.reconStartMS }

// ReconStartMS returns when the last reconstruction began.
func (a *Array) ReconStartMS() float64 { return a.reconStartMS }

// ReconProgress reports how many lost units are live again out of the
// total the current (or last) reconstruction set out to recover. Units
// reconstructed by user writes or piggybacking count as done.
func (a *Array) ReconProgress() (done, total int64) {
	return a.reconTotal - a.reconRemaining, a.reconTotal
}

// ReconReadLoad returns, per disk slot, how many survivor units the
// reconstruction sweep read — the direct observable behind the paper's
// claim that declustering spreads rebuild load evenly at fraction α over
// the survivors (the failed slot reads nothing).
func (a *Array) ReconReadLoad() []int64 {
	out := make([]int64, len(a.reconReads))
	copy(out, a.reconReads)
	return out
}

// ReconCycles returns how many stripe units the sweep itself reconstructed
// (units reconstructed by user activity are not counted).
func (a *Array) ReconCycles() int64 { return a.reconCycles }

// ReadPhase returns the per-cycle read phase durations (collect and XOR
// the survivors), as in the paper's Table 8-1.
func (a *Array) ReadPhase() *stats.Sample { return &a.readPhase }

// WritePhase returns the per-cycle write phase durations (the replacement
// disk write), as in the paper's Table 8-1.
func (a *Array) WritePhase() *stats.Sample { return &a.writePhase }
