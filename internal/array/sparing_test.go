package array

import (
	"testing"

	"declust/internal/blockdesign"
	"declust/internal/disk"
	"declust/internal/layout"
	"declust/internal/sim"
)

// sparedArray builds a distributed-sparing array: logical G=5 over the
// paper's k=6 design, 1/100-scale drives.
func sparedArray(t *testing.T, mutate func(*Config)) (*sim.Engine, *Array) {
	t.Helper()
	d, err := blockdesign.PaperDesign(6)
	if err != nil {
		t.Fatal(err)
	}
	l, err := layout.NewSpared(d)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Layout:             l,
		Geom:               disk.IBM0661().Scaled(1, 100),
		UnitSectors:        8,
		CvscanBias:         0.2,
		ReconProcs:         4,
		DistributedSparing: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng := sim.New()
	a, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, a
}

func TestSparingRequiresSpareLayout(t *testing.T) {
	l, _ := layout.NewRaid5(5)
	eng := sim.New()
	_, err := New(eng, Config{
		Layout: l, Geom: disk.IBM0661().Scaled(1, 100), UnitSectors: 8,
		DistributedSparing: true,
	})
	if err == nil {
		t.Fatal("sparing accepted without a spare-bearing layout")
	}
}

func TestSparingRejectsReplace(t *testing.T) {
	_, a := sparedArray(t, nil)
	a.Fail(3)
	if err := a.Replace(); err == nil {
		t.Fatal("Replace accepted on a distributed-sparing array")
	}
}

func TestSparedArrayFaultFreeOps(t *testing.T) {
	eng, a := sparedArray(t, nil)
	pumpWorkload(eng, a, 1000, 20000, 17)
	eng.Run()
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSparingReconstructionIntoSpares(t *testing.T) {
	eng, a := sparedArray(t, nil)
	if err := a.Fail(3); err != nil {
		t.Fatal(err)
	}
	// No Replace: reconstruction goes straight into spare units.
	done := false
	if err := a.Reconstruct(func() { done = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done || !a.Spared() {
		t.Fatalf("done=%v spared=%v", done, a.Spared())
	}
	// The slot stays failed (no copyback) but the array is consistent
	// and every lost unit is readable.
	if !a.Degraded() {
		t.Fatal("spared array claims healed; no replacement was installed")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The failed disk's physical device received no reconstruction
	// writes — everything went to survivors.
	if n := a.Disk(3).Stats().Completed; n != 0 {
		t.Fatalf("failed disk serviced %d requests during sparing", n)
	}
}

func TestSparingReadsAfterCompletion(t *testing.T) {
	eng, a := sparedArray(t, nil) // Baseline algorithm
	a.Fail(3)
	a.Reconstruct(nil)
	eng.Run()
	// Post-sparing, even Baseline serves spared units directly: one
	// access, on a surviving disk.
	unit, _ := earliestDataUnitOnDisk(t, a, 3)
	before := totalCompleted(a)
	var got uint64
	a.Read(unit, func(v uint64) { got = v })
	eng.Run()
	if got != a.ExpectedValue(unit) {
		t.Fatalf("spared read %#x, want %#x", got, a.ExpectedValue(unit))
	}
	if n := totalCompleted(a) - before; n != 1 {
		t.Fatalf("spared read used %d accesses, want 1", n)
	}
}

func TestSparingWritesAfterCompletion(t *testing.T) {
	eng, a := sparedArray(t, nil)
	a.Fail(3)
	a.Reconstruct(nil)
	eng.Run()
	unit, _ := earliestDataUnitOnDisk(t, a, 3)
	a.Write(unit, func() {})
	eng.Run()
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	var got uint64
	a.Read(unit, func(v uint64) { got = v })
	eng.Run()
	if got != a.ExpectedValue(unit) {
		t.Fatalf("spared unit reads %#x after write, want %#x", got, a.ExpectedValue(unit))
	}
}

func TestSparingUnderConcurrentLoadAllAlgorithms(t *testing.T) {
	for _, alg := range []ReconAlgorithm{Baseline, UserWrites, Redirect, RedirectPiggyback} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			eng, a := sparedArray(t, func(c *Config) { c.Algorithm = alg })
			a.Fail(7)
			pumpWorkload(eng, a, 1200, 20000, int64(alg)+400)
			if err := a.Reconstruct(nil); err != nil {
				t.Fatal(err)
			}
			eng.Run()
			if !a.Spared() {
				t.Fatal("sparing did not complete")
			}
			if err := a.CheckConsistency(); err != nil {
				t.Fatalf("%v corrupted data: %v", alg, err)
			}
			// Every lost data unit must hold its expected value at its
			// spare location.
			for n := int64(0); n < a.DataUnits(); n++ {
				loc := a.mapper.Loc(n)
				if loc.Disk != 7 {
					continue
				}
				if got := a.unitVal(loc); got != a.ExpectedValue(n) {
					t.Fatalf("unit %d reads %#x via spare, want %#x", n, got, a.ExpectedValue(n))
				}
			}
		})
	}
}

func TestSparingSpreadsReconstructionWrites(t *testing.T) {
	// The reason distributed sparing exists: reconstruction writes land
	// on many survivors, not one replacement disk.
	eng, a := sparedArray(t, nil)
	a.Fail(0)
	a.Reconstruct(nil)
	eng.Run()
	writers := 0
	for i := 1; i < a.Layout().Disks(); i++ {
		var wrote int64
		st := a.Disk(i).Stats()
		wrote = st.Completed
		if wrote > 0 {
			writers++
		}
	}
	if writers < a.Layout().Disks()-1 {
		t.Fatalf("only %d survivors participated", writers)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSparingFasterThanReplacementReconstructionUnderLoad(t *testing.T) {
	// Under user load with parallel reconstruction, the single
	// replacement disk is the write bottleneck; distributed sparing
	// spreads those writes over all survivors and rebuilds much faster.
	// (On an *idle* array the replacement's near-sequential write stream
	// is highly efficient and the two organizations are comparable —
	// sparing's advantage is precisely the continuous-operation case.)
	engS, spared := sparedArray(t, func(c *Config) { c.ReconProcs = 8 })
	spared.Fail(2)
	pumpWorkload(engS, spared, 3000, 30000, 1)
	spared.Reconstruct(nil)
	engS.Run()

	// Same logical G=5, replacement-based.
	engR, repl := testArray(t, func(c *Config) { c.ReconProcs = 8 })
	repl.Fail(2)
	repl.Replace()
	pumpWorkload(engR, repl, 3000, 30000, 1)
	repl.Reconstruct(nil)
	engR.Run()

	if spared.ReconTimeMS() >= repl.ReconTimeMS() {
		t.Fatalf("distributed sparing (%v ms) not faster than replacement (%v ms) under load",
			spared.ReconTimeMS(), repl.ReconTimeMS())
	}
}

func TestSparingDegradedModeBeforeRecon(t *testing.T) {
	eng, a := sparedArray(t, nil)
	a.Fail(5)
	// Degraded ops before any reconstruction: on-the-fly reads, folds.
	pumpWorkload(eng, a, 800, 15000, 31)
	eng.Run()
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSparingRangeOps(t *testing.T) {
	eng, a := sparedArray(t, func(c *Config) { c.Algorithm = Redirect })
	a.Fail(4)
	a.Reconstruct(nil)
	for i := 0; i < 200; i++ {
		start := int64(i * 13 % int(a.DataUnits()-40))
		count := 1 + i%10
		when := float64(i) * 50
		if i%2 == 0 {
			eng.At(when, func() { a.ReadRange(start, count, func() {}) })
		} else {
			eng.At(when, func() { a.WriteRange(start, count, func() {}) })
		}
	}
	eng.Run()
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
