package array

import (
	"math/rand"
	"testing"

	"declust/internal/layout"
	"declust/internal/sim"
)

// earliestDataUnitOnDisk returns the data unit with the smallest offset on
// the given disk (offset 0 may hold parity).
func earliestDataUnitOnDisk(t *testing.T, a *Array, d int) (unit, off int64) {
	t.Helper()
	unit, off = -1, -1
	for n := int64(0); n < a.DataUnits(); n++ {
		loc := layout.DataLoc(a.Layout(), n)
		if loc.Disk == d && (off < 0 || loc.Offset < off) {
			unit, off = n, loc.Offset
		}
	}
	if unit < 0 {
		t.Fatalf("no data unit on disk %d", d)
	}
	return unit, off
}

// pumpWorkload schedules n random user ops over [0, spanMS).
func pumpWorkload(eng *sim.Engine, a *Array, n int, spanMS float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		unit := rng.Int63n(a.DataUnits())
		when := rng.Float64() * spanMS
		if rng.Intn(2) == 0 {
			eng.At(when, func() { a.Read(unit, func(uint64) {}) })
		} else {
			eng.At(when, func() { a.Write(unit, func() {}) })
		}
	}
}

func TestReconstructValidation(t *testing.T) {
	_, a := testArray(t, nil)
	if err := a.Reconstruct(nil); err == nil {
		t.Fatal("reconstruct with no failure accepted")
	}
	a.Fail(0)
	if err := a.Reconstruct(nil); err == nil {
		t.Fatal("reconstruct with no replacement accepted")
	}
	a.Replace()
	if err := a.Reconstruct(nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Reconstruct(nil); err == nil {
		t.Fatal("double reconstruct accepted")
	}
}

func TestReconstructionIdleSweep(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Fail(5)
	a.Replace()
	healed := false
	if err := a.Reconstruct(func() { healed = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !healed {
		t.Fatal("reconstruction never completed")
	}
	if a.Degraded() || a.Reconstructing() {
		t.Fatal("array did not heal")
	}
	if a.ReconCycles() != a.UnitsPerDisk() {
		t.Fatalf("sweep reconstructed %d units, want %d", a.ReconCycles(), a.UnitsPerDisk())
	}
	if a.ReconTimeMS() <= 0 {
		t.Fatal("no reconstruction time recorded")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructionRestoresExactContents(t *testing.T) {
	// Write some data, snapshot the failed disk's true contents, fail it,
	// reconstruct with concurrent user activity, verify every unit.
	for _, alg := range []ReconAlgorithm{Baseline, UserWrites, Redirect, RedirectPiggyback} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			eng, a := testArray(t, func(c *Config) {
				c.Algorithm = alg
				c.ReconProcs = 4
			})
			a.Fail(9)
			a.Replace()
			pumpWorkload(eng, a, 1200, 20000, int64(alg)+101)
			if err := a.Reconstruct(nil); err != nil {
				t.Fatal(err)
			}
			eng.Run()
			if a.Degraded() {
				t.Fatal("not healed")
			}
			if err := a.CheckConsistency(); err != nil {
				t.Fatalf("algorithm %v corrupted data: %v", alg, err)
			}
			// Every data unit on the replaced disk must hold its
			// expected value.
			for n := int64(0); n < a.DataUnits(); n++ {
				loc := layout.DataLoc(a.Layout(), n)
				if loc.Disk != 9 {
					continue
				}
				if got := a.UnitContent(loc); got != a.ExpectedValue(n) {
					t.Fatalf("unit %d at %v holds %#x, want %#x", n, loc, got, a.ExpectedValue(n))
				}
			}
		})
	}
}

func TestParallelReconstructionFaster(t *testing.T) {
	run := func(procs int) float64 {
		eng, a := testArray(t, func(c *Config) { c.ReconProcs = procs })
		a.Fail(1)
		a.Replace()
		pumpWorkload(eng, a, 500, 30000, 7)
		if err := a.Reconstruct(nil); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return a.ReconTimeMS()
	}
	t1 := run(1)
	t8 := run(8)
	if t8*1.5 > t1 {
		t.Fatalf("8-way reconstruction (%v ms) not substantially faster than single (%v ms)", t8, t1)
	}
}

func TestReconstructionWritePhaseSequentialAndCheap(t *testing.T) {
	// The paper's key observation (Table 8-1): under user load the
	// survivors queue random work, so the read phase dominates, while
	// the baseline algorithm's replacement disk — kept free of user
	// work — services its near-sequential writes far faster.
	eng, a := testArray(t, func(c *Config) { c.Algorithm = Baseline })
	a.Fail(4)
	a.Replace()
	pumpWorkload(eng, a, 4000, 60000, 31)
	a.Reconstruct(nil)
	eng.Run()
	r, w := a.ReadPhase().Mean(), a.WritePhase().Mean()
	if w*2 > r {
		t.Fatalf("write phase %v ms not well below read phase %v ms", w, r)
	}
}

func TestRedirectServesReconstructedReadsFromReplacement(t *testing.T) {
	eng, a := testArray(t, func(c *Config) { c.Algorithm = Redirect })
	a.Fail(2)
	a.Replace()
	a.Reconstruct(nil)
	eng.Run() // complete reconstruction with no user load
	// Array healed; re-fail is not the point — instead check during
	// reconstruction: do it again with a mid-flight probe.
	eng2, a2 := testArray(t, func(c *Config) {
		c.Algorithm = Redirect
		// Slow the sweep to 5 cycles/s so probes land in idle windows
		// where no reconstruction I/O touches the replacement.
		c.ReconThrottleCyclesPerSec = 5
	})
	a2.Fail(2)
	a2.Replace()
	unit, off := earliestDataUnitOnDisk(t, a2, 2)
	a2.Reconstruct(nil)
	probed := false
	var watch func()
	watch = func() {
		if !a2.Degraded() {
			return
		}
		if !a2.Reconstructed(off) {
			eng2.Schedule(5, watch)
			return
		}
		// Probe mid-window: 50 ms after a cycle boundary, 150 ms
		// before the next.
		eng2.Schedule(50, func() {
			if !a2.Degraded() {
				return
			}
			before := a2.Disk(2).Stats().Completed
			a2.Read(unit, func(uint64) {
				if got := a2.Disk(2).Stats().Completed; got != before+1 {
					t.Errorf("redirected read did not hit replacement (completed %d -> %d)", before, got)
				}
				probed = true
			})
		})
	}
	eng2.Schedule(5, watch)
	eng2.RunUntil(60_000)
	if !probed {
		t.Fatal("probe never ran while degraded")
	}
}

func TestBaselineDoesNotRedirectReads(t *testing.T) {
	eng, a := testArray(t, func(c *Config) {
		c.Algorithm = Baseline
		c.ReconThrottleCyclesPerSec = 5
	})
	a.Fail(2)
	a.Replace()
	unit, off := earliestDataUnitOnDisk(t, a, 2)
	a.Reconstruct(nil)
	probed := false
	var watch func()
	watch = func() {
		if !a.Degraded() {
			return
		}
		if !a.Reconstructed(off) {
			eng.Schedule(5, watch)
			return
		}
		eng.Schedule(50, func() {
			if !a.Degraded() {
				return
			}
			before := a.Disk(2).Stats().Completed
			a.Read(unit, func(uint64) {
				// On-the-fly reconstruction: no replacement access.
				if got := a.Disk(2).Stats().Completed; got != before {
					t.Errorf("baseline read hit the replacement")
				}
				probed = true
			})
		})
	}
	eng.Schedule(5, watch)
	eng.RunUntil(60_000)
	if !probed {
		t.Fatal("probe never ran while degraded")
	}
}

func TestUserWritesReconstructsWrittenUnits(t *testing.T) {
	eng, a := testArray(t, func(c *Config) { c.Algorithm = UserWrites })
	a.Fail(2)
	a.Replace()
	var unit int64 = -1
	var off int64
	for n := a.DataUnits() - 1; n >= 0; n-- { // pick a late offset, ahead of the sweep
		loc := layout.DataLoc(a.Layout(), n)
		if loc.Disk == 2 {
			unit, off = n, loc.Offset
			break
		}
	}
	a.Write(unit, func() {
		if !a.Reconstructed(off) {
			t.Error("user-writes did not mark written unit reconstructed")
		}
	})
	eng.Run()
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineFoldDoesNotMarkReconstructed(t *testing.T) {
	eng, a := testArray(t, func(c *Config) { c.Algorithm = Baseline })
	a.Fail(2)
	a.Replace()
	var unit int64 = -1
	var off int64
	for n := a.DataUnits() - 1; n >= 0; n-- {
		loc := layout.DataLoc(a.Layout(), n)
		if loc.Disk == 2 {
			unit, off = n, loc.Offset
			break
		}
	}
	a.Write(unit, func() {
		if a.Reconstructed(off) {
			t.Error("baseline fold marked unit reconstructed")
		}
	})
	eng.Run()
}

func TestPiggybackMarksReadUnitsReconstructed(t *testing.T) {
	eng, a := testArray(t, func(c *Config) { c.Algorithm = RedirectPiggyback })
	a.Fail(2)
	a.Replace()
	var unit int64 = -1
	var off int64
	for n := a.DataUnits() - 1; n >= 0; n-- {
		loc := layout.DataLoc(a.Layout(), n)
		if loc.Disk == 2 {
			unit, off = n, loc.Offset
			break
		}
	}
	a.Read(unit, func(uint64) {})
	eng.Run()
	if !a.Reconstructed(off) {
		t.Fatal("piggyback did not write back the on-the-fly reconstruction")
	}
	if got, want := a.UnitContent(layout.Loc{Disk: 2, Offset: off}), a.ExpectedValue(unit); got != want {
		t.Fatalf("piggybacked content %#x, want %#x", got, want)
	}
}

func TestFreeReconstructionReducesSweepCycles(t *testing.T) {
	// Under user-writes, units written by users ahead of the sweep are
	// skipped: sweep cycles < units per disk.
	eng, a := testArray(t, func(c *Config) { c.Algorithm = UserWrites })
	a.Fail(2)
	a.Replace()
	pumpWorkload(eng, a, 3000, 60000, 99)
	a.Reconstruct(nil)
	eng.Run()
	if a.ReconCycles() >= a.UnitsPerDisk() {
		t.Fatalf("sweep did %d cycles, want fewer than %d (free reconstruction)", a.ReconCycles(), a.UnitsPerDisk())
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestThrottledReconstructionSlower(t *testing.T) {
	run := func(rate float64) float64 {
		eng, a := testArray(t, func(c *Config) { c.ReconThrottleCyclesPerSec = rate })
		a.Fail(3)
		a.Replace()
		a.Reconstruct(nil)
		eng.Run()
		return a.ReconTimeMS()
	}
	free := run(0)
	slow := run(20) // 20 cycles/s * 755 units ≈ 37.8 s minimum
	if slow < free*1.5 {
		t.Fatalf("throttled recon (%v ms) not slower than unthrottled (%v ms)", slow, free)
	}
	if min := 1000 * float64(755-1) / 20; slow < min {
		t.Fatalf("throttled recon %v ms beat the throttle floor %v ms", slow, min)
	}
}

func TestLowPriorityReconstructionStillCompletes(t *testing.T) {
	eng, a := testArray(t, func(c *Config) {
		c.ReconLowPriority = true
		c.ReconProcs = 2
	})
	a.Fail(6)
	a.Replace()
	pumpWorkload(eng, a, 800, 20000, 5)
	healed := false
	a.Reconstruct(func() { healed = true })
	eng.Run()
	if !healed {
		t.Fatal("low-priority reconstruction starved")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRaid5Reconstruction(t *testing.T) {
	eng, a := raid5Array(t, 5, func(c *Config) { c.ReconProcs = 2 })
	a.Fail(0)
	a.Replace()
	pumpWorkload(eng, a, 400, 10000, 21)
	a.Reconstruct(nil)
	eng.Run()
	if a.Degraded() {
		t.Fatal("RAID 5 did not heal")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMidFlightFailureDuringRMW(t *testing.T) {
	// Regression: a read-modify-write in flight when its data disk fails
	// and is instantly replaced (hot spare) must not fold stale zeros
	// into parity. The old-content sample must come from submit time,
	// before Replace swaps the slot's contents.
	eng, a := testArray(t, func(c *Config) { c.ReconProcs = 8 })
	unit, _ := earliestDataUnitOnDisk(t, a, 5)
	committed := false
	a.Write(unit, func() { committed = true })
	// Fail the disk 1 ms in — mid pre-read — and hot-replace it.
	eng.Schedule(1, func() {
		if err := a.Fail(5); err != nil {
			t.Fatal(err)
		}
		if err := a.Replace(); err != nil {
			t.Fatal(err)
		}
		if err := a.Reconstruct(nil); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()
	if !committed {
		t.Fatal("write never completed")
	}
	if a.Degraded() {
		t.Fatal("reconstruction did not finish")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("mid-flight failure corrupted the stripe: %v", err)
	}
	// The written value must have survived the failure, whichever path
	// physically carried it.
	var got uint64
	a.Read(unit, func(v uint64) { got = v })
	eng.Run()
	if got != a.ExpectedValue(unit) {
		t.Fatalf("unit %d reads %#x after mid-flight failure, want %#x", unit, got, a.ExpectedValue(unit))
	}
}

func TestMidFlightFailureManyOps(t *testing.T) {
	// Broader fuzz of the same window: many in-flight ops when a disk
	// fails, replaced after a short delay, reconstructed under load.
	eng, a := testArray(t, func(c *Config) { c.ReconProcs = 4 })
	pumpWorkload(eng, a, 2000, 30000, 123)
	eng.At(1500, func() {
		if err := a.Fail(11); err != nil {
			t.Fatal(err)
		}
	})
	eng.At(2500, func() {
		if err := a.Replace(); err != nil {
			t.Fatal(err)
		}
		if err := a.Reconstruct(nil); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()
	if a.Degraded() {
		t.Fatal("not healed")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDeclusteredSpreadsReconstructionLoad(t *testing.T) {
	// With α = 0.2, each survivor should service roughly λG/(rG) = 1/5 of
	// the units the RAID 5 survivors would; equivalently, survivors read
	// about α × unitsPerDisk units each.
	eng, a := testArray(t, nil)
	a.Fail(0)
	a.Replace()
	a.Reconstruct(nil)
	eng.Run()
	per := a.UnitsPerDisk()
	for i := 1; i < a.Layout().Disks(); i++ {
		n := a.Disk(i).Stats().Completed
		want := float64(per) * a.Layout().Alpha()
		if float64(n) < want*0.9 || float64(n) > want*1.1 {
			t.Errorf("survivor %d serviced %d reads, want ~%.0f (α×units)", i, n, want)
		}
	}
}
