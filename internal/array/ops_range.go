package array

import (
	"fmt"

	"declust/internal/layout"
	"declust/internal/telemetry"
)

// Range operations: multi-unit user accesses. The paper's simulations use
// 4 KB (single-unit) accesses, but its §4.1 criteria 5 and 6 exist for the
// sake of larger ones: a write covering a whole parity stripe needs no
// pre-reads (large-write optimization), and a read of C consecutive units
// wants C distinct disks (maximal parallelism). These paths make both
// effects measurable.

// stripeGroup collects the portion of a range that falls in one parity
// stripe.
type stripeGroup struct {
	stripe int64
	units  []int64      // logical data units
	locs   []layout.Loc // their stripe units, parallel to units
}

// groupByStripe splits [unit, unit+count) by owning parity stripe,
// preserving encounter order.
func (a *Array) groupByStripe(unit int64, count int) []stripeGroup {
	order := make(map[int64]int)
	var groups []stripeGroup
	for n := unit; n < unit+int64(count); n++ {
		loc := a.mapper.Loc(n)
		s, _ := a.lay.Locate(loc)
		i, ok := order[s]
		if !ok {
			i = len(groups)
			order[s] = i
			groups = append(groups, stripeGroup{stripe: s})
		}
		groups[i].units = append(groups[i].units, n)
		groups[i].locs = append(groups[i].locs, loc)
	}
	return groups
}

// join invokes done after n sub-completions.
func join(n int, done func()) func() {
	if n <= 0 {
		panic("array: join of zero parts")
	}
	return func() {
		n--
		if n == 0 {
			done()
		}
	}
}

// ReadRange reads count consecutive logical data units starting at unit,
// invoking done when all are available. Healthy units are read directly
// (in parallel across disks); lost units reconstruct on the fly exactly as
// single-unit reads do.
func (a *Array) ReadRange(unit int64, count int, done func()) {
	a.checkRange(unit, count)
	sp := a.takeOpSpan()
	groups := a.groupByStripe(unit, count)
	part := join(len(groups), done)
	for _, grp := range groups {
		grp := grp
		var direct []layout.Loc
		lost := int64(-1)
		for _, loc := range grp.locs {
			if loc.Disk != a.failed || a.redirectableRead(loc) {
				direct = append(direct, loc)
			} else {
				lost = a.mapper.Index(grp.stripe, a.posOf(loc, grp.stripe))
			}
		}
		sub := 0
		if len(direct) > 0 {
			sub++
		}
		if lost >= 0 {
			sub++
		}
		grpDone := join(sub, part)
		if len(direct) > 0 {
			a.phaseSpan = sp
			a.io(reads(direct), userPriority, func(fails []xfer) {
				if len(fails) == 0 {
					grpDone()
					return
				}
				a.locks.acquire(grp.stripe, func() {
					a.repairLocked(grp.stripe, fails, userPriority, func() {
						a.locks.release(grp.stripe)
						grpDone()
					})
				})
			})
		}
		if lost >= 0 {
			// At most one unit per stripe can be lost; reuse the
			// single-unit degraded read path (locking, redirection,
			// piggybacking included). Its phases nest under this
			// range's root span.
			a.SetOpSpan(sp)
			a.Read(lost, func(uint64) { grpDone() })
		}
	}
}

// posOf returns loc's position within stripe s.
func (a *Array) posOf(loc layout.Loc, s int64) int {
	s2, j := a.lay.Locate(loc)
	if s2 != s {
		panic(fmt.Sprintf("array: location %v not in stripe %d", loc, s))
	}
	return j
}

// WriteRange writes count consecutive logical data units starting at unit.
// Per stripe touched, the driver picks the cheapest correct path:
//
//   - large write: the group covers all G−1 data units and every unit
//     (including parity) is writable — write all G units, no pre-reads;
//   - read-modify-write: pre-read the k old data units and parity, write
//     k+1 (2k+2 accesses);
//   - reconstruct-write: read the G−1−k untouched data units, write k+1
//     (G accesses) — cheaper than RMW when k+2 > G−k;
//   - degraded stripes (a lost, unreconstructed unit among data or
//     parity) fall back to the single-unit degraded paths per unit.
func (a *Array) WriteRange(unit int64, count int, done func()) {
	a.checkRange(unit, count)
	sp := a.takeOpSpan()
	groups := a.groupByStripe(unit, count)
	part := join(len(groups), done)
	for _, grp := range groups {
		a.writeGroup(grp, sp, part)
	}
}

func (a *Array) writeGroup(grp stripeGroup, sp *telemetry.Span, done func()) {
	g := a.lay.G()
	ploc := layout.ParityLoc(a.lay, grp.stripe)
	qloc := ploc // == ploc means "no Q"
	if a.parities == 2 {
		qloc = layout.ParityLocOf(a.lay, grp.stripe, 1)
	}
	hasQ := a.parities == 2

	// Degraded stripes use the single-unit paths, which handle folding,
	// redirection and reconstruction marking; the group degenerates to
	// per-unit writes.
	writable := a.available(ploc) && (!hasQ || a.available(qloc))
	for _, loc := range grp.locs {
		if !a.available(loc) {
			writable = false
		}
	}
	if !writable {
		part := join(len(grp.units), done)
		for _, n := range grp.units {
			a.SetOpSpan(sp)
			a.Write(n, part)
		}
		return
	}

	values := make([]uint64, len(grp.units))
	for i := range values {
		values[i] = a.newValue()
	}
	k := len(grp.units)
	lockSp := sp.Child(telemetry.PhaseLockWait, a.eng.Now())
	a.locks.acquire(grp.stripe, func() {
		lockSp.End(a.eng.Now())
		var phase *telemetry.Span
		finish := func() {
			phase.End(a.eng.Now())
			a.locks.release(grp.stripe)
			done()
		}
		// State may have changed while waiting; bail to per-unit writes
		// if the stripe degraded (writeLocked handles every case, but
		// we must not hold the lock across its own acquire).
		stillWritable := a.available(ploc) && (!hasQ || a.available(qloc))
		for _, loc := range grp.locs {
			if !a.available(loc) {
				stillWritable = false
			}
		}
		if !stillWritable {
			a.locks.release(grp.stripe)
			part := join(len(grp.units), done)
			for _, n := range grp.units {
				a.SetOpSpan(sp)
				a.Write(n, part)
			}
			return
		}

		// qDelta sums the written units' contributions to Q, old vs new.
		qOfValues := func() uint64 {
			var q uint64
			for i, loc := range grp.locs {
				q ^= a.qTerm(grp.stripe, loc, values[i])
			}
			return q
		}
		commit := func() []xfer {
			xs := make([]xfer, 0, k+2)
			for _, loc := range grp.locs {
				xs = append(xs, xfer{loc: loc, write: true})
			}
			xs = append(xs, xfer{loc: ploc, write: true})
			if hasQ {
				xs = append(xs, xfer{loc: qloc, write: true})
			}
			return xs
		}
		apply := func(parity, q uint64) {
			for i, loc := range grp.locs {
				a.setUnitVal(loc, values[i])
				a.expected[grp.units[i]] = values[i]
			}
			a.setUnitVal(ploc, parity)
			if hasQ {
				a.setUnitVal(qloc, q)
			}
		}

		// The reconstruct-write path pre-reads the stripe's untouched
		// data units, so it is only eligible when they are all readable
		// (they may include a lost, unreconstructed unit even though
		// everything the group writes is available).
		touched := make(map[layout.Loc]bool, k)
		for _, loc := range grp.locs {
			touched[loc] = true
		}
		var others []layout.Loc
		othersReadable := true
		for j := 0; j < g; j++ {
			if layout.IsParityPos(a.lay, grp.stripe, j) {
				continue
			}
			u := a.lay.Unit(grp.stripe, j)
			if !touched[u] {
				others = append(others, u)
				if !a.available(u) {
					othersReadable = false
				}
			}
		}

		switch {
		case k == layout.DataPerStripe(a.lay):
			// Large write: parity from the new data alone.
			var parity uint64
			for _, v := range values {
				parity ^= v
			}
			var q uint64
			if hasQ {
				q = qOfValues()
			}
			phase = sp.Child(telemetry.PhaseCommit, a.eng.Now())
			a.phaseSpan = phase
			a.io(commit(), userPriority, func(_ []xfer) {
				apply(parity, q)
				finish()
			})
		case 2*(k+a.parities) <= g || !othersReadable:
			// Read-modify-write: pre-read old data and parity. Old
			// contents are sampled at submit time (see writeNormal).
			parity := a.unitVal(ploc)
			var q uint64
			for i, loc := range grp.locs {
				parity ^= a.unitVal(loc) ^ values[i]
				if hasQ {
					q ^= a.qTerm(grp.stripe, loc, a.unitVal(loc)^values[i])
				}
			}
			if hasQ {
				q ^= a.unitVal(qloc)
			}
			pre := append(reads(grp.locs), xfer{loc: ploc})
			if hasQ {
				pre = append(pre, xfer{loc: qloc})
			}
			phase = sp.Child(telemetry.PhasePreread, a.eng.Now())
			a.phaseSpan = phase
			a.io(pre, userPriority, func(fails []xfer) {
				a.repairThen(grp.stripe, fails, userPriority, func() {
					phase.End(a.eng.Now())
					phase = sp.Child(telemetry.PhaseCommit, a.eng.Now())
					a.phaseSpan = phase
					a.io(commit(), userPriority, func(_ []xfer) {
						apply(parity, q)
						finish()
					})
				})
			})
		default:
			// Reconstruct-write: read the untouched data units.
			parity := a.xorUnits(others)
			for _, v := range values {
				parity ^= v
			}
			var q uint64
			if hasQ {
				q = a.qSum(grp.stripe, others) ^ qOfValues()
			}
			phase = sp.Child(telemetry.PhasePreread, a.eng.Now())
			a.phaseSpan = phase
			a.io(reads(others), userPriority, func(fails []xfer) {
				a.repairThen(grp.stripe, fails, userPriority, func() {
					phase.End(a.eng.Now())
					phase = sp.Child(telemetry.PhaseCommit, a.eng.Now())
					a.phaseSpan = phase
					a.io(commit(), userPriority, func(_ []xfer) {
						apply(parity, q)
						finish()
					})
				})
			})
		}
	})
}

func (a *Array) checkRange(unit int64, count int) {
	if count <= 0 {
		panic(fmt.Sprintf("array: range of %d units", count))
	}
	if unit < 0 || unit+int64(count) > a.dataUnits {
		panic(fmt.Sprintf("array: range [%d,%d) outside data space [0,%d)",
			unit, unit+int64(count), a.dataUnits))
	}
}
