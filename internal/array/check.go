package array

import (
	"fmt"

	"declust/internal/gf256"
	"declust/internal/layout"
)

// CheckConsistency verifies the array's data-layer invariants. It is meant
// to be called at quiesce (no user operations or reconstruction in flight):
//
//   - every readable data unit holds the last value written to it;
//   - for stripes with no lost unit, parity equals the XOR of the data;
//   - for stripes whose data unit is lost, the lost value is recoverable:
//     XOR of parity and surviving data equals the last value written.
//
// Together these prove the driver's degraded paths (parity folding,
// redirection, piggybacking) never corrupt or strand data.
func (a *Array) CheckConsistency() error {
	if a.locks.heldCount() != 0 {
		return fmt.Errorf("array: %d stripe locks held; not quiesced", a.locks.heldCount())
	}
	if a.parities == 2 {
		return a.checkConsistencyPQ()
	}
	g := a.lay.G()
	for s := int64(0); s < a.numStripes; s++ {
		pp := a.lay.ParityPos(s)
		var xor uint64
		lost := -1 // position of an unreadable unit, if any
		for j := 0; j < g; j++ {
			u := a.lay.Unit(s, j)
			if !a.available(u) {
				if lost != -1 {
					return fmt.Errorf("stripe %d: two lost units; layout broken", s)
				}
				lost = j
				continue
			}
			xor ^= a.unitVal(u)
			if j != pp {
				idx := a.mapper.Index(s, j)
				if got, want := a.unitVal(u), a.expected[idx]; got != want {
					return fmt.Errorf("stripe %d: data unit %d at %v holds %#x, want %#x",
						s, idx, u, got, want)
				}
			}
		}
		switch {
		case lost == -1:
			// All units readable: the parity equation must balance,
			// i.e. XOR over data and parity is zero.
			if xor != 0 {
				return fmt.Errorf("stripe %d: parity inconsistent (residue %#x)", s, xor)
			}
		case lost == pp:
			// Lost parity: nothing further to check; data was
			// verified against expected above.
		default:
			// Lost data: it must be recoverable from the survivors.
			idx := a.mapper.Index(s, lost)
			if xor != a.expected[idx] {
				return fmt.Errorf("stripe %d: lost data unit %d reconstructs to %#x, want %#x",
					s, idx, xor, a.expected[idx])
			}
		}
	}
	return nil
}

// checkConsistencyPQ verifies the dual-parity invariants at quiesce. With
// losses restored out of band (recordLoss keeps the model consistent), the
// invariant is stronger than the single-parity one: every readable unit —
// data, P, and Q — must hold exactly the value derivable from the last
// logical writes, so both parity equations balance and any two lost units
// per stripe remain decodable.
func (a *Array) checkConsistencyPQ() error {
	g := a.lay.G()
	pq := [2]string{"P", "Q"}
	for s := int64(0); s < a.numStripes; s++ {
		var p, q uint64
		lost := 0
		d := 0
		for j := 0; j < g; j++ {
			if layout.IsParityPos(a.lay, s, j) {
				continue
			}
			u := a.lay.Unit(s, j)
			idx := a.mapper.Index(s, j)
			want := a.expected[idx]
			p ^= want
			q ^= gf256.MulWord(gf256.Exp(d), want)
			d++
			if !a.available(u) {
				lost++
				continue
			}
			if got := a.unitVal(u); got != want {
				return fmt.Errorf("stripe %d: data unit %d at %v holds %#x, want %#x",
					s, idx, u, got, want)
			}
		}
		for k, want := range [2]uint64{p, q} {
			u := layout.ParityLocOf(a.lay, s, k)
			if !a.available(u) {
				lost++
				continue
			}
			if got := a.unitVal(u); got != want {
				return fmt.Errorf("stripe %d: %s parity at %v holds %#x, want %#x",
					s, pq[k], u, got, want)
			}
		}
		if lost > a.parities {
			return fmt.Errorf("stripe %d: %d lost units; layout broken", s, lost)
		}
	}
	return nil
}

// ExpectedValue returns the last value logically written to a data unit
// (for tests).
func (a *Array) ExpectedValue(unit int64) uint64 { return a.expected[unit] }

// UnitContent returns the physical content of a unit (for tests). It does
// not check readability.
func (a *Array) UnitContent(loc layout.Loc) uint64 {
	return a.unitVal(loc)
}

// Reconstructed reports whether the failed slot's unit at off has been
// reconstructed; it is only meaningful in degraded mode.
func (a *Array) Reconstructed(off int64) bool {
	return a.reconDone != nil && a.reconDone[off]
}
