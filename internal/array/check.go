package array

import (
	"fmt"

	"declust/internal/layout"
)

// CheckConsistency verifies the array's data-layer invariants. It is meant
// to be called at quiesce (no user operations or reconstruction in flight):
//
//   - every readable data unit holds the last value written to it;
//   - for stripes with no lost unit, parity equals the XOR of the data;
//   - for stripes whose data unit is lost, the lost value is recoverable:
//     XOR of parity and surviving data equals the last value written.
//
// Together these prove the driver's degraded paths (parity folding,
// redirection, piggybacking) never corrupt or strand data.
func (a *Array) CheckConsistency() error {
	if a.locks.heldCount() != 0 {
		return fmt.Errorf("array: %d stripe locks held; not quiesced", a.locks.heldCount())
	}
	g := a.lay.G()
	for s := int64(0); s < a.numStripes; s++ {
		pp := a.lay.ParityPos(s)
		var xor uint64
		lost := -1 // position of an unreadable unit, if any
		for j := 0; j < g; j++ {
			u := a.lay.Unit(s, j)
			if !a.available(u) {
				if lost != -1 {
					return fmt.Errorf("stripe %d: two lost units; layout broken", s)
				}
				lost = j
				continue
			}
			xor ^= a.unitVal(u)
			if j != pp {
				idx := a.mapper.Index(s, j)
				if got, want := a.unitVal(u), a.expected[idx]; got != want {
					return fmt.Errorf("stripe %d: data unit %d at %v holds %#x, want %#x",
						s, idx, u, got, want)
				}
			}
		}
		switch {
		case lost == -1:
			// All units readable: the parity equation must balance,
			// i.e. XOR over data and parity is zero.
			if xor != 0 {
				return fmt.Errorf("stripe %d: parity inconsistent (residue %#x)", s, xor)
			}
		case lost == pp:
			// Lost parity: nothing further to check; data was
			// verified against expected above.
		default:
			// Lost data: it must be recoverable from the survivors.
			idx := a.mapper.Index(s, lost)
			if xor != a.expected[idx] {
				return fmt.Errorf("stripe %d: lost data unit %d reconstructs to %#x, want %#x",
					s, idx, xor, a.expected[idx])
			}
		}
	}
	return nil
}

// ExpectedValue returns the last value logically written to a data unit
// (for tests).
func (a *Array) ExpectedValue(unit int64) uint64 { return a.expected[unit] }

// UnitContent returns the physical content of a unit (for tests). It does
// not check readability.
func (a *Array) UnitContent(loc layout.Loc) uint64 {
	return a.unitVal(loc)
}

// Reconstructed reports whether the failed slot's unit at off has been
// reconstructed; it is only meaningful in degraded mode.
func (a *Array) Reconstructed(off int64) bool {
	return a.reconDone != nil && a.reconDone[off]
}
