package array

import (
	"fmt"

	"declust/internal/layout"
	"declust/internal/sim"
)

// The scrubber is the background process that turns latent sector errors
// from silent MTTDL killers into repaired ones: an LSE is harmless until
// the stripe it sits in loses another unit, so the exposure window is the
// time from the error's arrival to its next read — and the scrubber bounds
// that window by reading every stripe on a fixed cadence. It runs in a
// disk scheduling class below both user and reconstruction traffic, so an
// idle array scrubs at full speed and a busy one barely notices it.

// ScrubStats counts scrubber activity. Repairs performed on the scrubber's
// behalf are counted in FaultStats (LatentRepairs / LostUnits) alongside
// repairs triggered by user reads.
type ScrubStats struct {
	Passes       int64 // full sweeps over all stripes completed
	UnitsScanned int64 // stripe units read
	ErrorsFound  int64 // media errors the scan surfaced
}

// ScrubStats returns a copy of the scrubber counters.
func (a *Array) ScrubStats() ScrubStats { return a.scrubStats }

// Scrubbing reports whether the background scrubber is running.
func (a *Array) Scrubbing() bool { return a.scrubOn }

// StartScrub begins the background scrub: one parity stripe is read and
// verified every spacingMS, lowest disk priority, looping over the array
// forever (a full pass takes Stripes()×spacingMS plus service time). Any
// media error found is repaired from parity on the spot — or recorded as
// a DataLossEvent when the stripe also has a dead unit. Stop with
// StopScrub; the engine cannot drain while a scrub is scheduled.
func (a *Array) StartScrub(spacingMS float64) error {
	if spacingMS <= 0 {
		return fmt.Errorf("array: scrub spacing %v ms", spacingMS)
	}
	if a.scrubOn {
		return fmt.Errorf("array: scrub already running")
	}
	a.scrubOn = true
	a.scrubSpacing = spacingMS
	a.scheduleScrub()
	return nil
}

// StopScrub halts the scrubber. A stripe scan already in flight finishes;
// no further stripe is scheduled.
func (a *Array) StopScrub() {
	a.scrubOn = false
	a.eng.Cancel(a.scrubEv) // no-op on the zero Timer or a stale handle
	a.scrubEv = sim.Timer{}
}

func (a *Array) scheduleScrub() {
	a.scrubEv = a.eng.Schedule(a.scrubSpacing, func() {
		a.scrubEv = sim.Timer{}
		if !a.scrubOn {
			return
		}
		a.scrubStripe()
	})
}

// scrubStripe scans one stripe under its lock: read every readable unit,
// repair whatever surfaced, advance the cursor, schedule the next.
func (a *Array) scrubStripe() {
	s := a.scrubCursor
	a.scrubCursor++
	if a.scrubCursor == a.numStripes {
		a.scrubCursor = 0
		a.scrubStats.Passes++
	}
	a.locks.acquire(s, func() {
		next := func() {
			a.locks.release(s)
			if a.scrubOn {
				a.scheduleScrub()
			}
		}
		g := a.lay.G()
		var locs []layout.Loc
		for j := 0; j < g; j++ {
			u := a.lay.Unit(s, j)
			if a.available(u) {
				locs = append(locs, u)
			}
		}
		if len(locs) == 0 {
			next()
			return
		}
		a.scrubStats.UnitsScanned += int64(len(locs))
		a.io(reads(locs), scrubPriority, func(fails []xfer) {
			a.scrubStats.ErrorsFound += int64(len(fails))
			a.repairThen(s, fails, scrubPriority, next)
		})
	})
}
