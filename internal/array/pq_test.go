package array

import (
	"math/rand"
	"testing"

	"declust/internal/blockdesign"
	"declust/internal/disk"
	"declust/internal/layout"
	"declust/internal/sim"
)

// pqTestArray wraps testArray's paper layout (C=21, G=5) in the P+Q
// dual-parity code: 3 data + P + Q per stripe.
func pqTestArray(t *testing.T, mutate func(*Config)) (*sim.Engine, *Array) {
	t.Helper()
	d, err := blockdesign.PaperDesign(5)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := layout.NewDeclustered(d)
	if err != nil {
		t.Fatal(err)
	}
	l, err := layout.NewDualParity(inner)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Layout:      l,
		Geom:        disk.IBM0661().Scaled(1, 100),
		UnitSectors: 8,
		CvscanBias:  0.2,
		ReconProcs:  1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng := sim.New()
	a, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, a
}

func TestPQInitialStateConsistent(t *testing.T) {
	_, a := pqTestArray(t, nil)
	if a.Parities() != 2 {
		t.Fatalf("Parities() = %d, want 2", a.Parities())
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPQWriteIsSixAccesses(t *testing.T) {
	// The dual-parity small write: read D, P, Q; write D, P, Q (§6's
	// four-access RMW plus one read and one write for Q).
	eng, a := pqTestArray(t, nil)
	a.Write(17, func() {})
	eng.Run()
	if n := totalCompleted(a); n != 6 {
		t.Fatalf("P+Q write used %d disk accesses, want 6", n)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPQManyRandomOpsStayConsistent(t *testing.T) {
	eng, a := pqTestArray(t, nil)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		unit := rng.Int63n(a.DataUnits())
		when := rng.Float64() * 5000
		if rng.Intn(2) == 0 {
			eng.At(when, func() { a.Read(unit, func(uint64) {}) })
		} else {
			eng.At(when, func() { a.Write(unit, func() {}) })
		}
	}
	eng.Run()
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPQDegradedOpsAndRebuildStayConsistent(t *testing.T) {
	eng, a := pqTestArray(t, nil)
	if err := a.Fail(2); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 1000; i++ {
		unit := rng.Int63n(a.DataUnits())
		when := rng.Float64() * 5000
		if rng.Intn(2) == 0 {
			eng.At(when, func() { a.Read(unit, func(uint64) {}) })
		} else {
			eng.At(when, func() { a.Write(unit, func() {}) })
		}
	}
	eng.Run()
	if err := a.Replace(); err != nil {
		t.Fatal(err)
	}
	if err := a.Reconstruct(nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if a.Degraded() {
		t.Fatal("rebuild did not heal the array")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if len(a.DataLosses()) != 0 {
		t.Fatalf("degraded P+Q lifecycle recorded losses: %v", a.DataLosses())
	}
}

// The tentpole claim at the simulator level: a true second whole-disk
// failure, which costs a single-parity declustered array α of its at-risk
// stripes, loses NOTHING under P+Q — every double-dead stripe decodes.
func TestPQSecondFailureLosesNothing(t *testing.T) {
	_, a := pqTestArray(t, nil)
	if err := a.Fail(0); err != nil {
		t.Fatal(err)
	}
	df, err := a.SecondFail(1)
	if err != nil {
		t.Fatal(err)
	}
	if df.StripesAtRisk == 0 || df.StripesSurvived == 0 {
		t.Fatalf("double failure %+v: want at-risk and surviving stripes", df)
	}
	if df.StripesLost != 0 || df.UnitsLost != 0 {
		t.Fatalf("P+Q lost %d stripes / %d units to a double failure, want none: %+v",
			df.StripesLost, df.UnitsLost, df)
	}
	// The survivors are exactly the stripes single parity would have lost:
	// α = (G−1)/(C−1) of the at-risk stripes, by the layout's balance.
	l := a.Layout()
	alpha := float64(l.G()-1) / float64(l.Disks()-1)
	frac := float64(df.StripesSurvived) / float64(df.StripesAtRisk)
	if frac < alpha*0.8 || frac > alpha*1.2 {
		t.Fatalf("surviving fraction %.4f, want within 20%% of α=%.4f", frac, alpha)
	}
	if got := a.FaultStats().LostUnits; got != 0 {
		t.Fatalf("FaultStats.LostUnits = %d after a survivable double failure", got)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
