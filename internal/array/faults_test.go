package array

import (
	"math"
	"math/rand"
	"testing"

	"declust/internal/blockdesign"
	"declust/internal/disk"
	"declust/internal/fault"
	"declust/internal/layout"
	"declust/internal/sim"
)

// regionFault is a scripted disk.FaultHook: reads overlapping one sector
// region media-error until a write overlaps it (remapping the sectors).
type regionFault struct {
	start  int64
	count  int
	healed bool
}

func (r *regionFault) hook(start int64, count int, write bool) disk.Status {
	if r.healed || start+int64(count) <= r.start || r.start+int64(r.count) <= start {
		return disk.OK
	}
	if write {
		r.healed = true
		return disk.OK
	}
	return disk.MediaError
}

// markBadUnit scripts a latent error covering one whole unit of one slot.
func markBadUnit(a *Array, loc layout.Loc) *regionFault {
	r := &regionFault{start: a.unitSector(loc.Offset), count: a.cfg.UnitSectors}
	a.Disk(loc.Disk).SetFaultHook(r.hook, 50)
	return r
}

// dataUnitOn finds a data unit living on the given disk slot.
func dataUnitOn(t *testing.T, a *Array, d int) (int64, layout.Loc) {
	t.Helper()
	for n := int64(0); n < a.DataUnits(); n++ {
		if loc := layout.DataLoc(a.Layout(), n); loc.Disk == d {
			return n, loc
		}
	}
	t.Fatalf("no data unit on disk %d", d)
	return 0, layout.Loc{}
}

func TestReconstructErrorPaths(t *testing.T) {
	eng, a := testArray(t, nil)
	if err := a.Reconstruct(nil); err == nil {
		t.Fatal("reconstruct with no failure accepted")
	}
	a.Fail(3)
	if err := a.Reconstruct(nil); err == nil {
		t.Fatal("reconstruct with no replacement accepted")
	}
	a.Replace()
	if err := a.Reconstruct(func() {}); err != nil {
		t.Fatal(err)
	}
	if err := a.Reconstruct(nil); err == nil {
		t.Fatal("re-entrant reconstruct accepted")
	}
	eng.Run()
	if a.Degraded() {
		t.Fatal("array not healed")
	}
}

func TestInterruptAndReplacementFailureValidation(t *testing.T) {
	_, a := testArray(t, nil)
	if err := a.InterruptRecon(); err == nil {
		t.Fatal("interrupt with no reconstruction accepted")
	}
	if err := a.FailReplacement(); err == nil {
		t.Fatal("replacement failure with no replacement accepted")
	}
	a.Fail(1)
	if err := a.FailReplacement(); err == nil {
		t.Fatal("replacement failure before Replace accepted")
	}
}

func TestSecondFailValidation(t *testing.T) {
	_, a := testArray(t, nil)
	if _, err := a.SecondFail(1); err == nil {
		t.Fatal("second failure on healthy array accepted")
	}
	a.Fail(4)
	if _, err := a.SecondFail(4); err == nil {
		t.Fatal("second failure of the failed disk accepted")
	}
	if _, err := a.SecondFail(99); err == nil {
		t.Fatal("second failure of nonexistent disk accepted")
	}
}

// A media error on a user read is repaired from parity: the value returned
// is correct, the repair is charged, and the array stays consistent.
func TestReadMediaErrorRepairsFromParity(t *testing.T) {
	eng, a := testArray(t, nil)
	unit, loc := dataUnitOn(t, a, 5)
	r := markBadUnit(a, loc)
	var got uint64
	a.Read(unit, func(v uint64) { got = v })
	eng.Run()
	if got != a.ExpectedValue(unit) {
		t.Fatalf("read through media error got %#x, want %#x", got, a.ExpectedValue(unit))
	}
	if !r.healed {
		t.Fatal("repair did not rewrite the bad region")
	}
	fs := a.FaultStats()
	if fs.MediaErrors == 0 || fs.LatentRepairs != 1 || fs.LostUnits != 0 {
		t.Fatalf("fault stats %+v: want a repaired media error, no loss", fs)
	}
	// Repair charges survivor reads and a rewrite beyond the first read:
	// 1 failed read + (G-1) survivors + 1 rewrite.
	if n := totalCompleted(a); n != int64(1+a.Layout().G()-1+1) {
		t.Fatalf("repairing read used %d accesses, want %d", n, 1+a.Layout().G()-1+1)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// A media error on a survivor of a degraded stripe is beyond parity: the
// loss is recorded, the units restored out of band, and the sim continues.
func TestDegradedSurvivorMediaErrorIsDataLoss(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Fail(2)
	unit, loc := dataUnitOn(t, a, 2)
	surv := layout.SurvivingUnits(a.Layout(), loc)
	r := markBadUnit(a, surv[0])
	var got uint64
	a.Read(unit, func(v uint64) { got = v })
	eng.Run()
	if got != a.ExpectedValue(unit) {
		t.Fatalf("degraded read got %#x, want %#x (out-of-band restore)", got, a.ExpectedValue(unit))
	}
	fs := a.FaultStats()
	if fs.LostUnits != 1 || fs.LatentRepairs != 0 {
		t.Fatalf("fault stats %+v: want one lost unit, no repair", fs)
	}
	losses := a.DataLosses()
	stripe, _ := a.Layout().Locate(loc)
	if len(losses) != 1 || losses[0].Stripe != stripe || len(losses[0].Units) != 1 {
		t.Fatalf("losses %+v: want one event on stripe %d", losses, stripe)
	}
	if !r.healed {
		t.Fatal("out-of-band restore did not rewrite the bad region")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// The reconstruction sweep must survive an unreadable survivor: the cycle
// records the loss (bad survivor + unrebuildable unit), restores both, and
// keeps sweeping to completion.
func TestReconSurvivesUnreadableSurvivor(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Fail(2)
	_, loc := dataUnitOn(t, a, 2)
	surv := layout.SurvivingUnits(a.Layout(), loc)
	r := markBadUnit(a, surv[0])
	a.Replace()
	if err := a.Reconstruct(nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if a.Degraded() {
		t.Fatal("reconstruction did not complete")
	}
	fs := a.FaultStats()
	if fs.LostUnits != 2 {
		t.Fatalf("LostUnits = %d, want 2 (bad survivor + unit under rebuild)", fs.LostUnits)
	}
	stripe, _ := a.Layout().Locate(loc)
	losses := a.DataLosses()
	if len(losses) != 1 || losses[0].Stripe != stripe || len(losses[0].Units) != 2 {
		t.Fatalf("losses %+v: want one 2-unit event on stripe %d", losses, stripe)
	}
	if !r.healed {
		t.Fatal("restore did not rewrite the bad survivor")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// InterruptRecon keeps the checkpoint: the resumed sweep only recycles the
// remaining units, and across both runs each lost unit is cycled once.
func TestInterruptReconResumesFromCheckpoint(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Fail(4)
	a.Replace()
	if err := a.Reconstruct(nil); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(5000)
	if err := a.InterruptRecon(); err != nil {
		t.Fatal(err)
	}
	eng.Run() // drain in-flight disk requests; their continuations die
	partial := a.ReconCycles()
	done, total := a.ReconProgress()
	if partial == 0 || done == 0 || done == total {
		t.Fatalf("interrupt at %d/%d after %d cycles: want a genuine partial state", done, total, partial)
	}
	if a.Reconstructing() || !a.Degraded() {
		t.Fatal("interrupted array in wrong state")
	}
	healed := false
	if err := a.Reconstruct(func() { healed = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !healed || a.Degraded() {
		t.Fatal("resumed reconstruction did not heal the array")
	}
	if got := a.ReconCycles(); got != total {
		t.Fatalf("%d cycles across both runs, want %d (no unit swept twice)", got, total)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// FailReplacement mid-rebuild discards progress (the next drive is blank):
// a fresh Replace + Reconstruct starts over and completes consistently.
func TestReplacementFailureRestartsRebuild(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Fail(4)
	a.Replace()
	if err := a.Reconstruct(nil); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(5000)
	firstRun := a.ReconCycles()
	_, totalBefore := a.ReconProgress()
	if firstRun == 0 || firstRun >= totalBefore {
		t.Fatalf("replacement died after %d/%d cycles: want a genuine partial state", firstRun, totalBefore)
	}
	if err := a.FailReplacement(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if a.Reconstructing() || !a.Degraded() {
		t.Fatal("array state wrong after replacement failure")
	}
	if err := a.Replace(); err != nil {
		t.Fatal(err)
	}
	if err := a.Reconstruct(nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if a.Degraded() {
		t.Fatal("restarted reconstruction did not heal the array")
	}
	_, totalAfter := a.ReconProgress()
	if totalAfter != totalBefore {
		t.Fatalf("restart swept %d units, want the full %d (blank disk)", totalAfter, totalBefore)
	}
	if got, want := a.ReconCycles(), firstRun+totalAfter; got != want {
		t.Fatalf("%d cycles in total, want %d (full restart after %d)", got, want, firstRun)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Declustering's partial-loss claim: a second failure with no rebuild
// progress loses exactly α = (G−1)/(C−1) of the at-risk stripes.
func TestSecondFailureDeclusteredLosesAlphaFraction(t *testing.T) {
	_, a := testArray(t, nil)
	a.Fail(0)
	df, err := a.SecondFail(1)
	if err != nil {
		t.Fatal(err)
	}
	if df.StripesAtRisk == 0 || df.StripesLost == 0 {
		t.Fatalf("double failure %+v: want at-risk and lost stripes", df)
	}
	l := a.Layout()
	alpha := float64(l.G()-1) / float64(l.Disks()-1)
	frac := float64(df.StripesLost) / float64(df.StripesAtRisk)
	if math.Abs(frac-alpha)/alpha > 0.20 {
		t.Fatalf("lost fraction %.4f, want within 20%% of α=%.4f", frac, alpha)
	}
	if df.UnitsLost < 2*df.StripesLost {
		t.Fatalf("UnitsLost %d < 2×StripesLost %d", df.UnitsLost, df.StripesLost)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// RAID5 (G = C) has every stripe on every disk: a second failure loses all
// at-risk stripes.
func TestSecondFailureRaid5LosesEverything(t *testing.T) {
	_, a := raid5Array(t, 5, nil)
	a.Fail(0)
	df, err := a.SecondFail(3)
	if err != nil {
		t.Fatal(err)
	}
	if df.StripesAtRisk != a.Stripes() {
		t.Fatalf("at-risk %d, want every stripe (%d)", df.StripesAtRisk, a.Stripes())
	}
	if df.StripesLost != df.StripesAtRisk {
		t.Fatalf("RAID5 lost %d of %d at-risk stripes, want all", df.StripesLost, df.StripesAtRisk)
	}
}

// Rebuild progress shrinks the second failure's damage: stripes whose lost
// unit is already on the replacement are no longer at risk.
func TestSecondFailureAfterPartialRebuildLosesLess(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Fail(0)
	full := func() DoubleFailure {
		df, err := a.SecondFail(1)
		if err != nil {
			t.Fatal(err)
		}
		return df
	}
	before := full()
	a.Replace()
	if err := a.Reconstruct(nil); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10000)
	a.InterruptRecon()
	eng.Run()
	after := full()
	if done, _ := a.ReconProgress(); done == 0 {
		t.Fatal("no rebuild progress; test is vacuous")
	}
	if after.StripesAtRisk >= before.StripesAtRisk || after.StripesLost >= before.StripesLost {
		t.Fatalf("partial rebuild did not shrink exposure: before %+v, after %+v", before, after)
	}
}

// The scrubber finds and repairs a latent error the workload never touches.
func TestScrubRepairsLatentError(t *testing.T) {
	eng, a := testArray(t, nil)
	_, loc := dataUnitOn(t, a, 7)
	r := markBadUnit(a, loc)
	if err := a.StartScrub(5); err != nil {
		t.Fatal(err)
	}
	if err := a.StartScrub(5); err == nil {
		t.Fatal("double StartScrub accepted")
	}
	if err := a.StartScrub(0); err == nil {
		t.Fatal("zero scrub spacing accepted")
	}
	// One stripe per 5 ms: a full pass over all stripes plus slack.
	eng.RunUntil(float64(a.Stripes())*5 + 10000)
	a.StopScrub()
	eng.Run()
	if !r.healed {
		t.Fatal("scrub never repaired the latent error")
	}
	ss := a.ScrubStats()
	if ss.ErrorsFound != 1 || ss.UnitsScanned == 0 {
		t.Fatalf("scrub stats %+v: want the one planted error found", ss)
	}
	fs := a.FaultStats()
	if fs.LatentRepairs != 1 || fs.LostUnits != 0 {
		t.Fatalf("fault stats %+v: want one repair, no loss", fs)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// End-to-end with the real injector: transient timeouts retry invisibly
// and a random workload completes consistently.
func TestTransientTimeoutsRetryToCompletion(t *testing.T) {
	d, err := blockdesign.PaperDesign(5)
	if err != nil {
		t.Fatal(err)
	}
	l, err := layout.NewDeclustered(d)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	geom := disk.IBM0661().Scaled(1, 100)
	inj, err := fault.New(eng, geom, l.Disks(), fault.Config{
		Seed: 7, TransientRate: 0.2, TimeoutMS: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(eng, Config{
		Layout: l, Geom: geom, UnitSectors: 8, CvscanBias: 0.2,
		ReconProcs: 1, Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	completed := 0
	for i := 0; i < 500; i++ {
		unit := rng.Int63n(a.DataUnits())
		when := rng.Float64() * 5000
		if rng.Intn(2) == 0 {
			eng.At(when, func() { a.Read(unit, func(uint64) { completed++ }) })
		} else {
			eng.At(when, func() { a.Write(unit, func() { completed++ }) })
		}
	}
	eng.Run()
	if completed != 500 {
		t.Fatalf("%d/500 operations completed", completed)
	}
	if fs := a.FaultStats(); fs.Retries == 0 {
		t.Fatal("no retries at a 20% transient rate")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
