package array

import (
	"math/rand"
	"testing"

	"declust/internal/blockdesign"
	"declust/internal/disk"
	"declust/internal/layout"
	"declust/internal/sim"
)

// testArray builds a small array: the paper's G=5 declustered layout over
// 21 disks, on 1/100-scale drives (9 cylinders, 756 units, 755 usable).
func testArray(t *testing.T, mutate func(*Config)) (*sim.Engine, *Array) {
	t.Helper()
	d, err := blockdesign.PaperDesign(5)
	if err != nil {
		t.Fatal(err)
	}
	l, err := layout.NewDeclustered(d)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Layout:      l,
		Geom:        disk.IBM0661().Scaled(1, 100),
		UnitSectors: 8,
		CvscanBias:  0.2,
		ReconProcs:  1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng := sim.New()
	a, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, a
}

func raid5Array(t *testing.T, c int, mutate func(*Config)) (*sim.Engine, *Array) {
	t.Helper()
	l, err := layout.NewRaid5(c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Layout:      l,
		Geom:        disk.IBM0661().Scaled(1, 100),
		UnitSectors: 8,
		CvscanBias:  0.2,
		ReconProcs:  1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng := sim.New()
	a, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, a
}

func totalCompleted(a *Array) int64 {
	var n int64
	for i := 0; i < a.Layout().Disks(); i++ {
		n += a.Disk(i).Stats().Completed
	}
	return n
}

func TestNewRejectsBadConfig(t *testing.T) {
	eng := sim.New()
	l, _ := layout.NewRaid5(5)
	good := Config{Layout: l, Geom: disk.IBM0661(), UnitSectors: 8}
	if _, err := New(eng, good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Geom: disk.IBM0661(), UnitSectors: 8},             // nil layout
		{Layout: l, Geom: disk.Geometry{}, UnitSectors: 8}, // bad geometry
		{Layout: l, Geom: disk.IBM0661(), UnitSectors: 0},  // bad unit size
	}
	for i, cfg := range bad {
		if _, err := New(eng, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestInitialStateConsistent(t *testing.T) {
	_, a := testArray(t, nil)
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if a.Degraded() || a.Reconstructing() || a.FailedDisk() != -1 {
		t.Fatal("fresh array not fault-free")
	}
}

func TestFaultFreeReadReturnsData(t *testing.T) {
	eng, a := testArray(t, nil)
	for _, unit := range []int64{0, 1, a.DataUnits() / 2, a.DataUnits() - 1} {
		var got uint64
		a.Read(unit, func(v uint64) { got = v })
		eng.Run()
		if got != a.ExpectedValue(unit) {
			t.Fatalf("unit %d read %#x, want %#x", unit, got, a.ExpectedValue(unit))
		}
	}
}

func TestFaultFreeReadIsOneAccess(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Read(17, func(uint64) {})
	eng.Run()
	if n := totalCompleted(a); n != 1 {
		t.Fatalf("read used %d disk accesses, want 1", n)
	}
}

func TestFaultFreeWriteIsFourAccesses(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Write(17, func() {})
	eng.Run()
	if n := totalCompleted(a); n != 4 {
		t.Fatalf("write used %d disk accesses, want 4 (paper §6)", n)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallWriteOptimizationIsThreeAccesses(t *testing.T) {
	// G=3 with the optimization: write data, read companion, write parity.
	d, err := blockdesign.PaperDesign(3)
	if err != nil {
		t.Fatal(err)
	}
	l, err := layout.NewDeclustered(d)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	a, err := New(eng, Config{
		Layout: l, Geom: disk.IBM0661().Scaled(1, 100), UnitSectors: 8,
		CvscanBias: 0.2, SmallWriteOpt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Write(5, func() {})
	eng.Run()
	if n := totalCompleted(a); n != 3 {
		t.Fatalf("G=3 optimized write used %d accesses, want 3", n)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteThenReadBack(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Write(100, func() {
		a.Read(100, func(v uint64) {
			if v != a.ExpectedValue(100) {
				t.Errorf("read back %#x, want %#x", v, a.ExpectedValue(100))
			}
		})
	})
	eng.Run()
}

func TestManyRandomOpsStayConsistent(t *testing.T) {
	eng, a := testArray(t, nil)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		unit := rng.Int63n(a.DataUnits())
		when := rng.Float64() * 5000
		if rng.Intn(2) == 0 {
			eng.At(when, func() { a.Read(unit, func(uint64) {}) })
		} else {
			eng.At(when, func() { a.Write(unit, func() {}) })
		}
	}
	eng.Run()
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWritesSameStripeSerialize(t *testing.T) {
	eng, a := testArray(t, nil)
	// Units 0..3 share parity stripe 0 under the stripe-index mapping.
	done := 0
	for u := int64(0); u < 4; u++ {
		a.Write(u, func() { done++ })
	}
	eng.Run()
	if done != 4 {
		t.Fatalf("%d writes completed, want 4", done)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("parity corrupted by concurrent same-stripe writes: %v", err)
	}
}

func TestFailValidation(t *testing.T) {
	_, a := testArray(t, nil)
	if err := a.Fail(99); err == nil {
		t.Fatal("failing a nonexistent disk accepted")
	}
	if err := a.Fail(3); err != nil {
		t.Fatal(err)
	}
	if err := a.Fail(4); err == nil {
		t.Fatal("second failure accepted; single-failure model")
	}
	if !a.Degraded() || a.FailedDisk() != 3 {
		t.Fatal("failure state wrong")
	}
}

func TestReplaceValidation(t *testing.T) {
	_, a := testArray(t, nil)
	if err := a.Replace(); err == nil {
		t.Fatal("replace with no failure accepted")
	}
	a.Fail(0)
	if err := a.Replace(); err != nil {
		t.Fatal(err)
	}
	if err := a.Replace(); err == nil {
		t.Fatal("double replace accepted")
	}
}

func TestDegradedReadReconstructsOnTheFly(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Fail(2)
	// Find a data unit on the failed disk.
	var unit int64 = -1
	for n := int64(0); n < a.DataUnits(); n++ {
		if layout.DataLoc(a.Layout(), n).Disk == 2 {
			unit = n
			break
		}
	}
	if unit < 0 {
		t.Fatal("no data unit on failed disk")
	}
	var got uint64
	a.Read(unit, func(v uint64) { got = v })
	eng.Run()
	if got != a.ExpectedValue(unit) {
		t.Fatalf("degraded read %#x, want %#x", got, a.ExpectedValue(unit))
	}
	// G-1 = 4 disk accesses.
	if n := totalCompleted(a); n != 4 {
		t.Fatalf("on-the-fly read used %d accesses, want G-1=4", n)
	}
}

func TestDegradedWriteToLostDataFoldsIntoParity(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Fail(2)
	var unit int64 = -1
	for n := int64(0); n < a.DataUnits(); n++ {
		if layout.DataLoc(a.Layout(), n).Disk == 2 {
			unit = n
			break
		}
	}
	a.Write(unit, func() {})
	eng.Run()
	// G-2 = 3 reads + 1 parity write.
	if n := totalCompleted(a); n != 4 {
		t.Fatalf("folded write used %d accesses, want G-2+1=4", n)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("fold broke recoverability: %v", err)
	}
	// The folded value must reconstruct correctly.
	var got uint64
	a.Read(unit, func(v uint64) { got = v })
	eng.Run()
	if got != a.ExpectedValue(unit) {
		t.Fatalf("folded unit reads %#x, want %#x", got, a.ExpectedValue(unit))
	}
}

func TestDegradedWriteWithLostParityIsOneAccess(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Fail(2)
	// Find a data unit whose parity lives on disk 2 but which itself
	// does not.
	var unit int64 = -1
	for n := int64(0); n < a.DataUnits(); n++ {
		loc := layout.DataLoc(a.Layout(), n)
		if loc.Disk == 2 {
			continue
		}
		s, _ := a.Layout().Locate(loc)
		if layout.ParityLoc(a.Layout(), s).Disk == 2 {
			unit = n
			break
		}
	}
	if unit < 0 {
		t.Fatal("no matching unit")
	}
	a.Write(unit, func() {})
	eng.Run()
	if n := totalCompleted(a); n != 1 {
		t.Fatalf("lost-parity write used %d accesses, want 1 (paper §7)", n)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDegradedManyOpsStayRecoverable(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Fail(7)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 1500; i++ {
		unit := rng.Int63n(a.DataUnits())
		when := rng.Float64() * 5000
		if rng.Intn(2) == 0 {
			eng.At(when, func() {
				a.Read(unit, func(v uint64) {
					_ = v
				})
			})
		} else {
			eng.At(when, func() { a.Write(unit, func() {}) })
		}
	}
	eng.Run()
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRaid5DegradedReadTouchesAllSurvivors(t *testing.T) {
	eng, a := raid5Array(t, 5, nil)
	a.Fail(1)
	var unit int64 = -1
	for n := int64(0); n < a.DataUnits(); n++ {
		if layout.DataLoc(a.Layout(), n).Disk == 1 {
			unit = n
			break
		}
	}
	a.Read(unit, func(uint64) {})
	eng.Run()
	// C-1 = 4 accesses, one on each survivor.
	for i := 0; i < 5; i++ {
		n := a.Disk(i).Stats().Completed
		want := int64(1)
		if i == 1 {
			want = 0
		}
		if n != want {
			t.Errorf("disk %d: %d accesses, want %d", i, n, want)
		}
	}
}

func TestReadValueDuringDegradedMatchesLatestWrite(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Fail(2)
	var unit int64 = -1
	for n := int64(0); n < a.DataUnits(); n++ {
		if layout.DataLoc(a.Layout(), n).Disk == 2 {
			unit = n
			break
		}
	}
	// Write (folds into parity), then read back on the fly.
	a.Write(unit, func() {
		a.Read(unit, func(v uint64) {
			if v != a.ExpectedValue(unit) {
				t.Errorf("read %#x after degraded write, want %#x", v, a.ExpectedValue(unit))
			}
		})
	})
	eng.Run()
}
