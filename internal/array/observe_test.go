package array

import (
	"testing"

	"declust/internal/disk"
)

// TestDiskObserverChain registers two observers side by side and checks
// both see every completion, in registration order, tagged with the right
// slot — the contract that lets the span tracer and a metrics collector
// coexist.
func TestDiskObserverChain(t *testing.T) {
	eng, a := testArray(t, nil)
	var first, second []int
	a.AddDiskObserver(func(slot int, e disk.Event) { first = append(first, slot) })
	a.AddDiskObserver(func(slot int, e disk.Event) {
		second = append(second, slot)
		if len(second) > len(first) {
			t.Fatal("second observer fired before the first")
		}
	})
	a.AddDiskObserver(nil) // ignored, not a chain reset

	done := 0
	for u := int64(0); u < 20; u++ {
		a.Read(u, func(uint64) { done++ })
	}
	eng.Run()
	if done != 20 {
		t.Fatalf("%d reads completed, want 20", done)
	}
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("observer chain uneven: %d vs %d events", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("event %d slots disagree: %d vs %d", i, first[i], second[i])
		}
		if first[i] < 0 || first[i] >= 21 {
			t.Fatalf("event %d on bad slot %d", i, first[i])
		}
	}
}

// TestObserveDisksReplacesChain pins the historical replace-semantics of
// ObserveDisks against the new chain: it drops every prior registration.
func TestObserveDisksReplacesChain(t *testing.T) {
	eng, a := testArray(t, nil)
	old := 0
	a.AddDiskObserver(func(int, disk.Event) { old++ })
	current := 0
	a.ObserveDisks(func(int, disk.Event) { current++ })

	a.Read(0, func(uint64) {})
	eng.Run()
	if old != 0 {
		t.Errorf("replaced observer still fired %d times", old)
	}
	if current == 0 {
		t.Error("replacement observer never fired")
	}

	a.ObserveDisks(nil)
	mark := current
	a.Read(1, func(uint64) {})
	eng.Run()
	if current != mark {
		t.Error("ObserveDisks(nil) did not stop observation")
	}
}

// TestObserverChainSurvivesReplacement: a drive installed by Replace
// inherits the full registration list.
func TestObserverChainSurvivesReplacement(t *testing.T) {
	eng, a := testArray(t, nil)
	perSlot := map[int]int{}
	a.AddDiskObserver(func(slot int, e disk.Event) { perSlot[slot]++ })
	a.AddDiskObserver(func(int, disk.Event) {})

	if err := a.Fail(3); err != nil {
		t.Fatal(err)
	}
	if err := a.Replace(); err != nil {
		t.Fatal(err)
	}
	// Drive 3 is factory-fresh (user reads of its units are still served
	// from survivors until rebuilt), so probe it directly: the installed
	// drive must carry the full chain with the right slot tag.
	a.Disk(3).Submit(&disk.Request{Start: 0, Count: 8})
	eng.Run()
	if perSlot[3] == 0 {
		t.Fatal("replacement drive's completions unobserved")
	}
}
