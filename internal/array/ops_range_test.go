package array

import (
	"math/rand"
	"testing"

	"declust/internal/layout"
)

func TestLargeWriteUsesNoPreReads(t *testing.T) {
	// A (G−1)-aligned write of G−1 units covers one stripe: G accesses.
	eng, a := testArray(t, nil) // G = 5
	a.WriteRange(0, 4, func() {})
	eng.Run()
	if n := totalCompleted(a); n != 5 {
		t.Fatalf("large write used %d accesses, want G=5", n)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPartialRangeWriteRMW(t *testing.T) {
	// 1 unit of a G=5 stripe: RMW is 2(k+1) = 4 <= G, so 4 accesses.
	eng, a := testArray(t, nil)
	a.WriteRange(0, 1, func() {})
	eng.Run()
	if n := totalCompleted(a); n != 4 {
		t.Fatalf("1-unit range write used %d accesses, want 4 (RMW)", n)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPartialRangeWriteReconstructWrite(t *testing.T) {
	// 3 units of a G=5 stripe: RMW would be 8 accesses; reconstruct-write
	// reads the 1 untouched unit and writes 4 -> 5 accesses.
	eng, a := testArray(t, nil)
	a.WriteRange(0, 3, func() {})
	eng.Run()
	if n := totalCompleted(a); n != 5 {
		t.Fatalf("3-unit range write used %d accesses, want 5 (reconstruct-write)", n)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeWriteSpanningStripes(t *testing.T) {
	// 8 units starting at 0 with G=5: stripe 0 fully (large write, 5
	// accesses) + stripe 1 one... 8 units = stripe0 units 0-3 (large
	// write: 5) + stripe1 units 4-7 (large write: 5).
	eng, a := testArray(t, nil)
	a.WriteRange(0, 8, func() {})
	eng.Run()
	if n := totalCompleted(a); n != 10 {
		t.Fatalf("8-unit aligned write used %d accesses, want 10 (two large writes)", n)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestUnalignedRangeWrite(t *testing.T) {
	// Units 2..6 with G=5: stripe 0 gets units 2,3 (k=2: RMW 6 vs
	// reconstruct G=5 -> reconstruct-write, 5 accesses), stripe 1 gets
	// unit 4 (k=1: RMW 4).
	eng, a := testArray(t, nil)
	a.WriteRange(2, 3, func() {})
	eng.Run()
	if n := totalCompleted(a); n != 9 {
		t.Fatalf("unaligned write used %d accesses, want 9", n)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeReadParallelism(t *testing.T) {
	// Under the parallel mapper, C consecutive units touch C distinct
	// disks; under stripe-index they reuse disks (the §4.2 trade-off).
	mkArray := func(parallel bool) (*Array, func()) {
		eng, a := testArray(t, func(c *Config) {
			if parallel {
				c.DataMapper = layout.NewParallelMapper(c.Layout)
			}
		})
		return a, func() { eng.Run() }
	}

	a, run := mkArray(true)
	a.ReadRange(0, 21, func() {})
	run()
	busy := 0
	for i := 0; i < 21; i++ {
		if a.Disk(i).Stats().Completed > 0 {
			busy++
		}
	}
	if busy != 21 {
		t.Fatalf("parallel mapper: %d disks used for a 21-unit read, want 21", busy)
	}

	b, run2 := mkArray(false)
	b.ReadRange(0, 21, func() {})
	run2()
	busy = 0
	for i := 0; i < 21; i++ {
		if b.Disk(i).Stats().Completed > 0 {
			busy++
		}
	}
	if busy >= 21 {
		t.Fatalf("stripe-index mapper unexpectedly reached all %d disks", busy)
	}
}

func TestRangeReadDegraded(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Fail(3)
	// Read a span crossing units on the failed disk.
	done := false
	a.ReadRange(0, 40, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("degraded range read never completed")
	}
}

func TestRangeWriteDegradedFallsBackPerUnit(t *testing.T) {
	eng, a := testArray(t, nil)
	a.Fail(3)
	a.WriteRange(0, 40, func() {})
	eng.Run()
	if err := a.CheckConsistency(); err != nil {
		t.Fatalf("degraded range write broke recoverability: %v", err)
	}
}

func TestRangeOpsDuringReconstructionStayConsistent(t *testing.T) {
	for _, alg := range []ReconAlgorithm{Baseline, UserWrites, Redirect, RedirectPiggyback} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			eng, a := testArray(t, func(c *Config) {
				c.Algorithm = alg
				c.ReconProcs = 4
			})
			a.Fail(6)
			a.Replace()
			rng := rand.New(rand.NewSource(int64(alg) + 55))
			for i := 0; i < 300; i++ {
				start := rng.Int63n(a.DataUnits() - 32)
				count := 1 + rng.Intn(12)
				when := rng.Float64() * 20000
				if rng.Intn(2) == 0 {
					eng.At(when, func() { a.ReadRange(start, count, func() {}) })
				} else {
					eng.At(when, func() { a.WriteRange(start, count, func() {}) })
				}
			}
			a.Reconstruct(nil)
			eng.Run()
			if a.Degraded() {
				t.Fatal("reconstruction did not finish")
			}
			if err := a.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRangeOpsWithParallelMapperConsistent(t *testing.T) {
	eng, a := testArray(t, func(c *Config) {
		c.DataMapper = layout.NewParallelMapper(c.Layout)
	})
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 800; i++ {
		start := rng.Int63n(a.DataUnits() - 32)
		count := 1 + rng.Intn(21)
		when := rng.Float64() * 20000
		if rng.Intn(2) == 0 {
			eng.At(when, func() { a.ReadRange(start, count, func() {}) })
		} else {
			eng.At(when, func() { a.WriteRange(start, count, func() {}) })
		}
	}
	eng.Run()
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMapperReconstructionCorrect(t *testing.T) {
	eng, a := testArray(t, func(c *Config) {
		c.DataMapper = layout.NewParallelMapper(c.Layout)
		c.Algorithm = Redirect
		c.ReconProcs = 4
	})
	a.Fail(2)
	a.Replace()
	pumpWorkload(eng, a, 800, 15000, 9)
	a.Reconstruct(nil)
	eng.Run()
	if a.Degraded() {
		t.Fatal("not healed")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRangePanics(t *testing.T) {
	_, a := testArray(t, nil)
	for _, f := range []func(){
		func() { a.ReadRange(0, 0, func() {}) },
		func() { a.WriteRange(-1, 5, func() {}) },
		func() { a.ReadRange(a.DataUnits()-1, 5, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on invalid range")
				}
			}()
			f()
		}()
	}
}

func TestRangeWriteValuesReadBack(t *testing.T) {
	eng, a := testArray(t, nil)
	a.WriteRange(10, 7, func() {
		for n := int64(10); n < 17; n++ {
			n := n
			a.Read(n, func(v uint64) {
				if v != a.ExpectedValue(n) {
					t.Errorf("unit %d read %#x, want %#x", n, v, a.ExpectedValue(n))
				}
			})
		}
	})
	eng.Run()
}
