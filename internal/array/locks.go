package array

// lockTable serializes operations on a parity stripe. Any operation that
// updates parity, touches the replacement disk, or performs a multi-unit
// consistent read (on-the-fly reconstruction) must hold its stripe's lock;
// plain single-unit reads of healthy disks need not. Each operation holds
// at most one lock, so the system cannot deadlock.
//
// The simulation is single-threaded, so this is a queue, not a mutex: if
// the stripe is free the acquiring operation runs immediately; otherwise
// its continuation waits in FIFO order.
type lockTable struct {
	held map[int64][]func()
}

// acquire runs fn now if stripe s is unlocked, otherwise queues it. The
// caller must eventually call release from the running operation.
func (t *lockTable) acquire(s int64, fn func()) {
	if t.held == nil {
		t.held = make(map[int64][]func())
	}
	q, locked := t.held[s]
	if locked {
		t.held[s] = append(q, fn)
		return
	}
	t.held[s] = nil
	fn()
}

// release unlocks stripe s, running the next waiter if any.
func (t *lockTable) release(s int64) {
	q, locked := t.held[s]
	if !locked {
		panic("array: release of unheld stripe lock")
	}
	if len(q) == 0 {
		delete(t.held, s)
		return
	}
	next := q[0]
	t.held[s] = q[1:]
	next()
}

// heldCount reports how many stripes are currently locked (for tests).
func (t *lockTable) heldCount() int { return len(t.held) }
