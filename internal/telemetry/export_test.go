package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// sampleTracer builds a small deterministic trace: one measured user read
// with a lock wait and disk segments, plus one recon cycle.
func sampleTracer() *Tracer {
	tr := New()
	rd := tr.Root("read", KindRead, 42, 10)
	lk := rd.Child(PhaseLockWait, 10)
	lk.End(11)
	rd.Segment(SegQueue, 3, 11, 14)
	rd.Segment(SegSeek, 3, 14, 16)
	rd.Segment(SegTransfer, 3, 16, 17)
	rd.SetMeasured()
	rd.End(17)

	rc := tr.Root(SpanReconCycle, KindRecon, 100, 12)
	rc.Segment(SegSeek, 5, 12, 13)
	rc.End(14)
	return tr
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := sampleTracer()
	meta := &Meta{C: 21, G: 5, Alpha: 0.2, Mode: "rebuild", Seed: 7}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf, meta); err != nil {
		t.Fatal(err)
	}
	gotMeta, spans, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta == nil || *gotMeta != *meta {
		t.Fatalf("meta round-trip: got %+v, want %+v", gotMeta, meta)
	}
	want := tr.Spans()
	if len(spans) != len(want) {
		t.Fatalf("%d spans read, want %d", len(spans), len(want))
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("span %d differs after round-trip: %+v vs %+v", i, spans[i], want[i])
		}
	}
}

func TestJSONLNoMeta(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTracer().WriteJSONL(&buf, nil); err != nil {
		t.Fatal(err)
	}
	meta, spans, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta != nil {
		t.Fatalf("phantom meta parsed from headerless file: %+v", meta)
	}
	if len(spans) != sampleTracer().Len() {
		t.Fatalf("%d spans, want %d", len(spans), sampleTracer().Len())
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, _, err := ReadJSONL(strings.NewReader("{\"id\":1}\nnot json\n")); err == nil {
		t.Error("garbage span line accepted")
	}
	// Empty input and blank lines are fine: no meta, no spans.
	meta, spans, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || meta != nil || spans != nil {
		t.Errorf("blank file: meta=%v spans=%v err=%v, want all nil", meta, spans, err)
	}
}

// failAfter errors once n bytes have been written, exercising every writer
// error return in the exporters.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errors.New("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestExportWriterErrors(t *testing.T) {
	tr := sampleTracer()
	meta := &Meta{C: 21, G: 5}
	// Sweep the failure point across the whole output so every branch that
	// can observe a write error does, at least once.
	var full bytes.Buffer
	if err := tr.WriteJSONL(&full, meta); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < full.Len(); n += 37 {
		if err := tr.WriteJSONL(&failAfter{n: n}, meta); err == nil {
			t.Fatalf("WriteJSONL with writer failing at byte %d reported no error", n)
		}
	}
	full.Reset()
	if err := tr.WriteChromeTrace(&full); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < full.Len(); n += 37 {
		if err := tr.WriteChromeTrace(&failAfter{n: n}); err == nil {
			t.Fatalf("WriteChromeTrace with writer failing at byte %d reported no error", n)
		}
	}
}

// TestChromeTraceRoundTrip parses the Chrome trace through encoding/json
// and checks the structure Perfetto relies on: a JSON array of events,
// metadata naming every track, and X events with microsecond timestamps
// matching the source spans.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	names := map[string]bool{}
	var xEvents int
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			if args, ok := ev["args"].(map[string]any); ok {
				if n, ok := args["name"].(string); ok {
					names[n] = true
				}
			}
		case "X":
			xEvents++
			if ev["dur"].(float64) < 0 {
				t.Errorf("negative duration event: %v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ev["ph"])
		}
	}
	if xEvents != tr.Len() {
		t.Errorf("%d X events, want %d (one per span)", xEvents, tr.Len())
	}
	for _, want := range []string{"raidsim", "user requests", "rebuild", "disk 5"} {
		if !names[want] {
			t.Errorf("metadata track %q missing (have %v)", want, names)
		}
	}
	// Spot-check one event's times: the root read span is 10–17 ms, i.e.
	// ts 10000 µs, dur 7000 µs on the user track.
	found := false
	for _, ev := range events {
		if ev["ph"] == "X" && ev["name"] == "read" && ev["tid"].(float64) == tidUser {
			found = true
			if ev["ts"].(float64) != 10000 || ev["dur"].(float64) != 7000 {
				t.Errorf("root read event times: ts=%v dur=%v, want 10000/7000", ev["ts"], ev["dur"])
			}
		}
	}
	if !found {
		t.Error("root read event missing from chrome trace")
	}
}
