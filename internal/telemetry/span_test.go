package telemetry

import "testing"

func TestNilTracerIsFreeNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Root("read", KindRead, 7, 1.0)
	if sp != nil {
		t.Fatalf("nil tracer handed out a real span: %+v", sp)
	}
	// Every method on the nil span must be a safe no-op: this is the whole
	// contract that lets instrumented code call unconditionally.
	child := sp.Child(PhaseLockWait, 2.0)
	if child != nil {
		t.Fatalf("nil span handed out a real child: %+v", child)
	}
	sp.Segment(SegSeek, 3, 1.0, 2.0)
	sp.SetMeasured()
	sp.End(5.0)
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatalf("nil tracer accumulated spans: %d", tr.Len())
	}

	// And it must be free: zero allocations on the whole disabled chain.
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Root("write", KindWrite, 1, 0)
		p := s.Child(PhasePreread, 0)
		p.Segment(SegQueue, 0, 0, 1)
		p.End(1)
		s.SetMeasured()
		s.End(2)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f times per request, want 0", allocs)
	}
}

func TestSpanIDsAreCreationOrdered(t *testing.T) {
	tr := New()
	root := tr.Root("read", KindRead, 3, 10)
	child := root.Child(PhaseLockWait, 10)
	root.Segment(SegQueue, 4, 10, 12)
	child.End(12)
	root.SetMeasured()
	root.End(15)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans recorded, want 3 (segment, child, root)", len(spans))
	}
	// Creation order: root=1, child=2, segment=3. Completion order: the
	// segment records immediately, the child ends next, the root last.
	seg, ch, rt := spans[0], spans[1], spans[2]
	if seg.ID != 3 || seg.Name != SegQueue || seg.Disk != 4 || seg.Parent != root.ID {
		t.Errorf("segment span wrong: %+v", seg)
	}
	if ch.ID != 2 || ch.Parent != 1 || ch.Trace != 1 || ch.Kind != KindRead || ch.Unit != 3 {
		t.Errorf("child span wrong: %+v", ch)
	}
	if rt.ID != 1 || rt.Parent != 0 || rt.Trace != 1 || !rt.Measured || rt.EndMS != 15 {
		t.Errorf("root span wrong: %+v", rt)
	}
	if ch.Measured || seg.Measured {
		t.Error("SetMeasured leaked onto non-root spans")
	}
}

func TestEndCopiesSpan(t *testing.T) {
	tr := New()
	sp := tr.Root("write", KindWrite, 0, 1)
	sp.End(2)
	sp.Name = "mutated-after-end"
	if got := tr.Spans()[0].Name; got != "write" {
		t.Fatalf("recorded span aliases the live handle: name %q", got)
	}
	if tr.Spans()[0].tr != nil {
		t.Fatal("recorded span retains a tracer pointer")
	}
}

func TestTwoTracersSameProgramSameIDs(t *testing.T) {
	make1 := func() []Span {
		tr := New()
		for i := 0; i < 5; i++ {
			sp := tr.Root("read", KindRead, int64(i), float64(i))
			sp.Segment(SegTransfer, i%2, float64(i), float64(i)+1)
			sp.End(float64(i) + 2)
		}
		return tr.Spans()
	}
	a, b := make1(), make1()
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
