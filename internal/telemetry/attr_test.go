package telemetry

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestAttributeDecomposition builds a hand-computable trace: two measured
// user requests, one with its queue wait partly behind rebuild I/O.
func TestAttributeDecomposition(t *testing.T) {
	tr := New()

	// A recon cycle keeps disk 0's arm busy at [10, 14) and [20, 22).
	rc := tr.Root(SpanReconCycle, KindRecon, 0, 10)
	rc.Segment(SegSeek, 0, 10, 12)
	rc.Segment(SegTransfer, 0, 12, 14)
	rc.Segment(SegTransfer, 0, 20, 22)
	rc.End(22)

	// Request 1: queued on disk 0 during [11, 15) — 3 ms of that window
	// overlaps the rebuild service at [11, 14).
	r1 := tr.Root("read", KindRead, 1, 11)
	lk := r1.Child(PhaseLockWait, 11)
	lk.End(11.5)
	r1.Segment(SegQueue, 0, 11, 15)
	r1.Segment(SegSeek, 0, 15, 16)
	r1.Segment(SegRotate, 0, 16, 18)
	r1.Segment(SegTransfer, 0, 18, 19)
	r1.SetMeasured()
	r1.End(19)

	// Request 2: on disk 1, no rebuild there, no interference.
	r2 := tr.Root("write", KindWrite, 2, 30)
	r2.Segment(SegQueue, 1, 30, 32)
	r2.Segment(SegTransfer, 1, 32, 33)
	r2.SetMeasured()
	r2.End(33)

	// An unmeasured warmup request must not count at all.
	warm := tr.Root("read", KindRead, 3, 0)
	warm.Segment(SegQueue, 0, 0, 5)
	warm.End(5)

	a := Attribute(tr.Spans())
	if a.Requests != 2 {
		t.Fatalf("%d measured requests, want 2", a.Requests)
	}
	// Means over 2 requests: response (8+3)/2, queue (4+2)/2,
	// interference (3+0)/2, service (4+1)/2, lock wait (0.5+0)/2.
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"response", a.MeanResponseMS, 5.5},
		{"queue", a.QueueMS, 3},
		{"interference", a.InterferenceMS, 1.5},
		{"service", a.ServiceMS, 2.5},
		{"seek", a.SeekMS, 0.5},
		{"rotate", a.RotateMS, 1},
		{"transfer", a.TransferMS, 1},
		{"lockwait", a.LockWaitMS, 0.25},
		{"otf", a.OTFMS, 0},
	}
	for _, c := range checks {
		if !approx(c.got, c.want) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

// TestAttributeMergesOverlappingReconWindows feeds overlapping rebuild
// service intervals (parallel recon processes on one drive report
// overlapping windows in completion order); the overlap must not be
// double-counted.
func TestAttributeMergesOverlappingReconWindows(t *testing.T) {
	tr := New()
	rc := tr.Root(SpanReconCycle, KindRecon, 0, 0)
	// Out of time order and overlapping: union is [10, 18).
	rc.Segment(SegTransfer, 0, 14, 18)
	rc.Segment(SegSeek, 0, 10, 15)
	rc.Segment(SegRotate, 0, 12, 16)
	rc.End(20)

	r := tr.Root("read", KindRead, 1, 10)
	r.Segment(SegQueue, 0, 10, 20) // overlaps the union for 8 ms
	r.SetMeasured()
	r.End(20)

	a := Attribute(tr.Spans())
	if !approx(a.InterferenceMS, 8) {
		t.Fatalf("interference %v ms, want 8 (double-counted overlap?)", a.InterferenceMS)
	}
	if a.InterferenceMS > a.QueueMS {
		t.Fatalf("interference %v exceeds queue wait %v", a.InterferenceMS, a.QueueMS)
	}
}

func TestAttributePhaseTotalsOrderedAndComplete(t *testing.T) {
	a := Attribute(sampleTracer().Spans())
	if len(a.PhaseTotals) == 0 {
		t.Fatal("no phase totals")
	}
	for i := 1; i < len(a.PhaseTotals); i++ {
		p, q := a.PhaseTotals[i-1], a.PhaseTotals[i]
		if p.Kind > q.Kind || (p.Kind == q.Kind && p.Name >= q.Name) {
			t.Fatalf("phase totals out of order: %+v before %+v", p, q)
		}
	}
	var spans int64
	for _, pt := range a.PhaseTotals {
		spans += pt.Count
	}
	if spans != int64(sampleTracer().Len()) {
		t.Fatalf("phase totals cover %d spans, want %d", spans, sampleTracer().Len())
	}
}

func TestAttributeEmpty(t *testing.T) {
	a := Attribute(nil)
	if a.Requests != 0 || a.MeanResponseMS != 0 || len(a.PhaseTotals) != 0 {
		t.Fatalf("empty attribution not zero: %+v", a)
	}
}

func TestOverlap(t *testing.T) {
	ivs := []interval{{10, 14}, {20, 22}, {30, 40}}
	cases := []struct {
		lo, hi, want float64
	}{
		{0, 5, 0},    // before everything
		{0, 100, 16}, // covers everything
		{11, 21, 4},  // spans two intervals partially
		{14, 20, 0},  // exactly the gap
		{35, 35, 0},  // empty window
		{12, 13, 1},  // inside one interval
	}
	for _, c := range cases {
		if got := overlap(ivs, c.lo, c.hi); !approx(got, c.want) {
			t.Errorf("overlap[%v,%v) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
	if overlap(nil, 0, 10) != 0 {
		t.Error("overlap with no intervals must be 0")
	}
}
