package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"declust/internal/metrics"
)

func startTestServer(t *testing.T) *LiveServer {
	t.Helper()
	s := NewLiveServer()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != addr {
		t.Fatalf("Addr() = %q, Start returned %q", s.Addr(), addr)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, s *LiveServer, path string) (string, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestLiveServerServesSnapshots(t *testing.T) {
	s := startTestServer(t)

	// Before any publish: empty metrics, zero progress — not errors.
	if body, _ := get(t, s, "/metrics"); body != "" {
		t.Errorf("pre-publish /metrics = %q, want empty", body)
	}

	reg := metrics.NewRegistry()
	reg.Counter("test_requests").Add(3)
	s.PublishMetrics(reg)
	s.PublishProgress(Progress{SimMS: 1500, Mode: "recon", Requests: 42,
		MeanResponseMS: 21.5, ReconDone: 10, ReconTotal: 100})

	body, ctype := get(t, s, "/metrics")
	if !strings.Contains(body, "test_requests 3") {
		t.Errorf("/metrics missing published counter:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}

	body, ctype = get(t, s, "/progress")
	if ctype != "application/json" {
		t.Errorf("/progress content type %q", ctype)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if p.SimMS != 1500 || p.Mode != "recon" || p.Requests != 42 || p.ReconDone != 10 {
		t.Errorf("/progress = %+v", p)
	}

	// pprof is mounted.
	if body, _ := get(t, s, "/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestLiveServerSweepCounters(t *testing.T) {
	s := startTestServer(t)
	s.SweepStart(4)
	s.SweepPointDone()
	s.SweepPointDone()
	// A progress publish from a running point must not reset the counters.
	s.PublishProgress(Progress{SimMS: 10})
	body, _ := get(t, s, "/progress")
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	if p.SweepDone != 2 || p.SweepTotal != 4 || p.SimMS != 10 {
		t.Errorf("sweep progress = %+v, want done 2/4 with sim 10", p)
	}
}

// TestLiveServerConcurrentScrape hammers the server from scraper goroutines
// while a publisher rewrites both snapshots — the data-race test (run under
// -race) for the snapshot-under-mutex bridge.
func TestLiveServerConcurrentScrape(t *testing.T) {
	s := startTestServer(t)
	reg := metrics.NewRegistry()
	c := reg.Counter("ops")

	stop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Add(1)
			s.PublishMetrics(reg)
			s.PublishProgress(Progress{SimMS: float64(i), Requests: i})
			if i%16 == 0 {
				s.SweepPointDone()
			}
		}
	}()

	const scrapers = 8
	var wg sync.WaitGroup
	errs := make(chan error, scrapers)
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				for _, path := range []string{"/metrics", "/progress"} {
					resp, err := http.Get("http://" + s.Addr() + path)
					if err != nil {
						errs <- err
						return
					}
					_, err = io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("GET %s: %s", path, resp.Status)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-pubDone
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestLiveServerStartErrors(t *testing.T) {
	s := NewLiveServer()
	if _, err := s.Start("256.256.256.256:0"); err == nil {
		t.Error("bad listen address accepted")
	}
	if s.Addr() != "" {
		t.Errorf("Addr() after failed start = %q", s.Addr())
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close before Start: %v", err)
	}
}
