package telemetry

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"declust/internal/metrics"
)

// Progress is the live run status served at /progress.
type Progress struct {
	SimMS          float64   `json:"sim_ms"`
	Mode           string    `json:"mode,omitempty"`
	Requests       int       `json:"requests"`
	MeanResponseMS float64   `json:"mean_response_ms"`
	DiskUtil       []float64 `json:"disk_util,omitempty"`  // busy fraction of the last interval
	DiskQueue      []int     `json:"disk_queue,omitempty"` // instantaneous queue depths
	ReconDone      int64     `json:"recon_done_units"`
	ReconTotal     int64     `json:"recon_total_units"`
	ReconETAMS     float64   `json:"recon_eta_ms"`
	SweepDone      int       `json:"sweep_done,omitempty"` // completed sweep points
	SweepTotal     int       `json:"sweep_total,omitempty"`
}

// LiveServer is an opt-in HTTP endpoint for watching a running simulation:
// Prometheus-format /metrics, JSON /progress, and net/http/pprof under
// /debug/pprof/.
//
// The simulator is single-threaded and must stay deterministic, so the
// server never touches simulator state. Instead the simulation thread
// renders snapshots (Publish*) into byte buffers under a mutex on its own
// sim-time cadence, and the concurrent HTTP handlers serve whatever
// snapshot is latest. Scrapers see slightly stale data; the simulation
// sees nothing at all.
type LiveServer struct {
	mu       sync.Mutex
	metrics  []byte
	progress Progress
	sweepN   int

	lis net.Listener
	srv *http.Server
}

// NewLiveServer returns a server with no snapshots yet; Start brings up
// the listener.
func NewLiveServer() *LiveServer { return &LiveServer{} }

// Start listens on addr (e.g. ":6060", or "127.0.0.1:0" for an ephemeral
// test port) and serves in a background goroutine. It returns the bound
// address, useful when addr requested port 0.
func (s *LiveServer) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.lis = lis
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return lis.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *LiveServer) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close shuts the listener down. In-flight requests are aborted; the
// simulation does not wait for scrapers.
func (s *LiveServer) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// PublishMetrics renders the registry into the /metrics snapshot. Called
// from the simulation thread — the only goroutine reading the registry —
// so rendering outside the lock is safe; only the swap is locked.
func (s *LiveServer) PublishMetrics(reg *metrics.Registry) {
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return // bytes.Buffer does not fail; registry nil writes nothing
	}
	s.mu.Lock()
	s.metrics = buf.Bytes()
	s.mu.Unlock()
}

// PublishProgress replaces the /progress snapshot, preserving the sweep
// counters (they advance on a different cadence, per completed point).
func (s *LiveServer) PublishProgress(p Progress) {
	s.mu.Lock()
	p.SweepDone, p.SweepTotal = s.progress.SweepDone, s.progress.SweepTotal
	s.progress = p
	s.mu.Unlock()
}

// SweepStart declares a sweep of n points.
func (s *LiveServer) SweepStart(n int) {
	s.mu.Lock()
	s.progress.SweepTotal = n
	s.mu.Unlock()
}

// SweepPointDone marks one more sweep point complete. Safe to call from
// sweep worker goroutines.
func (s *LiveServer) SweepPointDone() {
	s.mu.Lock()
	s.sweepN++
	s.progress.SweepDone = s.sweepN
	s.mu.Unlock()
}

func (s *LiveServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := s.metrics
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(body) //nolint:errcheck // best-effort scrape response
}

func (s *LiveServer) handleProgress(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	p := s.progress
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(p) //nolint:errcheck // best-effort scrape response
}
