// Package telemetry is the simulator's request-lifecycle tracing layer: a
// span tracer threaded through core, array and disk so every user access
// decomposes into causally attributed phases (arrival queueing, stripe
// lock wait, parity pre-reads and commits, on-the-fly reconstruction, and
// per-disk queue/seek/rotate/transfer segments), plus a live telemetry
// HTTP server for watching long runs.
//
// Like internal/metrics, the package follows the nil-receiver no-op idiom:
// a nil *Tracer hands out nil *Spans, and every Span method is safe and
// free on nil, so the hot paths carry one pointer field and pay only nil
// checks — no allocations, no branches taken — when tracing is off.
//
// The simulator is single-threaded and spans are stamped with simulated
// time, so a run with the same seed and configuration produces the same
// span IDs in the same order: exports are byte-identical.
package telemetry

// Span names emitted by the simulator. Disk segment names are the leaves
// the attribution analysis sums; the rest label lifecycle phases.
const (
	// Disk segments (Disk >= 0).
	SegQueue    = "disk-queue" // time waiting in the drive's scheduler queue
	SegSeek     = "seek"       // arm movement
	SegRotate   = "rotate"     // rotational positioning
	SegTransfer = "transfer"   // sectors under the head
	SegCacheHit = "cache-hit"  // served from the track read-ahead buffer
	SegTimeout  = "timeout"    // drive occupied by a transient-fault stall

	// Array phases.
	PhaseLockWait  = "lock-wait"       // stripe lock acquisition wait
	PhasePreread   = "preread"         // read-modify-write pre-reads
	PhaseCommit    = "commit"          // data+parity commit writes
	PhaseMirror    = "mirror-write"    // G=2 twin writes
	PhaseSWPreread = "sw-preread"      // small-write companion read + data write
	PhaseSWCommit  = "sw-commit"       // small-write parity commit
	PhaseOTF       = "otf-reconstruct" // degraded read rebuilt from survivors
	PhasePiggyback = "piggyback-write" // OTF result written to the replacement
	PhaseFold      = "fold-parity"     // degraded write folded into parity
	PhaseDataWrite = "data-write"      // lost-parity single-access write
	PhaseReconRead = "read-survivors"  // reconstruction cycle read phase
	PhaseReconWrit = "write-back"      // reconstruction cycle write phase

	// Root names for non-user traces.
	SpanReconCycle = "recon-cycle" // one reconstruction sweep cycle

	// Root kinds (Span.Kind); children inherit their root's kind, which is
	// how the attribution analysis separates user load from rebuild load.
	KindRead  = "read"
	KindWrite = "write"
	KindRecon = "recon"
)

// Span is one traced interval. While open it is a mutable handle; End
// copies it into the tracer's completed-span log. IDs are assigned from a
// per-tracer counter in creation order, which is deterministic for a
// deterministic simulation.
type Span struct {
	tr       *Tracer
	ID       uint64  `json:"id"`
	Parent   uint64  `json:"parent"` // 0 for roots
	Trace    uint64  `json:"trace"`  // root span's ID
	Name     string  `json:"name"`
	Kind     string  `json:"kind"`     // KindRead/KindWrite/KindRecon
	Disk     int     `json:"disk"`     // drive slot for segments; -1 otherwise
	Unit     int64   `json:"unit"`     // logical data unit (or recon offset); -1 when n/a
	StartMS  float64 `json:"start_ms"` // simulated time
	EndMS    float64 `json:"end_ms"`   //
	Measured bool    `json:"measured"` // root arrived inside the measurement window
}

// Tracer accumulates completed spans in End order. The zero value is
// ready; nil is the disabled tracer.
type Tracer struct {
	nextID uint64
	spans  []Span
}

// New returns an enabled tracer.
func New() *Tracer { return &Tracer{} }

// Root opens a top-level span: one user request or one reconstruction
// cycle. Returns nil (a valid no-op span) when t is nil.
func (t *Tracer) Root(name, kind string, unit int64, startMS float64) *Span {
	if t == nil {
		return nil
	}
	t.nextID++
	return &Span{
		tr: t, ID: t.nextID, Trace: t.nextID,
		Name: name, Kind: kind, Disk: -1, Unit: unit, StartMS: startMS,
	}
}

// Child opens a phase span under s, inheriting its kind, trace and unit.
func (s *Span) Child(name string, startMS float64) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	t.nextID++
	return &Span{
		tr: t, ID: t.nextID, Parent: s.ID, Trace: s.Trace,
		Name: name, Kind: s.Kind, Disk: -1, Unit: s.Unit, StartMS: startMS,
	}
}

// Segment records an already-finished child interval in one call — the
// disk layer learns a request's queue/seek/rotate/transfer boundaries only
// at completion time, after the fact. Zero-length segments are recorded;
// callers skip them when they carry no information.
func (s *Span) Segment(name string, diskSlot int, startMS, endMS float64) {
	if s == nil {
		return
	}
	t := s.tr
	t.nextID++
	t.spans = append(t.spans, Span{
		ID: t.nextID, Parent: s.ID, Trace: s.Trace,
		Name: name, Kind: s.Kind, Disk: diskSlot, Unit: s.Unit,
		StartMS: startMS, EndMS: endMS,
	})
}

// SetMeasured marks the span as arriving inside the measurement window;
// the attribution analysis scores only measured traces. Call before End.
func (s *Span) SetMeasured() {
	if s != nil {
		s.Measured = true
	}
}

// End closes the span at endMS and appends it to the tracer's log.
func (s *Span) End(endMS float64) {
	if s == nil {
		return
	}
	s.EndMS = endMS
	sp := *s
	sp.tr = nil
	s.tr.spans = append(s.tr.spans, sp)
}

// Spans returns the completed spans in completion order. The slice is the
// tracer's own backing store; callers must not mutate it.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Len returns the number of completed spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}
