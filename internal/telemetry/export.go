package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Meta labels a span file with the run that produced it, so analyzers can
// group files by configuration without re-parsing file names.
type Meta struct {
	C     int     `json:"c"`
	G     int     `json:"g"`
	Alpha float64 `json:"alpha"`
	Mode  string  `json:"mode"` // faultfree | degraded | rebuild
	Seed  int64   `json:"seed"`
}

// metaLine wraps Meta so the header line is self-identifying:
// {"meta":{...}} cannot be confused with a span line.
type metaLine struct {
	Meta *Meta `json:"meta"`
}

// WriteJSONL writes the tracer's spans one JSON object per line, in
// completion order, preceded by an optional meta header line. Output is
// byte-identical for a deterministic run.
func (t *Tracer) WriteJSONL(w io.Writer, meta *Meta) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if meta != nil {
		if err := enc.Encode(metaLine{Meta: meta}); err != nil {
			return err
		}
	}
	for i := range t.Spans() {
		if err := enc.Encode(&t.spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a span file written by WriteJSONL. The meta result is
// nil when the file has no header line.
func ReadJSONL(r io.Reader) (*Meta, []Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var meta *Meta
	var spans []Span
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var ml metaLine
			if err := json.Unmarshal(line, &ml); err == nil && ml.Meta != nil {
				meta = ml.Meta
				continue
			}
		}
		var sp Span
		if err := json.Unmarshal(line, &sp); err != nil {
			return nil, nil, fmt.Errorf("telemetry: bad span line: %w", err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return meta, spans, nil
}

// Chrome trace-event JSON (the "JSON Array Format" Perfetto and
// chrome://tracing import). Each completed span becomes one "X" duration
// event; timestamps are simulated microseconds. Tracks (tid) separate the
// user request stream, the rebuild stream, and each disk, named by "M"
// metadata events up front.
type chromeEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	tidUser  = 0
	tidRecon = 1
	tidDisk0 = 2 // disk i renders as track tidDisk0+i
)

func (sp *Span) tid() int {
	if sp.Disk >= 0 {
		return tidDisk0 + sp.Disk
	}
	if sp.Kind == KindRecon {
		return tidRecon
	}
	return tidUser
}

// WriteChromeTrace emits the tracer's spans as a Chrome trace-event JSON
// array, viewable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	emit := func(first bool, ev chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	meta := func(first bool, tid int, label string) error {
		return emit(first, chromeEvent{
			Ph: "M", Pid: 0, Tid: tid, Name: "thread_name",
			Args: map[string]any{"name": label},
		})
	}
	maxDisk := -1
	for i := range t.Spans() {
		if d := t.spans[i].Disk; d > maxDisk {
			maxDisk = d
		}
	}
	if err := emit(true, chromeEvent{
		Ph: "M", Pid: 0, Name: "process_name",
		Args: map[string]any{"name": "raidsim"},
	}); err != nil {
		return err
	}
	if err := meta(false, tidUser, "user requests"); err != nil {
		return err
	}
	if err := meta(false, tidRecon, "rebuild"); err != nil {
		return err
	}
	for d := 0; d <= maxDisk; d++ {
		if err := meta(false, tidDisk0+d, fmt.Sprintf("disk %d", d)); err != nil {
			return err
		}
	}
	for i := range t.Spans() {
		sp := &t.spans[i]
		args := map[string]any{"id": sp.ID, "trace": sp.Trace}
		if sp.Parent != 0 {
			args["parent"] = sp.Parent
		}
		if sp.Unit >= 0 {
			args["unit"] = sp.Unit
		}
		if err := emit(false, chromeEvent{
			Ph: "X", Pid: 0, Tid: sp.tid(), Name: sp.Name, Cat: sp.Kind,
			Ts: sp.StartMS * 1000, Dur: (sp.EndMS - sp.StartMS) * 1000,
			Args: args,
		}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
