package telemetry

import "sort"

// Attribution decomposes measured user response time by cause. All *MS
// fields are means per measured request, summed over that request's spans:
// a request touching two disks contributes both queue waits, so components
// need not add up to the response time (phases overlap and parallel disk
// accesses double-count by design — the table answers "where did the time
// go", not "what is the critical path").
type Attribution struct {
	Requests       int     // measured root spans (user reads + writes)
	MeanResponseMS float64 // root span duration

	// Disk-level decomposition of the request's transfers.
	QueueMS        float64 // waiting in drive scheduler queues
	InterferenceMS float64 // portion of QueueMS while the drive served rebuild I/O
	ServiceMS      float64 // seek + rotate + transfer
	SeekMS         float64
	RotateMS       float64
	TransferMS     float64
	TimeoutMS      float64 // transient-fault stalls absorbed by retries
	CacheHits      int64   // segments served from the read-ahead buffer

	// Array-level phases.
	LockWaitMS float64 // stripe lock acquisition
	OTFMS      float64 // on-the-fly reconstruction of degraded reads

	// PhaseTotals sums every span name over measured traces (user and
	// recon alike), for the per-phase breakdown listing.
	PhaseTotals []PhaseTotal
}

// PhaseTotal is one span name's aggregate.
type PhaseTotal struct {
	Name    string
	Kind    string
	Count   int64
	TotalMS float64
}

// interval is a half-open busy window [lo, hi) on one disk.
type interval struct{ lo, hi float64 }

// isServiceSeg reports whether a segment name occupies the drive's arm
// (queue waiters behind it are delayed by exactly these windows).
func isServiceSeg(name string) bool {
	switch name {
	case SegSeek, SegRotate, SegTransfer, SegTimeout:
		return true
	}
	return false
}

// Attribute computes the causal decomposition of one run's spans.
//
// Reconstruction interference is computed from first principles: for every
// measured user transfer's queue-wait window, the overlap with the same
// drive's reconstruction-kind service windows is time the user request
// spent waiting specifically because the arm was busy rebuilding. The
// remainder of the queue wait is ordinary user-on-user queueing.
func Attribute(spans []Span) Attribution {
	var a Attribution

	// Reconstruction service windows per disk: collect, sort by start,
	// then merge overlaps (spans arrive in completion order, not time
	// order) so the binary-searched overlap sums disjoint intervals.
	recon := map[int][]interval{}
	for i := range spans {
		sp := &spans[i]
		if sp.Kind == KindRecon && sp.Disk >= 0 && isServiceSeg(sp.Name) && sp.EndMS > sp.StartMS {
			recon[sp.Disk] = append(recon[sp.Disk], interval{sp.StartMS, sp.EndMS})
		}
	}
	for d, ivs := range recon {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
		merged := ivs[:1]
		for _, iv := range ivs[1:] {
			if last := &merged[len(merged)-1]; iv.lo <= last.hi {
				if iv.hi > last.hi {
					last.hi = iv.hi
				}
			} else {
				merged = append(merged, iv)
			}
		}
		recon[d] = merged
	}

	// Measured user traces.
	measured := map[uint64]bool{}
	for i := range spans {
		sp := &spans[i]
		if sp.Parent == 0 && sp.Measured && (sp.Kind == KindRead || sp.Kind == KindWrite) {
			measured[sp.Trace] = true
			a.Requests++
			a.MeanResponseMS += sp.EndMS - sp.StartMS
		}
	}

	phase := map[[2]string]*PhaseTotal{}
	for i := range spans {
		sp := &spans[i]
		dur := sp.EndMS - sp.StartMS
		key := [2]string{sp.Name, sp.Kind}
		pt := phase[key]
		if pt == nil {
			pt = &PhaseTotal{Name: sp.Name, Kind: sp.Kind}
			phase[key] = pt
		}
		pt.Count++
		pt.TotalMS += dur

		if !measured[sp.Trace] {
			continue
		}
		switch sp.Name {
		case SegQueue:
			a.QueueMS += dur
			a.InterferenceMS += overlap(recon[sp.Disk], sp.StartMS, sp.EndMS)
		case SegSeek:
			a.SeekMS += dur
			a.ServiceMS += dur
		case SegRotate:
			a.RotateMS += dur
			a.ServiceMS += dur
		case SegTransfer:
			a.TransferMS += dur
			a.ServiceMS += dur
		case SegTimeout:
			a.TimeoutMS += dur
		case SegCacheHit:
			a.CacheHits++
		case PhaseLockWait:
			a.LockWaitMS += dur
		case PhaseOTF:
			a.OTFMS += dur
		}
	}

	if a.Requests > 0 {
		n := float64(a.Requests)
		a.MeanResponseMS /= n
		a.QueueMS /= n
		a.InterferenceMS /= n
		a.ServiceMS /= n
		a.SeekMS /= n
		a.RotateMS /= n
		a.TransferMS /= n
		a.TimeoutMS /= n
		a.LockWaitMS /= n
		a.OTFMS /= n
	}

	a.PhaseTotals = make([]PhaseTotal, 0, len(phase))
	for _, pt := range phase {
		a.PhaseTotals = append(a.PhaseTotals, *pt)
	}
	sort.Slice(a.PhaseTotals, func(i, j int) bool {
		if a.PhaseTotals[i].Kind != a.PhaseTotals[j].Kind {
			return a.PhaseTotals[i].Kind < a.PhaseTotals[j].Kind
		}
		return a.PhaseTotals[i].Name < a.PhaseTotals[j].Name
	})
	return a
}

// overlap returns the total length of [lo, hi) covered by the sorted,
// disjoint intervals.
func overlap(ivs []interval, lo, hi float64) float64 {
	if len(ivs) == 0 || hi <= lo {
		return 0
	}
	// First interval that ends after lo.
	i := sort.Search(len(ivs), func(i int) bool { return ivs[i].hi > lo })
	var sum float64
	for ; i < len(ivs) && ivs[i].lo < hi; i++ {
		l, h := ivs[i].lo, ivs[i].hi
		if l < lo {
			l = lo
		}
		if h > hi {
			h = hi
		}
		if h > l {
			sum += h - l
		}
	}
	return sum
}
