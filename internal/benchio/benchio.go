// Package benchio parses `go test -bench` output and compares runs, so a
// checked-in JSON baseline can gate performance regressions. Stdlib only.
package benchio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line. Metrics maps unit → value for everything
// reported after the iteration count: "ns/op", "B/op", "allocs/op", and any
// custom b.ReportMetric units such as "events/req" or "events/sec".
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Suite is one benchmark run: the environment header plus every result.
type Suite struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkgs    []string `json:"pkgs,omitempty"`
	Results []Result `json:"results"`
}

// normName strips the -GOMAXPROCS suffix go test appends to benchmark
// names, so runs from machines with different core counts still compare.
func normName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// Parse reads `go test -bench` output. Unrecognized lines (PASS, ok, test
// chatter) are skipped; a run with zero benchmark lines is an error.
func Parse(r io.Reader) (Suite, error) {
	var s Suite
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			s.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			s.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			s.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			s.Pkgs = append(s.Pkgs, strings.TrimPrefix(line, "pkg: "))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: normName(fields[0]), Iterations: iters,
			Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Suite{}, fmt.Errorf("benchio: bad value %q in %q", fields[i], line)
			}
			res.Metrics[fields[i+1]] = v
		}
		s.Results = append(s.Results, res)
	}
	if err := sc.Err(); err != nil {
		return Suite{}, err
	}
	if len(s.Results) == 0 {
		return Suite{}, fmt.Errorf("benchio: no benchmark lines in input")
	}
	return s, nil
}

// Delta is one metric's change between baseline and current run. Ratio is
// new/old; for lower-is-better units a ratio above 1 is a slowdown.
type Delta struct {
	Name   string
	Metric string
	Old    float64
	New    float64
	Ratio  float64
	// Regression marks deltas beyond the comparison threshold in the bad
	// direction for the metric's polarity.
	Regression bool
}

// higherIsBetter reports the polarity of a metric unit: throughput-style
// units improve upward, everything else (times, bytes, allocations,
// events/req work counts) improves downward.
func higherIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/s") || strings.HasSuffix(unit, "/sec")
}

// Compare diffs every (benchmark, metric) present in both suites.
// threshold is the fractional change tolerated before a delta counts as a
// regression: 0.10 flags slowdowns beyond 10%. Benchmarks present in only
// one suite are ignored — adding a benchmark must not fail the gate.
func Compare(base, cur Suite, threshold float64) []Delta {
	baseByName := map[string]Result{}
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	var out []Delta
	for _, r := range cur.Results {
		b, ok := baseByName[r.Name]
		if !ok {
			continue
		}
		units := make([]string, 0, len(r.Metrics))
		for u := range r.Metrics {
			if _, ok := b.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			d := Delta{Name: r.Name, Metric: u, Old: b.Metrics[u], New: r.Metrics[u]}
			switch {
			case d.Old == 0 && d.New == 0:
				d.Ratio = 1
			case d.Old == 0:
				d.Ratio = 0 // zero baseline: flag any growth below
				d.Regression = !higherIsBetter(u)
			default:
				d.Ratio = d.New / d.Old
				if higherIsBetter(u) {
					d.Regression = d.Ratio < 1-threshold
				} else {
					d.Regression = d.Ratio > 1+threshold
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// Format renders one delta as a fixed-width report line.
func (d Delta) Format() string {
	verdict := "ok"
	if d.Regression {
		verdict = "REGRESSION"
	} else if d.Old > 0 {
		if higherIsBetter(d.Metric) && d.Ratio > 1.10 {
			verdict = "improved"
		} else if !higherIsBetter(d.Metric) && d.Ratio < 0.90 {
			verdict = "improved"
		}
	}
	return fmt.Sprintf("%-40s %-12s %14.4g %14.4g %8.3fx  %s",
		d.Name, d.Metric, d.Old, d.New, d.Ratio, verdict)
}
