package benchio

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: declust
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFaultFreeMetricsOff 	      20	  17555412 ns/op	         3.865 events/req	 7224600 B/op	  105596 allocs/op
BenchmarkFaultFreeMetricsOn-8  	      20	  15777205 ns/op	         3.870 events/req	 7325326 B/op	  106922 allocs/op
PASS
ok  	declust	0.830s
`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if s.Goos != "linux" || s.Goarch != "amd64" || len(s.Pkgs) != 1 || s.Pkgs[0] != "declust" {
		t.Errorf("bad header: %+v", s)
	}
	if len(s.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(s.Results))
	}
	r := s.Results[0]
	if r.Name != "BenchmarkFaultFreeMetricsOff" || r.Iterations != 20 {
		t.Errorf("bad first result: %+v", r)
	}
	if r.Metrics["ns/op"] != 17555412 || r.Metrics["allocs/op"] != 105596 ||
		r.Metrics["events/req"] != 3.865 {
		t.Errorf("bad metrics: %v", r.Metrics)
	}
	// -GOMAXPROCS suffix stripped so machines with different core counts compare.
	if s.Results[1].Name != "BenchmarkFaultFreeMetricsOn" {
		t.Errorf("suffix not stripped: %q", s.Results[1].Name)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok declust 0.1s\n")); err == nil {
		t.Fatal("want error for input with no benchmark lines")
	}
}

func mkSuite(ns, allocs, throughput float64) Suite {
	return Suite{Results: []Result{{
		Name: "BenchmarkX", Iterations: 10,
		Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs, "events/sec": throughput},
	}}}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := mkSuite(1000, 100, 5000)
	// 20% slower, 20% more allocations, 20% lower throughput: all three
	// metrics breach a 10% threshold in their bad direction.
	cur := mkSuite(1200, 120, 4000)
	deltas := Compare(base, cur, 0.10)
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3: %+v", len(deltas), deltas)
	}
	for _, d := range deltas {
		if !d.Regression {
			t.Errorf("%s %s ratio %.2f not flagged", d.Name, d.Metric, d.Ratio)
		}
	}
}

func TestCompareAcceptsImprovementAndNoise(t *testing.T) {
	base := mkSuite(1000, 100, 5000)
	// 5% slower is within a 10% threshold; fewer allocations and higher
	// throughput are improvements.
	cur := mkSuite(1050, 50, 9000)
	for _, d := range Compare(base, cur, 0.10) {
		if d.Regression {
			t.Errorf("%s %s ratio %.2f wrongly flagged", d.Name, d.Metric, d.Ratio)
		}
	}
}

func TestCompareThresholdOverride(t *testing.T) {
	base := mkSuite(1000, 100, 5000)
	cur := mkSuite(1200, 100, 5000)
	strict := Compare(base, cur, 0.10)
	loose := Compare(base, cur, 0.50)
	if !strict[2].Regression { // units sort: allocs/op, events/sec, ns/op
		t.Error("20% ns/op slowdown not flagged at threshold 0.10")
	}
	if loose[2].Regression {
		t.Error("20% ns/op slowdown flagged at threshold 0.50")
	}
}

func TestCompareIgnoresUnmatchedBenchmarks(t *testing.T) {
	base := mkSuite(1000, 100, 5000)
	cur := mkSuite(1000, 100, 5000)
	cur.Results = append(cur.Results, Result{Name: "BenchmarkNew",
		Metrics: map[string]float64{"ns/op": 1}})
	deltas := Compare(base, cur, 0.10)
	for _, d := range deltas {
		if d.Name == "BenchmarkNew" {
			t.Error("benchmark absent from baseline must not produce deltas")
		}
	}
}

func TestDeltaFormat(t *testing.T) {
	d := Delta{Name: "BenchmarkX", Metric: "ns/op", Old: 1000, New: 2000, Ratio: 2, Regression: true}
	if s := d.Format(); !strings.Contains(s, "REGRESSION") {
		t.Errorf("missing verdict: %q", s)
	}
	d = Delta{Name: "BenchmarkX", Metric: "ns/op", Old: 1000, New: 400, Ratio: 0.4}
	if s := d.Format(); !strings.Contains(s, "improved") {
		t.Errorf("missing improvement verdict: %q", s)
	}
}
