package store

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"declust/internal/layout"
)

// The two-failure chaos invariant: the P+Q store runs thousands of
// concurrent operations against fault-injecting backends — transient
// errors, latent sector errors, torn writes, transient read corruption —
// loses TWO disks mid-run, serves a doubly-degraded window, rebuilds both
// slots under load, and at the end must be parity-consistent on both
// equations with every acknowledged write readable byte-for-byte.
// make store-chaos-2f runs this under the race detector.
//
// Fault placement follows the same collision-free discipline as the
// single-parity chaos run, tightened for the smaller margin of the
// two-down window (where the code has no spare correction power left):
// LSEs arrive only on the first victim disk, which is quiesced and
// scrubbed while the store is still healthy — so no persistent damage can
// sit on a survivor once two disks are gone. Transient faults retry
// clean, read corruption clears on the re-read readPhys already performs,
// and torn writes are repaired by the engine's own write retry, all under
// the stripe lock.

// chaos2FSecondDisk is the second victim; it never carries LSEs.
const chaos2FSecondDisk = 0

func TestChaos2FDoubleFailureRebuild(t *testing.T) {
	seed := chaosSeed(t)
	recordChaosSeed(t, seed)

	const (
		workers = 12
		c       = 7
		g       = 4 // P+Q: 2 data + P + Q per stripe
	)
	mk := func(disk int) FaultConfig {
		cfg := chaosRates(disk)
		cfg.Seed = seed + int64(disk)
		return cfg
	}
	lay := testPQLayout(t, c, g)
	usable := layout.UsableUnitsPerDisk(lay, 64)
	fds := make([]*FaultDisk, c)
	disks := make([]Disk, c)
	for i := range disks {
		fds[i] = NewFaultDisk(NewMemDisk(usable, 512), mk(i))
		disks[i] = fds[i]
	}
	s, err := New(Config{
		Layout:       lay,
		UnitsPerDisk: 64,
		UnitSize:     512,
		Disks:        disks,
		Retries:      6,
		RetryBackoff: 100 * time.Microsecond,
		// The parallel fast path: fanned two-erasure decodes and commits
		// racing 12 clients plus two sharded rebuilds, all under -race.
		IOWorkers:      8,
		RebuildWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	per := s.DataUnits() / workers
	if per < 4 {
		t.Fatalf("only %d units per worker; geometry too small", per)
	}

	var (
		ops  atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	versions := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		lo := int64(w) * per
		hi := lo + per
		if w == workers-1 {
			hi = s.DataUnits()
		}
		vers := make([]uint64, hi-lo)
		versions[w] = vers
		wg.Add(1)
		go func(w int, lo, hi int64, vers []uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*37 + int64(w)))
			buf := make([]byte, s.UnitSize())
			span := hi - lo
			for u := lo; u < hi; u++ {
				fill(buf, u, 1)
				if err := s.WriteUnit(u, buf); err != nil {
					t.Errorf("worker %d: settle WriteUnit(%d): %v", w, u, err)
					return
				}
				vers[u-lo] = 1
			}
			for !stop.Load() {
				u := lo + rng.Int63n(span)
				switch p := rng.Intn(100); {
				case p < 50: // overwrite: the six-access dual-parity RMW
					v := vers[u-lo] + 1
					fill(buf, u, v)
					if err := s.WriteUnit(u, buf); err != nil {
						t.Errorf("worker %d: WriteUnit(%d): %v", w, u, err)
						return
					}
					vers[u-lo] = v
				case p < 85: // read, verify last acknowledged version
					if err := s.ReadUnit(u, buf); err != nil {
						t.Errorf("worker %d: ReadUnit(%d): %v", w, u, err)
						return
					}
					if !patternMatches(buf, u, vers[u-lo]) {
						t.Errorf("worker %d: unit %d does not match acknowledged version %d", w, u, vers[u-lo])
						return
					}
				default: // range ops within the owned block
					n := 2 + rng.Int63n(3)
					if u+n > hi {
						u = hi - n
					}
					rbuf := make([]byte, int(n)*s.UnitSize())
					if rng.Intn(2) == 0 {
						if err := s.ReadRange(u, rbuf); err != nil {
							t.Errorf("worker %d: ReadRange(%d,%d): %v", w, u, n, err)
							return
						}
						for i := int64(0); i < n; i++ {
							if !patternMatches(rbuf[i*int64(s.UnitSize()):(i+1)*int64(s.UnitSize())], u+i, vers[u+i-lo]) {
								t.Errorf("worker %d: range unit %d stale", w, u+i)
								return
							}
						}
					} else {
						for i := int64(0); i < n; i++ {
							fill(rbuf[i*int64(s.UnitSize()):(i+1)*int64(s.UnitSize())], u+i, vers[u+i-lo]+1)
						}
						if err := s.WriteRange(u, rbuf); err != nil {
							t.Errorf("worker %d: WriteRange(%d,%d): %v", w, u, n, err)
							return
						}
						for i := int64(0); i < n; i++ {
							vers[u+i-lo]++
						}
					}
				}
				ops.Add(1)
			}
		}(w, lo, hi, vers)
	}

	waitOps := func(target int64, what string) {
		deadline := time.Now().Add(2 * time.Minute)
		for ops.Load() < target && !t.Failed() {
			if time.Now().After(deadline) {
				stop.Store(true)
				wg.Wait()
				t.Fatalf("timed out waiting for %s (%d/%d ops)", what, ops.Load(), target)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitDegradedReads := func(delta int64) {
		base := s.Stats().DegradedReads
		deadline := time.Now().Add(2 * time.Minute)
		for s.Stats().DegradedReads < base+delta && !t.Failed() {
			if time.Now().After(deadline) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 1: healthy chaos.
	waitOps(4000, "healthy chaos phase")

	// Phase 2: quiesce the LSE source and scrub while still healthy — the
	// scrub covers every stripe only while nothing is lost, and the
	// two-down window has no spare correction power for a latent error.
	lseCfg := chaosRates(chaosLSEDisk)
	lseCfg.LSERate = 0
	fds[chaosLSEDisk].SetConfig(lseCfg)
	if _, err := s.Scrub(); err != nil {
		t.Fatalf("pre-failure scrub: %v", err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Phase 3: first failure under load; hold a singly-degraded window.
	if err := s.Fail(chaosLSEDisk); err != nil {
		t.Fatalf("Fail(%d): %v", chaosLSEDisk, err)
	}
	waitDegradedReads(20)
	waitOps(ops.Load()+1000, "singly-degraded phase")

	// Phase 4: second failure — the P+Q code is now saturated. Every read
	// touching both victims is a two-erasure decode; writes fold forward.
	if !t.Failed() {
		if err := s.Fail(chaos2FSecondDisk); err != nil {
			t.Fatalf("Fail(%d): %v", chaos2FSecondDisk, err)
		}
	}
	waitDegradedReads(20)
	waitOps(ops.Load()+1000, "doubly-degraded phase")

	// Phase 5: rebuild both slots, oldest first, onto replacements that
	// inject faults too. The store stays degraded between the rebuilds.
	if !t.Failed() {
		for i, want := range []Mode{Degraded, Healthy} {
			replCfg := FaultConfig{Seed: seed + 100 + int64(i),
				TransientRate: 0.02, TornWriteRate: 0.015}
			repl := NewFaultDisk(NewMemDisk(s.unitsPerDisk, s.UnitSize()), replCfg)
			if err := s.Rebuild(repl); err != nil {
				t.Fatalf("Rebuild %d under chaos: %v", i+1, err)
			}
			if got := s.Mode(); got != want {
				t.Fatalf("Mode after rebuild %d = %v, want %v", i+1, got, want)
			}
			if i == 0 {
				fds[chaosLSEDisk] = repl
			} else {
				fds[chaos2FSecondDisk] = repl
			}
		}
	}

	// Phase 6: healthy again, keep the pressure on a little longer.
	waitOps(ops.Load()+1000, "post-rebuild phase")

	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Quiesce everything and verify the invariant.
	for _, fd := range fds {
		fd.Quiesce()
	}
	if _, err := s.Scrub(); err != nil {
		t.Fatalf("final scrub: %v", err)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatalf("CheckParity after chaos: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync after chaos: %v", err)
	}
	buf := make([]byte, s.UnitSize())
	for w := 0; w < workers; w++ {
		lo := int64(w) * per
		for i, v := range versions[w] {
			u := lo + int64(i)
			if err := s.ReadUnit(u, buf); err != nil {
				t.Fatalf("final ReadUnit(%d): %v", u, err)
			}
			if !patternMatches(buf, u, v) {
				t.Fatalf("unit %d lost acknowledged version %d", u, v)
			}
		}
	}

	st := s.Stats()
	t.Logf("chaos-2f: ops=%d retries=%d healed=%d media=%d checksum=%d degradedReads=%d rebuilt=%d scrubRepairs=%d",
		ops.Load(), st.Retries, st.HealedUnits, st.MediaErrors, st.ChecksumErrors,
		st.DegradedReads, st.RebuiltUnits, st.ScrubUnitRepairs)
	if st.Retries == 0 {
		t.Error("chaos-2f run exercised no retries")
	}
	if st.DegradedReads == 0 {
		t.Error("chaos-2f run exercised no degraded reads")
	}
	if st.Rebuilds != 2 {
		t.Errorf("Rebuilds = %d, want 2", st.Rebuilds)
	}
}
