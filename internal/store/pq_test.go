package store

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"declust/internal/core"
	"declust/internal/layout"
)

// testPQLayout selects a P+Q dual-parity layout the way the facade does.
func testPQLayout(t testing.TB, c, g int) layout.Layout {
	t.Helper()
	m, err := core.NewPQMapping(c, g, 0)
	if err != nil {
		t.Fatalf("NewPQMapping(%d, %d): %v", c, g, err)
	}
	return m.Layout
}

func newTestPQStore(t testing.TB, c, g int, unitsPerDisk int64, unitSize int) *Store {
	t.Helper()
	s, err := New(Config{
		Layout:       testPQLayout(t, c, g),
		UnitsPerDisk: unitsPerDisk,
		UnitSize:     unitSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPQRoundTripAndParity(t *testing.T) {
	s := newTestPQStore(t, 7, 4, 64, 512)
	if got := s.Parities(); got != 2 {
		t.Fatalf("Parities() = %d, want 2", got)
	}
	fillAll(t, s, 1)
	for n := int64(0); n < s.DataUnits(); n++ {
		verifyUnit(t, s, n, 1)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatal(err)
	}
	// Overwrites take the six-access delta RMW; both equations must follow.
	buf := make([]byte, s.UnitSize())
	for n := int64(0); n < s.DataUnits(); n += 2 {
		fill(buf, n, 2)
		if err := s.WriteUnit(n, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CheckParity(); err != nil {
		t.Fatal(err)
	}
	// Range writes cover the large-write (fresh P and Q) path.
	span := make([]byte, int(s.DataUnits())*s.UnitSize())
	for n := int64(0); n < s.DataUnits(); n++ {
		fill(span[n*int64(s.UnitSize()):(n+1)*int64(s.UnitSize())], n, 3)
	}
	if err := s.WriteRange(0, span); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatal(err)
	}
	for n := int64(0); n < s.DataUnits(); n++ {
		verifyUnit(t, s, n, 3)
	}
}

// TestPQTwoErasureDecodeBranches drives each of the three 2-erasure decode
// cases by choosing which two disks to fail relative to stripe 0's layout:
// erased P + a data unit (decode through Q), erased Q + a data unit
// (decode through P, recompute Q), and two data units (the Pxy/Qxy
// two-unknown solve). Every unit of the store must stay byte-exact through
// the double-degraded window, the writes, and both rebuilds.
func TestPQTwoErasureDecodeBranches(t *testing.T) {
	lay := testPQLayout(t, 7, 4)
	pDisk := layout.ParityLocOf(lay, 0, 0).Disk
	qDisk := layout.ParityLocOf(lay, 0, 1).Disk
	d0 := lay.Unit(0, layout.DataPos(lay, 0, 0)).Disk
	d1 := lay.Unit(0, layout.DataPos(lay, 0, 1)).Disk
	cases := []struct {
		name  string
		fails [2]int
	}{
		{"erased-P", [2]int{pDisk, d0}},
		{"erased-Q", [2]int{qDisk, d0}},
		{"two-data", [2]int{d0, d1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(Config{Layout: lay, UnitsPerDisk: 64, UnitSize: 512})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			fillAll(t, s, 1)
			if err := s.Fail(tc.fails[0]); err != nil {
				t.Fatal(err)
			}
			if err := s.Fail(tc.fails[1]); err != nil {
				t.Fatal(err)
			}
			if got := s.FailedDisks(); len(got) != 2 {
				t.Fatalf("FailedDisks() = %v, want two entries", got)
			}
			// Every unit must decode while doubly degraded.
			for n := int64(0); n < s.DataUnits(); n++ {
				verifyUnit(t, s, n, 1)
			}
			if s.Stats().DegradedReads == 0 {
				t.Fatal("no reads were served by reconstruction")
			}
			// Writes while doubly degraded: folds, lost parity, delta RMW.
			buf := make([]byte, s.UnitSize())
			for n := int64(0); n < s.DataUnits(); n += 3 {
				fill(buf, n, 2)
				if err := s.WriteUnit(n, buf); err != nil {
					t.Fatal(err)
				}
			}
			for _, want := range []Mode{Degraded, Healthy} {
				if err := s.Rebuild(NewMemDisk(s.unitsPerDisk, s.UnitSize())); err != nil {
					t.Fatal(err)
				}
				if got := s.Mode(); got != want {
					t.Fatalf("mode %v after rebuild, want %v", got, want)
				}
			}
			for n := int64(0); n < s.DataUnits(); n++ {
				v := uint64(1)
				if n%3 == 0 {
					v = 2
				}
				verifyUnit(t, s, n, v)
			}
			if err := s.CheckParity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPQEveryTwoDisksRecover is the double-failure property over ALL disk
// pairs: fail d1, write through the window, fail d2, write again, verify
// everything byte-for-byte, rebuild both, verify again. Single parity
// proves this for every single disk; P+Q must prove it for every pair.
func TestPQEveryTwoDisksRecover(t *testing.T) {
	lay := testPQLayout(t, 7, 4)
	for d1 := 0; d1 < lay.Disks(); d1++ {
		for d2 := d1 + 1; d2 < lay.Disks(); d2++ {
			s, err := New(Config{Layout: lay, UnitsPerDisk: 32, UnitSize: 512})
			if err != nil {
				t.Fatal(err)
			}
			fillAll(t, s, 1)
			if err := s.Fail(d1); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, s.UnitSize())
			for n := int64(0); n < s.DataUnits(); n += 3 {
				fill(buf, n, 2)
				if err := s.WriteUnit(n, buf); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Fail(d2); err != nil {
				t.Fatal(err)
			}
			for n := int64(1); n < s.DataUnits(); n += 3 {
				fill(buf, n, 3)
				if err := s.WriteUnit(n, buf); err != nil {
					t.Fatal(err)
				}
			}
			version := func(n int64) uint64 {
				switch n % 3 {
				case 0:
					return 2
				case 1:
					return 3
				}
				return 1
			}
			for n := int64(0); n < s.DataUnits(); n++ {
				verifyUnit(t, s, n, version(n))
			}
			if err := s.Rebuild(NewMemDisk(s.unitsPerDisk, s.UnitSize())); err != nil {
				t.Fatalf("pair (%d,%d) first rebuild: %v", d1, d2, err)
			}
			if err := s.Rebuild(NewMemDisk(s.unitsPerDisk, s.UnitSize())); err != nil {
				t.Fatalf("pair (%d,%d) second rebuild: %v", d1, d2, err)
			}
			if got := s.Mode(); got != Healthy {
				t.Fatalf("pair (%d,%d): mode %v after both rebuilds", d1, d2, got)
			}
			for n := int64(0); n < s.DataUnits(); n++ {
				verifyUnit(t, s, n, version(n))
			}
			if err := s.CheckParity(); err != nil {
				t.Fatalf("pair (%d,%d): %v", d1, d2, err)
			}
			s.Close()
		}
	}
}

func TestPQThirdFailureRejected(t *testing.T) {
	s := newTestPQStore(t, 7, 4, 32, 512)
	fillAll(t, s, 1)
	if err := s.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(0); err == nil {
		t.Fatal("re-failing the same disk succeeded")
	}
	if err := s.Fail(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(2); err == nil {
		t.Fatal("third concurrent failure accepted")
	}
}

// TestPQScrubHealsTwoDamagedUnits rots two units of one stripe — beyond
// single parity, within P+Q — and expects the scrub to reconstruct and
// rewrite both. A third rotted unit must report ErrUnrecoverable.
func TestPQScrubHealsTwoDamagedUnits(t *testing.T) {
	s := newTestPQStore(t, 7, 4, 64, 512)
	fillAll(t, s, 4)
	st := s.st.Load()
	for j := 0; j < 2; j++ {
		u := s.lay.Unit(0, j)
		if err := st.disks[u.Disk].WriteUnit(u.Offset, bytes.Repeat([]byte{0xEE}, s.physSize)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if res.UnitRepairs != 1 {
		t.Fatalf("UnitRepairs = %d stripes, want 1", res.UnitRepairs)
	}
	if healed := s.Stats().HealedUnits; healed != 2 {
		t.Fatalf("HealedUnits = %d, want 2", healed)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatalf("CheckParity after scrub: %v", err)
	}
	for n := int64(0); n < s.DataUnits(); n++ {
		verifyUnit(t, s, n, 4)
	}

	// Three rotted units in one stripe exceed even P+Q.
	st = s.st.Load()
	for j := 0; j < 3; j++ {
		u := s.lay.Unit(1, j)
		if err := st.disks[u.Disk].WriteUnit(u.Offset, bytes.Repeat([]byte{0xBD}, s.physSize)); err != nil {
			t.Fatal(err)
		}
	}
	res, err = s.Scrub()
	if err == nil || !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("Scrub returned %v, want ErrUnrecoverable", err)
	}
	if res.Unrecoverable != 1 {
		t.Fatalf("Unrecoverable = %d, want 1", res.Unrecoverable)
	}
}

// TestPQSelfHealingDegradedRead damages a survivor while one disk is
// already lost: a degraded read then needs both remaining codes — the
// damaged unit is absorbed as a second erasure, healed in place, and the
// lost unit's contents still come back byte-exact.
func TestPQSelfHealingDegradedRead(t *testing.T) {
	s := newTestPQStore(t, 7, 4, 64, 512)
	fillAll(t, s, 1)
	// Find a data unit, fail its disk, then rot one sibling of its stripe.
	n := int64(5)
	loc := s.mapper.Loc(n)
	stripe, _ := s.lay.Locate(loc)
	if err := s.Fail(loc.Disk); err != nil {
		t.Fatal(err)
	}
	st := s.st.Load()
	var sib layout.Loc
	for j := 0; j < s.lay.G(); j++ {
		u := s.lay.Unit(stripe, j)
		if u.Disk != loc.Disk {
			sib = u
			break
		}
	}
	if err := st.disks[sib.Disk].WriteUnit(sib.Offset, bytes.Repeat([]byte{0xAA}, s.physSize)); err != nil {
		t.Fatal(err)
	}
	verifyUnit(t, s, n, 1)
	if s.Stats().HealedUnits == 0 {
		t.Fatal("damaged survivor was not healed in place")
	}
	// The whole store must still verify.
	for u := int64(0); u < s.DataUnits(); u++ {
		verifyUnit(t, s, u, 1)
	}
}

// TestPQConcurrentDoubleFailureRebuild is the tentpole acceptance run:
// concurrent clients read and write while the main goroutine fails two
// disks mid-traffic, holds a doubly-degraded window, then rebuilds both.
// Under -race this doubles as the engine's publication-safety proof; at
// the end every acknowledged write reads back byte-for-byte and both
// parity equations balance.
func TestPQConcurrentDoubleFailureRebuild(t *testing.T) {
	lay := testPQLayout(t, 7, 4)
	s, err := New(Config{
		Layout: lay, UnitsPerDisk: 64, UnitSize: 512,
		IOWorkers: 8, RebuildWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const workers = 12
	per := s.DataUnits() / workers
	if per < 2 {
		t.Fatalf("only %d units per worker", per)
	}
	var (
		ops  atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	versions := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		lo := int64(w) * per
		hi := lo + per
		if w == workers-1 {
			hi = s.DataUnits()
		}
		vers := make([]uint64, hi-lo)
		versions[w] = vers
		wg.Add(1)
		go func(w int, lo, hi int64, vers []uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			buf := make([]byte, s.UnitSize())
			for u := lo; u < hi; u++ {
				fill(buf, u, 1)
				if err := s.WriteUnit(u, buf); err != nil {
					t.Errorf("worker %d: settle WriteUnit(%d): %v", w, u, err)
					return
				}
				vers[u-lo] = 1
			}
			for !stop.Load() {
				u := lo + rng.Int63n(hi-lo)
				if rng.Intn(2) == 0 {
					v := vers[u-lo] + 1
					fill(buf, u, v)
					if err := s.WriteUnit(u, buf); err != nil {
						t.Errorf("worker %d: WriteUnit(%d): %v", w, u, err)
						return
					}
					vers[u-lo] = v
				} else {
					if err := s.ReadUnit(u, buf); err != nil {
						t.Errorf("worker %d: ReadUnit(%d): %v", w, u, err)
						return
					}
					if !patternMatches(buf, u, vers[u-lo]) {
						t.Errorf("worker %d: unit %d stale (want version %d)", w, u, vers[u-lo])
						return
					}
				}
				ops.Add(1)
			}
		}(w, lo, hi, vers)
	}

	waitOps := func(target int64, what string) {
		deadline := time.Now().Add(2 * time.Minute)
		for ops.Load() < target && !t.Failed() {
			if time.Now().After(deadline) {
				stop.Store(true)
				wg.Wait()
				t.Fatalf("timed out waiting for %s (%d/%d ops)", what, ops.Load(), target)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	waitOps(2000, "healthy traffic")
	if err := s.Fail(1); err != nil {
		t.Fatalf("first Fail: %v", err)
	}
	waitOps(ops.Load()+1000, "single-degraded traffic")
	if err := s.Fail(4); err != nil {
		t.Fatalf("second Fail: %v", err)
	}
	waitOps(ops.Load()+1000, "double-degraded traffic")
	if !t.Failed() {
		if err := s.Rebuild(NewMemDisk(s.unitsPerDisk, s.UnitSize())); err != nil {
			t.Fatalf("first Rebuild: %v", err)
		}
		if err := s.Rebuild(NewMemDisk(s.unitsPerDisk, s.UnitSize())); err != nil {
			t.Fatalf("second Rebuild: %v", err)
		}
	}
	waitOps(ops.Load()+1000, "post-rebuild traffic")
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if got := s.Mode(); got != Healthy {
		t.Fatalf("mode %v after both rebuilds, want healthy", got)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatalf("CheckParity after double failure: %v", err)
	}
	buf := make([]byte, s.UnitSize())
	for w := 0; w < workers; w++ {
		lo := int64(w) * per
		for i, v := range versions[w] {
			u := lo + int64(i)
			if err := s.ReadUnit(u, buf); err != nil {
				t.Fatalf("final ReadUnit(%d): %v", u, err)
			}
			if !patternMatches(buf, u, v) {
				t.Fatalf("unit %d lost acknowledged version %d", u, v)
			}
		}
	}
	st := s.Stats()
	t.Logf("pq double failure: ops=%d degradedReads=%d rebuilt=%d foldedWrites=%d",
		ops.Load(), st.DegradedReads, st.RebuiltUnits, st.FoldedWrites)
	if st.DegradedReads == 0 {
		t.Error("run exercised no degraded reads")
	}
	if st.Rebuilds != 2 {
		t.Errorf("Rebuilds = %d, want 2", st.Rebuilds)
	}
}

// TestPQSingleParityGolden pins the Parities:1 byte path: a store over the
// classic single-parity layout must produce the exact same on-disk bytes
// whether or not the P+Q code exists in the binary — i.e. the dispatch is
// dormant at parities==1. The golden is the single-parity store itself,
// byte-compared disk-for-disk against a twin built before any PQ write
// path can diverge (both write the same sequence; their backends must
// agree exactly).
func TestPQSingleParityGolden(t *testing.T) {
	build := func() *Store {
		disks := make([]Disk, 7)
		for i := range disks {
			disks[i] = NewMemDisk(64, 512)
		}
		s, err := New(Config{
			Layout: testLayout(t, 7, 3), UnitsPerDisk: 64, UnitSize: 512, Disks: disks,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := build(), build()
	defer a.Close()
	defer b.Close()
	buf := make([]byte, a.UnitSize())
	for n := int64(0); n < a.DataUnits(); n++ {
		fill(buf, n, 11)
		if err := a.WriteUnit(n, buf); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteUnit(n, buf); err != nil {
			t.Fatal(err)
		}
	}
	pa := make([]byte, a.physSize)
	pb := make([]byte, b.physSize)
	sta, stb := a.st.Load(), b.st.Load()
	for d := 0; d < 7; d++ {
		for off := int64(0); off < 64; off++ {
			if sta.disks[d].ReadUnit(off, pa) != nil {
				continue
			}
			if err := stb.disks[d].ReadUnit(off, pb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pa, pb) {
				t.Fatalf("disk %d offset %d: single-parity stores diverge", d, off)
			}
		}
	}
}
