// Package store is a real (non-simulated-time) declustered storage
// engine: the paper's parity-declustered layout serving actual bytes to
// concurrent goroutines, rather than simulated timings to an event loop.
//
// A Store stripes fixed-size units over C disk backends using the same
// internal/layout mappings as the simulator (block-design declustering or
// left-symmetric RAID 5), maintains XOR parity on the four-access
// read-modify-write path, and stays available through a single disk
// failure: reads of lost units reconstruct on the fly from the G−1
// survivors, writes to lost units fold into the parity unit, and a
// background Rebuild sweep regenerates the failed disk's contents onto a
// replacement stripe by stripe while client goroutines keep issuing
// requests.
//
// Concurrency model. Every operation runs under its parity stripe's lock
// (a striped RWMutex table): reads share, parity updates and rebuild
// exclude. Failure-state transitions (Fail, Replace, the heal at the end
// of Rebuild) publish an immutable state snapshot through an atomic
// pointer; operations load the snapshot after acquiring their stripe
// lock, so the lock's happens-before edge guarantees each stripe's
// readers observe at least the state of the last writer to that stripe.
// An operation holds at most one stripe lock, so the engine cannot
// deadlock.
//
// Backends implement the Disk interface: NewMemDisk (a byte slice per
// disk) and OpenFileDisk (one flat file per disk) are provided; anything
// addressable by (unit offset → fixed-size block) can slot in, which is
// what keeps mirrored/hybrid organizations implementable later without
// touching the engine. NewFaultDisk wraps any backend with seed-driven
// fault injection (transients, latent sector errors, torn and lost
// writes, corruption, latency) for chaos testing.
//
// Failure and durability contract. Every unit carries an 8-byte checksum
// trailer (PhysUnitSize bytes on the backend); every read verifies it, so
// corruption is detected, never returned. Transient backend errors
// (ErrTransient) retry with exponential backoff; damage — media errors
// (ErrMedia) and persistent checksum mismatches — triggers the
// self-healing read: the unit is reconstructed from its stripe's
// survivors and rewritten in place. Persistent errors score against the
// disk and Config.FailThreshold can auto-Fail a dying device. Parity is
// made crash-consistent by a region-granular write-intent log: a stripe's
// region is durably marked dirty before its first write and cleared
// lazily at Store.Sync / clean Close, and New resynchronizes every stripe
// of every dirty region before serving — so a crash mid-parity-update is
// always repaired at next open. Scrub is the background patrol sweep:
// it verifies every stripe's checksums and parity equation under live
// load, repairing damaged units and recomputing parity for stripes
// carrying the lost-write signature. One damage class is beyond unit
// checksums by construction: a write acknowledged but never persisted
// leaves the old, self-consistent unit in place — only the parity scrub
// notices, and it resolves the inconsistency in favor of data.
package store
