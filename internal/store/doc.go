// Package store is a real (non-simulated-time) declustered storage
// engine: the paper's parity-declustered layout serving actual bytes to
// concurrent goroutines, rather than simulated timings to an event loop.
//
// A Store stripes fixed-size units over C disk backends using the same
// internal/layout mappings as the simulator (block-design declustering or
// left-symmetric RAID 5), maintains XOR parity on the four-access
// read-modify-write path, and stays available through a single disk
// failure: reads of lost units reconstruct on the fly from the G−1
// survivors, writes to lost units fold into the parity unit, and a
// background Rebuild sweep regenerates the failed disk's contents onto a
// replacement stripe by stripe while client goroutines keep issuing
// requests.
//
// Concurrency model. Every operation runs under its parity stripe's lock
// (a striped RWMutex table): reads share, parity updates and rebuild
// exclude. Failure-state transitions (Fail, Replace, the heal at the end
// of Rebuild) publish an immutable state snapshot through an atomic
// pointer; operations load the snapshot after acquiring their stripe
// lock, so the lock's happens-before edge guarantees each stripe's
// readers observe at least the state of the last writer to that stripe.
// An operation holds at most one stripe lock, so the engine cannot
// deadlock.
//
// Backends implement the Disk interface: NewMemDisk (a byte slice per
// disk) and OpenFileDisk (one flat file per disk) are provided; anything
// addressable by (unit offset → fixed-size block) can slot in, which is
// what keeps mirrored/hybrid organizations implementable later without
// touching the engine.
package store
