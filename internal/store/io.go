package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"declust/internal/layout"
)

// This file is the engine's only doorway to Disk backends. Every access
// goes through it so one place implements the robustness discipline:
//
//   - transient errors (ErrTransient) are retried with exponential
//     backoff, a fresh attempt drawing a fresh outcome;
//   - every read verifies the unit's checksum trailer; every write stamps
//     one — corruption can be detected, never returned;
//   - persistent failures (exhausted retries, unknown errors, confirmed
//     media/checksum damage) score against the disk, and a disk crossing
//     Config.FailThreshold is taken out of service with Fail instead of
//     being allowed to keep serving garbage;
//   - damaged units are healed where the lock held permits it: under a
//     stripe's write lock the engine reconstructs the unit from the
//     stripe's survivors and rewrites it in place.

// needsHeal reports whether a read error means the unit's content is
// damaged but potentially reconstructable (media error or checksum
// mismatch), as opposed to failed (transient storm, engine bug).
func needsHeal(err error) bool {
	var bs *badSumError
	return errors.Is(err, ErrMedia) || errors.As(err, &bs)
}

// retryDelay returns the backoff before retry attempt n (0-based).
func (s *Store) retryDelay(n int) time.Duration {
	return s.retryBackoff << uint(n)
}

// scoreDiskError charges one persistent-error point against disk dn and
// auto-fails it once the threshold is crossed. Failing is best-effort: a
// store that is already degraded cannot lose a second disk, so the error
// keeps surfacing to callers instead.
func (s *Store) scoreDiskError(dn int) {
	if dn < 0 || dn >= len(s.diskErrs) {
		return
	}
	score := s.diskErrs[dn].Add(1)
	if s.failThreshold <= 0 || score < int64(s.failThreshold) {
		return
	}
	if err := s.Fail(dn); err == nil {
		s.autoFails.Add(1)
	}
}

// DiskErrors returns the cumulative persistent-error score per disk slot
// (the counter FailThreshold compares against).
func (s *Store) DiskErrors() []int64 {
	out := make([]int64, len(s.diskErrs))
	for i := range s.diskErrs {
		out[i] = s.diskErrs[i].Load()
	}
	return out
}

// readPhys reads physical unit off of disk dn (backend d) into phys and
// verifies its trailer. Transient errors retry with backoff; a checksum
// mismatch re-reads up to the same retry budget (transfer corruption
// clears on a fresh transfer, medium rot never does). The error is a
// *badSumError or wraps ErrMedia when the unit needs healing.
func (s *Store) readPhys(d Disk, dn int, off int64, phys []byte) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = d.ReadUnit(off, phys)
		if err == nil {
			if verifyTrailer(phys, s.unitSize, off) {
				return nil
			}
			err = &badSumError{disk: dn, off: off}
			if attempt < s.retries {
				continue
			}
			return err
		}
		if errors.Is(err, ErrMedia) {
			s.mediaErrs.Add(1)
			return err
		}
		if !errors.Is(err, ErrTransient) {
			if !errors.Is(err, ErrDiskFailed) {
				s.scoreDiskError(dn)
			}
			return err
		}
		if attempt >= s.retries {
			s.scoreDiskError(dn)
			return fmt.Errorf("store: disk %d unit %d: retries exhausted: %w", dn, off, err)
		}
		s.retriesDone.Add(1)
		time.Sleep(s.retryDelay(attempt))
	}
}

// writePhysRaw writes an already-stamped physical unit, retrying every
// error: a full-unit rewrite is idempotent, so even a non-transient
// failure is worth one more attempt before charging the disk.
func (s *Store) writePhysRaw(d Disk, dn int, off int64, phys []byte) error {
	var err error
	for attempt := 0; ; attempt++ {
		if err = d.WriteUnit(off, phys); err == nil {
			return nil
		}
		if errors.Is(err, ErrDiskFailed) {
			return err // engine bug signal, not a device fault — never retried
		}
		if attempt >= s.retries {
			s.scoreDiskError(dn)
			return fmt.Errorf("store: disk %d unit %d: write retries exhausted: %w", dn, off, err)
		}
		s.retriesDone.Add(1)
		time.Sleep(s.retryDelay(attempt))
	}
}

// writeDataUnit stamps data (one logical unit) into a pooled physical
// buffer and writes it to disk dn at off.
func (s *Store) writeDataUnit(d Disk, dn int, off int64, data []byte) error {
	phys := s.getBuf()
	defer s.putBuf(phys)
	copy((*phys)[:s.unitSize], data)
	stampTrailer(*phys, s.unitSize, off)
	return s.writePhysRaw(d, dn, off, *phys)
}

// writeStamped stamps the trailer onto phys (whose first unitSize bytes
// are the data) in place and writes it — the zero-copy variant for
// engine-owned buffers.
func (s *Store) writeStamped(d Disk, dn int, off int64, phys []byte) error {
	stampTrailer(phys, s.unitSize, off)
	return s.writePhysRaw(d, dn, off, phys)
}

// lostUnitError aborts a gather whose unit set contains a lost unit; the
// caller formats it into its own unrecoverable-stripe message.
type lostUnitError struct{ u layout.Loc }

func (e *lostUnitError) Error() string {
	return fmt.Sprintf("store: unit %v is lost", e.u)
}

// damagedUnit records a unit a gather found damaged (media error or
// checksum mismatch), in ascending item order.
type damagedUnit struct {
	idx int
	loc layout.Loc
	err error
}

// xorUnitsInto reads every listed unit and XORs its data into dst (which
// the caller has prepared — XOR is order-independent, so the result is
// bit-identical however the reads land). The reads fan out across idle
// I/O pool helpers. A lost unit or a hard read error aborts the gather;
// damaged units (needsHeal) are skipped and returned sorted by item index
// so callers holding the stripe's write lock can heal them serially —
// healing rewrites units, which must never race the batch's other reads.
// Caller holds (at least) the stripe's read lock.
func (s *Store) xorUnitsInto(st *diskState, units []layout.Loc, dst []byte) ([]damagedUnit, error) {
	if s.ioWorkers == 1 {
		// Serial store: read in index order on this goroutine, building
		// no closures — the zero-extra-alloc path degraded reads had
		// before the pool existed.
		var damaged []damagedUnit
		phys := s.getBuf()
		defer s.putBuf(phys)
		for i, u := range units {
			if st.lost(u) {
				return nil, &lostUnitError{u: u}
			}
			if err := s.readPhys(st.disk(u), u.Disk, u.Offset, *phys); err != nil {
				if needsHeal(err) {
					damaged = append(damaged, damagedUnit{idx: i, loc: u, err: err})
					continue
				}
				return nil, err
			}
			xorInto(dst, (*phys)[:s.unitSize])
		}
		return damaged, nil
	}
	var mu sync.Mutex
	var damaged []damagedUnit
	err := s.fanOut(len(units), func(i int) error {
		u := units[i]
		if st.lost(u) {
			return &lostUnitError{u: u}
		}
		phys := s.getBuf()
		defer s.putBuf(phys)
		if err := s.readPhys(st.disk(u), u.Disk, u.Offset, *phys); err != nil {
			if needsHeal(err) {
				mu.Lock()
				damaged = append(damaged, damagedUnit{idx: i, loc: u, err: err})
				mu.Unlock()
				return nil
			}
			return err
		}
		mu.Lock()
		xorInto(dst, (*phys)[:s.unitSize])
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(damaged, func(a, b int) bool { return damaged[a].idx < damaged[b].idx })
	return damaged, nil
}

// xorOthersInto computes the contents of unit u as the XOR of every other
// unit of its stripe, into out (one logical unit), fanning the survivor
// reads across idle I/O workers. It requires every other unit readable
// and valid: a lost or damaged sibling makes the stripe unrecoverable.
// Caller holds (at least) the stripe's read lock.
func (s *Store) xorOthersInto(st *diskState, u layout.Loc, out []byte) error {
	zeroBytes(out)
	damaged, err := s.xorUnitsInto(st, layout.SurvivingUnits(s.lay, u), out)
	if err != nil {
		var le *lostUnitError
		if errors.As(err, &le) {
			return fmt.Errorf("%w: %v is damaged and %v is lost", ErrUnrecoverable, u, le.u)
		}
		return err
	}
	if len(damaged) > 0 {
		d := damaged[0]
		return fmt.Errorf("%w: %v and %v are both damaged: %v", ErrUnrecoverable, u, d.loc, d.err)
	}
	return nil
}

// recoverInto computes the contents of unit u — lost or damaged — from
// the rest of its stripe, into out: the XOR of the survivors under single
// parity, the erasure decode under P+Q (which can see through one more
// lost or damaged unit). Caller holds the stripe's WRITE lock.
func (s *Store) recoverInto(st *diskState, u layout.Loc, out []byte) error {
	if s.parities == 2 {
		return s.pqRecoverInto(st, u, out)
	}
	return s.xorOthersInto(st, u, out)
}

// countHeal classifies a damaged-unit cause into the stats counters.
func (s *Store) countHeal(cause error) {
	if errors.Is(cause, ErrMedia) {
		// mediaErrs was already counted at detection time in readPhys.
		return
	}
	s.checksumErrs.Add(1)
}

// readUnitHealing reads unit u's data into out (one logical unit) under
// the stripe's WRITE lock, healing damage in place: a media error or
// persistent checksum mismatch triggers reconstruction from the stripe's
// survivors and a rewrite of the damaged unit. u must not be lost.
func (s *Store) readUnitHealing(st *diskState, u layout.Loc, out []byte) error {
	phys := s.getBuf()
	err := s.readPhys(st.disk(u), u.Disk, u.Offset, *phys)
	if err == nil {
		copy(out, (*phys)[:s.unitSize])
		s.putBuf(phys)
		return nil
	}
	s.putBuf(phys)
	if !needsHeal(err) {
		return err
	}
	s.countHeal(err)
	s.scoreDiskError(u.Disk)
	if rerr := s.recoverInto(st, u, out); rerr != nil {
		return rerr
	}
	// Rewrite the damaged unit with its reconstructed contents (heals a
	// latent sector error, replaces rotted bytes). A failed rewrite is
	// charged to the disk but the read itself has succeeded.
	d := st.disk(u)
	if werr := s.writeDataUnit(d, u.Disk, u.Offset, out); werr == nil {
		s.healedUnits.Add(1)
	} else {
		s.scoreDiskError(u.Disk)
	}
	return nil
}
