package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The scrubber is the engine's background integrity sweep: it walks every
// stripe, verifies each unit's checksum trailer and the stripe's parity
// equation, and repairs what single-failure parity can repair — a damaged
// unit is reconstructed from its siblings and rewritten; a stripe whose
// units are all individually valid but whose XOR does not balance (the
// lost-write signature, or a crash between data and parity commits) gets
// its parity recomputed from data, resolving the conflict in favor of
// data. The same per-stripe repair is what the write-intent recovery pass
// runs at open, just over dirty regions only.

// stripeFix reports what resyncStripe had to do to a stripe.
type stripeFix int

const (
	fixNone   stripeFix = iota // stripe verified clean
	fixUnit                    // one damaged unit reconstructed and rewritten
	fixParity                  // parity recomputed from data
)

// resyncStripe verifies and repairs one stripe under its write lock (or
// before the store serves traffic). No unit of the stripe may be lost.
// Damage within the code's correction power — one unit under single
// parity, two under P+Q — is repaired in place; anything beyond is
// unrecoverable.
func (s *Store) resyncStripe(st *diskState, stripe int64) (stripeFix, error) {
	if s.parities == 2 {
		return s.resyncStripePQ(st, stripe)
	}
	g := s.lay.G()
	pp := s.lay.ParityPos(stripe)
	phys := s.getBuf()
	acc := s.getBuf()
	defer s.putBuf(phys)
	defer s.putBuf(acc)
	accData := (*acc)[:s.unitSize]
	for i := range accData {
		accData[i] = 0
	}
	badJ := -1
	var badErr error
	for j := 0; j < g; j++ {
		u := s.lay.Unit(stripe, j)
		err := s.readPhys(st.disk(u), u.Disk, u.Offset, *phys)
		if err == nil {
			xorInto(accData, (*phys)[:s.unitSize])
			continue
		}
		if !needsHeal(err) {
			return fixNone, err
		}
		if badJ >= 0 {
			return fixNone, fmt.Errorf("%w: stripe %d units %v and %v: %v",
				ErrUnrecoverable, stripe, s.lay.Unit(stripe, badJ), u, err)
		}
		badJ, badErr = j, err
	}

	if badJ >= 0 {
		// One damaged unit: its correct contents are the XOR of its
		// siblings, which accData already holds.
		u := s.lay.Unit(stripe, badJ)
		s.countHeal(badErr)
		s.scoreDiskError(u.Disk)
		if err := s.writeDataUnit(st.disk(u), u.Disk, u.Offset, accData); err != nil {
			return fixNone, fmt.Errorf("store: rewriting damaged unit %v: %w", u, err)
		}
		s.healedUnits.Add(1)
		return fixUnit, nil
	}

	// All units individually valid: the parity equation must balance.
	balanced := true
	for _, b := range accData {
		if b != 0 {
			balanced = false
			break
		}
	}
	if balanced {
		return fixNone, nil
	}
	// It does not — a write was lost somewhere, or a crash split a
	// data/parity commit. Recompute parity from data (XOR the imbalance
	// into the stored parity), trusting data over parity.
	ploc := s.lay.Unit(stripe, pp)
	if err := s.readPhys(st.disk(ploc), ploc.Disk, ploc.Offset, *phys); err != nil {
		return fixNone, err
	}
	xorInto((*phys)[:s.unitSize], accData)
	if err := s.writeStamped(st.disk(ploc), ploc.Disk, ploc.Offset, *phys); err != nil {
		return fixNone, fmt.Errorf("store: rewriting parity %v: %w", ploc, err)
	}
	return fixParity, nil
}

// isUnrecoverable reports data loss single parity cannot repair.
func isUnrecoverable(err error) bool { return errors.Is(err, ErrUnrecoverable) }

// stripeHasLost reports whether any unit of stripe is lost in st.
func (s *Store) stripeHasLost(st *diskState, stripe int64) bool {
	g := s.lay.G()
	for j := 0; j < g; j++ {
		if st.lost(s.lay.Unit(stripe, j)) {
			return true
		}
	}
	return false
}

// ScrubResult summarizes one Scrub sweep.
type ScrubResult struct {
	// Stripes is how many stripes were verified (and repaired if needed).
	Stripes int64
	// Skipped is how many stripes were passed over because a unit is lost
	// (their consistency is re-established by the rebuild, not the scrub).
	Skipped int64
	// UnitRepairs counts stripes whose damaged units (media errors,
	// checksum mismatches) were reconstructed from survivors and
	// rewritten — one per stripe even when a P+Q repair rewrote two
	// units (Stats().HealedUnits counts the individual units).
	UnitRepairs int64
	// ParityRewrites counts stripes whose units were all individually
	// valid but whose parity equation did not balance — the lost-write /
	// interrupted-write signature — repaired by recomputing parity from
	// data.
	ParityRewrites int64
	// Unrecoverable counts stripes with two or more damaged units, which
	// single-failure parity cannot repair. They are left as found.
	Unrecoverable int64
}

// scrubShard is one worker's slice of a Scrub sweep.
type scrubShard struct {
	res     ScrubResult
	unrec   error // first unrecoverable-stripe error in this shard
	hardErr error // hard error that stopped the sweep, nil if none
	hardAt  int64 // stripe the hard error struck
}

// Scrub sweeps every stripe, verifying checksums and parity and repairing
// damage in place, stripe by stripe under the stripe locks, while user
// operations continue — the background patrol read. The sweep is split
// into Config.RebuildWorkers contiguous shards scrubbed concurrently
// (each stripe still verified under its own lock); Config.ScrubThrottle
// paces the sweep in aggregate — each worker sleeps workers× the
// configured pause, so the knob means the same wall-clock sweep rate at
// any worker count. Stripes with a lost unit are skipped. Unrecoverable
// stripes are counted, left untouched, and reported in the returned
// error; all other stripes are still verified. A clean sweep (no
// unrecoverable damage) clears the engine's parity-doubt latch, letting
// Sync resume clearing intent-log regions after a mid-stripe write
// failure. Only one Scrub runs at a time.
func (s *Store) Scrub() (ScrubResult, error) {
	if !s.scrubbing.CompareAndSwap(false, true) {
		return ScrubResult{}, fmt.Errorf("store: scrub already in progress")
	}
	defer s.scrubbing.Store(false)

	workers := s.rebuildWorkers
	if int64(workers) > s.numStripes {
		workers = int(s.numStripes)
	}
	shards := make([]scrubShard, workers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := s.numStripes * int64(w) / int64(workers)
		hi := s.numStripes * int64(w+1) / int64(workers)
		wg.Add(1)
		go func(o *scrubShard, lo, hi int64) {
			defer wg.Done()
			for stripe := lo; stripe < hi && !stop.Load(); stripe++ {
				s.locks.lock(stripe)
				st := s.st.Load()
				if s.stripeHasLost(st, stripe) {
					o.res.Skipped++
					s.locks.unlock(stripe)
					continue
				}
				fix, err := s.resyncStripe(st, stripe)
				s.locks.unlock(stripe)
				switch {
				case err == nil:
					o.res.Stripes++
					switch fix {
					case fixUnit:
						o.res.UnitRepairs++
						s.scrubRepairs.Add(1)
					case fixParity:
						o.res.ParityRewrites++
						s.scrubFixes.Add(1)
					}
				case isUnrecoverable(err):
					o.res.Unrecoverable++
					if o.unrec == nil {
						o.unrec = err
					}
				default:
					// A hard error (failed backend, exhausted retries)
					// stops the whole sweep; verified counts still report.
					o.hardErr = fmt.Errorf("store: scrub of stripe %d: %w", stripe, err)
					o.hardAt = stripe
					stop.Store(true)
					return
				}
				if s.scrubThrottle > 0 {
					time.Sleep(s.scrubThrottle * time.Duration(workers))
				}
			}
		}(&shards[w], lo, hi)
	}
	wg.Wait()

	var res ScrubResult
	var firstErr, hardErr error
	hardAt := int64(-1)
	for w := range shards {
		o := &shards[w]
		res.Stripes += o.res.Stripes
		res.Skipped += o.res.Skipped
		res.UnitRepairs += o.res.UnitRepairs
		res.ParityRewrites += o.res.ParityRewrites
		res.Unrecoverable += o.res.Unrecoverable
		if o.unrec != nil && firstErr == nil {
			firstErr = o.unrec // shards ascend, so this is the lowest shard's first
		}
		if o.hardErr != nil && (hardAt < 0 || o.hardAt < hardAt) {
			hardErr, hardAt = o.hardErr, o.hardAt
		}
	}
	s.scrubbedStripes.Add(res.Stripes)
	if hardErr != nil {
		return res, hardErr
	}
	s.scrubs.Add(1)
	if firstErr == nil {
		// Every reachable stripe verified clean (or was repaired): any
		// doubt left by an earlier failed write is resolved.
		s.parityDoubt.Store(false)
	}
	return res, firstErr
}
