package store

import (
	"errors"
	"fmt"
	"time"
)

// The scrubber is the engine's background integrity sweep: it walks every
// stripe, verifies each unit's checksum trailer and the stripe's parity
// equation, and repairs what single-failure parity can repair — a damaged
// unit is reconstructed from its siblings and rewritten; a stripe whose
// units are all individually valid but whose XOR does not balance (the
// lost-write signature, or a crash between data and parity commits) gets
// its parity recomputed from data, resolving the conflict in favor of
// data. The same per-stripe repair is what the write-intent recovery pass
// runs at open, just over dirty regions only.

// stripeFix reports what resyncStripe had to do to a stripe.
type stripeFix int

const (
	fixNone   stripeFix = iota // stripe verified clean
	fixUnit                    // one damaged unit reconstructed and rewritten
	fixParity                  // parity recomputed from data
)

// resyncStripe verifies and repairs one stripe under its write lock (or
// before the store serves traffic). No unit of the stripe may be lost.
// With at most one damaged unit the stripe is repaired in place; two or
// more damaged units are unrecoverable.
func (s *Store) resyncStripe(st *diskState, stripe int64) (stripeFix, error) {
	g := s.lay.G()
	pp := s.lay.ParityPos(stripe)
	phys := s.getBuf()
	acc := s.getBuf()
	defer s.putBuf(phys)
	defer s.putBuf(acc)
	accData := (*acc)[:s.unitSize]
	for i := range accData {
		accData[i] = 0
	}
	badJ := -1
	var badErr error
	for j := 0; j < g; j++ {
		u := s.lay.Unit(stripe, j)
		err := s.readPhys(st.disk(u), u.Disk, u.Offset, *phys)
		if err == nil {
			xorInto(accData, (*phys)[:s.unitSize])
			continue
		}
		if !needsHeal(err) {
			return fixNone, err
		}
		if badJ >= 0 {
			return fixNone, fmt.Errorf("%w: stripe %d units %v and %v: %v",
				ErrUnrecoverable, stripe, s.lay.Unit(stripe, badJ), u, err)
		}
		badJ, badErr = j, err
	}

	if badJ >= 0 {
		// One damaged unit: its correct contents are the XOR of its
		// siblings, which accData already holds.
		u := s.lay.Unit(stripe, badJ)
		s.countHeal(badErr)
		s.scoreDiskError(u.Disk)
		if err := s.writeDataUnit(st.disk(u), u.Disk, u.Offset, accData); err != nil {
			return fixNone, fmt.Errorf("store: rewriting damaged unit %v: %w", u, err)
		}
		s.healedUnits.Add(1)
		return fixUnit, nil
	}

	// All units individually valid: the parity equation must balance.
	balanced := true
	for _, b := range accData {
		if b != 0 {
			balanced = false
			break
		}
	}
	if balanced {
		return fixNone, nil
	}
	// It does not — a write was lost somewhere, or a crash split a
	// data/parity commit. Recompute parity from data (XOR the imbalance
	// into the stored parity), trusting data over parity.
	ploc := s.lay.Unit(stripe, pp)
	if err := s.readPhys(st.disk(ploc), ploc.Disk, ploc.Offset, *phys); err != nil {
		return fixNone, err
	}
	xorInto((*phys)[:s.unitSize], accData)
	if err := s.writeStamped(st.disk(ploc), ploc.Disk, ploc.Offset, *phys); err != nil {
		return fixNone, fmt.Errorf("store: rewriting parity %v: %w", ploc, err)
	}
	return fixParity, nil
}

// isUnrecoverable reports data loss single parity cannot repair.
func isUnrecoverable(err error) bool { return errors.Is(err, ErrUnrecoverable) }

// stripeHasLost reports whether any unit of stripe is lost in st.
func (s *Store) stripeHasLost(st *diskState, stripe int64) bool {
	g := s.lay.G()
	for j := 0; j < g; j++ {
		if st.lost(s.lay.Unit(stripe, j)) {
			return true
		}
	}
	return false
}

// ScrubResult summarizes one Scrub sweep.
type ScrubResult struct {
	// Stripes is how many stripes were verified (and repaired if needed).
	Stripes int64
	// Skipped is how many stripes were passed over because a unit is lost
	// (their consistency is re-established by the rebuild, not the scrub).
	Skipped int64
	// UnitRepairs counts damaged units (media errors, checksum
	// mismatches) reconstructed from survivors and rewritten.
	UnitRepairs int64
	// ParityRewrites counts stripes whose units were all individually
	// valid but whose parity equation did not balance — the lost-write /
	// interrupted-write signature — repaired by recomputing parity from
	// data.
	ParityRewrites int64
	// Unrecoverable counts stripes with two or more damaged units, which
	// single-failure parity cannot repair. They are left as found.
	Unrecoverable int64
}

// Scrub sweeps every stripe, verifying checksums and parity and repairing
// damage in place, stripe by stripe under the stripe locks, while user
// operations continue — the background patrol read. Config.ScrubThrottle
// paces the sweep. Stripes with a lost unit are skipped. Unrecoverable
// stripes are counted, left untouched, and reported in the returned
// error; all other stripes are still verified. A clean sweep (no
// unrecoverable damage) clears the engine's parity-doubt latch, letting
// Sync resume clearing intent-log regions after a mid-stripe write
// failure. Only one Scrub runs at a time.
func (s *Store) Scrub() (ScrubResult, error) {
	if !s.scrubbing.CompareAndSwap(false, true) {
		return ScrubResult{}, fmt.Errorf("store: scrub already in progress")
	}
	defer s.scrubbing.Store(false)

	var res ScrubResult
	var firstErr error
	for stripe := int64(0); stripe < s.numStripes; stripe++ {
		s.locks.lock(stripe)
		st := s.st.Load()
		if s.stripeHasLost(st, stripe) {
			res.Skipped++
			s.locks.unlock(stripe)
			continue
		}
		fix, err := s.resyncStripe(st, stripe)
		s.locks.unlock(stripe)
		switch {
		case err == nil:
			res.Stripes++
			switch fix {
			case fixUnit:
				res.UnitRepairs++
				s.scrubRepairs.Add(1)
			case fixParity:
				res.ParityRewrites++
				s.scrubFixes.Add(1)
			}
		case isUnrecoverable(err):
			res.Unrecoverable++
			if firstErr == nil {
				firstErr = err
			}
		default:
			s.scrubbedStripes.Add(res.Stripes)
			return res, fmt.Errorf("store: scrub of stripe %d: %w", stripe, err)
		}
		if s.scrubThrottle > 0 {
			time.Sleep(s.scrubThrottle)
		}
	}
	s.scrubs.Add(1)
	s.scrubbedStripes.Add(res.Stripes)
	if firstErr == nil {
		// Every reachable stripe verified clean (or was repaired): any
		// doubt left by an earlier failed write is resolved.
		s.parityDoubt.Store(false)
	}
	return res, firstErr
}
