package store

import (
	"fmt"

	"declust/internal/layout"
)

// checkRange validates a multi-unit request and returns its unit count.
func (s *Store) checkRange(start int64, buf []byte) (int64, error) {
	if len(buf) == 0 || len(buf)%s.unitSize != 0 {
		return 0, fmt.Errorf("store: range buffer of %d bytes is not a positive multiple of the %d-byte unit size",
			len(buf), s.unitSize)
	}
	n := int64(len(buf) / s.unitSize)
	if start < 0 || start+n > s.dataUnits {
		return 0, fmt.Errorf("store: units [%d,%d) out of range [0,%d)", start, start+n, s.dataUnits)
	}
	return n, nil
}

// rangeScratch holds one range-write stripe job's reusable slices,
// recycled through Store.scratch so concurrent jobs don't allocate.
type rangeScratch struct {
	locs  []layout.Loc
	datas [][]byte
}

// span returns the intersection of stripe's data units with the request
// [start, start+n), as a logical-unit interval [lo, hi).
func (s *Store) span(stripe, start, n, perStripe int64) (lo, hi int64) {
	lo = stripe * perStripe
	if lo < start {
		lo = start
	}
	hi = (stripe + 1) * perStripe
	if hi > start+n {
		hi = start + n
	}
	return lo, hi
}

// ReadRange reads the logical data units [start, start+len(dst)/UnitSize)
// into dst, taking each stripe's lock once for all of its units. Each
// touched stripe is an independent job — its units land in a disjoint
// window of dst — so multi-stripe ranges fan out across idle I/O workers,
// with the first error (lowest stripe) cancelling unstarted jobs.
func (s *Store) ReadRange(start int64, dst []byte) error {
	n, err := s.checkRange(start, dst)
	if err != nil {
		return err
	}
	perStripe := s.dataPerStripe
	first := start / perStripe
	segs := int((start+n-1)/perStripe - first + 1)
	if segs == 1 {
		if err := s.readStripeSpan(first, start, start, start+n, dst); err != nil {
			return err
		}
		s.reads.Add(n)
		return nil
	}
	err = s.fanOut(segs, func(i int) error {
		stripe := first + int64(i)
		lo, hi := s.span(stripe, start, n, perStripe)
		return s.readStripeSpan(stripe, start, lo, hi, dst)
	})
	if err != nil {
		return err
	}
	s.reads.Add(n)
	return nil
}

// readStripeSpan reads the units [lo, hi) — all belonging to stripe —
// into dst, whose first byte corresponds to logical unit start. Units are
// read under the stripe's read lock; a damaged unit is repaired under the
// write lock and the sweep resumes after it.
func (s *Store) readStripeSpan(stripe, start, lo, hi int64, dst []byte) error {
	us := int64(s.unitSize)
	for u := lo; u < hi; {
		healU := int64(-1)
		var healLoc layout.Loc
		var err error
		s.locks.rlock(stripe)
		for ; u < hi && err == nil; u++ {
			loc := s.mapper.Loc(u)
			err = s.readLocked(stripe, loc, dst[(u-start)*us:(u-start+1)*us])
			if needsHeal(err) {
				healU, healLoc = u, loc
			}
		}
		s.locks.runlock(stripe)
		if healU >= 0 {
			if err = s.healRead(stripe, healLoc, dst[(healU-start)*us:(healU-start+1)*us]); err != nil {
				return err
			}
			u = healU + 1
			continue
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteRange writes src over the logical data units starting at start,
// one parity update per touched stripe. A segment covering a whole stripe
// uses the large-write optimization (parity from the new contents, no
// pre-reads); partial segments read-modify-write. Stripe jobs are
// independent — each takes only its own stripe's lock — so multi-stripe
// ranges fan out across idle I/O workers.
func (s *Store) WriteRange(start int64, src []byte) error {
	n, err := s.checkRange(start, src)
	if err != nil {
		return err
	}
	perStripe := s.dataPerStripe
	first := start / perStripe
	segs := int((start+n-1)/perStripe - first + 1)
	if segs == 1 {
		if err := s.writeStripeSpan(first, start, start, start+n, src); err != nil {
			return err
		}
		s.writes.Add(n)
		return nil
	}
	err = s.fanOut(segs, func(i int) error {
		stripe := first + int64(i)
		lo, hi := s.span(stripe, start, n, perStripe)
		return s.writeStripeSpan(stripe, start, lo, hi, src)
	})
	if err != nil {
		return err
	}
	s.writes.Add(n)
	return nil
}

// writeStripeSpan commits the units [lo, hi) — all belonging to stripe —
// from src, whose first byte corresponds to logical unit start, as one
// parity update under the stripe's write lock.
func (s *Store) writeStripeSpan(stripe, start, lo, hi int64, src []byte) error {
	sc := s.scratch.Get().(*rangeScratch)
	defer s.scratch.Put(sc)
	locs, datas := sc.locs[:0], sc.datas[:0]
	us := int64(s.unitSize)
	for v := lo; v < hi; v++ {
		locs = append(locs, s.mapper.Loc(v))
		datas = append(datas, src[(v-start)*us:(v-start+1)*us])
	}
	sc.locs, sc.datas = locs, datas
	s.locks.lock(stripe)
	err := s.writeStripeLocked(stripe, locs, datas)
	s.locks.unlock(stripe)
	return err
}
