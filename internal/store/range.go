package store

import (
	"fmt"

	"declust/internal/layout"
)

// checkRange validates a multi-unit request and returns its unit count.
func (s *Store) checkRange(start int64, buf []byte) (int64, error) {
	if len(buf) == 0 || len(buf)%s.unitSize != 0 {
		return 0, fmt.Errorf("store: range buffer of %d bytes is not a positive multiple of the %d-byte unit size",
			len(buf), s.unitSize)
	}
	n := int64(len(buf) / s.unitSize)
	if start < 0 || start+n > s.dataUnits {
		return 0, fmt.Errorf("store: units [%d,%d) out of range [0,%d)", start, start+n, s.dataUnits)
	}
	return n, nil
}

// ReadRange reads the logical data units [start, start+len(dst)/UnitSize)
// into dst, taking each stripe's lock once for all of its units.
func (s *Store) ReadRange(start int64, dst []byte) error {
	n, err := s.checkRange(start, dst)
	if err != nil {
		return err
	}
	perStripe := int64(s.lay.G() - 1)
	for u := start; u < start+n; {
		stripe := u / perStripe
		end := (stripe + 1) * perStripe
		if end > start+n {
			end = start + n
		}
		healU := int64(-1)
		var healLoc layout.Loc
		s.locks.rlock(stripe)
		for ; u < end && err == nil; u++ {
			loc := s.mapper.Loc(u)
			err = s.readLocked(stripe, loc, dst[(u-start)*int64(s.unitSize):(u-start+1)*int64(s.unitSize)])
			if needsHeal(err) {
				healU, healLoc = u, loc
			}
		}
		s.locks.runlock(stripe)
		if healU >= 0 {
			// A unit is damaged: repair it under the stripe's write lock,
			// then resume the sweep after it.
			if err = s.healRead(stripe, healLoc, dst[(healU-start)*int64(s.unitSize):(healU-start+1)*int64(s.unitSize)]); err != nil {
				return err
			}
			u = healU + 1
			continue
		}
		if err != nil {
			return err
		}
	}
	s.reads.Add(n)
	return nil
}

// WriteRange writes src over the logical data units starting at start,
// one parity update per touched stripe. A segment covering a whole stripe
// uses the large-write optimization (parity from the new contents, no
// pre-reads); partial segments read-modify-write.
func (s *Store) WriteRange(start int64, src []byte) error {
	n, err := s.checkRange(start, src)
	if err != nil {
		return err
	}
	perStripe := int64(s.lay.G() - 1)
	locs := make([]layout.Loc, 0, perStripe)
	datas := make([][]byte, 0, perStripe)
	for u := start; u < start+n; {
		stripe := u / perStripe
		end := (stripe + 1) * perStripe
		if end > start+n {
			end = start + n
		}
		locs, datas = locs[:0], datas[:0]
		for v := u; v < end; v++ {
			locs = append(locs, s.mapper.Loc(v))
			datas = append(datas, src[(v-start)*int64(s.unitSize):(v-start+1)*int64(s.unitSize)])
		}
		s.locks.lock(stripe)
		err = s.writeStripeLocked(stripe, locs, datas)
		s.locks.unlock(stripe)
		if err != nil {
			return err
		}
		u = end
	}
	s.writes.Add(n)
	return nil
}
