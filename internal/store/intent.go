package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Crash-consistent parity: the engine cannot make the multi-disk parity
// update atomic, so before the first write touches a stripe it durably
// marks the stripe's *region* dirty in a write-intent log. A crash
// mid-update therefore always leaves its stripe inside a marked region,
// and the recovery pass in New resynchronizes every stripe of every
// dirty region before the store serves traffic. Marks are region-granular
// (intentRegionStripes stripes per bit) and cleared lazily — at Store.Sync
// durability points and on clean Close — so the steady-state hot path
// pays one atomic load per write, not one fsync (the md write-intent
// bitmap discipline).
const intentRegionStripes = 64

// intentRegions returns how many intent-log regions cover numStripes.
func intentRegions(numStripes int64) int64 {
	return (numStripes + intentRegionStripes - 1) / intentRegionStripes
}

// IntentLog persists the dirty-region bitmap. Mark/MarkBatch and
// Clear/ClearBatch must be durable when they return; the engine
// serializes calls. The batch forms exist because durability barriers
// dominate the cost: the engine's group commit folds the marks of every
// concurrent first-writer into one MarkBatch, and recovery/Sync clear
// whole region sets at once. Implementations: a crash-safe file log
// (OpenFileIntent) and an in-memory one (used automatically when
// Config.Intent is nil, making mem-backed stores pay the same code path
// with no durability).
type IntentLog interface {
	// Init sizes (or validates) the log for the given region count and
	// returns the regions recorded dirty by a previous incarnation.
	Init(regions int64) (dirty []int64, err error)
	// Mark durably records region r dirty.
	Mark(r int64) error
	// MarkBatch durably records every listed region dirty with a single
	// durability barrier. On error none, some, or all marks may have
	// landed — safe, because a spurious mark only costs a resync.
	MarkBatch(rs []int64) error
	// Clear durably records region r clean.
	Clear(r int64) error
	// ClearBatch durably records every listed region clean with a single
	// durability barrier. On error a region's on-disk state is
	// indeterminate — safe in the conservative direction for the same
	// reason.
	ClearBatch(rs []int64) error
	// Close releases the log's resources.
	Close() error
}

// memIntent is the no-durability intent log: correct bookkeeping,
// nothing to recover.
type memIntent struct {
	dirty []bool
}

func (m *memIntent) Init(regions int64) ([]int64, error) {
	m.dirty = make([]bool, regions)
	return nil, nil
}
func (m *memIntent) Mark(r int64) error  { m.dirty[r] = true; return nil }
func (m *memIntent) Clear(r int64) error { m.dirty[r] = false; return nil }
func (m *memIntent) MarkBatch(rs []int64) error {
	for _, r := range rs {
		m.dirty[r] = true
	}
	return nil
}
func (m *memIntent) ClearBatch(rs []int64) error {
	for _, r := range rs {
		m.dirty[r] = false
	}
	return nil
}
func (m *memIntent) Close() error { return nil }

// fileIntent is the crash-safe intent log: a small header plus one byte
// per region, fsynced on every Mark and Clear. Marks are rare (first
// write into a clean region) so the fsyncs stay off the steady-state path.
//
//	bytes [0,8):   magic "DCLINTN\x01"
//	bytes [8,16):  region count, little-endian
//	bytes [16,20): crc32c of bytes [0,16), little-endian
//	bytes [32+r]:  1 if region r is dirty
type fileIntent struct {
	path string
	f    *os.File
}

const intentHeaderLen = 32

var intentMagic = [8]byte{'D', 'C', 'L', 'I', 'N', 'T', 'N', 1}

// OpenFileIntent returns a file-backed IntentLog at path. The file is
// created (or validated) lazily at Store construction, when Init learns
// the store's region count.
func OpenFileIntent(path string) IntentLog {
	return &fileIntent{path: path}
}

func (l *fileIntent) Init(regions int64) ([]int64, error) {
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() == 0 {
		hdr := make([]byte, intentHeaderLen)
		copy(hdr, intentMagic[:])
		binary.LittleEndian.PutUint64(hdr[8:], uint64(regions))
		binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(hdr[:16], crcTab))
		if _, err := f.WriteAt(hdr, 0); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Truncate(intentHeaderLen + regions); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		l.f = f
		return nil, nil
	}
	if fi.Size() < intentHeaderLen {
		f.Close()
		return nil, fmt.Errorf("store: %s is too short to be an intent log", l.path)
	}
	hdr := make([]byte, intentHeaderLen)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: reading %s intent header: %w", l.path, err)
	}
	if string(hdr[:8]) != string(intentMagic[:]) {
		f.Close()
		return nil, fmt.Errorf("store: %s is not an intent log (bad magic)", l.path)
	}
	if got := binary.LittleEndian.Uint32(hdr[16:]); got != crc32.Checksum(hdr[:16], crcTab) {
		f.Close()
		return nil, fmt.Errorf("store: %s has a corrupt intent header", l.path)
	}
	if r := int64(binary.LittleEndian.Uint64(hdr[8:])); r != regions {
		f.Close()
		return nil, fmt.Errorf("store: %s covers %d regions, store has %d (geometry changed?)", l.path, r, regions)
	}
	bits := make([]byte, regions)
	if _, err := f.ReadAt(bits, intentHeaderLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: reading %s intent bitmap: %w", l.path, err)
	}
	var dirty []int64
	for r, b := range bits {
		if b != 0 {
			dirty = append(dirty, int64(r))
		}
	}
	l.f = f
	return dirty, nil
}

func (l *fileIntent) set(r int64, v byte) error {
	if _, err := l.f.WriteAt([]byte{v}, intentHeaderLen+r); err != nil {
		return err
	}
	return l.f.Sync()
}

// setBatch writes every region's byte, then pays one fsync for the lot —
// the group-commit payoff on the file-backed path.
func (l *fileIntent) setBatch(rs []int64, v byte) error {
	for _, r := range rs {
		if _, err := l.f.WriteAt([]byte{v}, intentHeaderLen+r); err != nil {
			return err
		}
	}
	return l.f.Sync()
}

func (l *fileIntent) Mark(r int64) error          { return l.set(r, 1) }
func (l *fileIntent) Clear(r int64) error         { return l.set(r, 0) }
func (l *fileIntent) MarkBatch(rs []int64) error  { return l.setBatch(rs, 1) }
func (l *fileIntent) ClearBatch(rs []int64) error { return l.setBatch(rs, 0) }

func (l *fileIntent) Close() error {
	if l.f == nil {
		return nil
	}
	return l.f.Close()
}
