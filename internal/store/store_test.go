package store

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"testing"

	"declust/internal/core"
	"declust/internal/layout"
)

// testLayout selects a layout the way the facade does.
func testLayout(t testing.TB, c, g int) layout.Layout {
	t.Helper()
	m, err := core.NewMapping(c, g, 0)
	if err != nil {
		t.Fatalf("NewMapping(%d, %d): %v", c, g, err)
	}
	return m.Layout
}

func newTestStore(t testing.TB, c, g int, unitsPerDisk int64, unitSize int) *Store {
	t.Helper()
	s, err := New(Config{
		Layout:       testLayout(t, c, g),
		UnitsPerDisk: unitsPerDisk,
		UnitSize:     unitSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// fill writes a deterministic pattern for (unit, version) into buf.
func fill(buf []byte, unit int64, version uint64) {
	x := uint64(unit)*0x9e3779b97f4a7c15 + version*0xbf58476d1ce4e5b9 + 1
	for i := 0; i+8 <= len(buf); i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		binary.LittleEndian.PutUint64(buf[i:], x)
	}
}

// verifyUnit reads unit n and asserts it holds pattern (n, version).
func verifyUnit(t *testing.T, s *Store, n int64, version uint64) {
	t.Helper()
	got := make([]byte, s.UnitSize())
	want := make([]byte, s.UnitSize())
	if err := s.ReadUnit(n, got); err != nil {
		t.Fatalf("ReadUnit(%d): %v", n, err)
	}
	fill(want, n, version)
	if !bytes.Equal(got, want) {
		t.Fatalf("unit %d: read-back does not match version %d write", n, version)
	}
}

// fillAll writes pattern (n, version) to every data unit.
func fillAll(t *testing.T, s *Store, version uint64) {
	t.Helper()
	buf := make([]byte, s.UnitSize())
	for n := int64(0); n < s.DataUnits(); n++ {
		fill(buf, n, version)
		if err := s.WriteUnit(n, buf); err != nil {
			t.Fatalf("WriteUnit(%d): %v", n, err)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := newTestStore(t, 7, 3, 64, 512)
	if s.DataUnits() == 0 {
		t.Fatal("no data units")
	}
	fillAll(t, s, 1)
	for n := int64(0); n < s.DataUnits(); n++ {
		verifyUnit(t, s, n, 1)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatal(err)
	}
	// Overwrites exercise the read-modify-write path; parity must follow.
	for n := int64(0); n < s.DataUnits(); n += 3 {
		buf := make([]byte, s.UnitSize())
		fill(buf, n, 2)
		if err := s.WriteUnit(n, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CheckParity(); err != nil {
		t.Fatal(err)
	}
	if got := s.Mode(); got != Healthy {
		t.Fatalf("mode %v, want healthy", got)
	}
}

func TestRangeOpsMatchUnitOps(t *testing.T) {
	s := newTestStore(t, 7, 3, 64, 512)
	us := s.UnitSize()
	n := s.DataUnits()
	// An unaligned span covering partial and whole stripes.
	start, count := int64(1), n-2
	src := make([]byte, int(count)*us)
	for i := int64(0); i < count; i++ {
		fill(src[i*int64(us):(i+1)*int64(us)], start+i, 7)
	}
	if err := s.WriteRange(start, src); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := s.ReadRange(start, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("ReadRange does not match WriteRange")
	}
	for i := int64(0); i < count; i++ {
		verifyUnit(t, s, start+i, 7)
	}
}

func TestDegradedReadsReconstruct(t *testing.T) {
	s := newTestStore(t, 7, 3, 64, 512)
	fillAll(t, s, 1)
	if err := s.Fail(2); err != nil {
		t.Fatal(err)
	}
	if got := s.Mode(); got != Degraded {
		t.Fatalf("mode %v, want degraded", got)
	}
	for n := int64(0); n < s.DataUnits(); n++ {
		verifyUnit(t, s, n, 1)
	}
	if s.Stats().DegradedReads == 0 {
		t.Fatal("no reads were served by on-the-fly reconstruction")
	}
}

func TestDegradedWritesFoldIntoParity(t *testing.T) {
	s := newTestStore(t, 7, 3, 64, 512)
	fillAll(t, s, 1)
	if err := s.Fail(3); err != nil {
		t.Fatal(err)
	}
	fillAll(t, s, 2) // every write path: folds, lost parity, healthy RMW
	if s.Stats().FoldedWrites == 0 {
		t.Fatal("no writes folded into parity while degraded")
	}
	for n := int64(0); n < s.DataUnits(); n++ {
		verifyUnit(t, s, n, 2)
	}
	// Rebuild onto a blank disk and verify the heal.
	if err := s.Rebuild(NewMemDisk(s.unitsPerDisk, s.UnitSize())); err != nil {
		t.Fatal(err)
	}
	if got := s.Mode(); got != Healthy {
		t.Fatalf("mode %v, want healthy after rebuild", got)
	}
	for n := int64(0); n < s.DataUnits(); n++ {
		verifyUnit(t, s, n, 2)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatal(err)
	}
	done, total := s.RebuildProgress()
	if done != total {
		t.Fatalf("rebuild progress %d/%d after heal", done, total)
	}
}

// TestEveryDiskRecovers fails each disk in turn on a fresh store, writes
// through the degraded window, rebuilds, and verifies every unit — the
// single-failure property over all failure positions.
func TestEveryDiskRecovers(t *testing.T) {
	lay := testLayout(t, 7, 3)
	for d := 0; d < lay.Disks(); d++ {
		s, err := New(Config{Layout: lay, UnitsPerDisk: 64, UnitSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		fillAll(t, s, 1)
		if err := s.Fail(d); err != nil {
			t.Fatal(err)
		}
		// Overwrite a third of the units while degraded.
		buf := make([]byte, s.UnitSize())
		for n := int64(0); n < s.DataUnits(); n += 3 {
			fill(buf, n, 2)
			if err := s.WriteUnit(n, buf); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Rebuild(NewMemDisk(s.unitsPerDisk, s.UnitSize())); err != nil {
			t.Fatal(err)
		}
		for n := int64(0); n < s.DataUnits(); n++ {
			v := uint64(1)
			if n%3 == 0 {
				v = 2
			}
			verifyUnit(t, s, n, v)
		}
		if err := s.CheckParity(); err != nil {
			t.Fatalf("disk %d: %v", d, err)
		}
		s.Close()
	}
}

// TestRebuildAnyFailurePoint interleaves the failure with a write
// sequence at several points; data written before and after the failure
// must both survive the rebuild.
func TestRebuildAnyFailurePoint(t *testing.T) {
	lay := testLayout(t, 7, 3)
	total := layout.DataUnits(lay, 64)
	probe := []int64{0, total / 3, 2 * total / 3, total}
	for _, failAt := range probe {
		s, err := New(Config{Layout: lay, UnitsPerDisk: 64, UnitSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, s.UnitSize())
		for n := int64(0); n < total; n++ {
			if n == failAt {
				if err := s.Fail(1); err != nil {
					t.Fatal(err)
				}
			}
			fill(buf, n, 9)
			if err := s.WriteUnit(n, buf); err != nil {
				t.Fatal(err)
			}
		}
		if failAt == total {
			if err := s.Fail(1); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Rebuild(NewMemDisk(s.unitsPerDisk, s.UnitSize())); err != nil {
			t.Fatal(err)
		}
		for n := int64(0); n < total; n++ {
			verifyUnit(t, s, n, 9)
		}
		if err := s.CheckParity(); err != nil {
			t.Fatalf("fail point %d: %v", failAt, err)
		}
		s.Close()
	}
}

func TestFileBackedPersistence(t *testing.T) {
	dir := t.TempDir()
	lay := testLayout(t, 5, 5) // RAID 5 exercise of the other layout family
	const units, us = 40, 512
	disks, err := OpenFileDisks(dir, lay.Disks(), units, us)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Layout: lay, UnitsPerDisk: units, UnitSize: us, Disks: disks})
	if err != nil {
		t.Fatal(err)
	}
	fillAll(t, s, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the same files: contents and parity must have persisted.
	disks, err = OpenFileDisks(dir, lay.Disks(), units, us)
	if err != nil {
		t.Fatal(err)
	}
	s, err = New(Config{Layout: lay, UnitsPerDisk: units, UnitSize: us, Disks: disks})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for n := int64(0); n < s.DataUnits(); n++ {
		verifyUnit(t, s, n, 5)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatal(err)
	}
	// A file-backed rebuild: fail one file, rebuild onto a fresh one.
	if err := s.Fail(3); err != nil {
		t.Fatal(err)
	}
	repl, err := OpenFileDisk(filepath.Join(dir, "replacement.dat"), units, us)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(repl); err != nil {
		t.Fatal(err)
	}
	for n := int64(0); n < s.DataUnits(); n++ {
		verifyUnit(t, s, n, 5)
	}
}

func TestConfigAndStateErrors(t *testing.T) {
	lay := testLayout(t, 7, 3)
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without layout succeeded")
	}
	if _, err := New(Config{Layout: lay, UnitSize: 12}); err == nil {
		t.Fatal("New with non-multiple-of-8 unit size succeeded")
	}
	if _, err := New(Config{Layout: lay, UnitsPerDisk: 1}); err == nil {
		t.Fatal("New with sub-period capacity succeeded")
	}
	if _, err := New(Config{Layout: lay, Disks: make([]Disk, 2)}); err == nil {
		t.Fatal("New with wrong disk count succeeded")
	}

	s := newTestStore(t, 7, 3, 64, 512)
	buf := make([]byte, 512)
	if err := s.ReadUnit(-1, buf); err == nil {
		t.Fatal("negative unit read succeeded")
	}
	if err := s.ReadUnit(s.DataUnits(), buf); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if err := s.WriteUnit(0, buf[:8]); err == nil {
		t.Fatal("short-buffer write succeeded")
	}
	if err := s.ReadRange(0, buf[:100]); err == nil {
		t.Fatal("misaligned range succeeded")
	}
	if err := s.Rebuild(NewMemDisk(64, 512)); err == nil {
		t.Fatal("rebuild of healthy store succeeded")
	}
	if err := s.Fail(99); err == nil {
		t.Fatal("fail of out-of-range disk succeeded")
	}
	if err := s.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(1); err == nil {
		t.Fatal("second concurrent failure accepted")
	}
	if err := s.Rebuild(nil); err == nil {
		t.Fatal("nil replacement accepted")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{Healthy: "healthy", Degraded: "degraded", Rebuilding: "rebuilding", Mode(9): "Mode(9)"} {
		if got := m.String(); got != want {
			t.Fatalf("Mode %d String() = %q, want %q", int(m), got, want)
		}
	}
}
