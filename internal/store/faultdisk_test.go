package store

import (
	"bytes"
	"errors"
	"testing"

	"declust/internal/layout"
)

// faultStore builds a store whose every backend is a FaultDisk over a mem
// disk, returning the wrappers for knob access.
func faultStore(t *testing.T, c, g int, unitsPerDisk int64, unitSize int, mk func(disk int) FaultConfig, cfg Config) (*Store, []*FaultDisk) {
	t.Helper()
	lay := testLayout(t, c, g)
	cfg.Layout = lay
	cfg.UnitsPerDisk = unitsPerDisk
	cfg.UnitSize = unitSize
	usable := layout.UsableUnitsPerDisk(lay, unitsPerDisk)
	fds := make([]*FaultDisk, c)
	disks := make([]Disk, c)
	for i := range disks {
		fds[i] = NewFaultDisk(NewMemDisk(usable, unitSize), mk(i))
		disks[i] = fds[i]
	}
	cfg.Disks = disks
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, fds
}

func TestFaultConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFaultDisk accepted a rate of 1.0")
		}
	}()
	NewFaultDisk(NewMemDisk(4, 64), FaultConfig{TransientRate: 1.0})
}

func TestFaultDiskTornWriteLeavesMixedImage(t *testing.T) {
	const us = 64
	under := NewMemDisk(4, us)
	phys := PhysUnitSize(us)
	old := bytes.Repeat([]byte{0xAA}, phys)
	if err := under.WriteUnit(0, old); err != nil {
		t.Fatal(err)
	}
	fd := NewFaultDisk(under, FaultConfig{Seed: 7, TornWriteRate: 0.999999})
	neu := bytes.Repeat([]byte{0x55}, phys)
	err := fd.WriteUnit(0, neu)
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("torn write returned %v, want an error wrapping ErrTransient", err)
	}
	got := make([]byte, phys)
	if err := under.ReadUnit(0, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, old) || bytes.Equal(got, neu) {
		t.Fatal("torn write left a clean old or new image, want a mixed one")
	}
	if got[0] != 0x55 {
		t.Fatal("torn write should persist a prefix of the new contents")
	}
	if fd.Stats().TornWrites != 1 {
		t.Fatalf("TornWrites = %d, want 1", fd.Stats().TornWrites)
	}
}

func TestFaultDiskLoseNextWrite(t *testing.T) {
	const us = 64
	under := NewMemDisk(4, us)
	phys := PhysUnitSize(us)
	old := bytes.Repeat([]byte{0xAA}, phys)
	if err := under.WriteUnit(1, old); err != nil {
		t.Fatal(err)
	}
	fd := NewFaultDisk(under, FaultConfig{})
	fd.LoseNextWrite()
	if err := fd.WriteUnit(1, bytes.Repeat([]byte{0x55}, phys)); err != nil {
		t.Fatalf("lost write must be acknowledged, got %v", err)
	}
	got := make([]byte, phys)
	if err := under.ReadUnit(1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("lost write reached the medium")
	}
	if fd.Stats().LostWrites != 1 {
		t.Fatalf("LostWrites = %d, want 1", fd.Stats().LostWrites)
	}
}

func TestTransientErrorsAreRetried(t *testing.T) {
	s, fds := faultStore(t, 7, 3, 64, 512,
		func(int) FaultConfig { return FaultConfig{Seed: 42, TransientRate: 0.2} },
		Config{Retries: 6})
	fillAll(t, s, 1)
	for n := int64(0); n < s.DataUnits(); n++ {
		verifyUnit(t, s, n, 1)
	}
	if s.Stats().Retries == 0 {
		t.Fatal("no retries recorded despite a 20% transient rate")
	}
	var injected int64
	for _, fd := range fds {
		injected += fd.Stats().Transients
	}
	if injected == 0 {
		t.Fatal("fault disks injected no transients")
	}
}

func TestLatentSectorErrorSelfHeals(t *testing.T) {
	s, fds := faultStore(t, 7, 3, 64, 512,
		func(int) FaultConfig { return FaultConfig{} }, Config{})
	fillAll(t, s, 3)
	loc := s.mapper.Loc(5)
	fds[loc.Disk].InjectLSE(loc.Offset)
	verifyUnit(t, s, 5, 3) // discovery read reconstructs and rewrites
	st := s.Stats()
	if st.MediaErrors == 0 || st.HealedUnits == 0 {
		t.Fatalf("MediaErrors=%d HealedUnits=%d, want both > 0", st.MediaErrors, st.HealedUnits)
	}
	if fds[loc.Disk].Stats().LSEHealed != 1 {
		t.Fatal("healing rewrite did not clear the latent sector")
	}
	verifyUnit(t, s, 5, 3) // now served straight from the medium
	if got := s.Stats().HealedUnits; got != st.HealedUnits {
		t.Fatalf("second read healed again (HealedUnits %d -> %d)", st.HealedUnits, got)
	}
}

func TestTransientCorruptionClearsOnReRead(t *testing.T) {
	s, _ := faultStore(t, 7, 3, 64, 512,
		func(int) FaultConfig { return FaultConfig{Seed: 11, CorruptRate: 0.3} },
		Config{})
	fillAll(t, s, 9)
	for n := int64(0); n < s.DataUnits(); n++ {
		verifyUnit(t, s, n, 9) // corruption must never be returned
	}
}

func TestPersistentCorruptionHealsFromParity(t *testing.T) {
	s := newTestStore(t, 7, 3, 64, 512)
	fillAll(t, s, 2)
	// Rot a unit on the medium: valid-looking garbage with a bad trailer.
	loc := s.mapper.Loc(7)
	st := s.st.Load()
	junk := bytes.Repeat([]byte{0xDB}, s.physSize)
	if err := st.disks[loc.Disk].WriteUnit(loc.Offset, junk); err != nil {
		t.Fatal(err)
	}
	verifyUnit(t, s, 7, 2)
	stats := s.Stats()
	if stats.ChecksumErrors == 0 || stats.HealedUnits == 0 {
		t.Fatalf("ChecksumErrors=%d HealedUnits=%d, want both > 0", stats.ChecksumErrors, stats.HealedUnits)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatalf("CheckParity after heal: %v", err)
	}
}

func TestRangeReadHealsDamage(t *testing.T) {
	s := newTestStore(t, 7, 3, 64, 512)
	fillAll(t, s, 4)
	loc := s.mapper.Loc(2)
	st := s.st.Load()
	if err := st.disks[loc.Disk].WriteUnit(loc.Offset, make([]byte, s.physSize)); err != nil {
		t.Fatal(err)
	}
	// All-zero reads as valid zeroes, so rot it with a nonzero bad image.
	junk := bytes.Repeat([]byte{1}, s.physSize)
	if err := st.disks[loc.Disk].WriteUnit(loc.Offset, junk); err != nil {
		t.Fatal(err)
	}
	n := int64(6)
	dst := make([]byte, int(n)*s.UnitSize())
	if err := s.ReadRange(0, dst); err != nil {
		t.Fatalf("ReadRange over damaged unit: %v", err)
	}
	want := make([]byte, s.UnitSize())
	for u := int64(0); u < n; u++ {
		fill(want, u, 4)
		if !bytes.Equal(dst[u*int64(s.UnitSize()):(u+1)*int64(s.UnitSize())], want) {
			t.Fatalf("range read unit %d mismatch", u)
		}
	}
	if s.Stats().HealedUnits == 0 {
		t.Fatal("range read did not heal the damaged unit")
	}
}

func TestAutoFailThreshold(t *testing.T) {
	s, fds := faultStore(t, 7, 3, 64, 512,
		func(int) FaultConfig { return FaultConfig{} },
		Config{FailThreshold: 2})
	fillAll(t, s, 5)
	// Two latent sectors on one disk: each discovery is a persistent
	// error, and the second crosses the threshold.
	var units []int64
	for n := int64(0); n < s.DataUnits() && len(units) < 2; n++ {
		if s.mapper.Loc(n).Disk == 4 {
			units = append(units, n)
		}
	}
	if len(units) < 2 {
		t.Fatal("disk 4 holds fewer than two data units")
	}
	for _, n := range units {
		fds[4].InjectLSE(s.mapper.Loc(n).Offset)
		verifyUnit(t, s, n, 5)
	}
	if got := s.Mode(); got != Degraded {
		t.Fatalf("Mode = %v after threshold, want Degraded", got)
	}
	if got := s.FailedDisk(); got != 4 {
		t.Fatalf("FailedDisk = %d, want 4", got)
	}
	if s.Stats().AutoFails != 1 {
		t.Fatalf("AutoFails = %d, want 1", s.Stats().AutoFails)
	}
	// The store keeps serving, and the slot heals by rebuild as usual.
	for n := int64(0); n < s.DataUnits(); n++ {
		verifyUnit(t, s, n, 5)
	}
	if err := s.Rebuild(NewMemDisk(s.unitsPerDisk, s.UnitSize())); err != nil {
		t.Fatalf("Rebuild after auto-fail: %v", err)
	}
	if s.Mode() != Healthy {
		t.Fatal("store not healthy after rebuild")
	}
	if s.DiskErrors()[4] != 0 {
		t.Fatal("replacement inherited the failed slot's error score")
	}
}
