package store

import (
	"sync/atomic"
	"testing"
)

// latPQStore builds the paper's 21-disk, G=5 array under the P+Q
// dual-parity code over latency-injected in-memory backends, pre-filled
// at full speed; the returned knob arms the latency (see latStore).
func latPQStore(b *testing.B, units int64, ioWorkers, rebuildWorkers int) (*Store, *atomic.Int64) {
	b.Helper()
	lay := testPQLayout(b, 21, 5)
	const us = 4096
	lat := new(atomic.Int64)
	disks := make([]Disk, lay.Disks())
	for i := range disks {
		disks[i] = slowDisk{Disk: NewMemDisk(units, us), lat: lat}
	}
	s, err := New(Config{
		Layout: lay, UnitsPerDisk: units, UnitSize: us, Disks: disks,
		IOWorkers: ioWorkers, RebuildWorkers: rebuildWorkers,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	buf := make([]byte, s.DataUnits()*us)
	for n := int64(0); n < s.DataUnits(); n++ {
		fill(buf[n*us:(n+1)*us], n, 1)
	}
	if err := s.WriteRange(0, buf); err != nil {
		b.Fatal(err)
	}
	lat.Store(int64(benchLatency))
	return s, lat
}

// pqWorkerVariants is workerVariants over the P+Q store.
func pqWorkerVariants(b *testing.B, units int64, fn func(b *testing.B, s *Store, lat *atomic.Int64)) {
	b.Run("serial", func(b *testing.B) {
		s, lat := latPQStore(b, units, 1, 1)
		fn(b, s, lat)
	})
	b.Run("parallel", func(b *testing.B) {
		s, lat := latPQStore(b, units, 8, 4)
		fn(b, s, lat)
	})
}

// doublyLostUnits returns the data units on victim disk a whose stripe
// also holds a unit of victim disk b — every read of one is a genuine
// two-erasure decode once both disks are failed.
func doublyLostUnits(b *testing.B, s *Store, a, c int) []int64 {
	b.Helper()
	var out []int64
	for n := int64(0); n < s.DataUnits(); n++ {
		u := s.mapper.Loc(n)
		if u.Disk != a {
			continue
		}
		stripe, _ := s.lay.Locate(u)
		for j := 0; j < s.lay.G(); j++ {
			if s.lay.Unit(stripe, j).Disk == c {
				out = append(out, n)
				break
			}
		}
	}
	if len(out) == 0 {
		b.Fatalf("no stripe spans both disks %d and %d", a, c)
	}
	return out
}

// BenchmarkStorePQDegraded2Read measures reads of units whose stripe has
// lost BOTH failed disks: every read runs the GF(2^8) two-erasure decode
// over the stripe's G−2 survivors.
func BenchmarkStorePQDegraded2Read(b *testing.B) {
	pqWorkerVariants(b, 105, func(b *testing.B, s *Store, _ *atomic.Int64) {
		const v1, v2 = 7, 13
		lost := doublyLostUnits(b, s, v1, v2)
		if err := s.Fail(v1); err != nil {
			b.Fatal(err)
		}
		if err := s.Fail(v2); err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, s.UnitSize())
		b.SetBytes(int64(s.UnitSize()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.ReadUnit(lost[i%len(lost)], buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStorePQWriteRMW measures the healthy dual-parity small write:
// the six-access read-modify-write (read data+P+Q, write data+P+Q, Q
// folded through the GF(2^8) generator), against single parity's four.
func BenchmarkStorePQWriteRMW(b *testing.B) {
	pqWorkerVariants(b, 105, func(b *testing.B, s *Store, _ *atomic.Int64) {
		buf := make([]byte, s.UnitSize())
		total := s.DataUnits()
		b.SetBytes(int64(s.UnitSize()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := int64(i) % total
			fill(buf, n, 2)
			if err := s.WriteUnit(n, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStorePQRebuild2 measures the two-erasure rebuild: each
// iteration fails two disks and rebuilds both slots, the first sweep
// decoding doubly-lost stripes with the full Reed–Solomon solve.
func BenchmarkStorePQRebuild2(b *testing.B) {
	pqWorkerVariants(b, 45, func(b *testing.B, s *Store, lat *atomic.Int64) {
		const v1, v2 = 7, 13
		spares := []Disk{
			slowDisk{Disk: NewMemDisk(s.unitsPerDisk, s.UnitSize()), lat: lat},
			slowDisk{Disk: NewMemDisk(s.unitsPerDisk, s.UnitSize()), lat: lat},
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Fail(v1); err != nil {
				b.Fatal(err)
			}
			if err := s.Fail(v2); err != nil {
				b.Fatal(err)
			}
			for j := range spares {
				if err := s.Rebuild(spares[j]); err != nil {
					b.Fatal(err)
				}
			}
			// The detached victims become the next blank spares.
			s.admin.Lock()
			spares[0] = s.detached[len(s.detached)-2]
			spares[1] = s.detached[len(s.detached)-1]
			s.detached = s.detached[:len(s.detached)-2]
			s.admin.Unlock()
		}
	})
}
