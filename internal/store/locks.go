package store

import "sync"

// nStripeLocks is the size of the striped lock table. Stripes hash onto
// locks by index modulo this count, so two distinct stripes may share a
// lock — coarser, never incorrect. A power of two keeps the map a mask.
const nStripeLocks = 1024

// lockTable serializes operations per parity stripe with real mutexes
// (unlike the simulator's single-threaded FIFO queue). Readers — plain
// unit reads and on-the-fly reconstructions, which only observe stripe
// content — share; writers and the rebuild sweep, which update parity or
// the replacement, exclude. Every operation locks at most one stripe at a
// time (range operations go stripe by stripe), so there is no deadlock.
type lockTable struct {
	locks [nStripeLocks]sync.RWMutex
}

func (t *lockTable) of(stripe int64) *sync.RWMutex {
	return &t.locks[uint64(stripe)&(nStripeLocks-1)]
}

func (t *lockTable) rlock(stripe int64)  { t.of(stripe).RLock() }
func (t *lockTable) runlock(s int64)     { t.of(s).RUnlock() }
func (t *lockTable) lock(stripe int64)   { t.of(stripe).Lock() }
func (t *lockTable) unlock(stripe int64) { t.of(stripe).Unlock() }
