package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestChecksumTrailerRoundTrip(t *testing.T) {
	const us = 64
	phys := make([]byte, PhysUnitSize(us))
	fill(phys[:us], 9, 1)
	stampTrailer(phys, us, 17)
	if !verifyTrailer(phys, us, 17) {
		t.Fatal("freshly stamped unit fails verification")
	}
	phys[3] ^= 0x40
	if verifyTrailer(phys, us, 17) {
		t.Fatal("bit flip in data not detected")
	}
	phys[3] ^= 0x40
	if !verifyTrailer(phys, us, 17) {
		t.Fatal("restored unit fails verification")
	}
	if verifyTrailer(phys, us, 18) {
		t.Fatal("misdirected unit (wrong offset) not detected")
	}
	phys[us] ^= 1 // trailer corruption
	if verifyTrailer(phys, us, 17) {
		t.Fatal("trailer corruption not detected")
	}
}

func TestChecksumZeroUnitReadsAsValid(t *testing.T) {
	const us = 64
	phys := make([]byte, PhysUnitSize(us))
	if !verifyTrailer(phys, us, 5) {
		t.Fatal("all-zero physical unit (fresh backend) must verify as zeroes")
	}
}

func TestMemDiskBoundsMessages(t *testing.T) {
	d := NewMemDisk(4, 64)
	buf := make([]byte, PhysUnitSize(64))
	if err := d.ReadUnit(4, buf); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range read: %v", err)
	}
	if err := d.WriteUnit(0, buf[:64]); err == nil || !strings.Contains(err.Error(), "physical unit size") {
		t.Fatalf("short-buffer write: %v", err)
	}
}

func TestDeadDiskFailsLoudly(t *testing.T) {
	var d deadDisk
	if err := d.ReadUnit(0, nil); !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("deadDisk read: %v", err)
	}
	if err := d.WriteUnit(0, nil); !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("deadDisk write: %v", err)
	}
}

// TestDiskFailedNeverEscapes drives every healthy-path operation on a
// degraded store: ErrDiskFailed marks I/O mistakenly routed to a failed
// slot, so seeing it from a Store method is an engine bug.
func TestDiskFailedNeverEscapes(t *testing.T) {
	s := newTestStore(t, 7, 3, 64, 512)
	fillAll(t, s, 1)
	if err := s.Fail(2); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, s.UnitSize())
	for n := int64(0); n < s.DataUnits(); n++ {
		if err := s.ReadUnit(n, buf); err != nil {
			t.Fatalf("degraded ReadUnit(%d): %v", n, err)
		}
		fill(buf, n, 2)
		if err := s.WriteUnit(n, buf); err != nil {
			t.Fatalf("degraded WriteUnit(%d): %v", n, err)
		}
	}
	rng := make([]byte, 4*s.UnitSize())
	if err := s.ReadRange(0, rng); err != nil {
		t.Fatalf("degraded ReadRange: %v", err)
	}
	if _, err := s.Scrub(); err != nil {
		t.Fatalf("degraded Scrub: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("degraded Sync: %v", err)
	}
}

func TestFileDiskSuperblockValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.dat")
	d, err := OpenFileDisk(path, 16, 512)
	if err != nil {
		t.Fatal(err)
	}
	phys := make([]byte, PhysUnitSize(512))
	fill(phys[:512], 0, 1)
	stampTrailer(phys, 512, 3)
	if err := d.WriteUnit(3, phys); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		units int64
		us    int
		want  string
	}{
		{"unit size mismatch", 16, 4096, "formatted with 512-byte units"},
		{"unit count mismatch", 99, 512, "formatted for 16 units"},
	}
	for _, tc := range cases {
		if _, err := OpenFileDisk(path, tc.units, tc.us); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: got %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Matching reopen must see the bytes back.
	d, err = OpenFileDisk(path, 16, 512)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PhysUnitSize(512))
	if err := d.ReadUnit(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, phys) {
		t.Fatal("reopened disk lost its contents")
	}
	d.Close()

	// Corrupt the superblock checksum: refuse descriptively.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 20); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenFileDisk(path, 16, 512); err == nil || !strings.Contains(err.Error(), "corrupt superblock") {
		t.Fatalf("corrupt superblock: %v", err)
	}

	// Not a store file at all.
	alien := filepath.Join(dir, "alien.dat")
	if err := os.WriteFile(alien, bytes.Repeat([]byte{'x'}, 2048), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileDisk(alien, 16, 512); err == nil || !strings.Contains(err.Error(), "bad superblock magic") {
		t.Fatalf("alien file: %v", err)
	}

	// Too short to even hold a superblock.
	stub := filepath.Join(dir, "stub.dat")
	if err := os.WriteFile(stub, []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileDisk(stub, 16, 512); err == nil || !strings.Contains(err.Error(), "too short") {
		t.Fatalf("stub file: %v", err)
	}
}

// TestOpenFileDisksPartialOpenCleanup plants a failure at the third disk
// and checks both the error and that the first two file handles were
// released (no descriptor leak).
func TestOpenFileDisksPartialOpenCleanup(t *testing.T) {
	dir := t.TempDir()
	// disk0002.dat exists with the wrong geometry, so the batch open fails
	// after two successful opens.
	bad, err := OpenFileDisk(filepath.Join(dir, "disk0002.dat"), 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	bad.Close()

	before := countFDs(t)
	if _, err := OpenFileDisks(dir, 5, 16, 512); err == nil {
		t.Fatal("OpenFileDisks succeeded over a mismatched disk file")
	}
	after := countFDs(t)
	if after > before {
		t.Fatalf("descriptor leak: %d open before, %d after failed batch open", before, after)
	}
}

func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	return len(ents)
}

func TestNewValidatesSuppliedGeometry(t *testing.T) {
	lay := testLayout(t, 7, 3)
	disks := make([]Disk, 7)
	for i := range disks {
		disks[i] = NewMemDisk(64, 512)
	}
	disks[4] = NewMemDisk(64, 4096) // wrong unit size
	if _, err := New(Config{Layout: lay, UnitsPerDisk: 64, UnitSize: 512, Disks: disks}); err == nil ||
		!strings.Contains(err.Error(), "disk 4") {
		t.Fatalf("mismatched unit size accepted: %v", err)
	}
	disks[4] = NewMemDisk(2, 512) // too small
	if _, err := New(Config{Layout: lay, UnitsPerDisk: 64, UnitSize: 512, Disks: disks}); err == nil ||
		!strings.Contains(err.Error(), "disk 4") {
		t.Fatalf("undersized disk accepted: %v", err)
	}
	// Rebuild validates replacements the same way.
	s := newTestStore(t, 7, 3, 64, 512)
	if err := s.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(NewMemDisk(2, 512)); err == nil || !strings.Contains(err.Error(), "replacement") {
		t.Fatalf("undersized replacement accepted: %v", err)
	}
}
