package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentClientsThroughFailureAndRebuild is the engine's
// continuous-operation acceptance test: 12 client goroutines read and
// write through the store while a disk fails, serves degraded traffic,
// and rebuilds onto a replacement — all under the race detector when run
// via `make store-race`. Each client owns a disjoint slice of the logical
// space and verifies every read against its own last write, so any
// corruption (including rebuild racing user writes on a stripe) is
// detected at the byte level. The main goroutine gates the rebuild on
// observed on-the-fly reconstructions, so the degraded window is
// provably exercised.
func TestConcurrentClientsThroughFailureAndRebuild(t *testing.T) {
	const workers = 12
	lay := testLayout(t, 7, 3)
	s, err := New(Config{
		Layout:       lay,
		UnitsPerDisk: 64,
		UnitSize:     512,
		// Slow the sweep so rebuild genuinely overlaps client traffic.
		RebuildThrottle: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	total := s.DataUnits()
	if total < workers {
		t.Fatalf("store too small: %d units for %d workers", total, workers)
	}
	per := total / workers

	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		mu      sync.Mutex
		failure error
	)
	report := func(err error) {
		mu.Lock()
		if failure == nil {
			failure = err
		}
		mu.Unlock()
		stop.Store(true)
	}

	// version[n] is the last version written to unit n, owned exclusively
	// by the worker owning n; read afterward by the final verify.
	version := make([]uint64, total)

	for w := 0; w < workers; w++ {
		lo := int64(w) * per
		hi := lo + per
		if w == workers-1 {
			hi = total
		}
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			buf := make([]byte, s.UnitSize())
			want := make([]byte, s.UnitSize())
			for !stop.Load() {
				n := lo + rng.Int63n(hi-lo)
				if rng.Intn(2) == 0 || version[n] == 0 {
					version[n]++
					fill(buf, n, version[n])
					if err := s.WriteUnit(n, buf); err != nil {
						report(fmt.Errorf("worker %d: WriteUnit(%d): %w", w, n, err))
						return
					}
					continue
				}
				if err := s.ReadUnit(n, buf); err != nil {
					report(fmt.Errorf("worker %d: ReadUnit(%d): %w", w, n, err))
					return
				}
				fill(want, n, version[n])
				if !bytes.Equal(buf, want) {
					report(fmt.Errorf("worker %d: unit %d corrupted: read does not match version %d", w, n, version[n]))
					return
				}
			}
		}(w, lo, hi)
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if stop.Load() || time.Now().After(deadline) {
				stop.Store(true)
				wg.Wait()
				if failure != nil {
					t.Fatal(failure)
				}
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Let fault-free traffic flow, then pull a disk.
	waitFor("fault-free traffic", func() bool { st := s.Stats(); return st.Reads > 200 && st.Writes > 200 })
	if err := s.Fail(2); err != nil {
		t.Fatal(err)
	}
	// The degraded window must demonstrably serve reconstructed reads
	// and parity-folded writes before the rebuild may begin.
	waitFor("on-the-fly reconstructions", func() bool { return s.Stats().DegradedReads > 20 })
	waitFor("parity-folded writes", func() bool { return s.Stats().FoldedWrites > 0 })

	rebuildErr := make(chan error, 1)
	go func() { rebuildErr <- s.Rebuild(NewMemDisk(s.unitsPerDisk, s.UnitSize())) }()
	if err := <-rebuildErr; err != nil {
		stop.Store(true)
		wg.Wait()
		t.Fatal(err)
	}
	if got := s.Mode(); got != Healthy {
		t.Fatalf("mode %v after rebuild, want healthy", got)
	}
	// Traffic continues on the healed array before shutdown.
	post := s.Stats().Reads
	waitFor("post-heal traffic", func() bool { return s.Stats().Reads > post+100 })
	stop.Store(true)
	wg.Wait()
	if failure != nil {
		t.Fatal(failure)
	}

	// Quiesced: every unit equals its owner's last write, and every
	// stripe's parity equation balances — including the rebuilt disk.
	buf := make([]byte, s.UnitSize())
	want := make([]byte, s.UnitSize())
	for n := int64(0); n < total; n++ {
		if version[n] == 0 {
			continue
		}
		if err := s.ReadUnit(n, buf); err != nil {
			t.Fatalf("final ReadUnit(%d): %v", n, err)
		}
		fill(want, n, version[n])
		if !bytes.Equal(buf, want) {
			t.Fatalf("unit %d corrupted after rebuild: want version %d", n, version[n])
		}
	}
	if err := s.CheckParity(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DegradedReads == 0 || st.Rebuilds != 1 || st.RebuiltUnits == 0 {
		t.Fatalf("stats do not show the scenario ran: %+v", st)
	}
	t.Logf("stats: %+v", st)
}

// TestConcurrentRangeWritersWithRebuild drives multi-unit range
// operations (large-write and partial-stripe paths) from several
// goroutines across a failure and rebuild.
func TestConcurrentRangeWritersWithRebuild(t *testing.T) {
	const workers = 8
	lay := testLayout(t, 7, 3)
	s, err := New(Config{
		Layout:       lay,
		UnitsPerDisk: 64,
		UnitSize:     512,
		// Fan range-op stripe jobs and a sharded rebuild under -race.
		IOWorkers:       8,
		RebuildWorkers:  4,
		RebuildThrottle: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	total := s.DataUnits()
	per := total / workers
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		lo := int64(w) * per
		wg.Add(1)
		go func(w int, lo int64) {
			defer wg.Done()
			us := int64(s.UnitSize())
			span := per
			src := make([]byte, span*us)
			dst := make([]byte, span*us)
			for round := uint64(1); !stop.Load(); round++ {
				for i := int64(0); i < span; i++ {
					fill(src[i*us:(i+1)*us], lo+i, round)
				}
				if err := s.WriteRange(lo, src); err != nil {
					errs <- fmt.Errorf("worker %d: WriteRange: %w", w, err)
					return
				}
				if err := s.ReadRange(lo, dst); err != nil {
					errs <- fmt.Errorf("worker %d: ReadRange: %w", w, err)
					return
				}
				if !bytes.Equal(src, dst) {
					errs <- fmt.Errorf("worker %d: round %d: range read-back mismatch", w, round)
					return
				}
			}
		}(w, lo)
	}

	time.Sleep(20 * time.Millisecond)
	if err := s.Fail(5); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := s.Rebuild(NewMemDisk(s.unitsPerDisk, s.UnitSize())); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatal(err)
	}
}
