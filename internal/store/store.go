package store

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"declust/internal/layout"
)

// Config describes a Store. Layout is required (the facade builds one
// from C and G via the block-design selector); UnitsPerDisk is rounded
// down to whole allocation periods.
type Config struct {
	// Layout is the parity layout mapping stripes to disks; its Disks()
	// fixes the array width C.
	Layout layout.Layout
	// UnitsPerDisk is the raw per-disk capacity in units (default 1024).
	UnitsPerDisk int64
	// UnitSize is the unit size in bytes (default 4096).
	UnitSize int
	// Disks optionally supplies the C backends (index = disk number);
	// nil builds in-memory disks. Each must hold at least the usable
	// unit count.
	Disks []Disk
	// RebuildThrottle pauses the rebuild sweep between units, trading
	// rebuild time for user response — the paper's §9 throttling knob,
	// and the way tests hold the rebuild window open.
	RebuildThrottle time.Duration
}

// Mode is the store's failure state.
type Mode int

const (
	// Healthy: all C disks in service.
	Healthy Mode = iota
	// Degraded: one disk failed, no replacement installed; lost reads
	// reconstruct on the fly, lost writes fold into parity.
	Degraded
	// Rebuilding: a replacement is installed and the sweep is copying
	// reconstructed units onto it under live load.
	Rebuilding
)

func (m Mode) String() string {
	switch m {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Rebuilding:
		return "rebuilding"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Stats counts engine activity since creation. Counters are cumulative
// and monotone; read them with Store.Stats.
type Stats struct {
	// Reads and Writes count completed user unit operations.
	Reads, Writes int64
	// DegradedReads counts reads served by on-the-fly XOR reconstruction
	// from the G−1 survivors.
	DegradedReads int64
	// FoldedWrites counts writes to lost units absorbed by the parity
	// unit (no replacement installed, or stripe not yet rebuilt).
	FoldedWrites int64
	// RedirectedWrites counts lost-unit writes also committed directly
	// to the replacement (which counts as reconstruction).
	RedirectedWrites int64
	// RebuiltUnits counts units regenerated onto a replacement, by the
	// sweep or by write redirection.
	RebuiltUnits int64
	// Rebuilds counts completed rebuild sweeps (heals).
	Rebuilds int64
}

// diskState is an immutable failure-state snapshot, published through an
// atomic pointer. disks is never mutated after publication; rebuilt is
// element-mutable under the owning stripe's lock.
type diskState struct {
	disks   []Disk
	failed  int    // -1 when healthy
	repl    Disk   // replacement being rebuilt onto; nil before install
	rebuilt []bool // failed disk offsets already on the replacement
}

// lost reports whether loc's contents are unreadable at its home slot and
// not yet available on a replacement.
func (st *diskState) lost(loc layout.Loc) bool {
	return loc.Disk == st.failed && !(st.repl != nil && st.rebuilt[loc.Offset])
}

// disk resolves loc to the backend serving it; loc must not be lost.
func (st *diskState) disk(loc layout.Loc) Disk {
	if loc.Disk == st.failed {
		return st.repl
	}
	return st.disks[loc.Disk]
}

// Store is a goroutine-safe declustered block store. See the package
// comment for the concurrency model.
type Store struct {
	lay          layout.Layout
	mapper       layout.StripeIndexMapper
	unitSize     int
	unitsPerDisk int64 // usable units per disk (whole periods)
	numStripes   int64
	dataUnits    int64
	throttle     time.Duration

	locks lockTable
	st    atomic.Pointer[diskState]

	admin      sync.Mutex // serializes Fail / Rebuild install / heal
	rebuilding atomic.Bool
	detached   []Disk // failed backends, closed with the store
	closed     bool

	bufs sync.Pool

	reads, writes, degradedReads   atomic.Int64
	foldedWrites, redirectedWrites atomic.Int64
	rebuiltUnits, rebuilds         atomic.Int64
	rebuiltNow                     atomic.Int64 // progress within the current failure
}

// New builds a Store over cfg.Layout. With cfg.Disks nil it creates
// in-memory backends; otherwise it adopts (and will Close) the supplied
// ones.
func New(cfg Config) (*Store, error) {
	if cfg.Layout == nil {
		return nil, fmt.Errorf("store: Config.Layout is required (use declust.OpenStore to build one from C and G)")
	}
	if cfg.UnitSize == 0 {
		cfg.UnitSize = 4096
	}
	if cfg.UnitSize < 8 || cfg.UnitSize%8 != 0 {
		return nil, fmt.Errorf("store: unit size %d must be a positive multiple of 8", cfg.UnitSize)
	}
	if cfg.UnitsPerDisk == 0 {
		cfg.UnitsPerDisk = 1024
	}
	l := cfg.Layout
	usable := layout.UsableUnitsPerDisk(l, cfg.UnitsPerDisk)
	if usable == 0 {
		return nil, fmt.Errorf("store: %d units per disk is less than one allocation period (%d)",
			cfg.UnitsPerDisk, l.UnitsPerDiskPerPeriod())
	}
	c := l.Disks()
	disks := cfg.Disks
	if disks == nil {
		disks = make([]Disk, c)
		for i := range disks {
			disks[i] = NewMemDisk(usable, cfg.UnitSize)
		}
	} else if len(disks) != c {
		return nil, fmt.Errorf("store: %d disks supplied, layout needs %d", len(disks), c)
	}
	s := &Store{
		lay:          l,
		mapper:       layout.StripeIndexMapper{L: l},
		unitSize:     cfg.UnitSize,
		unitsPerDisk: usable,
		numStripes:   layout.UsableStripes(l, cfg.UnitsPerDisk),
		dataUnits:    layout.DataUnits(l, cfg.UnitsPerDisk),
		throttle:     cfg.RebuildThrottle,
	}
	s.bufs.New = func() any {
		b := make([]byte, s.unitSize)
		return &b
	}
	s.st.Store(&diskState{disks: disks, failed: -1})
	return s, nil
}

func (s *Store) getBuf() *[]byte  { return s.bufs.Get().(*[]byte) }
func (s *Store) putBuf(b *[]byte) { s.bufs.Put(b) }

// DataUnits returns the store's logical capacity in data units.
func (s *Store) DataUnits() int64 { return s.dataUnits }

// UnitSize returns the unit size in bytes.
func (s *Store) UnitSize() int { return s.unitSize }

// Disks returns C, the array width.
func (s *Store) Disks() int { return s.lay.Disks() }

// Mode reports the current failure state.
func (s *Store) Mode() Mode {
	st := s.st.Load()
	switch {
	case st.failed == -1:
		return Healthy
	case st.repl == nil:
		return Degraded
	default:
		return Rebuilding
	}
}

// FailedDisk returns the failed disk number, or -1 when healthy.
func (s *Store) FailedDisk() int { return s.st.Load().failed }

// Stats returns a snapshot of the engine counters.
func (s *Store) Stats() Stats {
	return Stats{
		Reads:            s.reads.Load(),
		Writes:           s.writes.Load(),
		DegradedReads:    s.degradedReads.Load(),
		FoldedWrites:     s.foldedWrites.Load(),
		RedirectedWrites: s.redirectedWrites.Load(),
		RebuiltUnits:     s.rebuiltUnits.Load(),
		Rebuilds:         s.rebuilds.Load(),
	}
}

// RebuildProgress reports units restored within the current failure (by
// sweep or write redirection) out of the failed disk's usable units. With
// no failure in progress it reports the last failure's final state.
func (s *Store) RebuildProgress() (done, total int64) {
	return s.rebuiltNow.Load(), s.unitsPerDisk
}

func (s *Store) checkUnit(n int64, buf []byte) error {
	if n < 0 || n >= s.dataUnits {
		return fmt.Errorf("store: data unit %d out of range [0,%d)", n, s.dataUnits)
	}
	if len(buf) != s.unitSize {
		return fmt.Errorf("store: buffer is %d bytes, unit size is %d", len(buf), s.unitSize)
	}
	return nil
}

// ReadUnit reads logical data unit n into dst (exactly one unit). Lost
// units are reconstructed on the fly by XORing the stripe's survivors.
func (s *Store) ReadUnit(n int64, dst []byte) error {
	if err := s.checkUnit(n, dst); err != nil {
		return err
	}
	loc := s.mapper.Loc(n)
	stripe, _ := s.lay.Locate(loc)
	s.locks.rlock(stripe)
	err := s.readLocked(stripe, loc, dst)
	s.locks.runlock(stripe)
	if err == nil {
		s.reads.Add(1)
	}
	return err
}

// readLocked reads one unit with (at least) the stripe's read lock held.
func (s *Store) readLocked(stripe int64, loc layout.Loc, dst []byte) error {
	st := s.st.Load()
	if !st.lost(loc) {
		return st.disk(loc).ReadUnit(loc.Offset, dst)
	}
	if err := s.reconstructLocked(st, loc, dst); err != nil {
		return err
	}
	s.degradedReads.Add(1)
	return nil
}

// reconstructLocked computes loc's contents into dst as the XOR of its
// stripe's surviving units. Caller holds the stripe lock.
func (s *Store) reconstructLocked(st *diskState, loc layout.Loc, dst []byte) error {
	surv := layout.SurvivingUnits(s.lay, loc)
	buf := s.getBuf()
	defer s.putBuf(buf)
	for i, u := range surv {
		if st.lost(u) {
			return fmt.Errorf("store: two lost units in one stripe (%v and %v)", loc, u)
		}
		if i == 0 {
			if err := st.disk(u).ReadUnit(u.Offset, dst); err != nil {
				return err
			}
			continue
		}
		if err := st.disk(u).ReadUnit(u.Offset, *buf); err != nil {
			return err
		}
		xorInto(dst, *buf)
	}
	return nil
}

// WriteUnit writes src (exactly one unit) to logical data unit n,
// maintaining parity: the four-access read-modify-write when the stripe
// is whole, parity folding or replacement redirection when it is not.
func (s *Store) WriteUnit(n int64, src []byte) error {
	if err := s.checkUnit(n, src); err != nil {
		return err
	}
	loc := s.mapper.Loc(n)
	stripe, _ := s.lay.Locate(loc)
	s.locks.lock(stripe)
	err := s.writeStripeLocked(stripe, []layout.Loc{loc}, [][]byte{src})
	s.locks.unlock(stripe)
	if err == nil {
		s.writes.Add(1)
	}
	return err
}

// writeStripeLocked commits new contents for one or more data units of a
// single stripe, updating parity once. Caller holds the stripe's write
// lock; locs are distinct data-unit locations of this stripe.
func (s *Store) writeStripeLocked(stripe int64, locs []layout.Loc, datas [][]byte) error {
	st := s.st.Load()
	ploc := layout.ParityLoc(s.lay, stripe)

	if st.lost(ploc) {
		// Lost parity: there is no parity to maintain, so each write is
		// a single data access (§7); the rebuild sweep recomputes the
		// parity unit from data when its turn comes.
		for i, loc := range locs {
			if err := st.disks[loc.Disk].WriteUnit(loc.Offset, datas[i]); err != nil {
				return err
			}
		}
		return nil
	}

	// Find the stripe's lost data unit, if any, and whether it is being
	// written. A single-failure-correcting layout puts at most one unit
	// of a stripe on any disk.
	lostIdx := -1 // index into locs of a written lost unit
	var lostLoc layout.Loc
	haveLost := false
	if st.failed >= 0 {
		g := s.lay.G()
		pp := s.lay.ParityPos(stripe)
		for j := 0; j < g; j++ {
			if j == pp {
				continue
			}
			u := s.lay.Unit(stripe, j)
			if st.lost(u) {
				lostLoc, haveLost = u, true
				break
			}
		}
		if haveLost {
			for i, loc := range locs {
				if loc == lostLoc {
					lostIdx = i
					break
				}
			}
		}
	}

	pbuf := s.getBuf()
	defer s.putBuf(pbuf)

	switch {
	case len(locs) == s.lay.G()-1:
		// Large-write optimization: the segment covers every data unit
		// of the stripe, so parity is computed from the new contents
		// with no pre-reads.
		copy(*pbuf, datas[0])
		for _, d := range datas[1:] {
			xorInto(*pbuf, d)
		}
	case haveLost && lostIdx >= 0:
		// Writing the lost unit: its old contents are unreadable, so the
		// delta method is unavailable. Fold forward instead: parity
		// becomes the XOR of every data unit's new contents — written
		// units contribute their new data, unwritten survivors are read.
		copy(*pbuf, datas[lostIdx])
		for i, d := range datas {
			if i != lostIdx {
				xorInto(*pbuf, d)
			}
		}
		obuf := s.getBuf()
		g := s.lay.G()
		pp := s.lay.ParityPos(stripe)
		for j := 0; j < g; j++ {
			if j == pp {
				continue
			}
			u := s.lay.Unit(stripe, j)
			written := false
			for _, loc := range locs {
				if u == loc {
					written = true
					break
				}
			}
			if written {
				continue
			}
			if err := st.disk(u).ReadUnit(u.Offset, *obuf); err != nil {
				s.putBuf(obuf)
				return err
			}
			xorInto(*pbuf, *obuf)
		}
		s.putBuf(obuf)
	default:
		// Read-modify-write: parity' = parity ⊕ old ⊕ new, folded over
		// every written unit. All written units are readable here (a
		// written lost unit takes the branch above).
		if err := st.disk(ploc).ReadUnit(ploc.Offset, *pbuf); err != nil {
			return err
		}
		obuf := s.getBuf()
		for i, loc := range locs {
			if err := st.disk(loc).ReadUnit(loc.Offset, *obuf); err != nil {
				s.putBuf(obuf)
				return err
			}
			xorInto(*pbuf, *obuf)
			xorInto(*pbuf, datas[i])
		}
		s.putBuf(obuf)
	}

	// Commit data, then parity. A written lost unit goes to the
	// replacement when one is installed (write redirection, which counts
	// as reconstruction); with no replacement it is dropped — parity now
	// encodes it, which is the fold.
	for i, loc := range locs {
		if i == lostIdx {
			if st.repl != nil {
				if err := st.repl.WriteUnit(loc.Offset, datas[i]); err != nil {
					return err
				}
				s.markRebuilt(st, loc.Offset)
				s.redirectedWrites.Add(1)
			} else {
				s.foldedWrites.Add(1)
			}
			continue
		}
		if err := st.disk(loc).WriteUnit(loc.Offset, datas[i]); err != nil {
			return err
		}
	}
	return st.disk(ploc).WriteUnit(ploc.Offset, *pbuf)
}

// markRebuilt records (under the stripe lock) that the failed disk's unit
// at off now lives on the replacement.
func (s *Store) markRebuilt(st *diskState, off int64) {
	if !st.rebuilt[off] {
		st.rebuilt[off] = true
		s.rebuiltUnits.Add(1)
		s.rebuiltNow.Add(1)
	}
}

// Fail takes disk d out of service: its backend is detached (to be closed
// with the store) and the slot reads as lost until rebuilt. Only a single
// concurrent failure is supported — the layout is single-failure-
// correcting — so failing an already-degraded store is an error.
func (s *Store) Fail(d int) error {
	s.admin.Lock()
	defer s.admin.Unlock()
	st := s.st.Load()
	if st.failed != -1 {
		return fmt.Errorf("store: disk %d already failed; single-failure layout", st.failed)
	}
	if d < 0 || d >= len(st.disks) {
		return fmt.Errorf("store: disk %d out of range [0,%d)", d, len(st.disks))
	}
	disks := make([]Disk, len(st.disks))
	copy(disks, st.disks)
	s.detached = append(s.detached, disks[d])
	disks[d] = deadDisk{}
	s.rebuiltNow.Store(0)
	s.st.Store(&diskState{
		disks:   disks,
		failed:  d,
		rebuilt: make([]bool, s.unitsPerDisk),
	})
	return nil
}

// Rebuild installs repl as the failed disk's replacement and sweeps the
// failed disk's units onto it, stripe by stripe under the stripe locks,
// while user operations continue. Units already redirected by concurrent
// writes are skipped. On completion the replacement is swapped into the
// array and the store returns to Healthy. repl must hold at least the
// usable unit count and should be blank; its prior contents are
// overwritten.
func (s *Store) Rebuild(repl Disk) error {
	if repl == nil {
		return fmt.Errorf("store: nil replacement disk")
	}
	if !s.rebuilding.CompareAndSwap(false, true) {
		return fmt.Errorf("store: rebuild already in progress")
	}
	defer s.rebuilding.Store(false)

	s.admin.Lock()
	st := s.st.Load()
	if st.failed == -1 {
		s.admin.Unlock()
		return fmt.Errorf("store: no failed disk to rebuild")
	}
	st2 := &diskState{disks: st.disks, failed: st.failed, repl: repl, rebuilt: st.rebuilt}
	s.st.Store(st2)
	s.admin.Unlock()

	buf := s.getBuf()
	defer s.putBuf(buf)
	for off := int64(0); off < s.unitsPerDisk; off++ {
		loc := layout.Loc{Disk: st2.failed, Offset: off}
		stripe, _ := s.lay.Locate(loc)
		s.locks.lock(stripe)
		var err error
		if !st2.rebuilt[off] {
			if err = s.reconstructLocked(st2, loc, *buf); err == nil {
				if err = repl.WriteUnit(off, *buf); err == nil {
					s.markRebuilt(st2, off)
				}
			}
		}
		s.locks.unlock(stripe)
		if err != nil {
			return fmt.Errorf("store: rebuild of %v: %w", loc, err)
		}
		if s.throttle > 0 {
			time.Sleep(s.throttle)
		}
	}

	// Heal: swap the replacement into the slot and return to Healthy.
	s.admin.Lock()
	disks := make([]Disk, len(st2.disks))
	copy(disks, st2.disks)
	disks[st2.failed] = repl
	s.st.Store(&diskState{disks: disks, failed: -1})
	s.admin.Unlock()
	s.rebuilds.Add(1)
	return nil
}

// CheckParity verifies, at quiesce (no operations in flight), that every
// stripe's parity equation balances: the XOR over all readable units of a
// whole stripe is zero. Stripes with a lost unit are skipped — their
// consistency is exactly what degraded reads exercise.
func (s *Store) CheckParity() error {
	buf := s.getBuf()
	acc := s.getBuf()
	defer s.putBuf(buf)
	defer s.putBuf(acc)
	g := s.lay.G()
	for stripe := int64(0); stripe < s.numStripes; stripe++ {
		s.locks.rlock(stripe)
		st := s.st.Load()
		skip := false
		for i := range *acc {
			(*acc)[i] = 0
		}
		var err error
		for j := 0; j < g && err == nil; j++ {
			u := s.lay.Unit(stripe, j)
			if st.lost(u) {
				skip = true
				break
			}
			if err = st.disk(u).ReadUnit(u.Offset, *buf); err == nil {
				xorInto(*acc, *buf)
			}
		}
		s.locks.runlock(stripe)
		if err != nil {
			return err
		}
		if skip {
			continue
		}
		for _, b := range *acc {
			if b != 0 {
				return fmt.Errorf("store: stripe %d parity inconsistent", stripe)
			}
		}
	}
	return nil
}

// Close releases every backend, including detached failed disks. The
// store must be quiesced; operations after Close have undefined results.
func (s *Store) Close() error {
	s.admin.Lock()
	defer s.admin.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	st := s.st.Load()
	for _, d := range st.disks {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	if st.repl != nil {
		if err := st.repl.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, d := range s.detached {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// xorInto XORs src into dst in place; lengths are equal unit sizes,
// which New constrains to multiples of 8.
func xorInto(dst, src []byte) {
	for i := 0; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
}
