package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"declust/internal/layout"
)

// Config describes a Store. Layout is required (the facade builds one
// from C and G via the block-design selector); UnitsPerDisk is rounded
// down to whole allocation periods.
type Config struct {
	// Layout is the parity layout mapping stripes to disks; its Disks()
	// fixes the array width C.
	Layout layout.Layout
	// UnitsPerDisk is the raw per-disk capacity in units (default 1024).
	UnitsPerDisk int64
	// UnitSize is the data unit size in bytes (default 4096). Backends
	// store PhysUnitSize(UnitSize) bytes per unit — the data plus its
	// checksum trailer.
	UnitSize int
	// Disks optionally supplies the C backends (index = disk number);
	// nil builds in-memory disks. Each must hold at least the usable
	// unit count at the physical unit size; backends reporting a
	// Geometry are validated against the store's.
	Disks []Disk
	// IOWorkers bounds the store's I/O helper goroutines, the parallel
	// fast path: multi-unit operations (degraded-read survivor gathers,
	// parity pre-reads and commits, range operations, CheckParity) fan
	// their independent disk accesses across up to IOWorkers−1 idle
	// helpers plus the submitting goroutine. Helpers are acquired with a
	// non-blocking try, so a saturated store degrades to serial issue
	// instead of queueing. 1 disables fan-out entirely (the serial
	// engine, bit-identical results); 0 defaults to GOMAXPROCS.
	IOWorkers int
	// RebuildWorkers is how many shards Rebuild and Scrub sweep
	// concurrently; the declustered layout spreads each shard's
	// reconstruction reads over all surviving disks, so the sweep scales
	// until the survivors saturate. RebuildThrottle/ScrubThrottle pacing
	// is aggregate: each worker sleeps workers× the configured throttle,
	// so the knob means the same wall-clock sweep rate at any worker
	// count. 0 defaults to IOWorkers.
	RebuildWorkers int
	// RebuildThrottle pauses the rebuild sweep between units, trading
	// rebuild time for user response — the paper's §9 throttling knob,
	// and the way tests hold the rebuild window open.
	RebuildThrottle time.Duration
	// ScrubThrottle pauses the Scrub sweep between stripes, bounding the
	// bandwidth the background verifier steals from clients (the same
	// knob as RebuildThrottle, applied to scrubbing).
	ScrubThrottle time.Duration
	// Retries is how many times a transiently failing backend operation
	// is retried before the error is treated as persistent (default 3).
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling each
	// attempt (default 500µs).
	RetryBackoff time.Duration
	// FailThreshold, when positive, auto-fails a disk once its
	// persistent-error score (exhausted retries, unknown errors,
	// confirmed media/checksum damage) reaches it, instead of letting a
	// dying device keep degrading every stripe it touches. Zero disables
	// auto-failing; Fail remains available to operators.
	FailThreshold int
	// Intent, when non-nil, persists the dirty-region write-intent log
	// that makes parity crash-consistent (OpenFileIntent for file-backed
	// arrays). Nil uses an in-memory log: the same bookkeeping, no
	// durability — appropriate for mem backends, which lose everything
	// in a crash anyway. New replays a non-empty log before serving.
	Intent IntentLog
}

// Mode is the store's failure state.
type Mode int

const (
	// Healthy: all C disks in service.
	Healthy Mode = iota
	// Degraded: one disk failed, no replacement installed; lost reads
	// reconstruct on the fly, lost writes fold into parity.
	Degraded
	// Rebuilding: a replacement is installed and the sweep is copying
	// reconstructed units onto it under live load.
	Rebuilding
)

func (m Mode) String() string {
	switch m {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Rebuilding:
		return "rebuilding"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Stats counts engine activity since creation. Counters are cumulative
// and monotone; read them with Store.Stats.
type Stats struct {
	// Reads and Writes count completed user unit operations.
	Reads, Writes int64
	// DegradedReads counts reads served by on-the-fly XOR reconstruction
	// from the G−1 survivors.
	DegradedReads int64
	// FoldedWrites counts writes to lost units absorbed by the parity
	// unit (no replacement installed, or stripe not yet rebuilt).
	FoldedWrites int64
	// RedirectedWrites counts lost-unit writes also committed directly
	// to the replacement (which counts as reconstruction).
	RedirectedWrites int64
	// RebuiltUnits counts units regenerated onto a replacement, by the
	// sweep or by write redirection.
	RebuiltUnits int64
	// Rebuilds counts completed rebuild sweeps (heals).
	Rebuilds int64
	// Retries counts backend operations retried after a transient error.
	Retries int64
	// ChecksumErrors counts units whose trailer failed verification
	// persistently (torn writes, bit rot) and entered the heal path.
	ChecksumErrors int64
	// MediaErrors counts unrecoverable media errors (latent sector
	// errors) reported by backends.
	MediaErrors int64
	// HealedUnits counts damaged units rewritten in place with contents
	// reconstructed from their stripe's survivors (self-healing reads,
	// RMW pre-reads, and scrub repairs).
	HealedUnits int64
	// AutoFails counts disks taken out of service by the
	// persistent-error threshold.
	AutoFails int64
	// Scrubs counts completed Scrub sweeps; ScrubbedStripes the stripes
	// they verified; ScrubUnitRepairs the damaged units they healed;
	// ScrubParityFixes the self-consistent-but-unbalanced stripes whose
	// parity they recomputed (the lost-write signature).
	Scrubs           int64
	ScrubbedStripes  int64
	ScrubUnitRepairs int64
	ScrubParityFixes int64
	// ResyncedStripes counts stripes re-verified by the write-intent
	// recovery pass at open; ResyncRepairs those it had to repair.
	ResyncedStripes int64
	ResyncRepairs   int64
}

// failSlot tracks one failed disk: its number, the replacement being
// rebuilt onto it (nil before install), and which of its offsets already
// live on the replacement.
type failSlot struct {
	disk    int
	repl    Disk   // replacement being rebuilt onto; nil before install
	rebuilt []bool // failed disk offsets already on the replacement
}

// diskState is an immutable failure-state snapshot, published through an
// atomic pointer. disks and fails are never mutated after publication
// (Fail/Rebuild publish fresh snapshots); each slot's rebuilt is
// element-mutable under the owning stripe's lock. fails is ordered oldest
// failure first and holds at most the layout's parity count: a P+Q store
// tolerates two concurrent failures, a single-parity store one.
type diskState struct {
	disks []Disk
	fails []failSlot
}

// slot returns the failure slot covering disk d, or nil.
func (st *diskState) slot(d int) *failSlot {
	for i := range st.fails {
		if st.fails[i].disk == d {
			return &st.fails[i]
		}
	}
	return nil
}

// slotIndex returns the index in fails of disk d's slot, or -1.
func (st *diskState) slotIndex(d int) int {
	for i := range st.fails {
		if st.fails[i].disk == d {
			return i
		}
	}
	return -1
}

// lost reports whether loc's contents are unreadable at its home slot and
// not yet available on a replacement.
func (st *diskState) lost(loc layout.Loc) bool {
	f := st.slot(loc.Disk)
	return f != nil && !(f.repl != nil && f.rebuilt[loc.Offset])
}

// disk resolves loc to the backend serving it; loc must not be lost.
func (st *diskState) disk(loc layout.Loc) Disk {
	if f := st.slot(loc.Disk); f != nil {
		return f.repl
	}
	return st.disks[loc.Disk]
}

// Store is a goroutine-safe declustered block store. See the package
// comment for the concurrency model and the failure/durability contract.
type Store struct {
	lay           layout.Layout
	mapper        layout.StripeIndexMapper
	parities      int   // parity units per stripe: 1 (P) or 2 (P+Q)
	dataPerStripe int64 // data units per stripe: G − parities
	unitSize      int
	physSize      int
	unitsPerDisk  int64 // usable units per disk (whole periods)
	numStripes    int64
	dataUnits     int64
	throttle      time.Duration

	retries       int
	retryBackoff  time.Duration
	failThreshold int
	scrubThrottle time.Duration

	ioWorkers      int
	rebuildWorkers int
	pool           ioPool

	locks lockTable
	st    atomic.Pointer[diskState]

	admin      sync.Mutex // serializes Fail / Rebuild install / heal
	rebuilding atomic.Bool
	scrubbing  atomic.Bool
	detached   []Disk // failed backends, closed with the store
	closed     bool

	intent         IntentLog
	intentMu       sync.Mutex // serializes Mark/Clear persistence, guards the group-commit state below
	intentCond     sync.Cond  // signals group-commit followers that a flush finished
	intentPend     []int64    // regions queued for the next group-commit flush
	intentFlushing bool       // a leader is flushing; arrivals queue for the next batch
	intentFailed   map[int64]error
	regionDirty    []atomic.Bool
	regionActive   []atomic.Int32
	parityDoubt    atomic.Bool // a write failed mid-stripe; hold intent until a clean scrub

	scratch sync.Pool // rangeScratch for per-stripe write jobs

	diskErrs []atomic.Int64 // persistent-error score per slot

	bufs sync.Pool // physical-unit-sized buffers

	reads, writes, degradedReads   atomic.Int64
	foldedWrites, redirectedWrites atomic.Int64
	rebuiltUnits, rebuilds         atomic.Int64
	rebuiltNow                     atomic.Int64 // progress within the current failure

	retriesDone              atomic.Int64
	checksumErrs, mediaErrs  atomic.Int64
	healedUnits, autoFails   atomic.Int64
	scrubs, scrubbedStripes  atomic.Int64
	scrubRepairs, scrubFixes atomic.Int64
	resyncStripes            atomic.Int64
	resyncRepairs            atomic.Int64
}

// New builds a Store over cfg.Layout. With cfg.Disks nil it creates
// in-memory backends; otherwise it adopts (and will Close) the supplied
// ones. If cfg.Intent carries dirty regions from a previous incarnation,
// New resynchronizes their stripes (parity recomputation, damaged-unit
// reconstruction) before returning — the crash-recovery pass.
func New(cfg Config) (*Store, error) {
	if cfg.Layout == nil {
		return nil, fmt.Errorf("store: Config.Layout is required (use declust.OpenStore to build one from C and G)")
	}
	if cfg.UnitSize == 0 {
		cfg.UnitSize = 4096
	}
	if cfg.UnitSize < 8 || cfg.UnitSize%8 != 0 {
		return nil, fmt.Errorf("store: unit size %d must be a positive multiple of 8", cfg.UnitSize)
	}
	if cfg.UnitsPerDisk == 0 {
		cfg.UnitsPerDisk = 1024
	}
	if cfg.Retries == 0 {
		cfg.Retries = 3
	}
	if cfg.Retries < 0 || cfg.Retries > 16 {
		return nil, fmt.Errorf("store: %d retries outside [1,16]", cfg.Retries)
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 500 * time.Microsecond
	}
	if cfg.RetryBackoff < 0 {
		return nil, fmt.Errorf("store: negative retry backoff %v", cfg.RetryBackoff)
	}
	if cfg.FailThreshold < 0 {
		return nil, fmt.Errorf("store: negative fail threshold %d", cfg.FailThreshold)
	}
	if cfg.IOWorkers == 0 {
		cfg.IOWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.IOWorkers < 1 || cfg.IOWorkers > 1024 {
		return nil, fmt.Errorf("store: %d I/O workers outside [1,1024]", cfg.IOWorkers)
	}
	if cfg.RebuildWorkers == 0 {
		cfg.RebuildWorkers = cfg.IOWorkers
	}
	if cfg.RebuildWorkers < 1 || cfg.RebuildWorkers > 1024 {
		return nil, fmt.Errorf("store: %d rebuild workers outside [1,1024]", cfg.RebuildWorkers)
	}
	l := cfg.Layout
	parities := layout.NumParities(l)
	if parities < 1 || parities > 2 {
		return nil, fmt.Errorf("store: layout has %d parity units per stripe; 1 (P) or 2 (P+Q) supported", parities)
	}
	usable := layout.UsableUnitsPerDisk(l, cfg.UnitsPerDisk)
	if usable == 0 {
		return nil, fmt.Errorf("store: %d units per disk is less than one allocation period (%d)",
			cfg.UnitsPerDisk, l.UnitsPerDiskPerPeriod())
	}
	c := l.Disks()
	disks := cfg.Disks
	if disks == nil {
		disks = make([]Disk, c)
		for i := range disks {
			disks[i] = NewMemDisk(usable, cfg.UnitSize)
		}
	} else if len(disks) != c {
		return nil, fmt.Errorf("store: %d disks supplied, layout needs %d", len(disks), c)
	} else {
		for i, d := range disks {
			if err := checkGeometry(d, usable, cfg.UnitSize); err != nil {
				return nil, fmt.Errorf("store: disk %d: %w", i, err)
			}
		}
	}
	s := &Store{
		lay:            l,
		mapper:         layout.StripeIndexMapper{L: l},
		parities:       parities,
		dataPerStripe:  int64(layout.DataPerStripe(l)),
		unitSize:       cfg.UnitSize,
		physSize:       PhysUnitSize(cfg.UnitSize),
		unitsPerDisk:   usable,
		numStripes:     layout.UsableStripes(l, cfg.UnitsPerDisk),
		dataUnits:      layout.DataUnits(l, cfg.UnitsPerDisk),
		throttle:       cfg.RebuildThrottle,
		retries:        cfg.Retries,
		retryBackoff:   cfg.RetryBackoff,
		failThreshold:  cfg.FailThreshold,
		scrubThrottle:  cfg.ScrubThrottle,
		ioWorkers:      cfg.IOWorkers,
		rebuildWorkers: cfg.RebuildWorkers,
		diskErrs:       make([]atomic.Int64, c),
	}
	s.pool.free.Store(int32(s.ioWorkers - 1))
	s.intentCond.L = &s.intentMu
	s.bufs.New = func() any {
		b := make([]byte, s.physSize)
		return &b
	}
	s.scratch.New = func() any { return new(rangeScratch) }
	s.st.Store(&diskState{disks: disks})

	s.intent = cfg.Intent
	if s.intent == nil {
		s.intent = &memIntent{}
	}
	regions := intentRegions(s.numStripes)
	dirty, err := s.intent.Init(regions)
	if err != nil {
		return nil, fmt.Errorf("store: intent log: %w", err)
	}
	s.regionDirty = make([]atomic.Bool, regions)
	s.regionActive = make([]atomic.Int32, regions)
	if len(dirty) > 0 {
		if err := s.recoverIntent(dirty); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// checkGeometry validates a supplied backend against the store's needs
// when the backend reports its geometry.
func checkGeometry(d Disk, usable int64, unitSize int) error {
	sd, ok := d.(sizedDisk)
	if !ok {
		return nil
	}
	units, us := sd.Geometry()
	if us != unitSize {
		return fmt.Errorf("backend has %d-byte units, store uses %d-byte units", us, unitSize)
	}
	if units < usable {
		return fmt.Errorf("backend holds %d units, store needs %d", units, usable)
	}
	return nil
}

// recoverIntent is the crash-recovery pass: every stripe of every dirty
// region is resynchronized (parity recomputed, damaged units
// reconstructed), then the regions are cleared. Runs before the store
// serves traffic, so no locks are contended.
func (s *Store) recoverIntent(dirty []int64) error {
	st := s.st.Load()
	for _, r := range dirty {
		lo := r * intentRegionStripes
		hi := lo + intentRegionStripes
		if hi > s.numStripes {
			hi = s.numStripes
		}
		for stripe := lo; stripe < hi; stripe++ {
			fix, err := s.resyncStripe(st, stripe)
			if err != nil {
				return fmt.Errorf("store: intent recovery of stripe %d: %w", stripe, err)
			}
			s.resyncStripes.Add(1)
			if fix != fixNone {
				s.resyncRepairs.Add(1)
			}
		}
	}
	// All dirty regions are consistent again: clear them with one
	// durability barrier. A crash before the clear lands just resyncs
	// them again on the next open.
	if err := s.intent.ClearBatch(dirty); err != nil {
		return fmt.Errorf("store: intent log: %w", err)
	}
	return nil
}

// markIntent durably marks stripe region r dirty before its first write.
// The fast path is one atomic load. The slow path (first write into a
// clean region) is a group commit: the writer queues its region and
// either leads — draining every queued region into one MarkBatch, which
// costs a single durability barrier however many writers piled on — or
// follows, waiting for the flush that covers its region. The natural
// flush window is the leader's own barrier: every first-writer that
// arrives while it is in flight lands in the next batch. Either way the
// mark is durable before markIntent returns, preserving the crash
// contract: no disk write ever precedes its region's durable mark.
func (s *Store) markIntent(r int64) error {
	if s.regionDirty[r].Load() {
		return nil
	}
	s.intentMu.Lock()
	defer s.intentMu.Unlock()
	for {
		if s.regionDirty[r].Load() {
			return nil
		}
		if err, ok := s.intentFailed[r]; ok {
			delete(s.intentFailed, r)
			return fmt.Errorf("store: intent log: %w", err)
		}
		queued := false
		for _, q := range s.intentPend {
			if q == r {
				queued = true
				break
			}
		}
		if !queued {
			s.intentPend = append(s.intentPend, r)
		}
		if s.intentFlushing {
			s.intentCond.Wait()
			continue
		}
		s.intentFlushing = true
		for len(s.intentPend) > 0 {
			batch := s.intentPend
			s.intentPend = nil
			s.intentMu.Unlock()
			err := s.intent.MarkBatch(batch)
			s.intentMu.Lock()
			for _, b := range batch {
				if err == nil {
					s.regionDirty[b].Store(true)
				} else {
					if s.intentFailed == nil {
						s.intentFailed = make(map[int64]error)
					}
					s.intentFailed[b] = err
				}
			}
		}
		s.intentFlushing = false
		s.intentCond.Broadcast()
	}
}

func (s *Store) getBuf() *[]byte  { return s.bufs.Get().(*[]byte) }
func (s *Store) putBuf(b *[]byte) { s.bufs.Put(b) }

// DataUnits returns the store's logical capacity in data units.
func (s *Store) DataUnits() int64 { return s.dataUnits }

// UnitSize returns the data unit size in bytes.
func (s *Store) UnitSize() int { return s.unitSize }

// Disks returns C, the array width.
func (s *Store) Disks() int { return s.lay.Disks() }

// Stripes returns the number of mapped parity stripes.
func (s *Store) Stripes() int64 { return s.numStripes }

// Mode reports the current failure state: Rebuilding if any failed slot
// has a replacement installed, Degraded if any disk is failed, else
// Healthy.
func (s *Store) Mode() Mode {
	st := s.st.Load()
	if len(st.fails) == 0 {
		return Healthy
	}
	for i := range st.fails {
		if st.fails[i].repl != nil {
			return Rebuilding
		}
	}
	return Degraded
}

// FailedDisk returns the oldest failed disk number, or -1 when healthy.
func (s *Store) FailedDisk() int {
	st := s.st.Load()
	if len(st.fails) == 0 {
		return -1
	}
	return st.fails[0].disk
}

// FailedDisks returns every failed disk number, oldest failure first.
func (s *Store) FailedDisks() []int {
	st := s.st.Load()
	out := make([]int, len(st.fails))
	for i := range st.fails {
		out[i] = st.fails[i].disk
	}
	return out
}

// Parities returns the store's parity units per stripe: 1 (P) or 2 (P+Q).
func (s *Store) Parities() int { return s.parities }

// Stats returns a snapshot of the engine counters.
func (s *Store) Stats() Stats {
	return Stats{
		Reads:            s.reads.Load(),
		Writes:           s.writes.Load(),
		DegradedReads:    s.degradedReads.Load(),
		FoldedWrites:     s.foldedWrites.Load(),
		RedirectedWrites: s.redirectedWrites.Load(),
		RebuiltUnits:     s.rebuiltUnits.Load(),
		Rebuilds:         s.rebuilds.Load(),
		Retries:          s.retriesDone.Load(),
		ChecksumErrors:   s.checksumErrs.Load(),
		MediaErrors:      s.mediaErrs.Load(),
		HealedUnits:      s.healedUnits.Load(),
		AutoFails:        s.autoFails.Load(),
		Scrubs:           s.scrubs.Load(),
		ScrubbedStripes:  s.scrubbedStripes.Load(),
		ScrubUnitRepairs: s.scrubRepairs.Load(),
		ScrubParityFixes: s.scrubFixes.Load(),
		ResyncedStripes:  s.resyncStripes.Load(),
		ResyncRepairs:    s.resyncRepairs.Load(),
	}
}

// RebuildProgress reports units restored within the current failure (by
// sweep or write redirection) out of the failed disk's usable units. With
// no failure in progress it reports the last failure's final state.
func (s *Store) RebuildProgress() (done, total int64) {
	return s.rebuiltNow.Load(), s.unitsPerDisk
}

func (s *Store) checkUnit(n int64, buf []byte) error {
	if n < 0 || n >= s.dataUnits {
		return fmt.Errorf("store: data unit %d out of range [0,%d)", n, s.dataUnits)
	}
	if len(buf) != s.unitSize {
		return fmt.Errorf("store: buffer is %d bytes, unit size is %d", len(buf), s.unitSize)
	}
	return nil
}

// ReadUnit reads logical data unit n into dst (exactly one unit). Lost
// units are reconstructed on the fly by XORing the stripe's survivors;
// damaged units (media errors, checksum mismatches) are reconstructed
// the same way and rewritten in place — the self-healing read.
func (s *Store) ReadUnit(n int64, dst []byte) error {
	if err := s.checkUnit(n, dst); err != nil {
		return err
	}
	loc := s.mapper.Loc(n)
	stripe, _ := s.lay.Locate(loc)
	s.locks.rlock(stripe)
	err := s.readLocked(stripe, loc, dst)
	s.locks.runlock(stripe)
	if needsHeal(err) {
		// The unit is damaged. Reads share the stripe lock, so healing
		// (which rewrites the unit) upgrades to the write lock.
		err = s.healRead(stripe, loc, dst)
	}
	if err == nil {
		s.reads.Add(1)
	}
	return err
}

// readLocked reads one unit with (at least) the stripe's read lock held.
// Damage is reported (needsHeal), not repaired — repairing requires the
// write lock.
func (s *Store) readLocked(stripe int64, loc layout.Loc, dst []byte) error {
	st := s.st.Load()
	if st.lost(loc) {
		if err := s.reconstructLocked(st, loc, dst); err != nil {
			return err
		}
		s.degradedReads.Add(1)
		return nil
	}
	phys := s.getBuf()
	defer s.putBuf(phys)
	if err := s.readPhys(st.disk(loc), loc.Disk, loc.Offset, *phys); err != nil {
		return err
	}
	copy(dst, (*phys)[:s.unitSize])
	return nil
}

// healRead re-serves a read that found damage, under the stripe's write
// lock so it may repair: re-read (transient corruption clears), else
// reconstruct from survivors and rewrite the damaged unit.
func (s *Store) healRead(stripe int64, loc layout.Loc, dst []byte) error {
	s.locks.lock(stripe)
	defer s.locks.unlock(stripe)
	st := s.st.Load()
	if st.lost(loc) {
		// Lost, and a survivor was damaged: one exclusive retry under the
		// write lock, where damage the code can still absorb (a transient
		// that clears, or — under P+Q — a second erasure) is repaired.
		if err := s.recoverInto(st, loc, dst); err != nil {
			return err
		}
		s.degradedReads.Add(1)
		return nil
	}
	return s.readUnitHealing(st, loc, dst)
}

// reconstructLocked computes loc's contents into dst from its stripe's
// surviving units: the XOR of the G−1 survivors under single parity
// (fanned across idle I/O workers), the erasure decode under P+Q. Caller
// holds (at least) the stripe's read lock; damaged survivors are reported
// (needsHeal), not repaired — repairing requires the write lock, which
// healRead takes for the exclusive retry.
func (s *Store) reconstructLocked(st *diskState, loc layout.Loc, dst []byte) error {
	if s.parities == 2 {
		return s.pqReconstructLocked(st, loc, dst)
	}
	zeroBytes(dst)
	damaged, err := s.xorUnitsInto(st, layout.SurvivingUnits(s.lay, loc), dst)
	if err != nil {
		var le *lostUnitError
		if errors.As(err, &le) {
			return fmt.Errorf("%w: two lost units in one stripe (%v and %v)", ErrUnrecoverable, loc, le.u)
		}
		return err
	}
	if len(damaged) > 0 {
		return damaged[0].err
	}
	return nil
}

// WriteUnit writes src (exactly one unit) to logical data unit n,
// maintaining parity: the four-access read-modify-write when the stripe
// is whole, parity folding or replacement redirection when it is not.
func (s *Store) WriteUnit(n int64, src []byte) error {
	if err := s.checkUnit(n, src); err != nil {
		return err
	}
	loc := s.mapper.Loc(n)
	stripe, _ := s.lay.Locate(loc)
	s.locks.lock(stripe)
	err := s.writeStripeLocked(stripe, []layout.Loc{loc}, [][]byte{src})
	s.locks.unlock(stripe)
	if err == nil {
		s.writes.Add(1)
	}
	return err
}

// writeStripeLocked commits new contents for one or more data units of a
// single stripe, updating parity once, under the write-intent discipline:
// the stripe's region is durably marked dirty before any disk is touched,
// so a crash mid-update is always covered by the recovery pass. Caller
// holds the stripe's write lock; locs are distinct data-unit locations of
// this stripe.
func (s *Store) writeStripeLocked(stripe int64, locs []layout.Loc, datas [][]byte) error {
	r := stripe / intentRegionStripes
	s.regionActive[r].Add(1)
	defer s.regionActive[r].Add(-1)
	if err := s.markIntent(r); err != nil {
		return err
	}
	if err := s.commitStripeLocked(stripe, locs, datas); err != nil {
		// The stripe may now be parity-inconsistent (some units committed,
		// others not). Its region stays intent-marked, and Sync refuses to
		// clear any region until a clean scrub re-establishes consistency.
		s.parityDoubt.Store(true)
		return err
	}
	return nil
}

// commitStripeLocked performs the stripe's parity-maintaining update.
// The single-unit path (WriteUnit) runs the exact serial sequence —
// pre-read, delta, commit — with no fan-out machinery, preserving the
// zero-extra-alloc hot path; multi-unit commits (range writes) fan their
// independent pre-reads and commit writes across idle I/O workers.
func (s *Store) commitStripeLocked(stripe int64, locs []layout.Loc, datas [][]byte) error {
	if s.parities == 2 {
		return s.commitStripePQ(stripe, locs, datas)
	}
	st := s.st.Load()
	ploc := layout.ParityLoc(s.lay, stripe)

	if st.lost(ploc) {
		// Lost parity: there is no parity to maintain, so each write is
		// a single data access (§7); the rebuild sweep recomputes the
		// parity unit from data when its turn comes.
		if len(locs) == 1 {
			return s.writeDataUnit(st.disk(locs[0]), locs[0].Disk, locs[0].Offset, datas[0])
		}
		return s.fanOut(len(locs), func(i int) error {
			return s.writeDataUnit(st.disk(locs[i]), locs[i].Disk, locs[i].Offset, datas[i])
		})
	}

	// Find the stripe's lost data unit, if any, and whether it is being
	// written. A single-failure-correcting layout puts at most one unit
	// of a stripe on any disk.
	lostIdx := -1 // index into locs of a written lost unit
	var lostLoc layout.Loc
	haveLost := false
	if len(st.fails) > 0 {
		g := s.lay.G()
		pp := s.lay.ParityPos(stripe)
		for j := 0; j < g; j++ {
			if j == pp {
				continue
			}
			u := s.lay.Unit(stripe, j)
			if st.lost(u) {
				lostLoc, haveLost = u, true
				break
			}
		}
		if haveLost {
			for i, loc := range locs {
				if loc == lostLoc {
					lostIdx = i
					break
				}
			}
		}
	}

	pbuf := s.getBuf()
	defer s.putBuf(pbuf)
	pdata := (*pbuf)[:s.unitSize]

	switch {
	case len(locs) == s.lay.G()-1:
		// Large-write optimization: the segment covers every data unit
		// of the stripe, so parity is computed from the new contents
		// with no pre-reads.
		copy(pdata, datas[0])
		for _, d := range datas[1:] {
			xorInto(pdata, d)
		}
	case haveLost && lostIdx >= 0:
		// Writing the lost unit: its old contents are unreadable, so the
		// delta method is unavailable. Fold forward instead: parity
		// becomes the XOR of every data unit's new contents — written
		// units contribute their new data, unwritten survivors are read.
		copy(pdata, datas[lostIdx])
		for i, d := range datas {
			if i != lostIdx {
				xorInto(pdata, d)
			}
		}
		if len(locs) == 1 {
			obuf := s.getBuf()
			odata := (*obuf)[:s.unitSize]
			g := s.lay.G()
			pp := s.lay.ParityPos(stripe)
			for j := 0; j < g; j++ {
				if j == pp {
					continue
				}
				u := s.lay.Unit(stripe, j)
				if u == locs[0] {
					continue
				}
				if err := s.readUnitHealing(st, u, odata); err != nil {
					s.putBuf(obuf)
					return err
				}
				xorInto(pdata, odata)
			}
			s.putBuf(obuf)
			break
		}
		g := s.lay.G()
		pp := s.lay.ParityPos(stripe)
		units := make([]layout.Loc, 0, g-1)
		for j := 0; j < g; j++ {
			if j == pp {
				continue
			}
			u := s.lay.Unit(stripe, j)
			written := false
			for _, loc := range locs {
				if u == loc {
					written = true
					break
				}
			}
			if !written {
				units = append(units, u)
			}
		}
		if err := s.gatherHealing(st, units, pdata); err != nil {
			return err
		}
	default:
		// Read-modify-write: parity' = parity ⊕ old ⊕ new, folded over
		// every written unit. All written units are readable here (a
		// written lost unit takes the branch above). Pre-reads heal
		// damaged units in place — the write lock is already held.
		if len(locs) == 1 {
			if err := s.readUnitHealing(st, ploc, pdata); err != nil {
				return err
			}
			obuf := s.getBuf()
			odata := (*obuf)[:s.unitSize]
			if err := s.readUnitHealing(st, locs[0], odata); err != nil {
				s.putBuf(obuf)
				return err
			}
			xorInto(pdata, odata)
			xorInto(pdata, datas[0])
			s.putBuf(obuf)
			break
		}
		// XOR is order-independent, so the old parity and every written
		// unit's old contents gather concurrently into pdata; the new
		// contents fold in afterward.
		zeroBytes(pdata)
		units := make([]layout.Loc, 0, len(locs)+1)
		units = append(units, ploc)
		units = append(units, locs...)
		if err := s.gatherHealing(st, units, pdata); err != nil {
			return err
		}
		for _, d := range datas {
			xorInto(pdata, d)
		}
	}

	// Commit data, then parity. A written lost unit goes to the
	// replacement when one is installed (write redirection, which counts
	// as reconstruction); with no replacement it is dropped — parity now
	// encodes it, which is the fold.
	if len(locs) == 1 {
		if err := s.commitOneLocked(st, locs[0], datas[0], lostIdx == 0); err != nil {
			return err
		}
		return s.writeStamped(st.disk(ploc), ploc.Disk, ploc.Offset, *pbuf)
	}
	// Multi-unit commit: the data writes and the parity write land on
	// distinct disks, so they fan out as one batch. Ordering among them
	// carries no crash-consistency weight — the region's durable intent
	// mark covers any interleaving, and recovery resyncs the stripe.
	return s.fanOut(len(locs)+1, func(i int) error {
		if i == len(locs) {
			return s.writeStamped(st.disk(ploc), ploc.Disk, ploc.Offset, *pbuf)
		}
		return s.commitOneLocked(st, locs[i], datas[i], i == lostIdx)
	})
}

// commitOneLocked commits one data unit's new contents: to its home slot
// normally, to the replacement when the unit is lost and one is installed
// (write redirection), or to parity alone when it is lost with no
// replacement (the fold — no write at all).
func (s *Store) commitOneLocked(st *diskState, loc layout.Loc, data []byte, isLost bool) error {
	if isLost {
		if f := st.slot(loc.Disk); f != nil && f.repl != nil {
			if err := s.writeDataUnit(f.repl, loc.Disk, loc.Offset, data); err != nil {
				return err
			}
			s.markRebuilt(f, loc.Offset)
			s.redirectedWrites.Add(1)
		} else {
			s.foldedWrites.Add(1)
		}
		return nil
	}
	return s.writeDataUnit(st.disk(loc), loc.Disk, loc.Offset, data)
}

// gatherHealing XORs the listed units' contents into dst. The reads fan
// out raw across idle I/O workers; units they report damaged are then
// healed serially — the caller holds the stripe's write lock, and a heal
// rewrites its unit, which must never race the batch's other reads. No
// listed unit may be lost.
func (s *Store) gatherHealing(st *diskState, units []layout.Loc, dst []byte) error {
	damaged, err := s.xorUnitsInto(st, units, dst)
	if err != nil {
		return err
	}
	if len(damaged) == 0 {
		return nil
	}
	obuf := s.getBuf()
	defer s.putBuf(obuf)
	odata := (*obuf)[:s.unitSize]
	for _, d := range damaged {
		if err := s.readUnitHealing(st, d.loc, odata); err != nil {
			return err
		}
		xorInto(dst, odata)
	}
	return nil
}

// markRebuilt records (under the stripe lock) that the failed disk's unit
// at off now lives on slot f's replacement.
func (s *Store) markRebuilt(f *failSlot, off int64) {
	if !f.rebuilt[off] {
		f.rebuilt[off] = true
		s.rebuiltUnits.Add(1)
		s.rebuiltNow.Add(1)
	}
}

// Fail takes disk d out of service: its backend is detached (to be closed
// with the store) and the slot reads as lost until rebuilt. The store
// tolerates as many concurrent failures as the layout has parity units —
// one under single parity, two under P+Q — so failing beyond that is an
// error.
func (s *Store) Fail(d int) error {
	s.admin.Lock()
	defer s.admin.Unlock()
	st := s.st.Load()
	if len(st.fails) >= s.parities {
		if s.parities == 1 {
			return fmt.Errorf("store: disk %d already failed; single-failure layout", st.fails[0].disk)
		}
		return fmt.Errorf("store: disks %d and %d already failed; the P+Q code corrects two failures",
			st.fails[0].disk, st.fails[1].disk)
	}
	if d < 0 || d >= len(st.disks) {
		return fmt.Errorf("store: disk %d out of range [0,%d)", d, len(st.disks))
	}
	if st.slot(d) != nil {
		return fmt.Errorf("store: disk %d already failed", d)
	}
	disks := make([]Disk, len(st.disks))
	copy(disks, st.disks)
	s.detached = append(s.detached, disks[d])
	disks[d] = deadDisk{}
	s.rebuiltNow.Store(0)
	fails := make([]failSlot, len(st.fails), len(st.fails)+1)
	copy(fails, st.fails)
	fails = append(fails, failSlot{disk: d, rebuilt: make([]bool, s.unitsPerDisk)})
	s.st.Store(&diskState{disks: disks, fails: fails})
	return nil
}

// Rebuild installs repl as the replacement for the oldest failed disk
// without one and sweeps that disk's units onto it, stripe by stripe under
// the stripe locks, while user operations continue. Units already
// redirected by concurrent writes are skipped. On completion the
// replacement is swapped into the array and the failure slot retires —
// under P+Q a doubly-failed store goes Rebuilding → Degraded after the
// first Rebuild and back to Healthy after the second. repl must hold at
// least the usable unit count and should be blank; its prior contents are
// overwritten.
func (s *Store) Rebuild(repl Disk) error {
	if repl == nil {
		return fmt.Errorf("store: nil replacement disk")
	}
	if err := checkGeometry(repl, s.unitsPerDisk, s.unitSize); err != nil {
		return fmt.Errorf("store: replacement: %w", err)
	}
	if !s.rebuilding.CompareAndSwap(false, true) {
		return fmt.Errorf("store: rebuild already in progress")
	}
	defer s.rebuilding.Store(false)

	s.admin.Lock()
	st := s.st.Load()
	target := -1
	for i := range st.fails {
		if st.fails[i].repl == nil {
			target = st.fails[i].disk
			break
		}
	}
	if target == -1 {
		s.admin.Unlock()
		return fmt.Errorf("store: no failed disk to rebuild")
	}
	fails := make([]failSlot, len(st.fails))
	copy(fails, st.fails)
	fails[st.slotIndex(target)].repl = repl
	// Progress is per failure: with two failures pending (P+Q) the second
	// Rebuild starts its own count instead of continuing the first's.
	s.rebuiltNow.Store(0)
	s.st.Store(&diskState{disks: st.disks, fails: fails})
	s.admin.Unlock()

	// Sweep the failed disk's offsets in RebuildWorkers contiguous shards.
	// Two offsets of one disk always belong to different stripes (the
	// layout places at most one unit of a stripe per disk), so shards
	// never contend on a stripe's own lock, and the declustered layout
	// spreads each shard's survivor reads over the whole array. Throttle
	// pacing is aggregate: each worker sleeps workers× the configured
	// pause, so the knob means the same sweep rate — and holds the rebuild
	// window open just as long — at any worker count. Each unit reloads
	// the failure snapshot under its stripe lock, so a second disk failing
	// mid-sweep is picked up as another erasure (P+Q decodes through it)
	// instead of being read as a live survivor.
	workers := s.rebuildWorkers
	if int64(workers) > s.unitsPerDisk {
		workers = int(s.unitsPerDisk)
	}
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		errMu   sync.Mutex
		swErr   error
		swErrAt int64
	)
	for w := 0; w < workers; w++ {
		lo := s.unitsPerDisk * int64(w) / int64(workers)
		hi := s.unitsPerDisk * int64(w+1) / int64(workers)
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			buf := s.getBuf()
			defer s.putBuf(buf)
			data := (*buf)[:s.unitSize]
			for off := lo; off < hi && !stop.Load(); off++ {
				loc := layout.Loc{Disk: target, Offset: off}
				stripe, _ := s.lay.Locate(loc)
				s.locks.lock(stripe)
				var err error
				stc := s.st.Load()
				f := stc.slot(target)
				if f != nil && !f.rebuilt[off] {
					if err = s.recoverInto(stc, loc, data); err == nil {
						if err = s.writeDataUnit(repl, target, off, data); err == nil {
							s.markRebuilt(f, off)
						}
					}
				}
				s.locks.unlock(stripe)
				if err != nil {
					errMu.Lock()
					if swErr == nil || off < swErrAt {
						swErr = fmt.Errorf("store: rebuild of %v: %w", loc, err)
						swErrAt = off
					}
					errMu.Unlock()
					stop.Store(true)
					return
				}
				if s.throttle > 0 {
					time.Sleep(s.throttle * time.Duration(workers))
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if swErr != nil {
		return swErr
	}

	// Heal: swap the replacement into the slot and retire the failure.
	// The slot's persistent-error score resets — it is a new device.
	s.admin.Lock()
	st2 := s.st.Load()
	disks := make([]Disk, len(st2.disks))
	copy(disks, st2.disks)
	disks[target] = repl
	s.diskErrs[target].Store(0)
	fails2 := make([]failSlot, 0, len(st2.fails)-1)
	for i := range st2.fails {
		if st2.fails[i].disk != target {
			fails2 = append(fails2, st2.fails[i])
		}
	}
	s.st.Store(&diskState{disks: disks, fails: fails2})
	s.admin.Unlock()
	s.rebuilds.Add(1)
	return nil
}

// CheckParity verifies, at quiesce (no operations in flight), that every
// stripe's checksums hold and its parity equations balance: the XOR over
// all units of a whole stripe is zero and — under P+Q — the Reed–Solomon
// sum over the data units equals the stored Q. Stripes with a lost unit
// are skipped — their consistency is exactly what degraded reads exercise.
// CheckParity reports damage; Scrub repairs it.
func (s *Store) CheckParity() error {
	if s.parities == 2 {
		return s.checkParityPQ()
	}
	g := s.lay.G()
	return s.fanOut(int(s.numStripes), func(i int) error {
		stripe := int64(i)
		buf := s.getBuf()
		acc := s.getBuf()
		defer s.putBuf(buf)
		defer s.putBuf(acc)
		accData := (*acc)[:s.unitSize]
		zeroBytes(accData)
		s.locks.rlock(stripe)
		defer s.locks.runlock(stripe)
		st := s.st.Load()
		for j := 0; j < g; j++ {
			u := s.lay.Unit(stripe, j)
			if st.lost(u) {
				return nil // skipped: degraded reads exercise its consistency
			}
			if err := s.readPhys(st.disk(u), u.Disk, u.Offset, *buf); err != nil {
				return fmt.Errorf("store: stripe %d: %w", stripe, err)
			}
			xorInto(accData, (*buf)[:s.unitSize])
		}
		for _, b := range accData {
			if b != 0 {
				return fmt.Errorf("store: stripe %d parity inconsistent", stripe)
			}
		}
		return nil
	})
}

// Sync is the store's durability point: it flushes every in-service
// backend that supports Sync, then — with all data durable — clears
// intent-log regions that have no writer in flight. Call it at quiesce
// (like CheckParity); regions with active writers are left marked, and
// no region is cleared while a failed write has the stripe set in doubt
// (a clean Scrub restores confidence).
func (s *Store) Sync() error {
	st := s.st.Load()
	var errs []error
	for i, d := range st.disks {
		if sd, ok := d.(syncDisk); ok {
			if err := sd.Sync(); err != nil {
				errs = append(errs, fmt.Errorf("store: sync disk %d: %w", i, err))
			}
		}
	}
	for i := range st.fails {
		if st.fails[i].repl == nil {
			continue
		}
		if sd, ok := st.fails[i].repl.(syncDisk); ok {
			if err := sd.Sync(); err != nil {
				errs = append(errs, fmt.Errorf("store: sync replacement: %w", err))
			}
		}
	}
	if len(errs) == 0 && !s.parityDoubt.Load() {
		// Collect every clearable region and pay one durability barrier
		// for the whole set, the flip side of MarkBatch's group commit.
		s.intentMu.Lock()
		var clear []int64
		for r := range s.regionDirty {
			if s.regionDirty[r].Load() && s.regionActive[r].Load() == 0 {
				clear = append(clear, int64(r))
			}
		}
		if len(clear) > 0 {
			if err := s.intent.ClearBatch(clear); err != nil {
				errs = append(errs, fmt.Errorf("store: intent log: %w", err))
			} else {
				for _, r := range clear {
					s.regionDirty[r].Store(false)
				}
			}
		}
		s.intentMu.Unlock()
	}
	return errors.Join(errs...)
}

// Close releases every backend, including detached failed disks, and the
// intent log. The store must be quiesced; a clean Close syncs backends
// and clears the intent log first (so the next open skips recovery), and
// operations after Close have undefined results. Every failure along the
// way is reported, joined — a disk that will not close does not hide the
// next one's error.
func (s *Store) Close() error {
	s.admin.Lock()
	defer s.admin.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	errs := []error{s.Sync()}
	st := s.st.Load()
	for i, d := range st.disks {
		if err := d.Close(); err != nil {
			errs = append(errs, fmt.Errorf("store: close disk %d: %w", i, err))
		}
	}
	for i := range st.fails {
		if st.fails[i].repl == nil {
			continue
		}
		if err := st.fails[i].repl.Close(); err != nil {
			errs = append(errs, fmt.Errorf("store: close replacement: %w", err))
		}
	}
	for _, d := range s.detached {
		if err := d.Close(); err != nil {
			errs = append(errs, fmt.Errorf("store: close detached disk: %w", err))
		}
	}
	if err := s.intent.Close(); err != nil {
		errs = append(errs, fmt.Errorf("store: close intent log: %w", err))
	}
	return errors.Join(errs...)
}

// zeroBytes clears b (the compiler lowers this loop to memclr).
func zeroBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// xorInto XORs src into dst in place; lengths are equal unit sizes,
// which New constrains to multiples of 8.
func xorInto(dst, src []byte) {
	for i := 0; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
}
