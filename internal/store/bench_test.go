package store

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchStore builds the paper's 21-disk, G=5 (α=0.2) array over
// in-memory backends, pre-filled, returning the store and its disk
// handles (so rebuild benchmarks can recycle detached disks as
// replacements instead of allocating per cycle).
func benchStore(b *testing.B) (*Store, []Disk) {
	b.Helper()
	lay := testLayout(b, 21, 5)
	const units, us = 210, 4096
	disks := make([]Disk, lay.Disks())
	for i := range disks {
		disks[i] = NewMemDisk(units, us)
	}
	s, err := New(Config{Layout: lay, UnitsPerDisk: units, UnitSize: us, Disks: disks})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	buf := make([]byte, us)
	for n := int64(0); n < s.DataUnits(); n++ {
		fill(buf, n, 1)
		if err := s.WriteUnit(n, buf); err != nil {
			b.Fatal(err)
		}
	}
	return s, disks
}

// runClients drives the store from GOMAXPROCS client goroutines at the
// given read fraction and reports unit throughput.
func runClients(b *testing.B, s *Store, readFrac float64) {
	b.Helper()
	total := s.DataUnits()
	readCut := int64(readFrac * float64(1<<32))
	var seed atomic.Int64
	b.SetBytes(int64(s.UnitSize()))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		buf := make([]byte, s.UnitSize())
		for pb.Next() {
			n := rng.Int63n(total)
			if int64(rng.Uint32()) < readCut {
				if err := s.ReadUnit(n, buf); err != nil {
					panic(err)
				}
			} else {
				fill(buf, n, 2)
				if err := s.WriteUnit(n, buf); err != nil {
					panic(err)
				}
			}
		}
	})
	b.StopTimer()
}

// BenchmarkStoreFaultFreeOps measures the healthy array under the
// paper's 50/50 read/write mix from GOMAXPROCS concurrent clients.
func BenchmarkStoreFaultFreeOps(b *testing.B) {
	s, _ := benchStore(b)
	runClients(b, s, 0.5)
}

// BenchmarkStoreDegradedOps measures the same mix with one disk failed
// and no replacement: lost reads pay G−1-wide on-the-fly XOR
// reconstruction, lost writes fold into parity.
func BenchmarkStoreDegradedOps(b *testing.B) {
	s, _ := benchStore(b)
	if err := s.Fail(7); err != nil {
		b.Fatal(err)
	}
	runClients(b, s, 0.5)
}

// slowDisk wraps a backend with a fixed per-access latency drawn from a
// shared, switchable knob. Real disks cost milliseconds per access; the
// parallel fast path exists to overlap those waits across the array's
// independent devices, so these benchmarks measure wall-clock with
// latency injected — which also makes the speedup visible on single-core
// CI, where CPU parallelism alone would show nothing. The knob starts at
// zero so the pre-fill runs at memory speed.
type slowDisk struct {
	Disk
	lat *atomic.Int64 // nanoseconds per access, shared across the array
}

func (d slowDisk) ReadUnit(off int64, p []byte) error {
	if l := d.lat.Load(); l > 0 {
		time.Sleep(time.Duration(l))
	}
	return d.Disk.ReadUnit(off, p)
}

func (d slowDisk) WriteUnit(off int64, p []byte) error {
	if l := d.lat.Load(); l > 0 {
		time.Sleep(time.Duration(l))
	}
	return d.Disk.WriteUnit(off, p)
}

// benchLatency is the per-access latency the Store* wall-clock benchmarks
// inject once their stores are filled.
const benchLatency = 100 * time.Microsecond

// latStore builds the paper's 21-disk, G=5 array over latency-injected
// in-memory backends with the given worker configuration, pre-filled at
// full speed; the returned knob arms the latency.
func latStore(b *testing.B, units int64, ioWorkers, rebuildWorkers int) (*Store, *atomic.Int64) {
	b.Helper()
	lay := testLayout(b, 21, 5)
	const us = 4096
	lat := new(atomic.Int64)
	disks := make([]Disk, lay.Disks())
	for i := range disks {
		disks[i] = slowDisk{Disk: NewMemDisk(units, us), lat: lat}
	}
	s, err := New(Config{
		Layout: lay, UnitsPerDisk: units, UnitSize: us, Disks: disks,
		IOWorkers: ioWorkers, RebuildWorkers: rebuildWorkers,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	buf := make([]byte, s.DataUnits()*us)
	for n := int64(0); n < s.DataUnits(); n++ {
		fill(buf[n*us:(n+1)*us], n, 1)
	}
	if err := s.WriteRange(0, buf); err != nil {
		b.Fatal(err)
	}
	lat.Store(int64(benchLatency))
	return s, lat
}

// workerVariants runs fn as serial (IOWorkers=1) and parallel
// (IOWorkers=8, RebuildWorkers=4) sub-benchmarks so the fan-out speedup
// is a single benchdiff line apart.
func workerVariants(b *testing.B, units int64, fn func(b *testing.B, s *Store, lat *atomic.Int64)) {
	b.Run("serial", func(b *testing.B) {
		s, lat := latStore(b, units, 1, 1)
		fn(b, s, lat)
	})
	b.Run("parallel", func(b *testing.B) {
		s, lat := latStore(b, units, 8, 4)
		fn(b, s, lat)
	})
}

// BenchmarkStoreDegradedRead measures a single client reading lost units:
// every read XOR-reconstructs from the stripe's G−1=4 survivors, whose
// reads the parallel store overlaps.
func BenchmarkStoreDegradedRead(b *testing.B) {
	workerVariants(b, 105, func(b *testing.B, s *Store, _ *atomic.Int64) {
		const victim = 7
		if err := s.Fail(victim); err != nil {
			b.Fatal(err)
		}
		var lost []int64
		for n := int64(0); n < s.DataUnits(); n++ {
			if s.mapper.Loc(n).Disk == victim {
				lost = append(lost, n)
			}
		}
		buf := make([]byte, s.UnitSize())
		b.SetBytes(int64(s.UnitSize()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.ReadUnit(lost[i%len(lost)], buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreRangeRead measures an 8-stripe (32-unit) sequential read,
// which the parallel store decomposes into per-stripe jobs.
func BenchmarkStoreRangeRead(b *testing.B) {
	workerVariants(b, 105, func(b *testing.B, s *Store, _ *atomic.Int64) {
		const units = 32
		buf := make([]byte, units*s.UnitSize())
		spans := s.DataUnits() - units + 1
		b.SetBytes(int64(len(buf)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.ReadRange((int64(i)*units)%spans, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreRangeWrite measures an 8-stripe aligned sequential write:
// every stripe takes the large-write path (parity from new contents, no
// pre-reads) and the parallel store fans both the stripe jobs and each
// stripe's G commit writes.
func BenchmarkStoreRangeWrite(b *testing.B) {
	workerVariants(b, 105, func(b *testing.B, s *Store, _ *atomic.Int64) {
		units := int64(8 * (s.lay.G() - 1))
		buf := make([]byte, units*int64(s.UnitSize()))
		for u := int64(0); u < units; u++ {
			fill(buf[u*int64(s.UnitSize()):(u+1)*int64(s.UnitSize())], u, 2)
		}
		starts := (s.DataUnits() / units) * units
		b.SetBytes(int64(len(buf)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.WriteRange((int64(i)*units)%starts, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreRebuild measures the full rebuild sweep's wall-clock:
// each iteration fails disk 7 and rebuilds it onto a spare. The parallel
// store shards the sweep across RebuildWorkers and overlaps each shard's
// G−1 survivor reads.
func BenchmarkStoreRebuild(b *testing.B) {
	workerVariants(b, 45, func(b *testing.B, s *Store, lat *atomic.Int64) {
		const victim = 7
		var spare Disk = slowDisk{Disk: NewMemDisk(s.unitsPerDisk, s.UnitSize()), lat: lat}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Fail(victim); err != nil {
				b.Fatal(err)
			}
			if err := s.Rebuild(spare); err != nil {
				b.Fatal(err)
			}
			// The detached victim becomes the next blank spare.
			s.admin.Lock()
			spare = s.detached[len(s.detached)-1]
			s.detached = s.detached[:len(s.detached)-1]
			s.admin.Unlock()
		}
	})
}

// BenchmarkStoreParallelClients measures 8 concurrent clients on a
// degraded latency-injected store at the paper's 50/50 mix — the
// continuous-operation scenario where user load and wide reconstruction
// reads contend for the I/O pool.
func BenchmarkStoreParallelClients(b *testing.B) {
	workerVariants(b, 105, func(b *testing.B, s *Store, _ *atomic.Int64) {
		if err := s.Fail(7); err != nil {
			b.Fatal(err)
		}
		const clients = 8
		total := s.DataUnits()
		var next atomic.Int64
		b.SetBytes(int64(s.UnitSize()))
		b.ResetTimer()
		var wg sync.WaitGroup
		wg.Add(clients)
		for c := 0; c < clients; c++ {
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(c) + 1))
				buf := make([]byte, s.UnitSize())
				for next.Add(1) <= int64(b.N) {
					n := rng.Int63n(total)
					if rng.Intn(2) == 0 {
						if err := s.ReadUnit(n, buf); err != nil {
							panic(err)
						}
					} else {
						fill(buf, n, 3)
						if err := s.WriteUnit(n, buf); err != nil {
							panic(err)
						}
					}
				}
			}(c)
		}
		wg.Wait()
	})
}

// BenchmarkStoreRebuildingOps measures the mix while the array is
// continuously failing and rebuilding in the background — the paper's
// continuous-operation scenario as a throughput number.
func BenchmarkStoreRebuildingOps(b *testing.B) {
	s, disks := benchStore(b)
	const victim = 7
	spare := NewMemDisk(s.unitsPerDisk, s.UnitSize())
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		cur := disks[victim]
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Fail(victim); err != nil {
				panic(err)
			}
			if err := s.Rebuild(spare); err != nil {
				panic(err)
			}
			// The detached disk becomes the next blank replacement.
			cur, spare = spare, cur
		}
	}()
	runClients(b, s, 0.5)
	close(stop)
	<-churnDone
}
