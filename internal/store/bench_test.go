package store

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// benchStore builds the paper's 21-disk, G=5 (α=0.2) array over
// in-memory backends, pre-filled, returning the store and its disk
// handles (so rebuild benchmarks can recycle detached disks as
// replacements instead of allocating per cycle).
func benchStore(b *testing.B) (*Store, []Disk) {
	b.Helper()
	lay := testLayout(b, 21, 5)
	const units, us = 210, 4096
	disks := make([]Disk, lay.Disks())
	for i := range disks {
		disks[i] = NewMemDisk(units, us)
	}
	s, err := New(Config{Layout: lay, UnitsPerDisk: units, UnitSize: us, Disks: disks})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	buf := make([]byte, us)
	for n := int64(0); n < s.DataUnits(); n++ {
		fill(buf, n, 1)
		if err := s.WriteUnit(n, buf); err != nil {
			b.Fatal(err)
		}
	}
	return s, disks
}

// runClients drives the store from GOMAXPROCS client goroutines at the
// given read fraction and reports unit throughput.
func runClients(b *testing.B, s *Store, readFrac float64) {
	b.Helper()
	total := s.DataUnits()
	readCut := int64(readFrac * float64(1<<32))
	var seed atomic.Int64
	b.SetBytes(int64(s.UnitSize()))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		buf := make([]byte, s.UnitSize())
		for pb.Next() {
			n := rng.Int63n(total)
			if int64(rng.Uint32()) < readCut {
				if err := s.ReadUnit(n, buf); err != nil {
					panic(err)
				}
			} else {
				fill(buf, n, 2)
				if err := s.WriteUnit(n, buf); err != nil {
					panic(err)
				}
			}
		}
	})
	b.StopTimer()
}

// BenchmarkStoreFaultFreeOps measures the healthy array under the
// paper's 50/50 read/write mix from GOMAXPROCS concurrent clients.
func BenchmarkStoreFaultFreeOps(b *testing.B) {
	s, _ := benchStore(b)
	runClients(b, s, 0.5)
}

// BenchmarkStoreDegradedOps measures the same mix with one disk failed
// and no replacement: lost reads pay G−1-wide on-the-fly XOR
// reconstruction, lost writes fold into parity.
func BenchmarkStoreDegradedOps(b *testing.B) {
	s, _ := benchStore(b)
	if err := s.Fail(7); err != nil {
		b.Fatal(err)
	}
	runClients(b, s, 0.5)
}

// BenchmarkStoreRebuildingOps measures the mix while the array is
// continuously failing and rebuilding in the background — the paper's
// continuous-operation scenario as a throughput number.
func BenchmarkStoreRebuildingOps(b *testing.B) {
	s, disks := benchStore(b)
	const victim = 7
	spare := NewMemDisk(s.unitsPerDisk, s.UnitSize())
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		cur := disks[victim]
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Fail(victim); err != nil {
				panic(err)
			}
			if err := s.Rebuild(spare); err != nil {
				panic(err)
			}
			// The detached disk becomes the next blank replacement.
			cur, spare = spare, cur
		}
	}()
	runClients(b, s, 0.5)
	close(stop)
	<-churnDone
}
