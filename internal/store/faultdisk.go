package store

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultConfig parameterizes a FaultDisk. All rates are per-operation
// probabilities in [0, 1); zero disables that fault class. The knobs
// mirror internal/fault's simulated-time injector, ported to wall-clock
// backends (Thomasian, arXiv:1801.08873: transients, latent sector
// errors, and silent corruption dominate real-array reliability).
type FaultConfig struct {
	// Seed drives every random draw. Concurrent callers interleave their
	// draws nondeterministically, so a seed reproduces the fault mix and
	// rates exactly but the per-operation outcome sequence only
	// approximately; record it anyway — rerunning a chaos seed explores
	// the same fault regime.
	Seed int64
	// TransientRate is the probability an operation fails with an error
	// wrapping ErrTransient before touching the medium. A retry draws a
	// fresh outcome.
	TransientRate float64
	// TornWriteRate is the probability a write persists only a prefix of
	// the unit (the rest keeps its old contents) and reports an error
	// wrapping ErrTransient — "write failed, on-disk state unknown", the
	// crash-shaped outcome. A full-unit retry repairs the tear; a tear
	// that goes unretried is caught by the checksum trailer on next read.
	TornWriteRate float64
	// LSERate is the probability that the unit a read touches goes
	// latent: the read (and every later read of that unit) fails with an
	// error wrapping ErrMedia until the unit is next written, which heals
	// it (sector remapping). The engine's self-healing read path turns
	// each discovery into a reconstruct-and-rewrite.
	LSERate float64
	// CorruptRate is the probability a read returns bit-flipped data
	// while the stored bytes stay intact (a transient transfer/firmware
	// corruption). Only the checksum trailer can catch it.
	CorruptRate float64
	// LostWriteRate is the probability a write is acknowledged but never
	// persisted. Unit-local checksums cannot detect a lost write (the old
	// unit is self-consistent); only a parity scrub surfaces it.
	LostWriteRate float64
	// LatencyMax, when positive, sleeps a uniform [0, LatencyMax) per
	// operation, modeling a slow or congested device.
	LatencyMax time.Duration
}

func (c FaultConfig) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"TransientRate", c.TransientRate},
		{"TornWriteRate", c.TornWriteRate},
		{"LSERate", c.LSERate},
		{"CorruptRate", c.CorruptRate},
		{"LostWriteRate", c.LostWriteRate},
	} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("store: fault %s %v outside [0, 1)", r.name, r.v)
		}
	}
	if c.LatencyMax < 0 {
		return fmt.Errorf("store: negative fault LatencyMax %v", c.LatencyMax)
	}
	return nil
}

// FaultStats counts injected faults since creation.
type FaultStats struct {
	Reads, Writes int64 // operations seen (including retried attempts)
	Transients    int64 // operations failed with a transient error
	TornWrites    int64 // writes that persisted only a prefix
	LostWrites    int64 // writes acknowledged but dropped
	LSEInjected   int64 // units gone latent
	LSEHealed     int64 // latent units healed by a write
	CorruptReads  int64 // reads returned with flipped bits
	Latent        int64 // currently latent units
}

// FaultDisk wraps a Disk with seed-driven fault injection: transient
// errors, latent sector errors, torn and lost writes, read corruption,
// and injected latency. It is the storage plane's port of the simulator's
// internal/fault injector, and is what make store-chaos drives the engine
// with. Safe for concurrent use.
type FaultDisk struct {
	under Disk

	mu       sync.Mutex
	cfg      FaultConfig
	rng      *rand.Rand
	bad      map[int64]bool // latent units: reads fail until next write
	loseNext bool           // drop exactly the next write (LoseNextWrite)
	stats    FaultStats
}

// NewFaultDisk wraps d with fault injection per cfg. It panics on an
// invalid configuration (rates outside [0,1)) — fault wiring is test and
// harness code, where a loud failure beats a threaded error.
func NewFaultDisk(d Disk, cfg FaultConfig) *FaultDisk {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &FaultDisk{
		under: d,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		bad:   make(map[int64]bool),
	}
}

// SetConfig replaces the fault rates, keeping the RNG stream and any
// latent errors already injected. Chaos harnesses use it to reshape the
// fault regime between phases.
func (d *FaultDisk) SetConfig(cfg FaultConfig) {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	d.mu.Lock()
	cfg.Seed = d.cfg.Seed
	d.cfg = cfg
	d.mu.Unlock()
}

// Quiesce stops all future injection (rates to zero). Latent errors
// already injected persist until healed by a write — quiescing ends the
// storm, it does not repair the damage.
func (d *FaultDisk) Quiesce() { d.SetConfig(FaultConfig{}) }

// InjectLSE marks the unit at off latent: reads fail with ErrMedia until
// the unit is next written.
func (d *FaultDisk) InjectLSE(off int64) {
	d.mu.Lock()
	if !d.bad[off] {
		d.bad[off] = true
		d.stats.LSEInjected++
		d.stats.Latent++
	}
	d.mu.Unlock()
}

// LoseNextWrite drops exactly the next write (acknowledged, not
// persisted), regardless of LostWriteRate. Deterministic scrub tests use
// it to plant a stale unit.
func (d *FaultDisk) LoseNextWrite() {
	d.mu.Lock()
	d.loseNext = true
	d.mu.Unlock()
}

// Stats returns a snapshot of the injection counters.
func (d *FaultDisk) Stats() FaultStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Geometry forwards the underlying backend's geometry when it has one.
func (d *FaultDisk) Geometry() (int64, int) {
	if sd, ok := d.under.(sizedDisk); ok {
		return sd.Geometry()
	}
	return 0, 0
}

// Sync forwards to the underlying backend when it supports durability.
func (d *FaultDisk) Sync() error {
	if sd, ok := d.under.(syncDisk); ok {
		return sd.Sync()
	}
	return nil
}

func (d *FaultDisk) Close() error { return d.under.Close() }

// draw runs f under the RNG lock and applies any decided latency outside
// it, so injected stalls never serialize the whole disk.
func (d *FaultDisk) draw(f func()) time.Duration {
	d.mu.Lock()
	var lat time.Duration
	if d.cfg.LatencyMax > 0 {
		lat = time.Duration(d.rng.Int63n(int64(d.cfg.LatencyMax)))
	}
	f()
	d.mu.Unlock()
	return lat
}

func (d *FaultDisk) ReadUnit(off int64, dst []byte) error {
	var (
		outcome  error
		corrupt  bool
		flipByte int
		flipBits byte
	)
	lat := d.draw(func() {
		d.stats.Reads++
		switch {
		case d.bad[off]:
			outcome = fmt.Errorf("faultdisk: latent sector error at unit %d: %w", off, ErrMedia)
		case d.cfg.TransientRate > 0 && d.rng.Float64() < d.cfg.TransientRate:
			d.stats.Transients++
			outcome = fmt.Errorf("faultdisk: injected read timeout at unit %d: %w", off, ErrTransient)
		case d.cfg.LSERate > 0 && d.rng.Float64() < d.cfg.LSERate:
			d.bad[off] = true
			d.stats.LSEInjected++
			d.stats.Latent++
			outcome = fmt.Errorf("faultdisk: latent sector error at unit %d: %w", off, ErrMedia)
		case d.cfg.CorruptRate > 0 && d.rng.Float64() < d.cfg.CorruptRate:
			corrupt = true
			flipByte = d.rng.Intn(len(dst))
			flipBits = byte(1 + d.rng.Intn(255))
			d.stats.CorruptReads++
		}
	})
	if lat > 0 {
		time.Sleep(lat)
	}
	if outcome != nil {
		return outcome
	}
	if err := d.under.ReadUnit(off, dst); err != nil {
		return err
	}
	if corrupt {
		dst[flipByte] ^= flipBits
	}
	return nil
}

func (d *FaultDisk) WriteUnit(off int64, src []byte) error {
	var (
		outcome error
		lost    bool
		tearAt  int
	)
	lat := d.draw(func() {
		d.stats.Writes++
		switch {
		case d.cfg.TransientRate > 0 && d.rng.Float64() < d.cfg.TransientRate:
			d.stats.Transients++
			outcome = fmt.Errorf("faultdisk: injected write timeout at unit %d: %w", off, ErrTransient)
		case d.loseNext || (d.cfg.LostWriteRate > 0 && d.rng.Float64() < d.cfg.LostWriteRate):
			d.loseNext = false
			lost = true
			d.stats.LostWrites++
		case d.cfg.TornWriteRate > 0 && d.rng.Float64() < d.cfg.TornWriteRate:
			// Tear somewhere strictly inside the unit: a zero-length tear
			// is a lost write and a full-length tear is a clean write.
			tearAt = 1 + d.rng.Intn(len(src)-1)
			d.stats.TornWrites++
		}
		if outcome == nil && !lost && d.bad[off] {
			// The write (even a torn one) remaps the latent sector.
			delete(d.bad, off)
			d.stats.LSEHealed++
			d.stats.Latent--
		}
	})
	if lat > 0 {
		time.Sleep(lat)
	}
	if outcome != nil {
		return outcome
	}
	if lost {
		return nil // acknowledged, dropped
	}
	if tearAt > 0 {
		// Persist new prefix over old suffix, then report failure with the
		// on-disk state unknown — the crash-shaped write outcome.
		mixed := make([]byte, len(src))
		if err := d.under.ReadUnit(off, mixed); err != nil {
			// Cannot compose the torn image; fall through to a full write
			// so the fault never invents a *second* failure class.
			if err := d.under.WriteUnit(off, src); err != nil {
				return err
			}
			return fmt.Errorf("faultdisk: torn write at unit %d: %w", off, ErrTransient)
		}
		copy(mixed[:tearAt], src[:tearAt])
		if err := d.under.WriteUnit(off, mixed); err != nil {
			return err
		}
		return fmt.Errorf("faultdisk: torn write at unit %d: %w", off, ErrTransient)
	}
	return d.under.WriteUnit(off, src)
}
