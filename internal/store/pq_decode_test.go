package store

import (
	"bytes"
	"errors"
	"testing"

	"declust/internal/layout"
)

// stripe0Roles returns stripe 0's P unit, Q unit, and data units of a
// layout, plus the logical index of each data unit.
func stripe0Roles(t *testing.T, s *Store) (p, q layout.Loc, data []layout.Loc, idx []int64) {
	t.Helper()
	p = layout.ParityLocOf(s.lay, 0, 0)
	q = layout.ParityLocOf(s.lay, 0, 1)
	for j := 0; j < s.lay.G(); j++ {
		u := s.lay.Unit(0, j)
		if u == p || u == q {
			continue
		}
		data = append(data, u)
		idx = append(idx, -1)
	}
	for n := int64(0); n < s.DataUnits(); n++ {
		loc := s.mapper.Loc(n)
		for i, d := range data {
			if loc == d {
				idx[i] = n
			}
		}
	}
	for i, n := range idx {
		if n < 0 {
			t.Fatalf("no logical index maps to data unit %v", data[i])
		}
	}
	return p, q, data, idx
}

// rot overwrites a unit's physical block with garbage so the next read
// fails its checksum — a persisted latent sector error.
func rot(t *testing.T, s *Store, u layout.Loc) {
	t.Helper()
	st := s.st.Load()
	if err := st.disks[u.Disk].WriteUnit(u.Offset, bytes.Repeat([]byte{0xEE}, s.physSize)); err != nil {
		t.Fatal(err)
	}
}

// TestPQThreeErasuresUnrecoverable drives the decode past its budget: two
// whole-disk failures plus one rotted unit in a shared stripe put three
// erasures in that stripe, and both the damaged-data read (the store's
// own unit is unreadable with no parity left) and the lost-data read (a
// needed survivor is damaged) must report ErrUnrecoverable rather than
// return wrong bytes.
func TestPQThreeErasuresUnrecoverable(t *testing.T) {
	t.Run("both-parities-lost-data-damaged", func(t *testing.T) {
		s := newTestPQStore(t, 7, 4, 64, 512)
		fillAll(t, s, 9)
		p, q, _, idx := stripe0Roles(t, s)
		if err := s.Fail(p.Disk); err != nil {
			t.Fatal(err)
		}
		if err := s.Fail(q.Disk); err != nil {
			t.Fatal(err)
		}
		rot(t, s, s.mapper.Loc(idx[0]))
		buf := make([]byte, s.UnitSize())
		if err := s.ReadUnit(idx[0], buf); !errors.Is(err, ErrUnrecoverable) {
			t.Fatalf("ReadUnit = %v, want ErrUnrecoverable", err)
		}
		// The sibling data unit is intact and must still read.
		verifyUnit(t, s, idx[1], 9)
	})
	t.Run("lost-data-needed-survivor-damaged", func(t *testing.T) {
		s := newTestPQStore(t, 7, 4, 64, 512)
		fillAll(t, s, 9)
		p, q, data, idx := stripe0Roles(t, s)
		if err := s.Fail(data[0].Disk); err != nil {
			t.Fatal(err)
		}
		if err := s.Fail(p.Disk); err != nil {
			t.Fatal(err)
		}
		// Decoding the lost data unit now needs Q; rot it.
		rot(t, s, q)
		buf := make([]byte, s.UnitSize())
		if err := s.ReadUnit(idx[0], buf); !errors.Is(err, ErrUnrecoverable) {
			t.Fatalf("ReadUnit = %v, want ErrUnrecoverable", err)
		}
	})
}

// TestPQResyncLostWriteParity exercises resyncStripePQ's lost-write arm:
// every unit is individually valid (clean checksum) but one parity no
// longer balances its equation — the signature of a write the disk
// acknowledged and dropped. Resync must trust data over parity and
// recompute whichever side is stale, for P and for Q independently.
func TestPQResyncLostWriteParity(t *testing.T) {
	s := newTestPQStore(t, 7, 4, 64, 512)
	fillAll(t, s, 11)
	st := s.st.Load()
	forge := func(stripe int64, k int) {
		u := layout.ParityLocOf(s.lay, stripe, k)
		phys := make([]byte, s.physSize)
		for i := 0; i < s.unitSize; i++ {
			phys[i] = byte(0xA5 ^ i)
		}
		if err := s.writeStamped(st.disk(u), u.Disk, u.Offset, phys); err != nil {
			t.Fatal(err)
		}
	}

	forge(1, 0) // stale P
	if fix, err := s.resyncStripePQ(st, 1); err != nil || fix != fixParity {
		t.Fatalf("stale P: resync = (%v, %v), want (fixParity, nil)", fix, err)
	}
	forge(2, 1) // stale Q
	if fix, err := s.resyncStripePQ(st, 2); err != nil || fix != fixParity {
		t.Fatalf("stale Q: resync = (%v, %v), want (fixParity, nil)", fix, err)
	}
	if fix, err := s.resyncStripePQ(st, 3); err != nil || fix != fixNone {
		t.Fatalf("clean stripe: resync = (%v, %v), want (fixNone, nil)", fix, err)
	}

	if err := s.CheckParity(); err != nil {
		t.Fatalf("CheckParity after resync: %v", err)
	}
	for n := int64(0); n < s.DataUnits(); n++ {
		verifyUnit(t, s, n, 11)
	}
}

// TestPQResyncRepairsDamage: resyncStripePQ reconstructs and rewrites up
// to two checksum-failing units in a stripe, and reports the third as
// unrecoverable.
func TestPQResyncRepairsDamage(t *testing.T) {
	s := newTestPQStore(t, 7, 4, 64, 512)
	fillAll(t, s, 13)
	st := s.st.Load()
	rot(t, s, s.lay.Unit(4, 0))
	rot(t, s, s.lay.Unit(4, 1))
	if fix, err := s.resyncStripePQ(st, 4); err != nil || fix != fixUnit {
		t.Fatalf("two damaged: resync = (%v, %v), want (fixUnit, nil)", fix, err)
	}
	for j := 0; j < 3; j++ {
		rot(t, s, s.lay.Unit(5, j))
	}
	if _, err := s.resyncStripePQ(st, 5); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("three damaged: resync = %v, want ErrUnrecoverable", err)
	}
}
