package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Disk is one backing device: a flat array of fixed-size physical units
// addressed by unit offset. A physical unit is a store data unit plus its
// checksum trailer — PhysUnitSize(unitSize) bytes — and every ReadUnit /
// WriteUnit buffer is exactly that long. Implementations must be safe for
// concurrent use at distinct offsets; the engine serializes same-stripe
// (and therefore same-offset) access through its stripe locks.
//
// Implementations may additionally provide:
//
//	Geometry() (units int64, unitSize int)  // capacity and DATA unit size
//	Sync() error                            // flush to stable storage
//
// The engine validates Geometry against its own configuration when
// present, and Store.Sync fans out to backends implementing Sync.
type Disk interface {
	// ReadUnit fills dst (exactly one physical unit) with the unit at off.
	ReadUnit(off int64, dst []byte) error
	// WriteUnit stores src (exactly one physical unit) at off.
	WriteUnit(off int64, src []byte) error
	// Close releases the backend's resources.
	Close() error
}

// sizedDisk is the optional geometry interface New and Rebuild validate
// supplied backends against.
type sizedDisk interface {
	Geometry() (units int64, unitSize int)
}

// syncDisk is the optional durability interface Store.Sync fans out to.
type syncDisk interface {
	Sync() error
}

// ErrDiskFailed is returned by I/O addressed to a disk slot that has been
// failed with Store.Fail. Seeing it surface from a Store method indicates
// an engine bug: the engine routes around failed slots.
var ErrDiskFailed = errors.New("store: disk failed")

// ErrTransient marks I/O errors that are worth retrying: a fresh attempt
// draws a fresh outcome. Backends wrap it (errors.Is) to tell the engine's
// retry policy that the failure is not persistent.
var ErrTransient = errors.New("store: transient I/O error")

// ErrMedia marks a persistent unrecoverable read error (a latent sector
// error): the unit is unreadable until it is next written, so the engine
// reconstructs its contents from the stripe's survivors and rewrites it.
var ErrMedia = errors.New("store: unrecoverable media error")

// ErrUnrecoverable reports genuine data loss: a stripe with two or more
// damaged or missing units, which single-failure-correcting parity cannot
// reconstruct.
var ErrUnrecoverable = errors.New("store: unrecoverable stripe (multiple damaged units)")

// memDisk is an in-memory backend: one contiguous byte slice.
type memDisk struct {
	unitSize int // data unit size; physical units add trailerLen
	units    int64
	data     []byte
}

// NewMemDisk returns an in-memory Disk sized for a store with the given
// data unit size: units physical blocks of PhysUnitSize(unitSize) bytes,
// zero-filled (so every unit reads as valid zeroes).
func NewMemDisk(units int64, unitSize int) Disk {
	return &memDisk{
		unitSize: unitSize,
		units:    units,
		data:     make([]byte, units*int64(PhysUnitSize(unitSize))),
	}
}

func (d *memDisk) Geometry() (int64, int) { return d.units, d.unitSize }

func (d *memDisk) bounds(off int64, n int) error {
	if off < 0 || off >= d.units {
		return fmt.Errorf("store: unit offset %d out of range [0,%d)", off, d.units)
	}
	if n != PhysUnitSize(d.unitSize) {
		return fmt.Errorf("store: buffer is %d bytes, physical unit size is %d", n, PhysUnitSize(d.unitSize))
	}
	return nil
}

func (d *memDisk) ReadUnit(off int64, dst []byte) error {
	if err := d.bounds(off, len(dst)); err != nil {
		return err
	}
	copy(dst, d.data[off*int64(PhysUnitSize(d.unitSize)):])
	return nil
}

func (d *memDisk) WriteUnit(off int64, src []byte) error {
	if err := d.bounds(off, len(src)); err != nil {
		return err
	}
	copy(d.data[off*int64(PhysUnitSize(d.unitSize)):], src)
	return nil
}

func (d *memDisk) Close() error { return nil }

// File-backed disks start with a fixed-size superblock recording the
// format version and geometry, so a file created for one geometry can
// never be silently reinterpreted under another.
//
//	bytes [0,8):   magic "DCLSTOR\x02"
//	bytes [8,12):  format version (currently 2), little-endian
//	bytes [12,16): data unit size in bytes, little-endian
//	bytes [16,24): capacity in units, little-endian
//	bytes [24,28): crc32c of bytes [0,24), little-endian
//
// The rest of the superblock is reserved (zero). Physical unit o lives at
// byte superblockLen + o·PhysUnitSize(unitSize).
const (
	superblockLen     = 512
	fileFormatVersion = 2
)

var fileMagic = [8]byte{'D', 'C', 'L', 'S', 'T', 'O', 'R', 2}

// fileDisk is a file-backed backend: one flat file per disk. Writes go
// through the OS page cache (no per-write fsync); call Sync for
// durability points.
type fileDisk struct {
	unitSize int // data unit size; physical units add trailerLen
	units    int64
	f        *os.File
}

func encodeSuperblock(units int64, unitSize int) []byte {
	sb := make([]byte, superblockLen)
	copy(sb, fileMagic[:])
	binary.LittleEndian.PutUint32(sb[8:], fileFormatVersion)
	binary.LittleEndian.PutUint32(sb[12:], uint32(unitSize))
	binary.LittleEndian.PutUint64(sb[16:], uint64(units))
	binary.LittleEndian.PutUint32(sb[24:], crc32.Checksum(sb[:24], crcTab))
	return sb
}

// validateSuperblock checks sb against the requested geometry and returns
// a descriptive error on any mismatch.
func validateSuperblock(path string, sb []byte, units int64, unitSize int) error {
	if string(sb[:8]) != string(fileMagic[:]) {
		return fmt.Errorf("store: %s is not a store disk (bad superblock magic; pre-superblock files must be recreated)", path)
	}
	if got := binary.LittleEndian.Uint32(sb[24:]); got != crc32.Checksum(sb[:24], crcTab) {
		return fmt.Errorf("store: %s has a corrupt superblock (header checksum mismatch)", path)
	}
	if v := binary.LittleEndian.Uint32(sb[8:]); v != fileFormatVersion {
		return fmt.Errorf("store: %s has format version %d, this engine writes version %d", path, v, fileFormatVersion)
	}
	if us := int(binary.LittleEndian.Uint32(sb[12:])); us != unitSize {
		return fmt.Errorf("store: %s was formatted with %d-byte units, store wants %d-byte units", path, us, unitSize)
	}
	if u := int64(binary.LittleEndian.Uint64(sb[16:])); u != units {
		return fmt.Errorf("store: %s was formatted for %d units, store wants %d", path, u, units)
	}
	return nil
}

// OpenFileDisk opens a file-backed Disk at path sized for a store with
// the given data unit size. A missing or empty file is formatted (a
// superblock recording the geometry is written and synced, and the file
// is extended to hold units physical blocks); an existing file must carry
// a matching superblock — any geometry or format mismatch is a
// descriptive error, never a silent reinterpretation.
func OpenFileDisk(path string, units int64, unitSize int) (Disk, error) {
	if units <= 0 || unitSize <= 0 {
		return nil, fmt.Errorf("store: file disk geometry %d units x %d B is invalid", units, unitSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := superblockLen + units*int64(PhysUnitSize(unitSize))
	switch {
	case fi.Size() == 0:
		// Fresh file: format it. The superblock is synced so a crash
		// between formatting and first use cannot leave a headerless file.
		if _, err := f.WriteAt(encodeSuperblock(units, unitSize), 0); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	case fi.Size() < superblockLen:
		f.Close()
		return nil, fmt.Errorf("store: %s is %d bytes, too short to hold a superblock (corrupt or not a store disk)", path, fi.Size())
	default:
		sb := make([]byte, superblockLen)
		if _, err := f.ReadAt(sb, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: reading %s superblock: %w", path, err)
		}
		if err := validateSuperblock(path, sb, units, unitSize); err != nil {
			f.Close()
			return nil, err
		}
	}
	if fi.Size() < size {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &fileDisk{unitSize: unitSize, units: units, f: f}, nil
}

// OpenFileDisks opens C file-backed disks under dir, named disk0000.dat
// onward. On error, disks opened so far are closed.
func OpenFileDisks(dir string, c int, units int64, unitSize int) ([]Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	disks := make([]Disk, 0, c)
	for i := 0; i < c; i++ {
		d, err := OpenFileDisk(filepath.Join(dir, fmt.Sprintf("disk%04d.dat", i)), units, unitSize)
		if err != nil {
			for _, prev := range disks {
				prev.Close()
			}
			return nil, err
		}
		disks = append(disks, d)
	}
	return disks, nil
}

func (d *fileDisk) Geometry() (int64, int) { return d.units, d.unitSize }

func (d *fileDisk) bounds(off int64, n int) error {
	if off < 0 || off >= d.units {
		return fmt.Errorf("store: unit offset %d out of range [0,%d)", off, d.units)
	}
	if n != PhysUnitSize(d.unitSize) {
		return fmt.Errorf("store: buffer is %d bytes, physical unit size is %d", n, PhysUnitSize(d.unitSize))
	}
	return nil
}

func (d *fileDisk) byteOff(off int64) int64 {
	return superblockLen + off*int64(PhysUnitSize(d.unitSize))
}

func (d *fileDisk) ReadUnit(off int64, dst []byte) error {
	if err := d.bounds(off, len(dst)); err != nil {
		return err
	}
	_, err := d.f.ReadAt(dst, d.byteOff(off))
	return err
}

func (d *fileDisk) WriteUnit(off int64, src []byte) error {
	if err := d.bounds(off, len(src)); err != nil {
		return err
	}
	_, err := d.f.WriteAt(src, d.byteOff(off))
	return err
}

// Sync flushes buffered writes to stable storage.
func (d *fileDisk) Sync() error { return d.f.Sync() }

func (d *fileDisk) Close() error { return d.f.Close() }

// deadDisk occupies a failed slot so that any I/O mistakenly routed to it
// fails loudly instead of touching stale bytes.
type deadDisk struct{}

func (deadDisk) ReadUnit(int64, []byte) error  { return ErrDiskFailed }
func (deadDisk) WriteUnit(int64, []byte) error { return ErrDiskFailed }
func (deadDisk) Close() error                  { return nil }
