package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Disk is one backing device: a flat array of fixed-size units addressed
// by unit offset. Implementations must be safe for concurrent use at
// distinct offsets; the engine serializes same-stripe (and therefore
// same-offset) access through its stripe locks.
type Disk interface {
	// ReadUnit fills dst (exactly one unit) with the unit at off.
	ReadUnit(off int64, dst []byte) error
	// WriteUnit stores src (exactly one unit) at off.
	WriteUnit(off int64, src []byte) error
	// Close releases the backend's resources.
	Close() error
}

// ErrDiskFailed is returned by I/O addressed to a disk slot that has been
// failed with Store.Fail. Seeing it surface from a Store method indicates
// an engine bug: the engine routes around failed slots.
var ErrDiskFailed = errors.New("store: disk failed")

// memDisk is an in-memory backend: one contiguous byte slice.
type memDisk struct {
	unitSize int
	units    int64
	data     []byte
}

// NewMemDisk returns an in-memory Disk holding units fixed-size blocks,
// zero-filled.
func NewMemDisk(units int64, unitSize int) Disk {
	return &memDisk{unitSize: unitSize, units: units, data: make([]byte, units*int64(unitSize))}
}

func (d *memDisk) bounds(off int64, n int) error {
	if off < 0 || off >= d.units {
		return fmt.Errorf("store: unit offset %d out of range [0,%d)", off, d.units)
	}
	if n != d.unitSize {
		return fmt.Errorf("store: buffer is %d bytes, unit size is %d", n, d.unitSize)
	}
	return nil
}

func (d *memDisk) ReadUnit(off int64, dst []byte) error {
	if err := d.bounds(off, len(dst)); err != nil {
		return err
	}
	copy(dst, d.data[off*int64(d.unitSize):])
	return nil
}

func (d *memDisk) WriteUnit(off int64, src []byte) error {
	if err := d.bounds(off, len(src)); err != nil {
		return err
	}
	copy(d.data[off*int64(d.unitSize):], src)
	return nil
}

func (d *memDisk) Close() error { return nil }

// fileDisk is a file-backed backend: one flat file per disk, the unit at
// offset o stored at byte o·unitSize. Writes go through the OS page cache
// (no per-write fsync); call Sync for durability points.
type fileDisk struct {
	unitSize int
	units    int64
	f        *os.File
}

// OpenFileDisk opens (creating and sizing if necessary) a file-backed
// Disk at path holding units fixed-size blocks.
func OpenFileDisk(path string, units int64, unitSize int) (Disk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	size := units * int64(unitSize)
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, err
	} else if fi.Size() < size {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &fileDisk{unitSize: unitSize, units: units, f: f}, nil
}

// OpenFileDisks opens C file-backed disks under dir, named disk0000.dat
// onward. On error, disks opened so far are closed.
func OpenFileDisks(dir string, c int, units int64, unitSize int) ([]Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	disks := make([]Disk, 0, c)
	for i := 0; i < c; i++ {
		d, err := OpenFileDisk(filepath.Join(dir, fmt.Sprintf("disk%04d.dat", i)), units, unitSize)
		if err != nil {
			for _, prev := range disks {
				prev.Close()
			}
			return nil, err
		}
		disks = append(disks, d)
	}
	return disks, nil
}

func (d *fileDisk) bounds(off int64, n int) error {
	if off < 0 || off >= d.units {
		return fmt.Errorf("store: unit offset %d out of range [0,%d)", off, d.units)
	}
	if n != d.unitSize {
		return fmt.Errorf("store: buffer is %d bytes, unit size is %d", n, d.unitSize)
	}
	return nil
}

func (d *fileDisk) ReadUnit(off int64, dst []byte) error {
	if err := d.bounds(off, len(dst)); err != nil {
		return err
	}
	_, err := d.f.ReadAt(dst, off*int64(d.unitSize))
	return err
}

func (d *fileDisk) WriteUnit(off int64, src []byte) error {
	if err := d.bounds(off, len(src)); err != nil {
		return err
	}
	_, err := d.f.WriteAt(src, off*int64(d.unitSize))
	return err
}

// Sync flushes buffered writes to stable storage.
func (d *fileDisk) Sync() error { return d.f.Sync() }

func (d *fileDisk) Close() error { return d.f.Close() }

// deadDisk occupies a failed slot so that any I/O mistakenly routed to it
// fails loudly instead of touching stale bytes.
type deadDisk struct{}

func (deadDisk) ReadUnit(int64, []byte) error  { return ErrDiskFailed }
func (deadDisk) WriteUnit(int64, []byte) error { return ErrDiskFailed }
func (deadDisk) Close() error                  { return nil }
