package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Every unit stored on a backend carries an 8-byte trailer after its data:
//
//	bytes [us, us+4):   crc32c(data), little-endian
//	bytes [us+4, us+8): crc32c(data) XOR offMix(offset), little-endian
//
// The first word detects corruption of the data (torn writes, bit rot,
// firmware lies); the second additionally detects misdirected writes — a
// unit's bytes landing at the wrong offset verifies against the first word
// but not the second. CRC32-C is hardware-accelerated by the standard
// library on amd64 and arm64, which is what keeps verification cheap
// enough for the hot path.
//
// A unit whose data and trailer are entirely zero is valid and reads as
// zeroes: fresh backends (zeroed memory, sparse files) must be readable
// before their first write, and crc32c of a zero block is nonzero, so the
// convention is unambiguous — any legitimately written unit, including an
// all-zero one, carries a nonzero trailer.

// trailerLen is the per-unit checksum trailer size in bytes. It is a
// multiple of 8 so physical units preserve the engine's XOR alignment.
const trailerLen = 8

// PhysUnitSize returns the on-backend size of one unit for a store with
// the given data unit size: the data plus its checksum trailer. Custom
// Disk implementations must store units of this physical size.
func PhysUnitSize(unitSize int) int { return unitSize + trailerLen }

var crcTab = crc32.MakeTable(crc32.Castagnoli)

// offMix hashes a unit offset into the trailer's second word so that a
// write landing at the wrong offset fails verification.
func offMix(off int64) uint32 {
	x := uint64(off)*0x9e3779b97f4a7c15 + 1
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return uint32(x)
}

// stampTrailer computes and writes the trailer for phys[:us] stored at
// offset off. phys has length us+trailerLen.
func stampTrailer(phys []byte, us int, off int64) {
	sum := crc32.Checksum(phys[:us], crcTab)
	binary.LittleEndian.PutUint32(phys[us:], sum)
	binary.LittleEndian.PutUint32(phys[us+4:], sum^offMix(off))
}

// verifyTrailer reports whether phys is a valid unit for offset off:
// either the trailer matches the data, or the whole physical unit is zero
// (a never-written unit, which reads as zero data).
func verifyTrailer(phys []byte, us int, off int64) bool {
	sum := crc32.Checksum(phys[:us], crcTab)
	c1 := binary.LittleEndian.Uint32(phys[us:])
	c2 := binary.LittleEndian.Uint32(phys[us+4:])
	if sum == c1 && c2 == c1^offMix(off) {
		return true
	}
	if c1 != 0 || c2 != 0 {
		return false
	}
	for _, b := range phys[:us] {
		if b != 0 {
			return false
		}
	}
	return true
}

// badSumError reports a unit whose trailer failed verification; the heal
// path (reconstruct from survivors, rewrite) consumes it via errors.As.
type badSumError struct {
	disk int
	off  int64
}

func (e *badSumError) Error() string {
	return fmt.Sprintf("store: checksum mismatch on disk %d unit %d", e.disk, e.off)
}
