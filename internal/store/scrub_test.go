package store

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"declust/internal/layout"
)

func TestScrubCleanStoreVerifiesEverything(t *testing.T) {
	s := newTestStore(t, 7, 3, 64, 512)
	fillAll(t, s, 1)
	res, err := s.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if res.Stripes != s.Stripes() || res.Skipped != 0 {
		t.Fatalf("scrubbed %d stripes (skipped %d), want %d (0)", res.Stripes, res.Skipped, s.Stripes())
	}
	if res.UnitRepairs != 0 || res.ParityRewrites != 0 || res.Unrecoverable != 0 {
		t.Fatalf("clean store needed repairs: %+v", res)
	}
	if s.Stats().Scrubs != 1 {
		t.Fatalf("Scrubs = %d, want 1", s.Stats().Scrubs)
	}
}

func TestScrubRepairsRottedUnit(t *testing.T) {
	s := newTestStore(t, 7, 3, 64, 512)
	fillAll(t, s, 6)
	loc := s.mapper.Loc(11)
	st := s.st.Load()
	if err := st.disks[loc.Disk].WriteUnit(loc.Offset, bytes.Repeat([]byte{0xEE}, s.physSize)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if res.UnitRepairs != 1 {
		t.Fatalf("UnitRepairs = %d, want 1", res.UnitRepairs)
	}
	verifyUnit(t, s, 11, 6)
	if err := s.CheckParity(); err != nil {
		t.Fatalf("CheckParity after scrub: %v", err)
	}
}

func TestScrubDetectsLostParityWrite(t *testing.T) {
	s, fds := faultStore(t, 7, 3, 64, 512,
		func(int) FaultConfig { return FaultConfig{} }, Config{})
	fillAll(t, s, 1)
	// Drop the parity commit of one write: data goes down, parity stays
	// stale. The unit checksums all verify — only the parity equation
	// betrays the lost write, and the scrub resolves it in favor of data.
	n := int64(3)
	loc := s.mapper.Loc(n)
	stripe, _ := s.lay.Locate(loc)
	ploc := layout.ParityLoc(s.lay, stripe)
	fds[ploc.Disk].LoseNextWrite()
	buf := make([]byte, s.UnitSize())
	fill(buf, n, 2)
	if err := s.WriteUnit(n, buf); err != nil {
		t.Fatalf("WriteUnit with lost parity: %v", err)
	}
	if err := s.CheckParity(); err == nil {
		t.Fatal("CheckParity missed the stale parity unit")
	}
	res, err := s.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if res.ParityRewrites != 1 {
		t.Fatalf("ParityRewrites = %d, want 1", res.ParityRewrites)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatalf("CheckParity after scrub: %v", err)
	}
	verifyUnit(t, s, n, 2)
}

func TestScrubCountsUnrecoverableStripes(t *testing.T) {
	s := newTestStore(t, 7, 3, 64, 512)
	fillAll(t, s, 1)
	// Rot two units of stripe 0: beyond single parity.
	st := s.st.Load()
	for j := 0; j < 2; j++ {
		u := s.lay.Unit(0, j)
		if err := st.disks[u.Disk].WriteUnit(u.Offset, bytes.Repeat([]byte{0xBD}, s.physSize)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Scrub()
	if err == nil || !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("Scrub returned %v, want an ErrUnrecoverable", err)
	}
	if res.Unrecoverable != 1 {
		t.Fatalf("Unrecoverable = %d, want 1", res.Unrecoverable)
	}
	if res.Stripes != s.Stripes()-1 {
		t.Fatalf("scrub stopped early: verified %d of %d stripes", res.Stripes, s.Stripes()-1)
	}
}

func TestScrubSkipsDegradedStripes(t *testing.T) {
	s := newTestStore(t, 7, 3, 64, 512)
	fillAll(t, s, 1)
	if err := s.Fail(0); err != nil {
		t.Fatal(err)
	}
	res, err := s.Scrub()
	if err != nil {
		t.Fatalf("Scrub degraded: %v", err)
	}
	if res.Skipped == 0 {
		t.Fatal("degraded scrub skipped no stripes")
	}
	if res.Stripes+res.Skipped != s.Stripes() {
		t.Fatalf("scrubbed %d + skipped %d != %d stripes", res.Stripes, res.Skipped, s.Stripes())
	}
}

// TestIntentRecoveryResyncsDirtyRegions simulates a crash by abandoning a
// file-backed store (no Close, so its intent log still has the written
// region marked) after dropping a parity commit, then reopens over the
// same files and expects the recovery pass to repair the stripe.
func TestIntentRecoveryResyncsDirtyRegions(t *testing.T) {
	dir := t.TempDir()
	lay := testLayout(t, 5, 5)
	usable := layout.UsableUnitsPerDisk(lay, 40)

	open := func() (*Store, []*FaultDisk) {
		raw, err := OpenFileDisks(dir, 5, usable, 512)
		if err != nil {
			t.Fatal(err)
		}
		fds := make([]*FaultDisk, len(raw))
		disks := make([]Disk, len(raw))
		for i, d := range raw {
			fds[i] = NewFaultDisk(d, FaultConfig{})
			disks[i] = fds[i]
		}
		s, err := New(Config{
			Layout:       lay,
			UnitsPerDisk: 40,
			UnitSize:     512,
			Disks:        disks,
			Intent:       OpenFileIntent(filepath.Join(dir, "intent.log")),
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, fds
	}

	s1, fds := open()
	fillAll(t, s1, 1)
	if err := s1.Sync(); err != nil {
		t.Fatal(err)
	}
	// Re-dirty one region with a write whose parity commit is dropped.
	n := int64(2)
	loc := s1.mapper.Loc(n)
	stripe, _ := s1.lay.Locate(loc)
	ploc := layout.ParityLoc(s1.lay, stripe)
	fds[ploc.Disk].LoseNextWrite()
	buf := make([]byte, 512)
	fill(buf, n, 2)
	if err := s1.WriteUnit(n, buf); err != nil {
		t.Fatal(err)
	}
	// "Crash": abandon s1 without Close or Sync. The region is still
	// marked in intent.log and the parity on disk is stale.

	s2, _ := open()
	defer s2.Close()
	st := s2.Stats()
	if st.ResyncedStripes == 0 {
		t.Fatal("reopen found no dirty regions to resync")
	}
	if st.ResyncRepairs == 0 {
		t.Fatal("recovery pass repaired nothing despite a stale parity unit")
	}
	if err := s2.CheckParity(); err != nil {
		t.Fatalf("CheckParity after recovery: %v", err)
	}
	verifyUnit(t, s2, n, 2)
	for u := int64(0); u < s2.DataUnits(); u++ {
		if u != n {
			verifyUnit(t, s2, u, 1)
		}
	}
}

// TestCleanCloseClearsIntent verifies the happy path pays no recovery:
// Sync+Close leave the intent log clean, so reopening resyncs nothing.
func TestCleanCloseClearsIntent(t *testing.T) {
	dir := t.TempDir()
	lay := testLayout(t, 5, 5)
	usable := layout.UsableUnitsPerDisk(lay, 40)
	openStore := func() *Store {
		disks, err := OpenFileDisks(dir, 5, usable, 512)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{
			Layout:       lay,
			UnitsPerDisk: 40,
			UnitSize:     512,
			Disks:        disks,
			Intent:       OpenFileIntent(filepath.Join(dir, "intent.log")),
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := openStore()
	fillAll(t, s1, 1)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore()
	defer s2.Close()
	if got := s2.Stats().ResyncedStripes; got != 0 {
		t.Fatalf("clean reopen resynced %d stripes, want 0", got)
	}
	for u := int64(0); u < s2.DataUnits(); u++ {
		verifyUnit(t, s2, u, 1)
	}
}
