package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// The parallel fast path must be invisible in results: a store with
// IOWorkers>1 returns the same bytes, maintains the same parity, and
// honors the same crash contract as the serial engine. These tests pin
// that equivalence, the group-commit batching, and the error-aggregation
// contracts of Sync and Close.

// driveTwin applies the same seeded operation mix to both stores; any
// divergence in results or errors fails the test.
func driveTwin(t *testing.T, rng *rand.Rand, a, b *Store, ops int) {
	t.Helper()
	us := a.UnitSize()
	total := a.DataUnits()
	bufA := make([]byte, 8*us)
	bufB := make([]byte, 8*us)
	for i := 0; i < ops; i++ {
		switch rng.Intn(4) {
		case 0: // single-unit write
			n := rng.Int63n(total)
			fill(bufA[:us], n, uint64(i))
			if err := a.WriteUnit(n, bufA[:us]); err != nil {
				t.Fatalf("op %d: serial WriteUnit(%d): %v", i, n, err)
			}
			if err := b.WriteUnit(n, bufA[:us]); err != nil {
				t.Fatalf("op %d: parallel WriteUnit(%d): %v", i, n, err)
			}
		case 1: // single-unit read
			n := rng.Int63n(total)
			if err := a.ReadUnit(n, bufA[:us]); err != nil {
				t.Fatalf("op %d: serial ReadUnit(%d): %v", i, n, err)
			}
			if err := b.ReadUnit(n, bufB[:us]); err != nil {
				t.Fatalf("op %d: parallel ReadUnit(%d): %v", i, n, err)
			}
			if !bytes.Equal(bufA[:us], bufB[:us]) {
				t.Fatalf("op %d: ReadUnit(%d) diverges between serial and parallel", i, n)
			}
		case 2: // range write
			units := 1 + rng.Int63n(8)
			start := rng.Int63n(total - units + 1)
			span := bufA[:units*int64(us)]
			for u := int64(0); u < units; u++ {
				fill(span[u*int64(us):(u+1)*int64(us)], start+u, uint64(i))
			}
			if err := a.WriteRange(start, span); err != nil {
				t.Fatalf("op %d: serial WriteRange(%d, %d units): %v", i, start, units, err)
			}
			if err := b.WriteRange(start, span); err != nil {
				t.Fatalf("op %d: parallel WriteRange(%d, %d units): %v", i, start, units, err)
			}
		default: // range read
			units := 1 + rng.Int63n(8)
			start := rng.Int63n(total - units + 1)
			if err := a.ReadRange(start, bufA[:units*int64(us)]); err != nil {
				t.Fatalf("op %d: serial ReadRange(%d, %d units): %v", i, start, units, err)
			}
			if err := b.ReadRange(start, bufB[:units*int64(us)]); err != nil {
				t.Fatalf("op %d: parallel ReadRange(%d, %d units): %v", i, start, units, err)
			}
			if !bytes.Equal(bufA[:units*int64(us)], bufB[:units*int64(us)]) {
				t.Fatalf("op %d: ReadRange(%d, %d units) diverges", i, start, units)
			}
		}
	}
}

// compareStores asserts both stores hold identical bytes in every data
// unit and both pass CheckParity.
func compareStores(t *testing.T, a, b *Store) {
	t.Helper()
	us := a.UnitSize()
	bufA := make([]byte, us)
	bufB := make([]byte, us)
	for n := int64(0); n < a.DataUnits(); n++ {
		if err := a.ReadRange(n, bufA); err != nil {
			t.Fatalf("serial read of unit %d: %v", n, err)
		}
		if err := b.ReadRange(n, bufB); err != nil {
			t.Fatalf("parallel read of unit %d: %v", n, err)
		}
		if !bytes.Equal(bufA, bufB) {
			t.Fatalf("unit %d differs between serial and parallel stores", n)
		}
	}
	if err := a.CheckParity(); err != nil {
		t.Fatalf("serial CheckParity: %v", err)
	}
	if err := b.CheckParity(); err != nil {
		t.Fatalf("parallel CheckParity: %v", err)
	}
}

// TestParallelMatchesSerial drives a serial (IOWorkers=1) and a parallel
// (IOWorkers=8) store through the same seeded lifecycle — healthy ops,
// failure, degraded ops, rebuild, healed ops — and requires byte-identical
// unit contents and clean parity at every phase boundary.
func TestParallelMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			lay := testLayout(t, 7, 4)
			mk := func(io, rw int) *Store {
				s, err := New(Config{
					Layout: lay, UnitsPerDisk: 48, UnitSize: 512,
					IOWorkers: io, RebuildWorkers: rw,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { s.Close() })
				return s
			}
			serial := mk(1, 1)
			parallel := mk(8, 4)
			rng := rand.New(rand.NewSource(seed))

			driveTwin(t, rng, serial, parallel, 200)
			compareStores(t, serial, parallel)

			victim := rng.Intn(lay.Disks())
			if err := serial.Fail(victim); err != nil {
				t.Fatal(err)
			}
			if err := parallel.Fail(victim); err != nil {
				t.Fatal(err)
			}
			driveTwin(t, rng, serial, parallel, 200)

			if err := serial.Rebuild(NewMemDisk(48, 512)); err != nil {
				t.Fatalf("serial rebuild: %v", err)
			}
			if err := parallel.Rebuild(NewMemDisk(48, 512)); err != nil {
				t.Fatalf("parallel rebuild: %v", err)
			}
			driveTwin(t, rng, serial, parallel, 100)
			compareStores(t, serial, parallel)
		})
	}
}

// recordingIntent wraps memIntent, recording every MarkBatch and, when
// gate is non-nil, blocking the first MarkBatch until the gate closes —
// letting the test pile followers onto the group-commit queue.
type recordingIntent struct {
	memIntent
	mu      sync.Mutex
	batches [][]int64
	gate    chan struct{}
	blocked bool
}

func (ri *recordingIntent) MarkBatch(rs []int64) error {
	ri.mu.Lock()
	ri.batches = append(ri.batches, append([]int64(nil), rs...))
	wait := !ri.blocked
	ri.blocked = true
	ri.mu.Unlock()
	if wait && ri.gate != nil {
		<-ri.gate
	}
	return ri.memIntent.MarkBatch(rs)
}

// TestIntentGroupCommit pins the group-commit window: while a leader's
// MarkBatch durability barrier is in flight, first-writers to other clean
// regions queue up and are drained by the leader as one batch — one
// barrier for all of them.
func TestIntentGroupCommit(t *testing.T) {
	ri := &recordingIntent{gate: make(chan struct{})}
	lay := testLayout(t, 7, 4)
	s, err := New(Config{
		Layout: lay, UnitsPerDisk: 512, UnitSize: 512,
		IOWorkers: 4, Intent: ri,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	regions := intentRegions(s.Stripes())
	const followers = 4
	if regions < followers+1 {
		t.Fatalf("store has %d intent regions, test needs %d", regions, followers+1)
	}
	// Logical unit landing in region r: first data unit of stripe r*64.
	unitIn := func(r int64) int64 { return r * intentRegionStripes * int64(lay.G()-1) }
	buf := make([]byte, 512)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader: first write into region 0, blocks in MarkBatch
		defer wg.Done()
		if err := s.WriteUnit(unitIn(0), buf); err != nil {
			t.Errorf("leader write: %v", err)
		}
	}()
	waitFor(t, "leader to enter MarkBatch", func() bool {
		ri.mu.Lock()
		defer ri.mu.Unlock()
		return len(ri.batches) == 1
	})
	wg.Add(followers)
	for i := 1; i <= followers; i++ {
		go func(r int64) { // followers: first writes into regions 1..4
			defer wg.Done()
			if err := s.WriteUnit(unitIn(r), buf); err != nil {
				t.Errorf("follower write region %d: %v", r, err)
			}
		}(int64(i))
	}
	waitFor(t, "followers to queue", func() bool {
		s.intentMu.Lock()
		defer s.intentMu.Unlock()
		return len(s.intentPend) == followers
	})
	close(ri.gate)
	wg.Wait()

	ri.mu.Lock()
	defer ri.mu.Unlock()
	if len(ri.batches) != 2 {
		t.Fatalf("got %d MarkBatch calls, want 2 (leader + one coalesced batch): %v", len(ri.batches), ri.batches)
	}
	if len(ri.batches[0]) != 1 || ri.batches[0][0] != 0 {
		t.Fatalf("leader batch = %v, want [0]", ri.batches[0])
	}
	got := map[int64]bool{}
	for _, r := range ri.batches[1] {
		got[r] = true
	}
	if len(got) != followers {
		t.Fatalf("coalesced batch = %v, want regions 1..%d", ri.batches[1], followers)
	}
	for r := int64(1); r <= followers; r++ {
		if !got[r] {
			t.Fatalf("coalesced batch %v is missing region %d", ri.batches[1], r)
		}
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// failingIntent delivers an error from MarkBatch; writers must surface it
// and the store must not record the region dirty.
type failingIntent struct {
	memIntent
	err error
}

func (fi *failingIntent) MarkBatch(rs []int64) error { return fi.err }

// TestIntentMarkFailureSurfaces pins error delivery through the group
// commit: every waiter whose region failed to mark gets the error, and a
// later writer retries the mark rather than trusting a phantom success.
func TestIntentMarkFailureSurfaces(t *testing.T) {
	sentinel := errors.New("barrier torn")
	fi := &failingIntent{err: sentinel}
	s, err := New(Config{
		Layout: testLayout(t, 7, 4), UnitsPerDisk: 48, UnitSize: 512, Intent: fi,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]byte, 512)
	if err := s.WriteUnit(0, buf); !errors.Is(err, sentinel) {
		t.Fatalf("WriteUnit with failing intent log = %v, want %v", err, sentinel)
	}
	fi.err = nil // log recovers; the next write must re-mark and succeed
	if err := s.WriteUnit(0, buf); err != nil {
		t.Fatalf("WriteUnit after intent log recovered: %v", err)
	}
	if !s.regionDirty[0].Load() {
		t.Fatal("region 0 not marked dirty after successful retry")
	}
}

// brokenDisk wraps a Disk, failing Sync and Close with its own errors.
type brokenDisk struct {
	Disk
	syncErr  error
	closeErr error
}

func (d brokenDisk) Sync() error  { return d.syncErr }
func (d brokenDisk) Close() error { return d.closeErr }

// TestSyncAggregatesBackendErrors pins the errors.Join contract: with two
// failing backends, Sync reports both, not just the first.
func TestSyncAggregatesBackendErrors(t *testing.T) {
	lay := testLayout(t, 7, 4)
	e2 := errors.New("disk 2 sync lost")
	e5 := errors.New("disk 5 sync lost")
	disks := make([]Disk, lay.Disks())
	for i := range disks {
		disks[i] = NewMemDisk(48, 512)
	}
	disks[2] = brokenDisk{Disk: disks[2], syncErr: e2}
	disks[5] = brokenDisk{Disk: disks[5], syncErr: e5}
	s, err := New(Config{Layout: lay, UnitsPerDisk: 48, UnitSize: 512, Disks: disks})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	err = s.Sync()
	if !errors.Is(err, e2) || !errors.Is(err, e5) {
		t.Fatalf("Sync = %v, want both backend errors joined", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "disk 2") || !strings.Contains(msg, "disk 5") {
		t.Fatalf("Sync error %q does not name both disks", msg)
	}
}

// TestCloseAggregatesBackendErrors pins the same contract for Close.
func TestCloseAggregatesBackendErrors(t *testing.T) {
	lay := testLayout(t, 7, 4)
	e1 := errors.New("disk 1 will not close")
	e4 := errors.New("disk 4 will not close")
	disks := make([]Disk, lay.Disks())
	for i := range disks {
		disks[i] = NewMemDisk(48, 512)
	}
	disks[1] = brokenDisk{Disk: disks[1], closeErr: e1}
	disks[4] = brokenDisk{Disk: disks[4], closeErr: e4}
	s, err := New(Config{Layout: lay, UnitsPerDisk: 48, UnitSize: 512, Disks: disks})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Close()
	if !errors.Is(err, e1) || !errors.Is(err, e4) {
		t.Fatalf("Close = %v, want both backend errors joined", err)
	}
}

// TestWorkerConfigValidation pins the IOWorkers/RebuildWorkers bounds and
// defaulting rules.
func TestWorkerConfigValidation(t *testing.T) {
	lay := testLayout(t, 7, 4)
	base := func() Config { return Config{Layout: lay, UnitsPerDisk: 48, UnitSize: 512} }

	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"negative IOWorkers", func(c *Config) { c.IOWorkers = -1 }},
		{"huge IOWorkers", func(c *Config) { c.IOWorkers = 2048 }},
		{"negative RebuildWorkers", func(c *Config) { c.RebuildWorkers = -3 }},
		{"huge RebuildWorkers", func(c *Config) { c.RebuildWorkers = 4096 }},
	} {
		cfg := base()
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}

	s, err := New(func() Config { c := base(); c.IOWorkers = 6; return c }())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ioWorkers != 6 || s.rebuildWorkers != 6 {
		t.Fatalf("IOWorkers=6 gave (io=%d, rebuild=%d), want RebuildWorkers to default to IOWorkers",
			s.ioWorkers, s.rebuildWorkers)
	}
	if got := s.pool.free.Load(); got != 5 {
		t.Fatalf("pool holds %d helper tokens, want IOWorkers-1 = 5", got)
	}
}

// TestFanOutSerialFallback pins that a store whose pool is exhausted (or
// configured serial) runs batches in index order on the caller with
// first-error-wins, exactly the serial engine.
func TestFanOutSerialFallback(t *testing.T) {
	s, err := New(Config{Layout: testLayout(t, 7, 4), UnitsPerDisk: 48, UnitSize: 512, IOWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var order []int
	sentinel := errors.New("item 3 failed")
	err = s.fanOut(6, func(i int) error {
		order = append(order, i) // no mutex: serial fallback must not spawn helpers
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("fanOut = %v, want %v", err, sentinel)
	}
	want := []int{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("serial fanOut ran items %v, want %v (abort after first error)", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("serial fanOut ran items %v, want %v", order, want)
		}
	}
}

// TestFanOutParallelFirstErrorWins pins that with helpers engaged the
// lowest-indexed error is the one returned.
func TestFanOutParallelFirstErrorWins(t *testing.T) {
	s, err := New(Config{Layout: testLayout(t, 7, 4), UnitsPerDisk: 48, UnitSize: 512, IOWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for round := 0; round < 50; round++ {
		err := s.fanOut(8, func(i int) error {
			switch i {
			case 2:
				return errLow
			case 6:
				time.Sleep(time.Microsecond)
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("round %d: fanOut = %v, want lowest-indexed error %v", round, err, errLow)
		}
	}
}
