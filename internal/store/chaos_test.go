package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The chaos invariant: thousands of concurrent operations against
// fault-injecting backends — transient errors, latent sector errors, torn
// writes, transient read corruption, plus a mid-run disk failure and
// rebuild — and at the end the array must be parity-consistent with every
// acknowledged write readable byte-for-byte. make store-chaos runs this
// under the race detector.
//
// Fault placement is chosen so the run is collision-free by construction
// (single parity repairs at most one damaged unit per stripe): LSEs
// arrive on one designated disk only (a stripe holds at most one unit per
// disk), corruption is transient (a re-read clears it), torn writes
// return errors and are repaired by the engine's own retry, and the LSE
// disk is quiesced and scrubbed before it is failed — the real-world
// "scrub before rebuild" discipline, because a latent error discovered on
// a survivor mid-rebuild is genuine data loss.

const chaosLSEDisk = 3

func chaosSeed(t *testing.T) int64 {
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", env, err)
		}
		return seed
	}
	return time.Now().UnixNano()
}

// recordChaosSeed makes the run reproducible: always logged, and written
// where CI can pick it up as a failure artifact.
func recordChaosSeed(t *testing.T, seed int64) {
	t.Logf("chaos seed: %d (rerun with CHAOS_SEED=%d)", seed, seed)
	if dir := os.Getenv("STORE_CHAOS_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			os.WriteFile(filepath.Join(dir, "chaos-seed.txt"),
				[]byte(fmt.Sprintf("CHAOS_SEED=%d\n", seed)), 0o644)
		}
	}
}

func chaosRates(disk int) FaultConfig {
	cfg := FaultConfig{
		TransientRate: 0.02,
		TornWriteRate: 0.015,
		CorruptRate:   0.008,
	}
	if disk == chaosLSEDisk {
		cfg.LSERate = 0.003
	}
	return cfg
}

func TestChaosAcknowledgedWritesSurviveFaultsAndRebuild(t *testing.T) {
	seed := chaosSeed(t)
	recordChaosSeed(t, seed)

	const (
		workers = 12
		c       = 7
		g       = 3
	)
	mk := func(disk int) FaultConfig {
		cfg := chaosRates(disk)
		cfg.Seed = seed + int64(disk)
		return cfg
	}
	s, fds := faultStore(t, c, g, 64, 512, mk, Config{
		Retries:      6,
		RetryBackoff: 100 * time.Microsecond,
		// Run the chaos mix through the parallel fast path: fanned
		// survivor gathers and commits racing 12 clients, a sharded
		// rebuild, and group-committed intent marks, all under -race.
		IOWorkers:      8,
		RebuildWorkers: 4,
	})

	// Contiguous ownership: worker w owns units [lo, hi) and is the only
	// writer there, so its private version ledger is the ground truth for
	// "acknowledged write" verification.
	per := s.DataUnits() / workers
	if per < 4 {
		t.Fatalf("only %d units per worker; geometry too small", per)
	}

	var (
		ops  atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	versions := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		lo := int64(w) * per
		hi := lo + per
		if w == workers-1 {
			hi = s.DataUnits()
		}
		vers := make([]uint64, hi-lo)
		versions[w] = vers
		wg.Add(1)
		go func(w int, lo, hi int64, vers []uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*31 + int64(w)))
			buf := make([]byte, s.UnitSize())
			span := hi - lo
			// Settle every owned unit at version 1 so reads always have a
			// known pattern to check against.
			for u := lo; u < hi; u++ {
				fill(buf, u, 1)
				if err := s.WriteUnit(u, buf); err != nil {
					t.Errorf("worker %d: settle WriteUnit(%d): %v", w, u, err)
					return
				}
				vers[u-lo] = 1
			}
			for !stop.Load() {
				u := lo + rng.Int63n(span)
				switch p := rng.Intn(100); {
				case p < 50: // overwrite one unit
					v := vers[u-lo] + 1
					fill(buf, u, v)
					if err := s.WriteUnit(u, buf); err != nil {
						t.Errorf("worker %d: WriteUnit(%d): %v", w, u, err)
						return
					}
					vers[u-lo] = v
				case p < 85: // read one unit, verify last acknowledged version
					if err := s.ReadUnit(u, buf); err != nil {
						t.Errorf("worker %d: ReadUnit(%d): %v", w, u, err)
						return
					}
					if !patternMatches(buf, u, vers[u-lo]) {
						t.Errorf("worker %d: unit %d does not match acknowledged version %d", w, u, vers[u-lo])
						return
					}
				default: // range ops within the owned block
					n := 2 + rng.Int63n(3)
					if u+n > hi {
						u = hi - n
					}
					rbuf := make([]byte, int(n)*s.UnitSize())
					if rng.Intn(2) == 0 {
						if err := s.ReadRange(u, rbuf); err != nil {
							t.Errorf("worker %d: ReadRange(%d,%d): %v", w, u, n, err)
							return
						}
						for i := int64(0); i < n; i++ {
							if !patternMatches(rbuf[i*int64(s.UnitSize()):(i+1)*int64(s.UnitSize())], u+i, vers[u+i-lo]) {
								t.Errorf("worker %d: range unit %d stale", w, u+i)
								return
							}
						}
					} else {
						for i := int64(0); i < n; i++ {
							fill(rbuf[i*int64(s.UnitSize()):(i+1)*int64(s.UnitSize())], u+i, vers[u+i-lo]+1)
						}
						if err := s.WriteRange(u, rbuf); err != nil {
							t.Errorf("worker %d: WriteRange(%d,%d): %v", w, u, n, err)
							return
						}
						for i := int64(0); i < n; i++ {
							vers[u+i-lo]++
						}
					}
				}
				ops.Add(1)
			}
		}(w, lo, hi, vers)
	}

	waitOps := func(target int64, what string) {
		deadline := time.Now().Add(2 * time.Minute)
		for ops.Load() < target && !t.Failed() {
			if time.Now().After(deadline) {
				stop.Store(true)
				wg.Wait()
				t.Fatalf("timed out waiting for %s (%d/%d ops)", what, ops.Load(), target)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 1: healthy chaos.
	waitOps(4000, "healthy chaos phase")

	// Phase 2: quiesce the LSE source and scrub, so no latent damage can
	// sit on a survivor when the disk fails.
	lseCfg := chaosRates(chaosLSEDisk)
	lseCfg.LSERate = 0
	fds[chaosLSEDisk].SetConfig(lseCfg)
	if _, err := s.Scrub(); err != nil {
		t.Fatalf("pre-failure scrub: %v", err)
	}

	// Phase 3: fail the (former) LSE disk under load, hold a degraded
	// window, then rebuild onto a replacement that injects faults too.
	if !t.Failed() {
		if err := s.Fail(chaosLSEDisk); err != nil {
			t.Fatalf("Fail(%d): %v", chaosLSEDisk, err)
		}
		base := s.Stats().DegradedReads
		deadline := time.Now().Add(2 * time.Minute)
		for s.Stats().DegradedReads < base+20 && !t.Failed() {
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		replCfg := FaultConfig{Seed: seed + 100, TransientRate: 0.02, TornWriteRate: 0.015}
		repl := NewFaultDisk(NewMemDisk(s.unitsPerDisk, s.UnitSize()), replCfg)
		if err := s.Rebuild(repl); err != nil {
			t.Fatalf("Rebuild under chaos: %v", err)
		}
		fds[chaosLSEDisk] = repl
	}

	// Phase 4: healthy again, keep the pressure on a little longer.
	waitOps(ops.Load()+1000, "post-rebuild phase")

	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Quiesce everything and verify the invariant.
	for _, fd := range fds {
		fd.Quiesce()
	}
	if _, err := s.Scrub(); err != nil {
		t.Fatalf("final scrub: %v", err)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatalf("CheckParity after chaos: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync after chaos: %v", err)
	}
	buf := make([]byte, s.UnitSize())
	for w := 0; w < workers; w++ {
		lo := int64(w) * per
		for i, v := range versions[w] {
			u := lo + int64(i)
			if err := s.ReadUnit(u, buf); err != nil {
				t.Fatalf("final ReadUnit(%d): %v", u, err)
			}
			if !patternMatches(buf, u, v) {
				t.Fatalf("unit %d lost acknowledged version %d", u, v)
			}
		}
	}

	st := s.Stats()
	t.Logf("chaos: ops=%d retries=%d healed=%d media=%d checksum=%d degradedReads=%d rebuilt=%d scrubRepairs=%d",
		ops.Load(), st.Retries, st.HealedUnits, st.MediaErrors, st.ChecksumErrors,
		st.DegradedReads, st.RebuiltUnits, st.ScrubUnitRepairs)
	if st.Retries == 0 {
		t.Error("chaos run exercised no retries")
	}
	if st.DegradedReads == 0 {
		t.Error("chaos run exercised no degraded reads")
	}
	if st.Rebuilds != 1 {
		t.Errorf("Rebuilds = %d, want 1", st.Rebuilds)
	}
}

// patternMatches reports whether buf holds fill(unit, version); version 0
// means never written, i.e. all zeroes.
func patternMatches(buf []byte, unit int64, version uint64) bool {
	if version == 0 {
		for _, b := range buf {
			if b != 0 {
				return false
			}
		}
		return true
	}
	want := make([]byte, len(buf))
	fill(want, unit, version)
	for i := range buf {
		if buf[i] != want[i] {
			return false
		}
	}
	return true
}
