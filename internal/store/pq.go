package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"declust/internal/gf256"
	"declust/internal/layout"
)

// This file is the P+Q (RAID-6) engine: the code paths a store takes when
// its layout carries two parity units per stripe. P is the plain XOR of
// the stripe's data units; Q is the GF(2^8) Reed–Solomon sum Σ g^d·data_d,
// with d the unit's data ordinal within the stripe (layout.DataOrdinal).
// Together they correct any two erasures — two lost disks, or one lost
// disk plus one damaged unit — where single parity corrects one.
//
// The single-parity paths elsewhere in the package are untouched: every
// entry point (reconstruct, commit, scrub, check) dispatches here only
// when s.parities == 2, so a Parities:1 store runs the exact code it ran
// before this file existed.

// pqDamagedError reports a unit the solver needed but found damaged
// (media error or checksum mismatch). Callers holding the write lock may
// absorb it as an additional erasure; read-lock callers surface the cause
// so the read escalates to healRead.
type pqDamagedError struct {
	j     int
	loc   layout.Loc
	cause error
}

func (e *pqDamagedError) Error() string {
	return fmt.Sprintf("store: unit %v is damaged: %v", e.loc, e.cause)
}

// pqErasure is one unreadable position the solver must compute.
type pqErasure struct {
	j    int
	loc  layout.Loc
	out  []byte  // receives the solved contents (unitSize)
	buf  *[]byte // pooled backing for out when the caller supplied none
	heal bool    // damaged in place (not lost): rewrite after solving
}

// pqFree returns the pooled buffers of a solved erasure list.
func (s *Store) pqFree(list []pqErasure) {
	for i := range list {
		if list[i].buf != nil {
			s.putBuf(list[i].buf)
		}
	}
}

// pqLostErasures lists the stripe's lost positions as erasures. The unit
// at want (if lost) writes into wantOut; other lost units solve into
// pooled scratch. A third lost unit returns ErrUnrecoverable.
func (s *Store) pqLostErasures(st *diskState, stripe int64, want layout.Loc, wantOut []byte) ([]pqErasure, error) {
	g := s.lay.G()
	var list []pqErasure
	for j := 0; j < g; j++ {
		u := s.lay.Unit(stripe, j)
		if !st.lost(u) {
			continue
		}
		if len(list) == 2 {
			s.pqFree(list)
			return nil, fmt.Errorf("%w: three lost units in stripe %d", ErrUnrecoverable, stripe)
		}
		e := pqErasure{j: j, loc: u}
		if u == want {
			e.out = wantOut
		} else {
			e.buf = s.getBuf()
			e.out = (*e.buf)[:s.unitSize]
		}
		list = append(list, e)
	}
	return list, nil
}

// pqSolveOnce reads the stripe's units outside the erased set — only the
// ones the erasure pattern needs — and computes each erased position's
// contents into its out buffer. Reads are plain (no healing): a damaged
// unit returns *pqDamagedError for the caller to absorb or escalate, and
// a lost unit outside the erased set returns *lostUnitError. Caller holds
// at least the stripe's read lock.
func (s *Store) pqSolveOnce(st *diskState, stripe int64, list []pqErasure) error {
	g := s.lay.G()
	k := g - 2
	pPos := layout.ParityPosOf(s.lay, stripe, 0)
	qPos := layout.ParityPosOf(s.lay, stripe, 1)

	// Classify the erasures: data ordinals (ascending), P, Q.
	eData := [2]int{-1, -1}
	var eDataOut [2][]byte
	nd := 0
	eP, eQ := false, false
	var pOut, qOut []byte
	for i := range list {
		switch list[i].j {
		case pPos:
			eP, pOut = true, list[i].out
		case qPos:
			eQ, qOut = true, list[i].out
		default:
			d := layout.DataOrdinal(s.lay, stripe, list[i].j)
			eData[nd], eDataOut[nd] = d, list[i].out
			nd++
		}
	}
	if nd == 2 && eData[0] > eData[1] {
		eData[0], eData[1] = eData[1], eData[0]
		eDataOut[0], eDataOut[1] = eDataOut[1], eDataOut[0]
	}

	// Which parities the decode needs: one erased data unit solves through
	// P when P survives (the cheap XOR path) and through Q otherwise; two
	// erased data units need both.
	needP := !eP && nd >= 1
	needQ := !eQ && (nd == 2 || (nd == 1 && eP))
	useQ := eQ || needQ

	phys := s.getBuf()
	accP := s.getBuf()
	accQ := s.getBuf()
	pU := s.getBuf()
	qU := s.getBuf()
	defer s.putBuf(phys)
	defer s.putBuf(accP)
	defer s.putBuf(accQ)
	defer s.putBuf(pU)
	defer s.putBuf(qU)
	px := (*accP)[:s.unitSize] // XOR of the read data units
	qx := (*accQ)[:s.unitSize] // Σ g^d·(read data unit d)
	zeroBytes(px)
	zeroBytes(qx)

	// Gather every read the erasure pattern needs: the surviving data
	// units, plus whichever parities the decode uses. The parallel store
	// fans the reads across idle I/O workers — the two-erasure decode is
	// as wide as the degraded read it serves — and folds each result
	// under a lock; both sums are order-independent, so the answer is
	// bit-identical however the reads land.
	type gatherItem struct {
		j int
		d int // data ordinal, or -1 for a parity unit
	}
	items := make([]gatherItem, 0, k+2)
	for d := 0; d < k; d++ {
		if d == eData[0] || d == eData[1] {
			continue
		}
		items = append(items, gatherItem{j: layout.DataPos(s.lay, stripe, d), d: d})
	}
	if needP {
		items = append(items, gatherItem{j: pPos, d: -1})
	}
	if needQ {
		items = append(items, gatherItem{j: qPos, d: -1})
	}
	pData := (*pU)[:s.unitSize]
	qData := (*qU)[:s.unitSize]
	fold := func(it gatherItem, data []byte) {
		switch {
		case it.d >= 0:
			xorInto(px, data)
			if useQ {
				gf256.MulAddSlice(qx, data, gf256.Exp(it.d))
			}
		case it.j == pPos:
			copy(pData, data)
		default:
			copy(qData, data)
		}
	}
	if s.ioWorkers == 1 {
		tmp := (*phys)[:s.unitSize] // reads land here, then fold
		for _, it := range items {
			u := s.lay.Unit(stripe, it.j)
			if st.lost(u) {
				return &lostUnitError{u: u}
			}
			if err := s.readPhys(st.disk(u), u.Disk, u.Offset, *phys); err != nil {
				if needsHeal(err) {
					return &pqDamagedError{j: it.j, loc: u, cause: err}
				}
				return err
			}
			fold(it, tmp)
		}
	} else {
		var mu sync.Mutex
		var damaged []*pqDamagedError
		err := s.fanOut(len(items), func(i int) error {
			it := items[i]
			u := s.lay.Unit(stripe, it.j)
			if st.lost(u) {
				return &lostUnitError{u: u}
			}
			b := s.getBuf()
			defer s.putBuf(b)
			if err := s.readPhys(st.disk(u), u.Disk, u.Offset, *b); err != nil {
				if needsHeal(err) {
					mu.Lock()
					damaged = append(damaged, &pqDamagedError{j: it.j, loc: u, cause: err})
					mu.Unlock()
					return nil
				}
				return err
			}
			mu.Lock()
			fold(it, (*b)[:s.unitSize])
			mu.Unlock()
			return nil
		})
		if err != nil {
			return err
		}
		if len(damaged) > 0 {
			// Report the lowest position so absorb-and-retry callers heal
			// deterministically whatever order the reads completed in.
			sort.Slice(damaged, func(a, b int) bool { return damaged[a].j < damaged[b].j })
			return damaged[0]
		}
	}

	switch nd {
	case 0:
		// Only parity erased: recompute from data.
		if eP {
			copy(pOut, px)
		}
		if eQ {
			copy(qOut, qx)
		}
	case 1:
		x, dx := eData[0], eDataOut[0]
		if !eP {
			// Through P: d_x = P ⊕ (XOR of the other data units).
			copy(dx, px)
			xorInto(dx, pData)
		} else {
			// P erased too — through Q: d_x = g^(−x)·(Q ⊕ Σ_{d≠x} g^d·d_d).
			copy(dx, qx)
			xorInto(dx, qData)
			gf256.MulSlice(dx, dx, gf256.Exp(-x))
			// And P from the now-complete data.
			copy(pOut, px)
			xorInto(pOut, dx)
		}
		if eQ {
			copy(qOut, qx)
			gf256.MulAddSlice(qOut, dx, gf256.Exp(x))
		}
	case 2:
		// Two erased data units x < y: with every surviving data unit's
		// contribution removed, Pxy = d_x ⊕ d_y and Qxy = g^x·d_x ⊕ g^y·d_y;
		// gf256.TwoErasureCoeffs gives d_y = a·Pxy ⊕ b·Qxy, d_x = d_y ⊕ Pxy.
		x, y := eData[0], eData[1]
		xorInto(px, pData) // px is now Pxy
		xorInto(qx, qData) // qx is now Qxy
		a, b := gf256.TwoErasureCoeffs(x, y)
		dx, dy := eDataOut[0], eDataOut[1]
		gf256.MulSlice(dy, px, a)
		gf256.MulAddSlice(dy, qx, b)
		copy(dx, dy)
		xorInto(dx, px)
	}
	return nil
}

// pqReconstructLocked is reconstructLocked's P+Q arm: loc (lost) is
// decoded from the stripe's survivors under at least the read lock.
// Damaged survivors are reported (needsHeal), not repaired.
func (s *Store) pqReconstructLocked(st *diskState, loc layout.Loc, dst []byte) error {
	stripe, _ := s.lay.Locate(loc)
	list, err := s.pqLostErasures(st, stripe, loc, dst)
	if err != nil {
		return err
	}
	defer s.pqFree(list)
	if err := s.pqSolveOnce(st, stripe, list); err != nil {
		var dmg *pqDamagedError
		if errors.As(err, &dmg) {
			return dmg.cause // escalates to healRead, which may absorb it
		}
		var le *lostUnitError
		if errors.As(err, &le) {
			return fmt.Errorf("%w: three lost units in one stripe (%v, %v)", ErrUnrecoverable, loc, le.u)
		}
		return err
	}
	return nil
}

// pqRecoverInto computes unit u's contents from the rest of its stripe
// under the stripe's WRITE lock: u and every lost unit of the stripe are
// erased, and one more damaged unit discovered along the way is absorbed
// as a second erasure — healed in place — when the budget allows. It is
// the P+Q counterpart of xorOthersInto (heals where that one gives up).
func (s *Store) pqRecoverInto(st *diskState, u layout.Loc, out []byte) error {
	stripe, uj := s.lay.Locate(u)
	list, err := s.pqLostErasures(st, stripe, u, out)
	if err != nil {
		return err
	}
	defer func() { s.pqFree(list) }()
	if !st.lost(u) {
		// u is damaged in place (a healing read), not lost: erase it too.
		// Its slot still serves it, so the caller rewrites it after this
		// returns — no heal flag here.
		if len(list) == 2 {
			return fmt.Errorf("%w: %v is damaged and units %v, %v are lost",
				ErrUnrecoverable, u, list[0].loc, list[1].loc)
		}
		list = append(list, pqErasure{j: uj, loc: u, out: out})
	}
	for {
		err := s.pqSolveOnce(st, stripe, list)
		if err == nil {
			break
		}
		var dmg *pqDamagedError
		if errors.As(err, &dmg) {
			if len(list) >= 2 {
				return fmt.Errorf("%w: %v and %v are both unreadable: %v",
					ErrUnrecoverable, list[0].loc, dmg.loc, dmg.cause)
			}
			// Budget left: absorb the damaged unit as a second erasure and
			// re-solve; its reconstructed contents heal it in place below.
			s.countHeal(dmg.cause)
			s.scoreDiskError(dmg.loc.Disk)
			buf := s.getBuf()
			list = append(list, pqErasure{
				j: dmg.j, loc: dmg.loc,
				out: (*buf)[:s.unitSize], buf: buf,
				heal: true,
			})
			continue
		}
		var le *lostUnitError
		if errors.As(err, &le) {
			return fmt.Errorf("%w: %v is unreadable and %v is lost", ErrUnrecoverable, u, le.u)
		}
		return err
	}
	for i := range list {
		if !list[i].heal {
			continue
		}
		e := &list[i]
		if werr := s.writeDataUnit(st.disk(e.loc), e.loc.Disk, e.loc.Offset, e.out); werr == nil {
			s.healedUnits.Add(1)
		} else {
			s.scoreDiskError(e.loc.Disk)
		}
	}
	return nil
}

// commitStripePQ is commitStripeLocked's P+Q arm: commit new contents for
// one or more data units of a stripe, maintaining both parity equations.
// Caller holds the stripe's write lock and the region's intent mark.
//
// The write paths mirror the single-parity engine, one parity heavier:
//
//   - large write (all data units): P and Q computed fresh, no pre-reads;
//   - every written unit readable: delta RMW — read old data and old
//     parities, fold old⊕new into P and g^d·(old⊕new) into Q (the
//     six-access small write: read D,P,Q + write D,P,Q);
//   - a written unit lost: fold forward — every data unit's new value
//     (written new, surviving read, lost-unwritten decoded from the old
//     parities) rebuilds P and Q from scratch;
//   - a lost parity unit is simply not written (its rebuild recomputes
//     it); with both parities lost the data writes go through alone.
func (s *Store) commitStripePQ(stripe int64, locs []layout.Loc, datas [][]byte) error {
	st := s.st.Load()
	g := s.lay.G()
	k := g - 2
	pLoc := layout.ParityLocOf(s.lay, stripe, 0)
	qLoc := layout.ParityLocOf(s.lay, stripe, 1)
	pLost := st.lost(pLoc)
	qLost := st.lost(qLoc)

	if pLost && qLost {
		// Both parities lost: the two failures are this stripe's P and Q
		// disks, so every data unit is live — plain data writes (§7), and
		// the rebuilds recompute both parities.
		if len(locs) == 1 {
			return s.writeDataUnit(st.disk(locs[0]), locs[0].Disk, locs[0].Offset, datas[0])
		}
		return s.fanOut(len(locs), func(i int) error {
			return s.writeDataUnit(st.disk(locs[i]), locs[i].Disk, locs[i].Offset, datas[i])
		})
	}

	// Map the stripe's data ordinals: location, which write (if any)
	// covers it, and whether it is lost.
	dloc := make([]layout.Loc, k)
	wIdx := make([]int, k)
	lost := make([]bool, k)
	writtenLost := false
	for d := 0; d < k; d++ {
		u := s.lay.Unit(stripe, layout.DataPos(s.lay, stripe, d))
		dloc[d] = u
		wIdx[d] = -1
		lost[d] = st.lost(u)
		for i := range locs {
			if locs[i] == u {
				wIdx[d] = i
				if lost[d] {
					writtenLost = true
				}
				break
			}
		}
	}

	pBuf := s.getBuf()
	qBuf := s.getBuf()
	defer s.putBuf(pBuf)
	defer s.putBuf(qBuf)
	pData := (*pBuf)[:s.unitSize]
	qData := (*qBuf)[:s.unitSize]

	switch {
	case len(locs) == k:
		// Large-write optimization: parity from the new contents alone.
		zeroBytes(pData)
		zeroBytes(qData)
		for d := 0; d < k; d++ {
			xorInto(pData, datas[wIdx[d]])
			if !qLost {
				gf256.MulAddSlice(qData, datas[wIdx[d]], gf256.Exp(d))
			}
		}
	case !writtenLost:
		// Delta read-modify-write: every written unit's old contents are
		// readable, so P' = P ⊕ Σ(old⊕new) and Q' = Q ⊕ Σ g^d·(old⊕new).
		// Lost unwritten units don't disturb the deltas. Pre-reads heal
		// damaged units in place — the write lock is already held.
		if !pLost {
			if err := s.readUnitHealing(st, pLoc, pData); err != nil {
				return err
			}
		}
		if !qLost {
			if err := s.readUnitHealing(st, qLoc, qData); err != nil {
				return err
			}
		}
		oBuf := s.getBuf()
		oData := (*oBuf)[:s.unitSize]
		for d := 0; d < k; d++ {
			if wIdx[d] < 0 {
				continue
			}
			if err := s.readUnitHealing(st, dloc[d], oData); err != nil {
				s.putBuf(oBuf)
				return err
			}
			xorInto(oData, datas[wIdx[d]]) // oData is now the delta
			if !pLost {
				xorInto(pData, oData)
			}
			if !qLost {
				gf256.MulAddSlice(qData, oData, gf256.Exp(d))
			}
		}
		s.putBuf(oBuf)
	default:
		// A lost unit is being written: its old contents are unreadable,
		// so fold forward — rebuild P and Q from every data unit's new
		// value. Lost unwritten units contribute their decoded old value
		// (the old parities still encode it).
		zeroBytes(pData)
		zeroBytes(qData)
		fold := func(d int, b []byte) {
			if !pLost {
				xorInto(pData, b)
			}
			if !qLost {
				gf256.MulAddSlice(qData, b, gf256.Exp(d))
			}
		}
		for d := 0; d < k; d++ {
			if wIdx[d] >= 0 {
				fold(d, datas[wIdx[d]])
			}
		}
		lBuf := s.getBuf()
		lData := (*lBuf)[:s.unitSize]
		for d := 0; d < k; d++ {
			if wIdx[d] >= 0 {
				continue
			}
			if lost[d] {
				// Unwritten and lost: decode its (unchanged) value from
				// the old parities and the other survivors.
				if err := s.pqRecoverInto(st, dloc[d], lData); err != nil {
					s.putBuf(lBuf)
					return err
				}
			} else if err := s.readUnitHealing(st, dloc[d], lData); err != nil {
				s.putBuf(lBuf)
				return err
			}
			fold(d, lData)
		}
		s.putBuf(lBuf)
	}

	// Commit: data writes (redirected to a replacement or folded when
	// lost), then the surviving parities.
	writes := make([]func() error, 0, len(locs)+2)
	for i := range locs {
		i := i
		isLost := false
		for d := 0; d < k; d++ {
			if wIdx[d] == i {
				isLost = lost[d]
				break
			}
		}
		writes = append(writes, func() error {
			return s.commitOneLocked(st, locs[i], datas[i], isLost)
		})
	}
	if !pLost {
		writes = append(writes, func() error {
			return s.writeStamped(st.disk(pLoc), pLoc.Disk, pLoc.Offset, *pBuf)
		})
	}
	if !qLost {
		writes = append(writes, func() error {
			return s.writeStamped(st.disk(qLoc), qLoc.Disk, qLoc.Offset, *qBuf)
		})
	}
	if len(writes) == 1 {
		return writes[0]()
	}
	return s.fanOut(len(writes), func(i int) error { return writes[i]() })
}

// checkParityPQ verifies both parity equations of every stripe at
// quiesce: XOR over data ⊕ P is zero, and Σ g^d·data_d ⊕ Q is zero.
// Stripes with a lost unit are skipped, as in the single-parity check.
func (s *Store) checkParityPQ() error {
	g := s.lay.G()
	return s.fanOut(int(s.numStripes), func(i int) error {
		stripe := int64(i)
		pPos := layout.ParityPosOf(s.lay, stripe, 0)
		qPos := layout.ParityPosOf(s.lay, stripe, 1)
		buf := s.getBuf()
		accP := s.getBuf()
		accQ := s.getBuf()
		defer s.putBuf(buf)
		defer s.putBuf(accP)
		defer s.putBuf(accQ)
		px := (*accP)[:s.unitSize]
		qx := (*accQ)[:s.unitSize]
		zeroBytes(px)
		zeroBytes(qx)
		data := (*buf)[:s.unitSize]
		s.locks.rlock(stripe)
		defer s.locks.runlock(stripe)
		st := s.st.Load()
		for j := 0; j < g; j++ {
			u := s.lay.Unit(stripe, j)
			if st.lost(u) {
				return nil // skipped: degraded reads exercise its consistency
			}
			if err := s.readPhys(st.disk(u), u.Disk, u.Offset, *buf); err != nil {
				return fmt.Errorf("store: stripe %d: %w", stripe, err)
			}
			switch j {
			case pPos:
				xorInto(px, data)
			case qPos:
				xorInto(qx, data)
			default:
				d := layout.DataOrdinal(s.lay, stripe, j)
				xorInto(px, data)
				gf256.MulAddSlice(qx, data, gf256.Exp(d))
			}
		}
		for _, b := range px {
			if b != 0 {
				return fmt.Errorf("store: stripe %d P parity inconsistent", stripe)
			}
		}
		for _, b := range qx {
			if b != 0 {
				return fmt.Errorf("store: stripe %d Q parity inconsistent", stripe)
			}
		}
		return nil
	})
}

// resyncStripePQ is resyncStripe's P+Q arm: verify one stripe's checksums
// and both parity equations, repairing up to two damaged units from the
// survivors, or rewriting whichever parity fails its equation (the
// lost-write signature). No unit of the stripe may be lost.
func (s *Store) resyncStripePQ(st *diskState, stripe int64) (stripeFix, error) {
	g := s.lay.G()
	pPos := layout.ParityPosOf(s.lay, stripe, 0)
	qPos := layout.ParityPosOf(s.lay, stripe, 1)

	phys := s.getBuf()
	accP := s.getBuf()
	accQ := s.getBuf()
	pU := s.getBuf()
	qU := s.getBuf()
	defer s.putBuf(phys)
	defer s.putBuf(accP)
	defer s.putBuf(accQ)
	defer s.putBuf(pU)
	defer s.putBuf(qU)
	px := (*accP)[:s.unitSize]
	qx := (*accQ)[:s.unitSize]
	zeroBytes(px)
	zeroBytes(qx)
	data := (*phys)[:s.unitSize]

	var bad []pqErasure
	var badCause error
	defer func() { s.pqFree(bad) }()
	for j := 0; j < g; j++ {
		u := s.lay.Unit(stripe, j)
		err := s.readPhys(st.disk(u), u.Disk, u.Offset, *phys)
		if err == nil {
			switch j {
			case pPos:
				copy((*pU)[:s.unitSize], data)
			case qPos:
				copy((*qU)[:s.unitSize], data)
			default:
				xorInto(px, data)
				gf256.MulAddSlice(qx, data, gf256.Exp(layout.DataOrdinal(s.lay, stripe, j)))
			}
			continue
		}
		if !needsHeal(err) {
			return fixNone, err
		}
		if len(bad) == 2 {
			return fixNone, fmt.Errorf("%w: stripe %d units %v, %v and %v all damaged: %v",
				ErrUnrecoverable, stripe, bad[0].loc, bad[1].loc, u, err)
		}
		buf := s.getBuf()
		bad = append(bad, pqErasure{j: j, loc: u, out: (*buf)[:s.unitSize], buf: buf, heal: true})
		if badCause == nil {
			badCause = err
		}
	}

	if len(bad) > 0 {
		// Solve the damaged units from the clean remainder and rewrite
		// them. pqSolveOnce re-reads the survivors; a unit failing now
		// that read cleanly above counts as a third erasure — give up.
		if err := s.pqSolveOnce(st, stripe, bad); err != nil {
			var dmg *pqDamagedError
			if errors.As(err, &dmg) {
				return fixNone, fmt.Errorf("%w: stripe %d: %v also damaged: %v",
					ErrUnrecoverable, stripe, dmg.loc, dmg.cause)
			}
			return fixNone, err
		}
		for i := range bad {
			e := &bad[i]
			s.countHeal(badCause)
			s.scoreDiskError(e.loc.Disk)
			if err := s.writeDataUnit(st.disk(e.loc), e.loc.Disk, e.loc.Offset, e.out); err != nil {
				return fixNone, fmt.Errorf("store: rewriting damaged unit %v: %w", e.loc, err)
			}
			s.healedUnits.Add(1)
		}
		return fixUnit, nil
	}

	// All units individually valid: both equations must balance; a side
	// that does not gets its parity recomputed from data (trusting data
	// over parity, as the single-parity resync does).
	fix := fixNone
	if !bytesEqual(px, (*pU)[:s.unitSize]) {
		u := s.lay.Unit(stripe, pPos)
		copy((*accP)[:s.unitSize], px)
		if err := s.writeStamped(st.disk(u), u.Disk, u.Offset, *accP); err != nil {
			return fixNone, fmt.Errorf("store: rewriting parity %v: %w", u, err)
		}
		fix = fixParity
	}
	if !bytesEqual(qx, (*qU)[:s.unitSize]) {
		u := s.lay.Unit(stripe, qPos)
		copy((*accQ)[:s.unitSize], qx)
		if err := s.writeStamped(st.disk(u), u.Disk, u.Offset, *accQ); err != nil {
			return fixNone, fmt.Errorf("store: rewriting parity %v: %w", u, err)
		}
		fix = fixParity
	}
	return fix, nil
}

// bytesEqual reports a == b for equal-length slices.
func bytesEqual(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
