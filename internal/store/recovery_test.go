package store

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"declust/internal/layout"
)

// The kill-during-write torture test: a child process (this test binary
// re-executed) opens a file-backed store with a file intent log, settles
// every unit at version 1, syncs, then rewrites units to version 2 in a
// loop — and the parent SIGKILLs it mid-stream. The reopened store must
// come back parity-consistent with every unit reading as exactly version
// 1 or version 2.

const crashChildEnv = "STORE_CRASH_CHILD_DIR"

func crashGeometry(t testing.TB) (layout.Layout, int64) {
	lay := testLayout(t, 5, 5)
	return lay, layout.UsableUnitsPerDisk(lay, 40)
}

func openCrashStore(dir string, lay layout.Layout, usable int64) (*Store, error) {
	disks, err := OpenFileDisks(dir, lay.Disks(), usable, 512)
	if err != nil {
		return nil, err
	}
	s, err := New(Config{
		Layout:       lay,
		UnitsPerDisk: 40,
		UnitSize:     512,
		Disks:        disks,
		Intent:       OpenFileIntent(filepath.Join(dir, "intent.log")),
	})
	if err != nil {
		for _, d := range disks {
			d.Close()
		}
	}
	return s, err
}

// TestCrashChildProcess is the child body; it only runs when re-executed
// by TestCrashDuringWriteRecovers and loops until killed.
func TestCrashChildProcess(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("child process of TestCrashDuringWriteRecovers")
	}
	lay, usable := crashGeometry(t)
	s, err := openCrashStore(dir, lay, usable)
	if err != nil {
		t.Fatal(err)
	}
	fillAll(t, s, 1)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	fmt.Println("CRASH_CHILD_READY")
	os.Stdout.Sync()
	buf := make([]byte, s.UnitSize())
	for {
		for n := int64(0); n < s.DataUnits(); n++ {
			fill(buf, n, 2)
			if err := s.WriteUnit(n, buf); err != nil {
				t.Fatalf("child WriteUnit(%d): %v", n, err)
			}
		}
	}
}

func TestCrashDuringWriteRecovers(t *testing.T) {
	if os.Getenv(crashChildEnv) != "" {
		t.Skip("already the child")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashChildProcess$", "-test.v")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Wait for the child to settle version 1 and start overwriting.
	ready := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if sc.Text() == "CRASH_CHILD_READY" {
				ready <- nil
				go io.Copy(io.Discard, stdout) // keep the pipe drained
				return
			}
		}
		ready <- fmt.Errorf("child exited before READY: %v", sc.Err())
	}()
	select {
	case err := <-ready:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("child never came up")
	}

	// Let it get some version-2 writes in flight, then kill it cold.
	time.Sleep(50 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	lay, usable := crashGeometry(t)
	s, err := openCrashStore(dir, lay, usable)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s.Close()

	st := s.Stats()
	t.Logf("recovery: resynced %d stripes, repaired %d", st.ResyncedStripes, st.ResyncRepairs)
	if st.ResyncedStripes == 0 {
		t.Fatal("child was killed mid-write but no intent region was dirty")
	}
	if err := s.CheckParity(); err != nil {
		t.Fatalf("CheckParity after crash recovery: %v", err)
	}
	got := make([]byte, s.UnitSize())
	v1 := make([]byte, s.UnitSize())
	v2 := make([]byte, s.UnitSize())
	for n := int64(0); n < s.DataUnits(); n++ {
		if err := s.ReadUnit(n, got); err != nil {
			t.Fatalf("ReadUnit(%d) after recovery: %v", n, err)
		}
		fill(v1, n, 1)
		fill(v2, n, 2)
		if !bytes.Equal(got, v1) && !bytes.Equal(got, v2) {
			t.Fatalf("unit %d holds neither version 1 nor version 2 after recovery", n)
		}
	}

	// A clean Sync+Close leaves nothing to recover next time.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := openCrashStore(dir, lay, usable)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().ResyncedStripes; got != 0 {
		t.Fatalf("clean reopen resynced %d stripes, want 0", got)
	}
}
