package store

import (
	"sync"
	"sync/atomic"
)

// The parallel I/O fast path. A Store's disks are independent devices, so
// every multi-unit operation — the G−1 survivor reads of a degraded or
// healing read, the pre-reads and commits of a parity update, the
// per-stripe jobs of a range operation, CheckParity's sweep — is a batch
// of accesses that can be in flight simultaneously. fanOut is the single
// primitive all of them use: it runs the items of one batch across a
// bounded set of helper goroutines drawn from the store's I/O pool, with
// the submitting goroutine always working too.
//
// The pool is deliberately opportunistic. Helpers are acquired with a
// non-blocking try, so a saturated store (every client already keeping a
// core and a disk busy) degrades to exactly the serial engine — no queue,
// no handoff latency, no deadlock — while an idle store (one client
// issuing a wide degraded read, a rebuild sweeping alone) gets the full
// fan-out. Because acquisition never blocks, nested fan-outs (a range
// operation's per-stripe job issuing a degraded read that itself gathers
// survivors) are safe: the inner batch simply runs inline when the pool's
// tokens are spent.
//
// Config.IOWorkers=1 disables the pool entirely; every batch then runs
// in submission order on the submitting goroutine, byte-identical to the
// serial engine (pinned by TestParallelMatchesSerial).

// ioPool bounds the helper goroutines a store may have in flight. Tokens
// are taken with a lock-free try-acquire; holders run exactly one batch
// and hand the token back.
type ioPool struct {
	free atomic.Int32
}

// tryAcquire claims up to want tokens without blocking and returns how
// many it got (possibly zero).
func (p *ioPool) tryAcquire(want int) int {
	for {
		f := p.free.Load()
		if f <= 0 || want <= 0 {
			return 0
		}
		n := int32(want)
		if n > f {
			n = f
		}
		if p.free.CompareAndSwap(f, f-n) {
			return int(n)
		}
	}
}

func (p *ioPool) release(n int) { p.free.Add(int32(n)) }

// fanBatch is one fan-out in flight: items are claimed by atomic counter
// so helpers and the submitter load-balance; the first error (lowest item
// index among those observed) wins and cancels the items not yet claimed.
type fanBatch struct {
	fn   func(int) error
	n    int64
	next atomic.Int64
	stop atomic.Bool
	mu   sync.Mutex
	errI int64
	err  error
	wg   sync.WaitGroup
}

func (b *fanBatch) run() {
	for !b.stop.Load() {
		i := b.next.Add(1) - 1
		if i >= b.n {
			return
		}
		if err := b.fn(int(i)); err != nil {
			b.mu.Lock()
			if b.err == nil || i < b.errI {
				b.err, b.errI = err, i
			}
			b.mu.Unlock()
			b.stop.Store(true)
			return
		}
	}
}

// fanOut runs fn(0), …, fn(n−1), fanning the calls across idle I/O pool
// helpers with the caller participating. When no helper is available (or
// the store is configured serial) the calls run in index order on the
// calling goroutine with the first error aborting the rest — the serial
// engine's exact behavior. With helpers, in-flight calls complete after
// an error but unclaimed ones are cancelled, and the returned error is
// the lowest-indexed one observed.
func (s *Store) fanOut(n int, fn func(int) error) error {
	want := n - 1
	if want > s.ioWorkers-1 {
		want = s.ioWorkers - 1
	}
	helpers := 0
	if want > 0 {
		helpers = s.pool.tryAcquire(want)
	}
	if helpers == 0 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	b := fanBatch{fn: fn, n: int64(n)}
	b.wg.Add(helpers)
	for h := 0; h < helpers; h++ {
		go func() {
			defer func() {
				s.pool.release(1)
				b.wg.Done()
			}()
			b.run()
		}()
	}
	b.run()
	b.wg.Wait()
	return b.err
}
