// Package fault is a deterministic, seed-driven fault injector for the
// simulated disk array. It models the three failure classes that dominate
// real array reliability (Thomasian, arXiv:1801.08873):
//
//   - full-disk failures, via exponential or Weibull lifetime sampling
//     (the lifecycle driver decides when to apply them);
//   - latent sector errors (LSEs), arriving per disk as a Poisson process
//     proportional to its capacity, discovered only when the sector is
//     next read, and healed when it is next written (remapping);
//   - transient request faults, an independent per-request timeout
//     probability; a retry draws a fresh outcome.
//
// Determinism contract: every random draw comes from per-slot RNG streams
// derived from one seed, and all injector activity rides the simulation
// engine's deterministic event order — the same seed and configuration
// produce byte-identical fault sequences. With zero rates the injector
// schedules no events and draws nothing, so a disabled injector leaves a
// simulation bit-for-bit identical to one with no injector at all.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"declust/internal/disk"
	"declust/internal/metrics"
	"declust/internal/sim"
)

// Config parameterizes an Injector.
type Config struct {
	// Seed drives every random draw. Distinct from the workload seed so
	// fault processes never perturb arrival processes.
	Seed int64
	// LSERatePerGBHour is the latent-sector-error arrival rate per GB of
	// disk capacity per simulated hour. Real drives sit around 1e-5 to
	// 1e-4; accelerated simulations use much larger values.
	LSERatePerGBHour float64
	// TransientRate is the probability that any one request times out.
	// Must be in [0, 0.9]: retries draw independently, so service always
	// terminates, but rates near 1 would make retry storms unbounded.
	TransientRate float64
	// TimeoutMS is the stall a timed-out request costs; 0 selects 50 ms.
	TimeoutMS float64
	// Tracer, when non-nil, receives an EvLSE event per arrival.
	Tracer metrics.Tracer
}

// Stats counts injector activity.
type Stats struct {
	LSEArrivals int64 // latent sector errors injected
	BadSectors  int64 // currently latent (injected, not yet healed)
	Healed      int64 // bad sectors cleared by writes
}

// Injector owns the fault state of every disk slot in one array.
type Injector struct {
	eng  *sim.Engine
	cfg  Config
	geom disk.Geometry

	rngs     []*rand.Rand
	bad      []map[int64]bool // per-slot latent sector set
	arrivals []sim.Timer      // pending LSE arrival per slot
	stopped  bool
	stats    Stats

	lseRatePerMS float64 // per-disk arrival rate, events per simulated ms
}

// New builds an injector for an array of `disks` slots of the given
// geometry. It schedules nothing until Start.
func New(eng *sim.Engine, geom disk.Geometry, disks int, cfg Config) (*Injector, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if disks <= 0 {
		return nil, fmt.Errorf("fault: %d disks", disks)
	}
	if cfg.LSERatePerGBHour < 0 {
		return nil, fmt.Errorf("fault: negative LSE rate %v", cfg.LSERatePerGBHour)
	}
	if cfg.TransientRate < 0 || cfg.TransientRate > 0.9 {
		return nil, fmt.Errorf("fault: transient rate %v outside [0, 0.9]", cfg.TransientRate)
	}
	if cfg.TimeoutMS == 0 {
		cfg.TimeoutMS = 50
	}
	if cfg.TimeoutMS < 0 {
		return nil, fmt.Errorf("fault: negative timeout %v ms", cfg.TimeoutMS)
	}
	gb := float64(geom.TotalSectors()) * float64(geom.BytesPerSector) / (1 << 30)
	in := &Injector{
		eng:          eng,
		cfg:          cfg,
		geom:         geom,
		rngs:         make([]*rand.Rand, disks),
		bad:          make([]map[int64]bool, disks),
		arrivals:     make([]sim.Timer, disks),
		lseRatePerMS: cfg.LSERatePerGBHour * gb / 3_600_000,
	}
	for i := range in.rngs {
		in.rngs[i] = rand.New(rand.NewSource(streamSeed(cfg.Seed, i)))
		in.bad[i] = make(map[int64]bool)
	}
	return in, nil
}

// streamSeed derives a well-mixed per-slot seed so neighboring slots get
// uncorrelated streams.
func streamSeed(seed int64, slot int) int64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(slot) + 1
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}

// TimeoutMS returns the configured transient stall.
func (in *Injector) TimeoutMS() float64 { return in.cfg.TimeoutMS }

// Stats returns a copy of the activity counters.
func (in *Injector) Stats() Stats { return in.stats }

// BadSectors reports the current latent error count on one slot.
func (in *Injector) BadSectors(slot int) int { return len(in.bad[slot]) }

// Start begins the per-slot LSE arrival processes. A zero LSE rate
// schedules nothing.
func (in *Injector) Start() {
	if in.lseRatePerMS <= 0 {
		return
	}
	in.stopped = false
	for slot := range in.bad {
		in.scheduleLSE(slot)
	}
}

// Stop cancels every pending arrival so the engine can drain. Latent
// errors already injected remain until healed.
func (in *Injector) Stop() {
	in.stopped = true
	for slot, tm := range in.arrivals {
		in.eng.Cancel(tm) // no-op on the zero Timer or a stale handle
		in.arrivals[slot] = sim.Timer{}
	}
}

func (in *Injector) scheduleLSE(slot int) {
	delay := in.rngs[slot].ExpFloat64() / in.lseRatePerMS
	in.arrivals[slot] = in.eng.Schedule(delay, func() {
		if in.stopped {
			return
		}
		sector := in.rngs[slot].Int63n(in.geom.TotalSectors())
		if !in.bad[slot][sector] {
			in.bad[slot][sector] = true
			in.stats.LSEArrivals++
			in.stats.BadSectors++
			if in.cfg.Tracer != nil {
				in.cfg.Tracer.Fault(metrics.FaultEvent{
					Ev: metrics.EvLSE, TMS: in.eng.Now(), Disk: slot, Sector: sector,
				})
			}
		}
		in.scheduleLSE(slot)
	})
}

// Hook returns the disk.FaultHook for one slot. Writes heal overlapping
// latent errors (sector remapping) before the transient draw, so a write
// never reports a media error; reads report one when any covered sector
// is latent.
func (in *Injector) Hook(slot int) disk.FaultHook {
	return func(start int64, count int, write bool) disk.Status {
		if write {
			in.heal(slot, start, count)
		}
		if in.cfg.TransientRate > 0 && in.rngs[slot].Float64() < in.cfg.TransientRate {
			return disk.Timeout
		}
		if !write && len(in.bad[slot]) > 0 {
			for s := start; s < start+int64(count); s++ {
				if in.bad[slot][s] {
					return disk.MediaError
				}
			}
		}
		return disk.OK
	}
}

func (in *Injector) heal(slot int, start int64, count int) {
	if len(in.bad[slot]) == 0 {
		return
	}
	for s := start; s < start+int64(count); s++ {
		if in.bad[slot][s] {
			delete(in.bad[slot], s)
			in.stats.BadSectors--
			in.stats.Healed++
		}
	}
}

// ResetDisk clears a slot's latent errors — call when a fresh drive is
// installed in it. The slot keeps its RNG stream: replacement changes
// which faults the new drive sees, not the determinism of the run.
func (in *Injector) ResetDisk(slot int) {
	n := int64(len(in.bad[slot]))
	in.stats.BadSectors -= n
	in.stats.Healed += n
	in.bad[slot] = make(map[int64]bool)
}

// LifetimeMS samples one disk lifetime in simulated milliseconds with the
// given mean. shape <= 0 or shape == 1 selects the exponential
// distribution; any other shape selects a Weibull with that shape and the
// scale matched to the mean (shape < 1 models infant mortality and
// clustered failures, shape > 1 wear-out).
func LifetimeMS(rng *rand.Rand, shape, meanMS float64) float64 {
	if shape <= 0 || shape == 1 {
		return rng.ExpFloat64() * meanMS
	}
	scale := meanMS / math.Gamma(1+1/shape)
	u := rng.Float64()
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}
