package fault

import (
	"math"
	"math/rand"
	"testing"

	"declust/internal/disk"
	"declust/internal/sim"
)

func testGeom() disk.Geometry { return disk.IBM0661() }

func newTestInjector(t *testing.T, cfg Config) (*sim.Engine, *Injector) {
	t.Helper()
	eng := sim.New()
	in, err := New(eng, testGeom(), 4, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng, in
}

func TestConfigValidation(t *testing.T) {
	eng := sim.New()
	cases := []Config{
		{TransientRate: -0.1},
		{TransientRate: 0.95},
		{LSERatePerGBHour: -1},
		{TimeoutMS: -5},
	}
	for _, cfg := range cases {
		if _, err := New(eng, testGeom(), 4, cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
	if _, err := New(eng, testGeom(), 0, Config{}); err == nil {
		t.Error("New accepted zero disks")
	}
}

func TestTimeoutDefault(t *testing.T) {
	_, in := newTestInjector(t, Config{})
	if got := in.TimeoutMS(); got != 50 {
		t.Errorf("default TimeoutMS = %v, want 50", got)
	}
	_, in = newTestInjector(t, Config{TimeoutMS: 12})
	if got := in.TimeoutMS(); got != 12 {
		t.Errorf("TimeoutMS = %v, want 12", got)
	}
}

// A zero-rate injector must schedule nothing: Start then drain should
// leave the clock at zero with no events processed.
func TestZeroRatesScheduleNothing(t *testing.T) {
	eng, in := newTestInjector(t, Config{Seed: 7})
	in.Start()
	eng.Run()
	if eng.Now() != 0 {
		t.Errorf("clock advanced to %v with zero fault rates", eng.Now())
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Errorf("stats = %+v, want zero", s)
	}
}

func TestLSEArrivalsAndStop(t *testing.T) {
	eng, in := newTestInjector(t, Config{Seed: 1, LSERatePerGBHour: 5000})
	in.Start()
	eng.RunUntil(3_600_000) // one simulated hour
	in.Stop()
	eng.Run() // must drain: no pending arrivals remain
	s := in.Stats()
	if s.LSEArrivals == 0 {
		t.Fatal("no LSE arrivals in an hour at a high rate")
	}
	if s.BadSectors != s.LSEArrivals-s.Healed {
		t.Errorf("BadSectors=%d, arrivals=%d healed=%d: inconsistent",
			s.BadSectors, s.LSEArrivals, s.Healed)
	}
	total := 0
	for slot := 0; slot < 4; slot++ {
		total += in.BadSectors(slot)
	}
	if int64(total) != s.BadSectors {
		t.Errorf("per-slot sum %d != BadSectors %d", total, s.BadSectors)
	}
}

// Same seed and config must produce the identical arrival sequence.
func TestLSEDeterminism(t *testing.T) {
	run := func() (float64, Stats, int) {
		eng, in := newTestInjector(t, Config{Seed: 42, LSERatePerGBHour: 2000})
		in.Start()
		eng.RunUntil(1_000_000)
		in.Stop()
		return eng.Now(), in.Stats(), in.BadSectors(2)
	}
	t1, s1, b1 := run()
	t2, s2, b2 := run()
	if t1 != t2 || s1 != s2 || b1 != b2 {
		t.Errorf("runs diverged: (%v,%+v,%d) vs (%v,%+v,%d)", t1, s1, b1, t2, s2, b2)
	}
}

func TestHookMediaErrorAndHeal(t *testing.T) {
	_, in := newTestInjector(t, Config{Seed: 3})
	in.bad[1][100] = true
	in.stats.LSEArrivals, in.stats.BadSectors = 1, 1

	hook := in.Hook(1)
	if st := hook(100, 8, false); st != disk.MediaError {
		t.Errorf("read over bad sector = %v, want MediaError", st)
	}
	if st := hook(108, 8, false); st != disk.OK {
		t.Errorf("read beside bad sector = %v, want OK", st)
	}
	if st := in.Hook(0)(100, 8, false); st != disk.OK {
		t.Errorf("read on clean slot = %v, want OK", st)
	}
	// A write over the region heals it.
	if st := hook(96, 16, true); st != disk.OK {
		t.Errorf("write = %v, want OK", st)
	}
	if st := hook(100, 8, false); st != disk.OK {
		t.Errorf("read after healing write = %v, want OK", st)
	}
	if s := in.Stats(); s.Healed != 1 || s.BadSectors != 0 {
		t.Errorf("stats after heal = %+v", s)
	}
}

func TestHookTransient(t *testing.T) {
	_, in := newTestInjector(t, Config{Seed: 9, TransientRate: 0.5})
	hook := in.Hook(0)
	timeouts := 0
	for i := 0; i < 1000; i++ {
		if hook(0, 8, false) == disk.Timeout {
			timeouts++
		}
	}
	if timeouts < 400 || timeouts > 600 {
		t.Errorf("%d/1000 timeouts at rate 0.5", timeouts)
	}
}

func TestResetDisk(t *testing.T) {
	_, in := newTestInjector(t, Config{Seed: 5})
	for s := int64(0); s < 10; s++ {
		in.bad[2][s] = true
	}
	in.stats.LSEArrivals, in.stats.BadSectors = 10, 10
	in.ResetDisk(2)
	if in.BadSectors(2) != 0 {
		t.Errorf("BadSectors(2) = %d after reset", in.BadSectors(2))
	}
	if s := in.Stats(); s.BadSectors != 0 || s.Healed != 10 {
		t.Errorf("stats after reset = %+v", s)
	}
	if st := in.Hook(2)(0, 8, false); st != disk.OK {
		t.Errorf("read after reset = %v, want OK", st)
	}
}

func TestLifetimeMS(t *testing.T) {
	const mean = 1000.0
	for _, shape := range []float64{0, 1, 0.7, 1.5, 3} {
		rng := rand.New(rand.NewSource(11))
		var sum float64
		const n = 200_000
		for i := 0; i < n; i++ {
			v := LifetimeMS(rng, shape, mean)
			if v < 0 {
				t.Fatalf("shape %v: negative lifetime %v", shape, v)
			}
			sum += v
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.02 {
			t.Errorf("shape %v: sample mean %v, want ≈%v", shape, got, mean)
		}
	}
}
