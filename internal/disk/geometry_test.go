package disk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIBM0661Capacity(t *testing.T) {
	g := IBM0661()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.TotalSectors(); got != 949*14*48 {
		t.Fatalf("TotalSectors = %d, want %d", got, 949*14*48)
	}
	// ~311 MB drive.
	if mb := g.TotalBytes() / (1 << 20); mb < 300 || mb > 320 {
		t.Fatalf("capacity = %d MiB, want ~311", mb)
	}
}

func TestLocateLbaRoundTrip(t *testing.T) {
	g := IBM0661()
	f := func(seed int64) bool {
		lba := rand.New(rand.NewSource(seed)).Int63n(g.TotalSectors())
		return g.Lba(g.Locate(lba)) == lba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocateFields(t *testing.T) {
	g := IBM0661()
	cases := []struct {
		lba  int64
		want Chs
	}{
		{0, Chs{0, 0, 0}},
		{47, Chs{0, 0, 47}},
		{48, Chs{0, 1, 0}},
		{14 * 48, Chs{1, 0, 0}},
		{g.TotalSectors() - 1, Chs{948, 13, 47}},
	}
	for _, c := range cases {
		if got := g.Locate(c.lba); got != c.want {
			t.Errorf("Locate(%d) = %+v, want %+v", c.lba, got, c.want)
		}
	}
}

func TestLocateOutOfRangePanics(t *testing.T) {
	g := IBM0661()
	for _, lba := range []int64{-1, g.TotalSectors()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for lba %d", lba)
				}
			}()
			g.Locate(lba)
		}()
	}
}

func TestPhysicalSectorSkew(t *testing.T) {
	g := IBM0661()
	// Track 0: identity mapping.
	if got := g.PhysicalSector(0, 5); got != 5 {
		t.Fatalf("track 0 sector 5 at slot %d, want 5", got)
	}
	// Track 1 is skewed by 4 slots.
	if got := g.PhysicalSector(1, 0); got != 4 {
		t.Fatalf("track 1 sector 0 at slot %d, want 4", got)
	}
	// Skew wraps modulo sectors per track: track 12 -> 48 mod 48 = 0.
	if got := g.PhysicalSector(12, 0); got != 0 {
		t.Fatalf("track 12 sector 0 at slot %d, want 0", got)
	}
}

func TestPhysicalSectorBijectivePerTrack(t *testing.T) {
	g := IBM0661()
	for _, track := range []int64{0, 1, 7, 13, 1000} {
		seen := make(map[int]bool)
		for s := 0; s < g.SectorsPerTrack; s++ {
			p := g.PhysicalSector(track, s)
			if seen[p] {
				t.Fatalf("track %d: slot %d used twice", track, p)
			}
			seen[p] = true
		}
	}
}

func TestScaled(t *testing.T) {
	g := IBM0661().Scaled(1, 10)
	if g.Cylinders != 94 {
		t.Fatalf("scaled cylinders = %d, want 94", g.Cylinders)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Scaling never goes below 2 cylinders.
	tiny := IBM0661().Scaled(1, 100000)
	if tiny.Cylinders != 2 {
		t.Fatalf("tiny cylinders = %d, want 2", tiny.Cylinders)
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	bad := []func(*Geometry){
		func(g *Geometry) { g.Cylinders = 1 },
		func(g *Geometry) { g.TracksPerCyl = 0 },
		func(g *Geometry) { g.SectorsPerTrack = 0 },
		func(g *Geometry) { g.BytesPerSector = 0 },
		func(g *Geometry) { g.TrackSkew = -1 },
		func(g *Geometry) { g.TrackSkew = 48 },
		func(g *Geometry) { g.RevolutionMS = 0 },
		func(g *Geometry) { g.AvgSeekMS = g.MinSeekMS - 1 },
		func(g *Geometry) { g.MaxSeekMS = g.AvgSeekMS - 1 },
	}
	for i, mutate := range bad {
		g := IBM0661()
		mutate(&g)
		if g.Validate() == nil {
			t.Errorf("case %d: bad geometry validated", i)
		}
	}
}
