package disk

import (
	"fmt"
	"math"
)

// SeekCurve maps a seek distance in cylinders to a seek time in
// milliseconds using the classic three-term model
//
//	t(d) = a*sqrt(d) + b*d + c   for d >= 1,   t(0) = 0,
//
// with coefficients calibrated so that t(1) = min, t(maxCyl-1) = max, and
// the expectation of t over uniformly random start/target cylinders equals
// avg. This reproduces the concave short-seek / linear long-seek shape of
// real actuators from only the three numbers a datasheet publishes.
type SeekCurve struct {
	a, b, c float64
	maxDist int
}

// NewSeekCurve calibrates a curve for the given geometry. It panics if the
// geometry is invalid or the published seek numbers are inconsistent with a
// monotone curve.
func NewSeekCurve(g Geometry) SeekCurve {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	maxDist := g.Cylinders - 1
	if maxDist == 1 {
		// Degenerate two-cylinder disk: a single possible seek distance.
		return SeekCurve{a: 0, b: 0, c: g.MinSeekMS, maxDist: 1}
	}

	// Expected values of sqrt(d) and d over the distance distribution of
	// two independent uniform cylinders, conditioned on d >= 1. For C
	// cylinders, P(d) = 2(C-d)/C^2 for 1 <= d <= C-1.
	c := float64(g.Cylinders)
	var pSum, eSqrt, eLin float64
	for d := 1; d <= maxDist; d++ {
		p := 2 * (c - float64(d)) / (c * c)
		pSum += p
		eSqrt += p * math.Sqrt(float64(d))
		eLin += p * float64(d)
	}
	eSqrt /= pSum
	eLin /= pSum

	// Solve the 3x3 linear system
	//   a*1            + b*1            + c' = min
	//   a*sqrt(maxD)   + b*maxD         + c' = max
	//   a*eSqrt        + b*eLin         + c' = avg
	sM, dM := math.Sqrt(float64(maxDist)), float64(maxDist)
	// Subtract row 1 from rows 2 and 3 to eliminate c'.
	//   a*(sM-1)    + b*(dM-1)    = max-min
	//   a*(eSqrt-1) + b*(eLin-1)  = avg-min
	a11, a12, r1 := sM-1, dM-1, g.MaxSeekMS-g.MinSeekMS
	a21, a22, r2 := eSqrt-1, eLin-1, g.AvgSeekMS-g.MinSeekMS
	det := a11*a22 - a12*a21
	if det == 0 {
		panic("disk: singular seek calibration system")
	}
	a := (r1*a22 - r2*a12) / det
	b := (a11*r2 - a21*r1) / det
	cc := g.MinSeekMS - a - b
	sc := SeekCurve{a: a, b: b, c: cc, maxDist: maxDist}
	// Monotonicity check at integer points; a negative b with dominant a can
	// only dip beyond the stroke, but verify to be safe.
	prev := 0.0
	for d := 1; d <= maxDist; d++ {
		t := sc.Time(d)
		if t < prev {
			panic(fmt.Sprintf("disk: non-monotone seek curve at d=%d (%.3f < %.3f)", d, t, prev))
		}
		prev = t
	}
	return sc
}

// Time returns the seek time in milliseconds for a move of d cylinders.
func (s SeekCurve) Time(d int) float64 {
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	if d > s.maxDist {
		d = s.maxDist
	}
	return s.a*math.Sqrt(float64(d)) + s.b*float64(d) + s.c
}

// Coefficients returns the calibrated (a, b, c) of t(d) = a*sqrt(d)+b*d+c.
func (s SeekCurve) Coefficients() (a, b, c float64) { return s.a, s.b, s.c }
