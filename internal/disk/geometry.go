// Package disk models magnetic disk drives with sector-accurate service
// times: a three-point calibrated seek curve, continuous rotation with
// track-skewed sector layout, multi-track transfers, and CVSCAN (V(R))
// head scheduling. The default model is the IBM 0661 Model 370 "Lightning"
// drive used by Holland and Gibson (Table 5-1 of the paper).
package disk

import "fmt"

// Geometry describes the physical layout of a disk drive.
type Geometry struct {
	Cylinders       int     // number of seek positions
	TracksPerCyl    int     // surfaces (heads)
	SectorsPerTrack int     // sectors on each track
	BytesPerSector  int     // sector payload size
	TrackSkew       int     // sectors of offset between consecutive tracks
	RevolutionMS    float64 // time for one full rotation, in milliseconds

	MinSeekMS float64 // single-cylinder seek time
	AvgSeekMS float64 // average seek time over uniform random seeks
	MaxSeekMS float64 // full-stroke seek time
}

// IBM0661 returns the geometry of the IBM 0661 Model 370 (Lightning) drive:
// 949 cylinders x 14 tracks x 48 sectors of 512 bytes (~311 MB), 13.9 ms
// revolution (4316 RPM), seeks of 2 ms (min), 12.5 ms (avg), 25 ms (max),
// and a 4-sector track skew.
func IBM0661() Geometry {
	return Geometry{
		Cylinders:       949,
		TracksPerCyl:    14,
		SectorsPerTrack: 48,
		BytesPerSector:  512,
		TrackSkew:       4,
		RevolutionMS:    13.9,
		MinSeekMS:       2.0,
		AvgSeekMS:       12.5,
		MaxSeekMS:       25.0,
	}
}

// Scaled returns a copy of g with the cylinder count scaled by num/den
// (at least 2 cylinders). Experiments use this to sweep smaller disks while
// keeping per-access behaviour identical; the seek curve is recalibrated to
// the same min/avg/max against the reduced stroke.
func (g Geometry) Scaled(num, den int) Geometry {
	if num <= 0 || den <= 0 {
		panic(fmt.Sprintf("disk: invalid scale %d/%d", num, den))
	}
	s := g
	s.Cylinders = g.Cylinders * num / den
	if s.Cylinders < 2 {
		s.Cylinders = 2
	}
	return s
}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	switch {
	case g.Cylinders < 2:
		return fmt.Errorf("disk: need at least 2 cylinders, have %d", g.Cylinders)
	case g.TracksPerCyl < 1:
		return fmt.Errorf("disk: need at least 1 track per cylinder, have %d", g.TracksPerCyl)
	case g.SectorsPerTrack < 1:
		return fmt.Errorf("disk: need at least 1 sector per track, have %d", g.SectorsPerTrack)
	case g.BytesPerSector < 1:
		return fmt.Errorf("disk: need positive sector size, have %d", g.BytesPerSector)
	case g.TrackSkew < 0 || g.TrackSkew >= g.SectorsPerTrack:
		return fmt.Errorf("disk: track skew %d out of range [0,%d)", g.TrackSkew, g.SectorsPerTrack)
	case g.RevolutionMS <= 0:
		return fmt.Errorf("disk: revolution time must be positive, have %v", g.RevolutionMS)
	case g.MinSeekMS < 0 || g.AvgSeekMS < g.MinSeekMS || g.MaxSeekMS < g.AvgSeekMS:
		return fmt.Errorf("disk: seek times must satisfy 0 <= min <= avg <= max, have %v/%v/%v",
			g.MinSeekMS, g.AvgSeekMS, g.MaxSeekMS)
	}
	return nil
}

// SectorsPerCylinder returns the number of sectors under all heads at one
// seek position.
func (g Geometry) SectorsPerCylinder() int64 {
	return int64(g.TracksPerCyl) * int64(g.SectorsPerTrack)
}

// TotalSectors returns the drive capacity in sectors.
func (g Geometry) TotalSectors() int64 {
	return int64(g.Cylinders) * g.SectorsPerCylinder()
}

// TotalBytes returns the drive capacity in bytes.
func (g Geometry) TotalBytes() int64 {
	return g.TotalSectors() * int64(g.BytesPerSector)
}

// Chs is a cylinder/head/sector address.
type Chs struct {
	Cyl    int
	Track  int
	Sector int // logical sector index within the track
}

// Locate converts a logical block address to a cylinder/head/sector address.
func (g Geometry) Locate(lba int64) Chs {
	if lba < 0 || lba >= g.TotalSectors() {
		panic(fmt.Sprintf("disk: lba %d out of range [0,%d)", lba, g.TotalSectors()))
	}
	spc := g.SectorsPerCylinder()
	cyl := lba / spc
	rem := lba % spc
	return Chs{
		Cyl:    int(cyl),
		Track:  int(rem / int64(g.SectorsPerTrack)),
		Sector: int(rem % int64(g.SectorsPerTrack)),
	}
}

// Lba converts a cylinder/head/sector address to a logical block address.
func (g Geometry) Lba(c Chs) int64 {
	return int64(c.Cyl)*g.SectorsPerCylinder() +
		int64(c.Track)*int64(g.SectorsPerTrack) + int64(c.Sector)
}

// PhysicalSector returns the angular slot (0..SectorsPerTrack-1) occupied by
// logical sector `sector` of global track index `globalTrack`. Consecutive
// tracks are skewed by TrackSkew slots so that a sequential transfer crossing
// a track boundary has time for a head switch without losing a revolution.
func (g Geometry) PhysicalSector(globalTrack int64, sector int) int {
	skew := (globalTrack * int64(g.TrackSkew)) % int64(g.SectorsPerTrack)
	return int((int64(sector) + skew) % int64(g.SectorsPerTrack))
}
