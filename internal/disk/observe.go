package disk

import (
	"fmt"
	"sort"
	"strings"
)

// Event describes one completed disk request, for observers.
type Event struct {
	QueuedAt float64 // when the request entered the queue
	Start    float64 // when service began
	Finish   float64 // when the transfer completed
	Cyl      int     // target cylinder
	SeekDist int     // cylinders moved to reach it
	Sectors  int
	Write    bool
	Priority int
	Status   Status // OK, MediaError, or Timeout
	CacheHit bool   // served from the track read-ahead buffer
}

// SetObserver replaces the observer chain with the single callback fn,
// invoked at every request completion. Pass nil to remove all observers.
// Observation is off the timing path: it cannot perturb the simulation.
func (d *Disk) SetObserver(fn func(Event)) {
	d.observers = d.observers[:0]
	if fn != nil {
		d.observers = append(d.observers, fn)
	}
}

// AddObserver appends fn to the observer chain, leaving existing
// observers in place: the tracer and a metrics collector can watch the
// same drive without sharing one hook. Observers run in registration
// order at every completion; a nil fn is ignored.
func (d *Disk) AddObserver(fn func(Event)) {
	if fn != nil {
		d.observers = append(d.observers, fn)
	}
}

// Summary aggregates observed events into the quantities disk papers
// report: utilization, queue delay, and the seek-distance distribution
// (the evidence behind "reconstruction writes are sequential").
type Summary struct {
	Events     int
	Reads      int
	Writes     int
	MeanSvcMS  float64
	MeanWaitMS float64
	// SeekZero is the fraction of requests needing no arm movement.
	SeekZero float64
	// SeekP50/P90 are percentiles of the nonzero seek distances.
	SeekP50, SeekP90 int
}

// Summarize folds a set of events.
func Summarize(events []Event) Summary {
	s := Summary{Events: len(events)}
	if len(events) == 0 {
		return s
	}
	var svc, wait float64
	var seeks []int
	zero := 0
	for _, e := range events {
		if e.Write {
			s.Writes++
		} else {
			s.Reads++
		}
		svc += e.Finish - e.Start
		wait += e.Start - e.QueuedAt
		if e.SeekDist == 0 {
			zero++
		} else {
			seeks = append(seeks, e.SeekDist)
		}
	}
	n := float64(len(events))
	s.MeanSvcMS = svc / n
	s.MeanWaitMS = wait / n
	s.SeekZero = float64(zero) / n
	if len(seeks) > 0 {
		sort.Ints(seeks)
		s.SeekP50 = seeks[len(seeks)/2]
		s.SeekP90 = seeks[len(seeks)*9/10]
	}
	return s
}

func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d events (%d R / %d W), service %.1f ms, queue %.1f ms, ",
		s.Events, s.Reads, s.Writes, s.MeanSvcMS, s.MeanWaitMS)
	fmt.Fprintf(&b, "seeks: %.0f%% zero, P50 %d cyl, P90 %d cyl",
		100*s.SeekZero, s.SeekP50, s.SeekP90)
	return b.String()
}
