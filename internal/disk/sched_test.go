package disk

import (
	"math/rand"
	"reflect"
	"testing"

	"declust/internal/sim"
)

// submitAt queues a request targeting the given cylinder and appends its
// tag to order when it completes.
func submitAt(d *Disk, cyl int64, prio int, tag int64, order *[]int64) {
	d.Submit(&Request{
		Start: cyl * d.Geometry().SectorsPerCylinder(), Count: 8, Priority: prio,
		OnDone: func(_, _ float64, _ Status) { *order = append(*order, tag) },
	})
}

func TestFIFOServesInArrivalOrder(t *testing.T) {
	eng := sim.New()
	d := NewWithConfig(eng, IBM0661(), Config{Policy: FIFO})
	var order []int64
	d.Submit(&Request{Start: 0, Count: 8}) // occupy the arm
	for _, cyl := range []int64{700, 10, 400, 5} {
		submitAt(d, cyl, 0, cyl, &order)
	}
	eng.Run()
	want := []int64{700, 10, 400, 5}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("FIFO order %v, want %v", order, want)
	}
}

func TestSSTFServesNearestFirst(t *testing.T) {
	eng := sim.New()
	d := NewWithConfig(eng, IBM0661(), Config{Policy: SSTF})
	var order []int64
	d.Submit(&Request{Start: 400 * d.Geometry().SectorsPerCylinder(), Count: 8})
	for _, cyl := range []int64{700, 390, 430} {
		submitAt(d, cyl, 0, cyl, &order)
	}
	eng.Run()
	want := []int64{390, 430, 700}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("SSTF order %v, want %v", order, want)
	}
}

func TestCSCANSweepsUpAndWraps(t *testing.T) {
	eng := sim.New()
	d := NewWithConfig(eng, IBM0661(), Config{Policy: CSCAN})
	var order []int64
	// Park the head at cylinder 400, then offer work on both sides: the
	// circular elevator serves everything at or above 400 in ascending
	// order, then wraps to the lowest pending cylinder.
	d.Submit(&Request{Start: 400 * d.Geometry().SectorsPerCylinder(), Count: 8})
	for _, cyl := range []int64{390, 800, 10, 450} {
		submitAt(d, cyl, 0, cyl, &order)
	}
	eng.Run()
	want := []int64{450, 800, 10, 390}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("CSCAN order %v, want %v", order, want)
	}
}

func TestCSCANPrefersAheadOverBehind(t *testing.T) {
	eng := sim.New()
	d := NewWithConfig(eng, IBM0661(), Config{Policy: CSCAN})
	var order []int64
	d.Submit(&Request{Start: 400 * d.Geometry().SectorsPerCylinder(), Count: 8})
	// 399 is one cylinder behind; CSCAN must still go up to 900 first.
	for _, cyl := range []int64{399, 900} {
		submitAt(d, cyl, 0, cyl, &order)
	}
	eng.Run()
	want := []int64{900, 399}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("CSCAN order %v, want %v (no early reversal)", order, want)
	}
}

// TestAgePromotionBoundsStarvation keeps a demoted request from waiting
// beyond the bound: once aged, it competes in the user class even while
// user work keeps arriving.
func TestAgePromotionBoundsStarvation(t *testing.T) {
	eng := sim.New()
	d := NewWithConfig(eng, IBM0661(), Config{Policy: FIFO, AgePromoteMS: 100})
	var reconDone float64
	spc := d.Geometry().SectorsPerCylinder()
	d.Submit(&Request{Start: 0, Count: 8})
	d.Submit(&Request{Start: 100 * spc, Count: 8, Priority: -1,
		OnDone: func(_, f float64, _ Status) { reconDone = f }})
	// A steady stream of user requests that would starve the demoted one
	// forever without the age bound: each completion submits another.
	n := 0
	var refill func(_, _ float64, _ Status)
	refill = func(_, _ float64, _ Status) {
		if n < 50 {
			n++
			d.Submit(&Request{Start: int64(200+n) * spc, Count: 8, OnDone: refill})
		}
	}
	d.Submit(&Request{Start: 200 * spc, Count: 8, OnDone: refill})
	eng.Run()
	if reconDone == 0 {
		t.Fatal("demoted request never completed")
	}
	// Service order is FIFO among eligibles, so once promoted (at 100 ms
	// of waiting) the demoted request is the oldest and goes next; it must
	// finish long before the 50-request user stream drains (~1 s).
	if reconDone > 400 {
		t.Fatalf("demoted request finished at %.1f ms; promotion at 100 ms did not take effect", reconDone)
	}
	if n < 50 {
		t.Fatalf("user stream stalled at %d submissions", n)
	}
}

// TestNoAgeBoundPreservesStrictDomination pins today's behaviour with the
// bound off: the demoted request waits for every user request, even ones
// that arrived long after it.
func TestNoAgeBoundPreservesStrictDomination(t *testing.T) {
	eng := sim.New()
	d := NewWithConfig(eng, IBM0661(), Config{Policy: FIFO})
	var order []int64
	d.Submit(&Request{Start: 0, Count: 8})
	submitAt(d, 100, -1, -1, &order)
	for i := int64(0); i < 5; i++ {
		submitAt(d, 200+i, 0, i, &order)
	}
	eng.Run()
	if order[len(order)-1] != -1 {
		t.Fatalf("demoted request served at %v, want last; order %v", order[len(order)-1], order)
	}
}

// TestConfiguredCvscanMatchesLegacyConstructor requires the refactored
// scheduler to reproduce the original CVSCAN implementation event for
// event: same service order, same completion times.
func TestConfiguredCvscanMatchesLegacyConstructor(t *testing.T) {
	trace := func(d *Disk, eng *sim.Engine) []float64 {
		rng := rand.New(rand.NewSource(11))
		var times []float64
		for i := 0; i < 300; i++ {
			d.Submit(&Request{
				Start: rng.Int63n(d.Geometry().TotalSectors()/8) * 8,
				Count: 8,
				OnDone: func(_, f float64, _ Status) {
					times = append(times, f)
				},
			})
		}
		eng.Run()
		return times
	}
	e1 := sim.New()
	legacy := trace(New(e1, IBM0661(), 0.2), e1)
	e2 := sim.New()
	configured := trace(NewWithConfig(e2, IBM0661(), Config{Policy: CVSCAN, CvscanBias: 0.2}), e2)
	if !reflect.DeepEqual(legacy, configured) {
		t.Fatal("Config{CVSCAN, 0.2} diverged from New(…, 0.2)")
	}
}

// TestPoliciesDeterministic replays the same submission schedule twice per
// policy and requires identical completion sequences.
func TestPoliciesDeterministic(t *testing.T) {
	for _, p := range []Policy{FIFO, SSTF, CSCAN, CVSCAN} {
		run := func() []float64 {
			eng := sim.New()
			d := NewWithConfig(eng, IBM0661(), Config{Policy: p, CvscanBias: 0.2, AgePromoteMS: 50})
			rng := rand.New(rand.NewSource(5))
			var times []float64
			for i := 0; i < 200; i++ {
				prio := 0
				if i%3 == 0 {
					prio = -1
				}
				d.Submit(&Request{
					Start: rng.Int63n(d.Geometry().TotalSectors()/8) * 8, Count: 8,
					Priority: prio,
					OnDone:   func(_, f float64, _ Status) { times = append(times, f) },
				})
			}
			eng.Run()
			return times
		}
		if a, b := run(), run(); !reflect.DeepEqual(a, b) {
			t.Fatalf("policy %v not deterministic", p)
		}
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{CVSCAN, FIFO, SSTF, CSCAN} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("elevator"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown policy")
	}
	if p, err := ParsePolicy(""); err != nil || p != CVSCAN {
		t.Fatalf("empty policy = %v, %v; want CVSCAN default", p, err)
	}
}

// TestSSTFThroughputBeatsFIFO is the motivating effect: under a deep
// random queue, seek-optimizing schedulers complete the same work sooner.
func TestSSTFThroughputBeatsFIFO(t *testing.T) {
	elapsed := func(p Policy) float64 {
		eng := sim.New()
		d := NewWithConfig(eng, IBM0661(), Config{Policy: p})
		rng := rand.New(rand.NewSource(21))
		for i := 0; i < 200; i++ {
			d.Submit(&Request{Start: rng.Int63n(d.Geometry().TotalSectors()/8) * 8, Count: 8})
		}
		eng.Run()
		return eng.Now()
	}
	fifo, sstf := elapsed(FIFO), elapsed(SSTF)
	if sstf >= fifo {
		t.Fatalf("SSTF (%.1f ms) not faster than FIFO (%.1f ms) on a deep random queue", sstf, fifo)
	}
}
