package disk

import "fmt"

// Policy selects the head-scheduling discipline a drive applies to its
// pending queue. The zero value is CVSCAN, the V(R) continuum the paper's
// raidSim uses, so existing configurations are unchanged.
type Policy int

const (
	// CVSCAN is the V(R) continuum [Geist87] with a configurable reversal
	// bias r: r = 0 degenerates to SSTF, r = 1 to SCAN (see cvscan.go).
	CVSCAN Policy = iota
	// FIFO serves requests strictly in arrival order within a priority
	// class: no seek optimization at all, the baseline real controllers
	// started from.
	FIFO
	// SSTF serves the request with the shortest seek from the current head
	// position. Maximum throughput, but edge cylinders can starve under
	// sustained load.
	SSTF
	// CSCAN is the circular elevator: the head sweeps toward higher
	// cylinders only, serving requests in cylinder order, and wraps to the
	// lowest pending cylinder when none remain ahead. Fairer tail latency
	// than SSTF at a small throughput cost.
	CSCAN
)

// ParsePolicy maps a configuration string (as used by raidsim's -sched
// flag) to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "cvscan", "":
		return CVSCAN, nil
	case "fifo":
		return FIFO, nil
	case "sstf":
		return SSTF, nil
	case "cscan":
		return CSCAN, nil
	default:
		return 0, fmt.Errorf("disk: unknown scheduling policy %q (want fifo, sstf, cscan or cvscan)", s)
	}
}

func (p Policy) String() string {
	switch p {
	case CVSCAN:
		return "cvscan"
	case FIFO:
		return "fifo"
	case SSTF:
		return "sstf"
	case CSCAN:
		return "cscan"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// schedQueue is the pending-request queue of one drive. Priority classes
// strictly dominate: only requests of the highest class present compete,
// and the policy chooses among them. With a positive ageMS, a request of a
// lower class that has waited at least ageMS is promoted into the top
// class present — the starvation-avoidance bound that keeps demoted
// reconstruction and scrub traffic from waiting forever behind user I/O.
// Ties always break by arrival order (seq), so every policy is
// deterministic.
type schedQueue struct {
	policy  Policy
	bias    float64 // CVSCAN reversal penalty, as a fraction of the stroke
	cyls    int
	ageMS   float64 // 0 = never promote
	pending []*Request
	// dir is CVSCAN's current sweep direction: +1 toward higher cylinders,
	// -1 toward lower, 0 before any movement.
	dir int
}

func newSchedQueue(p Policy, bias float64, cylinders int, ageMS float64) *schedQueue {
	return &schedQueue{policy: p, bias: bias, cyls: cylinders, ageMS: ageMS}
}

func (s *schedQueue) len() int { return len(s.pending) }

func (s *schedQueue) push(r *Request) {
	s.pending = append(s.pending, r)
}

// eligible reports whether r competes for service now: it belongs to the
// top raw priority class, or it has aged past the promotion bound.
func (s *schedQueue) eligible(r *Request, maxPrio int, now float64) bool {
	if r.Priority == maxPrio {
		return true
	}
	return s.ageMS > 0 && now-r.queuedAt >= s.ageMS
}

// pop removes and returns the next request to serve for a head at cylinder
// headCyl at simulated time now, or nil if none are pending.
func (s *schedQueue) pop(now float64, headCyl int) *Request {
	if len(s.pending) == 0 {
		return nil
	}
	maxPrio := s.pending[0].Priority
	for _, r := range s.pending[1:] {
		if r.Priority > maxPrio {
			maxPrio = r.Priority
		}
	}
	var best int
	switch s.policy {
	case FIFO:
		best = s.pickFIFO(maxPrio, now)
	case SSTF:
		best = s.pickSSTF(maxPrio, now, headCyl)
	case CSCAN:
		best = s.pickCSCAN(maxPrio, now, headCyl)
	default:
		best = s.pickCVSCAN(maxPrio, now, headCyl)
	}
	r := s.pending[best]
	s.pending = append(s.pending[:best], s.pending[best+1:]...)
	if r.cyl > headCyl {
		s.dir = 1
	} else if r.cyl < headCyl {
		s.dir = -1
	}
	return r
}

// pickFIFO selects the oldest eligible request.
func (s *schedQueue) pickFIFO(maxPrio int, now float64) int {
	best := -1
	for i, r := range s.pending {
		if !s.eligible(r, maxPrio, now) {
			continue
		}
		if best == -1 || r.seq < s.pending[best].seq {
			best = i
		}
	}
	return best
}

// pickSSTF selects the eligible request with the shortest seek distance.
func (s *schedQueue) pickSSTF(maxPrio int, now float64, headCyl int) int {
	best := -1
	bestDist := 0
	for i, r := range s.pending {
		if !s.eligible(r, maxPrio, now) {
			continue
		}
		dist := r.cyl - headCyl
		if dist < 0 {
			dist = -dist
		}
		if best == -1 || dist < bestDist ||
			(dist == bestDist && r.seq < s.pending[best].seq) {
			best = i
			bestDist = dist
		}
	}
	return best
}

// pickCSCAN selects the eligible request with the lowest cylinder at or
// ahead of the head (the upward sweep), wrapping to the lowest pending
// cylinder when nothing remains ahead.
func (s *schedQueue) pickCSCAN(maxPrio int, now float64, headCyl int) int {
	best, wrap := -1, -1
	for i, r := range s.pending {
		if !s.eligible(r, maxPrio, now) {
			continue
		}
		if r.cyl >= headCyl {
			if best == -1 || r.cyl < s.pending[best].cyl ||
				(r.cyl == s.pending[best].cyl && r.seq < s.pending[best].seq) {
				best = i
			}
		} else {
			if wrap == -1 || r.cyl < s.pending[wrap].cyl ||
				(r.cyl == s.pending[wrap].cyl && r.seq < s.pending[wrap].seq) {
				wrap = i
			}
		}
	}
	if best != -1 {
		return best
	}
	return wrap
}
