package disk

import (
	"math"
	"math/rand"
	"testing"

	"declust/internal/sim"
)

func newTestDisk(t *testing.T) (*sim.Engine, *Disk) {
	t.Helper()
	eng := sim.New()
	return eng, New(eng, IBM0661(), 0.2)
}

func TestSingleAccessCompletes(t *testing.T) {
	eng, d := newTestDisk(t)
	var start, finish float64
	d.Submit(&Request{Start: 1000, Count: 8, OnDone: func(s, f float64, _ Status) { start, finish = s, f }})
	eng.Run()
	if finish <= start {
		t.Fatalf("finish %v <= start %v", finish, start)
	}
	if d.Stats().Completed != 1 {
		t.Fatalf("completed = %d", d.Stats().Completed)
	}
	// One random 4 KB access from cylinder 0: bounded by max seek + full
	// rotation + transfer.
	g := d.Geometry()
	maxT := g.MaxSeekMS + g.RevolutionMS + 8.0/48.0*g.RevolutionMS + 1
	if finish-start > maxT {
		t.Fatalf("service time %v exceeds bound %v", finish-start, maxT)
	}
}

func TestServiceBreakdownAccounting(t *testing.T) {
	eng, d := newTestDisk(t)
	for i := 0; i < 50; i++ {
		d.Submit(&Request{Start: int64(i) * 7919 % d.Geometry().TotalSectors(), Count: 8})
	}
	eng.Run()
	st := d.Stats()
	sum := st.SeekMS + st.RotateMS + st.TransferMS
	if math.Abs(sum-st.BusyMS) > 1e-6 {
		t.Fatalf("breakdown %v != busy %v", sum, st.BusyMS)
	}
}

func TestZeroCountPanics(t *testing.T) {
	_, d := newTestDisk(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero-count request")
		}
	}()
	d.Submit(&Request{Start: 0, Count: 0})
}

func TestOutOfRangePanics(t *testing.T) {
	_, d := newTestDisk(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range request")
		}
	}()
	d.Submit(&Request{Start: d.Geometry().TotalSectors() - 4, Count: 8})
}

func TestAllQueuedRequestsComplete(t *testing.T) {
	eng, d := newTestDisk(t)
	rng := rand.New(rand.NewSource(7))
	const n = 500
	done := 0
	for i := 0; i < n; i++ {
		d.Submit(&Request{
			Start:  rng.Int63n(d.Geometry().TotalSectors()-8) / 8 * 8,
			Count:  8,
			OnDone: func(_, _ float64, _ Status) { done++ },
		})
	}
	eng.Run()
	if done != n {
		t.Fatalf("completed %d of %d (starvation?)", done, n)
	}
}

func TestRandomThroughputNearDatasheet(t *testing.T) {
	// The paper says the IBM 0661 sustains about 46 random 4 KB accesses
	// per second. Saturate the disk with random requests (always 16 deep,
	// so CVSCAN has some choice, like a loaded array) and check the rate
	// is at least that; scheduling gains push it somewhat higher.
	eng := sim.New()
	d := New(eng, IBM0661(), 0.2)
	rng := rand.New(rand.NewSource(42))
	completed := 0
	var submit func()
	submit = func() {
		d.Submit(&Request{
			Start: rng.Int63n(d.Geometry().TotalSectors()/8) * 8,
			Count: 8,
			OnDone: func(_, _ float64, _ Status) {
				completed++
				if eng.Now() < 60_000 {
					submit()
				}
			},
		})
	}
	for i := 0; i < 16; i++ {
		submit()
	}
	eng.Run()
	rate := float64(completed) / (eng.Now() / 1000)
	if rate < 40 || rate > 120 {
		t.Fatalf("random 4 KB rate = %.1f/s, want roughly datasheet 46+/s", rate)
	}
	// Sanity: the naive model matches the paper's 46/s claim.
	if m := 1000 / d.AvgRandomAccessMS(8); m < 44 || m > 48 {
		t.Fatalf("model rate = %.1f/s, want ~46", m)
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	// This is the effect at the heart of the paper's disagreement with
	// Muntz & Lui: sequential 4 KB accesses (reconstruction writes) are
	// far cheaper than random ones because they pay no seek and almost no
	// rotational wait.
	g := IBM0661()
	eng1 := sim.New()
	seq := New(eng1, g, 0.2)
	var seqDone float64
	n := 500
	for i := 0; i < n; i++ {
		seq.Submit(&Request{Start: int64(i) * 8, Count: 8, OnDone: func(_, f float64, _ Status) { seqDone = f }})
	}
	eng1.Run()

	eng2 := sim.New()
	rnd := New(eng2, g, 0.2)
	rng := rand.New(rand.NewSource(3))
	var rndDone float64
	for i := 0; i < n; i++ {
		rnd.Submit(&Request{Start: rng.Int63n(g.TotalSectors()/8) * 8, Count: 8, OnDone: func(_, f float64, _ Status) { rndDone = f }})
	}
	eng2.Run()

	if seqDone*4 > rndDone {
		t.Fatalf("sequential 4 KB stream (%v ms) not at least 4x faster than random (%v ms)", seqDone, rndDone)
	}
}

func TestSequentialTrackReadNearOneRevolutionPerTrack(t *testing.T) {
	// Reading k consecutive full tracks in one request should take about
	// k revolutions plus skew slips, not k*(rev + rotational wait).
	g := IBM0661()
	eng := sim.New()
	d := New(eng, g, 0.2)
	var finish float64
	const tracks = 10
	d.Submit(&Request{Start: 0, Count: 48 * tracks, OnDone: func(_, f float64, _ Status) { finish = f }})
	eng.Run()
	// Lower bound: tracks revolutions of data transfer.
	lo := float64(tracks) * g.RevolutionMS
	// Upper bound: transfer + skew wait per boundary + initial rotation.
	hi := lo + float64(tracks)*float64(g.TrackSkew)/48*g.RevolutionMS + g.RevolutionMS + g.MinSeekMS
	if finish < lo || finish > hi {
		t.Fatalf("%d-track read took %v ms, want in [%v, %v]", tracks, finish, lo, hi)
	}
}

func TestTrackSkewAvoidsFullRotationSlip(t *testing.T) {
	// Reading across one track boundary should cost roughly the skew
	// (4/48 of a revolution), not a full revolution.
	g := IBM0661()
	eng := sim.New()
	d := New(eng, g, 0.2)
	var oneTrack, crossing float64
	d.Submit(&Request{Start: 0, Count: 48, OnDone: func(s, f float64, _ Status) { oneTrack = f - s }})
	eng.Run()

	eng2 := sim.New()
	d2 := New(eng2, g, 0.2)
	d2.Submit(&Request{Start: 0, Count: 96, OnDone: func(s, f float64, _ Status) { crossing = f - s }})
	eng2.Run()

	extra := crossing - oneTrack
	want := g.RevolutionMS + float64(g.TrackSkew)/48*g.RevolutionMS
	if math.Abs(extra-want) > 0.5 {
		t.Fatalf("second track cost %v ms, want ~%v (one rev + skew)", extra, want)
	}
}

func TestPriorityClassesDominates(t *testing.T) {
	eng, d := newTestDisk(t)
	var order []int
	// Fill with low-priority requests, then inject a high-priority one;
	// it must be served before any remaining low-priority work.
	blocker := &Request{Start: 0, Count: 8}
	d.Submit(blocker) // in service immediately
	for i := 0; i < 5; i++ {
		i := i
		d.Submit(&Request{Start: int64(100+i) * 672, Count: 8, Priority: 0,
			OnDone: func(_, _ float64, _ Status) { order = append(order, i) }})
	}
	d.Submit(&Request{Start: 500 * 672, Count: 8, Priority: 1,
		OnDone: func(_, _ float64, _ Status) { order = append(order, 99) }})
	eng.Run()
	if order[0] != 99 {
		t.Fatalf("high-priority request served at position %v (order %v)", order[0], order)
	}
}

func TestCvscanBiasZeroIsSSTF(t *testing.T) {
	// With r=0, the scheduler always picks the closest cylinder even if it
	// reverses direction.
	eng := sim.New()
	d := New(eng, IBM0661(), 0)
	spc := d.Geometry().SectorsPerCylinder()
	var order []int64
	d.Submit(&Request{Start: 400 * spc, Count: 8}) // moves head to ~400
	for _, cyl := range []int64{500, 390, 410} {
		cyl := cyl
		d.Submit(&Request{Start: cyl * spc, Count: 8,
			OnDone: func(_, _ float64, _ Status) { order = append(order, cyl) }})
	}
	eng.Run()
	if order[0] != 390 && order[0] != 410 {
		t.Fatalf("SSTF picked %d first, want 390 or 410; order %v", order[0], order)
	}
	if order[2] != 500 {
		t.Fatalf("SSTF served far request at %v, want last; order %v", order[2], order)
	}
}

func TestCvscanScanBiasMaintainsDirection(t *testing.T) {
	// With r=1 (SCAN), a head sweeping up should serve a slightly farther
	// request in the sweep direction before a closer one behind it.
	eng := sim.New()
	d := New(eng, IBM0661(), 1.0)
	spc := d.Geometry().SectorsPerCylinder()
	var order []int64
	// Establish upward direction: head 0 -> 400.
	d.Submit(&Request{Start: 400 * spc, Count: 8})
	for _, cyl := range []int64{390, 420} {
		cyl := cyl
		d.Submit(&Request{Start: cyl * spc, Count: 8,
			OnDone: func(_, _ float64, _ Status) { order = append(order, cyl) }})
	}
	eng.Run()
	if order[0] != 420 {
		t.Fatalf("SCAN reversed early: order %v, want 420 first", order)
	}
}

func TestUtilizationBounded(t *testing.T) {
	eng, d := newTestDisk(t)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		d.Submit(&Request{Start: rng.Int63n(d.Geometry().TotalSectors()/8) * 8, Count: 8})
	}
	eng.Run()
	st := d.Stats()
	if st.BusyMS > eng.Now()+1e-9 {
		t.Fatalf("busy %v exceeds elapsed %v", st.BusyMS, eng.Now())
	}
	if st.BusyMS <= 0 {
		t.Fatal("no busy time recorded")
	}
}

func TestRequestsDuringServiceQueue(t *testing.T) {
	eng, d := newTestDisk(t)
	served := 0
	d.Submit(&Request{Start: 0, Count: 8, OnDone: func(_, _ float64, _ Status) {
		served++
		// Disk reports not busy only after queue drains.
	}})
	d.Submit(&Request{Start: 672, Count: 8, OnDone: func(_, _ float64, _ Status) { served++ }})
	if d.QueueLen() != 1 {
		t.Fatalf("queue len = %d, want 1 (one in service, one waiting)", d.QueueLen())
	}
	eng.Run()
	if served != 2 || d.Busy() {
		t.Fatalf("served=%d busy=%v", served, d.Busy())
	}
}

func TestFaultHookOutcomes(t *testing.T) {
	eng, d := newTestDisk(t)
	// Script outcomes: first request times out, second hits a media
	// error, third succeeds.
	script := []Status{Timeout, MediaError, OK}
	i := 0
	d.SetFaultHook(func(start int64, count int, write bool) Status {
		st := script[i]
		i++
		return st
	}, 40)

	var got []Status
	var stalls []float64
	for n := 0; n < 3; n++ {
		d.Submit(&Request{Start: 1000, Count: 8, OnDone: func(s, f float64, st Status) {
			got = append(got, st)
			stalls = append(stalls, f-s)
		}})
	}
	eng.Run()

	if len(got) != 3 || got[0] != Timeout || got[1] != MediaError || got[2] != OK {
		t.Fatalf("statuses %v, want [timeout media-error ok]", got)
	}
	// The timeout stalls exactly the configured window; the media error
	// pays real service time (seek + rotate + transfer > 0).
	if stalls[0] != 40 {
		t.Fatalf("timeout stall %v ms, want 40", stalls[0])
	}
	if stalls[1] <= 0 || stalls[2] <= 0 {
		t.Fatalf("service times %v, want positive", stalls[1:])
	}
	st := d.Stats()
	if st.Timeouts != 1 || st.MediaErrors != 1 {
		t.Fatalf("stats timeouts=%d mediaErrors=%d, want 1/1", st.Timeouts, st.MediaErrors)
	}
	// A timed-out transfer moves no sectors; the two served ones do.
	if st.SectorsMoved != 16 {
		t.Fatalf("sectors moved %d, want 16", st.SectorsMoved)
	}
}

func TestFaultHookTimeoutKeepsArmStill(t *testing.T) {
	eng, d := newTestDisk(t)
	d.Submit(&Request{Start: d.Geometry().SectorsPerCylinder() * 100, Count: 8})
	eng.Run()
	was := d.HeadCylinder()
	d.SetFaultHook(func(int64, int, bool) Status { return Timeout }, 25)
	d.Submit(&Request{Start: 0, Count: 8})
	eng.Run()
	if d.HeadCylinder() != was {
		t.Fatalf("head moved to %d during a timeout, want %d", d.HeadCylinder(), was)
	}
	d.SetFaultHook(nil, 0)
}
