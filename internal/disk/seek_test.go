package disk

import (
	"math"
	"testing"
)

func TestSeekCurveCalibrationPoints(t *testing.T) {
	g := IBM0661()
	s := NewSeekCurve(g)
	if got := s.Time(0); got != 0 {
		t.Fatalf("Time(0) = %v, want 0", got)
	}
	if got := s.Time(1); math.Abs(got-g.MinSeekMS) > 1e-9 {
		t.Fatalf("Time(1) = %v, want %v", got, g.MinSeekMS)
	}
	if got := s.Time(g.Cylinders - 1); math.Abs(got-g.MaxSeekMS) > 1e-9 {
		t.Fatalf("Time(max) = %v, want %v", got, g.MaxSeekMS)
	}
}

func TestSeekCurveAverage(t *testing.T) {
	g := IBM0661()
	s := NewSeekCurve(g)
	// Exact expectation over the conditioned distance distribution must
	// match the datasheet average.
	c := float64(g.Cylinders)
	var pSum, e float64
	for d := 1; d < g.Cylinders; d++ {
		p := 2 * (c - float64(d)) / (c * c)
		pSum += p
		e += p * s.Time(d)
	}
	e /= pSum
	if math.Abs(e-g.AvgSeekMS) > 1e-6 {
		t.Fatalf("average seek = %v, want %v", e, g.AvgSeekMS)
	}
}

func TestSeekCurveMonotone(t *testing.T) {
	s := NewSeekCurve(IBM0661())
	prev := 0.0
	for d := 1; d <= 948; d++ {
		v := s.Time(d)
		if v < prev {
			t.Fatalf("seek curve decreases at %d: %v < %v", d, v, prev)
		}
		prev = v
	}
}

func TestSeekCurveSymmetricAndClamped(t *testing.T) {
	s := NewSeekCurve(IBM0661())
	if s.Time(-100) != s.Time(100) {
		t.Fatal("seek not symmetric in direction")
	}
	if s.Time(5000) != s.Time(948) {
		t.Fatal("seek not clamped at full stroke")
	}
}

func TestSeekCurveScaledGeometries(t *testing.T) {
	for _, den := range []int{1, 2, 5, 10, 20} {
		g := IBM0661().Scaled(1, den)
		s := NewSeekCurve(g) // panics if non-monotone
		if math.Abs(s.Time(1)-g.MinSeekMS) > 1e-9 {
			t.Fatalf("den=%d: Time(1) = %v", den, s.Time(1))
		}
		if math.Abs(s.Time(g.Cylinders-1)-g.MaxSeekMS) > 1e-9 {
			t.Fatalf("den=%d: Time(max) = %v", den, s.Time(g.Cylinders-1))
		}
	}
}

func TestSeekCurveTwoCylinderDegenerate(t *testing.T) {
	g := IBM0661()
	g.Cylinders = 2
	s := NewSeekCurve(g)
	if got := s.Time(1); got != g.MinSeekMS {
		t.Fatalf("degenerate Time(1) = %v, want min", got)
	}
}
