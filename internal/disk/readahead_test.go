package disk

import (
	"math/rand"
	"reflect"
	"testing"

	"declust/internal/sim"
)

func newRADisk(tracks int) (*sim.Engine, *Disk) {
	eng := sim.New()
	return eng, NewWithConfig(eng, IBM0661(), Config{CvscanBias: 0.2, ReadAheadTracks: tracks})
}

func TestSequentialReadHitsBuffer(t *testing.T) {
	eng, d := newRADisk(1)
	var first, second struct{ start, finish float64 }
	d.Submit(&Request{Start: 0, Count: 8, OnDone: func(s, f float64, _ Status) { first.start, first.finish = s, f }})
	eng.Run()
	d.Submit(&Request{Start: 8, Count: 8, OnDone: func(s, f float64, _ Status) { second.start, second.finish = s, f }})
	eng.Run()
	if first.finish <= first.start {
		t.Fatal("first read paid no mechanical time")
	}
	if second.finish != second.start {
		t.Fatalf("sequential hit took %v ms, want 0", second.finish-second.start)
	}
	st := d.Stats()
	if st.CacheHits != 1 || st.CacheHitSectors != 8 {
		t.Fatalf("cache hits %d / %d sectors, want 1 / 8", st.CacheHits, st.CacheHitSectors)
	}
	// The hit moved no platter sectors and kept the arm idle.
	if st.SectorsMoved != 8 {
		t.Fatalf("sectors moved %d, want 8 (only the first read)", st.SectorsMoved)
	}
}

func TestReadAheadWindowEndsAtTrackBoundary(t *testing.T) {
	eng, d := newRADisk(1)
	d.Submit(&Request{Start: 0, Count: 8})
	eng.Run()
	// Sectors 8..47 are on the same track: hits. Sector 48 starts the next
	// track: beyond a 1-track window, so it must pay mechanical time.
	d.Submit(&Request{Start: 8, Count: 40})
	eng.Run()
	if st := d.Stats(); st.CacheHits != 1 {
		t.Fatalf("rest-of-track read: %d hits, want 1", st.CacheHits)
	}
	var svc float64
	d.Submit(&Request{Start: 48, Count: 8, OnDone: func(s, f float64, _ Status) { svc = f - s }})
	eng.Run()
	if svc == 0 {
		t.Fatal("next-track read hit a 1-track window")
	}
}

func TestReadAheadMultipleTracks(t *testing.T) {
	eng, d := newRADisk(2)
	d.Submit(&Request{Start: 0, Count: 8})
	eng.Run()
	// A 2-track window after reading [0,8) covers [8, 96).
	var svc float64
	d.Submit(&Request{Start: 48, Count: 8, OnDone: func(s, f float64, _ Status) { svc = f - s }})
	eng.Run()
	if svc != 0 {
		t.Fatalf("second-track read took %v ms under a 2-track window, want 0", svc)
	}
	d.Submit(&Request{Start: 96, Count: 8, OnDone: func(s, f float64, _ Status) { svc = f - s }})
	eng.Run()
	if svc == 0 {
		t.Fatal("third-track read hit a 2-track window")
	}
}

func TestWriteInvalidatesBuffer(t *testing.T) {
	eng, d := newRADisk(1)
	d.Submit(&Request{Start: 0, Count: 8})
	eng.Run()
	d.Submit(&Request{Start: 16, Count: 8, Write: true})
	eng.Run()
	var svc float64
	d.Submit(&Request{Start: 8, Count: 8, OnDone: func(s, f float64, _ Status) { svc = f - s }})
	eng.Run()
	if svc == 0 {
		t.Fatal("read hit a buffer an overlapping write should have invalidated")
	}
	if d.Stats().CacheHits != 0 {
		t.Fatalf("cache hits %d, want 0", d.Stats().CacheHits)
	}
}

func TestNonOverlappingWriteKeepsBuffer(t *testing.T) {
	eng, d := newRADisk(1)
	d.Submit(&Request{Start: 0, Count: 8})
	eng.Run()
	// A write far away does not touch the buffered track.
	d.Submit(&Request{Start: 48 * 1000, Count: 8, Write: true})
	eng.Run()
	var svc float64
	d.Submit(&Request{Start: 8, Count: 8, OnDone: func(s, f float64, _ Status) { svc = f - s }})
	eng.Run()
	if svc != 0 {
		t.Fatalf("read missed (%v ms) despite a non-overlapping write", svc)
	}
}

func TestHitWindowConsumedMonotonically(t *testing.T) {
	eng, d := newRADisk(1)
	d.Submit(&Request{Start: 0, Count: 8})
	eng.Run()
	// Consume [24,32): the window advances past it, so the skipped-over
	// range [8,24) is no longer served (the stream moved on).
	d.Submit(&Request{Start: 24, Count: 8})
	eng.Run()
	var svc float64
	d.Submit(&Request{Start: 8, Count: 8, OnDone: func(s, f float64, _ Status) { svc = f - s }})
	eng.Run()
	if svc == 0 {
		t.Fatal("backward read hit a consumed window")
	}
}

func TestHitCompletesWhileArmBusy(t *testing.T) {
	eng, d := newRADisk(1)
	d.Submit(&Request{Start: 0, Count: 8})
	eng.Run()
	// Occupy the arm with a far request, then submit a buffered read: the
	// hit must complete now, not after the mechanical transfer.
	var far, hit float64
	d.Submit(&Request{Start: 48 * 900 * 14, Count: 8, OnDone: func(_, f float64, _ Status) { far = f }})
	d.Submit(&Request{Start: 8, Count: 8, OnDone: func(_, f float64, _ Status) { hit = f }})
	eng.Run()
	if hit >= far {
		t.Fatalf("buffered hit finished at %v ms, after the mechanical transfer at %v ms", hit, far)
	}
}

func TestMediaErrorDoesNotFillBuffer(t *testing.T) {
	eng, d := newRADisk(1)
	d.SetFaultHook(func(int64, int, bool) Status { return MediaError }, 10)
	d.Submit(&Request{Start: 0, Count: 8})
	eng.Run()
	d.SetFaultHook(nil, 0)
	var svc float64
	d.Submit(&Request{Start: 8, Count: 8, OnDone: func(s, f float64, _ Status) { svc = f - s }})
	eng.Run()
	if svc == 0 {
		t.Fatal("read hit a buffer primed by a failed read")
	}
}

func TestReadAheadObserverMarksHits(t *testing.T) {
	eng, d := newRADisk(1)
	var events []Event
	d.SetObserver(func(e Event) { events = append(events, e) })
	d.Submit(&Request{Start: 0, Count: 8})
	eng.Run()
	d.Submit(&Request{Start: 8, Count: 8})
	eng.Run()
	if len(events) != 2 {
		t.Fatalf("observed %d events, want 2", len(events))
	}
	if events[0].CacheHit || !events[1].CacheHit {
		t.Fatalf("cache-hit flags %v/%v, want false/true", events[0].CacheHit, events[1].CacheHit)
	}
	if e := events[1]; e.Start != e.Finish || e.SeekDist != 0 {
		t.Fatalf("hit event has service time %v and seek %d, want 0/0", e.Finish-e.Start, e.SeekDist)
	}
}

// TestReadAheadOffIsByteIdenticalToLegacy pins the determinism contract:
// ReadAheadTracks = 0 leaves every completion time exactly as the
// pre-read-ahead drive produced it.
func TestReadAheadOffIsByteIdenticalToLegacy(t *testing.T) {
	trace := func(d *Disk, eng *sim.Engine) []float64 {
		rng := rand.New(rand.NewSource(13))
		var times []float64
		for i := 0; i < 300; i++ {
			d.Submit(&Request{
				Start: rng.Int63n(d.Geometry().TotalSectors()/8) * 8, Count: 8,
				Write:  i%2 == 0,
				OnDone: func(_, f float64, _ Status) { times = append(times, f) },
			})
		}
		eng.Run()
		return times
	}
	e1 := sim.New()
	legacy := trace(New(e1, IBM0661(), 0.2), e1)
	e2 := sim.New()
	off := trace(NewWithConfig(e2, IBM0661(), Config{CvscanBias: 0.2, ReadAheadTracks: 0}), e2)
	if !reflect.DeepEqual(legacy, off) {
		t.Fatal("ReadAheadTracks=0 diverged from the legacy constructor")
	}
}

func TestNegativeReadAheadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative read-ahead")
		}
	}()
	NewWithConfig(sim.New(), IBM0661(), Config{ReadAheadTracks: -1})
}
