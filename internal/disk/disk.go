package disk

import (
	"fmt"
	"math"

	"declust/internal/sim"
	"declust/internal/telemetry"
)

// Status is the outcome of a disk transfer.
type Status int

const (
	// OK: the transfer completed and (for reads) returned valid data.
	OK Status = iota
	// MediaError: the platter could not return the sectors (a latent
	// sector error). The request paid its full service time discovering
	// it; retries do not help — the data must be recovered from
	// redundancy, and a subsequent write to the region remaps it.
	MediaError
	// Timeout: a transient fault (bus reset, recovered internal retry
	// storm) swallowed the request. No data moved; the arm did not move.
	// A retry draws a fresh outcome.
	Timeout
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case MediaError:
		return "media-error"
	case Timeout:
		return "timeout"
	default:
		return "Status(?)"
	}
}

// FaultHook decides the fate of a transfer at service time. It may keep
// per-disk state (bad sector sets, RNG streams); returning OK always is
// equivalent to no hook.
type FaultHook func(start int64, count int, write bool) Status

// Request is one contiguous disk transfer.
type Request struct {
	Start int64 // first logical block address
	Count int   // number of sectors, > 0
	Write bool  // direction; timing is symmetric, kept for accounting

	// Priority tags the request's service class (user I/O vs demoted
	// reconstruction/scrub I/O): the scheduler only considers requests of
	// the highest priority present in the queue, except that a request
	// older than the configured age bound is promoted into the top class.
	// Within a class, the configured Policy chooses. Zero is the default
	// (user) class.
	Priority int

	// OnDone fires when the transfer completes, with the simulated times
	// at which service started and finished and the transfer's outcome.
	OnDone func(start, finish float64, st Status)

	// Span, when non-nil, is the lifecycle span this transfer belongs to;
	// the drive records queue/seek/rotate/transfer (or cache-hit, or
	// timeout) child segments under it at completion time. Nil — the
	// default — records nothing and costs one nil check.
	Span *telemetry.Span

	queuedAt float64
	seq      uint64
	cyl      int // target cylinder, computed once at Submit
}

// Stats accumulates per-disk counters.
type Stats struct {
	Completed    int64   // requests finished (including read-ahead hits)
	SectorsMoved int64   // total sectors mechanically transferred
	BusyMS       float64 // total time the arm was servicing requests
	SeekMS       float64 // portion of BusyMS spent seeking
	RotateMS     float64 // portion spent waiting for rotation
	TransferMS   float64 // portion spent transferring
	QueueMS      float64 // total time requests waited in queue
	MaxQueueLen  int
	SeekCyls     int64 // total cylinders traveled to reach request starts
	MediaErrors  int64 // transfers that hit a latent sector error
	Timeouts     int64 // transfers lost to transient faults

	// Read-ahead activity (always zero with ReadAheadTracks = 0).
	CacheHits       int64 // reads served from the track read-ahead buffer
	CacheHitSectors int64 // sectors those hits returned without platter work
}

// Disk is a single simulated drive attached to an event engine. It services
// one request at a time; pending requests wait in a scheduler queue, except
// reads served from the track read-ahead buffer, which complete immediately.
type Disk struct {
	eng   *sim.Engine
	geom  Geometry
	seek  SeekCurve
	sched *schedQueue

	busy      bool
	headCyl   int
	seq       uint64
	slot      int // array slot for telemetry segments; -1 when standalone
	stats     Stats
	observers []func(Event)

	// Track read-ahead buffer: [raLo, raHi) is the LBA window currently
	// held in drive RAM; empty when raLo >= raHi. hitFree pools hit
	// completion records (see readahead.go).
	raTracks int
	raLo     int64
	raHi     int64
	hitFree  []*raHit

	// Completion state for the one request in service. startNext fills
	// these and schedules completeFn — a method value bound once at
	// construction — so steady-state completions allocate nothing.
	doneReq    *Request
	doneStart  float64
	doneFinish float64
	doneStatus Status
	doneCyl    int
	doneDist   int
	doneBr     serviceBreakdown
	completeFn func()

	// Fault injection (nil hook = the drive never errs).
	hook      FaultHook
	timeoutMS float64
}

// Config selects a drive's scheduling and caching behaviour. The zero
// value is the paper's configuration: CVSCAN with bias 0 (callers that
// want the experiments' default bias pass 0.2 explicitly), no read-ahead,
// and strict priority-class domination.
type Config struct {
	// Policy is the queue scheduling discipline; zero = CVSCAN.
	Policy Policy
	// CvscanBias is V(R)'s reversal penalty in [0,1], used only by CVSCAN.
	CvscanBias float64
	// ReadAheadTracks enables the track read-ahead buffer: after each
	// successful read the drive holds the rest of the current track plus
	// ReadAheadTracks-1 following tracks, serving contained reads at zero
	// mechanical cost. 0 disables the buffer entirely.
	ReadAheadTracks int
	// AgePromoteMS bounds priority starvation: a queued request older than
	// this is promoted into the top priority class present. 0 = never
	// promote (lower classes wait for the queue above them to drain).
	AgePromoteMS float64
}

// New creates a disk with CVSCAN (V(R)) scheduling, bias ratio r in [0,1]:
// r = 0 degenerates to SSTF, r = 1 to SCAN. The paper uses CVSCAN [Geist87];
// we default experiments to r = 0.2.
func New(eng *sim.Engine, geom Geometry, r float64) *Disk {
	return NewWithConfig(eng, geom, Config{Policy: CVSCAN, CvscanBias: r})
}

// NewWithConfig creates a disk with the full scheduling configuration.
func NewWithConfig(eng *sim.Engine, geom Geometry, cfg Config) *Disk {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	if cfg.CvscanBias < 0 || cfg.CvscanBias > 1 {
		panic(fmt.Sprintf("disk: CVSCAN bias %v out of [0,1]", cfg.CvscanBias))
	}
	if cfg.ReadAheadTracks < 0 {
		panic(fmt.Sprintf("disk: read-ahead of %d tracks", cfg.ReadAheadTracks))
	}
	if cfg.AgePromoteMS < 0 {
		panic(fmt.Sprintf("disk: age promotion bound %v ms", cfg.AgePromoteMS))
	}
	d := &Disk{
		eng:      eng,
		geom:     geom,
		seek:     NewSeekCurve(geom),
		sched:    newSchedQueue(cfg.Policy, cfg.CvscanBias, geom.Cylinders, cfg.AgePromoteMS),
		raTracks: cfg.ReadAheadTracks,
		slot:     -1,
	}
	d.completeFn = d.complete
	return d
}

// Geometry returns the drive geometry.
func (d *Disk) Geometry() Geometry { return d.geom }

// SetSlot tags the drive with its array slot index, used to label
// telemetry segments with the disk track they occurred on. -1 (the
// default) marks a standalone drive.
func (d *Disk) SetSlot(slot int) { d.slot = slot }

// Stats returns a copy of the accumulated counters.
func (d *Disk) Stats() Stats { return d.stats }

// QueueLen returns the number of requests waiting (not counting one in
// service).
func (d *Disk) QueueLen() int { return d.sched.len() }

// Busy reports whether a request is currently in service.
func (d *Disk) Busy() bool { return d.busy }

// HeadCylinder returns the arm's current seek position.
func (d *Disk) HeadCylinder() int { return d.headCyl }

// SetFaultHook installs (or, with nil, removes) a fault hook consulted at
// each transfer's service time. timeoutMS is the stall a Timeout outcome
// costs before the request completes unserved; it must be positive when a
// hook is set.
func (d *Disk) SetFaultHook(hook FaultHook, timeoutMS float64) {
	if hook != nil && timeoutMS <= 0 {
		panic(fmt.Sprintf("disk: fault hook with timeout %v ms", timeoutMS))
	}
	d.hook = hook
	d.timeoutMS = timeoutMS
}

// Submit queues a transfer. The request fires OnDone when it completes.
// Reads wholly inside the read-ahead buffer complete immediately at zero
// mechanical cost; writes overlapping the buffer invalidate it.
func (d *Disk) Submit(r *Request) {
	if r.Count <= 0 {
		panic(fmt.Sprintf("disk: request with count %d", r.Count))
	}
	if r.Start < 0 || r.Start+int64(r.Count) > d.geom.TotalSectors() {
		panic(fmt.Sprintf("disk: request [%d,%d) outside disk of %d sectors",
			r.Start, r.Start+int64(r.Count), d.geom.TotalSectors()))
	}
	if d.raTracks > 0 {
		if r.Write {
			d.raInvalidate(r.Start, r.Count)
		} else if d.raCovers(r.Start, r.Count) {
			d.serveFromBuffer(r)
			return
		}
	}
	r.queuedAt = d.eng.Now()
	r.seq = d.seq
	d.seq++
	r.cyl = int(r.Start / d.geom.SectorsPerCylinder())
	d.sched.push(r)
	if n := d.sched.len(); n > d.stats.MaxQueueLen {
		d.stats.MaxQueueLen = n
	}
	if !d.busy {
		d.startNext()
	}
}

func (d *Disk) startNext() {
	r := d.sched.pop(d.eng.Now(), d.headCyl)
	if r == nil {
		return
	}
	d.busy = true
	start := d.eng.Now()
	d.stats.QueueMS += start - r.queuedAt

	st := OK
	if d.hook != nil {
		st = d.hook(r.Start, r.Count, r.Write)
	}
	if st == Timeout {
		// The transfer was swallowed by a transient fault: the drive is
		// occupied for the timeout window, no sectors move, the arm
		// stays where it was.
		finish := start + d.timeoutMS
		d.stats.BusyMS += d.timeoutMS
		d.stats.Timeouts++
		d.doneReq, d.doneStart, d.doneFinish = r, start, finish
		d.doneStatus, d.doneCyl, d.doneDist = Timeout, d.headCyl, 0
		d.doneBr = serviceBreakdown{}
		d.eng.At(finish, d.completeFn)
		return
	}

	startCyl := d.headCyl
	finish, endCyl, br := d.serviceTime(start, r.Start, r.Count)
	d.stats.SeekMS += br.seek
	d.stats.RotateMS += br.rotate
	d.stats.TransferMS += br.transfer
	d.stats.BusyMS += finish - start
	d.headCyl = endCyl
	tgt := d.geom.Locate(r.Start)
	dist := tgt.Cyl - startCyl
	if dist < 0 {
		dist = -dist
	}
	d.stats.SeekCyls += int64(dist)

	d.doneReq, d.doneStart, d.doneFinish = r, start, finish
	d.doneStatus, d.doneCyl, d.doneDist = st, tgt.Cyl, dist
	d.doneBr = br
	d.eng.At(finish, d.completeFn)
}

// complete delivers the completion of the request in service. It copies the
// pending state to locals first: startNext reuses the done* fields for the
// next transfer before OnDone runs.
func (d *Disk) complete() {
	r := d.doneReq
	start, finish, st := d.doneStart, d.doneFinish, d.doneStatus
	cyl, dist := d.doneCyl, d.doneDist
	br := d.doneBr
	d.doneReq = nil
	d.busy = false
	d.stats.Completed++
	if st != Timeout {
		d.stats.SectorsMoved += int64(r.Count)
		if st == MediaError {
			d.stats.MediaErrors++
		} else if !r.Write && d.raTracks > 0 {
			// A clean read leaves the track buffer primed behind it.
			d.raFill(r.Start, r.Count)
		}
	}
	if sp := r.Span; sp != nil {
		// Segment boundaries come from the aggregated breakdown: the
		// per-track interleaving of seek/rotate/transfer collapses into
		// one contiguous window per kind.
		if start > r.queuedAt {
			sp.Segment(telemetry.SegQueue, d.slot, r.queuedAt, start)
		}
		if st == Timeout {
			sp.Segment(telemetry.SegTimeout, d.slot, start, finish)
		} else {
			t := start
			if br.seek > 0 {
				sp.Segment(telemetry.SegSeek, d.slot, t, t+br.seek)
				t += br.seek
			}
			if br.rotate > 0 {
				sp.Segment(telemetry.SegRotate, d.slot, t, t+br.rotate)
				t += br.rotate
			}
			if finish > t {
				sp.Segment(telemetry.SegTransfer, d.slot, t, finish)
			}
		}
	}
	if len(d.observers) > 0 {
		ev := Event{
			QueuedAt: r.queuedAt, Start: start, Finish: finish,
			Cyl: cyl, SeekDist: dist,
			Sectors: r.Count, Write: r.Write, Priority: r.Priority,
			Status: st,
		}
		for _, fn := range d.observers {
			fn(ev)
		}
	}
	// Start the next transfer before delivering the completion, so the
	// arm never idles waiting on upper-layer work.
	d.startNext()
	if r.OnDone != nil {
		r.OnDone(start, finish, st)
	}
}

type serviceBreakdown struct {
	seek, rotate, transfer float64
}

// serviceTime computes the completion time of a transfer beginning service
// at time now, along with the final head cylinder. The transfer is split
// into per-track runs; each run pays any needed head/cylinder switch, then
// a rotational delay to the run's first sector, then reads contiguously.
func (d *Disk) serviceTime(now float64, start int64, count int) (finish float64, endCyl int, br serviceBreakdown) {
	g := d.geom
	t := now
	curCyl := d.headCyl
	first := true

	lba := start
	remaining := count
	for remaining > 0 {
		chs := g.Locate(lba)
		// Length of the run on this track.
		run := g.SectorsPerTrack - chs.Sector
		if run > remaining {
			run = remaining
		}
		// Arm movement to the run's cylinder.
		if chs.Cyl != curCyl || first {
			st := d.seek.Time(chs.Cyl - curCyl)
			t += st
			br.seek += st
			curCyl = chs.Cyl
		}
		first = false
		// Rotational delay to the run's first physical sector.
		globalTrack := int64(chs.Cyl)*int64(g.TracksPerCyl) + int64(chs.Track)
		phys := g.PhysicalSector(globalTrack, chs.Sector)
		rot := d.rotationalDelay(t, phys)
		t += rot
		br.rotate += rot
		// Contiguous transfer of the run.
		xfer := float64(run) / float64(g.SectorsPerTrack) * g.RevolutionMS
		t += xfer
		br.transfer += xfer

		lba += int64(run)
		remaining -= run
	}
	return t, curCyl, br
}

// rotationalDelay returns the time until physical sector slot `phys` next
// arrives under the head, given the platter's continuous rotation.
func (d *Disk) rotationalDelay(t float64, phys int) float64 {
	g := d.geom
	spt := float64(g.SectorsPerTrack)
	// Angular position in sector slots at time t. Floor-based fractional
	// part instead of math.Mod: Mod's exact-remainder loop dominates this
	// function's cost, and sub-ulp angular error is far below the guard
	// threshold applied beneath.
	f := t / g.RevolutionMS
	pos := (f - math.Floor(f)) * spt
	target := float64(phys)
	delta := target - pos
	if delta < 0 {
		delta += spt
	}
	// Guard against floating-point jitter: when the head lands exactly on
	// the target sector, rounding can make delta a hair below a full
	// revolution, charging a spurious rotation slip.
	if spt-delta < 1e-6 {
		delta = 0
	}
	return delta / spt * g.RevolutionMS
}

// AvgRandomAccessMS returns the model's expected service time for one
// random transfer of `sectors` sectors: average seek + half rotation +
// transfer. For the IBM 0661 and 8-sector (4 KB) transfers this is about
// 21.8 ms, i.e. ~46 accesses/second, matching the paper.
func (d *Disk) AvgRandomAccessMS(sectors int) float64 {
	g := d.geom
	return g.AvgSeekMS + g.RevolutionMS/2 +
		float64(sectors)/float64(g.SectorsPerTrack)*g.RevolutionMS
}
