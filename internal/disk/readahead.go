package disk

import "declust/internal/telemetry"

// Track read-ahead. Real drive electronics keep reading past the host's
// transfer into a track buffer, because the platter is rotating under the
// head anyway; a subsequent read of those sectors is served from RAM with
// no mechanical work at all. The model: after every successful read, the
// buffer covers the remainder of the track holding the transfer's last
// sector, plus the next ReadAheadTracks-1 whole tracks. A read wholly
// inside the buffer completes at the moment it is submitted — zero seek,
// zero rotation, zero transfer time — without entering the queue or
// occupying the arm. Any write overlapping the buffer invalidates all of
// it (the platter is the only authority once it changes).

// raCovers reports whether [start, start+count) is a read-ahead hit.
func (d *Disk) raCovers(start int64, count int) bool {
	return d.raHi > d.raLo && start >= d.raLo && start+int64(count) <= d.raHi
}

// raFill sets the buffer after a successful read of [start, start+count):
// from the end of the transfer to the end of its last track, plus
// raTracks-1 following tracks. A transfer ending exactly on a track
// boundary leaves only the following raTracks-1 tracks (the "rest of the
// current track" is empty).
func (d *Disk) raFill(start int64, count int) {
	end := start + int64(count)
	spt := int64(d.geom.SectorsPerTrack)
	hi := ((end-1)/spt + int64(d.raTracks)) * spt
	if total := d.geom.TotalSectors(); hi > total {
		hi = total
	}
	d.raLo, d.raHi = end, hi
}

// raInvalidate drops the buffer if [start, start+count) overlaps it.
func (d *Disk) raInvalidate(start int64, count int) {
	if d.raHi > d.raLo && start < d.raHi && start+int64(count) > d.raLo {
		d.raLo, d.raHi = 0, 0
	}
}

// raHit delivers one buffered read completion. Hits are completed through
// an engine event (never synchronously inside Submit) so upper layers see
// the same reentrancy discipline as mechanical completions; nodes are
// pooled with the callback pre-bound so steady-state hits allocate nothing.
type raHit struct {
	d      *Disk
	r      *Request
	fireFn func()
}

func (d *Disk) getHit() *raHit {
	if n := len(d.hitFree); n > 0 {
		h := d.hitFree[n-1]
		d.hitFree = d.hitFree[:n-1]
		return h
	}
	h := &raHit{d: d}
	h.fireFn = h.fire
	return h
}

// serveFromBuffer completes a read from the read-ahead buffer at zero
// mechanical cost. The buffer's window advances past the consumed range so
// a sequential stream keeps hitting until the prefetched tracks run out.
func (d *Disk) serveFromBuffer(r *Request) {
	now := d.eng.Now()
	r.queuedAt = now
	r.seq = d.seq
	d.seq++
	if end := r.Start + int64(r.Count); end > d.raLo {
		d.raLo = end
	}
	h := d.getHit()
	h.r = r
	d.eng.At(now, h.fireFn)
}

func (h *raHit) fire() {
	d, r := h.d, h.r
	h.r = nil
	d.hitFree = append(d.hitFree, h)
	now := d.eng.Now()
	d.stats.Completed++
	d.stats.CacheHits++
	d.stats.CacheHitSectors += int64(r.Count)
	if sp := r.Span; sp != nil {
		// Zero-duration by design: the buffer answers instantly. The
		// segment marks the transfer as mechanically free.
		sp.Segment(telemetry.SegCacheHit, d.slot, now, now)
	}
	if len(d.observers) > 0 {
		ev := Event{
			QueuedAt: r.queuedAt, Start: now, Finish: now,
			Cyl: d.headCyl, SeekDist: 0,
			Sectors: r.Count, Write: false, Priority: r.Priority,
			Status: OK, CacheHit: true,
		}
		for _, fn := range d.observers {
			fn(ev)
		}
	}
	if r.OnDone != nil {
		r.OnDone(now, now, OK)
	}
}
