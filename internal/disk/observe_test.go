package disk

import (
	"math/rand"
	"strings"
	"testing"

	"declust/internal/sim"
)

func TestObserverSeesEveryCompletion(t *testing.T) {
	eng := sim.New()
	d := New(eng, IBM0661(), 0.2)
	var events []Event
	d.SetObserver(func(e Event) { events = append(events, e) })
	rng := rand.New(rand.NewSource(5))
	const n = 200
	for i := 0; i < n; i++ {
		d.Submit(&Request{Start: rng.Int63n(d.Geometry().TotalSectors()/8) * 8, Count: 8, Write: i%2 == 0})
	}
	eng.Run()
	if len(events) != n {
		t.Fatalf("observed %d events, want %d", len(events), n)
	}
	for _, e := range events {
		if e.Finish <= e.Start || e.Start < e.QueuedAt {
			t.Fatalf("bad timestamps %+v", e)
		}
		if e.Cyl < 0 || e.Cyl >= d.Geometry().Cylinders {
			t.Fatalf("bad cylinder %+v", e)
		}
		if e.SeekDist < 0 || e.SeekDist >= d.Geometry().Cylinders {
			t.Fatalf("bad seek distance %+v", e)
		}
	}
}

func TestObserverRemovable(t *testing.T) {
	eng := sim.New()
	d := New(eng, IBM0661(), 0.2)
	calls := 0
	d.SetObserver(func(Event) { calls++ })
	d.Submit(&Request{Start: 0, Count: 8})
	eng.Run()
	d.SetObserver(nil)
	d.Submit(&Request{Start: 0, Count: 8})
	eng.Run()
	if calls != 1 {
		t.Fatalf("observer called %d times, want 1", calls)
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{QueuedAt: 0, Start: 1, Finish: 3, SeekDist: 0, Write: false},
		{QueuedAt: 0, Start: 2, Finish: 6, SeekDist: 10, Write: true},
		{QueuedAt: 1, Start: 4, Finish: 7, SeekDist: 100, Write: true},
		{QueuedAt: 2, Start: 6, Finish: 9, SeekDist: 20, Write: false},
	}
	s := Summarize(events)
	if s.Events != 4 || s.Reads != 2 || s.Writes != 2 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.SeekZero != 0.25 {
		t.Fatalf("seek zero %v, want 0.25", s.SeekZero)
	}
	if s.SeekP50 != 20 || s.SeekP90 != 100 {
		t.Fatalf("seek percentiles %d/%d, want 20/100", s.SeekP50, s.SeekP90)
	}
	// service: (2+4+3+3)/4 = 3; wait: (1+2+3+4)/4 = 2.5.
	if s.MeanSvcMS != 3 || s.MeanWaitMS != 2.5 {
		t.Fatalf("svc/wait %v/%v, want 3/2.5", s.MeanSvcMS, s.MeanWaitMS)
	}
	if !strings.Contains(s.String(), "4 events") {
		t.Fatalf("summary string: %s", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Events != 0 || s.MeanSvcMS != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSequentialStreamShowsZeroSeeks(t *testing.T) {
	// The observer exposes the effect Table 8-1 hinges on: sequential
	// transfers barely move the arm.
	eng := sim.New()
	d := New(eng, IBM0661(), 0.2)
	var events []Event
	d.SetObserver(func(e Event) { events = append(events, e) })
	for i := 0; i < 300; i++ {
		d.Submit(&Request{Start: int64(i) * 8, Count: 8, Write: true})
	}
	eng.Run()
	s := Summarize(events)
	if s.SeekZero < 0.95 {
		t.Fatalf("sequential stream only %.0f%% zero seeks", 100*s.SeekZero)
	}
}
