package disk

// cvscan implements the V(R) continuum of disk scheduling algorithms
// [Geist87]: a request's effective distance is its cylinder distance, plus a
// penalty of r*Cylinders when serving it would reverse the current sweep
// direction. r = 0 is shortest-seek-time-first; r = 1 is SCAN. Ties break by
// arrival order. Priority classes strictly dominate: only requests of the
// highest priority present compete.
type cvscan struct {
	bias          float64
	cyls          int
	sectorsPerCyl int64
	pending       []*Request
	// dir is the current sweep direction: +1 toward higher cylinders,
	// -1 toward lower, 0 before any movement.
	dir int
}

func newCvscan(r float64, cylinders int) *cvscan {
	return &cvscan{bias: r, cyls: cylinders}
}

func (s *cvscan) len() int { return len(s.pending) }

func (s *cvscan) push(r *Request, g Geometry) {
	if s.sectorsPerCyl == 0 {
		s.sectorsPerCyl = g.SectorsPerCylinder()
	}
	s.pending = append(s.pending, r)
}

// pop removes and returns the best request for a head at cylinder headCyl,
// or nil if none are pending.
func (s *cvscan) pop(headCyl int) *Request {
	if len(s.pending) == 0 {
		return nil
	}
	// Restrict to the highest priority class present.
	maxPrio := s.pending[0].Priority
	for _, r := range s.pending[1:] {
		if r.Priority > maxPrio {
			maxPrio = r.Priority
		}
	}

	best := -1
	var bestCost float64
	for i, r := range s.pending {
		if r.Priority != maxPrio {
			continue
		}
		dist := s.cylOf(r) - headCyl
		cost := float64(dist)
		reverse := false
		if dist < 0 {
			cost = -cost
			reverse = s.dir > 0
		} else if dist > 0 {
			reverse = s.dir < 0
		}
		if reverse {
			cost += s.bias * float64(s.cyls)
		}
		if best == -1 || cost < bestCost ||
			(cost == bestCost && r.seq < s.pending[best].seq) {
			best = i
			bestCost = cost
		}
	}
	r := s.pending[best]
	s.pending = append(s.pending[:best], s.pending[best+1:]...)

	if cyl := s.cylOf(r); cyl > headCyl {
		s.dir = 1
	} else if cyl < headCyl {
		s.dir = -1
	}
	return r
}

func (s *cvscan) cylOf(r *Request) int {
	return int(r.Start / s.sectorsPerCyl)
}
