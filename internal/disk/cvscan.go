package disk

// pickCVSCAN implements the V(R) continuum of disk scheduling algorithms
// [Geist87]: a request's effective distance is its cylinder distance, plus a
// penalty of bias*Cylinders when serving it would reverse the current sweep
// direction. bias = 0 is shortest-seek-time-first; bias = 1 is SCAN. Ties
// break by arrival order. This is the paper's raidSim scheduler and the
// default Policy.
func (s *schedQueue) pickCVSCAN(maxPrio int, now float64, headCyl int) int {
	best := -1
	var bestCost float64
	for i, r := range s.pending {
		if !s.eligible(r, maxPrio, now) {
			continue
		}
		dist := r.cyl - headCyl
		cost := float64(dist)
		reverse := false
		if dist < 0 {
			cost = -cost
			reverse = s.dir > 0
		} else if dist > 0 {
			reverse = s.dir < 0
		}
		if reverse {
			cost += s.bias * float64(s.cyls)
		}
		if best == -1 || cost < bestCost ||
			(cost == bestCost && r.seq < s.pending[best].seq) {
			best = i
			bestCost = cost
		}
	}
	return best
}
