// Package metrics is the simulator's unified instrumentation layer: a
// registry of named counters, gauges, log-bucketed latency histograms and
// sim-time series, a structured event tracer (JSONL), and deterministic
// exporters (Prometheus-style text, CSV).
//
// Everything is keyed on simulated time, so a run with the same seed and
// configuration produces byte-identical exports. The simulator is
// single-threaded, so no instrument takes locks. Every instrument method
// is safe on a nil receiver and does nothing, which lets hot paths cache
// instrument pointers once and skip all bookkeeping when instrumentation
// is disabled:
//
//	reg := metrics.NewRegistry()        // or nil to disable
//	c := reg.Counter("array_user_reads") // nil when reg is nil
//	c.Inc()                              // no-op when c is nil
package metrics

import "sort"

// Registry holds named instruments. The zero value is not usable; a nil
// *Registry is a valid "disabled" registry whose getters return nil
// instruments.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	series   map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		series:   make(map[string]*Series),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op counter) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the default latency bucketing (0.25 ms base, doubling, 28 buckets —
// top finite bound ≈ 9.3 simulated hours).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(0.25, 2, 28)
		r.hists[name] = h
	}
	return h
}

// Series returns the named time series, creating it on first use.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	s, ok := r.series[name]
	if !ok {
		s = &Series{}
		r.series[name] = s
	}
	return s
}

// sortedKeys returns map keys in lexicographic order, the export order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Counter is a monotonically increasing integer.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n++
	}
}

// Add adds d, which must be non-negative.
func (c *Counter) Add(d int64) {
	if c != nil && d > 0 {
		c.n += d
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge is a settable float value.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram accumulates observations into logarithmic buckets: bucket i
// covers (base·growth^(i−1), base·growth^i], the first bucket covers
// (−inf, base], and one overflow bucket catches everything beyond the
// last bound. Memory is fixed at construction, unlike stats.Sample which
// retains every observation.
type Histogram struct {
	base, growth float64
	counts       []int64 // len = buckets; counts[len-1] is the overflow
	count        int64
	sum          float64
	min, max     float64
}

func newHistogram(base, growth float64, buckets int) *Histogram {
	return &Histogram{base: base, growth: growth, counts: make([]int64, buckets)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	ub := h.base
	for i := 0; i < len(h.counts)-1; i++ {
		if v <= ub {
			h.counts[i]++
			return
		}
		ub *= h.growth
	}
	h.counts[len(h.counts)-1]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile returns an upper bound on the q-th quantile (0 <= q <= 1): the
// upper bound of the bucket holding the q·count-th observation. Returns 0
// when empty; observations in the overflow bucket report the recorded max.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen int64
	ub := h.base
	for i, c := range h.counts {
		seen += c
		if seen > target {
			if i == len(h.counts)-1 {
				return h.max
			}
			return ub
		}
		ub *= h.growth
	}
	return h.max
}

// Summary is a histogram's headline statistics in one struct. Quantiles
// are bucket upper bounds (see Quantile); P999 is the 99.9th percentile,
// the tail the paper's continuous-operation argument cares about.
type Summary struct {
	Count               int64
	Mean                float64
	Min, Max            float64
	P50, P90, P99, P999 float64
}

// Summary returns the histogram's summary statistics (zero value on nil
// or empty).
func (h *Histogram) Summary() Summary {
	if h == nil || h.count == 0 {
		return Summary{}
	}
	return Summary{
		Count: h.count, Mean: h.Mean(), Min: h.min, Max: h.max,
		P50: h.Quantile(0.50), P90: h.Quantile(0.90),
		P99: h.Quantile(0.99), P999: h.Quantile(0.999),
	}
}

// Series is a sequence of (sim-time, value) samples appended on a fixed
// cadence by the runner's sampler and exported as CSV.
type Series struct {
	ts []float64
	vs []float64
}

// Observe appends one sample. Times must be non-decreasing (the sampler's
// cadence guarantees it); Observe does not check.
func (s *Series) Observe(t, v float64) {
	if s == nil {
		return
	}
	s.ts = append(s.ts, t)
	s.vs = append(s.vs, v)
}

// Len returns the number of samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.ts)
}

// Last returns the most recent sample, or zeros when empty.
func (s *Series) Last() (t, v float64) {
	if s == nil || len(s.ts) == 0 {
		return 0, 0
	}
	return s.ts[len(s.ts)-1], s.vs[len(s.vs)-1]
}
