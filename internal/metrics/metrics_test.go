package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	s := r.Series("s")
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(1)
	s.Observe(1, 2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || s.Len() != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry export: %v, %q", err, buf.String())
	}
	if err := r.WriteCSV(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry CSV: %v, %q", err, buf.String())
	}
}

func TestCounterGaugeIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	a.Inc()
	if r.Counter("x") != a || r.Counter("x").Value() != 1 {
		t.Fatal("counter not shared by name")
	}
	r.Gauge("y").Set(2.5)
	if r.Gauge("y").Value() != 2.5 {
		t.Fatal("gauge not shared by name")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := newHistogram(1, 2, 5) // bounds 1,2,4,8,+Inf
	for _, v := range []float64{0.5, 1, 1.5, 3, 3, 7, 100} {
		h.Observe(v)
	}
	want := []int64{2, 1, 2, 1, 1}
	for i, c := range h.counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, c, want[i], h.counts)
		}
	}
	if h.Count() != 7 || h.Min() != 0.5 || h.Max() != 100 {
		t.Fatalf("count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
	if got := h.Sum(); got != 116 {
		t.Fatalf("sum=%v", got)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0=%v, want first bucket bound 1", q)
	}
	if q := h.Quantile(0.5); q != 4 {
		t.Fatalf("q50=%v, want 4", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("q100=%v, want recorded max 100", q)
	}
}

func TestHistogramMeanEmpty(t *testing.T) {
	var h *Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram stats nonzero")
	}
	h2 := newHistogram(1, 2, 3)
	if h2.Mean() != 0 {
		t.Fatal("empty histogram mean nonzero")
	}
}

func TestPrometheusExportDeterministicAndSorted(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter(`ops{disk="1"}`).Add(3)
		r.Counter(`ops{disk="0"}`).Inc()
		r.Gauge("util").Set(0.25)
		h := r.Histogram("lat_ms")
		h.Observe(0.1)
		h.Observe(10)
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("export not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "# TYPE ops counter") ||
		!strings.Contains(a, `ops{disk="0"} 1`) ||
		!strings.Contains(a, `ops{disk="1"} 3`) {
		t.Fatalf("counters missing:\n%s", a)
	}
	if strings.Index(a, `disk="0"`) > strings.Index(a, `disk="1"`) {
		t.Fatalf("not sorted:\n%s", a)
	}
	for _, want := range []string{
		"# TYPE lat_ms histogram",
		`lat_ms_bucket{le="0.25"} 1`,
		`lat_ms_bucket{le="+Inf"} 2`,
		"lat_ms_sum 10.1",
		"lat_ms_count 2",
		"lat_ms_min 0.1",
		"lat_ms_max 10",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("missing %q in:\n%s", want, a)
		}
	}
}

func TestPrometheusHistogramLabelsMerge(t *testing.T) {
	r := NewRegistry()
	r.Histogram(`svc_ms{disk="7"}`).Observe(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`svc_ms_bucket{disk="7",le="0.25"} 0`,
		`svc_ms_count{disk="7"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCSVExport(t *testing.T) {
	r := NewRegistry()
	s := r.Series(`q{disk="0"}`)
	s.Observe(1000, 3)
	s.Observe(2000, 4)
	r.Series("b").Observe(1000, 0.5)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "series,t_ms,value\nb,1000,0.5\n" +
		"\"q{disk=\"\"0\"\"}\",1000,3\n\"q{disk=\"\"0\"\"}\",2000,4\n"
	if buf.String() != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", buf.String(), want)
	}
	if n := s.Len(); n != 2 {
		t.Fatalf("series len %d", n)
	}
	if tm, v := s.Last(); tm != 2000 || v != 4 {
		t.Fatalf("last = %v,%v", tm, v)
	}
}

func TestJSONLTracer(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Access(AccessEvent{ArriveMS: 1, DoneMS: 3, Read: true, Unit: 7, Count: 1})
	j.Disk(DiskEvent{Disk: 2, QueuedMS: 1, StartMS: 1.5, DoneMS: 3, Sectors: 8})
	j.Recon(ReconEvent{Ev: EvReconCycle, TMS: 9, Offset: 4, DoneUnits: 1, TotalUnits: 10, ReadMS: 2, WriteMS: 3})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	var ev map[string]any
	for i, kind := range []string{EvAccess, EvDisk, EvReconCycle} {
		if err := json.Unmarshal([]byte(lines[i]), &ev); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if ev["ev"] != kind {
			t.Fatalf("line %d kind %v, want %s", i, ev["ev"], kind)
		}
	}
}

func TestNopTracer(t *testing.T) {
	var tr Tracer = Nop{}
	tr.Access(AccessEvent{})
	tr.Disk(DiskEvent{})
	tr.Recon(ReconEvent{})
}

func TestSplitName(t *testing.T) {
	for _, tc := range []struct{ in, base, labels string }{
		{"plain", "plain", ""},
		{`x{disk="0"}`, "x", `disk="0"`},
		{"odd{unclosed", "odd{unclosed", ""},
	} {
		b, l := splitName(tc.in)
		if b != tc.base || l != tc.labels {
			t.Fatalf("splitName(%q) = %q,%q", tc.in, b, l)
		}
	}
}
