package metrics

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestHistogramSummary(t *testing.T) {
	// A heavy tail only p99.9 can see: 999 fast observations, one stall.
	h := NewRegistry().Histogram("lat_ms")
	for i := 0; i < 999; i++ {
		h.Observe(1)
	}
	h.Observe(5000)
	s := h.Summary()
	if s.Count != 1000 || s.Min != 1 || s.Max != 5000 {
		t.Fatalf("summary basics: %+v", s)
	}
	if s.Mean != 5.999 {
		t.Errorf("mean %v, want 5.999", s.Mean)
	}
	// Quantiles are bucket upper bounds: ordered, and the tail quantile
	// must reach the stall while p99 stays with the fast mass.
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999) {
		t.Errorf("quantiles out of order: %+v", s)
	}
	if s.P99 >= 5000 {
		t.Errorf("p99 = %v caught the 1-in-1000 stall", s.P99)
	}
	if s.P999 < 5000 {
		t.Errorf("p99.9 = %v missed the 1-in-1000 stall", s.P999)
	}
}

func TestHistogramSummaryEmptyAndNil(t *testing.T) {
	var h *Histogram
	if s := h.Summary(); s != (Summary{}) {
		t.Errorf("nil histogram summary %+v, want zero", s)
	}
	if s := NewRegistry().Histogram("x").Summary(); s != (Summary{}) {
		t.Errorf("empty histogram summary %+v, want zero", s)
	}
}

func TestPrometheusQuantileLines(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram(`resp_ms{disk="3"}`)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`resp_ms_p50{disk="3"} `, `resp_ms_p90{disk="3"} `,
		`resp_ms_p99{disk="3"} `, `resp_ms_p999{disk="3"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	// An observation-free histogram exports buckets but no quantiles.
	reg2 := NewRegistry()
	reg2.Histogram("idle_ms")
	buf.Reset()
	if err := reg2.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "_p999") {
		t.Errorf("empty histogram exported quantiles:\n%s", buf.String())
	}
}

// errWriter fails after n bytes, driving the exporters' error returns.
type errWriter struct{ n int }

func (e *errWriter) Write(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, errors.New("pipe closed")
	}
	if len(p) > e.n {
		n := e.n
		e.n = 0
		return n, errors.New("pipe closed")
	}
	e.n -= len(p)
	return len(p), nil
}

func TestExportWriterErrors(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(1)
	reg.Gauge("g").Set(2)
	h := reg.Histogram("h_ms")
	h.Observe(5)
	reg.Series("s").Observe(100, 1.5)

	var prom, csv bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < prom.Len(); n += 13 {
		if err := reg.WritePrometheus(&errWriter{n: n}); err == nil {
			t.Fatalf("WritePrometheus with writer failing at byte %d reported no error", n)
		}
	}
	for n := 0; n < csv.Len(); n += 13 {
		if err := reg.WriteCSV(&errWriter{n: n}); err == nil {
			t.Fatalf("WriteCSV with writer failing at byte %d reported no error", n)
		}
	}

	// Nil registry exporters write nothing and succeed.
	var nilReg *Registry
	if err := nilReg.WritePrometheus(&errWriter{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
	if err := nilReg.WriteCSV(&errWriter{}); err != nil {
		t.Errorf("nil registry WriteCSV: %v", err)
	}
}

func TestCSVQuotesAwkwardNames(t *testing.T) {
	reg := NewRegistry()
	reg.Series(`odd,"name"`).Observe(1, 2)
	var buf bytes.Buffer
	if err := reg.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"odd,""name""",1,2`) {
		t.Errorf("awkward series name not CSV-quoted:\n%s", buf.String())
	}
}
