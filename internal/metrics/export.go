package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Instrument names may carry Prometheus-style labels inline, e.g.
// `disk_busy_ms{disk="3"}`. splitName separates the base name from the
// label block so exporters can merge extra labels (histogram `le`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// fmtFloat renders a float the same way on every run and platform.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus emits every counter, gauge and histogram in the
// Prometheus text exposition style, sorted by name: deterministic output
// for deterministic input. Series are not included; see WriteCSV.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	lastType := ""
	header := func(base, typ string) {
		key := typ + " " + base
		if key != lastType {
			fmt.Fprintf(bw, "# TYPE %s %s\n", base, typ)
			lastType = key
		}
	}
	for _, name := range sortedKeys(r.counters) {
		base, _ := splitName(name)
		header(base, "counter")
		fmt.Fprintf(bw, "%s %d\n", name, r.counters[name].n)
	}
	for _, name := range sortedKeys(r.gauges) {
		base, _ := splitName(name)
		header(base, "gauge")
		fmt.Fprintf(bw, "%s %s\n", name, fmtFloat(r.gauges[name].v))
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		base, labels := splitName(name)
		header(base, "histogram")
		sep := ""
		if labels != "" {
			sep = ","
		}
		var cum int64
		ub := h.base
		for i, c := range h.counts {
			cum += c
			le := fmtFloat(ub)
			if i == len(h.counts)-1 {
				le = "+Inf"
			}
			fmt.Fprintf(bw, "%s_bucket{%s%sle=%q} %d\n", base, labels, sep, le, cum)
			ub *= h.growth
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(bw, "%s_sum%s %s\n", base, suffix, fmtFloat(h.sum))
		fmt.Fprintf(bw, "%s_count%s %d\n", base, suffix, h.count)
		if h.count > 0 {
			fmt.Fprintf(bw, "%s_min%s %s\n", base, suffix, fmtFloat(h.min))
			fmt.Fprintf(bw, "%s_max%s %s\n", base, suffix, fmtFloat(h.max))
			s := h.Summary()
			fmt.Fprintf(bw, "%s_p50%s %s\n", base, suffix, fmtFloat(s.P50))
			fmt.Fprintf(bw, "%s_p90%s %s\n", base, suffix, fmtFloat(s.P90))
			fmt.Fprintf(bw, "%s_p99%s %s\n", base, suffix, fmtFloat(s.P99))
			fmt.Fprintf(bw, "%s_p999%s %s\n", base, suffix, fmtFloat(s.P999))
		}
	}
	return bw.Flush()
}

// WriteCSV emits every time series in long form — `series,t_ms,value` —
// sorted by series name, samples in observation order.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "series,t_ms,value"); err != nil {
		return err
	}
	for _, name := range sortedKeys(r.series) {
		s := r.series[name]
		field := name
		if strings.ContainsAny(name, ",\"") {
			field = `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
		}
		for i := range s.ts {
			fmt.Fprintf(bw, "%s,%s,%s\n", field, fmtFloat(s.ts[i]), fmtFloat(s.vs[i]))
		}
	}
	return bw.Flush()
}
