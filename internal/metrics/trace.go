package metrics

import (
	"bufio"
	"encoding/json"
	"io"
)

// Event kinds emitted by the simulator.
const (
	EvAccess     = "access"      // one user access, arrival → completion
	EvDisk       = "disk"        // one disk request, queue → service → done
	EvReconStart = "recon_start" // reconstruction sweep began
	EvReconCycle = "recon_cycle" // one reconstruction cycle finished
	EvReconDone  = "recon_done"  // every lost unit is live again
	EvLSE        = "lse"         // a latent sector error arrived on a platter
	EvRepair     = "repair"      // a latent error was repaired from parity
	EvDataLoss   = "data_loss"   // a stripe lost more units than parity covers
)

// AccessEvent records one user access's lifecycle.
type AccessEvent struct {
	Ev       string  `json:"ev"` // EvAccess
	ArriveMS float64 `json:"arrive_ms"`
	DoneMS   float64 `json:"done_ms"`
	Read     bool    `json:"read"`
	Unit     int64   `json:"unit"`
	Count    int     `json:"count"`
}

// DiskEvent records one disk request's lifecycle: time in queue is
// StartMS−QueuedMS, service time is DoneMS−StartMS.
type DiskEvent struct {
	Ev       string  `json:"ev"` // EvDisk
	Disk     int     `json:"disk"`
	QueuedMS float64 `json:"queued_ms"`
	StartMS  float64 `json:"start_ms"`
	DoneMS   float64 `json:"done_ms"`
	Write    bool    `json:"write"`
	Sectors  int     `json:"sectors"`
	SeekCyls int     `json:"seek_cyls"`
	Priority int     `json:"prio"`
}

// ReconEvent records reconstruction lifecycle milestones. For
// EvReconCycle, ReadMS/WriteMS are the cycle's two phase durations and
// Offset the reconstructed unit; for EvReconStart/EvReconDone they are
// zero.
type ReconEvent struct {
	Ev         string  `json:"ev"`
	TMS        float64 `json:"t_ms"`
	Offset     int64   `json:"offset"`
	DoneUnits  int64   `json:"done_units"`
	TotalUnits int64   `json:"total_units"`
	ReadMS     float64 `json:"read_ms"`
	WriteMS    float64 `json:"write_ms"`
}

// FaultEvent records fault-injection activity: LSE arrivals (Disk +
// Sector), parity repairs of latent errors (Stripe + Unit), and data-loss
// events (Stripe + LostUnits when redundancy was exceeded).
type FaultEvent struct {
	Ev        string  `json:"ev"`
	TMS       float64 `json:"t_ms"`
	Disk      int     `json:"disk"`
	Sector    int64   `json:"sector"`
	Stripe    int64   `json:"stripe"`
	Unit      int     `json:"unit"`
	LostUnits int     `json:"lost_units"`
}

// Tracer receives structured simulation events. Implementations must not
// perturb the simulation: they are called off the timing path. The
// simulator guards every call site with a nil check, so a nil Tracer is
// the zero-cost default.
type Tracer interface {
	Access(e AccessEvent)
	Disk(e DiskEvent)
	Recon(e ReconEvent)
	Fault(e FaultEvent)
}

// Nop is a Tracer that discards everything.
type Nop struct{}

// Access implements Tracer.
func (Nop) Access(AccessEvent) {}

// Disk implements Tracer.
func (Nop) Disk(DiskEvent) {}

// Recon implements Tracer.
func (Nop) Recon(ReconEvent) {}

// Fault implements Tracer.
func (Nop) Fault(FaultEvent) {}

// JSONL writes each event as one JSON object per line, in emission order:
// deterministic for a deterministic simulation. Call Flush before reading
// the destination.
type JSONL struct {
	bw  *bufio.Writer
	err error
}

// NewJSONL returns a tracer writing to w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{bw: bufio.NewWriter(w)} }

func (j *JSONL) emit(v any) {
	if j.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.bw.Write(b); err != nil {
		j.err = err
		return
	}
	j.err = j.bw.WriteByte('\n')
}

// Access implements Tracer.
func (j *JSONL) Access(e AccessEvent) { e.Ev = EvAccess; j.emit(e) }

// Disk implements Tracer.
func (j *JSONL) Disk(e DiskEvent) { e.Ev = EvDisk; j.emit(e) }

// Recon implements Tracer. The event's Ev field must already name a
// reconstruction milestone (EvReconStart, EvReconCycle, EvReconDone).
func (j *JSONL) Recon(e ReconEvent) { j.emit(e) }

// Fault implements Tracer. The event's Ev field must already name a fault
// kind (EvLSE, EvRepair, EvDataLoss).
func (j *JSONL) Fault(e FaultEvent) { j.emit(e) }

// Flush drains the buffer and reports the first error encountered by any
// emission.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	return j.bw.Flush()
}
