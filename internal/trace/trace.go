// Package trace records and replays user-level I/O traces. A trace is an
// ordered sequence of user accesses with arrival and completion times;
// it can be written to a compact text format, read back, inspected, and
// replayed against a simulated array with the original arrival spacing —
// the standard methodology for trace-driven storage studies, complementing
// the paper's synthetic workload.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"declust/internal/workload"
)

// Record is one completed user access.
type Record struct {
	ArriveMS float64
	DoneMS   float64
	Op       workload.Op
}

// Latency returns the access's response time in milliseconds.
func (r Record) Latency() float64 { return r.DoneMS - r.ArriveMS }

// Log accumulates records. The zero value is ready to use.
type Log struct {
	records []Record
}

// Add appends one record.
func (l *Log) Add(r Record) { l.records = append(l.records, r) }

// Len returns the number of records.
func (l *Log) Len() int { return len(l.records) }

// Records returns the records sorted by arrival time.
func (l *Log) Records() []Record {
	out := append([]Record(nil), l.records...)
	sort.Slice(out, func(i, j int) bool { return out[i].ArriveMS < out[j].ArriveMS })
	return out
}

// WriteTo emits the trace in text form, one record per line:
//
//	<arriveMS> <doneMS> R|W <unit> <count>
//
// Records are written in arrival order. It returns the bytes written.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, r := range l.Records() {
		dir := "R"
		if !r.Op.Read {
			dir = "W"
		}
		k, err := fmt.Fprintf(bw, "%.6f %.6f %s %d %d\n", r.ArriveMS, r.DoneMS, dir, r.Op.Unit, r.Op.Count)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a trace written by WriteTo.
func Read(r io.Reader) (*Log, error) {
	l := &Log{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		var rec Record
		var dir string
		if _, err := fmt.Sscanf(text, "%f %f %s %d %d",
			&rec.ArriveMS, &rec.DoneMS, &dir, &rec.Op.Unit, &rec.Op.Count); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		switch dir {
		case "R":
			rec.Op.Read = true
		case "W":
			rec.Op.Read = false
		default:
			return nil, fmt.Errorf("trace: line %d: direction %q", line, dir)
		}
		if rec.Op.Count <= 0 || rec.Op.Unit < 0 || rec.DoneMS < rec.ArriveMS {
			return nil, fmt.Errorf("trace: line %d: invalid record %+v", line, rec)
		}
		l.Add(rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// MeanLatency returns the average response time over the trace.
func (l *Log) MeanLatency() float64 {
	if len(l.records) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range l.records {
		sum += r.Latency()
	}
	return sum / float64(len(l.records))
}

// Replayer replays a trace's arrival process: each Next returns the gap to
// the next recorded arrival and its op, so a simulation driven by it sees
// the original workload timing. TimeScale stretches (>1) or compresses
// (<1) the gaps; 0 means 1.
type Replayer struct {
	records   []Record
	i         int
	last      float64
	TimeScale float64
}

// NewReplayer builds a replayer over the log's records in arrival order.
func NewReplayer(l *Log) (*Replayer, error) {
	if l.Len() == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return &Replayer{records: l.Records()}, nil
}

// Len returns the number of accesses in one pass of the trace.
func (r *Replayer) Len() int { return len(r.records) }

// Passes reports how many complete passes over the trace have been
// replayed; the replayer itself never runs dry (it wraps).
func (r *Replayer) Passes() int { return r.i / len(r.records) }

// Next returns the next access and the delay since the previous one. Once
// the trace is exhausted it repeats from the start (steady-state replay),
// continuing the clock seamlessly.
func (r *Replayer) Next() (delayMS float64, op workload.Op) {
	scale := r.TimeScale
	if scale <= 0 {
		scale = 1
	}
	rec := r.records[r.i%len(r.records)]
	base := rec.ArriveMS
	if r.i%len(r.records) == 0 && r.i > 0 {
		// Wrapped: restart the arrival clock.
		r.last = 0
	}
	delay := (base - r.last) * scale
	if delay < 0 {
		delay = 0
	}
	r.last = base
	r.i++
	return delay, rec.Op
}
