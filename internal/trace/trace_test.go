package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"declust/internal/workload"
)

func sampleLog() *Log {
	l := &Log{}
	l.Add(Record{ArriveMS: 10, DoneMS: 32, Op: workload.Op{Read: true, Unit: 100, Count: 1}})
	l.Add(Record{ArriveMS: 5, DoneMS: 40, Op: workload.Op{Read: false, Unit: 7, Count: 4}})
	l.Add(Record{ArriveMS: 20, DoneMS: 21.5, Op: workload.Op{Read: true, Unit: 0, Count: 2}})
	return l
}

func TestRecordsSortedByArrival(t *testing.T) {
	rs := sampleLog().Records()
	for i := 1; i < len(rs); i++ {
		if rs[i].ArriveMS < rs[i-1].ArriveMS {
			t.Fatalf("records not sorted: %v", rs)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := l.Records()
	have := got.Records()
	if len(have) != len(want) {
		t.Fatalf("got %d records, want %d", len(have), len(want))
	}
	for i := range want {
		if math.Abs(have[i].ArriveMS-want[i].ArriveMS) > 1e-6 ||
			math.Abs(have[i].DoneMS-want[i].DoneMS) > 1e-6 ||
			have[i].Op != want[i].Op {
			t.Fatalf("record %d: got %+v, want %+v", i, have[i], want[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"not a record\n",
		"1.0 2.0 X 5 1\n",  // bad direction
		"1.0 2.0 R -1 1\n", // negative unit
		"1.0 2.0 R 5 0\n",  // zero count
		"5.0 2.0 R 5 1\n",  // done before arrive
		"1.0 2.0 R\n",      // short line
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	l, err := Read(strings.NewReader("\n1.0 2.0 R 5 1\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("parsed %d records, want 1", l.Len())
	}
}

func TestMeanLatency(t *testing.T) {
	l := sampleLog() // latencies 22, 35, 1.5 -> mean 19.5
	if got := l.MeanLatency(); math.Abs(got-19.5) > 1e-9 {
		t.Fatalf("mean latency %v, want 19.5", got)
	}
	if (&Log{}).MeanLatency() != 0 {
		t.Fatal("empty log mean not 0")
	}
}

func TestReplayerPreservesSpacing(t *testing.T) {
	r, err := NewReplayer(sampleLog())
	if err != nil {
		t.Fatal(err)
	}
	// Arrival order: 5, 10, 20 -> gaps 5, 5, 10.
	wantDelays := []float64{5, 5, 10}
	wantUnits := []int64{7, 100, 0}
	for i := range wantDelays {
		d, op := r.Next()
		if math.Abs(d-wantDelays[i]) > 1e-9 {
			t.Fatalf("gap %d = %v, want %v", i, d, wantDelays[i])
		}
		if op.Unit != wantUnits[i] {
			t.Fatalf("op %d unit = %d, want %d", i, op.Unit, wantUnits[i])
		}
	}
}

func TestReplayerWraps(t *testing.T) {
	r, _ := NewReplayer(sampleLog())
	for i := 0; i < 3; i++ {
		r.Next()
	}
	if r.Passes() != 1 {
		t.Fatalf("passes = %d after one full replay, want 1", r.Passes())
	}
	d, op := r.Next() // wraps to first record (arrive 5)
	if op.Unit != 7 {
		t.Fatalf("wrap op unit %d, want 7", op.Unit)
	}
	if d != 5 {
		t.Fatalf("wrap delay %v, want 5", d)
	}
}

func TestReplayerTimeScale(t *testing.T) {
	r, _ := NewReplayer(sampleLog())
	r.TimeScale = 2
	d, _ := r.Next()
	if d != 10 {
		t.Fatalf("scaled delay %v, want 10", d)
	}
}

func TestNewReplayerEmpty(t *testing.T) {
	if _, err := NewReplayer(&Log{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// Replayer must satisfy the workload.Source interface.
var _ workload.Source = (*Replayer)(nil)
