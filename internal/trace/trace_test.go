package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"declust/internal/workload"
)

func sampleLog() *Log {
	l := &Log{}
	l.Add(Record{ArriveMS: 10, DoneMS: 32, Op: workload.Op{Read: true, Unit: 100, Count: 1}})
	l.Add(Record{ArriveMS: 5, DoneMS: 40, Op: workload.Op{Read: false, Unit: 7, Count: 4}})
	l.Add(Record{ArriveMS: 20, DoneMS: 21.5, Op: workload.Op{Read: true, Unit: 0, Count: 2}})
	return l
}

func TestRecordsSortedByArrival(t *testing.T) {
	rs := sampleLog().Records()
	for i := 1; i < len(rs); i++ {
		if rs[i].ArriveMS < rs[i-1].ArriveMS {
			t.Fatalf("records not sorted: %v", rs)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := l.Records()
	have := got.Records()
	if len(have) != len(want) {
		t.Fatalf("got %d records, want %d", len(have), len(want))
	}
	for i := range want {
		if math.Abs(have[i].ArriveMS-want[i].ArriveMS) > 1e-6 ||
			math.Abs(have[i].DoneMS-want[i].DoneMS) > 1e-6 ||
			have[i].Op != want[i].Op {
			t.Fatalf("record %d: got %+v, want %+v", i, have[i], want[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"not a record\n",
		"1.0 2.0 X 5 1\n",  // bad direction
		"1.0 2.0 R -1 1\n", // negative unit
		"1.0 2.0 R 5 0\n",  // zero count
		"5.0 2.0 R 5 1\n",  // done before arrive
		"1.0 2.0 R\n",      // short line
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	l, err := Read(strings.NewReader("\n1.0 2.0 R 5 1\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("parsed %d records, want 1", l.Len())
	}
}

func TestMeanLatency(t *testing.T) {
	l := sampleLog() // latencies 22, 35, 1.5 -> mean 19.5
	if got := l.MeanLatency(); math.Abs(got-19.5) > 1e-9 {
		t.Fatalf("mean latency %v, want 19.5", got)
	}
	if (&Log{}).MeanLatency() != 0 {
		t.Fatal("empty log mean not 0")
	}
}

func TestReplayerPreservesSpacing(t *testing.T) {
	r, err := NewReplayer(sampleLog())
	if err != nil {
		t.Fatal(err)
	}
	// Arrival order: 5, 10, 20 -> gaps 5, 5, 10.
	wantDelays := []float64{5, 5, 10}
	wantUnits := []int64{7, 100, 0}
	for i := range wantDelays {
		d, op := r.Next()
		if math.Abs(d-wantDelays[i]) > 1e-9 {
			t.Fatalf("gap %d = %v, want %v", i, d, wantDelays[i])
		}
		if op.Unit != wantUnits[i] {
			t.Fatalf("op %d unit = %d, want %d", i, op.Unit, wantUnits[i])
		}
	}
}

func TestReplayerWraps(t *testing.T) {
	r, _ := NewReplayer(sampleLog())
	for i := 0; i < 3; i++ {
		r.Next()
	}
	if r.Passes() != 1 {
		t.Fatalf("passes = %d after one full replay, want 1", r.Passes())
	}
	d, op := r.Next() // wraps to first record (arrive 5)
	if op.Unit != 7 {
		t.Fatalf("wrap op unit %d, want 7", op.Unit)
	}
	if d != 5 {
		t.Fatalf("wrap delay %v, want 5", d)
	}
}

func TestReplayerTimeScale(t *testing.T) {
	r, _ := NewReplayer(sampleLog())
	r.TimeScale = 2
	d, _ := r.Next()
	if d != 10 {
		t.Fatalf("scaled delay %v, want 10", d)
	}
}

func TestNewReplayerEmpty(t *testing.T) {
	if _, err := NewReplayer(&Log{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// Replayer must satisfy the workload.Source interface.
var _ workload.Source = (*Replayer)(nil)

// TestReplayerWrapResetsClockUnderTimeScale drives several full passes with
// a non-unit TimeScale, exercising the wrap path that resets the arrival
// clock: the wrap gap must be the first arrival offset (scaled), not the
// raw difference against the previous pass's last arrival.
func TestReplayerWrapResetsClockUnderTimeScale(t *testing.T) {
	r, err := NewReplayer(sampleLog())
	if err != nil {
		t.Fatal(err)
	}
	r.TimeScale = 3
	// Arrival order 5, 10, 20 -> gaps 5, 5, 10; every pass, including the
	// first, must replay those gaps scaled by 3.
	want := []float64{15, 15, 30}
	for pass := 0; pass < 3; pass++ {
		if r.Passes() != pass {
			t.Fatalf("before pass %d: Passes() = %d", pass, r.Passes())
		}
		for i, w := range want {
			d, _ := r.Next()
			if math.Abs(d-w) > 1e-9 {
				t.Fatalf("pass %d gap %d = %v, want %v", pass, i, d, w)
			}
		}
	}
}

// TestWriteReadRoundTripProperty round-trips random logs through the text
// format. Times are rounded to whole microseconds so the %.6f encoding is
// exact, making the comparison strict equality rather than tolerance-based;
// the re-read log must also replay identically.
func TestWriteReadRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := &Log{}
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			// Keep both times on the µs grid (the %.6f encoding's
			// resolution) so the round-trip is bit-exact; summing two
			// grid values can drift off the grid, so re-round the sum.
			arrive := math.Round(rng.Float64()*1e9) / 1e6
			done := math.Round((arrive+rng.Float64()*100)*1e6) / 1e6
			l.Add(Record{
				ArriveMS: arrive,
				DoneMS:   done,
				Op: workload.Op{
					Read:  rng.Intn(2) == 0,
					Unit:  rng.Int63n(1 << 30),
					Count: 1 + rng.Intn(64),
				},
			})
		}
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		want, have := l.Records(), got.Records()
		if len(have) != len(want) {
			return false
		}
		for i := range want {
			if have[i] != want[i] {
				return false
			}
		}
		// Same delays and ops from replayers over both, across a wrap.
		ra, _ := NewReplayer(l)
		rb, _ := NewReplayer(got)
		for i := 0; i < 2*n+1; i++ {
			da, oa := ra.Next()
			db, ob := rb.Next()
			if da != db || oa != ob {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
