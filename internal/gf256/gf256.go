// Package gf256 implements arithmetic over GF(2^8), the Galois field the
// RAID-6 Q parity is computed in. The field is built on the polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d) with generator 2 — the conventional
// RAID-6 field (Anvin, "The mathematics of RAID-6") — so every nonzero
// element is a power of 2 and multiplication reduces to exp/log table
// lookups.
//
// For a stripe with data units d_0..d_{k-1}, the two parity units are
//
//	P = d_0 ⊕ d_1 ⊕ ... ⊕ d_{k-1}            (plain XOR)
//	Q = g^0·d_0 ⊕ g^1·d_1 ⊕ ... ⊕ g^{k-1}·d_{k-1}
//
// applied byte-wise. P and Q together correct any two erasures; the
// package provides the scalar field ops, the byte-slice kernels the
// storage engine's Q path is built from, and the coefficient solver for
// the two-data-erasure case.
package gf256

// Poly is the field's reduction polynomial (x^8+x^4+x^3+x^2+1) and
// Generator its primitive element.
const (
	Poly      = 0x11d
	Generator = 2
)

// exp holds g^i for i in [0, 510): doubling the table length lets Mul skip
// the mod-255 reduction of the summed logs. log is its inverse (log[0] is
// unused — zero has no logarithm).
var (
	exp [510]byte
	log [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		exp[i] = byte(x)
		exp[i+255] = byte(x)
		log[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
}

// Exp returns Generator^n for any n (negative exponents invert).
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return exp[n]
}

// Log returns the discrete log of x (base Generator). It panics on 0,
// which has no logarithm.
func Log(x byte) int {
	if x == 0 {
		panic("gf256: log of zero")
	}
	return int(log[x])
}

// Mul returns a·b in the field.
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return exp[int(log[a])+int(log[b])]
}

// Div returns a/b in the field. It panics on division by zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(log[a]) - int(log[b])
	if d < 0 {
		d += 255
	}
	return exp[d]
}

// Inv returns the multiplicative inverse of x. It panics on 0.
func Inv(x byte) byte {
	if x == 0 {
		panic("gf256: inverse of zero")
	}
	return exp[255-int(log[x])]
}

// MulSlice multiplies every byte of src by c and stores the products in
// dst (dst and src may alias). Lengths must match. c == 0 zeroes dst,
// c == 1 copies.
func MulSlice(dst, src []byte, c byte) {
	_ = dst[len(src)-1]
	switch c {
	case 0:
		for i := range src {
			dst[i] = 0
		}
	case 1:
		copy(dst, src)
	default:
		lc := int(log[c])
		for i, b := range src {
			if b == 0 {
				dst[i] = 0
			} else {
				dst[i] = exp[lc+int(log[b])]
			}
		}
	}
}

// MulAddSlice XORs c·src into dst byte-wise — the fused kernel the Q
// computation Q = Σ g^i·d_i is folded with. Lengths must match.
func MulAddSlice(dst, src []byte, c byte) {
	_ = dst[len(src)-1]
	switch c {
	case 0:
		// c·src is zero: nothing to fold.
	case 1:
		for i, b := range src {
			dst[i] ^= b
		}
	default:
		lc := int(log[c])
		for i, b := range src {
			if b != 0 {
				dst[i] ^= exp[lc+int(log[b])]
			}
		}
	}
}

// MulWord multiplies each of the 8 bytes of a 64-bit word by c — the
// word-sized kernel for simulators that model one uint64 per unit.
func MulWord(c byte, w uint64) uint64 {
	if c == 0 || w == 0 {
		return 0
	}
	if c == 1 {
		return w
	}
	lc := int(log[c])
	var out uint64
	for i := 0; i < 64; i += 8 {
		b := byte(w >> i)
		if b != 0 {
			out |= uint64(exp[lc+int(log[b])]) << i
		}
	}
	return out
}

// TwoErasureCoeffs returns the decode coefficients for two erased data
// units at stripe-data ordinals x < y, solving
//
//	Pxy = d_x ⊕ d_y
//	Qxy = g^x·d_x ⊕ g^y·d_y
//
// (Pxy and Qxy are P and Q with every surviving data unit's contribution
// removed). The solution is
//
//	d_y = a·Pxy ⊕ b·Qxy,  d_x = d_y ⊕ Pxy
//
// with a = g^x/(g^x ⊕ g^y) and b = 1/(g^x ⊕ g^y). It panics unless
// 0 <= x < y (g^x ⊕ g^y is then nonzero, so the system is solvable).
func TwoErasureCoeffs(x, y int) (a, b byte) {
	if x < 0 || x >= y {
		panic("gf256: need 0 <= x < y")
	}
	gx, gy := Exp(x), Exp(y)
	den := gx ^ gy
	return Div(gx, den), Inv(den)
}
