package gf256

import (
	"math/rand"
	"testing"
)

// TestGeneratorSanity: the generator's powers must enumerate every nonzero
// field element exactly once per 255-cycle (2 is primitive mod 0x11d).
func TestGeneratorSanity(t *testing.T) {
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		e := Exp(i)
		if e == 0 {
			t.Fatalf("Exp(%d) = 0", i)
		}
		if seen[e] {
			t.Fatalf("Exp(%d) = %#x repeats before the cycle closes", i, e)
		}
		seen[e] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator visits %d elements, want 255", len(seen))
	}
	if Exp(255) != Exp(0) || Exp(0) != 1 {
		t.Fatalf("Exp cycle broken: Exp(0)=%#x Exp(255)=%#x", Exp(0), Exp(255))
	}
	if Exp(-1) != Inv(Generator) {
		t.Fatalf("Exp(-1)=%#x, want Inv(g)=%#x", Exp(-1), Inv(Generator))
	}
}

// TestLogExpRoundTrip: log and exp invert each other on every nonzero
// element.
func TestLogExpRoundTrip(t *testing.T) {
	for x := 1; x < 256; x++ {
		if got := Exp(Log(byte(x))); got != byte(x) {
			t.Fatalf("Exp(Log(%#x)) = %#x", x, got)
		}
	}
}

// mulSlow is the bitwise reference multiplication (Russian peasant).
func mulSlow(a, b byte) byte {
	var p byte
	aa, bb := int(a), int(b)
	for bb != 0 {
		if bb&1 != 0 {
			p ^= byte(aa)
		}
		aa <<= 1
		if aa&0x100 != 0 {
			aa ^= Poly
		}
		bb >>= 1
	}
	return p
}

// TestMulMatchesReference: table multiplication agrees with the bitwise
// definition on all 65536 pairs.
func TestMulMatchesReference(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), mulSlow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#x,%#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

// TestMulDivRoundTrip: (a·b)/b == a for every nonzero b.
func TestMulDivRoundTrip(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if got := Div(Mul(byte(a), byte(b)), byte(b)); got != byte(a) {
				t.Fatalf("(%#x * %#x) / %#x = %#x", a, b, b, got)
			}
		}
	}
}

// TestInv: x · Inv(x) == 1 for every nonzero x.
func TestInv(t *testing.T) {
	for x := 1; x < 256; x++ {
		if got := Mul(byte(x), Inv(byte(x))); got != 1 {
			t.Fatalf("%#x * Inv(%#x) = %#x, want 1", x, x, got)
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if Mul(a, b) != Mul(b, a) {
			t.Fatalf("commutativity fails at %#x,%#x", a, b)
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			t.Fatalf("associativity fails at %#x,%#x,%#x", a, b, c)
		}
		if Mul(a, b^c) != Mul(a, b)^Mul(a, c) {
			t.Fatalf("distributivity fails at %#x,%#x,%#x", a, b, c)
		}
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"log-zero":      func() { Log(0) },
		"div-zero":      func() { Div(3, 0) },
		"inv-zero":      func() { Inv(0) },
		"coeffs-order":  func() { TwoErasureCoeffs(2, 2) },
		"coeffs-bounds": func() { TwoErasureCoeffs(-1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 0x80, 0xff, 0x53}
	for _, c := range []byte{0, 1, 2, 0x1d, 0xca} {
		dst := make([]byte, len(src))
		MulSlice(dst, src, c)
		for i := range src {
			if want := Mul(src[i], c); dst[i] != want {
				t.Fatalf("MulSlice c=%#x at %d: got %#x want %#x", c, i, dst[i], want)
			}
		}
	}
}

func TestMulAddSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 64)
	for _, c := range []byte{0, 1, 2, 0x1d, 0xca} {
		dst := make([]byte, len(src))
		want := make([]byte, len(src))
		rng.Read(src)
		rng.Read(dst)
		copy(want, dst)
		for i := range src {
			want[i] ^= Mul(src[i], c)
		}
		MulAddSlice(dst, src, c)
		for i := range src {
			if dst[i] != want[i] {
				t.Fatalf("MulAddSlice c=%#x at %d: got %#x want %#x", c, i, dst[i], want[i])
			}
		}
	}
}

func TestMulWord(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		c := byte(rng.Intn(256))
		w := rng.Uint64()
		got := MulWord(c, w)
		for shift := 0; shift < 64; shift += 8 {
			want := Mul(c, byte(w>>shift))
			if byte(got>>shift) != want {
				t.Fatalf("MulWord(%#x, %#x) byte %d: got %#x want %#x",
					c, w, shift/8, byte(got>>shift), want)
			}
		}
	}
}

// TestTwoErasureDecode: for random data, erasing any two ordinals and
// decoding from Pxy/Qxy recovers them.
func TestTwoErasureDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const k = 8
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, k)
		rng.Read(data)
		var p, q byte
		for i, d := range data {
			p ^= d
			q ^= Mul(Exp(i), d)
		}
		for x := 0; x < k; x++ {
			for y := x + 1; y < k; y++ {
				pxy, qxy := p, q
				for i, d := range data {
					if i != x && i != y {
						pxy ^= d
						qxy ^= Mul(Exp(i), d)
					}
				}
				a, b := TwoErasureCoeffs(x, y)
				dy := Mul(a, pxy) ^ Mul(b, qxy)
				dx := dy ^ pxy
				if dx != data[x] || dy != data[y] {
					t.Fatalf("decode(%d,%d): got %#x,%#x want %#x,%#x",
						x, y, dx, dy, data[x], data[y])
				}
			}
		}
	}
}

func BenchmarkMulAddSlice(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	rand.New(rand.NewSource(5)).Read(src)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(dst, src, byte(i%255+1))
	}
}
