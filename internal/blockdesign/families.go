package blockdesign

import "fmt"

// BoseSTS builds a Steiner triple system (k = 3, λ = 1) on v objects using
// Bose's construction, which exists for every v ≡ 3 (mod 6). Objects are
// pairs (i, c) of Z_n × {0,1,2} with n = v/3 odd, encoded as 3i + c.
func BoseSTS(v int) (*Design, error) {
	if v < 9 || v%6 != 3 {
		return nil, fmt.Errorf("blockdesign: Bose construction needs v ≡ 3 (mod 6) and v >= 9, have %d", v)
	}
	n := v / 3 // odd
	enc := func(i, c int) int { return 3*i + c }
	inv2 := (n + 1) / 2 // multiplicative inverse of 2 mod odd n
	d := &Design{V: v, K: 3, Source: fmt.Sprintf("Bose STS(%d)", v)}
	for i := 0; i < n; i++ {
		d.Tuples = append(d.Tuples, []int{enc(i, 0), enc(i, 1), enc(i, 2)})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := (i + j) * inv2 % n
			for c := 0; c < 3; c++ {
				d.Tuples = append(d.Tuples, []int{enc(i, c), enc(j, c), enc(m, (c+1)%3)})
			}
		}
	}
	if err := d.Verify(); err != nil {
		return nil, fmt.Errorf("Bose STS(%d): %w", v, err)
	}
	return d, nil
}

// Paley builds the symmetric design whose tuples are the translates of the
// quadratic residues modulo a prime q ≡ 3 (mod 4): parameters
// (b, v, k, r, λ) = (q, q, (q−1)/2, (q−1)/2, (q−3)/4). Paley designs give
// declustering ratios near 1/2, the region the paper notes is hard to
// cover with small designs.
func Paley(q int) (*Design, error) {
	if !isPrime(q) || q%4 != 3 {
		return nil, fmt.Errorf("blockdesign: Paley design needs a prime ≡ 3 (mod 4), have %d", q)
	}
	residues := make([]int, 0, (q-1)/2)
	seen := make([]bool, q)
	for x := 1; x < q; x++ {
		r := x * x % q
		if !seen[r] {
			seen[r] = true
			residues = append(residues, r)
		}
	}
	return Cyclic(q, []BaseBlock{{Elements: residues}}, fmt.Sprintf("Paley(%d)", q))
}

// isPrime reports whether p is a (small) prime.
func isPrime(p int) bool {
	if p < 2 {
		return false
	}
	for d := 2; d*d <= p; d++ {
		if p%d == 0 {
			return false
		}
	}
	return true
}

// ProjectivePlane builds the symmetric design of points and lines of
// PG(2, p) for prime p: v = b = p²+p+1, k = r = p+1, λ = 1.
func ProjectivePlane(p int) (*Design, error) {
	if !isPrime(p) {
		return nil, fmt.Errorf("blockdesign: projective plane needs prime order, have %d", p)
	}
	// Normalized homogeneous point coordinates: (1,y,z), (0,1,z), (0,0,1).
	type pt [3]int
	var points []pt
	for y := 0; y < p; y++ {
		for z := 0; z < p; z++ {
			points = append(points, pt{1, y, z})
		}
	}
	for z := 0; z < p; z++ {
		points = append(points, pt{0, 1, z})
	}
	points = append(points, pt{0, 0, 1})
	index := make(map[pt]int, len(points))
	for i, q := range points {
		index[q] = i
	}
	d := &Design{V: len(points), K: p + 1, Source: fmt.Sprintf("PG(2,%d)", p)}
	// Lines are also normalized triples [a,b,c]; incidence ax+by+cz = 0.
	for _, l := range points { // same normalization enumerates the dual
		var tup []int
		for i, q := range points {
			if (l[0]*q[0]+l[1]*q[1]+l[2]*q[2])%p == 0 {
				tup = append(tup, i)
			}
		}
		if len(tup) != p+1 {
			return nil, fmt.Errorf("blockdesign: PG(2,%d) line with %d points", p, len(tup))
		}
		d.Tuples = append(d.Tuples, tup)
	}
	if err := d.Verify(); err != nil {
		return nil, fmt.Errorf("PG(2,%d): %w", p, err)
	}
	return d, nil
}

// AffinePlane builds the design of points and lines of AG(2, p) for prime
// p: v = p², b = p²+p, k = p, r = p+1, λ = 1.
func AffinePlane(p int) (*Design, error) {
	if !isPrime(p) {
		return nil, fmt.Errorf("blockdesign: affine plane needs prime order, have %d", p)
	}
	enc := func(x, y int) int { return x*p + y }
	d := &Design{V: p * p, K: p, Source: fmt.Sprintf("AG(2,%d)", p)}
	// Sloped lines y = m x + c.
	for m := 0; m < p; m++ {
		for c := 0; c < p; c++ {
			tup := make([]int, 0, p)
			for x := 0; x < p; x++ {
				tup = append(tup, enc(x, (m*x+c)%p))
			}
			d.Tuples = append(d.Tuples, tup)
		}
	}
	// Vertical lines x = c.
	for c := 0; c < p; c++ {
		tup := make([]int, 0, p)
		for y := 0; y < p; y++ {
			tup = append(tup, enc(c, y))
		}
		d.Tuples = append(d.Tuples, tup)
	}
	if err := d.Verify(); err != nil {
		return nil, fmt.Errorf("AG(2,%d): %w", p, err)
	}
	return d, nil
}
