package blockdesign

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// searchCache memoizes difference-family searches: nil entries record
// definitive (within-budget) absence. Guarded by searchMu for safe use
// from concurrent tests.
var (
	searchMu    sync.Mutex
	searchCache = map[[3]int]*Design{}
)

// searchFamily returns a memoized searched family, or nil when none was
// found within the standard budget.
func searchFamily(v, k, lambda int) *Design {
	key := [3]int{v, k, lambda}
	searchMu.Lock()
	defer searchMu.Unlock()
	if d, ok := searchCache[key]; ok {
		return d
	}
	d, err := FindDifferenceFamily(v, k, lambda, 500_000)
	if err != nil {
		d = nil
	}
	searchCache[key] = d
	return d
}

// DefaultMaxTuples bounds the block design table size accepted by Select;
// beyond it a layout violates the paper's efficient-mapping criterion
// (§4.3's 41-disk example has ~3.75M tuples and is rejected).
const DefaultMaxTuples = 1 << 16

// Candidate describes a design the catalog can construct for a given v.
type Candidate struct {
	V, K   int
	B      int // tuple count, for ranking
	Source string
	Build  func() (*Design, error)
}

// catalogFor enumerates every design the package knows how to construct on
// exactly v objects with tuple count at most maxTuples, smallest b first.
func catalogFor(v, maxTuples int) []Candidate {
	var cands []Candidate
	add := func(k, b int, source string, build func() (*Design, error)) {
		if b <= maxTuples && k >= 2 && k <= v {
			cands = append(cands, Candidate{V: v, K: k, B: b, Source: source, Build: build})
		}
	}

	// The paper's appendix designs (v = 21 only).
	if v == 21 {
		bs := map[int]int{3: 70, 4: 105, 5: 21, 6: 42, 10: 42, 18: 1330}
		for _, g := range PaperG {
			g := g
			add(g, bs[g], "paper appendix", func() (*Design, error) { return PaperDesign(g) })
		}
	}

	// Bose Steiner triple systems: k=3, b = v(v-1)/6.
	if v%6 == 3 && v >= 9 {
		add(3, v*(v-1)/6, "Bose STS", func() (*Design, error) { return BoseSTS(v) })
	}

	// Projective planes: v = p²+p+1 for prime p, k = p+1, b = v.
	for p := 2; p*p+p+1 <= v; p++ {
		if p*p+p+1 == v && isPrime(p) {
			p := p
			add(p+1, v, "projective plane", func() (*Design, error) { return ProjectivePlane(p) })
			// Complement reaches k = v-p-1 = p² with the same b.
			add(v-(p+1), v, "projective plane complement", func() (*Design, error) {
				d, err := ProjectivePlane(p)
				if err != nil {
					return nil, err
				}
				return Complement(d)
			})
		}
	}

	// Paley designs: v = q prime ≡ 3 (mod 4), k = (q−1)/2, b = q —
	// symmetric designs near α = 1/2, plus their complements.
	if isPrime(v) && v%4 == 3 && v >= 7 {
		q := v
		add((q-1)/2, q, "Paley", func() (*Design, error) { return Paley(q) })
		add((q+1)/2, q, "Paley complement", func() (*Design, error) {
			d, err := Paley(q)
			if err != nil {
				return nil, err
			}
			return Complement(d)
		})
	}

	// Affine planes: v = p² for prime p, k = p, b = p²+p.
	for p := 2; p*p <= v; p++ {
		if p*p == v && isPrime(p) {
			p := p
			add(p, v+p, "affine plane", func() (*Design, error) { return AffinePlane(p) })
			add(v-p, v+p, "affine plane complement", func() (*Design, error) {
				d, err := AffinePlane(p)
				if err != nil {
					return nil, err
				}
				return Complement(d)
			})
		}
	}

	// Searched cyclic difference families: for small v and k, find the
	// smallest λ whose block count divides evenly and search within a
	// modest budget. Results (including failures) are memoized, and only
	// families that actually exist are advertised. This fills many of
	// the gaps the paper laments between the printed tables and the
	// complete designs.
	if v <= 31 {
		for k := 3; k <= 5 && k <= v; k++ {
			for lambda := 1; lambda <= 3; lambda++ {
				if lambda*(v-1)%(k*(k-1)) != 0 {
					continue
				}
				if searchFamily(v, k, lambda) == nil {
					break // smallest feasible λ only; none found
				}
				b := lambda * v * (v - 1) / (k * (k - 1))
				k, lambda := k, lambda
				add(k, b, "searched family", func() (*Design, error) {
					d := searchFamily(v, k, lambda)
					if d == nil {
						return nil, fmt.Errorf("blockdesign: no (%d,%d,%d) family", v, k, lambda)
					}
					return d.Clone(), nil
				})
				break
			}
		}
	}

	// Complete designs for every k, where small enough.
	for k := 2; k <= v; k++ {
		k := k
		if b, err := Binomial(v, k); err == nil && b > 0 && b <= int64(maxTuples) {
			add(k, int(b), "complete", func() (*Design, error) { return Complete(v, k, maxTuples) })
		}
	}

	sort.Slice(cands, func(i, j int) bool {
		if cands[i].K != cands[j].K {
			return cands[i].K < cands[j].K
		}
		return cands[i].B < cands[j].B
	})
	return cands
}

// Selection is the result of choosing a design for an array.
type Selection struct {
	Design *Design
	// Exact is true when the design has exactly the requested k = G.
	// When false, the catalog had no feasible design at G and fell back
	// to the closest feasible declustering ratio, per the paper §4.3.
	Exact bool
	// RequestedK is the G the caller asked for.
	RequestedK int
}

// Select finds a block design for an array of c disks with parity stripe
// size g, following the paper's procedure: prefer a known balanced
// incomplete design with v = c, k = g and minimum b; otherwise use a
// complete design if its table is small enough; otherwise fall back to the
// feasible design whose declustering ratio is closest to (g−1)/(c−1).
// maxTuples ≤ 0 uses DefaultMaxTuples.
func Select(c, g, maxTuples int) (Selection, error) {
	if maxTuples <= 0 {
		maxTuples = DefaultMaxTuples
	}
	if c < 2 || g < 2 || g > c {
		return Selection{}, fmt.Errorf("blockdesign: need 2 <= G <= C, have C=%d G=%d", c, g)
	}
	cands := catalogFor(c, maxTuples)
	if len(cands) == 0 {
		return Selection{}, fmt.Errorf("blockdesign: no feasible design on %d objects within %d tuples", c, maxTuples)
	}

	// Exact matches, smallest table first.
	var exact []Candidate
	for _, cd := range cands {
		if cd.K == g {
			exact = append(exact, cd)
		}
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i].B < exact[j].B })
	for _, cd := range exact {
		d, err := cd.Build()
		if err == nil {
			return Selection{Design: d, Exact: true, RequestedK: g}, nil
		}
	}

	// Closest feasible declustering ratio; ties prefer smaller tables.
	want := float64(g-1) / float64(c-1)
	sort.Slice(cands, func(i, j int) bool {
		ai := math.Abs(float64(cands[i].K-1)/float64(c-1) - want)
		aj := math.Abs(float64(cands[j].K-1)/float64(c-1) - want)
		if ai != aj {
			return ai < aj
		}
		return cands[i].B < cands[j].B
	})
	for _, cd := range cands {
		d, err := cd.Build()
		if err == nil {
			return Selection{Design: d, Exact: d.K == g, RequestedK: g}, nil
		}
	}
	return Selection{}, fmt.Errorf("blockdesign: all candidate constructions failed for C=%d G=%d", c, g)
}

// KnownPoint is one (v, k) coordinate the catalog can build, with the tuple
// count of the smallest known table; the set of these reproduces the
// paper's Figure 4-3 scatter of known designs.
type KnownPoint struct {
	V, K, B int
	Source  string
}

// KnownDesigns enumerates catalog coverage for v in [2, maxV], reporting
// the smallest-table design at each (v, k). Construction is lazy and only
// metadata is materialized, so this stays fast for plotting.
func KnownDesigns(maxV, maxTuples int) []KnownPoint {
	if maxTuples <= 0 {
		maxTuples = DefaultMaxTuples
	}
	var pts []KnownPoint
	for v := 2; v <= maxV; v++ {
		best := map[int]Candidate{}
		for _, cd := range catalogFor(v, maxTuples) {
			if cur, ok := best[cd.K]; !ok || cd.B < cur.B {
				best[cd.K] = cd
			}
		}
		ks := make([]int, 0, len(best))
		for k := range best {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		for _, k := range ks {
			cd := best[k]
			pts = append(pts, KnownPoint{V: v, K: k, B: cd.B, Source: cd.Source})
		}
	}
	return pts
}
