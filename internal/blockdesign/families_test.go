package blockdesign

import (
	"testing"
	"testing/quick"
)

func TestBoseSTS(t *testing.T) {
	for _, v := range []int{9, 15, 21, 27, 33, 39} {
		d, err := BoseSTS(v)
		if err != nil {
			t.Fatalf("BoseSTS(%d): %v", v, err)
		}
		p := mustParams(t, d)
		want := Params{B: v * (v - 1) / 6, V: v, K: 3, R: (v - 1) / 2, Lambda: 1}
		if p != want {
			t.Fatalf("STS(%d) params %+v, want %+v", v, p, want)
		}
	}
}

func TestBoseSTSRejectsWrongResidue(t *testing.T) {
	for _, v := range []int{7, 13, 12, 8, 3} {
		if _, err := BoseSTS(v); err == nil {
			t.Errorf("BoseSTS(%d) accepted", v)
		}
	}
}

func TestProjectivePlanes(t *testing.T) {
	for _, p := range []int{2, 3, 5, 7} {
		d, err := ProjectivePlane(p)
		if err != nil {
			t.Fatalf("PG(2,%d): %v", p, err)
		}
		pr := mustParams(t, d)
		v := p*p + p + 1
		want := Params{B: v, V: v, K: p + 1, R: p + 1, Lambda: 1}
		if pr != want {
			t.Fatalf("PG(2,%d) params %+v, want %+v", p, pr, want)
		}
		if !d.IsSymmetric() {
			t.Fatalf("PG(2,%d) not symmetric", p)
		}
	}
}

func TestProjectivePlaneRejectsComposite(t *testing.T) {
	for _, p := range []int{1, 4, 6, 9} {
		if _, err := ProjectivePlane(p); err == nil {
			t.Errorf("ProjectivePlane(%d) accepted", p)
		}
	}
}

func TestAffinePlanes(t *testing.T) {
	for _, p := range []int{2, 3, 5, 7} {
		d, err := AffinePlane(p)
		if err != nil {
			t.Fatalf("AG(2,%d): %v", p, err)
		}
		pr := mustParams(t, d)
		want := Params{B: p*p + p, V: p * p, K: p, R: p + 1, Lambda: 1}
		if pr != want {
			t.Fatalf("AG(2,%d) params %+v, want %+v", p, pr, want)
		}
	}
}

func TestPaleyDesigns(t *testing.T) {
	for _, q := range []int{7, 11, 19, 23, 31} {
		d, err := Paley(q)
		if err != nil {
			t.Fatalf("Paley(%d): %v", q, err)
		}
		p := mustParams(t, d)
		want := Params{B: q, V: q, K: (q - 1) / 2, R: (q - 1) / 2, Lambda: (q - 3) / 4}
		if p != want {
			t.Fatalf("Paley(%d) params %+v, want %+v", q, p, want)
		}
		if !d.IsSymmetric() {
			t.Fatalf("Paley(%d) not symmetric", q)
		}
	}
}

func TestPaleyRejects(t *testing.T) {
	for _, q := range []int{5, 13, 9, 4, 2} { // not ≡ 3 mod 4, or composite
		if _, err := Paley(q); err == nil {
			t.Errorf("Paley(%d) accepted", q)
		}
	}
}

func TestPaleyInCatalog(t *testing.T) {
	// A 23-disk array with G=11 should get the Paley biplane-series
	// design with b=23, not the complete design with b=1,352,078.
	sel, err := Select(23, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Exact || sel.Design.B() != 23 {
		t.Fatalf("Select(23,11) chose b=%d exact=%v, want Paley b=23", sel.Design.B(), sel.Exact)
	}
	// And the complement covers G=12.
	sel2, err := Select(23, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sel2.Exact || sel2.Design.B() != 23 {
		t.Fatalf("Select(23,12) chose b=%d exact=%v, want Paley complement b=23", sel2.Design.B(), sel2.Exact)
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 11: true, 13: true}
	for n := -3; n <= 14; n++ {
		if got := isPrime(n); got != primes[n] {
			t.Errorf("isPrime(%d) = %v", n, got)
		}
	}
}

// TestPropertyGeneratedDesignsBalanced drives the generators over many
// parameters and checks the invariants the layout layer depends on: the two
// counting identities and positive λ.
func TestPropertyGeneratedDesignsBalanced(t *testing.T) {
	f := func(raw uint8) bool {
		v := 4 + int(raw%20)
		for k := 2; k <= v && k <= 6; k++ {
			d, err := Complete(v, k, 1<<18)
			if err != nil {
				continue
			}
			p, err := d.Params()
			if err != nil {
				return false
			}
			if p.B*p.K != p.V*p.R || p.R*(p.K-1) != p.Lambda*(p.V-1) || p.Lambda < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
