package blockdesign

import "fmt"

// The six designs of the paper's appendix, all on v = 21 objects (the
// 21-disk array of Table 5-1), written in Hall's abbreviated notation.

// PaperG lists the parity stripe sizes of the appendix designs, in the
// order the paper presents them (α from 0.1 to 0.85).
var PaperG = []int{3, 4, 5, 6, 10, 18}

// PaperDesign returns the appendix block design for a 21-disk array with
// parity stripe size g ∈ {3, 4, 5, 6, 10, 18}. The returned design is
// freshly constructed and verified.
func PaperDesign(g int) (*Design, error) {
	switch g {
	case 3:
		// b=70, v=21, k=3, r=10, λ=1, α=0.1.
		// The available scan of the appendix garbles two base blocks
		// (as printed they cover differences 2, 3, 18, 19 twice and miss
		// 5, 8, 9, 12, 13, so Verify rejects them); this is the standard
		// cyclic STS(21) difference family with the same parameters and
		// the same short orbit [0,7,14] of period 7.
		return Cyclic(21, []BaseBlock{
			{Elements: []int{0, 1, 3}},
			{Elements: []int{0, 4, 12}},
			{Elements: []int{0, 5, 11}},
			{Elements: []int{0, 7, 14}, Period: 7},
		}, "paper appendix design 1")
	case 4:
		// b=105, v=21, k=4, r=20, λ=3, α=0.15
		return Cyclic(21, []BaseBlock{
			{Elements: []int{0, 2, 3, 7}},
			{Elements: []int{0, 3, 5, 9}},
			{Elements: []int{0, 1, 7, 11}},
			{Elements: []int{0, 2, 8, 11}},
			{Elements: []int{0, 1, 9, 14}},
		}, "paper appendix design 2")
	case 5:
		// b=21, v=21, k=5, r=5, λ=1, α=0.2 (symmetric; PG(2,4))
		return Cyclic(21, []BaseBlock{
			{Elements: []int{3, 6, 7, 12, 14}},
		}, "paper appendix design 3")
	case 6:
		// b=42, v=21, k=6, r=12, λ=3, α=0.25
		return Cyclic(21, []BaseBlock{
			{Elements: []int{0, 2, 10, 15, 19, 20}},
			{Elements: []int{0, 3, 7, 9, 10, 16}},
		}, "paper appendix design 4")
	case 10:
		// b=42, v=21, k=10, r=20, λ=9, α=0.45: derived design of the
		// symmetric (43, 21, 10) cyclic design.
		sym, err := Cyclic(43, []BaseBlock{
			{Elements: []int{0, 3, 5, 8, 9, 10, 12, 13, 14, 15, 16, 20, 22, 23, 24, 30, 34, 35, 37, 39, 40}},
		}, "symmetric (43,21,10) difference set")
		if err != nil {
			return nil, err
		}
		d, err := Derived(sym, 0)
		if err != nil {
			return nil, err
		}
		d.Source = "paper appendix design 5 (derived)"
		return d, nil
	case 18:
		// b=1330, v=21, k=18, r=1140, λ=969, α=0.85: complete design.
		d, err := Complete(21, 18, 0)
		if err != nil {
			return nil, err
		}
		d.Source = "paper appendix design 6 (complete)"
		return d, nil
	default:
		return nil, fmt.Errorf("blockdesign: no paper appendix design for G=%d (have G ∈ %v)", g, PaperG)
	}
}
