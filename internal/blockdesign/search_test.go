package blockdesign

import "testing"

func TestFindDifferenceFamilyKnownPoints(t *testing.T) {
	// Classic cyclic families the search must rediscover.
	cases := []struct {
		v, k, lambda int
		wantB        int
	}{
		{7, 3, 1, 7},   // Fano plane
		{13, 3, 1, 26}, // STS(13)
		{13, 4, 1, 13}, // PG(2,3) as a difference set
		{11, 5, 2, 11}, // biplane / Paley
		{15, 3, 1, 35}, // λ(v−1)=14 not divisible by k(k−1)=6: expect error
		{19, 3, 1, 57}, // STS(19)
		{21, 5, 1, 21}, // the paper's appendix design 3
		{9, 4, 3, 18},  // λ=3 family on 9 points
	}
	for _, c := range cases {
		d, err := FindDifferenceFamily(c.v, c.k, c.lambda, 0)
		if c.v == 15 {
			if err == nil {
				t.Errorf("(15,3,1): divisibility violation accepted")
			}
			continue
		}
		if err != nil {
			t.Errorf("(%d,%d,%d): %v", c.v, c.k, c.lambda, err)
			continue
		}
		if d == nil {
			t.Errorf("(%d,%d,%d): no family found within budget", c.v, c.k, c.lambda)
			continue
		}
		p, err := d.Params()
		if err != nil {
			t.Errorf("(%d,%d,%d): found design invalid: %v", c.v, c.k, c.lambda, err)
			continue
		}
		want := Params{B: c.wantB, V: c.v, K: c.k,
			R: c.wantB * c.k / c.v, Lambda: c.lambda}
		if p != want {
			t.Errorf("(%d,%d,%d): params %+v, want %+v", c.v, c.k, c.lambda, p, want)
		}
	}
}

func TestFindDifferenceFamilyRejectsBadArgs(t *testing.T) {
	for _, c := range []struct{ v, k, l int }{{2, 2, 1}, {7, 8, 1}, {7, 3, 0}} {
		if _, err := FindDifferenceFamily(c.v, c.k, c.l, 0); err == nil {
			t.Errorf("(%d,%d,%d) accepted", c.v, c.k, c.l)
		}
	}
}

func TestFindDifferenceFamilyBudgetExhaustion(t *testing.T) {
	// A feasible instance with an absurdly small budget returns nil, nil.
	d, err := FindDifferenceFamily(19, 3, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatal("found a family in 5 nodes?")
	}
}

func TestFindDifferenceFamilyNonexistent(t *testing.T) {
	// (v,k,λ) = (16,6,2): λ(v−1)=30 = k(k−1)=30, one base block — a
	// perfect difference set mod 16 would be a (16,6,2) biplane;
	// cyclic ones do not exist, so the exhaustive search must say no.
	d, err := FindDifferenceFamily(16, 6, 2, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		p, _ := d.Params()
		t.Fatalf("search produced a cyclic (16,6,2) design: %+v", p)
	}
}
