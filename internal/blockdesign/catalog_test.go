package blockdesign

import (
	"math"
	"testing"
)

func TestSelectExactPaperDesigns(t *testing.T) {
	for _, g := range PaperG {
		sel, err := Select(21, g, 0)
		if err != nil {
			t.Fatalf("Select(21,%d): %v", g, err)
		}
		if !sel.Exact {
			t.Errorf("Select(21,%d) not exact: got k=%d", g, sel.Design.K)
		}
		p := mustParams(t, sel.Design)
		if p.V != 21 || p.K != g {
			t.Errorf("Select(21,%d) returned %+v", g, p)
		}
	}
}

func TestSelectPrefersSmallTables(t *testing.T) {
	// For C=21, G=5 the appendix design has b=21 while the complete
	// design has b=20349; Select must prefer the small one.
	sel, err := Select(21, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Design.B() != 21 {
		t.Fatalf("Select(21,5) chose b=%d, want 21", sel.Design.B())
	}
}

func TestSelectFallsBackToComplete(t *testing.T) {
	// C=10, G=4: no special design in the catalog, C(10,4)=210 is small.
	sel, err := Select(10, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Exact || sel.Design.B() != 210 {
		t.Fatalf("Select(10,4) = exact:%v b=%d, want complete design with 210 tuples", sel.Exact, sel.Design.B())
	}
}

func TestSelectClosestAlphaFallback(t *testing.T) {
	// The paper's infeasible example: 41 disks, G=5 — the complete
	// design has 749,398 tuples, over any reasonable limit. Select must
	// fall back to the closest feasible α rather than fail.
	sel, err := Select(41, 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Exact {
		t.Fatalf("Select(41,5) claims exact with tiny limit; got k=%d b=%d", sel.Design.K, sel.Design.B())
	}
	if sel.Design.B() > 4096 {
		t.Fatalf("fallback design table too large: %d", sel.Design.B())
	}
	want := 4.0 / 40.0
	got := sel.Design.Alpha()
	if math.Abs(got-want) > 0.25 {
		t.Fatalf("fallback α=%v too far from requested %v", got, want)
	}
}

func TestSelectRaid5Case(t *testing.T) {
	// G = C: the only design is the complete one with a single tuple
	// (all disks), i.e. RAID 5.
	sel, err := Select(21, 21, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Design.B() != 1 || sel.Design.K != 21 {
		t.Fatalf("Select(21,21) = b=%d k=%d, want the single full tuple", sel.Design.B(), sel.Design.K)
	}
}

func TestSelectRejectsBadArgs(t *testing.T) {
	for _, c := range []struct{ C, G int }{{1, 1}, {5, 1}, {5, 6}, {0, 0}} {
		if _, err := Select(c.C, c.G, 0); err == nil {
			t.Errorf("Select(%d,%d) accepted", c.C, c.G)
		}
	}
}

func TestKnownDesignsCoverPaperPoints(t *testing.T) {
	pts := KnownDesigns(25, DefaultMaxTuples)
	have := map[[2]int]bool{}
	for _, p := range pts {
		have[[2]int{p.V, p.K}] = true
	}
	for _, g := range PaperG {
		if !have[[2]int{21, g}] {
			t.Errorf("KnownDesigns missing (21,%d)", g)
		}
	}
	// STS and planes should appear too.
	for _, w := range [][2]int{{9, 3}, {7, 3}, {13, 4}, {25, 5}} {
		if !have[w] {
			t.Errorf("KnownDesigns missing (%d,%d)", w[0], w[1])
		}
	}
}

func TestKnownDesignsAllConstructible(t *testing.T) {
	// Every advertised point must actually build and verify.
	for v := 2; v <= 13; v++ {
		for _, cd := range catalogFor(v, 4096) {
			d, err := cd.Build()
			if err != nil {
				t.Errorf("catalog (v=%d,k=%d): build failed: %v", cd.V, cd.K, err)
				continue
			}
			if _, err := d.Params(); err != nil {
				t.Errorf("catalog (v=%d,k=%d): invalid design: %v", cd.V, cd.K, err)
			}
			if d.V != cd.V || d.K != cd.K {
				t.Errorf("catalog (v=%d,k=%d): built (v=%d,k=%d)", cd.V, cd.K, d.V, d.K)
			}
		}
	}
}
