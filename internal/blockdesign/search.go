package blockdesign

import "fmt"

// FindDifferenceFamily searches for a cyclic (v, k, λ) difference family:
// a set of base blocks whose pairwise differences cover every nonzero
// residue modulo v exactly λ times. Developing the blocks modulo v then
// yields a BIBD with b = λ·v·(v−1)/(k·(k−1)) tuples — a direct answer to
// the paper's §9 wish for "a wider range of parameters" than Hall's
// printed tables.
//
// The search backtracks over canonical base blocks (each starting at 0,
// elements strictly increasing) with difference-coverage pruning. maxNodes
// bounds the explored nodes (0 = a default budget); the search is exact
// within the budget — a nil result with a nil error means the budget ran
// out or no full-orbit family exists.
func FindDifferenceFamily(v, k, lambda, maxNodes int) (*Design, error) {
	if v < 3 || k < 2 || k > v || lambda < 1 {
		return nil, fmt.Errorf("blockdesign: invalid difference family parameters v=%d k=%d λ=%d", v, k, lambda)
	}
	// Each full-orbit base block of size k contributes k(k−1) ordered
	// differences; covering all v−1 nonzero residues λ times needs
	// λ(v−1) differences, so the block count must divide evenly.
	need := lambda * (v - 1)
	per := k * (k - 1)
	if need%per != 0 {
		return nil, fmt.Errorf("blockdesign: no full-orbit (v=%d,k=%d,λ=%d) family: λ(v−1)=%d not divisible by k(k−1)=%d",
			v, k, lambda, need, per)
	}
	nblocks := need / per
	if maxNodes <= 0 {
		maxNodes = 2_000_000
	}

	// count[d] tracks how many times difference d is covered so far.
	count := make([]int, v)
	blocks := make([][]int, 0, nblocks)
	cur := make([]int, 1, k)
	nodes := 0

	// addDiffs applies (or reverts) the differences of elem against the
	// current block prefix. It returns false (without applying) if any
	// difference would exceed λ.
	addDiffs := func(elem int, revert bool) bool {
		if revert {
			for _, e := range cur {
				if e == elem {
					continue
				}
				d1 := (elem - e + v) % v
				d2 := (e - elem + v) % v
				count[d1]--
				count[d2]--
			}
			return true
		}
		for _, e := range cur {
			d1 := (elem - e + v) % v
			d2 := (e - elem + v) % v
			if count[d1]+1 > lambda || (d1 != d2 && count[d2]+1 > lambda) {
				// roll back what we applied so far
				for _, e2 := range cur {
					if e2 == e {
						break
					}
					r1 := (elem - e2 + v) % v
					r2 := (e2 - elem + v) % v
					count[r1]--
					count[r2]--
				}
				return false
			}
			count[d1]++
			if d1 != d2 {
				count[d2]++
			} else {
				// v even and elem-e = v/2: the two directions are the
				// same residue; it is covered twice by the pair.
				count[d1]++
				if count[d1] > lambda {
					count[d1] -= 2
					for _, e2 := range cur {
						if e2 == e {
							break
						}
						r1 := (elem - e2 + v) % v
						r2 := (e2 - elem + v) % v
						count[r1]--
						count[r2]--
					}
					return false
				}
			}
		}
		return true
	}

	var solve func() bool
	solve = func() bool {
		nodes++
		if nodes > maxNodes {
			return false
		}
		if len(cur) == k {
			blocks = append(blocks, append([]int(nil), cur...))
			if len(blocks) == nblocks {
				// All differences must now be exactly λ.
				for d := 1; d < v; d++ {
					if count[d] != lambda {
						blocks = blocks[:len(blocks)-1]
						return false
					}
				}
				return true
			}
			cur = cur[:1] // next block also starts at 0
			if solve() {
				return true
			}
			cur = blocks[len(blocks)-1][:k]
			blocks = blocks[:len(blocks)-1]
			return false
		}
		// Lexicographic canonical form: elements strictly increasing;
		// additionally order blocks by their second element to prune
		// permuted duplicates.
		lo := cur[len(cur)-1] + 1
		if len(cur) == 1 && len(blocks) > 0 {
			lo = blocks[len(blocks)-1][1] // non-decreasing second elements
		}
		for e := lo; e < v; e++ {
			if !addDiffs(e, false) {
				continue
			}
			cur = append(cur, e)
			if solve() {
				return true
			}
			cur = cur[:len(cur)-1]
			addDiffs(e, true)
		}
		return false
	}

	cur[0] = 0
	if !solve() {
		return nil, nil
	}
	bbs := make([]BaseBlock, len(blocks))
	for i, b := range blocks {
		bbs[i] = BaseBlock{Elements: b}
	}
	return Cyclic(v, bbs, fmt.Sprintf("searched (%d,%d,%d) difference family", v, k, lambda))
}
