package blockdesign

import (
	"fmt"
	"math/big"
)

// Binomial returns C(n, k) as an int64, or an error on overflow.
func Binomial(n, k int) (int64, error) {
	if k < 0 || k > n {
		return 0, nil
	}
	b := new(big.Int).Binomial(int64(n), int64(k))
	if !b.IsInt64() {
		return 0, fmt.Errorf("blockdesign: C(%d,%d) overflows int64", n, k)
	}
	return b.Int64(), nil
}

// Complete returns the complete block design on v objects with tuple size k:
// all C(v,k) combinations. Every complete design is balanced with
// r = C(v−1, k−1) and λ = C(v−2, k−2). maxTuples bounds the construction;
// pass 0 for a default limit of 1<<20.
func Complete(v, k, maxTuples int) (*Design, error) {
	if v < 2 || k < 2 || k > v {
		return nil, fmt.Errorf("blockdesign: complete design needs 2 <= k <= v, have v=%d k=%d", v, k)
	}
	if maxTuples <= 0 {
		maxTuples = 1 << 20
	}
	n, err := Binomial(v, k)
	if err != nil {
		return nil, err
	}
	if n > int64(maxTuples) {
		return nil, fmt.Errorf("blockdesign: complete design on v=%d k=%d has %d tuples, exceeding limit %d",
			v, k, n, maxTuples)
	}
	d := &Design{V: v, K: k, Source: fmt.Sprintf("complete C(%d,%d)", v, k)}
	comb := make([]int, k)
	for i := range comb {
		comb[i] = i
	}
	for {
		d.Tuples = append(d.Tuples, append([]int(nil), comb...))
		// Advance to the next combination in lexicographic order.
		i := k - 1
		for i >= 0 && comb[i] == v-k+i {
			i--
		}
		if i < 0 {
			break
		}
		comb[i]++
		for j := i + 1; j < k; j++ {
			comb[j] = comb[j-1] + 1
		}
	}
	return d, nil
}

// BaseBlock is one entry of a cyclic construction in Hall's abbreviated
// notation: the block's elements, developed modulo the design's v by adding
// each residue 0..Period−1 element-wise. Period 0 means the full period v.
type BaseBlock struct {
	Elements []int
	Period   int
}

// Cyclic develops base blocks modulo v, the construction used for the
// paper's appendix designs 1-4 and for the symmetric design underlying
// design 5. The result is verified before being returned.
func Cyclic(v int, blocks []BaseBlock, source string) (*Design, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("blockdesign: cyclic construction with no base blocks")
	}
	k := len(blocks[0].Elements)
	d := &Design{V: v, K: k, Source: source}
	for bi, bb := range blocks {
		if len(bb.Elements) != k {
			return nil, fmt.Errorf("blockdesign: base block %d has %d elements, want %d", bi, len(bb.Elements), k)
		}
		period := bb.Period
		if period == 0 {
			period = v
		}
		if period < 1 || period > v {
			return nil, fmt.Errorf("blockdesign: base block %d has period %d out of range", bi, period)
		}
		for s := 0; s < period; s++ {
			tup := make([]int, k)
			for i, e := range bb.Elements {
				tup[i] = ((e+s)%v + v) % v
			}
			d.Tuples = append(d.Tuples, tup)
		}
	}
	if err := d.Verify(); err != nil {
		return nil, fmt.Errorf("cyclic construction %q: %w", source, err)
	}
	return d, nil
}

// Derived builds the derived design of a symmetric design: pick tuple
// `block` as B0; for every other tuple Bi, the new tuple is Bi ∩ B0
// (which has exactly λ elements in a symmetric design), relabeled by
// position in B0. The result has b' = b−1, v' = k, k' = λ, r' = r−1,
// λ' = λ−1 (Hall; paper appendix, design 5).
func Derived(sym *Design, block int) (*Design, error) {
	p, err := sym.Params()
	if err != nil {
		return nil, err
	}
	if !sym.IsSymmetric() {
		return nil, fmt.Errorf("blockdesign: derived design requires a symmetric design, have b=%d v=%d", p.B, p.V)
	}
	if block < 0 || block >= len(sym.Tuples) {
		return nil, fmt.Errorf("blockdesign: block index %d out of range", block)
	}
	b0 := sym.Tuples[block]
	index := make(map[int]int, len(b0))
	for i, x := range b0 {
		index[x] = i
	}
	d := &Design{
		V:      p.K,
		K:      p.Lambda,
		Source: fmt.Sprintf("derived(%s, block %d)", sym.Source, block),
	}
	for i, tup := range sym.Tuples {
		if i == block {
			continue
		}
		var inter []int
		for _, x := range tup {
			if j, ok := index[x]; ok {
				inter = append(inter, j)
			}
		}
		if len(inter) != p.Lambda {
			return nil, fmt.Errorf("blockdesign: intersection of blocks %d and %d has %d elements, want λ=%d",
				i, block, len(inter), p.Lambda)
		}
		d.Tuples = append(d.Tuples, inter)
	}
	if err := d.Verify(); err != nil {
		return nil, fmt.Errorf("derived design: %w", err)
	}
	return d, nil
}

// Residual builds the residual design of a symmetric design: pick tuple
// `block` as B0; for every other tuple Bi, the new tuple is Bi \ B0,
// relabeled over the v−k objects outside B0. The result has b' = b−1,
// v' = v−k, k' = k−λ, r' = r, λ' = λ.
func Residual(sym *Design, block int) (*Design, error) {
	p, err := sym.Params()
	if err != nil {
		return nil, err
	}
	if !sym.IsSymmetric() {
		return nil, fmt.Errorf("blockdesign: residual design requires a symmetric design")
	}
	if block < 0 || block >= len(sym.Tuples) {
		return nil, fmt.Errorf("blockdesign: block index %d out of range", block)
	}
	in := make([]bool, p.V)
	for _, x := range sym.Tuples[block] {
		in[x] = true
	}
	relabel := make([]int, p.V)
	next := 0
	for x := 0; x < p.V; x++ {
		if !in[x] {
			relabel[x] = next
			next++
		}
	}
	d := &Design{
		V:      p.V - p.K,
		K:      p.K - p.Lambda,
		Source: fmt.Sprintf("residual(%s, block %d)", sym.Source, block),
	}
	for i, tup := range sym.Tuples {
		if i == block {
			continue
		}
		var out []int
		for _, x := range tup {
			if !in[x] {
				out = append(out, relabel[x])
			}
		}
		if len(out) != p.K-p.Lambda {
			return nil, fmt.Errorf("blockdesign: residual block %d has %d elements, want %d", i, len(out), p.K-p.Lambda)
		}
		d.Tuples = append(d.Tuples, out)
	}
	if err := d.Verify(); err != nil {
		return nil, fmt.Errorf("residual design: %w", err)
	}
	return d, nil
}

// Complement replaces each tuple with its complement in the object set,
// turning a (b, v, k, r, λ) design into a (b, v, v−k, b−r, b−2r+λ) design.
// Useful for reaching high declustering ratios (large G) from small designs.
func Complement(d *Design) (*Design, error) {
	p, err := d.Params()
	if err != nil {
		return nil, err
	}
	if p.K >= p.V-1 {
		return nil, fmt.Errorf("blockdesign: complement of k=%d on v=%d would have k<2", p.K, p.V)
	}
	c := &Design{V: p.V, K: p.V - p.K, Source: fmt.Sprintf("complement(%s)", d.Source)}
	for _, tup := range d.Tuples {
		in := make([]bool, p.V)
		for _, x := range tup {
			in[x] = true
		}
		out := make([]int, 0, p.V-p.K)
		for x := 0; x < p.V; x++ {
			if !in[x] {
				out = append(out, x)
			}
		}
		c.Tuples = append(c.Tuples, out)
	}
	if err := c.Verify(); err != nil {
		return nil, fmt.Errorf("complement design: %w", err)
	}
	return c, nil
}

// Multiply concatenates m copies of the design, multiplying b, r and λ by m
// while leaving v, k unchanged. Occasionally useful to reach a layout table
// with a particular size.
func Multiply(d *Design, m int) (*Design, error) {
	if m < 1 {
		return nil, fmt.Errorf("blockdesign: multiply by %d", m)
	}
	out := &Design{V: d.V, K: d.K, Source: fmt.Sprintf("%d x (%s)", m, d.Source)}
	for i := 0; i < m; i++ {
		for _, tup := range d.Tuples {
			out.Tuples = append(out.Tuples, append([]int(nil), tup...))
		}
	}
	return out, nil
}
