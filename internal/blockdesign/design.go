// Package blockdesign implements balanced incomplete and complete block
// designs (BIBDs), the combinatorial structure underlying parity
// declustering (Holland & Gibson 1992, §4).
//
// A block design arranges v distinct objects into b tuples of k elements
// each, such that every object appears in exactly r tuples and every pair of
// objects appears together in exactly λ tuples. Two identities always hold:
//
//	b·k = v·r        (counting object slots two ways)
//	r·(k−1) = λ·(v−1) (counting pairs through one object two ways)
//
// The package provides generators (complete designs, cyclic difference
// families in Hall's abbreviated notation, derived/residual/complement
// constructions, Bose and Skolem Steiner triple systems, projective and
// affine planes over prime fields), a verifier, the paper's six appendix
// designs, and a catalog that picks the best available design for a given
// array size C and parity stripe size G.
package blockdesign

import (
	"fmt"
	"sort"
)

// Design is a block design on objects 0..V-1. Tuples hold K distinct
// objects each. Construct designs through the package generators, which
// guarantee balance; Verify checks an arbitrary design.
type Design struct {
	V      int     // number of objects
	K      int     // tuple size
	Tuples [][]int // b tuples of k objects each
	Source string  // human-readable provenance ("complete", "paper appendix 3", ...)
}

// Params are the five classic BIBD parameters.
type Params struct {
	B, V, K, R, Lambda int
}

// Alpha returns the declustering ratio (G−1)/(C−1) that the design yields
// when its objects are disks (C = v) and tuples are parity stripes (G = k).
func (p Params) Alpha() float64 {
	if p.V <= 1 {
		return 1
	}
	return float64(p.K-1) / float64(p.V-1)
}

func (p Params) String() string {
	return fmt.Sprintf("b=%d v=%d k=%d r=%d λ=%d (α=%.3g)",
		p.B, p.V, p.K, p.R, p.Lambda, p.Alpha())
}

// B returns the number of tuples.
func (d *Design) B() int { return len(d.Tuples) }

// Alpha returns the declustering ratio (K−1)/(V−1).
func (d *Design) Alpha() float64 {
	if d.V <= 1 {
		return 1
	}
	return float64(d.K-1) / float64(d.V-1)
}

// Params verifies the design and returns its parameters; it fails if the
// design is not a balanced (complete or incomplete) block design.
func (d *Design) Params() (Params, error) {
	if err := d.Verify(); err != nil {
		return Params{}, err
	}
	r := len(d.Tuples) * d.K / d.V
	lambda := r * (d.K - 1) / (d.V - 1)
	return Params{B: len(d.Tuples), V: d.V, K: d.K, R: r, Lambda: lambda}, nil
}

// Verify checks the BIBD axioms: every tuple holds K distinct objects in
// range, every object appears in the same number r of tuples, and every
// unordered pair of objects appears in the same number λ of tuples.
func (d *Design) Verify() error {
	if d.V < 2 {
		return fmt.Errorf("blockdesign: need v >= 2, have %d", d.V)
	}
	if d.K < 2 || d.K > d.V {
		return fmt.Errorf("blockdesign: need 2 <= k <= v, have k=%d v=%d", d.K, d.V)
	}
	if len(d.Tuples) == 0 {
		return fmt.Errorf("blockdesign: no tuples")
	}
	occ := make([]int, d.V)
	// Pair counts in a triangular matrix: pair (i<j) at index i*V+j.
	pairs := make([]int, d.V*d.V)
	for ti, tup := range d.Tuples {
		if len(tup) != d.K {
			return fmt.Errorf("blockdesign: tuple %d has %d elements, want %d", ti, len(tup), d.K)
		}
		for i, x := range tup {
			if x < 0 || x >= d.V {
				return fmt.Errorf("blockdesign: tuple %d element %d out of range", ti, x)
			}
			occ[x]++
			for _, y := range tup[i+1:] {
				if x == y {
					return fmt.Errorf("blockdesign: tuple %d repeats object %d", ti, x)
				}
				a, b := x, y
				if a > b {
					a, b = b, a
				}
				pairs[a*d.V+b]++
			}
		}
	}
	r := occ[0]
	for x, c := range occ {
		if c != r {
			return fmt.Errorf("blockdesign: object %d appears %d times, object 0 appears %d (r not constant)", x, c, r)
		}
	}
	lambda := pairs[0*d.V+1]
	for i := 0; i < d.V; i++ {
		for j := i + 1; j < d.V; j++ {
			if pairs[i*d.V+j] != lambda {
				return fmt.Errorf("blockdesign: pair (%d,%d) appears %d times, pair (0,1) appears %d (λ not constant)",
					i, j, pairs[i*d.V+j], lambda)
			}
		}
	}
	// Consistency of the two counting identities.
	if len(d.Tuples)*d.K != d.V*r {
		return fmt.Errorf("blockdesign: bk=%d != vr=%d", len(d.Tuples)*d.K, d.V*r)
	}
	if r*(d.K-1) != lambda*(d.V-1) {
		return fmt.Errorf("blockdesign: r(k-1)=%d != λ(v-1)=%d", r*(d.K-1), lambda*(d.V-1))
	}
	return nil
}

// IsSymmetric reports whether the design is symmetric (b = v, which with
// balance implies r = k). Symmetric designs admit derived and residual
// constructions.
func (d *Design) IsSymmetric() bool { return len(d.Tuples) == d.V }

// Clone returns a deep copy.
func (d *Design) Clone() *Design {
	t := make([][]int, len(d.Tuples))
	for i, tup := range d.Tuples {
		t[i] = append([]int(nil), tup...)
	}
	return &Design{V: d.V, K: d.K, Tuples: t, Source: d.Source}
}

// sortTuples orders each tuple ascending and the tuple list
// lexicographically; useful for stable output and tests.
func (d *Design) sortTuples() {
	for _, tup := range d.Tuples {
		sort.Ints(tup)
	}
	sort.Slice(d.Tuples, func(i, j int) bool {
		a, b := d.Tuples[i], d.Tuples[j]
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
}
