package blockdesign

import (
	"strings"
	"testing"
)

func mustParams(t *testing.T, d *Design) Params {
	t.Helper()
	p, err := d.Params()
	if err != nil {
		t.Fatalf("%s: %v", d.Source, err)
	}
	return p
}

func TestVerifyAcceptsFigure4_1(t *testing.T) {
	// The complete design printed in the paper's Figure 4-1:
	// b=5, v=5, k=4, r=4, λ=3.
	d := &Design{V: 5, K: 4, Tuples: [][]int{
		{0, 1, 2, 3}, {0, 1, 2, 4}, {0, 1, 3, 4}, {0, 2, 3, 4}, {1, 2, 3, 4},
	}}
	p := mustParams(t, d)
	want := Params{B: 5, V: 5, K: 4, R: 4, Lambda: 3}
	if p != want {
		t.Fatalf("params = %+v, want %+v", p, want)
	}
}

func TestVerifyRejectsUnbalanced(t *testing.T) {
	cases := []struct {
		name string
		d    *Design
		msg  string
	}{
		{"r not constant", &Design{V: 4, K: 2, Tuples: [][]int{{0, 1}, {0, 2}, {0, 3}}}, "r not constant"},
		{"λ not constant", &Design{V: 4, K: 2, Tuples: [][]int{{0, 1}, {2, 3}, {0, 1}, {2, 3}, {0, 2}, {1, 3}, {0, 3}, {1, 2}}}, "λ not constant"},
		{"repeat in tuple", &Design{V: 4, K: 2, Tuples: [][]int{{0, 0}}}, "repeats"},
		{"out of range", &Design{V: 4, K: 2, Tuples: [][]int{{0, 4}}}, "out of range"},
		{"wrong size tuple", &Design{V: 4, K: 2, Tuples: [][]int{{0, 1, 2}}}, "elements"},
		{"no tuples", &Design{V: 4, K: 2}, "no tuples"},
		{"k too small", &Design{V: 4, K: 1, Tuples: [][]int{{0}}}, "k <= v"},
		{"v too small", &Design{V: 1, K: 1, Tuples: [][]int{{0}}}, "v >= 2"},
	}
	for _, c := range cases {
		err := c.d.Verify()
		if err == nil {
			t.Errorf("%s: Verify accepted invalid design", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.msg) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.msg)
		}
	}
}

func TestPaperDesignsMatchPublishedParameters(t *testing.T) {
	want := map[int]Params{
		3:  {B: 70, V: 21, K: 3, R: 10, Lambda: 1},
		4:  {B: 105, V: 21, K: 4, R: 20, Lambda: 3},
		5:  {B: 21, V: 21, K: 5, R: 5, Lambda: 1},
		6:  {B: 42, V: 21, K: 6, R: 12, Lambda: 3},
		10: {B: 42, V: 21, K: 10, R: 20, Lambda: 9},
		18: {B: 1330, V: 21, K: 18, R: 1140, Lambda: 969},
	}
	alphas := map[int]float64{3: 0.1, 4: 0.15, 5: 0.2, 6: 0.25, 10: 0.45, 18: 0.85}
	for _, g := range PaperG {
		d, err := PaperDesign(g)
		if err != nil {
			t.Fatalf("PaperDesign(%d): %v", g, err)
		}
		p := mustParams(t, d)
		if p != want[g] {
			t.Errorf("G=%d: params %+v, want %+v", g, p, want[g])
		}
		if a := p.Alpha(); a != alphas[g] {
			t.Errorf("G=%d: α=%v, want %v", g, a, alphas[g])
		}
	}
}

func TestPaperDesignUnknownG(t *testing.T) {
	if _, err := PaperDesign(7); err == nil {
		t.Fatal("PaperDesign(7) succeeded; the paper has no such design")
	}
}

func TestCompleteDesignParams(t *testing.T) {
	d, err := Complete(6, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := mustParams(t, d)
	// r = C(5,2) = 10, λ = C(4,1) = 4, b = C(6,3) = 20.
	want := Params{B: 20, V: 6, K: 3, R: 10, Lambda: 4}
	if p != want {
		t.Fatalf("params = %+v, want %+v", p, want)
	}
}

func TestCompleteDesignRespectsLimit(t *testing.T) {
	if _, err := Complete(41, 5, 1000); err == nil {
		t.Fatal("no error for the paper's 41-disk/G=5 infeasible example")
	}
}

func TestCompleteDesignRejectsBadArgs(t *testing.T) {
	for _, c := range []struct{ v, k int }{{1, 1}, {5, 1}, {5, 6}} {
		if _, err := Complete(c.v, c.k, 0); err == nil {
			t.Errorf("Complete(%d,%d) accepted", c.v, c.k)
		}
	}
}

func TestCyclicShortPeriod(t *testing.T) {
	// The short orbit [0,7,14] mod 21 period 7 from appendix design 1
	// produces 7 tuples covering differences 7 and 14 exactly once each.
	d := &Design{V: 21, K: 3}
	for s := 0; s < 7; s++ {
		d.Tuples = append(d.Tuples, []int{s, s + 7, s + 14})
	}
	// Not balanced alone (pairs across orbits never met) — just check
	// the tuple development matches Cyclic's output.
	got, err := Cyclic(21, []BaseBlock{{Elements: []int{0, 7, 14}, Period: 7}}, "short orbit")
	if err == nil {
		t.Fatal("short orbit alone should fail verification (λ not constant)")
	}
	_ = got
}

func TestCyclicRejectsBadInput(t *testing.T) {
	if _, err := Cyclic(21, nil, "x"); err == nil {
		t.Error("no base blocks accepted")
	}
	if _, err := Cyclic(21, []BaseBlock{{Elements: []int{0, 1, 3}}, {Elements: []int{0, 1}}}, "x"); err == nil {
		t.Error("mismatched block sizes accepted")
	}
	if _, err := Cyclic(21, []BaseBlock{{Elements: []int{0, 1, 3}, Period: 22}}, "x"); err == nil {
		t.Error("period beyond v accepted")
	}
}

func TestDerivedOfSymmetric(t *testing.T) {
	// Fano plane (7,3,1) is symmetric; derived design has k'=λ=1 < 2 so
	// must fail. Use the (43,21,10) from the paper instead, already
	// covered by TestPaperDesigns; here use PG(2,3): (13,4,1) symmetric,
	// derived k'=1 → error. Good negative case.
	pg, err := ProjectivePlane(3)
	if err != nil {
		t.Fatal(err)
	}
	if !pg.IsSymmetric() {
		t.Fatal("PG(2,3) not symmetric")
	}
	if _, err := Derived(pg, 0); err == nil {
		t.Fatal("derived design with k'=1 accepted")
	}
}

func TestDerivedRequiresSymmetric(t *testing.T) {
	d, _ := Complete(6, 3, 0)
	if _, err := Derived(d, 0); err == nil {
		t.Fatal("derived of non-symmetric design accepted")
	}
}

func TestDerivedBlockIndexOutOfRange(t *testing.T) {
	pg, _ := ProjectivePlane(4 - 1) // PG(2,3)
	if _, err := Derived(pg, 99); err == nil {
		t.Fatal("out-of-range block index accepted")
	}
}

func TestResidualOfSymmetric(t *testing.T) {
	// Residual of PG(2,p) is the affine plane AG(2,p):
	// (b,v,k,r,λ) = (p²+p, p², p, p+1, 1).
	for _, p := range []int{2, 3, 5} {
		pg, err := ProjectivePlane(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Residual(pg, 0)
		if err != nil {
			t.Fatalf("residual PG(2,%d): %v", p, err)
		}
		rp := mustParams(t, res)
		want := Params{B: p*p + p, V: p * p, K: p, R: p + 1, Lambda: 1}
		if rp != want {
			t.Fatalf("residual PG(2,%d) params %+v, want %+v", p, rp, want)
		}
	}
}

func TestComplementParams(t *testing.T) {
	// Complement of (b,v,k,r,λ) is (b, v, v−k, b−r, b−2r+λ).
	d, err := PaperDesign(5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Complement(d)
	if err != nil {
		t.Fatal(err)
	}
	p := mustParams(t, c)
	want := Params{B: 21, V: 21, K: 16, R: 16, Lambda: 12}
	if p != want {
		t.Fatalf("complement params %+v, want %+v", p, want)
	}
}

func TestComplementRejectsNearFull(t *testing.T) {
	d, _ := Complete(5, 4, 0)
	if _, err := Complement(d); err == nil {
		t.Fatal("complement with k' < 2 accepted")
	}
}

func TestMultiply(t *testing.T) {
	d, _ := PaperDesign(5)
	m, err := Multiply(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := mustParams(t, m)
	want := Params{B: 63, V: 21, K: 5, R: 15, Lambda: 3}
	if p != want {
		t.Fatalf("multiplied params %+v, want %+v", p, want)
	}
	if _, err := Multiply(d, 0); err == nil {
		t.Fatal("multiply by 0 accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	d, _ := PaperDesign(5)
	c := d.Clone()
	c.Tuples[0][0] = 99
	if d.Tuples[0][0] == 99 {
		t.Fatal("clone shares tuple storage")
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{21, 18, 1330}, {21, 5, 20349}, {5, 0, 1}, {5, 5, 1}, {5, 6, 0}, {41, 5, 749398},
	}
	for _, c := range cases {
		got, err := Binomial(c.n, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}
