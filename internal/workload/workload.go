// Package workload generates the synthetic user request stream of the
// paper's Table 5-1(a): fixed-size, aligned accesses, Poisson arrivals at a
// configurable rate, addresses uniform over the user data space, and a
// fixed read fraction. Generation is deterministic for a given seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Config parameterizes a generator.
type Config struct {
	// RatePerSec is the mean user access arrival rate (Poisson).
	RatePerSec float64
	// ReadFraction is the probability an access is a read, in [0,1].
	ReadFraction float64
	// DataUnits is the size of the user data space in stripe units;
	// addresses are uniform over [0, DataUnits).
	DataUnits int64
	// AccessUnits is the fixed access size in stripe units (the paper
	// fixes both size and alignment at one 4 KB unit); 0 means 1.
	// Accesses are aligned to their own size, as in Table 5-1(a).
	AccessUnits int
	// HotDataFraction and HotAccessFraction skew the address
	// distribution: the first HotDataFraction of the data space
	// receives HotAccessFraction of the accesses (e.g. 0.2/0.8 for the
	// classic 80/20 rule). Both zero means uniform, as in the paper.
	HotDataFraction   float64
	HotAccessFraction float64
	// SequentialFraction, in [0,1), makes that fraction of accesses
	// continue at the slot after the previous access (wrapping at the end
	// of the data space), modelling sequential streams that exercise disk
	// track read-ahead. 0 keeps the paper's pure random stream and draws
	// exactly the random sequence generators drew before this field
	// existed.
	SequentialFraction float64
	// Seed makes the stream reproducible.
	Seed int64
}

// Op is one user access: a read or write of Count consecutive units.
type Op struct {
	Read  bool
	Unit  int64 // first logical data unit
	Count int   // units accessed
}

// Source produces a stream of timed accesses: each Next returns the delay
// in milliseconds until the next access arrives, and the access itself.
// Generator (synthetic) and trace.Replayer (recorded) both implement it.
type Source interface {
	Next() (delayMS float64, op Op)
}

// Generator produces a deterministic Poisson stream of Ops.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	lastSlot int64
}

// New validates the configuration and builds a generator.
func New(cfg Config) (*Generator, error) {
	if cfg.RatePerSec <= 0 || math.IsNaN(cfg.RatePerSec) || math.IsInf(cfg.RatePerSec, 0) {
		return nil, fmt.Errorf("workload: rate must be positive, have %v", cfg.RatePerSec)
	}
	if cfg.ReadFraction < 0 || cfg.ReadFraction > 1 {
		return nil, fmt.Errorf("workload: read fraction %v out of [0,1]", cfg.ReadFraction)
	}
	if cfg.DataUnits <= 0 {
		return nil, fmt.Errorf("workload: data space must be positive, have %d units", cfg.DataUnits)
	}
	if cfg.AccessUnits == 0 {
		cfg.AccessUnits = 1
	}
	if cfg.AccessUnits < 0 || int64(cfg.AccessUnits) > cfg.DataUnits {
		return nil, fmt.Errorf("workload: access size %d units out of range (data space %d)",
			cfg.AccessUnits, cfg.DataUnits)
	}
	if cfg.SequentialFraction < 0 || cfg.SequentialFraction >= 1 {
		return nil, fmt.Errorf("workload: sequential fraction %v out of [0,1)", cfg.SequentialFraction)
	}
	hot := cfg.HotDataFraction != 0 || cfg.HotAccessFraction != 0
	if hot {
		if cfg.HotDataFraction <= 0 || cfg.HotDataFraction >= 1 ||
			cfg.HotAccessFraction <= 0 || cfg.HotAccessFraction >= 1 {
			return nil, fmt.Errorf("workload: hot-spot fractions must both lie in (0,1), have %v/%v",
				cfg.HotDataFraction, cfg.HotAccessFraction)
		}
		slots := cfg.DataUnits / int64(cfg.AccessUnits)
		if hotSlots := int64(cfg.HotDataFraction * float64(slots)); hotSlots < 1 || hotSlots >= slots {
			return nil, fmt.Errorf("workload: hot region of %d slots infeasible", hotSlots)
		}
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Next returns the interarrival delay in milliseconds until the next
// access, and the access itself.
func (g *Generator) Next() (delayMS float64, op Op) {
	delayMS = g.rng.ExpFloat64() / g.cfg.RatePerSec * 1000
	op.Read = g.rng.Float64() < g.cfg.ReadFraction
	op.Count = g.cfg.AccessUnits
	slots := g.cfg.DataUnits / int64(g.cfg.AccessUnits)
	if g.cfg.SequentialFraction > 0 && g.rng.Float64() < g.cfg.SequentialFraction {
		g.lastSlot = (g.lastSlot + 1) % slots
		op.Unit = g.lastSlot * int64(g.cfg.AccessUnits)
		return delayMS, op
	}
	slot := g.rng.Int63n(slots)
	if g.cfg.HotDataFraction > 0 {
		hotSlots := int64(g.cfg.HotDataFraction * float64(slots))
		if g.rng.Float64() < g.cfg.HotAccessFraction {
			slot = g.rng.Int63n(hotSlots)
		} else {
			slot = hotSlots + g.rng.Int63n(slots-hotSlots)
		}
	}
	g.lastSlot = slot
	op.Unit = slot * int64(g.cfg.AccessUnits)
	return delayMS, op
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }
