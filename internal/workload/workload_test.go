package workload

import (
	"math"
	"testing"
)

func TestRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{RatePerSec: 0, ReadFraction: 0.5, DataUnits: 10},
		{RatePerSec: -1, ReadFraction: 0.5, DataUnits: 10},
		{RatePerSec: 100, ReadFraction: -0.1, DataUnits: 10},
		{RatePerSec: 100, ReadFraction: 1.1, DataUnits: 10},
		{RatePerSec: 100, ReadFraction: 0.5, DataUnits: 0},
		{RatePerSec: math.NaN(), ReadFraction: 0.5, DataUnits: 10},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	mk := func() *Generator {
		g, err := New(Config{RatePerSec: 105, ReadFraction: 0.5, DataUnits: 1000, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		da, oa := a.Next()
		db, ob := b.Next()
		if da != db || oa != ob {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestArrivalRateMatches(t *testing.T) {
	g, _ := New(Config{RatePerSec: 210, ReadFraction: 0.5, DataUnits: 1 << 20, Seed: 1})
	const n = 100000
	total := 0.0
	for i := 0; i < n; i++ {
		d, _ := g.Next()
		total += d
	}
	rate := n / (total / 1000)
	if math.Abs(rate-210)/210 > 0.02 {
		t.Fatalf("empirical rate %.1f/s, want ~210", rate)
	}
}

func TestReadFraction(t *testing.T) {
	for _, rf := range []float64{0, 0.5, 1} {
		g, _ := New(Config{RatePerSec: 100, ReadFraction: rf, DataUnits: 100, Seed: 3})
		reads := 0
		const n = 20000
		for i := 0; i < n; i++ {
			_, op := g.Next()
			if op.Read {
				reads++
			}
		}
		got := float64(reads) / n
		if math.Abs(got-rf) > 0.02 {
			t.Errorf("read fraction %v: observed %v", rf, got)
		}
	}
}

func TestAccessSizeAndAlignment(t *testing.T) {
	g, err := New(Config{RatePerSec: 100, ReadFraction: 0.5, DataUnits: 1000, AccessUnits: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		_, op := g.Next()
		if op.Count != 8 {
			t.Fatalf("count %d, want 8", op.Count)
		}
		if op.Unit%8 != 0 {
			t.Fatalf("unit %d not aligned to access size", op.Unit)
		}
		if op.Unit+8 > 1000 {
			t.Fatalf("access [%d,%d) exceeds data space", op.Unit, op.Unit+8)
		}
	}
}

func TestAccessSizeValidation(t *testing.T) {
	if _, err := New(Config{RatePerSec: 1, ReadFraction: 0, DataUnits: 10, AccessUnits: 11}); err == nil {
		t.Fatal("oversized access accepted")
	}
	if _, err := New(Config{RatePerSec: 1, ReadFraction: 0, DataUnits: 10, AccessUnits: -1}); err == nil {
		t.Fatal("negative access size accepted")
	}
	g, err := New(Config{RatePerSec: 1, ReadFraction: 0, DataUnits: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, op := g.Next(); op.Count != 1 {
		t.Fatalf("default count %d, want 1", op.Count)
	}
}

func TestHotSpotSkew(t *testing.T) {
	g, err := New(Config{
		RatePerSec: 100, ReadFraction: 0.5, DataUnits: 1000, Seed: 8,
		HotDataFraction: 0.2, HotAccessFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	hot := 0
	for i := 0; i < n; i++ {
		_, op := g.Next()
		if op.Unit < 200 {
			hot++
		}
	}
	frac := float64(hot) / n
	if math.Abs(frac-0.8) > 0.02 {
		t.Fatalf("hot region received %.3f of accesses, want ~0.8", frac)
	}
}

func TestHotSpotValidation(t *testing.T) {
	bad := []Config{
		{RatePerSec: 1, DataUnits: 100, HotDataFraction: 0.2},                          // one-sided
		{RatePerSec: 1, DataUnits: 100, HotDataFraction: 1.2, HotAccessFraction: 0.8},  // out of range
		{RatePerSec: 1, DataUnits: 100, HotDataFraction: 0.2, HotAccessFraction: -0.1}, // out of range
		{RatePerSec: 1, DataUnits: 3, HotDataFraction: 0.01, HotAccessFraction: 0.9},   // empty hot region
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAddressesUniformAndInRange(t *testing.T) {
	const units = 64
	g, _ := New(Config{RatePerSec: 100, ReadFraction: 0.5, DataUnits: units, Seed: 5})
	counts := make([]int, units)
	const n = 64000
	for i := 0; i < n; i++ {
		_, op := g.Next()
		if op.Unit < 0 || op.Unit >= units {
			t.Fatalf("unit %d out of range", op.Unit)
		}
		counts[op.Unit]++
	}
	want := float64(n) / units
	for u, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.25 {
			t.Errorf("unit %d hit %d times, want ~%.0f", u, c, want)
		}
	}
}

// TestSequentialFractionProducesRuns checks that roughly the configured
// fraction of accesses continue at the slot after their predecessor, and
// that the rest stay random.
func TestSequentialFractionProducesRuns(t *testing.T) {
	g, err := New(Config{RatePerSec: 100, ReadFraction: 0.5, DataUnits: 10_000,
		SequentialFraction: 0.6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	seq := 0
	_, prev := g.Next()
	for i := 1; i < n; i++ {
		_, op := g.Next()
		if op.Unit == (prev.Unit+1)%10_000 {
			seq++
		}
		prev = op
	}
	frac := float64(seq) / n
	if math.Abs(frac-0.6) > 0.02 {
		t.Fatalf("sequential continuations %.3f of accesses, want ~0.6", frac)
	}
}

// TestSequentialFractionZeroDrawsLegacySequence pins the determinism
// contract: SequentialFraction 0 consumes the random stream exactly as
// generators did before the field existed, so seeded workloads are
// byte-identical.
func TestSequentialFractionZeroDrawsLegacySequence(t *testing.T) {
	a, _ := New(Config{RatePerSec: 100, ReadFraction: 0.5, DataUnits: 512, Seed: 3})
	b, _ := New(Config{RatePerSec: 100, ReadFraction: 0.5, DataUnits: 512, Seed: 3,
		SequentialFraction: 0})
	for i := 0; i < 5000; i++ {
		da, oa := a.Next()
		db, ob := b.Next()
		if da != db || oa != ob {
			t.Fatalf("draw %d diverged: (%v, %+v) vs (%v, %+v)", i, da, oa, db, ob)
		}
	}
}

func TestSequentialFractionValidation(t *testing.T) {
	for _, f := range []float64{-0.1, 1, 1.5} {
		if _, err := New(Config{RatePerSec: 1, DataUnits: 100, SequentialFraction: f}); err == nil {
			t.Errorf("sequential fraction %v accepted", f)
		}
	}
}
