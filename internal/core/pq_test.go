package core

import (
	"strings"
	"testing"
)

func TestNewPQMapping(t *testing.T) {
	m, err := NewPQMapping(21, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Parities() != 2 {
		t.Fatalf("Parities() = %d, want 2", m.Parities())
	}
	// Two parity units per G=5 stripe: 40% overhead.
	if got := m.ParityOverhead(); got != 0.4 {
		t.Fatalf("overhead %v, want 0.4", got)
	}
	if !strings.Contains(m.Describe(), "P+Q") {
		t.Fatalf("describe: %s", m.Describe())
	}
}

func pqSmallCfg(g int) SimConfig {
	cfg := smallCfg(g)
	cfg.Parities = 2
	return cfg
}

func TestRunsWithDualParity(t *testing.T) {
	ff, err := RunFaultFree(pqSmallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if ff.Requests < 1000 {
		t.Fatalf("only %d requests measured", ff.Requests)
	}
	dg, err := RunDegraded(pqSmallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if dg.MeanResponseMS <= 0 {
		t.Fatalf("degraded P+Q run reported %v ms response", dg.MeanResponseMS)
	}
	rc, err := RunReconstruction(pqSmallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if rc.ReconTimeMS <= 0 || rc.ReconCycles == 0 {
		t.Fatalf("missing reconstruction metrics: %+v", rc)
	}
}

func TestDualParityWritesCostMore(t *testing.T) {
	// The α × rebuild-traffic × code tradeoff's cost side: the same
	// write-heavy workload pays six accesses per small write under P+Q
	// against four under P, so responses are slower.
	cfg := smallCfg(5)
	cfg.ReadFraction = 0
	single, err := RunFaultFree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pq := cfg
	pq.Parities = 2
	dual, err := RunFaultFree(pq)
	if err != nil {
		t.Fatal(err)
	}
	if dual.MeanResponseMS <= single.MeanResponseMS {
		t.Fatalf("P+Q write response %v ms not above single parity's %v ms",
			dual.MeanResponseMS, single.MeanResponseMS)
	}
}

func TestLifecycleDualParityLosesNothingToDoubleFailures(t *testing.T) {
	// Accelerated aging with slow replacement makes true second failures
	// common; the P+Q run must decode every double-dead stripe.
	cfg := lifecycleCfg()
	cfg.Sim.Parities = 2
	cfg.ReplacementDelayMS = 20_000
	rep, err := RunLifecycle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DoubleFailures == 0 {
		t.Fatal("no double failures in an accelerated run; test is vacuous")
	}
	if rep.StripesSurvived == 0 {
		t.Fatalf("%d double failures but no surviving double-dead stripes: %+v",
			rep.DoubleFailures, rep)
	}
	if rep.StripesLost != 0 || rep.UnitsLost != 0 || rep.DataLossEvents != 0 {
		t.Fatalf("P+Q lifecycle lost data: %+v", rep)
	}

	// The identical run under single parity loses stripes.
	sp := lifecycleCfg()
	sp.ReplacementDelayMS = 20_000
	srep, err := RunLifecycle(sp)
	if err != nil {
		t.Fatal(err)
	}
	if srep.DoubleFailures == 0 || srep.StripesLost == 0 {
		t.Fatalf("single-parity control lost nothing: %+v", srep)
	}
}

func TestSimConfigParitiesValidation(t *testing.T) {
	cfg := smallCfg(5)
	cfg.Parities = 3
	if _, err := RunFaultFree(cfg); err == nil {
		t.Fatal("Parities=3 accepted")
	}
	cfg = smallCfg(5)
	cfg.Parities = 2
	cfg.DistributedSparing = true
	if _, err := RunFaultFree(cfg); err == nil {
		t.Fatal("Parities=2 with distributed sparing accepted")
	}
}
