package core

import (
	"strings"
	"testing"

	"declust/internal/array"
	"declust/internal/trace"
)

func TestNewMappingRaid5(t *testing.T) {
	m, err := NewMapping(21, 21, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Design != nil || m.Alpha() != 1 {
		t.Fatalf("RAID 5 mapping wrong: %s", m.Describe())
	}
	if !strings.Contains(m.Describe(), "RAID 5") {
		t.Fatalf("describe: %s", m.Describe())
	}
}

func TestNewMappingDeclustered(t *testing.T) {
	for _, g := range []int{3, 4, 5, 6, 10, 18} {
		m, err := NewMapping(21, g, 0)
		if err != nil {
			t.Fatalf("G=%d: %v", g, err)
		}
		if m.Design == nil || !m.Exact || m.G != g {
			t.Fatalf("G=%d: %s", g, m.Describe())
		}
		want := float64(g-1) / 20
		if m.Alpha() != want {
			t.Fatalf("G=%d: α=%v want %v", g, m.Alpha(), want)
		}
		crit, err := m.Criteria()
		if err != nil {
			t.Fatal(err)
		}
		if !crit.SingleFailureCorrecting || !crit.DistributedReconstruction || !crit.DistributedParity {
			t.Fatalf("G=%d fails core criteria: %+v", g, crit)
		}
	}
}

func TestNewMappingParityOverhead(t *testing.T) {
	m, _ := NewMapping(21, 5, 0)
	if m.ParityOverhead() != 0.2 {
		t.Fatalf("overhead %v, want 0.2", m.ParityOverhead())
	}
}

func TestNewMappingClosestFallback(t *testing.T) {
	m, err := NewMapping(41, 5, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if m.Exact {
		t.Fatalf("expected inexact fallback: %s", m.Describe())
	}
	if !strings.Contains(m.Describe(), "closest feasible") {
		t.Fatalf("describe should flag fallback: %s", m.Describe())
	}
}

func TestNewMappingRejects(t *testing.T) {
	for _, c := range []struct{ C, G int }{{1, 1}, {5, 6}, {0, 0}} {
		if _, err := NewMapping(c.C, c.G, 0); err == nil {
			t.Errorf("NewMapping(%d,%d) accepted", c.C, c.G)
		}
	}
}

// smallCfg returns a fast configuration: 1/50-scale disks, short windows.
func smallCfg(g int) SimConfig {
	return SimConfig{
		C: 21, G: g,
		ScaleNum: 1, ScaleDen: 50,
		RatePerSec:   105,
		ReadFraction: 0.5,
		Seed:         42,
		WarmupMS:     2_000,
		MeasureMS:    20_000,
	}
}

func TestRunFaultFree(t *testing.T) {
	m, err := RunFaultFree(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests < 1000 {
		t.Fatalf("only %d requests measured", m.Requests)
	}
	// One random 4 KB access takes ~22 ms; a lightly loaded array's mean
	// response (reads 1 access, writes 4 over 2 disks with queueing)
	// should land well under 200 ms and above 15 ms.
	if m.MeanResponseMS < 15 || m.MeanResponseMS > 200 {
		t.Fatalf("fault-free mean response %v ms implausible", m.MeanResponseMS)
	}
	if m.ReconTimeMS != 0 {
		t.Fatal("fault-free run reports reconstruction time")
	}
}

func TestRunDegradedSlowerReadsThanFaultFree(t *testing.T) {
	cfg := smallCfg(5)
	cfg.ReadFraction = 1.0
	ff, err := RunFaultFree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := RunDegraded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dg.MeanResponseMS <= ff.MeanResponseMS {
		t.Fatalf("degraded reads (%v ms) not slower than fault-free (%v ms)",
			dg.MeanResponseMS, ff.MeanResponseMS)
	}
}

func TestRunReconstructionCompletesAndReports(t *testing.T) {
	cfg := smallCfg(5)
	cfg.ReconProcs = 4
	m, err := RunReconstruction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.ReconTimeMS <= 0 || m.ReconCycles == 0 {
		t.Fatalf("missing reconstruction metrics: %+v", m)
	}
	if m.ReadPhaseMeanMS <= 0 || m.WritePhaseMeanMS <= 0 {
		t.Fatalf("missing phase metrics: %+v", m)
	}
	if m.Requests == 0 {
		t.Fatal("no user requests measured during reconstruction")
	}
}

func TestDeclusteredReconstructsFasterThanRaid5(t *testing.T) {
	// The headline claim (Figures 8-1/8-2): at a low declustering ratio
	// the array reconstructs much faster than RAID 5 under load.
	declust := smallCfg(5)
	declust.RatePerSec = 105
	raid5 := declust
	raid5.G = 21
	md, err := RunReconstruction(declust)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := RunReconstruction(raid5)
	if err != nil {
		t.Fatal(err)
	}
	if md.ReconTimeMS >= mr.ReconTimeMS {
		t.Fatalf("declustered recon (%v ms) not faster than RAID 5 (%v ms)",
			md.ReconTimeMS, mr.ReconTimeMS)
	}
	if md.MeanResponseMS >= mr.MeanResponseMS {
		t.Fatalf("declustered response (%v ms) not better than RAID 5 (%v ms)",
			md.MeanResponseMS, mr.MeanResponseMS)
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	a, err := RunFaultFree(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaultFree(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestReconCyclePhases(t *testing.T) {
	rm, rs, wm, ws, err := ReconCyclePhases(smallCfg(5), 300)
	if err != nil {
		t.Fatal(err)
	}
	if rm <= 0 || wm <= 0 {
		t.Fatalf("phases not measured: read %v(%v) write %v(%v)", rm, rs, wm, ws)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := smallCfg(5)
	cfg.RatePerSec = 0
	if _, err := RunFaultFree(cfg); err == nil {
		t.Fatal("zero rate accepted")
	}
	cfg = smallCfg(5)
	cfg.C, cfg.G = 3, 9
	if _, err := RunFaultFree(cfg); err == nil {
		t.Fatal("G > C accepted")
	}
}

func TestTraceCaptureAndReplay(t *testing.T) {
	// Capture a trace from a synthetic run, then replay it: the replayed
	// run must see the same number of accesses with the same op mix, and
	// produce comparable response times.
	var log trace.Log
	cfg := smallCfg(5)
	cfg.CaptureTrace = &log
	orig, err := RunFaultFree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() != orig.Requests {
		t.Fatalf("captured %d records for %d requests", log.Len(), orig.Requests)
	}

	rep, err := trace.NewReplayer(&log)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := smallCfg(5)
	cfg2.Source = rep
	replayed, err := RunFaultFree(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Requests == 0 {
		t.Fatal("replay produced no measured requests")
	}
	// Same arrival process and addresses on the same array: means within
	// 30% (boundary effects differ at window edges).
	ratio := replayed.MeanResponseMS / orig.MeanResponseMS
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("replayed mean %.1f ms vs original %.1f ms (ratio %.2f)",
			replayed.MeanResponseMS, orig.MeanResponseMS, ratio)
	}
}

func TestSparedMapping(t *testing.T) {
	m, err := NewSparedMapping(21, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.G != 5 || m.Design.K != 6 {
		t.Fatalf("spared mapping G=%d design k=%d, want 5/6", m.G, m.Design.K)
	}
	// Redundancy overhead: parity + spare = 2 of every 6 slots.
	if got := m.ParityOverhead(); got < 0.33 || got > 0.34 {
		t.Fatalf("spared overhead %v, want ~1/3", got)
	}
	if _, err := NewSparedMapping(5, 5, 0); err == nil {
		t.Fatal("G+1 > C accepted")
	}
}

func TestRunReconstructionWithDistributedSparing(t *testing.T) {
	cfg := smallCfg(5)
	cfg.DistributedSparing = true
	cfg.ReconProcs = 8
	m, err := RunReconstruction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.ReconTimeMS <= 0 || m.Requests == 0 {
		t.Fatalf("sparing reconstruction metrics missing: %+v", m)
	}
}

func TestAllAlgorithmsRunReconstruction(t *testing.T) {
	for _, alg := range []array.ReconAlgorithm{array.Baseline, array.UserWrites, array.Redirect, array.RedirectPiggyback} {
		cfg := smallCfg(5)
		cfg.Algorithm = alg
		cfg.ReconProcs = 8
		if _, err := RunReconstruction(cfg); err != nil {
			t.Errorf("%v: %v", alg, err)
		}
	}
}
