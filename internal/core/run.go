package core

import (
	"fmt"

	"declust/internal/array"
	"declust/internal/disk"
	"declust/internal/fault"
	"declust/internal/layout"
	"declust/internal/metrics"
	"declust/internal/sim"
	"declust/internal/stats"
	"declust/internal/telemetry"
	"declust/internal/trace"
	"declust/internal/workload"
)

// SimConfig describes one simulation run. The zero values of optional
// fields select the paper's configuration (IBM 0661 disks, 4 KB units,
// CVSCAN bias 0.2, one reconstruction process).
type SimConfig struct {
	C, G int

	// Geom is the drive model; zero selects the full IBM 0661. Scale
	// (numerator/denominator, e.g. 1/10) shrinks the cylinder count to
	// shorten reconstruction sweeps; response-time behaviour per access
	// is unchanged and reconstruction time scales linearly.
	Geom               disk.Geometry
	ScaleNum, ScaleDen int
	UnitSectors        int     // stripe unit size in sectors; 0 = 8 (4 KB)
	CvscanBias         float64 // V(R) bias; 0 = 0.2
	MaxTuples          int     // block design table cap; 0 = default

	// SchedPolicy selects the per-disk queue scheduler; the zero value is
	// disk.CVSCAN, the original behaviour.
	SchedPolicy disk.Policy
	// ReadAheadTracks gives every disk a track read-ahead buffer of that
	// many tracks; 0 (the default) disables buffering.
	ReadAheadTracks int
	// PrioAgeMS bounds how long a reconstruction or scrub request can be
	// starved by higher-class user work: once queued that long it competes
	// in the top class. 0 keeps strict class domination.
	PrioAgeMS float64

	RatePerSec   float64 // user accesses per second
	ReadFraction float64 // fraction of user accesses that are reads
	AccessUnits  int     // access size in stripe units; 0 = 1 (4 KB)
	// HotDataFraction/HotAccessFraction skew the address distribution
	// (e.g. 0.2/0.8); zero means uniform as in the paper.
	HotDataFraction   float64
	HotAccessFraction float64
	// SequentialFraction makes that fraction of user accesses continue at
	// the address after the previous access (see workload.Config); 0 keeps
	// the paper's pure random stream.
	SequentialFraction float64
	Seed               int64

	// ParallelDataMap replaces the paper's stripe-index data mapping
	// with the round-robin mapping that satisfies maximal parallelism
	// (§4.2's future-work alternative).
	ParallelDataMap bool

	// DistributedSparing reserves a spare unit per parity stripe
	// (layout over a G+1 design) and reconstructs into spares on the
	// survivors instead of onto a replacement disk.
	DistributedSparing bool

	// Parities selects the redundancy code: 0 or 1 is the paper's single
	// parity (P), 2 adds a GF(2^8) Reed–Solomon unit per stripe (the
	// RAID-6-style P+Q code) so the array tolerates any two disk
	// failures, at the cost of a six-access read-modify-write and one
	// fewer data unit per stripe. Incompatible with DistributedSparing.
	Parities int

	Algorithm  array.ReconAlgorithm
	ReconProcs int // 0 = 1

	// Extensions (paper §9 future work).
	ReconLowPriority          bool
	ReconThrottleCyclesPerSec float64

	// Fault injection. All zero values disable every fault process and
	// leave the run byte-identical — same event order, same exports — to
	// one without fault support at all.
	//
	// FaultSeed drives the injector's random draws, independently of the
	// workload Seed so enabling faults never perturbs arrivals.
	FaultSeed int64
	// LSERatePerGBHour injects latent sector errors per GB of disk
	// capacity per simulated hour (accelerated values make minutes-long
	// runs see errors; real drives sit around 1e-5 to 1e-4).
	LSERatePerGBHour float64
	// TransientRate is the per-request timeout probability in [0, 0.9];
	// timed-out requests are retried with capped exponential backoff.
	TransientRate float64
	// FaultTimeoutMS is the stall one transient timeout costs; 0 = 50 ms.
	FaultTimeoutMS float64
	// ScrubIntervalMS, when positive, runs the background scrubber at one
	// parity stripe per interval (lowest disk priority).
	ScrubIntervalMS float64

	// WarmupMS settles queues before measurement begins; MeasureMS is
	// the measurement window for fault-free and degraded runs.
	WarmupMS  float64
	MeasureMS float64

	// Source overrides the synthetic workload with a custom access
	// stream (e.g. a trace.Replayer). RatePerSec etc. are ignored when
	// set.
	Source workload.Source
	// CaptureTrace, when non-nil, records every measured user access
	// (arrival, completion, op) into the log for later replay.
	CaptureTrace *trace.Log

	// Observability. All fields are optional; with the zero values the
	// simulation pays nothing for instrumentation.
	//
	// Metrics, when non-nil, collects counters, latency histograms and
	// final per-disk/engine gauges; export with WritePrometheus and
	// WriteCSV. Everything is keyed on simulated time, so exports are
	// byte-identical across runs of the same seed and configuration.
	Metrics *metrics.Registry
	// Tracer, when non-nil, receives structured events: every measured
	// user access, every disk request, and reconstruction milestones.
	Tracer metrics.Tracer
	// SampleEveryMS, with Metrics set, samples per-disk time series
	// (utilization, queue depth, mean seek distance) on this sim-time
	// cadence; 0 disables sampling.
	SampleEveryMS float64
	// OnProgress, during reconstruction runs, is called every
	// ProgressEveryMS of simulated time (default 1000) with sweep
	// progress and an ETA.
	OnProgress      func(Progress)
	ProgressEveryMS float64
	// Spans, when non-nil, records request-lifecycle spans: a root span
	// per user access with phase children from the array and per-disk
	// service segments from the drives. Export with WriteJSONL or
	// WriteChromeTrace, or feed Attribute for a latency breakdown.
	Spans *telemetry.Tracer
	// OnLive, when non-nil, is called every LiveEveryMS of simulated time
	// (default 1000) with a read-only status snapshot — the bridge to the
	// live telemetry server. The callback reads state only; enabling it
	// never changes simulation results.
	OnLive      func(LiveStatus)
	LiveEveryMS float64
}

// LiveStatus is a point-in-time view of a running simulation, built for
// the live telemetry server. Slices are freshly allocated per callback so
// receivers may retain them across goroutines.
type LiveStatus struct {
	SimMS          float64
	Requests       int
	MeanResponseMS float64
	DiskUtil       []float64 // busy fraction of the last interval, per slot
	DiskQueue      []int     // instantaneous queue depth, per slot
	ReconDone      int64
	ReconTotal     int64
	ReconETAMS     float64
}

// Progress is a reconstruction progress report (see SimConfig.OnProgress).
type Progress struct {
	SimMS      float64 // current simulated time
	DoneUnits  int64   // lost units live again
	TotalUnits int64
	ETAMS      float64 // estimated simulated ms until completion (0 until measurable)
	// EventsFired is the engine's cumulative event count; divided by
	// wall-clock time it gives the simulator's throughput.
	EventsFired uint64
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Geom.Cylinders == 0 {
		c.Geom = disk.IBM0661()
	}
	if c.ScaleNum > 0 && c.ScaleDen > 0 {
		c.Geom = c.Geom.Scaled(c.ScaleNum, c.ScaleDen)
	}
	if c.UnitSectors == 0 {
		c.UnitSectors = 8
	}
	if c.CvscanBias == 0 {
		c.CvscanBias = 0.2
	}
	if c.ReconProcs == 0 {
		c.ReconProcs = 1
	}
	if c.WarmupMS == 0 {
		c.WarmupMS = 10_000
	}
	if c.MeasureMS == 0 {
		c.MeasureMS = 60_000
	}
	return c
}

// faultsEnabled reports whether the configuration needs a fault injector.
func (c SimConfig) faultsEnabled() bool {
	return c.LSERatePerGBHour > 0 || c.TransientRate > 0
}

// Metrics reports one run's results. Response-time fields are in
// milliseconds over user accesses arriving inside the measurement window.
type Metrics struct {
	MeanResponseMS float64
	StdResponseMS  float64
	P90ResponseMS  float64
	Requests       int

	// Disk-level scheduling and caching aggregates, summed over the
	// drives at end of run (both zero with read-ahead off).
	CacheHits       int64
	CacheHitSectors int64

	// Reconstruction-specific (zero for fault-free/degraded runs).
	ReconTimeMS      float64
	ReconCycles      int64
	ReadPhaseMeanMS  float64
	ReadPhaseStdMS   float64
	WritePhaseMeanMS float64
	WritePhaseStdMS  float64

	// Alpha is the achieved declustering ratio of the layout used.
	Alpha float64

	// Fault and scrub activity (all zero when fault injection is off).
	LSEArrivals      int64 // latent sector errors injected
	TransientRetries int64 // timeouts absorbed by backoff-and-retry
	MediaErrors      int64 // transfers that surfaced a latent error
	LatentRepairs    int64 // units rebuilt from parity after a media error
	LostUnits        int64 // units beyond redundancy's reach (real loss)
	DataLossEvents   int   // per-stripe loss events recorded
	ScrubPasses      int64 // full scrub sweeps completed
	ScrubErrorsFound int64 // media errors the scrubber surfaced

	// SimEndMS is the simulated clock when the run finished draining;
	// EngineEvents is the total number of engine events fired. Both are
	// deterministic for a given seed and configuration.
	SimEndMS     float64
	EngineEvents uint64
}

// runner wires an array to a workload generator and collects response
// times for requests arriving within [from, to) (to <= 0 means no upper
// bound yet).
type runner struct {
	eng     *sim.Engine
	arr     *array.Array
	gen     workload.Source
	resp    stats.Sample
	capture *trace.Log
	// classify, when set, receives every measured (start, end) pair;
	// the lifecycle runner uses it to split responses by array state.
	classify func(start, end float64)
	from     float64
	to       float64
	stopped  bool

	// Fault processes (nil/zero when disabled).
	faults  *fault.Injector
	scrubMS float64

	// raOn gates the cache-hit series and gauges so runs without
	// read-ahead export byte-identical metrics to builds predating it.
	raOn bool

	// Instrumentation (nil-safe no-ops when disabled).
	reg       *metrics.Registry
	tracer    metrics.Tracer
	respHist  *metrics.Histogram
	readHist  *metrics.Histogram
	writeHist *metrics.Histogram
	mRequests *metrics.Counter
	sampleMS  float64
	spans     *telemetry.Tracer
	onLive    func(LiveStatus)
	liveMS    float64

	// Arrival fast path: arriveFn is bound once; nextOp carries the one
	// arrival scheduled but not yet fired (pump schedules the next arrival
	// only from inside the previous one, so a single slot suffices).
	// pendFree pools per-request completion records.
	arriveFn func()
	nextOp   workload.Op
	pendFree []*pendingReq
}

// pendingReq tracks one user request from arrival to completion. Nodes are
// pooled on the runner with their callbacks pre-bound, so steady-state
// requests allocate nothing.
type pendingReq struct {
	r         *runner
	start     float64
	op        workload.Op
	span      *telemetry.Span // root span; nil when tracing is off
	recordFn  func()
	recordVFn func(uint64)
}

func (r *runner) getPend() *pendingReq {
	if n := len(r.pendFree); n > 0 {
		p := r.pendFree[n-1]
		r.pendFree = r.pendFree[:n-1]
		return p
	}
	p := &pendingReq{r: r}
	p.recordFn = p.record
	p.recordVFn = p.recordV
	return p
}

func (p *pendingReq) recordV(uint64) { p.record() }

// record runs at request completion: copy the node's state to locals and
// recycle it, then score the response if the arrival fell inside the
// measurement window.
func (p *pendingReq) record() {
	r := p.r
	start, op, span := p.start, p.op, p.span
	p.span = nil
	r.pendFree = append(r.pendFree, p)
	if start >= r.from && (r.to < 0 || start < r.to) {
		span.SetMeasured()
		lat := r.eng.Now() - start
		r.resp.Add(lat)
		r.mRequests.Inc()
		r.respHist.Observe(lat)
		if op.Read {
			r.readHist.Observe(lat)
		} else {
			r.writeHist.Observe(lat)
		}
		if r.tracer != nil {
			r.tracer.Access(metrics.AccessEvent{
				ArriveMS: start, DoneMS: r.eng.Now(),
				Read: op.Read, Unit: op.Unit, Count: op.Count,
			})
		}
		if r.capture != nil {
			r.capture.Add(trace.Record{ArriveMS: start, DoneMS: r.eng.Now(), Op: op})
		}
		if r.classify != nil {
			r.classify(start, r.eng.Now())
		}
	}
	span.End(r.eng.Now())
}

func newRunner(cfg SimConfig) (*runner, error) {
	var m *Mapping
	var err error
	switch {
	case cfg.Parities < 0 || cfg.Parities > 2:
		return nil, fmt.Errorf("core: %d parities per stripe; 1 (P) or 2 (P+Q) supported", cfg.Parities)
	case cfg.Parities == 2 && cfg.DistributedSparing:
		return nil, fmt.Errorf("core: distributed sparing is single-parity only")
	case cfg.DistributedSparing:
		m, err = NewSparedMapping(cfg.C, cfg.G, cfg.MaxTuples)
	case cfg.Parities == 2:
		m, err = NewPQMapping(cfg.C, cfg.G, cfg.MaxTuples)
	default:
		m, err = NewMapping(cfg.C, cfg.G, cfg.MaxTuples)
	}
	if err != nil {
		return nil, err
	}
	eng := sim.New()
	var mapper layout.DataMapper
	if cfg.ParallelDataMap {
		mapper = layout.NewParallelMapper(m.Layout)
	}
	var inj *fault.Injector
	if cfg.faultsEnabled() {
		inj, err = fault.New(eng, cfg.Geom, m.Layout.Disks(), fault.Config{
			Seed:             cfg.FaultSeed,
			LSERatePerGBHour: cfg.LSERatePerGBHour,
			TransientRate:    cfg.TransientRate,
			TimeoutMS:        cfg.FaultTimeoutMS,
			Tracer:           cfg.Tracer,
		})
		if err != nil {
			return nil, err
		}
	}
	arr, err := array.New(eng, array.Config{
		Layout:                    m.Layout,
		Geom:                      cfg.Geom,
		UnitSectors:               cfg.UnitSectors,
		CvscanBias:                cfg.CvscanBias,
		SchedPolicy:               cfg.SchedPolicy,
		ReadAheadTracks:           cfg.ReadAheadTracks,
		PrioAgeMS:                 cfg.PrioAgeMS,
		Algorithm:                 cfg.Algorithm,
		ReconProcs:                cfg.ReconProcs,
		SmallWriteOpt:             true,
		ReconLowPriority:          cfg.ReconLowPriority,
		ReconThrottleCyclesPerSec: cfg.ReconThrottleCyclesPerSec,
		DataMapper:                mapper,
		DistributedSparing:        cfg.DistributedSparing,
		Faults:                    inj,
		Metrics:                   cfg.Metrics,
		Tracer:                    cfg.Tracer,
		Spans:                     cfg.Spans,
	})
	if err != nil {
		return nil, err
	}
	var src workload.Source = cfg.Source
	if src == nil {
		src, err = workload.New(workload.Config{
			RatePerSec:         cfg.RatePerSec,
			ReadFraction:       cfg.ReadFraction,
			DataUnits:          arr.DataUnits(),
			AccessUnits:        cfg.AccessUnits,
			HotDataFraction:    cfg.HotDataFraction,
			HotAccessFraction:  cfg.HotAccessFraction,
			SequentialFraction: cfg.SequentialFraction,
			Seed:               cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
	}
	r := &runner{
		eng: eng, arr: arr, gen: src, capture: cfg.CaptureTrace, to: -1,
		faults: inj, scrubMS: cfg.ScrubIntervalMS, raOn: cfg.ReadAheadTracks > 0,
		reg: cfg.Metrics, tracer: cfg.Tracer, sampleMS: cfg.SampleEveryMS,
		spans: cfg.Spans, onLive: cfg.OnLive, liveMS: cfg.LiveEveryMS,
	}
	if r.onLive != nil && r.liveMS <= 0 {
		r.liveMS = 1000
	}
	if r.reg != nil {
		r.respHist = r.reg.Histogram("user_response_ms")
		r.readHist = r.reg.Histogram(`user_response_ms_by_op{op="read"}`)
		r.writeHist = r.reg.Histogram(`user_response_ms_by_op{op="write"}`)
		r.mRequests = r.reg.Counter("user_requests")
	}
	if r.tracer != nil {
		tr := r.tracer
		arr.ObserveDisks(func(slot int, e disk.Event) {
			tr.Disk(metrics.DiskEvent{
				Disk: slot, QueuedMS: e.QueuedAt, StartMS: e.Start, DoneMS: e.Finish,
				Write: e.Write, Sectors: e.Sectors, SeekCyls: e.SeekDist, Priority: e.Priority,
			})
		})
	}
	return r, nil
}

// startFaults activates the configured fault processes: the injector's
// LSE arrivals and the background scrubber. No-op when faults are off.
func (r *runner) startFaults() {
	if r.faults != nil {
		r.faults.Start()
	}
	if r.scrubMS > 0 {
		if err := r.arr.StartScrub(r.scrubMS); err != nil {
			panic(err) // unreachable: spacing checked positive
		}
	}
}

// stopFaults cancels the self-rescheduling fault processes so the engine
// can drain. Work already in flight (a scrub scan, a repair) finishes
// during the drain.
func (r *runner) stopFaults() {
	if r.faults != nil {
		r.faults.Stop()
	}
	r.arr.StopScrub()
}

// startSampling begins the per-disk time-series sampler: every sampleMS
// of simulated time it appends utilization (busy fraction of the
// interval), instantaneous queue depth, and mean seek distance per
// completed request to the registry's series. The sampler reads state
// only, so enabling it never changes simulation results; it stops
// rescheduling once the runner is stopped and the engine drains.
func (r *runner) startSampling() {
	if r.reg == nil || r.sampleMS <= 0 {
		return
	}
	n := r.arr.Layout().Disks()
	util := make([]*metrics.Series, n)
	depth := make([]*metrics.Series, n)
	seek := make([]*metrics.Series, n)
	var hits []*metrics.Series
	prev := make([]disk.Stats, n)
	for i := 0; i < n; i++ {
		util[i] = r.reg.Series(fmt.Sprintf(`disk_util{disk="%d"}`, i))
		depth[i] = r.reg.Series(fmt.Sprintf(`disk_queue_depth{disk="%d"}`, i))
		seek[i] = r.reg.Series(fmt.Sprintf(`disk_seek_cyls_avg{disk="%d"}`, i))
	}
	if r.raOn {
		// Registered only with read-ahead enabled so default exports stay
		// byte-identical to builds without the cache.
		hits = make([]*metrics.Series, n)
		for i := 0; i < n; i++ {
			hits[i] = r.reg.Series(fmt.Sprintf(`disk_cache_hit_rate{disk="%d"}`, i))
		}
	}
	var tick func()
	tick = func() {
		if r.stopped {
			return
		}
		now := r.eng.Now()
		for i := 0; i < n; i++ {
			d := r.arr.Disk(i)
			st := d.Stats()
			busy := st.BusyMS - prev[i].BusyMS
			moved := st.SeekCyls - prev[i].SeekCyls
			completed := st.Completed - prev[i].Completed
			if busy < 0 || completed < 0 {
				// The slot's drive was replaced mid-interval; its
				// counters restarted from zero.
				busy, moved, completed = st.BusyMS, st.SeekCyls, st.Completed
			}
			util[i].Observe(now, busy/r.sampleMS)
			depth[i].Observe(now, float64(d.QueueLen()))
			avg := 0.0
			if completed > 0 {
				avg = float64(moved) / float64(completed)
			}
			seek[i].Observe(now, avg)
			if hits != nil {
				cached := st.CacheHits - prev[i].CacheHits
				if cached < 0 {
					cached = st.CacheHits
				}
				rate := 0.0
				if completed > 0 {
					rate = float64(cached) / float64(completed)
				}
				hits[i].Observe(now, rate)
			}
			prev[i] = st
		}
		r.eng.Schedule(r.sampleMS, tick)
	}
	r.eng.Schedule(r.sampleMS, tick)
}

// startLive begins the live-status ticker: every liveMS of simulated time
// it hands OnLive a fresh snapshot of response stats, per-disk activity
// and reconstruction progress. Like the sampler it reads state only and
// stops rescheduling once the runner stops, so enabling it never changes
// simulation results (beyond the engine's event count).
func (r *runner) startLive() {
	if r.onLive == nil {
		return
	}
	n := r.arr.Layout().Disks()
	prevBusy := make([]float64, n)
	var tick func()
	tick = func() {
		if r.stopped {
			return
		}
		st := LiveStatus{
			SimMS:          r.eng.Now(),
			Requests:       r.resp.N(),
			MeanResponseMS: r.resp.Mean(),
			DiskUtil:       make([]float64, n),
			DiskQueue:      make([]int, n),
		}
		for i := 0; i < n; i++ {
			d := r.arr.Disk(i)
			busy := d.Stats().BusyMS - prevBusy[i]
			if busy < 0 {
				busy = d.Stats().BusyMS // drive replaced mid-interval
			}
			st.DiskUtil[i] = busy / r.liveMS
			st.DiskQueue[i] = d.QueueLen()
			prevBusy[i] = d.Stats().BusyMS
		}
		if done, total := r.arr.ReconProgress(); total > 0 {
			st.ReconDone, st.ReconTotal = done, total
			if elapsed := r.eng.Now() - r.arr.ReconStartMS(); done > 0 && elapsed > 0 && r.arr.Reconstructing() {
				st.ReconETAMS = elapsed / float64(done) * float64(total-done)
			}
		}
		r.onLive(st)
		r.eng.Schedule(r.liveMS, tick)
	}
	r.eng.Schedule(r.liveMS, tick)
}

// exportFinal freezes end-of-run aggregates into the registry: per-disk
// lifetime gauges, engine totals, and — after a reconstruction — sweep
// totals and the per-survivor read load.
func (r *runner) exportFinal() {
	if r.reg == nil {
		return
	}
	now := r.eng.Now()
	r.reg.Gauge("sim_end_ms").Set(now)
	r.reg.Counter("engine_events_fired").Add(int64(r.eng.Fired()))
	r.reg.Counter("engine_events_scheduled").Add(int64(r.eng.Scheduled()))
	for i := 0; i < r.arr.Layout().Disks(); i++ {
		st := r.arr.Disk(i).Stats()
		lbl := fmt.Sprintf(`{disk="%d"}`, i)
		u := 0.0
		if now > 0 {
			u = st.BusyMS / now
		}
		r.reg.Gauge("disk_util" + lbl).Set(u)
		r.reg.Gauge("disk_busy_ms" + lbl).Set(st.BusyMS)
		r.reg.Gauge("disk_seek_ms" + lbl).Set(st.SeekMS)
		r.reg.Gauge("disk_queue_ms" + lbl).Set(st.QueueMS)
		r.reg.Gauge("disk_max_queue" + lbl).Set(float64(st.MaxQueueLen))
		r.reg.Counter("disk_requests" + lbl).Add(st.Completed)
		r.reg.Counter("disk_sectors" + lbl).Add(st.SectorsMoved)
		r.reg.Counter("disk_seek_cyls" + lbl).Add(st.SeekCyls)
		if r.raOn {
			r.reg.Counter("disk_cache_hits" + lbl).Add(st.CacheHits)
			r.reg.Counter("disk_cache_hit_sectors" + lbl).Add(st.CacheHitSectors)
		}
	}
	// Fault gauges only exist when fault processes ran, so fault-free
	// exports stay byte-identical to builds without fault support.
	if r.faults != nil || r.scrubMS > 0 {
		fs := r.arr.FaultStats()
		r.reg.Gauge("fault_media_errors").Set(float64(fs.MediaErrors))
		r.reg.Gauge("fault_lost_units").Set(float64(fs.LostUnits))
		r.reg.Gauge("fault_data_loss_events").Set(float64(len(r.arr.DataLosses())))
		if r.faults != nil {
			st := r.faults.Stats()
			r.reg.Gauge("fault_lse_arrivals").Set(float64(st.LSEArrivals))
			r.reg.Gauge("fault_bad_sectors").Set(float64(st.BadSectors))
			r.reg.Gauge("fault_healed_sectors").Set(float64(st.Healed))
		}
		if r.scrubMS > 0 {
			ss := r.arr.ScrubStats()
			r.reg.Gauge("scrub_passes").Set(float64(ss.Passes))
			r.reg.Gauge("scrub_units_scanned").Set(float64(ss.UnitsScanned))
			r.reg.Gauge("scrub_errors_found").Set(float64(ss.ErrorsFound))
		}
	}
	if _, total := r.arr.ReconProgress(); total > 0 {
		done, _ := r.arr.ReconProgress()
		r.reg.Gauge("recon_time_ms").Set(r.arr.ReconTimeMS())
		r.reg.Gauge("recon_done_units").Set(float64(done))
		r.reg.Gauge("recon_total_units").Set(float64(total))
		for i, nread := range r.arr.ReconReadLoad() {
			r.reg.Counter(fmt.Sprintf(`recon_survivor_reads{disk="%d"}`, i)).Add(nread)
		}
	}
}

// pump issues the next arrival and reschedules itself until stopped.
func (r *runner) pump() {
	if r.stopped {
		return
	}
	delay, op := r.gen.Next()
	if r.arriveFn == nil {
		r.arriveFn = r.arrive
	}
	r.nextOp = op
	r.eng.Schedule(delay, r.arriveFn)
}

// arrive fires one user arrival: issue the access with a pooled completion
// record, then schedule the next arrival.
func (r *runner) arrive() {
	if r.stopped {
		return
	}
	op := r.nextOp
	p := r.getPend()
	p.start = r.eng.Now()
	p.op = op
	if r.spans != nil {
		name, kind := "write", telemetry.KindWrite
		if op.Read {
			name, kind = "read", telemetry.KindRead
		}
		if op.Count > 1 {
			name += "-range"
		}
		p.span = r.spans.Root(name, kind, op.Unit, p.start)
		r.arr.SetOpSpan(p.span)
	}
	switch {
	case op.Read && op.Count == 1:
		r.arr.Read(op.Unit, p.recordVFn)
	case op.Read:
		r.arr.ReadRange(op.Unit, op.Count, p.recordFn)
	case op.Count == 1:
		r.arr.Write(op.Unit, p.recordFn)
	default:
		r.arr.WriteRange(op.Unit, op.Count, p.recordFn)
	}
	r.pump()
}

func (r *runner) metrics() Metrics {
	fs := r.arr.FaultStats()
	ss := r.arr.ScrubStats()
	m := Metrics{
		MeanResponseMS:   r.resp.Mean(),
		StdResponseMS:    r.resp.Std(),
		P90ResponseMS:    r.resp.Percentile(90),
		Requests:         r.resp.N(),
		Alpha:            r.arr.Layout().Alpha(),
		SimEndMS:         r.eng.Now(),
		EngineEvents:     r.eng.Fired(),
		TransientRetries: fs.Retries,
		MediaErrors:      fs.MediaErrors,
		LatentRepairs:    fs.LatentRepairs,
		LostUnits:        fs.LostUnits,
		DataLossEvents:   len(r.arr.DataLosses()),
		ScrubPasses:      ss.Passes,
		ScrubErrorsFound: ss.ErrorsFound,
	}
	if r.faults != nil {
		m.LSEArrivals = r.faults.Stats().LSEArrivals
	}
	for i := 0; i < r.arr.Layout().Disks(); i++ {
		st := r.arr.Disk(i).Stats()
		m.CacheHits += st.CacheHits
		m.CacheHitSectors += st.CacheHitSectors
	}
	return m
}

// RunFaultFree measures steady-state user response time with no failure
// (paper §6).
func RunFaultFree(cfg SimConfig) (Metrics, error) {
	cfg = cfg.withDefaults()
	r, err := newRunner(cfg)
	if err != nil {
		return Metrics{}, err
	}
	return r.timedWindow(cfg)
}

// RunDegraded measures steady-state user response time with one disk
// failed and no replacement installed (paper §7). The failed disk is 0;
// layouts balance load so the choice is immaterial.
func RunDegraded(cfg SimConfig) (Metrics, error) {
	cfg = cfg.withDefaults()
	r, err := newRunner(cfg)
	if err != nil {
		return Metrics{}, err
	}
	if err := r.arr.Fail(0); err != nil {
		return Metrics{}, err
	}
	return r.timedWindow(cfg)
}

func (r *runner) timedWindow(cfg SimConfig) (Metrics, error) {
	r.from = cfg.WarmupMS
	r.to = cfg.WarmupMS + cfg.MeasureMS
	r.startSampling()
	r.startLive()
	r.startFaults()
	r.pump()
	r.eng.RunUntil(r.to)
	r.stopped = true
	r.stopFaults()
	r.eng.Run() // drain in-flight operations so their responses count
	if err := r.arr.CheckConsistency(); err != nil {
		return Metrics{}, fmt.Errorf("core: post-run consistency check: %w", err)
	}
	r.exportFinal()
	return r.metrics(), nil
}

// RunReconstruction fails disk 0, installs a replacement, reconstructs it
// under user load, and reports both reconstruction time and the response
// time of user accesses arriving during reconstruction (paper §8). The
// warmup runs in degraded mode so queues reflect the failed state when the
// sweep begins.
func RunReconstruction(cfg SimConfig) (Metrics, error) {
	cfg = cfg.withDefaults()
	r, err := newRunner(cfg)
	if err != nil {
		return Metrics{}, err
	}
	if err := r.arr.Fail(0); err != nil {
		return Metrics{}, err
	}
	if !cfg.DistributedSparing {
		if err := r.arr.Replace(); err != nil {
			return Metrics{}, err
		}
	}
	r.from = cfg.WarmupMS
	r.startSampling()
	r.startLive()
	r.startFaults()
	r.pump()
	r.eng.RunUntil(cfg.WarmupMS)

	err = r.arr.Reconstruct(func() {
		r.to = r.eng.Now()
		r.stopped = true
		r.stopFaults()
	})
	if err != nil {
		return Metrics{}, err
	}
	r.startProgress(cfg)
	r.eng.Run()
	if r.arr.Degraded() && !r.arr.Spared() {
		return Metrics{}, fmt.Errorf("core: reconstruction did not complete")
	}
	if err := r.arr.CheckConsistency(); err != nil {
		return Metrics{}, fmt.Errorf("core: post-reconstruction consistency check: %w", err)
	}
	r.exportFinal()
	m := r.metrics()
	m.ReconTimeMS = r.arr.ReconTimeMS()
	m.ReconCycles = r.arr.ReconCycles()
	m.ReadPhaseMeanMS = r.arr.ReadPhase().Mean()
	m.ReadPhaseStdMS = r.arr.ReadPhase().Std()
	m.WritePhaseMeanMS = r.arr.WritePhase().Mean()
	m.WritePhaseStdMS = r.arr.WritePhase().Std()
	return m, nil
}

// startProgress schedules periodic reconstruction progress reports on a
// sim-time cadence. The ticker reads state only and stops itself once
// reconstruction completes, so enabling it never changes results. The
// final report (DoneUnits == TotalUnits) is delivered from the engine's
// drain phase.
func (r *runner) startProgress(cfg SimConfig) {
	if cfg.OnProgress == nil {
		return
	}
	every := cfg.ProgressEveryMS
	if every <= 0 {
		every = 1000
	}
	report := func() {
		done, total := r.arr.ReconProgress()
		elapsed := r.eng.Now() - r.arr.ReconStartMS()
		eta := 0.0
		if done > 0 && elapsed > 0 {
			eta = elapsed / float64(done) * float64(total-done)
		}
		cfg.OnProgress(Progress{
			SimMS: r.eng.Now(), DoneUnits: done, TotalUnits: total,
			ETAMS: eta, EventsFired: r.eng.Fired(),
		})
	}
	var tick func()
	tick = func() {
		if !r.arr.Reconstructing() {
			report() // final 100% report
			return
		}
		report()
		r.eng.Schedule(every, tick)
	}
	r.eng.Schedule(every, tick)
}

// ReconCyclePhases reruns a reconstruction like RunReconstruction but
// reports the mean and deviation of the read and write phases over only
// the last `tail` cycles, as the paper's Table 8-1 does (tail = 300).
func ReconCyclePhases(cfg SimConfig, tail int) (readMean, readStd, writeMean, writeStd float64, err error) {
	cfg = cfg.withDefaults()
	r, err := newRunner(cfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := r.arr.Fail(0); err != nil {
		return 0, 0, 0, 0, err
	}
	if !cfg.DistributedSparing {
		if err := r.arr.Replace(); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	r.from = cfg.WarmupMS
	r.startFaults()
	r.pump()
	r.eng.RunUntil(cfg.WarmupMS)
	if err := r.arr.Reconstruct(func() { r.stopped = true; r.stopFaults() }); err != nil {
		return 0, 0, 0, 0, err
	}
	r.eng.Run()
	rw := r.arr.ReadPhase().Tail(tail)
	ww := r.arr.WritePhase().Tail(tail)
	return rw.Mean(), rw.Std(), ww.Mean(), ww.Std(), nil
}
